//! PageRank from an edge stream (§3.3's database-environment setting,
//! ref \[37\]): the graph is only ever seen as repeated passes over an
//! edge log, with memory proportional to the number of walkers — never
//! to the graph.
//!
//! ```text
//! cargo run --release -p acir --example streaming_pagerank
//! ```

use acir::experiment::{fmt_f, TextTable};
use acir::prelude::*;
use acir_spectral::ranking::{kendall_tau, pagerank_scores, top_k_overlap};
use acir_spectral::streaming::streaming_pagerank_of_graph;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(37);
    let g = gen::random::barabasi_albert(&mut rng, 3000, 3).expect("generator");
    println!(
        "graph: n = {}, m = {}; exact PageRank needs the whole graph in memory,",
        g.n(),
        g.m()
    );
    println!("the streaming estimator needs only its walker table.\n");

    let exact = pagerank_scores(&g, 0.15).expect("exact");

    let mut table = TextTable::new(&[
        "walkers",
        "passes",
        "memory slots",
        "kendall tau",
        "top-20 overlap",
    ]);
    for walkers in [1_000usize, 10_000, 100_000] {
        let est = streaming_pagerank_of_graph(&g, 0.15, walkers, 120, &mut rng).expect("stream");
        table
            .row(vec![
                walkers.to_string(),
                est.passes.to_string(),
                est.peak_memory_slots.to_string(),
                fmt_f(kendall_tau(&exact, &est.scores)),
                fmt_f(top_k_overlap(&exact, &est.scores, 20)),
            ])
            .expect("table row");
    }
    println!("{table}");
    println!(
        "accuracy is a function of the walker budget — one more approximation\n\
         knob with a statistical meaning (sampling error), per the paper's theme."
    );
}
