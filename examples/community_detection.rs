//! Community detection on a synthetic social network: the Figure 1
//! workflow at laptop scale.
//!
//! Generates an AtP-DBLP-like network (power-law core, planted
//! communities, whiskers), computes the network community profile with
//! both rival methods, and prints the conductance-vs-niceness
//! trade-off the paper's Figure 1 illustrates.
//!
//! ```text
//! cargo run --release -p acir --example community_detection
//! ```

use acir::experiment::{fmt_f, TextTable};
use acir::prelude::*;
use acir_graph::gen::community::{social_network, SocialNetworkParams};
use acir_graph::traversal::largest_component;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(2012);
    let params = SocialNetworkParams {
        core_nodes: 1500,
        core_attach: 3,
        communities: 25,
        community_size_range: (8, 300),
        whiskers: 80,
        whisker_max_len: 10,
        ..Default::default()
    };
    let pc = social_network(&mut rng, &params).expect("generator");
    let (g, _) = largest_component(&pc.graph);
    println!("network: {}", acir_graph::stats::summarize(&g));

    let opts = NcpOptions {
        min_size: 3,
        max_size: 600,
        seeds: 32,
        alphas: vec![0.2, 0.05, 0.01],
        epsilons: vec![1e-3, 1e-4],
        threads: 4,
        ..Default::default()
    };
    println!("\ncomputing NCPs (spectral: {} seeds x {} alphas x {} epsilons; flow: Metis+MQI ladder)...",
        opts.seeds, opts.alphas.len(), opts.epsilons.len());
    let spectral = ncp_local_spectral(&g, &opts).expect("spectral NCP");
    let flow = ncp_metis_mqi(&g, &opts).expect("flow NCP");

    let mut table = TextTable::new(&[
        "method",
        "size",
        "conductance",
        "avg_path",
        "ext/int ratio",
        "connected",
    ]);
    for (name, pts) in [("spectral", &spectral), ("flow", &flow)] {
        for p in pts.iter() {
            let nice = cluster_niceness(&g, &p.set, 24).expect("niceness");
            table
                .row(vec![
                    name.into(),
                    p.size.to_string(),
                    fmt_f(p.conductance),
                    nice.avg_shortest_path
                        .map(fmt_f)
                        .unwrap_or_else(|| "-".into()),
                    fmt_f(nice.ratio),
                    nice.connected.to_string(),
                ])
                .expect("table row");
        }
    }
    println!("\n{table}");
    println!(
        "the paper's Figure 1 shape: flow rows tend to win on conductance,\n\
         spectral rows tend to win on the two niceness columns."
    );
}
