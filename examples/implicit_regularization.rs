//! The paper's headline phenomenon, end to end: approximate
//! computation implicitly regularizes.
//!
//! Three demonstrations on one small graph:
//! 1. the Mahoney–Orecchia theorem — each diffusion equals a
//!    regularized-SDP optimum, to machine precision;
//! 2. aggressiveness = regularization strength — truncating a
//!    diffusion earlier yields a smoother, more seed-dependent output;
//! 3. the same effect outside graphs — early-stopped gradient descent
//!    tracks the ridge regularization path.
//!
//! ```text
//! cargo run --release -p acir --example implicit_regularization
//! ```

use acir::experiment::{fmt_f, TextTable};
use acir::prelude::*;
use acir_linalg::{vector, DenseMatrix};
use acir_regularize::equivalence::{effective_rank, lazy_walk_eta_limit};
use acir_regularize::explicit::ridge;
use acir_regularize::heuristics::gradient_descent_path;
use acir_spectral::diffusion::tv_distance;

fn main() {
    let g = gen::deterministic::barbell(8, 2).expect("generator");
    let sp = SpectralProblem::new(&g).expect("spectral problem");
    println!("graph: barbell(8,2); lambda_2 = {:.5}\n", sp.lambda2());

    // 1. The theorem.
    println!("1) diffusion == regularized-SDP optimum (relative Frobenius gap):");
    let mut t = TextTable::new(&["dynamics", "regularizer G(X)", "eta", "rel_gap"]);
    for eta in [0.5, 2.0, 8.0] {
        let hk = check_heat_kernel(&sp, eta).expect("hk");
        t.row(vec![
            "heat kernel".into(),
            "Tr(X ln X)".into(),
            fmt_f(eta),
            fmt_f(hk.relative_error),
        ])
        .expect("table row");
        let pr = check_pagerank(&sp, eta).expect("pr");
        t.row(vec![
            "PageRank".into(),
            "-ln det X".into(),
            fmt_f(eta),
            fmt_f(pr.relative_error),
        ])
        .expect("table row");
    }
    let lazy_eta = lazy_walk_eta_limit(&sp, 3).expect("limit") * 0.5;
    let lw = check_lazy_walk(&sp, lazy_eta, 3).expect("lw");
    t.row(vec![
        "lazy walk (k=3)".into(),
        "Tr(X^p)/p".into(),
        fmt_f(lazy_eta),
        fmt_f(lw.relative_error),
    ])
    .expect("table row");
    println!("{t}");

    // 2. Aggressiveness as regularization strength.
    println!("2) truncating the dynamics earlier = regularizing harder:");
    let mut t = TextTable::new(&[
        "eta (~time)",
        "effective rank of X*",
        "seed dependence (TV)",
    ]);
    for eta in [0.25, 1.0, 4.0, 16.0] {
        let sol = solve_regularized_sdp(&sp, Regularizer::Entropy, eta).expect("sdp");
        let steps = (eta.ceil() as usize).max(1);
        let a = lazy_walk(&g, 0.5, steps, &Seed::Node(0)).expect("walk");
        let b = lazy_walk(&g, 0.5, steps, &Seed::Node((g.n() - 1) as u32)).expect("walk");
        t.row(vec![
            fmt_f(eta),
            fmt_f(effective_rank(&sol.x)),
            fmt_f(tv_distance(&a, &b)),
        ])
        .expect("table row");
    }
    println!("{t}");

    // 3. Early stopping outside graphs.
    println!("3) early-stopped gradient descent vs the ridge path:");
    let a = DenseMatrix::from_rows(&[
        &[1.0, 0.1],
        &[1.0, 0.9],
        &[1.0, 2.2],
        &[1.0, 3.1],
        &[1.0, 3.8],
    ]);
    let b = vec![1.1, 1.8, 3.2, 3.9, 5.1];
    let step = 0.02;
    let path = gradient_descent_path(&a, &b, step, 200).expect("gd");
    let mut t = TextTable::new(&["iterations k", "ridge lambda = 1/(k*step)", "relative gap"]);
    for k in [5usize, 20, 80] {
        let lam = 1.0 / (k as f64 * step);
        let r = ridge(&a, &b, lam).expect("ridge");
        let gap = vector::dist2(&path[k], &r) / vector::norm2(&r);
        t.row(vec![k.to_string(), fmt_f(lam), fmt_f(gap)])
            .expect("table row");
    }
    println!("{t}");
    println!(
        "all three tables say the same thing: the knob you turn to compute\n\
         *less* is a regularization parameter, not just an error tolerance."
    );
}
