//! Quickstart: the three case studies of Mahoney (PODS 2012) in fifty
//! lines.
//!
//! ```text
//! cargo run --release -p acir --example quickstart
//! ```

use acir::prelude::*;

fn main() {
    // A graph with two planted communities joined by one edge.
    let g = gen::deterministic::barbell(10, 0).expect("generator");
    println!(
        "graph: {} nodes, {} edges, volume {}",
        g.n(),
        g.m(),
        g.total_volume()
    );

    // §3.1 — the exact leading nontrivial eigenvector of the normalized
    // Laplacian, and an aggressive PageRank approximation of it.
    let fiedler = fiedler_vector(&g).expect("fiedler");
    println!("\n[case study 1] lambda_2 = {:.5}", fiedler.lambda2);
    let ppr = pagerank(&g, 0.1, &Seed::Node(0)).expect("pagerank");
    println!(
        "PageRank mass on the seed's clique: {:.3} (the diffusion is seed-biased = regularized)",
        ppr[..10].iter().sum::<f64>()
    );

    // §3.2 — spectral vs flow partitioning of the same objective.
    let spectral = spectral_bisect(&g).expect("spectral");
    println!(
        "\n[case study 2] spectral sweep cut: {} nodes at conductance {:.5}",
        spectral.sweep.set.len(),
        spectral.sweep.conductance
    );
    let side: Vec<NodeId> = (0..10).collect();
    let improved = mqi(&g, &side).expect("mqi");
    println!(
        "Metis+MQI-style flow polish of the clique side: conductance {:.5} (iterations {})",
        improved.conductance, improved.iterations
    );

    // §3.3 — a strongly local method: the ACL push algorithm touches
    // only the neighborhood of its seed.
    let push = ppr_push(&g, &[3], 0.05, 1e-6).expect("push");
    let local = sweep_cut_support(&g, &push.to_dense(g.n()));
    println!(
        "\n[case study 3] push from node 3: touched {} of {} nodes, {} pushes; \
         swept cluster = {:?} at conductance {:.5}",
        push.touched,
        g.n(),
        push.pushes,
        local.set,
        local.conductance
    );

    // The punchline: the regularized SDP solved by that diffusion.
    let sp = SpectralProblem::new(&g).expect("spectral problem");
    let sol = solve_regularized_sdp(&sp, Regularizer::LogDet, 2.0).expect("sdp");
    let check = check_pagerank(&sp, 2.0).expect("equivalence");
    println!(
        "\n[theorem] log-det-regularized SDP at eta = 2: Tr(LX*) = {:.5}; \
         PageRank resolvent matches it to relative error {:.2e}",
        sol.linear_objective, check.relative_error
    );
}
