//! Semi-supervised community recovery with the MOV locally-biased
//! spectral method (§3.3: "one might have domain knowledge about
//! certain nodes, and one might want to use that to find locally-biased
//! clusters in a semi-supervised manner").
//!
//! A three-block SBM where global spectral bisection can only see the
//! strongest cut; with three *labeled* nodes from one target block, the
//! MOV program steers the spectral problem toward that block. The
//! correlation parameter γ interpolates: γ → λ₂ recovers the global
//! Fiedler cut; γ ≪ 0 pins the solution to the labels.
//!
//! ```text
//! cargo run --release -p acir --example semi_supervised
//! ```

use acir::experiment::{fmt_f, TextTable};
use acir::prelude::*;
use acir_graph::gen::community::planted_partition;
use acir_graph::traversal::largest_component;
use acir_local::mov::mov_embedding;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(33);
    let pc = planted_partition(&mut rng, 3, 40, 0.35, 0.03).expect("generator");
    let (g, map) = largest_component(&pc.graph);
    let truth: Vec<u32> = map.iter().map(|&old| pc.community[old as usize]).collect();
    println!(
        "three-block SBM: n = {}, m = {}; target = block 2, labels = 3 nodes",
        g.n(),
        g.m()
    );

    // Three labeled members of block 2 (the "domain knowledge").
    let labels: Vec<NodeId> = (0..g.n() as u32)
        .filter(|&u| truth[u as usize] == 2)
        .take(3)
        .collect();
    let block_size = truth.iter().filter(|&&c| c == 2).count();

    let f = fiedler_vector(&g).expect("fiedler");
    println!("lambda_2 = {:.4}\n", f.lambda2);

    let mut table = TextTable::new(&[
        "gamma",
        "cluster size",
        "phi",
        "precision vs block 2",
        "recall vs block 2",
    ]);
    for gamma in [-20.0, -2.0, -0.2, f.lambda2 * 0.5, f.lambda2 * 0.95] {
        let mov = mov_vector(&g, &labels, gamma).expect("mov");
        let emb = mov_embedding(&g, &mov);
        let cut = sweep_cut(&g, &emb);
        let hits = cut.set.iter().filter(|&&u| truth[u as usize] == 2).count();
        table
            .row(vec![
                fmt_f(gamma),
                cut.set.len().to_string(),
                fmt_f(cut.conductance),
                fmt_f(hits as f64 / cut.set.len().max(1) as f64),
                fmt_f(hits as f64 / block_size as f64),
            ])
            .expect("table row");
    }
    println!("{table}");
    println!(
        "small gamma pins the cluster to the labeled block (high precision);\n\
         gamma -> lambda_2 forgets the labels and returns the global cut."
    );
}
