//! Local clustering around a seed (case study §3.3): the optimization
//! approach (MOV) vs the operational approach (push / Nibble /
//! heat-kernel relax), with the work counters that make the
//! strong-locality point.
//!
//! ```text
//! cargo run --release -p acir --example local_clustering
//! ```

use acir::experiment::{fmt_f, TextTable};
use acir::prelude::*;
use acir_graph::gen::community::planted_cluster;
use acir_local::mov::mov_embedding;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(42);
    // A 26k-node ambient graph with an 80-node planted community.
    let (g, planted) = planted_cluster(&mut rng, 26_000, 3, 80, 0.2, 4).expect("generator");
    let seed = planted[40];
    let phi_planted = set_conductance(&g, &planted);
    println!(
        "graph: {} nodes, {} edges; planted cluster: {} nodes at conductance {:.4}; seed = {}",
        g.n(),
        g.m(),
        planted.len(),
        phi_planted,
        seed
    );

    let overlap = |set: &[NodeId]| -> f64 {
        let planted_set: std::collections::HashSet<_> = planted.iter().collect();
        let inter = set.iter().filter(|u| planted_set.contains(u)).count();
        inter as f64 / planted.len().max(set.len()) as f64
    };

    let mut table = TextTable::new(&["method", "touched", "phi_found", "overlap", "note"]);

    let push = ppr_push(&g, &[seed], 0.05, 1e-5).expect("push");
    let cut = sweep_cut_support(&g, &push.to_dense(g.n()));
    table
        .row(vec![
            "push (ACL)".into(),
            push.touched.to_string(),
            fmt_f(cut.conductance),
            fmt_f(overlap(&cut.set)),
            format!(
                "{} pushes, residual {:.1e}",
                push.pushes, push.residual_mass
            ),
        ])
        .expect("table row");

    let nib = nibble(&g, seed, 50, 1e-5).expect("nibble");
    table
        .row(vec![
            "nibble (ST)".into(),
            nib.max_support.to_string(),
            fmt_f(nib.conductance),
            fmt_f(overlap(&nib.set)),
            format!(
                "best at step {}, mass lost {:.1e}",
                nib.best_step, nib.mass_lost
            ),
        ])
        .expect("table row");

    let hk = hk_relax(&g, seed, 8.0, 1e-5, 1e-4).expect("hk");
    let hk_cut = sweep_cut_support(&g, &hk.to_dense(g.n()));
    table
        .row(vec![
            "hk-relax (Chung)".into(),
            hk.touched.to_string(),
            fmt_f(hk_cut.conductance),
            fmt_f(overlap(&hk_cut.set)),
            format!("{} Taylor terms", hk.terms),
        ])
        .expect("table row");

    let mov = mov_vector(&g, &[seed], -1.0).expect("mov");
    let emb = mov_embedding(&g, &mov);
    let mov_cut = sweep_cut(&g, &emb);
    table
        .row(vec![
            "MOV (optimization)".into(),
            mov.touched.to_string(),
            fmt_f(mov_cut.conductance),
            fmt_f(overlap(&mov_cut.set)),
            format!("{} CG iterations over the whole graph", mov.cg_iterations),
        ])
        .expect("table row");

    println!("\n{table}");
    println!(
        "the operational methods touch O(cluster) nodes; the optimization\n\
         approach touches all {} — \"this is very expensive, especially when\n\
         one wants to find small clusters\" (§3.3).",
        g.n()
    );
}
