//! Offline minimal stand-in for the subset of `criterion` this
//! workspace's benches use: `criterion_group!` / `criterion_main!`,
//! `Criterion::benchmark_group`, `bench_function`, `sample_size`, and
//! `black_box`.
//!
//! Rather than criterion's full statistical machinery, each benchmark is
//! warmed up briefly and then timed over a fixed number of batches; the
//! median per-iteration time is printed. Good enough to compare kernels
//! locally; swap the real crate back in when a registry is reachable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 30 }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Run a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, mut f: F) {
        run_one(&id.into(), self.sample_size, &mut f);
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Override the number of timing samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Run a benchmark inside this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, mut f: F) {
        let samples = self.sample_size.unwrap_or(self.parent.sample_size);
        run_one(&format!("{}/{}", self.name, id.into()), samples, &mut f);
    }

    /// Finish the group (formatting no-op in this shim).
    pub fn finish(&mut self) {}
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, called `self.iters` times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, samples: usize, f: &mut F) {
    // Calibration: grow the iteration count until one batch is ≥ ~1ms.
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
            break;
        }
        iters *= 4;
    }
    let mut per_iter: Vec<f64> = (0..samples.max(1))
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_secs_f64() / iters as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];
    println!(
        "bench {id:<48} {:>12.3} ns/iter ({iters} iters/batch)",
        median * 1e9
    );
}

/// Group benchmark functions under one callable.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Produce a `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn bench_harness_runs() {
        let mut c = super::Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut hits = 0u64;
        group.bench_function("noop", |b| {
            b.iter(|| {
                hits += 1;
            })
        });
        group.finish();
        assert!(hits > 0);
    }
}
