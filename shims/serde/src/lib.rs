//! Offline stand-in for the subset of `serde` this workspace uses.
//!
//! The workspace only *annotates* types with `#[derive(Serialize,
//! Deserialize)]` (for a future JSON exchange path); nothing serializes
//! through serde at runtime yet. This shim provides the trait names and
//! no-op derive macros so those annotations compile without the real
//! crate, which is unreachable in the offline build environment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
