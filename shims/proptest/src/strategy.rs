//! Value-generation strategies: numeric ranges, tuples, `Just`, and the
//! `prop_map` / `prop_filter` / `prop_flat_map` combinators.

use crate::TestRng;
use core::ops::{Range, RangeInclusive};

/// How many times a filtered strategy is resampled before one draw is
/// reported as rejected to the runner.
const LOCAL_REJECT_TRIES: usize = 16;

/// A recipe for generating values of type [`Strategy::Value`].
pub trait Strategy {
    /// Type of generated values.
    type Value;

    /// Draw one value, or `None` if a filter rejected the sample.
    fn try_sample(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Map generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keep only values for which `keep` returns true; `reason` is used
    /// in diagnostics when everything is rejected.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: impl Into<String>,
        keep: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            keep,
        }
    }

    /// Generate a value, then generate from the strategy `f` builds
    /// out of it (dependent generation).
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn try_sample(&self, rng: &mut TestRng) -> Option<Self::Value> {
        (**self).try_sample(rng)
    }
}

/// Always produces a clone of one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn try_sample(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn try_sample(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.try_sample(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    #[allow(dead_code)]
    reason: String,
    keep: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn try_sample(&self, rng: &mut TestRng) -> Option<S::Value> {
        for _ in 0..LOCAL_REJECT_TRIES {
            if let Some(v) = self.inner.try_sample(rng) {
                if (self.keep)(&v) {
                    return Some(v);
                }
            }
        }
        None
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn try_sample(&self, rng: &mut TestRng) -> Option<T::Value> {
        let first = self.inner.try_sample(rng)?;
        (self.f)(first).try_sample(rng)
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn try_sample(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "strategy: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                Some(self.start.wrapping_add(rng.below(span) as $t))
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn try_sample(&self, rng: &mut TestRng) -> Option<$t> {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "strategy: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return Some(rng.next_u64() as $t);
                }
                Some(lo.wrapping_add(rng.below(span as u64) as $t))
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn try_sample(&self, rng: &mut TestRng) -> Option<f64> {
        assert!(self.start < self.end, "strategy: empty range");
        Some(self.start + (self.end - self.start) * rng.unit_f64())
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn try_sample(&self, rng: &mut TestRng) -> Option<f64> {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "strategy: empty range");
        Some(lo + (hi - lo) * rng.unit_f64())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn try_sample(&self, rng: &mut TestRng) -> Option<Self::Value> {
                let ($($name,)+) = self;
                Some(($($name.try_sample(rng)?,)+))
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, G);
