//! Collection strategies (`vec`).

use crate::strategy::Strategy;
use crate::TestRng;
use core::ops::Range;

/// A length specification: exact or a half-open range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "vec: empty size range");
        Self {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// Strategy producing `Vec`s whose elements come from `elem` and whose
/// length is drawn from `size`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    elem: S,
    size: SizeRange,
}

/// `proptest::collection::vec(strategy, len)`.
pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        elem,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn try_sample(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo
            + if span > 0 {
                rng.below(span) as usize
            } else {
                0
            };
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.elem.try_sample(rng)?);
        }
        Some(out)
    }
}
