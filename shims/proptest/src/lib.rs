//! Offline stand-in for the subset of the `proptest` API this workspace
//! uses.
//!
//! The build environment has no network access, so the workspace replaces
//! `proptest` with this shim via a path dependency. It implements random
//! (non-shrinking) property testing with the same surface syntax:
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(...)]` header, `pat in strategy` arguments, and
//!   `prop_assert!` / `prop_assert_eq!` / `prop_assume!` inside bodies;
//! * numeric [`Range`](core::ops::Range) strategies, tuples of
//!   strategies, [`strategy::Just`], `prop_map` / `prop_filter` / `prop_flat_map`
//!   combinators, and [`collection::vec`].
//!
//! Differences from upstream: failures are *not* shrunk (the failing
//! input is printed as-is via the panic message) and the
//! `proptest-regressions` corpus files are ignored. Case counts and the
//! deterministic per-test seed keep runs reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

pub mod collection;

/// Everything call sites conventionally import.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Deterministic pseudo-random source for sampling (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed deterministically from a test name.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `u64` in `[0, span)`.
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// The `proptest!` macro: a block of `#[test]` functions whose arguments
/// are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)]
     $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = cfg.cases.saturating_mul(100).max(1000);
                while accepted < cfg.cases {
                    attempts += 1;
                    assert!(
                        attempts <= max_attempts,
                        "proptest shim: too many rejected samples in {} ({} accepted of {} wanted)",
                        stringify!($name), accepted, cfg.cases,
                    );
                    $(
                        let sampled = match $crate::strategy::Strategy::try_sample(&($strat), &mut rng) {
                            Some(v) => v,
                            None => continue,
                        };
                        let $arg = sampled;
                    )*
                    #[allow(clippy::redundant_closure_call)]
                    let outcome: ::std::result::Result<(), $crate::test_runner::Rejected> =
                        (|| { $body Ok(()) })();
                    if outcome.is_ok() {
                        accepted += 1;
                    }
                }
            }
        )*
    };
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $($(#[$meta])* fn $name($($arg in $strat),*) $body)*
        }
    };
}

/// Assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Discard the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::Rejected);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn evens() -> impl Strategy<Value = u64> {
        (0u64..1000).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in -2i32..2, f in -1.0..1.0f64) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2..2).contains(&y));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn map_filter_flat_map_compose((n, v) in (1usize..8).prop_flat_map(|n| {
            (Just(n), collection::vec(0.0..1.0f64, n))
        })) {
            prop_assert_eq!(v.len(), n);
        }

        #[test]
        fn assume_discards_without_failing(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }

        #[test]
        fn mapped_strategies_apply(x in evens()) {
            prop_assert!(x % 2 == 0);
        }

        #[test]
        fn tuple_destructuring_works((a, b) in (0u32..5, 5u32..10)) {
            prop_assert!(a < 5 && (5..10).contains(&b));
        }
    }

    proptest! {
        #[test]
        fn default_config_also_works(x in 0u64..u64::MAX) {
            prop_assert!(x < u64::MAX);
        }
    }

    #[test]
    fn filter_rejection_resamples() {
        let strat = (0u64..100).prop_filter("must be small", |&x| x < 5);
        let mut rng = crate::TestRng::deterministic("filter_rejection_resamples");
        let mut hits = 0;
        for _ in 0..200 {
            if let Some(v) = Strategy::try_sample(&strat, &mut rng) {
                assert!(v < 5);
                hits += 1;
            }
        }
        assert!(hits > 0);
    }
}
