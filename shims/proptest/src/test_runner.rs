//! Runner configuration and control-flow types for the `proptest!` macro.

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases each property must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` accepted cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; this shim trades a little coverage
        // for CI wall-clock. Tests that need more pass an explicit
        // `with_cases`.
        Self { cases: 64 }
    }
}

/// Marker returned by `prop_assume!` when a case is discarded.
#[derive(Debug, Clone, Copy)]
pub struct Rejected;
