//! Offline stand-in for the subset of `parking_lot` this workspace uses
//! (`Mutex` and `RwLock` with panic-free, non-poisoning guards), backed
//! by `std::sync`.
//!
//! Like upstream `parking_lot` — and unlike raw `std::sync` — lock
//! acquisition never returns a poison error: a mutex poisoned by a
//! panicking holder is recovered via `into_inner`-style semantics, which
//! matches the workspace's use of locks purely for result aggregation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with `parking_lot`'s non-poisoning API.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new lock holding `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquire the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with `parking_lot`'s non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new lock holding `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn mutex_round_trips() {
        let m = super::Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn rwlock_round_trips() {
        let l = super::RwLock::new(5u32);
        assert_eq!(*l.read(), 5);
        *l.write() += 1;
        assert_eq!(l.into_inner(), 6);
    }
}
