//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses.
//!
//! The build environment has no network access and no vendored crate
//! registry, so the workspace replaces `rand` with this shim via a path
//! dependency. It reproduces the *API* (`StdRng`, `SeedableRng`, `Rng`,
//! `RngCore`, `seq::SliceRandom`) but not the exact value streams of the
//! upstream implementation: `StdRng` here is xoshiro256++ seeded through
//! SplitMix64 rather than ChaCha12. Everything in the workspace treats
//! seeded RNGs as an arbitrary-but-deterministic source, so only
//! determinism (same seed → same stream) matters, and that is preserved.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::{Range, RangeInclusive};

/// The core of a random number generator: raw integer output.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// Raw seed material.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Build from raw seed material.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64`, expanding it with SplitMix64 (the same
    /// expansion rule upstream `rand` uses).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can parameterize [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Multiply-shift bounded integer draw (Lemire): uniform in `[0, span)`.
#[inline]
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 random bits → [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded_u64(rng, span as u64) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + (self.end - self.start) * unit_f64(rng)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        lo + (hi - lo) * unit_f64(rng)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + (self.end - self.start) * unit_f64(rng) as f32
    }
}

/// Convenience methods layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with success probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        unit_f64(self) < p
    }

    /// A uniformly random `f64` in `[0, 1)` (the only `gen()` instance
    /// the workspace needs).
    fn gen(&mut self) -> f64 {
        unit_f64(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded via SplitMix64. (Upstream `rand` uses ChaCha12 here; only
    /// determinism, not the exact stream, is relied upon.)
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = Self::rotl(s[0].wrapping_add(s[3]), 23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = Self::rotl(s[3], 45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            // A xoshiro state of all zeros is a fixed point; perturb.
            if s.iter().all(|&w| w == 0) {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            Self { s }
        }
    }

    /// Alias kept for API compatibility with `rand::rngs::SmallRng`.
    pub type SmallRng = StdRng;
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice extension trait: shuffling and random choice.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: u32 = rng.gen_range(0..=5);
            assert!(y <= 5);
            let f: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i: i32 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_range_covers_span() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[rng.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_is_calibrated() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn works_through_dyn_rngcore() {
        let mut rng = StdRng::seed_from_u64(3);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let u: f64 = crate::Rng::gen_range(dyn_rng, 0.0..1.0);
        assert!((0.0..1.0).contains(&u));
    }
}
