//! Offline placeholder for `serde_json`.
//!
//! Some workspace manifests declare `serde_json` for a planned artifact
//! export path, but no workspace code calls into it yet. This empty shim
//! lets those manifests resolve without network access; grow it (or
//! hand-roll JSON, as `acir::experiment` already does for tables) when
//! the export path lands.

#![forbid(unsafe_code)]
