//! Offline stand-in for the slice of `serde_json` the workspace uses:
//! a [`Value`] tree, a strict recursive-descent [`from_str`] parser,
//! and compact / pretty serializers.
//!
//! This is not a serde integration — there is no derive support and no
//! `Serialize`/`Deserialize` bridging. Binaries that emit machine-read
//! artifacts (the perfsuite's `BENCH_parallel.json`) build a [`Value`]
//! by hand, write it with [`to_string_pretty`], and re-validate the
//! bytes with [`from_str`]. The parser accepts exactly RFC 8259 JSON
//! minus two conveniences: numbers are stored as `f64` (integers are
//! exact up to 2^53, far beyond any counter we emit) and strings only
//! unescape the short escapes plus `\uXXXX` basic-plane sequences.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;

/// A parsed or hand-built JSON document.
///
/// Objects use a [`BTreeMap`], so serialization order is key order —
/// deterministic across runs, which keeps committed artifacts diffable.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`; integral values round-trip
    /// exactly up to 2^53).
    Number(f64),
    /// A JSON string.
    String(String),
    /// A JSON array.
    Array(Vec<Value>),
    /// A JSON object with deterministic (sorted) key order.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// The boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload, if this is a `Number`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if this is a
    /// `Number` holding one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string payload, if this is a `String`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an `Array`.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The members, if this is an `Object`.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Member lookup on objects (`None` for other variants or missing
    /// keys), mirroring upstream's `value.get("key")`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// `true` for `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<f64> for Value {
    fn from(n: f64) -> Self {
        Value::Number(n)
    }
}
impl From<u64> for Value {
    fn from(n: u64) -> Self {
        Value::Number(n as f64)
    }
}
impl From<usize> for Value {
    fn from(n: usize) -> Self {
        Value::Number(n as f64)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_owned())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}
impl From<Vec<Value>> for Value {
    fn from(a: Vec<Value>) -> Self {
        Value::Array(a)
    }
}
impl From<BTreeMap<String, Value>> for Value {
    fn from(m: BTreeMap<String, Value>) -> Self {
        Value::Object(m)
    }
}

/// Why a document failed to parse: a message plus the byte offset the
/// parser had reached.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
    offset: usize,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.offset)
    }
}

impl std::error::Error for Error {}

/// Parse one complete JSON document; trailing non-whitespace is an
/// error, like upstream's `from_str`.
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

/// Serialize compactly (no whitespace), like upstream's `to_string`.
pub fn to_string(v: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, v, None, 0);
    out
}

/// Serialize with two-space indentation, like upstream's
/// `to_string_pretty`.
pub fn to_string_pretty(v: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, v, Some(2), 0);
    out
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&to_string(self))
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(a) => write_seq(out, indent, depth, '[', ']', a.len(), |out, i, d| {
            write_value(out, &a[i], indent, d);
        }),
        Value::Object(m) => {
            let entries: Vec<(&String, &Value)> = m.iter().collect();
            write_seq(out, indent, depth, '{', '}', entries.len(), |out, i, d| {
                write_string(out, entries[i].0);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, entries[i].1, indent, d);
            });
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
    out.push(close);
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; upstream's Number can't hold them either.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error {
            msg: msg.to_owned(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, lit: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(self.err("document nested too deeply"));
        }
        match self.peek() {
            Some(b'n') => self.eat("null").map(|()| Value::Null),
            Some(b't') => self.eat("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.eat("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, Error> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, Error> {
        self.pos += 1; // '{'
        let mut members = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected string key in object"));
            }
            let key = self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.err("expected `:` after object key"));
            }
            self.pos += 1;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            members.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.pos += 1; // opening quote
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(&c) = self.bytes.get(self.pos) {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b't') => s.push('\t'),
                        Some(b'r') => s.push('\r'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            s.push(
                                char::from_u32(hex)
                                    .ok_or_else(|| self.err("\\u escape is not a scalar value"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape sequence")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits = |p: &mut Self| {
            let before = p.pos;
            while p.peek().is_some_and(|c| c.is_ascii_digit()) {
                p.pos += 1;
            }
            p.pos > before
        };
        if !digits(self) {
            return Err(self.err("expected digits in number"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !digits(self) {
                return Err(self.err("expected digits after decimal point"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !digits(self) {
                return Err(self.err("expected digits in exponent"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("number out of range"))
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    #[test]
    fn round_trips_a_bench_shaped_document() {
        let text = r#"{
            "schema": "bench-parallel-v1",
            "host_cpus": 1,
            "results": [
                {"kernel": "spmv", "threads": 1, "secs": 0.125, "speedup": 1.0},
                {"kernel": "spmv", "threads": 4, "secs": 3.2e-2, "ok": true, "note": null}
            ]
        }"#;
        let v = from_str(text).unwrap();
        assert_eq!(v.get("schema").unwrap().as_str(), Some("bench-parallel-v1"));
        assert_eq!(v.get("host_cpus").unwrap().as_u64(), Some(1));
        let results = v.get("results").unwrap().as_array().unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(results[1].get("threads").unwrap().as_u64(), Some(4));
        assert_eq!(results[1].get("secs").unwrap().as_f64(), Some(0.032));
        assert_eq!(results[1].get("ok").unwrap().as_bool(), Some(true));
        assert!(results[1].get("note").unwrap().is_null());

        // Serializer output re-parses to the same tree, both styles.
        assert_eq!(from_str(&to_string(&v)).unwrap(), v);
        assert_eq!(from_str(&to_string_pretty(&v)).unwrap(), v);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let v = Value::String("line\nbreak \"quoted\" \\ tab\there".into());
        let text = to_string(&v);
        assert_eq!(from_str(&text).unwrap(), v);
        assert_eq!(from_str(r#""Aé""#).unwrap().as_str(), Some("Aé"));
    }

    #[test]
    fn integers_serialize_without_decimal_point() {
        assert_eq!(to_string(&Value::Number(8.0)), "8");
        assert_eq!(to_string(&Value::Number(-3.0)), "-3");
        assert_eq!(to_string(&Value::Number(0.5)), "0.5");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "nul",
            "01x",
            "\"open",
            "[1] trailing",
            "{'a': 1}",
        ] {
            assert!(from_str(bad).is_err(), "should reject {bad:?}");
        }
        let too_deep = format!("{}{}", "[".repeat(200), "]".repeat(200));
        assert!(from_str(&too_deep).is_err());
    }

    #[test]
    fn object_keys_serialize_sorted() {
        let mut m = BTreeMap::new();
        m.insert("zeta".to_owned(), Value::from(1u64));
        m.insert("alpha".to_owned(), Value::from(2u64));
        assert_eq!(to_string(&Value::Object(m)), r#"{"alpha":2,"zeta":1}"#);
    }
}
