//! Offline stand-in for the one `crossbeam` entry point this workspace
//! uses: `crossbeam::scope`, implemented over [`std::thread::scope`]
//! (stable since Rust 1.63, within the workspace MSRV).
//!
//! Behavior difference from upstream: a panicking worker propagates at
//! scope exit (std semantics) instead of surfacing as `Err`; the `Ok`
//! path — the only one workspace code relies on for results — is
//! identical.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::any::Any;

/// Scope handle passed to the `crossbeam::scope` closure.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

/// Placeholder passed to spawned closures (upstream passes `&Scope`;
/// every workspace call site ignores it with `|_|`).
#[derive(Debug, Clone, Copy)]
pub struct NestedScope;

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a scoped worker thread.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(NestedScope) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        self.inner.spawn(move || f(NestedScope))
    }
}

/// Run `f` with a scope in which borrowing, scoped threads can be
/// spawned; all workers are joined before this returns.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_merge_borrowed_state() {
        let data = [1u64, 2, 3, 4];
        let sums = std::sync::Mutex::new(Vec::new());
        super::scope(|scope| {
            for chunk in data.chunks(2) {
                let sums = &sums;
                scope.spawn(move |_| {
                    sums.lock().unwrap().push(chunk.iter().sum::<u64>());
                });
            }
        })
        .unwrap();
        let mut got = sums.into_inner().unwrap();
        got.sort_unstable();
        assert_eq!(got, vec![3, 7]);
    }
}
