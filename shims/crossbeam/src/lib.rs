//! Offline stand-in for the one `crossbeam` entry point this workspace
//! uses: `crossbeam::scope`, implemented over [`std::thread::scope`]
//! (stable since Rust 1.63, within the workspace MSRV).
//!
//! Matches upstream error semantics: a panic — in the closure itself or
//! in an unjoined worker thread — is caught at the scope boundary and
//! surfaced as `Err(payload)` instead of unwinding the caller. (Upstream
//! collects every worker payload; this shim reports the one `std`
//! re-raises at scope exit, which is enough for callers that only match
//! on `Err`.)

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Scope handle passed to the `crossbeam::scope` closure.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

/// Placeholder passed to spawned closures (upstream passes `&Scope`;
/// every workspace call site ignores it with `|_|`).
#[derive(Debug, Clone, Copy)]
pub struct NestedScope;

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a scoped worker thread.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(NestedScope) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        self.inner.spawn(move || f(NestedScope))
    }
}

/// Run `f` with a scope in which borrowing, scoped threads can be
/// spawned; all workers are joined before this returns.
///
/// Returns `Err(payload)` if `f` or any spawned worker panicked, like
/// upstream `crossbeam::scope`; the calling thread never unwinds.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    // AssertUnwindSafe is sound here: on Err the closure's captures are
    // never touched again — the payload is handed straight to the caller.
    catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_merge_borrowed_state() {
        let data = [1u64, 2, 3, 4];
        let sums = std::sync::Mutex::new(Vec::new());
        super::scope(|scope| {
            for chunk in data.chunks(2) {
                let sums = &sums;
                scope.spawn(move |_| {
                    sums.lock().unwrap().push(chunk.iter().sum::<u64>());
                });
            }
        })
        .unwrap();
        let mut got = sums.into_inner().unwrap();
        got.sort_unstable();
        assert_eq!(got, vec![3, 7]);
    }

    #[test]
    fn panicking_worker_surfaces_as_err_not_unwind() {
        let err = super::scope(|scope| {
            scope.spawn(|_| panic!("worker exploded"));
        });
        assert!(err.is_err(), "worker panic must become Err, not unwind");

        // A panic in the closure itself carries its payload through.
        let err = super::scope(|_| -> () { panic!("closure exploded") });
        let payload = err.expect_err("closure panic must become Err");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "closure exploded");

        // And the Ok path still returns the closure's value.
        assert_eq!(super::scope(|_| 42).ok(), Some(42));
    }
}
