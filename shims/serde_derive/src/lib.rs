//! No-op `Serialize` / `Deserialize` derives for the offline serde shim.
//!
//! The derives intentionally emit nothing: the workspace only tags types
//! for a future exchange format and never calls serde's runtime methods,
//! so empty expansions keep every annotation compiling with zero
//! third-party proc-macro machinery (syn/quote are likewise unreachable
//! offline).

use proc_macro::TokenStream;

/// No-op stand-in for `#[derive(serde::Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `#[derive(serde::Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
