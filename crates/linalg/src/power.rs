//! The Power Method (paper §3.1, footnote 15), with the iteration budget
//! exposed as a first-class parameter.
//!
//! The paper's point is that *truncating* the power iteration early is not
//! merely a cheaper approximation of the dominant eigenvector — it is an
//! implicit regularizer whose output depends on the seed vector. This
//! module therefore reports the full convergence history and accepts an
//! explicit `max_iters` (the "aggressiveness" knob) and an optional list
//! of directions to deflate (e.g. the trivial eigenvector `D^{1/2}·1` of a
//! normalized Laplacian).

use crate::vector;
use crate::{LinOp, LinalgError, Result};
use acir_runtime::{
    Budget, Certificate, DivergenceCause, Exhaustion, GuardConfig, GuardVerdict, KernelCtx,
    SolverOutcome, Workspace,
};

/// Options for [`power_method`].
#[derive(Debug, Clone)]
pub struct PowerOptions {
    /// Maximum number of iterations. This doubles as the early-stopping
    /// regularization parameter: small budgets yield seed-dependent,
    /// smoothed iterates.
    pub max_iters: usize,
    /// Convergence tolerance on `‖A v − λ v‖₂`. Set to `0.0` to force the
    /// method to run exactly `max_iters` iterations (pure early stopping).
    pub tol: f64,
    /// Unit-norm directions to project out of every iterate (deflation).
    pub deflate: Vec<Vec<f64>>,
}

impl Default for PowerOptions {
    fn default() -> Self {
        Self {
            max_iters: 1000,
            tol: 1e-10,
            deflate: Vec::new(),
        }
    }
}

/// Outcome of a power iteration.
#[derive(Debug, Clone)]
pub struct PowerResult {
    /// Rayleigh-quotient estimate of the dominant eigenvalue.
    pub eigenvalue: f64,
    /// Unit-norm eigenvector estimate.
    pub eigenvector: Vec<f64>,
    /// Iterations actually performed.
    pub iterations: usize,
    /// Residual `‖A v − λ v‖₂` at exit.
    pub residual: f64,
    /// Whether the tolerance was met (false means the budget was the
    /// binding constraint — i.e. the output was early-stopped).
    pub converged: bool,
}

/// Run the power method on `op` from seed `v0`.
///
/// Errors if the seed (after deflation) is numerically zero. Never errors
/// on non-convergence: per the paper, a truncated run is a legitimate
/// output, flagged by `converged == false`.
///
/// Scratch buffers come from the crate's shared pool, so steady-state
/// calls do not allocate beyond the returned eigenvector; see
/// [`power_method_ws`] to supply a caller-owned workspace instead.
pub fn power_method(op: &dyn LinOp, v0: &[f64], opts: &PowerOptions) -> Result<PowerResult> {
    crate::SCRATCH.with(|ws| power_method_ws(op, v0, opts, ws))
}

/// [`power_method`] with caller-owned scratch: the two `O(n)` recurrence
/// buffers (`A v` and the residual) are checked out of `ws` and returned
/// to it, so a caller looping over many seeds allocates nothing after
/// the first call. Bit-identical to [`power_method`].
pub fn power_method_ws(
    op: &dyn LinOp,
    v0: &[f64],
    opts: &PowerOptions,
    ws: &mut Workspace,
) -> Result<PowerResult> {
    let mut ctx = KernelCtx::new();
    match power_core(op, v0, opts, ws, &mut ctx)? {
        SolverOutcome::Converged { value, .. } => Ok(value),
        _ => unreachable!("an inert context can neither exhaust nor diverge"),
    }
}

/// Power method against an explicit [`KernelCtx`]: the unified entry
/// point that every legacy variant wraps. Scratch comes from the
/// context's pool override or the crate pool.
///
/// A metered context drives termination entirely through its budget —
/// clamp the meter to `opts.max_iters` (as [`power_method_budgeted`]
/// does) if the options ceiling should still bind.
pub fn power_method_ctx(
    op: &dyn LinOp,
    v0: &[f64],
    opts: &PowerOptions,
    ctx: &mut KernelCtx,
) -> Result<SolverOutcome<PowerResult>> {
    let _spmv = ctx.spmv_scope();
    ctx.scratch_pool_or(&crate::SCRATCH)
        .with(|ws| power_core(op, v0, opts, ws, ctx))
}

/// The single power-iteration loop. Every public entry point funnels
/// here; the context decides which concerns are live.
fn power_core(
    op: &dyn LinOp,
    v0: &[f64],
    opts: &PowerOptions,
    ws: &mut Workspace,
    ctx: &mut KernelCtx,
) -> Result<SolverOutcome<PowerResult>> {
    let n = op.dim();
    if v0.len() != n {
        return Err(LinalgError::DimensionMismatch {
            expected: n,
            found: v0.len(),
        });
    }
    let mut v = v0.to_vec();
    for u in &opts.deflate {
        vector::deflate(&mut v, u);
    }
    if vector::normalize2(&mut v) < 1e-300 {
        return Err(LinalgError::InvalidArgument(
            "seed vector is zero after deflation",
        ));
    }

    enum Exit {
        Done,
        Diverged(DivergenceCause),
        Exhausted(Exhaustion),
    }

    let mut av = ws.take_f64(n);
    let mut r = ws.take_f64(n);
    let mut eigenvalue = 0.0;
    let mut residual = f64::INFINITY;
    // Best iterate seen (smallest residual), kept only under a budget:
    // it is what an exhausted outcome returns, and the clone per
    // improvement would break the plain path's allocation contract.
    let mut best: Option<PowerResult> = None;
    let mut iterations = 0;
    let mut exit = Exit::Done;
    // CORE LOOP
    while ctx.is_metered() || iterations < opts.max_iters {
        op.apply(&v, &mut av);
        for u in &opts.deflate {
            vector::deflate(&mut av, u);
        }
        eigenvalue = vector::dot(&v, &av);
        // residual = ‖Av − λv‖
        r.copy_from_slice(&av);
        vector::axpy(-eigenvalue, &v, &mut r);
        residual = vector::norm2(&r);
        iterations += 1;

        ctx.push_residual(residual);
        if let GuardVerdict::Halt(cause) = ctx.observe(residual) {
            exit = Exit::Diverged(cause);
            break;
        }
        if ctx.is_metered() && residual < best.as_ref().map_or(f64::INFINITY, |b| b.residual) {
            best = Some(PowerResult {
                eigenvalue,
                eigenvector: v.clone(),
                iterations,
                residual,
                converged: false,
            });
        }

        let norm = vector::norm2(&av);
        if norm < 1e-300 {
            // Seed lay in the null space of the (deflated) operator.
            ctx.note_with(|| "seed fell into the null space of the deflated operator".into());
            break;
        }
        vector::copy_div(norm, &av, &mut v);
        if let GuardVerdict::Halt(cause) = ctx.check_iterate(&v, iterations - 1) {
            exit = Exit::Diverged(cause);
            break;
        }
        if opts.tol > 0.0 && residual <= opts.tol {
            break;
        }
        ctx.tick_iter();
        if let Some(exhausted) = ctx.add_work(1) {
            exit = Exit::Exhausted(exhausted);
            break;
        }
    }
    ws.put_f64(av);
    ws.put_f64(r);

    let mut diags = ctx.finish();
    match exit {
        Exit::Diverged(cause) => Ok(SolverOutcome::diverged(cause, diags)),
        Exit::Exhausted(exhausted) => {
            let best_so_far = best.unwrap_or(PowerResult {
                eigenvalue,
                eigenvector: v,
                iterations,
                residual,
                converged: false,
            });
            let certificate = Certificate::RayleighInterval {
                center: best_so_far.eigenvalue,
                radius: best_so_far.residual,
            };
            Ok(SolverOutcome::exhausted(
                best_so_far,
                exhausted,
                certificate,
                diags,
            ))
        }
        Exit::Done => {
            diags.iterations = iterations;
            let converged = opts.tol > 0.0 && residual <= opts.tol;
            Ok(SolverOutcome::converged(
                PowerResult {
                    eigenvalue,
                    eigenvector: v,
                    iterations,
                    residual,
                    converged,
                },
                diags,
            ))
        }
    }
}

/// Power method under an explicit resource [`Budget`], with divergence
/// guards and a structured [`SolverOutcome`].
///
/// The effective iteration ceiling is the smaller of `opts.max_iters`
/// and `budget.max_iters`; each matvec costs one work unit. Hitting any
/// budget axis returns [`SolverOutcome::BudgetExhausted`] carrying the
/// *best* iterate seen (smallest eigen-residual) and a
/// [`Certificate::RayleighInterval`]: for a symmetric operator and unit
/// vector `v`, some true eigenvalue lies within `‖Av − θv‖₂` of the
/// Rayleigh quotient `θ`. NaN/Inf contamination — e.g. from a faulted
/// operator ([`crate::fault::FaultyOp`]) — yields
/// [`SolverOutcome::Diverged`] and never a poisoned value.
///
/// Errors only on malformed input (dimension mismatch, zero seed).
pub fn power_method_budgeted(
    op: &dyn LinOp,
    v0: &[f64],
    opts: &PowerOptions,
    budget: &Budget,
) -> Result<SolverOutcome<PowerResult>> {
    // Power residuals plateau legitimately under pure early stopping,
    // so only contamination and blow-up are treated as divergence.
    let mut ctx = KernelCtx::budgeted(
        "linalg.power",
        &budget.with_max_iters(budget.max_iters.min(opts.max_iters)),
    )
    .with_guard(GuardConfig::contamination_only());
    power_method_ctx(op, v0, opts, &mut ctx)
}

/// Rayleigh quotient `xᵀAx / xᵀx`.
pub fn rayleigh_quotient(op: &dyn LinOp, x: &[f64]) -> f64 {
    let ax = op.apply_vec(x);
    vector::dot(x, &ax) / vector::dot(x, x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseMatrix;

    #[test]
    fn dominant_eigenpair_of_diagonal() {
        let a = DenseMatrix::from_diag(&[1.0, 5.0, 2.0]);
        let r = power_method(&a, &[1.0, 1.0, 1.0], &PowerOptions::default()).unwrap();
        assert!(r.converged);
        assert!((r.eigenvalue - 5.0).abs() < 1e-8);
        assert!(r.eigenvector[1].abs() > 0.999);
    }

    #[test]
    fn deflation_finds_second_eigenpair() {
        let a = DenseMatrix::from_diag(&[1.0, 5.0, 3.0]);
        let first = vec![0.0, 1.0, 0.0];
        let opts = PowerOptions {
            deflate: vec![first],
            ..Default::default()
        };
        let r = power_method(&a, &[1.0, 1.0, 1.0], &opts).unwrap();
        assert!((r.eigenvalue - 3.0).abs() < 1e-8);
    }

    #[test]
    fn early_stopping_reports_unconverged() {
        let a = DenseMatrix::from_diag(&[1.0, 1.001]);
        let opts = PowerOptions {
            max_iters: 3,
            tol: 1e-14,
            ..Default::default()
        };
        let r = power_method(&a, &[1.0, 1.0], &opts).unwrap();
        assert_eq!(r.iterations, 3);
        assert!(!r.converged);
    }

    #[test]
    fn tol_zero_forces_exact_budget() {
        let a = DenseMatrix::from_diag(&[1.0, 10.0]);
        let opts = PowerOptions {
            max_iters: 7,
            tol: 0.0,
            ..Default::default()
        };
        let r = power_method(&a, &[1.0, 1.0], &opts).unwrap();
        assert_eq!(r.iterations, 7);
        assert!(!r.converged);
    }

    #[test]
    fn early_stopped_iterate_retains_seed_dependence() {
        // With a tiny spectral gap and few iterations, different seeds
        // give visibly different outputs — the paper's early-stopping-as-
        // regularization observation in its simplest form.
        let a = DenseMatrix::from_diag(&[1.0, 1.01, 1.02]);
        let opts = PowerOptions {
            max_iters: 2,
            tol: 0.0,
            ..Default::default()
        };
        let r1 = power_method(&a, &[1.0, 0.1, 0.1], &opts).unwrap();
        let r2 = power_method(&a, &[0.1, 0.1, 1.0], &opts).unwrap();
        assert!(vector::alignment(&r1.eigenvector, &r2.eigenvector) < 0.9);
    }

    #[test]
    fn zero_seed_is_error() {
        let a = DenseMatrix::identity(2);
        assert!(power_method(&a, &[0.0, 0.0], &PowerOptions::default()).is_err());
        // Seed equal to a deflated direction is also effectively zero.
        let opts = PowerOptions {
            deflate: vec![vec![1.0, 0.0]],
            ..Default::default()
        };
        assert!(power_method(&a, &[1.0, 0.0], &opts).is_err());
    }

    #[test]
    fn dimension_mismatch_is_error() {
        let a = DenseMatrix::identity(3);
        assert!(matches!(
            power_method(&a, &[1.0], &PowerOptions::default()),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn rayleigh_quotient_bounds() {
        let a = DenseMatrix::from_diag(&[1.0, 4.0]);
        let rq = rayleigh_quotient(&a, &[1.0, 1.0]);
        assert!((rq - 2.5).abs() < 1e-12);
        assert!((1.0..=4.0).contains(&rq));
    }

    #[test]
    fn budgeted_converges_like_plain() {
        let a = DenseMatrix::from_diag(&[1.0, 5.0, 2.0]);
        let out = power_method_budgeted(
            &a,
            &[1.0, 1.0, 1.0],
            &PowerOptions::default(),
            &Budget::unlimited(),
        )
        .unwrap();
        assert!(out.is_converged());
        let r = out.value().unwrap();
        assert!((r.eigenvalue - 5.0).abs() < 1e-8);
        assert!(!out.diagnostics().residuals.is_empty());
    }

    #[test]
    fn budgeted_exhaustion_returns_certified_partial() {
        // Tiny spectral gap: cannot converge in 3 iterations.
        let a = DenseMatrix::from_diag(&[1.0, 1.001]);
        let out = power_method_budgeted(
            &a,
            &[1.0, 1.0],
            &PowerOptions {
                tol: 1e-14,
                ..Default::default()
            },
            &Budget::iterations(3),
        )
        .unwrap();
        assert!(!out.is_converged() && out.is_usable());
        match out.certificate() {
            Some(Certificate::RayleighInterval { center, radius }) => {
                // The enclosure must contain a true eigenvalue.
                assert!(
                    (center - radius..=center + radius).contains(&1.0)
                        || (center - radius..=center + radius).contains(&1.001),
                    "interval [{}, {}] misses both eigenvalues",
                    center - radius,
                    center + radius
                );
            }
            c => panic!("wrong certificate {c:?}"),
        }
    }

    #[test]
    fn budgeted_detects_nan_injection() {
        let a = DenseMatrix::from_diag(&[1.0, 5.0, 2.0]);
        let faulty = crate::fault::FaultyOp::new(
            &a,
            acir_runtime::FaultConfig::nans(0.8).after_clean_applies(2),
        );
        let out = power_method_budgeted(
            &faulty,
            &[1.0, 1.0, 1.0],
            &PowerOptions {
                tol: 1e-14,
                ..Default::default()
            },
            &Budget::unlimited(),
        )
        .unwrap();
        assert!(!out.is_usable(), "poisoned run must not yield a value");
        assert!(!out.diagnostics().residuals.is_empty());
    }

    #[test]
    fn pooled_scratch_reuse_is_bit_identical() {
        let a = DenseMatrix::from_diag(&[1.0, 1.01, 1.02]);
        let opts = PowerOptions {
            max_iters: 5,
            tol: 0.0,
            ..Default::default()
        };
        let first = power_method(&a, &[1.0, 0.2, 0.3], &opts).unwrap();
        for _ in 0..3 {
            let again = power_method(&a, &[1.0, 0.2, 0.3], &opts).unwrap();
            assert_eq!(again.eigenvalue.to_bits(), first.eigenvalue.to_bits());
            assert_eq!(again.residual.to_bits(), first.residual.to_bits());
            assert_eq!(again.eigenvector, first.eigenvector);
        }
    }

    #[test]
    fn negative_dominant_eigenvalue() {
        // |−6| > |2|: power method tracks the largest-magnitude eigenvalue.
        let a = DenseMatrix::from_diag(&[-6.0, 2.0]);
        let r = power_method(&a, &[1.0, 1.0], &PowerOptions::default()).unwrap();
        assert!((r.eigenvalue - (-6.0)).abs() < 1e-6);
    }
}
