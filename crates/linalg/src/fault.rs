//! Fault-injecting operator wrapper for resilience testing.
//!
//! [`FaultyOp`] wraps any [`LinOp`] and corrupts its outputs according
//! to an [`acir_runtime::FaultConfig`]: NaN poisoning, sign flips,
//! adversarial rounding, and latency spikes, all seeded and
//! reproducible. It is the bridge between the dependency-free fault
//! primitives of `acir-runtime` and the operator-based solvers of this
//! crate: every budgeted solver can be driven through a `FaultyOp` to
//! prove it degrades into a structured [`acir_runtime::SolverOutcome`]
//! instead of silently returning poisoned numbers.

use crate::LinOp;
use acir_runtime::{FaultConfig, FaultStream};
use std::cell::{Cell, RefCell};

/// A [`LinOp`] decorator that injects faults into every application.
///
/// Interior mutability keeps the wrapper usable through the `&self`
/// operator interface; the fault stream advances deterministically with
/// each `apply`, so a run is exactly reproducible from the config seed.
pub struct FaultyOp<'a> {
    inner: &'a dyn LinOp,
    stream: RefCell<FaultStream>,
    faults: Cell<u64>,
}

impl<'a> FaultyOp<'a> {
    /// Wrap `inner`, corrupting its outputs per `config`.
    pub fn new(inner: &'a dyn LinOp, config: FaultConfig) -> Self {
        Self {
            inner,
            stream: RefCell::new(config.stream()),
            faults: Cell::new(0),
        }
    }

    /// Number of operator applications performed so far.
    pub fn applies(&self) -> u64 {
        self.stream.borrow().applies()
    }

    /// Total values corrupted so far, for surfacing as a
    /// `fault_injected` event via
    /// `acir_runtime::Diagnostics::fault_injected`.
    pub fn faults_injected(&self) -> u64 {
        self.faults.get()
    }
}

impl LinOp for FaultyOp<'_> {
    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        let mut stream = self.stream.borrow_mut();
        stream.begin_apply();
        self.inner.apply(x, y);
        let hit = stream.corrupt_slice(y);
        self.faults.set(self.faults.get() + hit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseMatrix;

    #[test]
    fn clean_config_is_transparent() {
        let a = DenseMatrix::from_diag(&[1.0, 2.0, 3.0]);
        let f = FaultyOp::new(&a, FaultConfig::default());
        let y = f.apply_vec(&[1.0, 1.0, 1.0]);
        assert_eq!(y, vec![1.0, 2.0, 3.0]);
        assert_eq!(f.applies(), 1);
        assert_eq!(f.dim(), 3);
    }

    #[test]
    fn nan_injection_poisons_output() {
        let a = DenseMatrix::from_diag(&[1.0, 2.0, 3.0, 4.0]);
        let f = FaultyOp::new(&a, FaultConfig::nans(1.0));
        let y = f.apply_vec(&[1.0; 4]);
        assert!(y.iter().all(|v| v.is_nan()));
        assert_eq!(f.faults_injected(), 4);
    }

    #[test]
    fn fault_counter_feeds_diagnostics_events() {
        let a = DenseMatrix::identity(4);
        let f = FaultyOp::new(&a, FaultConfig::nans(1.0));
        let _ = f.apply_vec(&[1.0; 4]);
        let mut d = acir_runtime::Diagnostics::for_kernel("test.faulted");
        d.fault_injected("nan", f.faults_injected());
        assert_eq!(d.metrics.counter("faults_injected"), 4);
        assert_eq!(d.trace.counts()["fault_injected"], 1);
    }

    #[test]
    fn faults_wait_for_clean_applies() {
        let a = DenseMatrix::identity(4);
        let f = FaultyOp::new(&a, FaultConfig::nans(1.0).after_clean_applies(2));
        assert!(f.apply_vec(&[1.0; 4]).iter().all(|v| v.is_finite()));
        assert!(f.apply_vec(&[1.0; 4]).iter().all(|v| v.is_finite()));
        assert!(f.apply_vec(&[1.0; 4]).iter().all(|v| v.is_nan()));
        assert_eq!(f.applies(), 3);
    }

    #[test]
    fn same_seed_reproduces_run() {
        let a = DenseMatrix::identity(32);
        let mk = || FaultyOp::new(&a, FaultConfig::sign_flips(0.5).with_seed(42));
        let y1 = mk().apply_vec(&[1.0; 32]);
        let y2 = mk().apply_vec(&[1.0; 32]);
        assert_eq!(y1, y2);
        assert!(y1.iter().any(|&v| v < 0.0));
    }
}
