//! Chebyshev polynomial approximation of matrix functions `f(A)·v`.
//!
//! The third route to the heat kernel and friends (next to the dense
//! eigendecomposition and the Lanczos projection of [`crate::expm`]):
//! expand `f` in Chebyshev polynomials on the operator's spectral
//! interval `[a, b]` and evaluate by the three-term recurrence — one
//! matvec per degree, no inner products, no orthogonalization. For
//! normalized Laplacians (`spectrum ⊂ [0, 2]`) this is the method of
//! choice at very large scale, and the truncation degree is — once
//! more — an approximation knob with a smoothing interpretation: a
//! degree-`d` expansion can only mix information within `d` hops of the
//! seed, so low degrees are *forced* to be local and smooth.
//!
//! Coefficients are computed by the standard discrete cosine quadrature
//! on Chebyshev nodes, which converges geometrically for analytic `f`
//! (heat kernels, resolvents).

use crate::vector;
use crate::{LinOp, LinalgError, Result};
use acir_runtime::{
    Budget, Certificate, Diagnostics, DivergenceCause, Exhaustion, GuardConfig, GuardVerdict,
    KernelCtx, RetryPolicy, SolverOutcome, Workspace,
};

/// A Chebyshev expansion of a scalar function on `[a, b]`.
#[derive(Debug, Clone)]
pub struct ChebyshevExpansion {
    /// Expansion coefficients `c_0 … c_d` (the `c_0` term enters with
    /// weight ½ in evaluation, per the usual convention).
    pub coeffs: Vec<f64>,
    /// Lower end of the approximation interval.
    pub a: f64,
    /// Upper end of the approximation interval.
    pub b: f64,
}

impl ChebyshevExpansion {
    /// Fit `f` on `[a, b]` with a degree-`degree` expansion via cosine
    /// quadrature at `degree + 1` Chebyshev nodes.
    pub fn fit(f: impl Fn(f64) -> f64, a: f64, b: f64, degree: usize) -> Result<Self> {
        if !(a < b && a.is_finite() && b.is_finite()) {
            return Err(LinalgError::InvalidArgument("need finite a < b"));
        }
        let m = degree + 1;
        // f at the Chebyshev nodes of the interval.
        let fx: Vec<f64> = (0..m)
            .map(|j| {
                let theta = std::f64::consts::PI * (j as f64 + 0.5) / m as f64;
                let x = 0.5 * (a + b) + 0.5 * (b - a) * theta.cos();
                f(x)
            })
            .collect();
        let mut coeffs = Vec::with_capacity(m);
        for k in 0..m {
            let mut s = 0.0;
            for (j, &fj) in fx.iter().enumerate() {
                s += fj * (std::f64::consts::PI * k as f64 * (j as f64 + 0.5) / m as f64).cos();
            }
            coeffs.push(2.0 * s / m as f64);
        }
        Ok(Self { coeffs, a, b })
    }

    /// Degree of the expansion.
    pub fn degree(&self) -> usize {
        self.coeffs.len().saturating_sub(1)
    }

    /// Evaluate the scalar expansion at `x` (Clenshaw recurrence).
    pub fn eval(&self, x: f64) -> f64 {
        let t = (2.0 * x - self.a - self.b) / (self.b - self.a);
        let mut b1 = 0.0;
        let mut b2 = 0.0;
        for &c in self.coeffs.iter().skip(1).rev() {
            let tmp = 2.0 * t * b1 - b2 + c;
            b2 = b1;
            b1 = tmp;
        }
        t * b1 - b2 + 0.5 * self.coeffs[0]
    }

    /// Apply `f(A)·v` by the matrix three-term recurrence: `degree`
    /// matvecs, `O(n)` extra memory.
    ///
    /// The operator's spectrum must lie inside `[a, b]` (values outside
    /// make the Chebyshev polynomials blow up exponentially).
    ///
    /// Scratch buffers come from the crate's shared pool, so
    /// steady-state calls allocate only the returned vector; see
    /// [`Self::apply_ws`] to supply a caller-owned workspace instead.
    pub fn apply(&self, op: &dyn LinOp, v: &[f64]) -> Result<Vec<f64>> {
        crate::SCRATCH.with(|ws| self.apply_ws(op, v, ws))
    }

    /// [`Self::apply`] with caller-owned scratch: the three recurrence
    /// buffers (`T_{k−1} v`, `T_k v`, `T_{k+1} v`) are checked out of
    /// `ws` and returned to it, so a caller applying the expansion to
    /// many vectors allocates nothing after the first call.
    /// Bit-identical to [`Self::apply`].
    pub fn apply_ws(&self, op: &dyn LinOp, v: &[f64], ws: &mut Workspace) -> Result<Vec<f64>> {
        let mut ctx = KernelCtx::new();
        match self.apply_core(op, v, ws, &mut ctx)? {
            SolverOutcome::Converged { value, .. } => Ok(value),
            _ => unreachable!("an inert context can neither exhaust nor diverge"),
        }
    }

    /// Apply `f(A)·v` against an explicit [`KernelCtx`]: the unified
    /// entry point that every single-vector variant wraps. Scratch
    /// comes from the context's pool override or the crate pool.
    /// ([`Self::apply_multi`] is the blocked-SpMM form of the same
    /// recurrence and is verified bit-identical per vector.)
    pub fn apply_ctx(
        &self,
        op: &dyn LinOp,
        v: &[f64],
        ctx: &mut KernelCtx,
    ) -> Result<SolverOutcome<Vec<f64>>> {
        let _spmv = ctx.spmv_scope();
        ctx.scratch_pool_or(&crate::SCRATCH)
            .with(|ws| self.apply_core(op, v, ws, ctx))
    }

    /// The single three-term-recurrence loop. Every single-vector entry
    /// point funnels here; the context decides which concerns are live.
    fn apply_core(
        &self,
        op: &dyn LinOp,
        v: &[f64],
        ws: &mut Workspace,
        ctx: &mut KernelCtx,
    ) -> Result<SolverOutcome<Vec<f64>>> {
        let n = op.dim();
        if v.len() != n {
            return Err(LinalgError::DimensionMismatch {
                expected: n,
                found: v.len(),
            });
        }
        let vnorm = vector::norm2(v);
        // Affine map to [-1, 1]: T = alpha·A + beta·I with
        // alpha = 2/(b−a), beta = −(a+b)/(b−a); then T_0 v = v,
        // T_1 v = T v, T_{k+1} v = 2·T·(T_k v) − T_{k−1} v.
        let alpha = 2.0 / (self.b - self.a);
        let beta = -(self.a + self.b) / (self.b - self.a);
        let apply_t = |input: &[f64], out: &mut [f64]| {
            op.apply(input, out);
            vector::axpby(beta, input, alpha, out);
        };

        enum Exit {
            Done,
            Diverged(DivergenceCause),
            // Exhaustion remembers the degree it struck at, for the
            // truncation note and the dropped-tail certificate.
            Exhausted(Exhaustion, usize),
        }

        let mut t_prev = ws.take_f64(n); // T_0 v
        t_prev.copy_from_slice(v);
        let mut t_curr = ws.take_f64(n);
        apply_t(v, &mut t_curr); // T_1 v
        ctx.add_work(1);
        let mut acc: Vec<f64> = v.iter().map(|&x| 0.5 * self.coeffs[0] * x).collect();
        if self.coeffs.len() > 1 {
            vector::axpy(self.coeffs[1], &t_curr, &mut acc);
        }
        let mut t_next = ws.take_f64(n);
        let mut exit = Exit::Done;
        // CORE LOOP
        for (deg, &c) in self.coeffs.iter().enumerate().skip(2) {
            ctx.tick_iter();
            if let Some(exhausted) = ctx.add_work(1) {
                exit = Exit::Exhausted(exhausted, deg);
                break;
            }
            apply_t(&t_curr, &mut t_next);
            vector::axpby(-1.0, &t_prev, 2.0, &mut t_next);
            if ctx.is_guarded() {
                // On [a, b] every Chebyshev vector satisfies
                // ‖T_k v‖ ≤ ‖v‖ (spectral calculus); exponential growth
                // means the spectrum escaped the interval.
                let tnorm = vector::norm2(&t_next);
                ctx.push_residual(tnorm);
                if let GuardVerdict::Halt(cause) = ctx.check_iterate(&t_next, deg) {
                    exit = Exit::Diverged(cause);
                    break;
                }
                if tnorm > 1e8 * vnorm.max(f64::MIN_POSITIVE) {
                    exit = Exit::Diverged(DivergenceCause::ResidualBlowup {
                        at_iter: deg,
                        residual: tnorm,
                        best: vnorm,
                    });
                    break;
                }
            }
            vector::axpy(c, &t_next, &mut acc);
            std::mem::swap(&mut t_prev, &mut t_curr);
            std::mem::swap(&mut t_curr, &mut t_next);
        }
        ws.put_f64(t_prev);
        ws.put_f64(t_curr);
        ws.put_f64(t_next);

        let mut diags = ctx.finish();
        match exit {
            Exit::Diverged(cause) => Ok(SolverOutcome::diverged(cause, diags)),
            Exit::Exhausted(exhausted, deg) => {
                diags.note(format!("truncated at degree {}", deg - 1));
                // Dropped-tail weight Σ_{k≥deg} |c_k|, accumulated from
                // the high end exactly as the eager tail table did.
                let tail = self.coeffs[deg..]
                    .iter()
                    .rev()
                    .fold(0.0, |acc, c| acc + c.abs());
                Ok(SolverOutcome::exhausted(
                    acc,
                    exhausted,
                    Certificate::ResidualNorm {
                        value: tail * vnorm,
                    },
                    diags,
                ))
            }
            Exit::Done => Ok(SolverOutcome::converged(acc, diags)),
        }
    }

    /// Apply `f(A)·vⱼ` to a batch of vectors, advancing the three-term
    /// recurrences in lockstep so each degree costs one blocked SpMM
    /// ([`crate::CsrMatrix::matvec_multi`]) over the whole batch instead
    /// of one matvec per vector. Per-vector arithmetic is identical to
    /// [`Self::apply`], so every output is bit-identical to the
    /// corresponding single-vector call.
    pub fn apply_multi(&self, a: &crate::CsrMatrix, vs: &[Vec<f64>]) -> Result<Vec<Vec<f64>>> {
        let n = a.nrows();
        for v in vs {
            if v.len() != n {
                return Err(LinalgError::DimensionMismatch {
                    expected: n,
                    found: v.len(),
                });
            }
        }
        if vs.is_empty() {
            return Ok(Vec::new());
        }
        let alpha = 2.0 / (self.b - self.a);
        let beta = -(self.a + self.b) / (self.b - self.a);
        // Workspace-backed SpMM plus rotated recurrence buffers: one
        // staging block checkout per degree and zero fresh output
        // vectors after the first two degrees.
        let apply_t_multi =
            |inputs: &[Vec<f64>], ws: &mut crate::Workspace, outs: &mut Vec<Vec<f64>>| {
                a.matvec_multi_ws(inputs, ws, outs);
                for (out, input) in outs.iter_mut().zip(inputs) {
                    vector::axpby(beta, input, alpha, out);
                }
            };

        Ok(crate::SCRATCH.with(|ws| {
            let mut t_prev: Vec<Vec<f64>> = vs.to_vec();
            let mut t_curr = Vec::new();
            apply_t_multi(vs, ws, &mut t_curr);
            let mut accs: Vec<Vec<f64>> = vs
                .iter()
                .map(|v| v.iter().map(|&x| 0.5 * self.coeffs[0] * x).collect())
                .collect();
            if self.coeffs.len() > 1 {
                for (acc, tc) in accs.iter_mut().zip(&t_curr) {
                    vector::axpy(self.coeffs[1], tc, acc);
                }
            }
            let mut t_next: Vec<Vec<f64>> = Vec::new();
            for &c in self.coeffs.iter().skip(2) {
                apply_t_multi(&t_curr, ws, &mut t_next);
                for ((nx, pr), acc) in t_next.iter_mut().zip(&t_prev).zip(accs.iter_mut()) {
                    vector::axpby(-1.0, pr, 2.0, nx);
                    vector::axpy(c, nx, acc);
                }
                std::mem::swap(&mut t_prev, &mut t_curr);
                std::mem::swap(&mut t_curr, &mut t_next);
            }
            accs
        }))
    }
}

impl ChebyshevExpansion {
    /// Apply `f(A)·v` under an explicit resource [`Budget`], with
    /// blow-up guards and a structured [`SolverOutcome`].
    ///
    /// Each recurrence step costs one iteration and one work unit (its
    /// matvec). On budget exhaustion the partial sum through degree `d`
    /// is returned with a [`Certificate::ResidualNorm`] equal to
    /// `Σ_{k>d} |c_k| · ‖v‖` — a rigorous bound on the dropped tail
    /// whenever the spectrum lies in `[a, b]`, since `|T_k| ≤ 1` there.
    ///
    /// A spectrum escaping `[a, b]` makes the Chebyshev vectors grow
    /// exponentially; the guard detects this (or any NaN/Inf
    /// contamination) and returns [`SolverOutcome::Diverged`] — see
    /// [`cheb_heat_kernel_resilient`] for the escalation ladder that
    /// re-estimates the interval and falls back to the power-method
    /// (Krylov) route.
    pub fn apply_budgeted(
        &self,
        op: &dyn LinOp,
        v: &[f64],
        budget: &Budget,
    ) -> Result<SolverOutcome<Vec<f64>>> {
        // The guard is consulted only for NaN/Inf scans and the
        // interval-escape blow-up check on each Chebyshev vector.
        let mut ctx = KernelCtx::budgeted("linalg.chebyshev", budget)
            .with_guard(GuardConfig::contamination_only());
        self.apply_ctx(op, v, &mut ctx)
    }
}

/// Budgeted variant of [`cheb_heat_kernel`]: `exp(−t·A)·v` under an
/// explicit [`Budget`], returning a structured [`SolverOutcome`].
pub fn cheb_heat_kernel_budgeted(
    op: &dyn LinOp,
    t: f64,
    v: &[f64],
    lambda_max: f64,
    degree: usize,
    budget: &Budget,
) -> Result<SolverOutcome<Vec<f64>>> {
    if !(t >= 0.0 && t.is_finite()) {
        return Err(LinalgError::InvalidArgument("t must be nonnegative"));
    }
    if !(lambda_max > 0.0 && lambda_max.is_finite()) {
        return Err(LinalgError::InvalidArgument("lambda_max must be positive"));
    }
    let exp = ChebyshevExpansion::fit(|x| (-t * x).exp(), 0.0, lambda_max, degree)?;
    exp.apply_budgeted(op, v, budget)
}

/// Heat kernel with the Chebyshev escalation ladder. Attempt 0 expands
/// on `[0, lambda_max]` as given; if that diverges (the spectrum
/// escaped the interval, so the polynomials blew up), attempt 1
/// re-estimates the spectral interval with a short Lanczos (power
/// method family) run and refits; any later attempt abandons
/// polynomials entirely and falls back to the Krylov route
/// ([`crate::expm::expm_multiply`]), which needs no interval at all.
pub fn cheb_heat_kernel_resilient(
    op: &dyn LinOp,
    t: f64,
    v: &[f64],
    lambda_max: f64,
    degree: usize,
    budget: &Budget,
    policy: &RetryPolicy,
) -> Result<SolverOutcome<Vec<f64>>> {
    policy.run(|attempt| match attempt {
        0 => cheb_heat_kernel_budgeted(op, t, v, lambda_max, degree, budget),
        1 => {
            let (lo, hi) = crate::lanczos::spectral_interval(op, 20)?;
            // Pad: underestimating the interval is what kills Chebyshev.
            let hi = hi.max(lambda_max) + 0.1 * (hi - lo).abs().max(1.0);
            let mut out = cheb_heat_kernel_budgeted(op, t, v, hi.max(1e-6), degree, budget)?;
            out.diagnostics_mut()
                .note(format!("re-estimated spectral interval to [0, {hi:.3e}]"));
            Ok(out)
        }
        _ => {
            let value = crate::expm::expm_multiply(op, -t, v, 30)?;
            let mut diagnostics = Diagnostics::for_kernel("linalg.expm_krylov");
            diagnostics.note("fell back to Krylov expm (power-method family)");
            Ok(SolverOutcome::converged(value, diagnostics))
        }
    })
}

/// Convenience: `exp(−t·A)·v` for an operator with spectrum in
/// `[0, lambda_max]`, expanded to `degree`.
pub fn cheb_heat_kernel(
    op: &dyn LinOp,
    t: f64,
    v: &[f64],
    lambda_max: f64,
    degree: usize,
) -> Result<Vec<f64>> {
    if !(t >= 0.0 && t.is_finite()) {
        return Err(LinalgError::InvalidArgument("t must be nonnegative"));
    }
    if !(lambda_max > 0.0 && lambda_max.is_finite()) {
        return Err(LinalgError::InvalidArgument("lambda_max must be positive"));
    }
    let exp = ChebyshevExpansion::fit(|x| (-t * x).exp(), 0.0, lambda_max, degree)?;
    exp.apply(op, v)
}

/// Batched [`cheb_heat_kernel`]: `exp(−t·A)·vⱼ` for every vector in
/// `vs` with one blocked SpMM per degree. Each output is bit-identical
/// to the corresponding single-vector call (see
/// [`ChebyshevExpansion::apply_multi`]).
pub fn cheb_heat_kernel_multi(
    a: &crate::CsrMatrix,
    t: f64,
    vs: &[Vec<f64>],
    lambda_max: f64,
    degree: usize,
) -> Result<Vec<Vec<f64>>> {
    if !(t >= 0.0 && t.is_finite()) {
        return Err(LinalgError::InvalidArgument("t must be nonnegative"));
    }
    if !(lambda_max > 0.0 && lambda_max.is_finite()) {
        return Err(LinalgError::InvalidArgument("lambda_max must be positive"));
    }
    let exp = ChebyshevExpansion::fit(|x| (-t * x).exp(), 0.0, lambda_max, degree)?;
    exp.apply_multi(a, vs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expm::expm_multiply;
    use crate::sparse::CsrMatrix;

    fn path_laplacian(n: usize) -> CsrMatrix {
        let mut t = Vec::new();
        for i in 0..n - 1 {
            t.push((i, i, 1.0));
            t.push((i + 1, i + 1, 1.0));
            t.push((i, i + 1, -1.0));
            t.push((i + 1, i, -1.0));
        }
        CsrMatrix::from_triplets(n, n, t)
    }

    #[test]
    fn apply_multi_bit_identical_to_independent_applies() {
        let n = 40;
        let a = path_laplacian(n);
        let exp = ChebyshevExpansion::fit(|x| (-0.8 * x).exp(), 0.0, 4.0, 25).unwrap();
        let vs: Vec<Vec<f64>> = (0..3)
            .map(|s| {
                let mut v = vec![0.0; n];
                v[s * 7 + 1] = 1.0;
                v[s * 11 + 2] = 0.5;
                v
            })
            .collect();
        let batched = exp.apply_multi(&a, &vs).unwrap();
        for (v, got) in vs.iter().zip(&batched) {
            let single = exp.apply(&a, v).unwrap();
            assert_eq!(&single, got);
        }
        assert!(exp.apply_multi(&a, &[]).unwrap().is_empty());
        assert!(exp.apply_multi(&a, &[vec![0.0; 3]]).is_err());
    }

    #[test]
    fn scalar_fit_matches_function() {
        let e = ChebyshevExpansion::fit(f64::exp, -1.0, 1.0, 16).unwrap();
        for x in [-1.0, -0.3, 0.0, 0.7, 1.0] {
            assert!((e.eval(x) - x.exp()).abs() < 1e-12, "x = {x}");
        }
        assert_eq!(e.degree(), 16);
    }

    #[test]
    fn scalar_fit_on_shifted_interval() {
        let e = ChebyshevExpansion::fit(|x| 1.0 / (1.0 + x), 0.0, 4.0, 24).unwrap();
        for x in [0.0, 0.5, 2.0, 4.0] {
            assert!((e.eval(x) - 1.0 / (1.0 + x)).abs() < 1e-10, "x = {x}");
        }
    }

    #[test]
    fn matrix_apply_matches_scalar_on_diagonal() {
        let d = crate::dense::DenseMatrix::from_diag(&[0.1, 0.9, 1.7]);
        let e = ChebyshevExpansion::fit(|x| x * x + 1.0, 0.0, 2.0, 8).unwrap();
        let out = e.apply(&d, &[1.0, 1.0, 1.0]).unwrap();
        for (o, lam) in out.iter().zip([0.1, 0.9, 1.7]) {
            assert!((o - (lam * lam + 1.0)).abs() < 1e-10);
        }
    }

    #[test]
    fn heat_kernel_matches_krylov_route() {
        let n = 24;
        let l = path_laplacian(n);
        let mut neg = l.clone();
        neg.scale(-1.0);
        let mut seed = vec![0.0; n];
        seed[5] = 1.0;
        let krylov = expm_multiply(&neg, 1.3, &seed, n).unwrap();
        // Chebyshev on [0, 4] (path Laplacian spectrum ⊂ [0, 4]).
        let cheb = cheb_heat_kernel(&l, 1.3, &seed, 4.0, 40).unwrap();
        assert!(vector::dist2(&cheb, &krylov) < 1e-9);
    }

    #[test]
    fn degree_is_a_truncation_knob() {
        let n = 30;
        let l = path_laplacian(n);
        let mut seed = vec![0.0; n];
        seed[0] = 1.0;
        let exact = cheb_heat_kernel(&l, 2.0, &seed, 4.0, 60).unwrap();
        let rough = cheb_heat_kernel(&l, 2.0, &seed, 4.0, 6).unwrap();
        let mid = cheb_heat_kernel(&l, 2.0, &seed, 4.0, 16).unwrap();
        assert!(vector::dist2(&mid, &exact) < vector::dist2(&rough, &exact));
        // A degree-d expansion from a delta seed has support within d hops.
        let support = rough.iter().filter(|x| x.abs() > 1e-12).count();
        assert!(support <= 7, "degree-6 support {support} exceeds 7 nodes");
    }

    #[test]
    fn budgeted_full_run_matches_plain() {
        let n = 24;
        let l = path_laplacian(n);
        let mut seed = vec![0.0; n];
        seed[5] = 1.0;
        let plain = cheb_heat_kernel(&l, 1.3, &seed, 4.0, 40).unwrap();
        let out = cheb_heat_kernel_budgeted(&l, 1.3, &seed, 4.0, 40, &Budget::unlimited()).unwrap();
        assert!(out.is_converged());
        assert!(vector::dist2(out.value().unwrap(), &plain) < 1e-12);
    }

    #[test]
    fn budgeted_truncation_certificate_bounds_error() {
        let n = 30;
        let l = path_laplacian(n);
        let mut seed = vec![0.0; n];
        seed[0] = 1.0;
        let exact = cheb_heat_kernel(&l, 2.0, &seed, 4.0, 60).unwrap();
        let out = cheb_heat_kernel_budgeted(&l, 2.0, &seed, 4.0, 60, &Budget::work(10)).unwrap();
        assert!(!out.is_converged() && out.is_usable());
        let cert = out.certificate().unwrap().slack();
        let err = vector::dist2(out.value().unwrap(), &exact);
        assert!(
            err <= cert + 1e-9,
            "truncation error {err} exceeds certificate {cert}"
        );
        assert!(cert > 0.0);
    }

    #[test]
    fn budgeted_detects_spectrum_outside_interval() {
        // An interval that is definitely too small: [0, 1] for a
        // Laplacian with eigenvalues near 4 → the recurrence blows up.
        // The delta seed has energy on the whole spectrum.
        let n = 20;
        let l = path_laplacian(n);
        let mut seed = vec![0.0; n];
        seed[n / 2] = 1.0;
        let out = cheb_heat_kernel_budgeted(&l, 1.0, &seed, 1.0, 60, &Budget::unlimited()).unwrap();
        assert!(!out.is_usable(), "escaped spectrum must be flagged");
    }

    #[test]
    fn resilient_ladder_recovers_from_bad_interval() {
        let n = 24;
        let l = path_laplacian(n);
        let mut seed = vec![0.0; n];
        seed[5] = 1.0;
        let reference = cheb_heat_kernel(&l, 1.3, &seed, 4.0, 40).unwrap();
        // lambda_max = 1.0 is wrong (spectrum ⊂ [0, 4]); the ladder must
        // re-estimate the interval or fall back to Krylov.
        let out = cheb_heat_kernel_resilient(
            &l,
            1.3,
            &seed,
            1.0,
            40,
            &Budget::unlimited(),
            &RetryPolicy::default(),
        )
        .unwrap();
        assert!(out.is_usable(), "ladder should recover: {out:?}");
        assert!(out.diagnostics().restarts >= 1);
        assert!(vector::dist2(out.value().unwrap(), &reference) < 1e-6);
    }

    #[test]
    fn apply_ws_reuse_is_bit_identical() {
        let n = 24;
        let l = path_laplacian(n);
        let exp = ChebyshevExpansion::fit(|x| (-1.3 * x).exp(), 0.0, 4.0, 30).unwrap();
        let mut seed = vec![0.0; n];
        seed[5] = 1.0;
        let first = exp.apply(&l, &seed).unwrap();
        let mut ws = Workspace::new();
        for _ in 0..3 {
            let again = exp.apply_ws(&l, &seed, &mut ws).unwrap();
            assert_eq!(again, first);
        }
        assert_eq!(ws.parked_f64(), 3, "all scratch buffers returned");
    }

    #[test]
    fn validates_inputs() {
        assert!(ChebyshevExpansion::fit(f64::exp, 1.0, 1.0, 4).is_err());
        assert!(ChebyshevExpansion::fit(f64::exp, 2.0, 1.0, 4).is_err());
        let l = path_laplacian(4);
        let e = ChebyshevExpansion::fit(f64::exp, 0.0, 4.0, 4).unwrap();
        assert!(e.apply(&l, &[1.0]).is_err());
        assert!(cheb_heat_kernel(&l, -1.0, &[0.0; 4], 4.0, 4).is_err());
        assert!(cheb_heat_kernel(&l, 1.0, &[0.0; 4], 0.0, 4).is_err());
    }
}
