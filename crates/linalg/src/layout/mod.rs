//! Pluggable sparse-storage layouts for the CSR product family.
//!
//! [`crate::CsrMatrix`] keeps one canonical representation — CSR — and
//! can *execute* its products on alternate layouts that trade storage
//! shape for throughput. The contract every layout must honor:
//!
//! > **Bit-identity.** Each output element is accumulated strictly
//! > left-to-right over its row's stored entries, exactly like the
//! > scalar CSR scan, so every layout produces bitwise-identical
//! > results at every thread count (pinned by the
//! > `layout_equivalence` test matrix).
//!
//! Three layouts, behind the [`SparseLayout`] trait:
//!
//! * [`UnrolledCsr`] — the CSR arrays as-is, with the row accumulation
//!   8-wide unrolled and left-associated (the [`crate::vector::dot`]
//!   idiom): lower loop overhead, same addition sequence.
//! * [`SellCSigma`] — SELL-C-σ: rows sorted by descending length
//!   within σ-row windows (an internal [`Permutation`]-style
//!   relabeling, mapped back on write-out, mirroring the graph
//!   reordering plumbing of `acir-graph`), packed into column-major
//!   slices of C rows. The C lanes of a slice advance C *different*
//!   rows per step, so the serial FP-add chain per row becomes C
//!   independent chains — instruction-level parallelism the scalar
//!   scan cannot express. Padding lanes are never multiplied (a
//!   `0.0 × ∞` would manufacture NaNs and `-0.0 + 0.0` would flip
//!   signed zeros): descending lengths make the active lanes a prefix
//!   at every column position, so the kernel just shortens the lane
//!   loop.
//! * [`MergePlan`] — merge-based nnz balancing for skewed (power-law)
//!   degree distributions: chunk boundaries split the *entry* space
//!   evenly, so one hub row can no longer capsize a chunk. Rows that a
//!   boundary would split are excluded from the parallel phase and
//!   recomputed sequentially afterwards (ascending, ≤ one per
//!   boundary), because summing split-row partials would re-associate
//!   additions and break bit-identity.
//!
//! Selection happens per call in `CsrMatrix::matvec` from the ambient
//! [`acir_exec::SpmvLayout`] policy (thread-local scope installed by
//! `KernelCtx::spmv_scope`, else `ACIR_SPMV_LAYOUT`, else scalar CSR).
//! Derived layouts are built lazily on first use and cached inside the
//! matrix (`AltCache`); any `&mut self` mutation of the values
//! invalidates the cache.
//!
//! [`Permutation`]: https://docs.rs/acir-graph

pub mod merge;
pub mod sell;
pub mod unrolled;

pub use merge::MergePlan;
pub use sell::SellCSigma;
pub use unrolled::UnrolledCsr;

use crate::sparse::CsrMatrix;
use acir_exec::SpmvLayout;
use std::ops::Range;
use std::sync::OnceLock;

/// An execution layout for sparse matrix–vector products.
///
/// Implementations borrow the canonical CSR arrays (and any derived
/// arrays they own) and must keep per-row accumulation order identical
/// to the scalar scan — see the [module docs](self) for the contract.
pub trait SparseLayout {
    /// Which [`SpmvLayout`] policy value selects this implementation.
    fn layout(&self) -> SpmvLayout;

    /// `y = A x`, bit-identical to [`CsrMatrix::matvec`] on the
    /// scalar layout. `a` must be the matrix this layout was derived
    /// from (enforced by the caching in [`CsrMatrix`]).
    fn matvec(&self, a: &CsrMatrix, x: &[f64], y: &mut [f64]);
}

/// Chunk plan for the row-chunked products: nnz-balanced row ranges
/// plus their row counts (the `lens` argument of `par_parts_mut`).
pub(crate) type ChunkPlan = (Vec<Range<usize>>, Vec<usize>);

/// Lazily-built derived layouts and chunk plans, cached inside
/// [`CsrMatrix`].
///
/// The cache is **not** part of the matrix's value: `Clone` produces an
/// empty cache, `PartialEq` ignores it, and `Debug` elides it — so the
/// derived arrays can never leak into equality tests or snapshots.
/// Every `&mut self` mutator of the matrix calls
/// [`AltCache::invalidate`].
#[derive(Default)]
pub(crate) struct AltCache {
    chunks: OnceLock<ChunkPlan>,
    sell: OnceLock<SellCSigma>,
    merge: OnceLock<MergePlan>,
    auto: OnceLock<SpmvLayout>,
}

impl AltCache {
    /// Drop every derived structure (the matrix's values changed).
    pub(crate) fn invalidate(&mut self) {
        *self = Self::default();
    }

    pub(crate) fn chunks(&self, build: impl FnOnce() -> ChunkPlan) -> &ChunkPlan {
        self.chunks.get_or_init(build)
    }

    pub(crate) fn sell(&self, a: &CsrMatrix) -> &SellCSigma {
        self.sell.get_or_init(|| SellCSigma::build(a))
    }

    pub(crate) fn merge(&self, a: &CsrMatrix) -> &MergePlan {
        self.merge.get_or_init(|| MergePlan::build(a))
    }

    pub(crate) fn auto(&self, decide: impl FnOnce() -> SpmvLayout) -> SpmvLayout {
        *self.auto.get_or_init(decide)
    }
}

impl Clone for AltCache {
    fn clone(&self) -> Self {
        Self::default()
    }
}

impl PartialEq for AltCache {
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}

impl std::fmt::Debug for AltCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("AltCache { .. }")
    }
}
