//! Unrolled-CSR row kernels: the canonical arrays, 8-wide loop bodies.
//!
//! Same storage, same addition sequence, less loop overhead: every
//! body below is **left-associated** exactly like the one-at-a-time
//! scan (the [`crate::vector::dot`] idiom from the PR 2 `axpby`
//! family), so results are bit-identical to the scalar kernels. These
//! functions are also the row primitives the [`super::merge`] layout
//! and the non-scalar transpose/multi routes build on.

use crate::sparse::CsrMatrix;
use acir_exec::SpmvLayout;

/// Marker implementation of [`super::SparseLayout`] for the unrolled
/// route — stateless, since it reads the canonical CSR arrays.
#[derive(Debug, Clone, Copy, Default)]
pub struct UnrolledCsr;

/// The shared stateless instance behind the dispatch in
/// [`CsrMatrix::matvec`].
pub(crate) static UNROLLED: UnrolledCsr = UnrolledCsr;

impl super::SparseLayout for UnrolledCsr {
    fn layout(&self) -> SpmvLayout {
        SpmvLayout::Unrolled
    }

    fn matvec(&self, a: &CsrMatrix, x: &[f64], y: &mut [f64]) {
        a.matvec_on_row_chunks(x, y, rows);
    }
}

/// `Σ_j A[r,j]·x[j]` for one row, 8-wide unrolled.
///
/// The unrolled body is one left-associated expression
/// `acc + v₀x₀ + v₁x₁ + … + v₇x₇`, which is the exact addition
/// sequence of the scalar loop — bit-identical by construction.
#[inline]
pub(crate) fn row_sum(a: &CsrMatrix, x: &[f64], r: usize) -> f64 {
    let (row_ptr, col_idx, values) = a.raw_parts();
    let lo = row_ptr[r];
    let hi = row_ptr[r + 1];
    let cols = &col_idx[lo..hi];
    let vals = &values[lo..hi];
    let len = cols.len();
    let n8 = len - len % 8;
    let mut acc = 0.0f64;
    let mut k = 0;
    // CORE LOOP
    while k < n8 {
        let (c, v) = (&cols[k..k + 8], &vals[k..k + 8]);
        acc = acc
            + v[0] * x[c[0] as usize]
            + v[1] * x[c[1] as usize]
            + v[2] * x[c[2] as usize]
            + v[3] * x[c[3] as usize]
            + v[4] * x[c[4] as usize]
            + v[5] * x[c[5] as usize]
            + v[6] * x[c[6] as usize]
            + v[7] * x[c[7] as usize];
        k += 8;
    }
    while k < len {
        acc += vals[k] * x[cols[k] as usize];
        k += 1;
    }
    acc
}

/// Sequential kernel: `y_chunk[k] = (A x)[first_row + k]`, unrolled.
/// Signature-compatible with `CsrMatrix::matvec_rows` so the two
/// routes share the chunked driver.
pub(crate) fn rows(a: &CsrMatrix, x: &[f64], first_row: usize, y_chunk: &mut [f64]) {
    for (k, yi) in y_chunk.iter_mut().enumerate() {
        *yi = row_sum(a, x, first_row + k);
    }
}

/// Scatter kernel for the transposed product, 4-wide:
/// `y[c] += A[i,c]·x[i]` over `rows`. Column indices within a row are
/// strictly increasing (distinct targets), so unrolling the entry loop
/// preserves each `y[c]`'s update order — bit-identical to the scalar
/// scatter.
pub(crate) fn scatter_rows(a: &CsrMatrix, x: &[f64], rows: std::ops::Range<usize>, y: &mut [f64]) {
    let (row_ptr, col_idx, values) = a.raw_parts();
    for i in rows {
        let xi = x[i];
        if xi == 0.0 {
            continue;
        }
        let lo = row_ptr[i];
        let hi = row_ptr[i + 1];
        let cols = &col_idx[lo..hi];
        let vals = &values[lo..hi];
        let len = cols.len();
        let n4 = len - len % 4;
        let mut k = 0;
        while k < n4 {
            y[cols[k] as usize] += vals[k] * xi;
            y[cols[k + 1] as usize] += vals[k + 1] * xi;
            y[cols[k + 2] as usize] += vals[k + 2] * xi;
            y[cols[k + 3] as usize] += vals[k + 3] * xi;
            k += 4;
        }
        while k < len {
            y[cols[k] as usize] += vals[k] * xi;
            k += 1;
        }
    }
}

/// Blocked multi-RHS kernel, 2-wide over the entries: each pair of
/// entries updates every accumulator with one left-associated
/// expression `acc[j] + v₀·x₀[j] + v₁·x₁[j]` — per (row, rhs) the
/// addition sequence is exactly the scalar one-entry-at-a-time order.
/// `block_chunk` is the row-major staging block of the chunk
/// (`row-local × k`).
pub(crate) fn multi_rows(
    a: &CsrMatrix,
    xs: &[Vec<f64>],
    first_row: usize,
    block_chunk: &mut [f64],
) {
    let k = xs.len();
    let (row_ptr, col_idx, values) = a.raw_parts();
    for (local, acc) in block_chunk.chunks_exact_mut(k).enumerate() {
        let r = first_row + local;
        let lo = row_ptr[r];
        let hi = row_ptr[r + 1];
        let mut e = lo;
        while e + 1 < hi {
            let c0 = col_idx[e] as usize;
            let v0 = values[e];
            let c1 = col_idx[e + 1] as usize;
            let v1 = values[e + 1];
            for (aj, x) in acc.iter_mut().zip(xs) {
                *aj = *aj + v0 * x[c0] + v1 * x[c1];
            }
            e += 2;
        }
        if e < hi {
            let c0 = col_idx[e] as usize;
            let v0 = values[e];
            for (aj, x) in acc.iter_mut().zip(xs) {
                *aj += v0 * x[c0];
            }
        }
    }
}
