//! SELL-C-σ: sliced ELL storage with a σ-row sorting window.
//!
//! Rows are reordered so that each slice of `C` consecutive rows has
//! near-equal lengths, then each slice is stored **column-major**: the
//! `C` values at column position `j` belong to `C` different rows.
//! Walking a slice therefore advances `C` independent accumulation
//! chains — the scalar scan's one serial FP-add chain per row becomes
//! `C` chains the CPU can overlap, which is where the single-core
//! speedup comes from.
//!
//! Invariants that pin bit-identity and NaN-safety:
//!
//! * **Per-row order unchanged.** Lane `l` of a slice consumes row
//!   `slot_row[s·C+l]`'s entries in their original CSR order with a
//!   single accumulator — the exact scalar addition sequence.
//! * **Padding is never touched arithmetically.** Rows are sorted by
//!   descending length within each σ-window, and σ is a multiple of
//!   C, so inside a slice the active lanes at any column position are
//!   a *prefix*; the kernel shortens the lane loop instead of
//!   multiplying stored zeros (which would turn an `∞` or `NaN` in
//!   `x` into a contaminated output, and could flip `-0.0` signs).
//! * **Sorting is total.** Ties break on the original row index, so
//!   the permutation — hence the layout — is a pure function of the
//!   matrix.
//!
//! The row permutation is internal: the parallel path computes into a
//! permuted staging vector and maps results back to the caller's row
//! naming on write-out (the same permute → compute → `map_back`
//! discipline as `acir-graph`'s `Permutation`), so callers never see
//! relabeled rows.

use crate::sparse::{CsrMatrix, PAR_MIN_NNZ};
use acir_exec::{ExecPool, SpmvLayout};
use std::ops::Range;

/// Slice height: lanes (= independent accumulation chains) per slice.
pub(crate) const SELL_C: usize = 8;

/// Sorting-window height in rows. A multiple of [`SELL_C`] so no slice
/// straddles a window boundary (which keeps slice lengths descending),
/// and small enough that the row permutation stays local — after an
/// RCM reordering, gathers from `x` remain cache-friendly.
pub(crate) const SELL_SIGMA: usize = 256;

/// Target padded entries per parallel work unit (slice group).
const GROUP_TARGET_NNZ: usize = 8_192;

/// A CSR matrix repacked as SELL-C-σ (see the [module docs](self)).
/// Built lazily by [`CsrMatrix`] on first use and cached; immutable
/// afterwards.
#[derive(Debug, Clone)]
pub struct SellCSigma {
    nrows: usize,
    /// Original row held by each slot (permuted position), `u32::MAX`
    /// for the padding slots of the final slice. Length `n_slices·C`.
    slot_row: Vec<u32>,
    /// Slot index of each original row (the inverse map). Length `nrows`.
    row_slot: Vec<u32>,
    /// Stored-entry count of each slot's row (0 for padding slots).
    slot_len: Vec<u32>,
    /// Per-slice start offsets into `cols`/`vals`; slice `s` occupies
    /// `slice_ptr[s]..slice_ptr[s+1]` = `width_s · C` positions.
    slice_ptr: Vec<usize>,
    /// Column indices, column-major per slice (position `j·C + l` is
    /// entry `j` of lane `l`). Padding positions hold 0 (never read).
    cols: Vec<u32>,
    /// Values, same addressing as `cols`.
    vals: Vec<f64>,
    /// Parallel work units: ranges of slices with ~equal padded nnz.
    groups: Vec<Range<usize>>,
    /// Slots per group (`group len · C`) — the `par_parts_mut` lens.
    group_lens: Vec<usize>,
}

impl SellCSigma {
    /// Repack `a`. Cost is one counting sort per σ-window plus one
    /// sweep over the entries — amortized by the cache in
    /// [`CsrMatrix`] over every subsequent product. Public for the
    /// perfsuite and tests; library callers go through
    /// [`CsrMatrix::matvec`], which builds and caches lazily.
    pub fn build(a: &CsrMatrix) -> Self {
        let (row_ptr, col_idx, values) = a.raw_parts();
        let nrows = a.nrows();
        assert!(nrows < u32::MAX as usize, "SELL-C-σ: too many rows");
        let row_len = |r: usize| row_ptr[r + 1] - row_ptr[r];

        // Sort each σ-window by (length desc, index asc) — total order,
        // so the permutation is a pure function of the matrix.
        let mut order: Vec<u32> = (0..nrows as u32).collect();
        for window in order.chunks_mut(SELL_SIGMA) {
            window.sort_by_key(|&r| (std::cmp::Reverse(row_len(r as usize)), r));
        }

        let n_slices = nrows.div_ceil(SELL_C);
        let n_slots = n_slices * SELL_C;
        let mut slot_row = vec![u32::MAX; n_slots];
        slot_row[..nrows].copy_from_slice(&order);
        let mut row_slot = vec![0u32; nrows];
        for (slot, &r) in slot_row.iter().enumerate().take(nrows) {
            row_slot[r as usize] = slot as u32;
        }
        let slot_len: Vec<u32> = slot_row
            .iter()
            .map(|&r| {
                if r == u32::MAX {
                    0
                } else {
                    row_len(r as usize) as u32
                }
            })
            .collect();

        // Slice widths = first-lane length (max within the slice,
        // because lengths are descending inside every window and σ is
        // a multiple of C).
        let mut slice_ptr = Vec::with_capacity(n_slices + 1);
        slice_ptr.push(0usize);
        for s in 0..n_slices {
            let width = slot_len[s * SELL_C] as usize;
            slice_ptr.push(slice_ptr[s] + width * SELL_C);
        }
        let padded = *slice_ptr.last().unwrap_or(&0);
        let mut cols = vec![0u32; padded];
        let mut vals = vec![0.0f64; padded];
        for (s, &base) in slice_ptr.iter().enumerate().take(n_slices) {
            for l in 0..SELL_C {
                let slot = s * SELL_C + l;
                let r = slot_row[slot];
                if r == u32::MAX {
                    continue;
                }
                let lo = row_ptr[r as usize];
                for j in 0..slot_len[slot] as usize {
                    cols[base + j * SELL_C + l] = col_idx[lo + j];
                    vals[base + j * SELL_C + l] = values[lo + j];
                }
            }
        }

        // Group slices into nnz-balanced parallel work units.
        let mut groups = Vec::new();
        let mut group_lens = Vec::new();
        let target = GROUP_TARGET_NNZ.max(padded.div_ceil(acir_exec::MAX_CHUNKS.max(1)));
        let mut start = 0usize;
        while start < n_slices {
            let goal = slice_ptr[start] + target;
            let mut end = start + 1;
            while end < n_slices && slice_ptr[end] < goal {
                end += 1;
            }
            groups.push(start..end);
            group_lens.push((end - start) * SELL_C);
            start = end;
        }

        Self {
            nrows,
            slot_row,
            row_slot,
            slot_len,
            slice_ptr,
            cols,
            vals,
            groups,
            group_lens,
        }
    }

    /// Padded stored entries (incl. padding lanes) vs. `nnz` — the
    /// storage overhead of the layout, reported by the perfsuite.
    pub fn padded_nnz(&self) -> usize {
        self.vals.len()
    }

    /// Number of C-row slices.
    pub fn n_slices(&self) -> usize {
        self.slice_ptr.len().saturating_sub(1)
    }

    /// Compute the accumulators of slices `slices`, writing them into
    /// `out` (one `f64` per slot, slice-major — i.e. the *permuted*
    /// row order). Per-lane accumulation is strictly left-to-right
    /// over that row's entries.
    fn slices_into(&self, x: &[f64], slices: Range<usize>, out: &mut [f64]) {
        for (si, acc_out) in slices.clone().zip(out.chunks_exact_mut(SELL_C)) {
            let base = self.slice_ptr[si];
            let row0 = si * SELL_C;
            let width = (self.slice_ptr[si + 1] - base) / SELL_C;
            let min_len = self.slot_len[row0 + SELL_C - 1] as usize;
            let mut acc = [0.0f64; SELL_C];
            let mut j = 0;
            // CORE LOOP — full columns first: all C lanes active, C
            // independent add chains per step.
            while j < min_len {
                let b = base + j * SELL_C;
                let (c, v) = (&self.cols[b..b + SELL_C], &self.vals[b..b + SELL_C]);
                for l in 0..SELL_C {
                    acc[l] += v[l] * x[c[l] as usize];
                }
                j += 1;
            }
            // Ragged tail: active lanes are a prefix (lengths are
            // descending within the slice), so stop at the first
            // exhausted lane — padding is never multiplied.
            while j < width {
                let b = base + j * SELL_C;
                for l in 0..SELL_C {
                    if (j as u32) < self.slot_len[row0 + l] {
                        acc[l] += self.vals[b + l] * x[self.cols[b + l] as usize];
                    } else {
                        break;
                    }
                }
                j += 1;
            }
            acc_out.copy_from_slice(&acc);
        }
    }
}

impl super::SparseLayout for SellCSigma {
    fn layout(&self) -> SpmvLayout {
        SpmvLayout::Sell
    }

    fn matvec(&self, a: &CsrMatrix, x: &[f64], y: &mut [f64]) {
        debug_assert_eq!(a.nrows(), self.nrows);
        debug_assert_eq!(y.len(), self.nrows);
        let pool = ExecPool::from_env();
        // Sequential: scatter each slice's accumulators straight to
        // the caller's row naming. Parallel: compute into a pooled
        // permuted staging vector (groups own disjoint slot ranges),
        // then map back. Same per-row arithmetic on both paths — the
        // split may key on the thread count because only the *write
        // path* differs, never a floating-point operation.
        if a.nnz() < PAR_MIN_NNZ || pool.threads() == 1 || self.groups.len() == 1 {
            let mut acc = [0.0f64; SELL_C];
            for s in 0..self.n_slices() {
                self.slices_into(x, s..s + 1, &mut acc);
                for (l, &v) in acc.iter().enumerate() {
                    let r = self.slot_row[s * SELL_C + l];
                    if r != u32::MAX {
                        y[r as usize] = v;
                    }
                }
            }
            return;
        }
        crate::SCRATCH.with(|ws| {
            let mut yp = ws.take_f64(self.slot_row.len());
            pool.par_parts_mut(&mut yp, &self.group_lens, |g, chunk| {
                self.slices_into(x, self.groups[g].clone(), chunk);
            });
            for (yi, &slot) in y.iter_mut().zip(&self.row_slot) {
                *yi = yp[slot as usize];
            }
            ws.put_f64(yp);
        });
    }
}
