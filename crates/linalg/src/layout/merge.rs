//! Merge-based (nnz-balanced) SpMV for skewed degree distributions.
//!
//! The row-chunked products never split a row, so on a power-law graph
//! one hub row can dominate its chunk and serialize the tail of the
//! parallel region. The merge plan splits the **entry** space into
//! equal parts instead (the classic merge-path decomposition of
//! (row, entry) space): every parallel work unit processes ~the same
//! number of stored entries regardless of how rows are shaped.
//!
//! Bit-identity constraint: a row whose entries straddle a part
//! boundary cannot be summed as two partials — that would re-associate
//! its additions. Such *boundary rows* (at most one per internal
//! boundary, ≤ `MAX_CHUNKS − 1` total) are carved out of the parallel
//! phase and recomputed whole, sequentially and in ascending order,
//! after the parallel parts finish. Every output element is therefore
//! a strict left-to-right sum over its row — the scalar order.

use super::unrolled;
use crate::sparse::{CsrMatrix, CHUNK_TARGET_NNZ, PAR_MIN_NNZ};
use acir_exec::{ExecPool, SpmvLayout};
use std::ops::Range;

/// One run of rows in the plan: either wholly owned by a parallel work
/// unit, or a boundary row deferred to the sequential fixup.
#[derive(Debug, Clone)]
struct Part {
    rows: Range<usize>,
    boundary: bool,
}

/// An nnz-balanced execution plan over a CSR matrix (see the
/// [module docs](self)). Built lazily by [`CsrMatrix`] on first use
/// and cached; the plan stores only row ranges — products read the
/// canonical CSR arrays.
#[derive(Debug, Clone)]
pub struct MergePlan {
    parts: Vec<Part>,
    /// Row counts per part — the `par_parts_mut` lens over `y`.
    lens: Vec<usize>,
    /// The deferred rows, ascending.
    boundary_rows: Vec<u32>,
}

impl MergePlan {
    /// Plan `a`'s entry space into ~`CHUNK_TARGET_NNZ`-entry parts
    /// (at most [`acir_exec::MAX_CHUNKS`]), splitting between rows
    /// where possible and deferring boundary rows otherwise. Public for
    /// the perfsuite and tests; library callers go through
    /// [`CsrMatrix::matvec`], which builds and caches lazily.
    pub fn build(a: &CsrMatrix) -> Self {
        let (row_ptr, _, _) = a.raw_parts();
        let nrows = a.nrows();
        assert!(nrows < u32::MAX as usize, "merge plan: too many rows");
        let nnz = a.nnz();
        let nchunks = nnz
            .div_ceil(CHUNK_TARGET_NNZ.max(1))
            .clamp(1, acir_exec::MAX_CHUNKS);

        let mut parts = Vec::new();
        let mut boundary_rows = Vec::new();
        let mut cur = 0usize;
        for i in 1..nchunks {
            let e = i * nnz / nchunks;
            // Row containing entry `e`: last r with row_ptr[r] <= e.
            let r = row_ptr.partition_point(|p| *p <= e) - 1;
            if r < cur {
                // Boundary lands inside an already-deferred hub row
                // that spans several chunks.
                continue;
            }
            if e == row_ptr[r] {
                // Aligned with a row start: clean cut, no deferral.
                if r > cur {
                    parts.push(Part {
                        rows: cur..r,
                        boundary: false,
                    });
                    cur = r;
                }
            } else {
                if r > cur {
                    parts.push(Part {
                        rows: cur..r,
                        boundary: false,
                    });
                }
                parts.push(Part {
                    rows: r..r + 1,
                    boundary: true,
                });
                boundary_rows.push(r as u32);
                cur = r + 1;
            }
        }
        if cur < nrows {
            parts.push(Part {
                rows: cur..nrows,
                boundary: false,
            });
        }
        let lens = parts.iter().map(|p| p.rows.len()).collect();
        Self {
            parts,
            lens,
            boundary_rows,
        }
    }

    /// Parallel work units in the plan (tests/bench introspection).
    pub fn n_parts(&self) -> usize {
        self.parts.len()
    }

    /// Rows deferred to the sequential fixup pass.
    pub fn n_boundary_rows(&self) -> usize {
        self.boundary_rows.len()
    }
}

impl super::SparseLayout for MergePlan {
    fn layout(&self) -> SpmvLayout {
        SpmvLayout::Merge
    }

    fn matvec(&self, a: &CsrMatrix, x: &[f64], y: &mut [f64]) {
        if a.nnz() < PAR_MIN_NNZ || self.parts.len() == 1 {
            unrolled::rows(a, x, 0, y);
            return;
        }
        // CORE LOOP — entry-balanced parallel sweep; boundary parts
        // are left untouched here and written by the fixup below.
        ExecPool::from_env().par_parts_mut(y, &self.lens, |i, y_chunk| {
            let p = &self.parts[i];
            if !p.boundary {
                unrolled::rows(a, x, p.rows.start, y_chunk);
            }
        });
        // Sequential fixup: each deferred row summed whole, in its
        // scalar left-to-right order — no partials, no re-association.
        for &r in &self.boundary_rows {
            y[r as usize] = unrolled::row_sum(a, x, r as usize);
        }
    }
}
