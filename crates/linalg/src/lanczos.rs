//! Lanczos tridiagonalization with full reorthogonalization.
//!
//! The paper (footnote 15) notes that "Lanczos algorithms look at a
//! subspace of vectors generated during the iteration" and are best viewed
//! as refinements of the Power Method. Here Lanczos serves two roles:
//!
//! * computing a few extreme eigenpairs of large sparse graph operators
//!   (the exact-but-scalable path for the Fiedler vector of §3.1);
//! * approximating matrix functions `f(A)·v` — in particular the heat
//!   kernel `exp(-tL)·v` — via the standard Krylov projection
//!   `f(A)v ≈ ‖v‖ · V_k f(T_k) e₁` (see [`crate::expm`]).
//!
//! Full reorthogonalization is used: the graphs in this reproduction are
//! at most millions of edges and the Krylov dimensions are small (≤ a few
//! hundred), so robustness is worth the `O(n k²)` cost.

use crate::tridiag::tridiag_eig;
use crate::vector;
use crate::{LinOp, LinalgError, Result};
use acir_exec::ExecPool;
use acir_runtime::{
    Budget, Certificate, DivergenceCause, Exhaustion, GuardConfig, GuardVerdict, KernelCtx,
    RetryPolicy, SolverOutcome,
};

/// Below this many multiplied-out elements (`directions × vector length`)
/// a reorthogonalization sweep runs on one thread: the sweep is too small
/// to amortize worker spawn cost.
const PAR_MIN_REORTH: usize = 1 << 15;

/// Full reorthogonalization sweep ("twice is enough"): two classical
/// Gram–Schmidt passes projecting `w` against the deflation directions
/// and the entire Lanczos basis. The deflated directions are re-projected
/// on every pass as well: without this, rounding lets a deflated
/// eigenvector (e.g. the trivial `D^{1/2}·1` of a normalized Laplacian)
/// drift back in and reappear as a ghost Ritz value near its eigenvalue.
///
/// Within a pass every projection coefficient is computed against the
/// *same* iterate (classical, not modified, Gram–Schmidt), so the dot
/// products are independent and evaluated on the [`ExecPool`]. Each dot
/// is internally sequential and the subtractions are applied in fixed
/// direction order, so the result is bit-identical at any thread count;
/// the second pass mops up the rounding the first leaves behind.
fn reorthogonalize(w: &mut [f64], deflate: &[Vec<f64>], basis: &[Vec<f64>]) {
    let dirs: Vec<&[f64]> = deflate
        .iter()
        .map(Vec::as_slice)
        .chain(basis.iter().map(Vec::as_slice))
        .collect();
    // Path choice depends on problem size alone, never on thread count.
    let pool = if dirs.len() * w.len() < PAR_MIN_REORTH {
        ExecPool::with_threads(1)
    } else {
        ExecPool::from_env()
    };
    for _ in 0..2 {
        let coeffs = pool.par_map(&dirs, 1, |u| vector::dot(w, u));
        for (u, c) in dirs.iter().zip(&coeffs) {
            vector::axpy(-c, u, w);
        }
    }
}

/// Output of a Lanczos run.
#[derive(Debug, Clone)]
pub struct LanczosResult {
    /// Diagonal of the tridiagonal matrix `T_k` (length `k`).
    pub alpha: Vec<f64>,
    /// Off-diagonal of `T_k` (length `k-1`).
    pub beta: Vec<f64>,
    /// Orthonormal Lanczos basis, one vector per column-entry
    /// (`basis[j]` is the j-th Krylov vector, length `n`).
    pub basis: Vec<Vec<f64>>,
    /// True if the iteration terminated because the Krylov space became
    /// invariant (lucky breakdown) before reaching the requested size.
    pub breakdown: bool,
}

impl LanczosResult {
    /// Krylov dimension actually reached.
    pub fn k(&self) -> usize {
        self.alpha.len()
    }

    /// Ritz pairs: eigenvalues of `T_k` (ascending) and the corresponding
    /// Ritz vectors `V_k y` lifted back to `R^n`.
    pub fn ritz_pairs(&self) -> Result<(Vec<f64>, Vec<Vec<f64>>)> {
        let t = tridiag_eig(&self.alpha, &self.beta)?;
        let k = self.k();
        let n = self.basis.first().map_or(0, Vec::len);
        let mut vecs = Vec::with_capacity(k);
        for col in 0..k {
            let mut v = vec![0.0; n];
            for (j, basis_j) in self.basis.iter().enumerate() {
                vector::axpy(t.eigenvectors[(j, col)], basis_j, &mut v);
            }
            vecs.push(v);
        }
        Ok((t.eigenvalues, vecs))
    }
}

/// Run `k` steps of Lanczos on symmetric operator `op` from seed `v0`,
/// deflating the unit-norm directions in `deflate` from every iterate.
///
/// Errors if the seed is zero after deflation or dimensions mismatch.
pub fn lanczos(
    op: &dyn LinOp,
    v0: &[f64],
    k: usize,
    deflate: &[Vec<f64>],
) -> Result<LanczosResult> {
    let mut ctx = KernelCtx::new();
    match lanczos_ctx(op, v0, k, deflate, &mut ctx)? {
        SolverOutcome::Converged { value, .. } => Ok(value),
        _ => unreachable!("an inert context can neither exhaust nor diverge"),
    }
}

/// Lanczos against an explicit [`KernelCtx`]: the unified entry point
/// that every legacy variant wraps. The Krylov dimension `k` always
/// bounds the run; a metered context can additionally cut it short.
pub fn lanczos_ctx(
    op: &dyn LinOp,
    v0: &[f64],
    k: usize,
    deflate: &[Vec<f64>],
    ctx: &mut KernelCtx,
) -> Result<SolverOutcome<LanczosResult>> {
    let _spmv = ctx.spmv_scope();
    let n = op.dim();
    if v0.len() != n {
        return Err(LinalgError::DimensionMismatch {
            expected: n,
            found: v0.len(),
        });
    }
    if k == 0 {
        return Err(LinalgError::InvalidArgument("k must be positive"));
    }
    let k = k.min(n);

    let mut q = v0.to_vec();
    for u in deflate {
        vector::deflate(&mut q, u);
    }
    if vector::normalize2(&mut q) < 1e-300 {
        return Err(LinalgError::InvalidArgument(
            "seed vector is zero after deflation",
        ));
    }

    enum Exit {
        Done,
        Diverged(DivergenceCause),
        Exhausted(Exhaustion, f64),
    }

    let mut alpha = Vec::with_capacity(k);
    let mut beta: Vec<f64> = Vec::with_capacity(k.saturating_sub(1));
    let mut basis = vec![q.clone()];
    let mut breakdown = false;
    let mut w = vec![0.0; n];
    let mut exit = Exit::Done;

    // CORE LOOP
    for j in 0..k {
        op.apply(&basis[j], &mut w);
        if let GuardVerdict::Halt(cause) = ctx.check_iterate(&w, j) {
            exit = Exit::Diverged(cause);
            break;
        }
        for u in deflate {
            vector::deflate(&mut w, u);
        }
        let a_j = vector::dot(&basis[j], &w);
        alpha.push(a_j);
        vector::axpy(-a_j, &basis[j], &mut w);
        if j > 0 {
            vector::axpy(-beta[j - 1], &basis[j - 1], &mut w);
        }
        reorthogonalize(&mut w, deflate, &basis);
        if j + 1 == k {
            break;
        }
        let b_j = vector::norm2(&w);
        // The residual of the tridiagonalization *is* the off-diagonal.
        ctx.push_residual(b_j);
        if b_j < 1e-12 {
            breakdown = true;
            ctx.note_with(|| format!("lucky breakdown at step {j}: invariant subspace"));
            break;
        }
        ctx.tick_iter();
        if let Some(exhausted) = ctx.add_work(1) {
            exit = Exit::Exhausted(exhausted, b_j);
            break;
        }
        beta.push(b_j);
        let mut next = w.clone();
        vector::scale(1.0 / b_j, &mut next);
        basis.push(next);
    }

    let diags = ctx.finish();
    match exit {
        Exit::Diverged(cause) => Ok(SolverOutcome::diverged(cause, diags)),
        Exit::Exhausted(exhausted, b_j) => Ok(SolverOutcome::exhausted(
            LanczosResult {
                alpha,
                beta,
                basis,
                breakdown: false,
            },
            exhausted,
            Certificate::ResidualNorm { value: b_j },
            diags,
        )),
        Exit::Done => Ok(SolverOutcome::converged(
            LanczosResult {
                alpha,
                beta,
                basis,
                breakdown,
            },
            diags,
        )),
    }
}

/// Lanczos under an explicit resource [`Budget`], with contamination
/// guards and a structured [`SolverOutcome`].
///
/// Each Lanczos step costs one iteration and one work unit (its
/// matvec). On budget exhaustion the partial tridiagonalization built
/// so far is returned with a [`Certificate::ResidualNorm`] carrying the
/// last off-diagonal `β_j`: by the standard Lanczos residual bound,
/// every Ritz value of the partial `T_j` lies within `β_j` of a true
/// eigenvalue of the operator. NaN/Inf contamination of a Krylov vector
/// yields [`SolverOutcome::Diverged`]. A *lucky* breakdown (invariant
/// subspace found early) is convergence, exactly as in [`lanczos`].
pub fn lanczos_budgeted(
    op: &dyn LinOp,
    v0: &[f64],
    k: usize,
    deflate: &[Vec<f64>],
    budget: &Budget,
) -> Result<SolverOutcome<LanczosResult>> {
    // The guard is consulted only for NaN/Inf scans of each Krylov
    // vector — Lanczos off-diagonals may legitimately plateau.
    let mut ctx =
        KernelCtx::budgeted("linalg.lanczos", budget).with_guard(GuardConfig::contamination_only());
    lanczos_ctx(op, v0, k, deflate, &mut ctx)
}

/// Budgeted, retrying version of [`smallest_eigenpairs`]: computes the
/// `m` smallest eigenpairs under `budget`, escalating through restarts
/// with freshly perturbed seeds when the Krylov space collapses below
/// `m` dimensions (a *structural* breakdown — the seed was too poor to
/// span enough of the spectrum) or the run diverges.
///
/// Returns `(eigenvalues, eigenvectors)` with eigenvalues ascending,
/// wrapped in the outcome of the final attempt.
#[allow(clippy::type_complexity)]
pub fn smallest_eigenpairs_resilient(
    op: &dyn LinOp,
    m: usize,
    krylov: usize,
    deflate: &[Vec<f64>],
    budget: &Budget,
    policy: &RetryPolicy,
) -> Result<SolverOutcome<(Vec<f64>, Vec<Vec<f64>>)>> {
    let n = op.dim();
    if m == 0 || m > n {
        return Err(LinalgError::InvalidArgument("need 0 < m <= n"));
    }
    let k = krylov.max(3 * m).min(n);
    let outcome = policy.run(|attempt| {
        // A different deterministic seed per attempt: the LCG stream is
        // offset so retries explore a genuinely different direction.
        let mut state = 0x9e3779b97f4a7c15u64 ^ ((attempt as u64) << 32 | 0x51_7cc1);
        let v0: Vec<f64> = (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
            })
            .collect();
        let out = lanczos_budgeted(op, &v0, k, deflate, budget)?;
        // A collapsed Krylov space that cannot yield m pairs is a
        // breakdown worth retrying with a new seed.
        Ok(match out {
            SolverOutcome::Converged { value, diagnostics } if value.k() < m => {
                let at_iter = value.k();
                SolverOutcome::diverged(
                    DivergenceCause::Breakdown {
                        at_iter,
                        what: "Krylov space collapsed below the requested pair count",
                    },
                    diagnostics,
                )
            }
            other => other,
        })
    })?;

    // Lift the surviving tridiagonalization to Ritz pairs.
    Ok(match outcome {
        SolverOutcome::Converged { value, diagnostics } => {
            let (vals, vecs) = value.ritz_pairs()?;
            let take = m.min(vals.len());
            SolverOutcome::Converged {
                value: (vals[..take].to_vec(), vecs[..take].to_vec()),
                diagnostics,
            }
        }
        SolverOutcome::BudgetExhausted {
            best_so_far,
            exhausted,
            certificate,
            diagnostics,
        } => {
            let (vals, vecs) = best_so_far.ritz_pairs()?;
            let take = m.min(vals.len());
            SolverOutcome::BudgetExhausted {
                best_so_far: (vals[..take].to_vec(), vecs[..take].to_vec()),
                exhausted,
                certificate,
                diagnostics,
            }
        }
        SolverOutcome::Diverged {
            at_iter,
            cause,
            diagnostics,
        } => SolverOutcome::Diverged {
            at_iter,
            cause,
            diagnostics,
        },
    })
}

/// Compute the `m` smallest eigenpairs of a symmetric operator via
/// Lanczos with a random-ish deterministic seed, deflating `deflate`.
///
/// `krylov` is the Krylov dimension (clamped to `[3m, n]`); accuracy
/// improves with larger values. Returns `(eigenvalues, eigenvectors)`
/// with eigenvalues ascending.
pub fn smallest_eigenpairs(
    op: &dyn LinOp,
    m: usize,
    krylov: usize,
    deflate: &[Vec<f64>],
) -> Result<(Vec<f64>, Vec<Vec<f64>>)> {
    let n = op.dim();
    if m == 0 || m > n {
        return Err(LinalgError::InvalidArgument("need 0 < m <= n"));
    }
    let k = krylov.max(3 * m).min(n);
    // Deterministic pseudo-random seed: a fixed LCG keeps the library
    // dependency-free here and the result reproducible.
    let mut state = 0x9e3779b97f4a7c15u64;
    let v0: Vec<f64> = (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        })
        .collect();
    let res = lanczos(op, &v0, k, deflate)?;
    let (vals, vecs) = res.ritz_pairs()?;
    let take = m.min(vals.len());
    Ok((vals[..take].to_vec(), vecs[..take].to_vec()))
}

/// Estimate the spectral interval `[λmin, λmax]` of a symmetric
/// operator from a `k`-step Lanczos run (extreme Ritz values, padded by
/// the final residual norm so the true spectrum is contained whp).
///
/// The standard way to pick the Chebyshev interval for
/// [`crate::chebyshev`] when `λmax` is not known analytically.
pub fn spectral_interval(op: &dyn LinOp, k: usize) -> Result<(f64, f64)> {
    let n = op.dim();
    if n == 0 {
        return Err(LinalgError::InvalidArgument("empty operator"));
    }
    let mut state = 0xdeadbeefcafef00du64;
    let v0: Vec<f64> = (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        })
        .collect();
    let res = lanczos(op, &v0, k.max(2), &[])?;
    let te = tridiag_eig(&res.alpha, &res.beta)?;
    let lo = te.eigenvalues[0];
    let hi = *te.eigenvalues.last().unwrap();
    // Pad by the last off-diagonal (residual) so the interval brackets
    // the true extremes even when Lanczos hasn't fully converged.
    let pad = res.beta.last().copied().unwrap_or(0.0).abs();
    Ok((lo - pad, hi + pad))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseMatrix;
    use crate::sparse::CsrMatrix;

    /// Path-graph combinatorial Laplacian as CSR.
    fn path_laplacian(n: usize) -> CsrMatrix {
        let mut t = Vec::new();
        for i in 0..n - 1 {
            t.push((i, i, 1.0));
            t.push((i + 1, i + 1, 1.0));
            t.push((i, i + 1, -1.0));
            t.push((i + 1, i, -1.0));
        }
        CsrMatrix::from_triplets(n, n, t)
    }

    #[test]
    fn full_krylov_recovers_exact_spectrum() {
        let n = 12;
        let l = path_laplacian(n);
        let res = lanczos(
            &l,
            &vec![1.0; n]
                .iter()
                .enumerate()
                .map(|(i, _)| (i as f64 + 1.0).sin())
                .collect::<Vec<_>>(),
            n,
            &[],
        )
        .unwrap();
        let (vals, vecs) = res.ritz_pairs().unwrap();
        for (k, &lam) in vals.iter().enumerate() {
            let expected = 2.0 - 2.0 * (std::f64::consts::PI * k as f64 / n as f64).cos();
            assert!((lam - expected).abs() < 1e-8, "k={k}: {lam} vs {expected}");
        }
        // Ritz vectors are true eigenvectors at full dimension.
        for (lam, v) in vals.iter().zip(&vecs) {
            let mut lv = vec![0.0; n];
            l.matvec(v, &mut lv);
            let mut r = lv;
            vector::axpy(-lam, v, &mut r);
            assert!(vector::norm2(&r) < 1e-7);
        }
    }

    #[test]
    fn basis_is_orthonormal() {
        let n = 20;
        let l = path_laplacian(n);
        let seed: Vec<f64> = (0..n).map(|i| ((i * 7 + 3) % 11) as f64 - 5.0).collect();
        let res = lanczos(&l, &seed, 10, &[]).unwrap();
        for i in 0..res.basis.len() {
            for j in 0..res.basis.len() {
                let d = vector::dot(&res.basis[i], &res.basis[j]);
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!((d - expected).abs() < 1e-10, "({i},{j}): {d}");
            }
        }
    }

    #[test]
    fn deflation_excludes_nullspace() {
        let n = 10;
        let l = path_laplacian(n);
        // Constant vector spans the null space of the path Laplacian.
        let ones_unit = vec![1.0 / (n as f64).sqrt(); n];
        let (vals, _) = smallest_eigenpairs(&l, 1, n, &[ones_unit]).unwrap();
        // Smallest *nontrivial* eigenvalue: 2 − 2cos(π/n).
        let expected = 2.0 - 2.0 * (std::f64::consts::PI / n as f64).cos();
        assert!(
            (vals[0] - expected).abs() < 1e-8,
            "{} vs {expected}",
            vals[0]
        );
    }

    #[test]
    fn lucky_breakdown_on_invariant_subspace() {
        // Seed is an exact eigenvector of a diagonal matrix: the Krylov
        // space is 1-dimensional.
        let a = DenseMatrix::from_diag(&[1.0, 2.0, 3.0]);
        let res = lanczos(&a, &[0.0, 1.0, 0.0], 3, &[]).unwrap();
        assert!(res.breakdown);
        assert_eq!(res.k(), 1);
        assert!((res.alpha[0] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn argument_validation() {
        let a = DenseMatrix::identity(3);
        assert!(lanczos(&a, &[1.0], 2, &[]).is_err());
        assert!(lanczos(&a, &[1.0, 1.0, 1.0], 0, &[]).is_err());
        assert!(lanczos(&a, &[0.0, 0.0, 0.0], 2, &[]).is_err());
        assert!(smallest_eigenpairs(&a, 0, 3, &[]).is_err());
        assert!(smallest_eigenpairs(&a, 4, 3, &[]).is_err());
    }

    #[test]
    fn spectral_interval_brackets_true_spectrum() {
        let n = 20;
        let l = path_laplacian(n);
        let (lo, hi) = spectral_interval(&l, 15).unwrap();
        // Path Laplacian spectrum ⊂ [0, 4).
        assert!(lo <= 1e-6, "lo = {lo}");
        assert!(hi >= 2.0 - 2.0 * (std::f64::consts::PI * (n - 1) as f64 / n as f64).cos() - 1e-6);
        assert!(hi < 8.0, "padding should stay sane: hi = {hi}");
        let empty_err = spectral_interval(&DenseMatrix::zeros(0, 0), 5);
        assert!(empty_err.is_err());
    }

    #[test]
    fn budgeted_full_run_matches_plain() {
        let n = 12;
        let l = path_laplacian(n);
        let seed: Vec<f64> = (0..n).map(|i| ((i * 7 + 3) % 11) as f64 - 5.0).collect();
        let out = lanczos_budgeted(&l, &seed, 8, &[], &Budget::unlimited()).unwrap();
        assert!(out.is_converged());
        let plain = lanczos(&l, &seed, 8, &[]).unwrap();
        let got = out.value().unwrap();
        assert_eq!(got.alpha.len(), plain.alpha.len());
        for (a, b) in got.alpha.iter().zip(&plain.alpha) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn budgeted_exhaustion_certificate_brackets_spectrum() {
        let n = 40;
        let l = path_laplacian(n);
        let seed: Vec<f64> = (0..n).map(|i| ((i as f64) + 0.5).sin()).collect();
        let out = lanczos_budgeted(&l, &seed, n, &[], &Budget::iterations(6)).unwrap();
        assert!(!out.is_converged() && out.is_usable());
        let cert_slack = out.certificate().unwrap().slack();
        let partial = out.value().unwrap();
        // Every Ritz value of the partial T must be within β (the
        // certificate) of a true eigenvalue λ_k = 2 − 2cos(πk/n).
        let (ritz, _) = partial.ritz_pairs().unwrap();
        for theta in &ritz {
            let nearest = (0..n)
                .map(|k| 2.0 - 2.0 * (std::f64::consts::PI * k as f64 / n as f64).cos())
                .map(|lam| (lam - theta).abs())
                .fold(f64::INFINITY, f64::min);
            assert!(
                nearest <= cert_slack + 1e-9,
                "ritz {theta} is {nearest} from spectrum, certificate {cert_slack}"
            );
        }
    }

    #[test]
    fn budgeted_detects_poisoned_operator() {
        let n = 10;
        let l = path_laplacian(n);
        let faulty = crate::fault::FaultyOp::new(
            &l,
            acir_runtime::FaultConfig::nans(1.0).after_clean_applies(3),
        );
        let seed: Vec<f64> = (0..n).map(|i| (i as f64 + 0.5).sin()).collect();
        let out = lanczos_budgeted(&faulty, &seed, n, &[], &Budget::unlimited()).unwrap();
        assert!(!out.is_usable());
    }

    #[test]
    fn resilient_eigenpairs_match_plain_path() {
        let n = 16;
        let l = path_laplacian(n);
        let out = smallest_eigenpairs_resilient(
            &l,
            3,
            n,
            &[],
            &Budget::unlimited(),
            &RetryPolicy::default(),
        )
        .unwrap();
        assert!(out.is_converged());
        let (vals, _) = out.value().unwrap();
        for (k, v) in vals.iter().enumerate() {
            let expected = 2.0 - 2.0 * (std::f64::consts::PI * k as f64 / n as f64).cos();
            assert!((v - expected).abs() < 1e-7, "k={k}");
        }
    }

    #[test]
    fn smallest_eigenpairs_matches_jacobi() {
        let n = 16;
        let l = path_laplacian(n);
        let (vals, vecs) = smallest_eigenpairs(&l, 3, n, &[]).unwrap();
        let dense = l.to_dense();
        let eig = crate::jacobi::SymEig::new(&dense).unwrap();
        for i in 0..3 {
            assert!((vals[i] - eig.eigenvalues[i]).abs() < 1e-7, "i={i}");
            assert!(vector::alignment(&vecs[i], &eig.eigenvector(i)) > 1.0 - 1e-6);
        }
    }
}
