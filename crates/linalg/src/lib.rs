//! # acir-linalg
//!
//! Dense and sparse linear-algebra substrate for the ACIR reproduction of
//! Mahoney, *"Approximate Computation and Implicit Regularization for Very
//! Large-scale Data Analysis"* (PODS 2012).
//!
//! The paper's case studies need a specific, modest slice of numerical
//! linear algebra, all of which is implemented here from scratch:
//!
//! * dense vectors and matrices with BLAS-1/2/3 style kernels
//!   ([`vector`], [`dense`]);
//! * sparse CSR matrices and matrix–vector products that never densify
//!   ([`sparse`]);
//! * an "exact" symmetric eigensolver (cyclic Jacobi, [`jacobi`]) — the
//!   black-box solver of the paper's footnote 14;
//! * the Power Method of footnote 15 with explicit iteration-count control
//!   ([`power`]) — early stopping is one of the paper's regularization
//!   knobs, so the iteration budget is a first-class parameter;
//! * Lanczos tridiagonalization with full reorthogonalization and a
//!   symmetric tridiagonal QL eigensolver ([`mod@lanczos`], [`tridiag`]) for
//!   large sparse spectra;
//! * direct and iterative linear solvers (Cholesky, LU, conjugate
//!   gradient, Jacobi/Gauss–Seidel) ([`solve`]);
//! * matrix exponentials, dense and operator form ([`expm`]) — the heat
//!   kernel `exp(-tL)` of §3.1 in both its exact and approximate guises;
//! * Chebyshev approximation of matrix functions ([`chebyshev`]) — one
//!   matvec per degree, and the degree is yet another truncation knob
//!   (a degree-d expansion of a delta seed reaches only d hops);
//! * randomized sketching, thin QR, randomized truncated SVD, and
//!   sketched least squares ([`sketch`]) — the §2.3 / ref \[30\]
//!   randomization-as-regularization instances, with the
//!   truncated-SVD-denoises demonstration in the tests.
//!
//! Everything is `f64`; matrices are row-major; no external linear-algebra
//! dependencies are used.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chebyshev;
pub mod dense;
pub mod expm;
pub mod fault;
pub mod jacobi;
pub mod lanczos;
pub mod layout;
pub mod power;
pub mod sketch;
pub mod solve;
pub mod sparse;
pub mod tridiag;
pub mod vector;

pub use dense::DenseMatrix;
pub use fault::FaultyOp;
pub use jacobi::SymEig;
pub use lanczos::{lanczos, lanczos_budgeted, lanczos_ctx, LanczosResult};
pub use layout::{MergePlan, SellCSigma, SparseLayout, UnrolledCsr};
pub use power::{
    power_method, power_method_budgeted, power_method_ctx, power_method_ws, PowerOptions,
    PowerResult,
};
pub use solve::{cg, cg_budgeted, cg_ctx, cg_resilient, cg_ws, CgOptions, CgResult};
pub use sparse::CsrMatrix;

// Resilience-runtime vocabulary, re-exported so downstream crates can
// budget and match on outcomes without an explicit acir-runtime dep.
pub use acir_runtime::{
    Budget, Certificate, DivergenceCause, RetryPolicy, SolverOutcome, Workspace,
};

// SpMV layout policy vocabulary (lives in acir-exec so the runtime's
// KernelCtx can carry it), re-exported for the same reason.
pub use acir_exec::{current_spmv_layout, spmv_layout_scope, SpmvLayout, SpmvLayoutScope};

/// Shared scratch pool behind the plain public entry points of the dense
/// iterative kernels ([`power_method`], [`cg`],
/// [`chebyshev::ChebyshevExpansion::apply`]): their `O(n)` recurrence
/// buffers survive across calls, so steady-state invocations stop
/// hitting the allocator. The `_ws` variants accept a caller-owned
/// [`Workspace`] instead for callers that manage their own reuse.
pub(crate) static SCRATCH: acir_runtime::WorkspacePool<Workspace> =
    acir_runtime::WorkspacePool::new();

/// Errors produced by the linear-algebra substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Operand dimensions do not match the operation.
    DimensionMismatch {
        /// Expected dimension.
        expected: usize,
        /// Dimension actually supplied.
        found: usize,
    },
    /// The matrix is not (numerically) positive definite.
    NotPositiveDefinite,
    /// The matrix is singular to working precision.
    Singular,
    /// An iterative method failed to converge within its budget.
    NotConverged {
        /// Iterations performed before giving up.
        iterations: usize,
        /// Residual norm at the last iteration.
        residual: f64,
    },
    /// Invalid argument (e.g. non-square matrix where square is required).
    InvalidArgument(&'static str),
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::DimensionMismatch { expected, found } => {
                write!(f, "dimension mismatch: expected {expected}, found {found}")
            }
            LinalgError::NotPositiveDefinite => write!(f, "matrix is not positive definite"),
            LinalgError::Singular => write!(f, "matrix is singular to working precision"),
            LinalgError::NotConverged {
                iterations,
                residual,
            } => write!(
                f,
                "iterative method did not converge after {iterations} iterations (residual {residual:.3e})"
            ),
            LinalgError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// Result alias for fallible linear-algebra operations.
pub type Result<T> = std::result::Result<T, LinalgError>;

/// A real linear operator `y = A x` on `R^n`.
///
/// The iterative algorithms in this crate ([`power_method`], [`fn@lanczos`],
/// [`cg`]) are written against this trait so that graph Laplacians and
/// other matrix-free operators from the higher-level crates can be plugged
/// in without ever materializing a dense matrix — the property that makes
/// the Power Method viable at web scale (paper §3.1: "it can be implemented
/// with simple matrix-vector multiplications, thus not damaging the
/// sparsity of the matrix").
pub trait LinOp {
    /// Dimension `n` of the (square) operator.
    fn dim(&self) -> usize;

    /// Compute `y = A x`. `x` and `y` have length [`LinOp::dim`];
    /// implementations must overwrite `y` completely.
    fn apply(&self, x: &[f64], y: &mut [f64]);

    /// Convenience: allocate and return `A x`.
    fn apply_vec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.dim()];
        self.apply(x, &mut y);
        y
    }
}

impl LinOp for DenseMatrix {
    fn dim(&self) -> usize {
        debug_assert_eq!(self.nrows(), self.ncols());
        self.nrows()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.gemv(1.0, x, 0.0, y);
    }
}

impl LinOp for CsrMatrix {
    fn dim(&self) -> usize {
        debug_assert_eq!(self.nrows(), self.ncols());
        self.nrows()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.matvec(x, y);
    }
}

/// A scaled-and-shifted wrapper `alpha * A + beta * I` around any operator.
///
/// Used for spectral shifts (e.g. turning "smallest eigenvalue of `L`" into
/// "largest eigenvalue of `cI - L`" for the power method) without copies.
pub struct ShiftedOp<'a, A: LinOp + ?Sized> {
    inner: &'a A,
    /// Multiplier on the wrapped operator.
    pub alpha: f64,
    /// Multiplier on the identity.
    pub beta: f64,
}

impl<'a, A: LinOp + ?Sized> ShiftedOp<'a, A> {
    /// Wrap `inner` as `alpha * inner + beta * I`.
    pub fn new(inner: &'a A, alpha: f64, beta: f64) -> Self {
        Self { inner, alpha, beta }
    }
}

impl<A: LinOp + ?Sized> LinOp for ShiftedOp<'_, A> {
    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.inner.apply(x, y);
        for (yi, xi) in y.iter_mut().zip(x) {
            *yi = self.alpha * *yi + self.beta * *xi;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let e = LinalgError::DimensionMismatch {
            expected: 3,
            found: 5,
        };
        assert!(e.to_string().contains("expected 3"));
        let e = LinalgError::NotConverged {
            iterations: 10,
            residual: 0.5,
        };
        assert!(e.to_string().contains("10 iterations"));
        assert!(LinalgError::Singular.to_string().contains("singular"));
        assert!(LinalgError::NotPositiveDefinite
            .to_string()
            .contains("positive definite"));
        assert!(LinalgError::InvalidArgument("x").to_string().contains("x"));
    }

    #[test]
    fn shifted_op_applies_alpha_a_plus_beta_i() {
        // A = diag(1, 2); shifted = 2A + 3I = diag(5, 7).
        let a = DenseMatrix::from_rows(&[&[1.0, 0.0], &[0.0, 2.0]]);
        let s = ShiftedOp::new(&a, 2.0, 3.0);
        let y = s.apply_vec(&[1.0, 1.0]);
        assert_eq!(y, vec![5.0, 7.0]);
    }
}
