//! Dense symmetric eigendecomposition by the cyclic Jacobi method.
//!
//! This is the reproduction's "exact" black-box eigensolver (paper
//! footnote 14). Jacobi is chosen over QR because it is short, provably
//! convergent, and delivers small eigenvalues to high *relative* accuracy —
//! exactly what the regularized-SDP equivalence checks in
//! `acir-regularize` need, since they compare matrix functions of the
//! spectrum.

use crate::dense::DenseMatrix;
use crate::{LinalgError, Result};

/// A full symmetric eigendecomposition `A = V · diag(λ) · Vᵀ`.
#[derive(Debug, Clone)]
pub struct SymEig {
    /// Eigenvalues in ascending order.
    pub eigenvalues: Vec<f64>,
    /// Orthonormal eigenvectors; `eigenvectors.col(k)` pairs with
    /// `eigenvalues[k]`.
    pub eigenvectors: DenseMatrix,
}

impl SymEig {
    /// Compute the eigendecomposition of a symmetric matrix.
    ///
    /// Returns an error if `a` is not square or not symmetric (to `1e-8`
    /// absolute tolerance), or if the sweep limit is exhausted (which for
    /// Jacobi indicates NaN/Inf input rather than genuine non-convergence).
    pub fn new(a: &DenseMatrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::InvalidArgument("matrix must be square"));
        }
        if !a.is_symmetric(1e-8) {
            return Err(LinalgError::InvalidArgument("matrix must be symmetric"));
        }
        let n = a.nrows();
        let mut m = a.clone();
        m.symmetrize();
        let mut v = DenseMatrix::identity(n);

        const MAX_SWEEPS: usize = 100;
        let tol = 1e-14 * m.fro_norm().max(f64::MIN_POSITIVE);
        let mut converged = false;
        for _ in 0..MAX_SWEEPS {
            let off = off_diag_norm(&m);
            if off <= tol {
                converged = true;
                break;
            }
            for p in 0..n {
                for q in (p + 1)..n {
                    rotate(&mut m, &mut v, p, q);
                }
            }
        }
        if !converged && off_diag_norm(&m) > tol * 1e3 {
            return Err(LinalgError::NotConverged {
                iterations: MAX_SWEEPS,
                residual: off_diag_norm(&m),
            });
        }

        // Sort ascending, permuting eigenvector columns to match.
        let mut idx: Vec<usize> = (0..n).collect();
        idx.sort_by(|&i, &j| m[(i, i)].partial_cmp(&m[(j, j)]).unwrap());
        let eigenvalues: Vec<f64> = idx.iter().map(|&i| m[(i, i)]).collect();
        let eigenvectors = DenseMatrix::from_fn(n, n, |r, c| v[(r, idx[c])]);

        Ok(Self {
            eigenvalues,
            eigenvectors,
        })
    }

    /// Order of the decomposed matrix.
    pub fn dim(&self) -> usize {
        self.eigenvalues.len()
    }

    /// Eigenvector for the k-th smallest eigenvalue, as an owned vector.
    pub fn eigenvector(&self, k: usize) -> Vec<f64> {
        self.eigenvectors.col(k)
    }

    /// Reconstruct `f(A) = V · diag(f(λ)) · Vᵀ` for a scalar function `f`.
    ///
    /// This is how the exact heat kernel `exp(-tL)`, the exact PageRank
    /// resolvent, and the regularized-SDP optimizers are produced on the
    /// small reference graphs: apply the scalar map to the spectrum.
    pub fn matrix_function(&self, f: impl Fn(f64) -> f64) -> DenseMatrix {
        let n = self.dim();
        let mut out = DenseMatrix::zeros(n, n);
        for k in 0..n {
            let fk = f(self.eigenvalues[k]);
            if fk == 0.0 {
                continue;
            }
            let col = self.eigenvectors.col(k);
            out.rank1_update(fk, &col, &col);
        }
        out
    }

    /// Reconstruct the original matrix (`matrix_function` with identity).
    pub fn reconstruct(&self) -> DenseMatrix {
        self.matrix_function(|x| x)
    }
}

/// Frobenius norm of the strictly upper off-diagonal part (× √2 would be
/// the full off-diagonal norm; the constant is irrelevant for tolerance
/// checks).
fn off_diag_norm(m: &DenseMatrix) -> f64 {
    let n = m.nrows();
    let mut s = 0.0;
    for i in 0..n {
        for j in (i + 1)..n {
            s += m[(i, j)] * m[(i, j)];
        }
    }
    s.sqrt()
}

/// One Jacobi rotation zeroing `m[(p, q)]`, accumulating into `v`.
fn rotate(m: &mut DenseMatrix, v: &mut DenseMatrix, p: usize, q: usize) {
    let apq = m[(p, q)];
    if apq.abs() < f64::MIN_POSITIVE {
        return;
    }
    let app = m[(p, p)];
    let aqq = m[(q, q)];
    let theta = (aqq - app) / (2.0 * apq);
    // Stable tangent: smaller root of t² + 2θt − 1 = 0.
    let t = if theta >= 0.0 {
        1.0 / (theta + (1.0 + theta * theta).sqrt())
    } else {
        -1.0 / (-theta + (1.0 + theta * theta).sqrt())
    };
    let c = 1.0 / (1.0 + t * t).sqrt();
    let s = t * c;

    let n = m.nrows();
    // Update rows/columns p and q of the symmetric matrix.
    for k in 0..n {
        if k == p || k == q {
            continue;
        }
        let akp = m[(k, p)];
        let akq = m[(k, q)];
        m[(k, p)] = c * akp - s * akq;
        m[(p, k)] = m[(k, p)];
        m[(k, q)] = s * akp + c * akq;
        m[(q, k)] = m[(k, q)];
    }
    m[(p, p)] = app - t * apq;
    m[(q, q)] = aqq + t * apq;
    m[(p, q)] = 0.0;
    m[(q, p)] = 0.0;

    // Accumulate rotation into the eigenvector matrix.
    for k in 0..n {
        let vkp = v[(k, p)];
        let vkq = v[(k, q)];
        v[(k, p)] = c * vkp - s * vkq;
        v[(k, q)] = s * vkp + c * vkq;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector;
    use proptest::prelude::*;

    fn check_decomposition(a: &DenseMatrix, eig: &SymEig, tol: f64) {
        let n = a.nrows();
        // A v_k = λ_k v_k
        for k in 0..n {
            let v = eig.eigenvector(k);
            let mut av = vec![0.0; n];
            a.gemv(1.0, &v, 0.0, &mut av);
            let mut lv = v.clone();
            vector::scale(eig.eigenvalues[k], &mut lv);
            assert!(
                vector::dist2(&av, &lv) < tol,
                "eigenpair {k} residual {}",
                vector::dist2(&av, &lv)
            );
        }
        // Vᵀ V = I
        let vt_v = eig
            .eigenvectors
            .transpose()
            .matmul(&eig.eigenvectors)
            .unwrap();
        let mut diff = vt_v;
        diff.axpy(-1.0, &DenseMatrix::identity(n)).unwrap();
        assert!(diff.max_abs() < tol, "orthogonality defect");
        // Ascending order.
        for w in eig.eigenvalues.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
    }

    #[test]
    fn diagonal_matrix() {
        let a = DenseMatrix::from_diag(&[3.0, 1.0, 2.0]);
        let eig = SymEig::new(&a).unwrap();
        assert!((eig.eigenvalues[0] - 1.0).abs() < 1e-12);
        assert!((eig.eigenvalues[2] - 3.0).abs() < 1e-12);
        check_decomposition(&a, &eig, 1e-10);
    }

    #[test]
    fn two_by_two_known() {
        // [[2, 1], [1, 2]] has eigenvalues 1 and 3.
        let a = DenseMatrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let eig = SymEig::new(&a).unwrap();
        assert!((eig.eigenvalues[0] - 1.0).abs() < 1e-12);
        assert!((eig.eigenvalues[1] - 3.0).abs() < 1e-12);
        check_decomposition(&a, &eig, 1e-10);
    }

    #[test]
    fn path_graph_laplacian_spectrum() {
        // L of the n-path has eigenvalues 2 - 2cos(kπ/n), k = 0..n-1.
        let n = 8;
        let mut a = DenseMatrix::zeros(n, n);
        for i in 0..n - 1 {
            a[(i, i)] += 1.0;
            a[(i + 1, i + 1)] += 1.0;
            a[(i, i + 1)] = -1.0;
            a[(i + 1, i)] = -1.0;
        }
        let eig = SymEig::new(&a).unwrap();
        for (k, &lam) in eig.eigenvalues.iter().enumerate() {
            let expected = 2.0 - 2.0 * (std::f64::consts::PI * k as f64 / n as f64).cos();
            assert!((lam - expected).abs() < 1e-10, "k={k}: {lam} vs {expected}");
        }
        check_decomposition(&a, &eig, 1e-9);
    }

    #[test]
    fn rejects_non_square_and_asymmetric() {
        let rect = DenseMatrix::zeros(2, 3);
        assert!(SymEig::new(&rect).is_err());
        let asym = DenseMatrix::from_rows(&[&[0.0, 1.0], &[0.0, 0.0]]);
        assert!(SymEig::new(&asym).is_err());
    }

    #[test]
    fn matrix_function_exponential_of_diag() {
        let a = DenseMatrix::from_diag(&[0.0, 1.0]);
        let eig = SymEig::new(&a).unwrap();
        let e = eig.matrix_function(f64::exp);
        assert!((e[(0, 0)] - 1.0).abs() < 1e-12);
        assert!((e[(1, 1)] - 1.0f64.exp()).abs() < 1e-12);
        assert!(e[(0, 1)].abs() < 1e-12);
    }

    #[test]
    fn reconstruct_recovers_input() {
        let a = DenseMatrix::from_rows(&[&[4.0, 1.0, 0.5], &[1.0, 3.0, -1.0], &[0.5, -1.0, 2.0]]);
        let eig = SymEig::new(&a).unwrap();
        let mut diff = eig.reconstruct();
        diff.axpy(-1.0, &a).unwrap();
        assert!(diff.max_abs() < 1e-10);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_random_symmetric_decomposes(
            data in proptest::collection::vec(-5.0..5.0f64, 25)
        ) {
            let mut a = DenseMatrix::from_vec(5, 5, data);
            a.symmetrize();
            let eig = SymEig::new(&a).unwrap();
            check_decomposition(&a, &eig, 1e-8);
            // Trace equals eigenvalue sum.
            let sum: f64 = eig.eigenvalues.iter().sum();
            prop_assert!((sum - a.trace()).abs() < 1e-8);
        }

        #[test]
        fn prop_psd_gram_has_nonneg_spectrum(
            data in proptest::collection::vec(-3.0..3.0f64, 16)
        ) {
            let b = DenseMatrix::from_vec(4, 4, data);
            let g = b.transpose().matmul(&b).unwrap();
            let eig = SymEig::new(&g).unwrap();
            prop_assert!(eig.eigenvalues[0] >= -1e-8);
        }
    }
}
