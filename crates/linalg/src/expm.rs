//! Matrix exponentials: the analytic core of the Heat Kernel diffusion
//! (paper §3.1, `H_t = exp(−tL)`).
//!
//! Three routes, by scale:
//!
//! * [`expm_dense`] — scaling-and-squaring with a Taylor core for small
//!   dense matrices (the exact reference path);
//! * [`expm_sym`] — spectral route `V·diag(e^λ)·Vᵀ` for symmetric
//!   matrices via the Jacobi eigensolver (used by the regularized-SDP
//!   machinery, which needs matrix functions anyway);
//! * [`expm_multiply`] — Krylov (Lanczos) approximation of `exp(A)·v` for
//!   large sparse symmetric operators; this is the *approximation
//!   algorithm* whose truncation (Krylov dimension) is an implicit
//!   regularization parameter.

use crate::dense::DenseMatrix;
use crate::jacobi::SymEig;
use crate::lanczos::lanczos_ctx;
use crate::tridiag::tridiag_eig;
use crate::vector;
use crate::{LinOp, LinalgError, Result};
use acir_runtime::{Budget, KernelCtx, SolverOutcome};

/// Dense matrix exponential by scaling and squaring with a Taylor core.
///
/// Accurate to ~1e-13 for the modest norms seen with graph Laplacians
/// scaled by diffusion times. Errors if the matrix is not square.
pub fn expm_dense(a: &DenseMatrix) -> Result<DenseMatrix> {
    if !a.is_square() {
        return Err(LinalgError::InvalidArgument("matrix must be square"));
    }
    let n = a.nrows();
    // Scale so the scaled norm is ≤ 0.5, then square back.
    let norm = a.max_abs() * n as f64; // cheap upper bound on ‖A‖₁
    let s = if norm > 0.5 {
        (norm / 0.5).log2().ceil() as u32
    } else {
        0
    };
    let mut b = a.clone();
    b.scale(1.0 / (1u64 << s) as f64);

    // Taylor series to machine precision for ‖B‖ ≤ 0.5 (20 terms ample).
    let mut result = DenseMatrix::identity(n);
    let mut term = DenseMatrix::identity(n);
    for k in 1..=20 {
        term = term.matmul(&b)?;
        term.scale(1.0 / k as f64);
        result.axpy(1.0, &term)?;
        if term.max_abs() < 1e-17 {
            break;
        }
    }
    // Square back s times.
    for _ in 0..s {
        result = result.matmul(&result)?;
    }
    Ok(result)
}

/// `exp(A)` for symmetric `A` via full eigendecomposition.
pub fn expm_sym(a: &DenseMatrix) -> Result<DenseMatrix> {
    Ok(SymEig::new(a)?.matrix_function(f64::exp))
}

/// Krylov approximation of `exp(t·A)·v` for a symmetric operator `A`.
///
/// Standard Lanczos projection: `exp(tA)v ≈ ‖v‖ · V_k exp(tT_k) e₁`.
/// `krylov_dim` is the approximation budget; ~30 suffices for the heat
/// kernel on normalized Laplacians (`spectrum ⊂ [0,2]`) at any `t` the
/// experiments use. Errors on a zero seed.
pub fn expm_multiply(op: &dyn LinOp, t: f64, v: &[f64], krylov_dim: usize) -> Result<Vec<f64>> {
    let mut ctx = KernelCtx::new();
    match expm_multiply_ctx(op, t, v, krylov_dim, &mut ctx)? {
        SolverOutcome::Converged { value, .. } => Ok(value),
        _ => unreachable!("an inert context can neither exhaust nor diverge"),
    }
}

/// Krylov `exp(t·A)·v` under an explicit resource [`acir_runtime::Budget`],
/// returning a structured [`acir_runtime::SolverOutcome`].
///
/// The budget governs the underlying Lanczos run (one work unit per
/// matvec); on exhaustion the exponential is evaluated on the *partial*
/// Krylov space and returned as a certified truncation — the smaller
/// Krylov dimension is exactly the paper's implicit-regularization
/// knob, so the partial answer is meaningful, not broken. The
/// certificate is inherited from the Lanczos run (the last off-diagonal
/// `β`, which controls the Krylov approximation error for matrix
/// functions). Contamination from a faulted operator diverges.
pub fn expm_multiply_budgeted(
    op: &dyn LinOp,
    t: f64,
    v: &[f64],
    krylov_dim: usize,
    budget: &Budget,
) -> Result<SolverOutcome<Vec<f64>>> {
    // Guard mirrors `lanczos_budgeted`: contamination scans only.
    let mut ctx = KernelCtx::budgeted("linalg.lanczos", budget)
        .with_guard(acir_runtime::GuardConfig::contamination_only());
    expm_multiply_ctx(op, t, v, krylov_dim, &mut ctx)
}

/// Context-driven Krylov `exp(t·A)·v`: the [`KernelCtx`] decides whether
/// the inner Lanczos run is metered, guarded, or traced.
///
/// This module has no iteration loop of its own — the three-term Krylov
/// recurrence in [`lanczos_ctx`] *is* the loop, and this function lifts
/// its tridiagonal output through `exp(t T_k)` afterwards.
pub fn expm_multiply_ctx(
    op: &dyn LinOp,
    t: f64,
    v: &[f64],
    krylov_dim: usize,
    ctx: &mut KernelCtx,
) -> Result<SolverOutcome<Vec<f64>>> {
    let n = op.dim();
    if v.len() != n {
        return Err(LinalgError::DimensionMismatch {
            expected: n,
            found: v.len(),
        });
    }
    let vnorm = vector::norm2(v);
    if vnorm < 1e-300 {
        return Err(LinalgError::InvalidArgument("seed vector is zero"));
    }
    // CORE LOOP (delegated: the Krylov recurrence lives in `lanczos_ctx`)
    let outcome = lanczos_ctx(op, v, krylov_dim.max(2), &[], ctx)?;

    let lift = |res: &crate::lanczos::LanczosResult| -> Result<Vec<f64>> {
        let k = res.k();
        let te = tridiag_eig(&res.alpha, &res.beta)?;
        let mut coeff = vec![0.0; k];
        for m in 0..k {
            let w = te.eigenvectors[(0, m)] * (t * te.eigenvalues[m]).exp();
            for (j, c) in coeff.iter_mut().enumerate() {
                *c += w * te.eigenvectors[(j, m)];
            }
        }
        let mut out = vec![0.0; n];
        for (j, basis_j) in res.basis.iter().enumerate() {
            vector::axpy(vnorm * coeff[j], basis_j, &mut out);
        }
        Ok(out)
    };

    // The adopted Lanczos trace is re-wrapped in this kernel's span so
    // the trace shows expm over its inner tridiagonalization.
    Ok(match outcome {
        SolverOutcome::Converged {
            value,
            mut diagnostics,
        } => {
            diagnostics.wrap_span("linalg.expm_krylov");
            SolverOutcome::Converged {
                value: lift(&value)?,
                diagnostics,
            }
        }
        SolverOutcome::BudgetExhausted {
            best_so_far,
            exhausted,
            certificate,
            mut diagnostics,
        } => {
            diagnostics.note(format!(
                "heat kernel evaluated on a partial Krylov space of dimension {}",
                best_so_far.k()
            ));
            diagnostics.wrap_span("linalg.expm_krylov");
            SolverOutcome::BudgetExhausted {
                best_so_far: lift(&best_so_far)?,
                exhausted,
                certificate,
                diagnostics,
            }
        }
        SolverOutcome::Diverged {
            at_iter,
            cause,
            mut diagnostics,
        } => {
            diagnostics.wrap_span("linalg.expm_krylov");
            SolverOutcome::Diverged {
                at_iter,
                cause,
                diagnostics,
            }
        }
    })
}

/// Truncated Taylor approximation of `exp(t·A)·v` with `terms` terms:
/// `Σ_{k=0}^{terms-1} (tA)^k v / k!`.
///
/// Deliberately the *naive* approximation: the number of terms is exactly
/// the "number of steps of the diffusion" truncation the paper discusses,
/// so experiments can dial it down and watch the implicit regularization
/// appear.
pub fn expm_taylor(op: &dyn LinOp, t: f64, v: &[f64], terms: usize) -> Result<Vec<f64>> {
    let n = op.dim();
    if v.len() != n {
        return Err(LinalgError::DimensionMismatch {
            expected: n,
            found: v.len(),
        });
    }
    if terms == 0 {
        return Err(LinalgError::InvalidArgument("terms must be positive"));
    }
    let mut out = v.to_vec();
    let mut term = v.to_vec();
    let mut buf = vec![0.0; n];
    for k in 1..terms {
        op.apply(&term, &mut buf);
        let c = t / k as f64;
        for (ti, bi) in term.iter_mut().zip(&buf) {
            *ti = c * bi;
        }
        vector::axpy(1.0, &term, &mut out);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::CsrMatrix;

    fn path_laplacian(n: usize) -> CsrMatrix {
        let mut t = Vec::new();
        for i in 0..n - 1 {
            t.push((i, i, 1.0));
            t.push((i + 1, i + 1, 1.0));
            t.push((i, i + 1, -1.0));
            t.push((i + 1, i, -1.0));
        }
        CsrMatrix::from_triplets(n, n, t)
    }

    #[test]
    fn expm_of_zero_is_identity() {
        let z = DenseMatrix::zeros(3, 3);
        let e = expm_dense(&z).unwrap();
        let mut d = e;
        d.axpy(-1.0, &DenseMatrix::identity(3)).unwrap();
        assert!(d.max_abs() < 1e-14);
    }

    #[test]
    fn expm_of_diagonal() {
        let a = DenseMatrix::from_diag(&[1.0, -2.0, 0.5]);
        let e = expm_dense(&a).unwrap();
        assert!((e[(0, 0)] - 1.0f64.exp()).abs() < 1e-12);
        assert!((e[(1, 1)] - (-2.0f64).exp()).abs() < 1e-12);
        assert!((e[(2, 2)] - 0.5f64.exp()).abs() < 1e-12);
        assert!(e[(0, 1)].abs() < 1e-13);
    }

    #[test]
    fn expm_nilpotent_closed_form() {
        // exp([[0,1],[0,0]]) = [[1,1],[0,1]].
        let a = DenseMatrix::from_rows(&[&[0.0, 1.0], &[0.0, 0.0]]);
        let e = expm_dense(&a).unwrap();
        assert!((e[(0, 0)] - 1.0).abs() < 1e-14);
        assert!((e[(0, 1)] - 1.0).abs() < 1e-14);
        assert!(e[(1, 0)].abs() < 1e-14);
    }

    #[test]
    fn expm_dense_matches_expm_sym() {
        let mut a =
            DenseMatrix::from_rows(&[&[0.3, -1.2, 0.4], &[-1.2, 0.9, 0.2], &[0.4, 0.2, -0.5]]);
        a.symmetrize();
        let e1 = expm_dense(&a).unwrap();
        let e2 = expm_sym(&a).unwrap();
        let mut d = e1;
        d.axpy(-1.0, &e2).unwrap();
        assert!(d.max_abs() < 1e-10);
    }

    #[test]
    fn expm_additivity_in_time() {
        // exp(2A) = exp(A)·exp(A).
        let mut a = DenseMatrix::from_rows(&[&[0.1, 0.7], &[0.7, -0.4]]);
        a.symmetrize();
        let e1 = expm_dense(&a).unwrap();
        let mut a2 = a.clone();
        a2.scale(2.0);
        let e2 = expm_dense(&a2).unwrap();
        let sq = e1.matmul(&e1).unwrap();
        let mut d = sq;
        d.axpy(-1.0, &e2).unwrap();
        assert!(d.max_abs() < 1e-11);
    }

    #[test]
    fn expm_multiply_matches_dense_reference() {
        let n = 16;
        let l = path_laplacian(n);
        let mut neg_l = l.clone();
        neg_l.scale(-1.0);
        let t = 1.7;

        let seed: Vec<f64> = (0..n).map(|i| if i == 3 { 1.0 } else { 0.0 }).collect();
        let krylov = expm_multiply(&neg_l, t, &seed, n).unwrap();

        let mut dense = l.to_dense();
        dense.scale(-t);
        let e = expm_dense(&dense).unwrap();
        let mut reference = vec![0.0; n];
        e.gemv(1.0, &seed, 0.0, &mut reference);

        assert!(vector::dist2(&krylov, &reference) < 1e-9);
    }

    #[test]
    fn expm_multiply_small_krylov_is_smooth_approximation() {
        let n = 40;
        let l = path_laplacian(n);
        let mut neg_l = l.clone();
        neg_l.scale(-1.0);
        let mut seed = vec![0.0; n];
        seed[0] = 1.0;
        // A small Krylov budget gives an approximation whose mass defect
        // (exact heat kernels conserve total mass: exp(-tL)ᵀ1 = 1) shrinks
        // as the budget grows — truncation error is monotone here.
        let rough = expm_multiply(&neg_l, 1.0, &seed, 6).unwrap();
        let fine = expm_multiply(&neg_l, 1.0, &seed, 24).unwrap();
        let defect_rough = (vector::sum(&rough) - 1.0).abs();
        let defect_fine = (vector::sum(&fine) - 1.0).abs();
        assert!(defect_fine < 1e-9, "fine defect {defect_fine}");
        assert!(defect_fine <= defect_rough);
    }

    #[test]
    fn expm_taylor_converges_with_terms() {
        let n = 10;
        let l = path_laplacian(n);
        let mut neg_l = l.clone();
        neg_l.scale(-1.0);
        let mut seed = vec![0.0; n];
        seed[5] = 1.0;
        let exact = expm_multiply(&neg_l, 0.5, &seed, n).unwrap();
        let rough = expm_taylor(&neg_l, 0.5, &seed, 3).unwrap();
        let fine = expm_taylor(&neg_l, 0.5, &seed, 30).unwrap();
        assert!(vector::dist2(&fine, &exact) < 1e-10);
        assert!(vector::dist2(&rough, &exact) > vector::dist2(&fine, &exact));
    }

    #[test]
    fn expm_budgeted_matches_plain_and_certifies_truncation() {
        use acir_runtime::Budget;
        let n = 24;
        let l = path_laplacian(n);
        let mut neg_l = l.clone();
        neg_l.scale(-1.0);
        let mut seed = vec![0.0; n];
        seed[3] = 1.0;

        let plain = expm_multiply(&neg_l, 1.0, &seed, n).unwrap();
        let full = expm_multiply_budgeted(&neg_l, 1.0, &seed, n, &Budget::unlimited()).unwrap();
        assert!(full.is_converged());
        assert!(vector::dist2(full.value().unwrap(), &plain) < 1e-12);

        // Tight budget → certified partial Krylov evaluation.
        let partial = expm_multiply_budgeted(&neg_l, 1.0, &seed, n, &Budget::work(5)).unwrap();
        assert!(!partial.is_converged() && partial.is_usable());
        assert!(partial.certificate().is_some());
        // The partial heat kernel still roughly conserves mass.
        let mass = vector::sum(partial.value().unwrap());
        assert!((mass - 1.0).abs() < 0.2, "mass {mass}");
    }

    #[test]
    fn expm_budgeted_diverges_on_faulted_operator() {
        use acir_runtime::{Budget, FaultConfig};
        let n = 12;
        let l = path_laplacian(n);
        let mut neg_l = l.clone();
        neg_l.scale(-1.0);
        let faulty =
            crate::fault::FaultyOp::new(&neg_l, FaultConfig::nans(1.0).after_clean_applies(2));
        let mut seed = vec![0.0; n];
        seed[3] = 1.0;
        let out = expm_multiply_budgeted(&faulty, 1.0, &seed, n, &Budget::unlimited()).unwrap();
        assert!(!out.is_usable());
    }

    #[test]
    fn validation_errors() {
        let rect = DenseMatrix::zeros(2, 3);
        assert!(expm_dense(&rect).is_err());
        let a = CsrMatrix::identity(3);
        assert!(expm_multiply(&a, 1.0, &[1.0], 5).is_err());
        assert!(expm_multiply(&a, 1.0, &[0.0; 3], 5).is_err());
        assert!(expm_taylor(&a, 1.0, &[1.0, 1.0, 1.0], 0).is_err());
        assert!(expm_taylor(&a, 1.0, &[1.0], 3).is_err());
    }
}
