//! Compressed sparse row (CSR) matrices.
//!
//! The reproduction's graphs have up to millions of edges; everything that
//! touches them must "not damage the sparsity of the matrix" (paper §3.1).
//! CSR with `u32` column indices keeps the memory footprint at 12 bytes
//! per stored entry and makes the matvec a linear scan.
//!
//! ## Parallelism and determinism
//!
//! The hot products ([`CsrMatrix::matvec`], [`CsrMatrix::matvec_transpose`],
//! [`CsrMatrix::matvec_multi`]) run on the ambient [`ExecPool`] once the
//! matrix is large enough to pay for fan-out. Work is split into
//! **nnz-balanced row chunks** whose boundaries depend only on the matrix
//! (see [`CsrMatrix::nnz_balanced_row_chunks`]), and chunk partials are
//! combined in fixed chunk order, so every product is bit-identical from
//! 1 to N threads. Path selection (sequential vs. chunked) keys on `nnz`
//! alone — never on the thread count — which keeps the rounding of the
//! transpose product (the one kernel whose chunked merge re-associates
//! additions) reproducible as well.

use crate::dense::DenseMatrix;
use crate::layout::{self, AltCache, ChunkPlan, SparseLayout};
use crate::vector;
use acir_exec::{ExecPool, SpmvLayout};
use acir_runtime::Workspace;

/// Below this many stored entries the products stay on their sequential
/// paths: fan-out costs more than the scan. A size (not thread-count)
/// threshold, so the chosen path — and its rounding — is reproducible.
pub(crate) const PAR_MIN_NNZ: usize = 16_384;

/// Target stored entries per row chunk for [`CsrMatrix::matvec`] /
/// [`CsrMatrix::matvec_multi`].
pub(crate) const CHUNK_TARGET_NNZ: usize = 8_192;

/// Chunk-count cap for [`CsrMatrix::matvec_transpose`], which needs one
/// dense accumulator of `ncols` floats per chunk.
const TRANSPOSE_MAX_CHUNKS: usize = 8;

/// A sparse matrix in compressed-sparse-row format.
///
/// Invariants (checked by [`CsrMatrix::validate`] and maintained by all
/// constructors):
/// * `row_ptr.len() == nrows + 1`, `row_ptr[0] == 0`,
///   `row_ptr[nrows] == col_idx.len() == values.len()`;
/// * `row_ptr` is non-decreasing;
/// * within each row, column indices are strictly increasing (sorted,
///   no duplicates) and `< ncols`.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    nrows: usize,
    ncols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
    /// Lazily-built alternate layouts and chunk plans (see
    /// [`crate::layout`]). Not part of the matrix's value: cloned
    /// empty, ignored by `PartialEq`, invalidated by every mutator.
    alt: AltCache,
}

impl CsrMatrix {
    /// Build from COO triplets `(row, col, value)`. Duplicate coordinates
    /// are summed; explicit zeros are kept (callers may [`Self::prune`]).
    ///
    /// Panics if any coordinate is out of range.
    pub fn from_triplets(
        nrows: usize,
        ncols: usize,
        triplets: impl IntoIterator<Item = (usize, usize, f64)>,
    ) -> Self {
        let mut entries: Vec<(usize, usize, f64)> = triplets.into_iter().collect();
        for &(r, c, _) in &entries {
            assert!(r < nrows && c < ncols, "triplet ({r},{c}) out of range");
        }
        entries.sort_unstable_by_key(|a| (a.0, a.1));

        // Merge consecutive duplicates (same row and column) by summing.
        let mut merged: Vec<(usize, usize, f64)> = Vec::with_capacity(entries.len());
        for (r, c, v) in entries {
            match merged.last_mut() {
                Some((lr, lc, lv)) if *lr == r && *lc == c => *lv += v,
                _ => merged.push((r, c, v)),
            }
        }

        let mut row_ptr = vec![0usize; nrows + 1];
        let mut col_idx = Vec::with_capacity(merged.len());
        let mut values = Vec::with_capacity(merged.len());
        for (r, c, v) in merged {
            row_ptr[r + 1] += 1;
            col_idx.push(c as u32);
            values.push(v);
        }
        for i in 1..=nrows {
            row_ptr[i] += row_ptr[i - 1];
        }
        let m = Self {
            nrows,
            ncols,
            row_ptr,
            col_idx,
            values,
            alt: AltCache::default(),
        };
        debug_assert!(m.validate().is_ok(), "{:?}", m.validate());
        m
    }

    /// Build directly from CSR arrays, validating the invariants.
    pub fn from_csr(
        nrows: usize,
        ncols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<u32>,
        values: Vec<f64>,
    ) -> crate::Result<Self> {
        let m = Self {
            nrows,
            ncols,
            row_ptr,
            col_idx,
            values,
            alt: AltCache::default(),
        };
        m.validate()?;
        Ok(m)
    }

    /// Identity matrix in CSR form.
    pub fn identity(n: usize) -> Self {
        Self {
            nrows: n,
            ncols: n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n as u32).collect(),
            values: vec![1.0; n],
            alt: AltCache::default(),
        }
    }

    /// Diagonal matrix from a slice.
    pub fn from_diag(d: &[f64]) -> Self {
        let n = d.len();
        Self {
            nrows: n,
            ncols: n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n as u32).collect(),
            values: d.to_vec(),
            alt: AltCache::default(),
        }
    }

    /// Check the CSR structural invariants.
    pub fn validate(&self) -> crate::Result<()> {
        use crate::LinalgError::InvalidArgument;
        if self.row_ptr.len() != self.nrows + 1 {
            return Err(InvalidArgument("row_ptr length must be nrows + 1"));
        }
        if self.row_ptr[0] != 0 {
            return Err(InvalidArgument("row_ptr[0] must be 0"));
        }
        if *self.row_ptr.last().unwrap() != self.col_idx.len()
            || self.col_idx.len() != self.values.len()
        {
            return Err(InvalidArgument("row_ptr end must equal nnz"));
        }
        for w in self.row_ptr.windows(2) {
            if w[1] < w[0] {
                return Err(InvalidArgument("row_ptr must be non-decreasing"));
            }
        }
        for r in 0..self.nrows {
            let cols = &self.col_idx[self.row_ptr[r]..self.row_ptr[r + 1]];
            for w in cols.windows(2) {
                if w[1] <= w[0] {
                    return Err(InvalidArgument("row columns must be strictly increasing"));
                }
            }
            if let Some(&c) = cols.last() {
                if c as usize >= self.ncols {
                    return Err(InvalidArgument("column index out of range"));
                }
            }
        }
        Ok(())
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Iterator over `(col, value)` pairs of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> impl Iterator<Item = (u32, f64)> + '_ {
        let range = self.row_ptr[i]..self.row_ptr[i + 1];
        self.col_idx[range.clone()]
            .iter()
            .copied()
            .zip(self.values[range].iter().copied())
    }

    /// Entry lookup by binary search within the row. `O(log row_nnz)`.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let range = self.row_ptr[i]..self.row_ptr[i + 1];
        let cols = &self.col_idx[range.clone()];
        match cols.binary_search(&(j as u32)) {
            Ok(k) => self.values[range.start + k],
            Err(_) => 0.0,
        }
    }

    /// Split `0..nrows` into row ranges of roughly `target_nnz` stored
    /// entries each, at most `max_chunks` ranges.
    ///
    /// The boundaries are a pure function of the matrix (its `row_ptr`)
    /// and the arguments — thread counts never enter — which is what
    /// makes the chunked products deterministic. Rows are never split,
    /// so chunk outputs are disjoint row ranges.
    pub fn nnz_balanced_row_chunks(
        &self,
        target_nnz: usize,
        max_chunks: usize,
    ) -> Vec<std::ops::Range<usize>> {
        let total = self.nnz();
        let max_chunks = max_chunks.max(1);
        let target = target_nnz.max(1).max(total.div_ceil(max_chunks));
        let mut out = Vec::new();
        let mut start = 0usize;
        while start < self.nrows {
            let goal = self.row_ptr[start] + target;
            // First row boundary at or past the nnz goal.
            let mut end =
                match self.row_ptr[start + 1..=self.nrows].binary_search_by(|p| p.cmp(&goal)) {
                    Ok(k) => start + 1 + k,
                    Err(k) => (start + 1 + k).min(self.nrows),
                };
            end = end.max(start + 1);
            out.push(start..end);
            start = end;
        }
        out
    }

    /// Raw CSR arrays `(row_ptr, col_idx, values)` for the layout
    /// kernels in [`crate::layout`].
    #[inline]
    pub(crate) fn raw_parts(&self) -> (&[usize], &[u32], &[f64]) {
        (&self.row_ptr, &self.col_idx, &self.values)
    }

    /// The cached nnz-balanced chunk plan shared by [`Self::matvec`]
    /// and [`Self::matvec_multi`] (built on first use; a pure function
    /// of the matrix, so caching cannot change results — it only drops
    /// the per-call plan allocation and binary searches).
    pub(crate) fn chunk_plan(&self) -> &ChunkPlan {
        self.alt.chunks(|| {
            let chunks = self.nnz_balanced_row_chunks(CHUNK_TARGET_NNZ, acir_exec::MAX_CHUNKS);
            let lens = chunks.iter().map(std::ops::Range::len).collect();
            (chunks, lens)
        })
    }

    /// The layout the current call should execute on: the ambient
    /// policy ([`acir_exec::current_spmv_layout`]), with `Auto`
    /// resolved — once per matrix, from its shape — to `Unrolled`
    /// (small), `Merge` (heavily skewed rows) or `Sell`.
    fn active_layout(&self) -> SpmvLayout {
        match acir_exec::current_spmv_layout() {
            SpmvLayout::Auto => self.alt.auto(|| {
                if self.nnz() < PAR_MIN_NNZ {
                    return SpmvLayout::Unrolled;
                }
                let mean = (self.nnz() / self.nrows.max(1)).max(1);
                let max = self
                    .row_ptr
                    .windows(2)
                    .map(|w| w[1] - w[0])
                    .max()
                    .unwrap_or(0);
                if max > 8 * mean {
                    SpmvLayout::Merge
                } else {
                    SpmvLayout::Sell
                }
            }),
            k => k,
        }
    }

    /// Chunked driver shared by the row-ordered matvec routes: run
    /// `kernel(self, x, first_row, y_chunk)` over the cached chunk
    /// plan (sequentially below [`PAR_MIN_NNZ`]).
    pub(crate) fn matvec_on_row_chunks(
        &self,
        x: &[f64],
        y: &mut [f64],
        kernel: fn(&CsrMatrix, &[f64], usize, &mut [f64]),
    ) {
        if self.nnz() < PAR_MIN_NNZ {
            kernel(self, x, 0, y);
            return;
        }
        let (chunks, lens) = self.chunk_plan();
        ExecPool::from_env().par_parts_mut(y, lens, |c, y_chunk| {
            kernel(self, x, chunks[c].start, y_chunk);
        });
    }

    /// Sparse matrix–vector product `y = A x` (overwrites `y`).
    ///
    /// Parallelized over nnz-balanced row chunks on the ambient
    /// [`ExecPool`]; each `y[i]` is accumulated sequentially over its
    /// row either way, so the result is bit-identical to the
    /// sequential scan at every thread count.
    ///
    /// The *execution layout* is chosen per call from the ambient
    /// [`SpmvLayout`] policy (a `KernelCtx` scope or
    /// `ACIR_SPMV_LAYOUT`; scalar CSR by default) — see
    /// [`crate::layout`]. Every layout is bit-identical to the scalar
    /// scan; derived layouts are built lazily and cached inside the
    /// matrix.
    pub fn matvec(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "matvec: x length");
        assert_eq!(y.len(), self.nrows, "matvec: y length");
        match self.active_layout() {
            SpmvLayout::Csr => self.matvec_on_row_chunks(x, y, Self::matvec_rows),
            SpmvLayout::Unrolled => layout::unrolled::UNROLLED.matvec(self, x, y),
            SpmvLayout::Sell => self.alt.sell(self).matvec(self, x, y),
            SpmvLayout::Merge => self.alt.merge(self).matvec(self, x, y),
            SpmvLayout::Auto => unreachable!("active_layout resolves Auto"),
        }
    }

    /// Sequential scalar kernel: `y_chunk[k] = (A x)[first_row + k]`.
    /// The reference accumulation order every layout must reproduce.
    fn matvec_rows(&self, x: &[f64], first_row: usize, y_chunk: &mut [f64]) {
        // CORE LOOP
        for (k, yi) in y_chunk.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (c, v) in self.row(first_row + k) {
                acc += v * x[c as usize];
            }
            *yi = acc;
        }
    }

    /// Transposed product `y = Aᵀ x` (overwrites `y`).
    ///
    /// Large matrices scatter into one dense accumulator per row chunk
    /// (chunk boundaries fixed by the matrix, never the thread count)
    /// and the accumulators are summed into `y` in ascending chunk
    /// order — deterministic at every thread count, at the cost of
    /// `TRANSPOSE_MAX_CHUNKS · ncols` transient floats.
    pub fn matvec_transpose(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.nrows, "matvec_transpose: x length");
        assert_eq!(y.len(), self.ncols, "matvec_transpose: y length");
        // Layout routing for the scatter product swaps only the
        // per-row inner kernel (unrolled vs. scalar — same update
        // order per output element, hence bit-identical); the chunk
        // structure and merge order are shared, because *they* are
        // what fixes this product's rounding.
        let scatter: fn(&CsrMatrix, &[f64], std::ops::Range<usize>, &mut [f64]) =
            match self.active_layout() {
                SpmvLayout::Csr => Self::scatter_rows,
                _ => layout::unrolled::scatter_rows,
            };
        if self.nnz() < PAR_MIN_NNZ {
            y.fill(0.0);
            scatter(self, x, 0..self.nrows, y);
            return;
        }
        let chunks = self.nnz_balanced_row_chunks(CHUNK_TARGET_NNZ, TRANSPOSE_MAX_CHUNKS);
        let pool = ExecPool::from_env();
        let partials: Vec<Vec<f64>> = pool.par_map(&chunks, 1, |r| {
            let mut buf = vec![0.0f64; self.ncols];
            scatter(self, x, r.clone(), &mut buf);
            buf
        });
        y.fill(0.0);
        for buf in &partials {
            // Fixed chunk order; the inner add is elementwise.
            for (yi, bi) in y.iter_mut().zip(buf) {
                *yi += bi;
            }
        }
    }

    /// Sequential kernel: `y[c] += Σ_{i ∈ rows} A[i,c]·x[i]`.
    fn scatter_rows(&self, x: &[f64], rows: std::ops::Range<usize>, y: &mut [f64]) {
        for i in rows {
            let xi = x[i];
            if xi == 0.0 {
                continue;
            }
            for (c, v) in self.row(i) {
                y[c as usize] += v * xi;
            }
        }
    }

    /// Blocked multi-vector product (SpMM): `ys[j] = A xs[j]` for every
    /// right-hand side, in **one traversal of the matrix** amortized
    /// over all `k = xs.len()` vectors.
    ///
    /// For each row the stored entries are scanned once and each entry
    /// updates all `k` accumulators, so the memory traffic over the CSR
    /// arrays — the bottleneck of sparse products — is paid once
    /// instead of `k` times. Per (row, rhs) the accumulation order is
    /// identical to [`CsrMatrix::matvec`], so each returned vector is
    /// bit-identical to the corresponding independent matvec (a
    /// property pinned by tests).
    ///
    /// Parallelized over the same nnz-balanced row chunks as `matvec`.
    /// Panics if any `xs[j].len() != ncols`.
    ///
    /// Allocates the returned vectors (and checks staging out of the
    /// crate scratch pool); steady-state callers that can hold buffers
    /// across calls should use [`Self::matvec_multi_ws`], which reuses
    /// both and allocates nothing once warm.
    pub fn matvec_multi(&self, xs: &[Vec<f64>]) -> Vec<Vec<f64>> {
        let mut out = Vec::new();
        crate::SCRATCH.with(|ws| self.matvec_multi_ws(xs, ws, &mut out));
        out
    }

    /// [`Self::matvec_multi`] with caller-held buffers: the staging
    /// block comes from `ws` and the output vectors in `out` are
    /// reused (resized and fully overwritten; `out` is truncated or
    /// grown to `xs.len()` entries). With a warm workspace and a
    /// same-shape `out`, the sequential path performs **zero heap
    /// allocations** (pinned by `alloc_gate`); the chunked path
    /// allocates only its per-call `lens` bookkeeping. Results are
    /// bit-identical to [`Self::matvec_multi`].
    pub fn matvec_multi_ws(&self, xs: &[Vec<f64>], ws: &mut Workspace, out: &mut Vec<Vec<f64>>) {
        let k = xs.len();
        out.truncate(k);
        if k == 0 {
            return;
        }
        for (j, x) in xs.iter().enumerate() {
            assert_eq!(x.len(), self.ncols, "matvec_multi: xs[{j}] length");
        }
        let multi: fn(&CsrMatrix, &[Vec<f64>], usize, &mut [f64]) = match self.active_layout() {
            SpmvLayout::Csr => Self::multi_rows,
            _ => layout::unrolled::multi_rows,
        };
        // Row-major staging block: row i occupies block[i*k..(i+1)*k],
        // so row chunks own disjoint block slices.
        let mut block = ws.take_f64(self.nrows * k);
        if self.nnz() * k < PAR_MIN_NNZ {
            multi(self, xs, 0, &mut block);
        } else {
            let (chunks, _) = self.chunk_plan();
            let lens: Vec<usize> = chunks.iter().map(|r| r.len() * k).collect();
            ExecPool::from_env().par_parts_mut(&mut block, &lens, |ci, chunk| {
                multi(self, xs, chunks[ci].start, chunk);
            });
        }
        // Unstage: column j of the block is output vector j.
        out.resize_with(k, Vec::new);
        for (j, outj) in out.iter_mut().enumerate() {
            outj.clear();
            outj.extend(block[j..].iter().step_by(k).copied());
        }
        ws.put_f64(block);
    }

    /// Sequential scalar multi-RHS kernel over a row chunk's staging
    /// block: per (row, rhs) the accumulation order is exactly
    /// [`Self::matvec_rows`]'s.
    fn multi_rows(&self, xs: &[Vec<f64>], first_row: usize, block_chunk: &mut [f64]) {
        let k = xs.len();
        for (local, acc) in block_chunk.chunks_exact_mut(k).enumerate() {
            for (c, v) in self.row(first_row + local) {
                let xc = c as usize;
                for (a, x) in acc.iter_mut().zip(xs) {
                    *a += v * x[xc];
                }
            }
        }
    }

    /// Transpose into a new CSR matrix.
    pub fn transpose(&self) -> Self {
        let mut counts = vec![0usize; self.ncols + 1];
        for &c in &self.col_idx {
            counts[c as usize + 1] += 1;
        }
        for i in 1..=self.ncols {
            counts[i] += counts[i - 1];
        }
        let row_ptr = counts.clone();
        let mut col_idx = vec![0u32; self.nnz()];
        let mut values = vec![0.0; self.nnz()];
        let mut cursor = counts;
        for r in 0..self.nrows {
            for (c, v) in self.row(r) {
                let k = cursor[c as usize];
                col_idx[k] = r as u32;
                values[k] = v;
                cursor[c as usize] += 1;
            }
        }
        Self {
            nrows: self.ncols,
            ncols: self.nrows,
            row_ptr,
            col_idx,
            values,
            alt: AltCache::default(),
        }
    }

    /// The main diagonal as a vector (length `min(nrows, ncols)`).
    pub fn diag(&self) -> Vec<f64> {
        (0..self.nrows.min(self.ncols))
            .map(|i| self.get(i, i))
            .collect()
    }

    /// Row sums (for adjacency matrices these are weighted degrees).
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.nrows)
            .map(|i| self.row(i).map(|(_, v)| v).sum())
            .collect()
    }

    /// Scale row `i` by `s[i]` in place: `A ← diag(s)·A`.
    pub fn scale_rows(&mut self, s: &[f64]) {
        self.alt.invalidate();
        assert_eq!(s.len(), self.nrows);
        for (r, &factor) in s.iter().enumerate() {
            let range = self.row_ptr[r]..self.row_ptr[r + 1];
            vector::scale(factor, &mut self.values[range]);
        }
    }

    /// Scale column `j` by `s[j]` in place: `A ← A·diag(s)`.
    pub fn scale_cols(&mut self, s: &[f64]) {
        self.alt.invalidate();
        assert_eq!(s.len(), self.ncols);
        for (c, v) in self.col_idx.iter().zip(self.values.iter_mut()) {
            *v *= s[*c as usize];
        }
    }

    /// Scale every stored value by `a`.
    pub fn scale(&mut self, a: f64) {
        self.alt.invalidate();
        vector::scale(a, &mut self.values);
    }

    /// Drop stored entries with `|value| <= tol`.
    pub fn prune(&mut self, tol: f64) {
        self.alt.invalidate();
        let mut new_row_ptr = vec![0usize; self.nrows + 1];
        let mut w = 0usize;
        for r in 0..self.nrows {
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                if self.values[k].abs() > tol {
                    self.col_idx[w] = self.col_idx[k];
                    self.values[w] = self.values[k];
                    w += 1;
                }
            }
            new_row_ptr[r + 1] = w;
        }
        self.col_idx.truncate(w);
        self.values.truncate(w);
        self.row_ptr = new_row_ptr;
    }

    /// Densify. Only sensible for small reference computations.
    pub fn to_dense(&self) -> DenseMatrix {
        let mut m = DenseMatrix::zeros(self.nrows, self.ncols);
        for r in 0..self.nrows {
            for (c, v) in self.row(r) {
                m[(r, c as usize)] = v;
            }
        }
        m
    }

    /// Whether the sparsity pattern and values are symmetric within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.nrows != self.ncols {
            return false;
        }
        for r in 0..self.nrows {
            for (c, v) in self.row(r) {
                if (self.get(c as usize, r) - v).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Quadratic form `xᵀ A x`.
    pub fn quad_form(&self, x: &[f64]) -> f64 {
        assert_eq!(self.nrows, self.ncols);
        let mut y = vec![0.0; self.nrows];
        self.matvec(x, &mut y);
        vector::dot(x, &y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// 2x2 matrix [\[1, 2\], \[0, 3\]].
    fn upper() -> CsrMatrix {
        CsrMatrix::from_triplets(2, 2, [(0, 0, 1.0), (0, 1, 2.0), (1, 1, 3.0)])
    }

    #[test]
    fn from_triplets_sums_duplicates() {
        let m = CsrMatrix::from_triplets(2, 2, [(0, 0, 1.0), (0, 0, 2.0), (1, 1, 5.0)]);
        assert_eq!(m.get(0, 0), 3.0);
        assert_eq!(m.nnz(), 2);
        m.validate().unwrap();
    }

    #[test]
    fn from_triplets_handles_empty_rows() {
        let m = CsrMatrix::from_triplets(4, 4, [(0, 1, 1.0), (3, 2, 2.0)]);
        assert_eq!(m.row(1).count(), 0);
        assert_eq!(m.row(2).count(), 0);
        assert_eq!(m.get(3, 2), 2.0);
        m.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_triplets_rejects_out_of_range() {
        let _ = CsrMatrix::from_triplets(2, 2, [(2, 0, 1.0)]);
    }

    #[test]
    fn from_csr_validates() {
        // row_ptr not ending at nnz.
        assert!(CsrMatrix::from_csr(1, 1, vec![0, 2], vec![0], vec![1.0]).is_err());
        // unsorted columns.
        assert!(CsrMatrix::from_csr(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 1.0]).is_err());
        // duplicate columns.
        assert!(CsrMatrix::from_csr(1, 3, vec![0, 2], vec![1, 1], vec![1.0, 1.0]).is_err());
        // good.
        assert!(CsrMatrix::from_csr(1, 3, vec![0, 2], vec![0, 2], vec![1.0, 1.0]).is_ok());
    }

    #[test]
    fn get_and_row_iter() {
        let m = upper();
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(1, 0), 0.0);
        let row0: Vec<_> = m.row(0).collect();
        assert_eq!(row0, vec![(0, 1.0), (1, 2.0)]);
    }

    #[test]
    fn matvec_matches_dense() {
        let m = upper();
        let mut y = vec![0.0; 2];
        m.matvec(&[1.0, 1.0], &mut y);
        assert_eq!(y, vec![3.0, 3.0]);

        let mut yt = vec![0.0; 2];
        m.matvec_transpose(&[1.0, 1.0], &mut yt);
        assert_eq!(yt, vec![1.0, 5.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = upper();
        let t = m.transpose();
        t.validate().unwrap();
        assert_eq!(t.get(1, 0), 2.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn identity_and_diag() {
        let i = CsrMatrix::identity(3);
        let mut y = vec![0.0; 3];
        i.matvec(&[1.0, 2.0, 3.0], &mut y);
        assert_eq!(y, vec![1.0, 2.0, 3.0]);
        assert_eq!(i.diag(), vec![1.0; 3]);

        let d = CsrMatrix::from_diag(&[2.0, 5.0]);
        assert_eq!(d.get(1, 1), 5.0);
        assert_eq!(d.row_sums(), vec![2.0, 5.0]);
    }

    #[test]
    fn scaling_rows_cols_values() {
        let mut m = upper();
        m.scale_rows(&[2.0, 1.0]);
        assert_eq!(m.get(0, 1), 4.0);
        m.scale_cols(&[1.0, 0.5]);
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(1, 1), 1.5);
        m.scale(2.0);
        assert_eq!(m.get(0, 0), 4.0);
    }

    #[test]
    fn prune_drops_small_entries() {
        let mut m = CsrMatrix::from_triplets(2, 2, [(0, 0, 1e-12), (0, 1, 1.0), (1, 0, -2.0)]);
        m.prune(1e-9);
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.get(0, 0), 0.0);
        assert_eq!(m.get(1, 0), -2.0);
        m.validate().unwrap();
    }

    #[test]
    fn symmetry_check() {
        let sym = CsrMatrix::from_triplets(2, 2, [(0, 1, 1.0), (1, 0, 1.0)]);
        assert!(sym.is_symmetric(1e-12));
        assert!(!upper().is_symmetric(1e-12));
        let rect = CsrMatrix::from_triplets(1, 2, [(0, 1, 1.0)]);
        assert!(!rect.is_symmetric(1e-12));
    }

    #[test]
    fn quad_form_path_laplacian() {
        // L of the 2-path = [[1,-1],[-1,1]].
        let l =
            CsrMatrix::from_triplets(2, 2, [(0, 0, 1.0), (0, 1, -1.0), (1, 0, -1.0), (1, 1, 1.0)]);
        assert_eq!(l.quad_form(&[1.0, -1.0]), 4.0);
        assert_eq!(l.quad_form(&[1.0, 1.0]), 0.0);
    }

    #[test]
    fn to_dense_matches() {
        let m = upper();
        let d = m.to_dense();
        for i in 0..2 {
            for j in 0..2 {
                assert_eq!(d[(i, j)], m.get(i, j));
            }
        }
    }

    /// Deterministic pseudo-random matrix big enough to cross the
    /// parallel thresholds.
    fn big_matrix(nrows: usize, row_nnz: usize) -> CsrMatrix {
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let ncols = nrows;
        let mut trip = Vec::with_capacity(nrows * row_nnz);
        for r in 0..nrows {
            for _ in 0..row_nnz {
                let c = (next() % ncols as u64) as usize;
                let v = (next() % 1000) as f64 / 500.0 - 1.0;
                trip.push((r, c, v));
            }
        }
        CsrMatrix::from_triplets(nrows, ncols, trip)
    }

    #[test]
    fn nnz_row_chunks_tile_rows_and_balance_nnz() {
        let m = big_matrix(500, 40); // ~20k nnz, over the threshold
        let chunks = m.nnz_balanced_row_chunks(2048, 64);
        let mut expect = 0usize;
        for r in &chunks {
            assert_eq!(r.start, expect);
            assert!(!r.is_empty());
            expect = r.end;
        }
        assert_eq!(expect, m.nrows());
        assert!(chunks.len() > 1);
        // Chunks are a function of the matrix only: identical on recompute.
        assert_eq!(chunks, m.nnz_balanced_row_chunks(2048, 64));
        // Each chunk except the last carries at least the target nnz.
        for r in &chunks[..chunks.len() - 1] {
            let nnz: usize = r.clone().map(|i| m.row(i).count()).sum();
            assert!(nnz >= 2048, "chunk {r:?} has {nnz} nnz");
        }
        // Degenerate shapes.
        assert!(CsrMatrix::identity(0)
            .nnz_balanced_row_chunks(8, 4)
            .is_empty());
        assert_eq!(
            CsrMatrix::from_triplets(3, 3, []).nnz_balanced_row_chunks(8, 4),
            vec![0..3]
        );
    }

    #[test]
    fn parallel_products_bit_identical_across_thread_counts() {
        let m = big_matrix(600, 40);
        let x: Vec<f64> = (0..m.ncols())
            .map(|i| ((i % 17) as f64 - 8.0) / 3.0)
            .collect();
        let run = |threads: &str| {
            std::env::set_var("ACIR_THREADS", threads);
            let mut y = vec![0.0; m.nrows()];
            m.matvec(&x, &mut y);
            let mut yt = vec![0.0; m.ncols()];
            m.matvec_transpose(&x, &mut yt);
            let multi = m.matvec_multi(std::slice::from_ref(&x));
            std::env::remove_var("ACIR_THREADS");
            (y, yt, multi)
        };
        let (y1, yt1, multi1) = run("1");
        for threads in ["2", "4", "7"] {
            let (yt, ytt, multit) = run(threads);
            assert_eq!(y1, yt, "matvec differs at {threads} threads");
            assert_eq!(yt1, ytt, "matvec_transpose differs at {threads} threads");
            assert_eq!(multi1, multit, "matvec_multi differs at {threads} threads");
        }
    }

    #[test]
    fn matvec_multi_empty_and_single() {
        let m = upper();
        assert!(m.matvec_multi(&[]).is_empty());
        let out = m.matvec_multi(&[vec![1.0, 1.0]]);
        assert_eq!(out, vec![vec![3.0, 3.0]]);
    }

    /// Strategy: random small COO matrix.
    fn coo_strategy() -> impl Strategy<Value = (usize, usize, Vec<(usize, usize, f64)>)> {
        (1usize..8, 1usize..8).prop_flat_map(|(r, c)| {
            let trip = proptest::collection::vec(
                (0..r, 0..c, -10.0..10.0f64).prop_map(|(i, j, v)| (i, j, v)),
                0..24,
            );
            (Just(r), Just(c), trip)
        })
    }

    proptest! {
        #[test]
        fn prop_csr_invariants_hold((r, c, trip) in coo_strategy()) {
            let m = CsrMatrix::from_triplets(r, c, trip);
            prop_assert!(m.validate().is_ok());
        }

        #[test]
        fn prop_matvec_matches_dense((r, c, trip) in coo_strategy(),
                                     x in proptest::collection::vec(-5.0..5.0f64, 8)) {
            let m = CsrMatrix::from_triplets(r, c, trip);
            let x = &x[..c];
            let mut y_sparse = vec![0.0; r];
            m.matvec(x, &mut y_sparse);
            let mut y_dense = vec![0.0; r];
            m.to_dense().gemv(1.0, x, 0.0, &mut y_dense);
            for (a, b) in y_sparse.iter().zip(&y_dense) {
                prop_assert!((a - b).abs() < 1e-9);
            }
        }

        #[test]
        fn prop_matvec_multi_matches_independent_matvecs(
            (r, c, trip) in coo_strategy(),
            xs in proptest::collection::vec(proptest::collection::vec(-5.0..5.0f64, 8), 1..5),
        ) {
            let m = CsrMatrix::from_triplets(r, c, trip);
            let xs: Vec<Vec<f64>> = xs.into_iter().map(|x| x[..c].to_vec()).collect();
            let multi = m.matvec_multi(&xs);
            prop_assert_eq!(multi.len(), xs.len());
            for (j, x) in xs.iter().enumerate() {
                let mut y = vec![0.0; r];
                m.matvec(x, &mut y);
                // Bit-identical, not merely close: the per-(row, rhs)
                // accumulation order is the same by construction.
                prop_assert_eq!(&multi[j], &y);
            }
        }

        #[test]
        fn prop_transpose_matvec_consistent((r, c, trip) in coo_strategy(),
                                            x in proptest::collection::vec(-5.0..5.0f64, 8)) {
            let m = CsrMatrix::from_triplets(r, c, trip);
            let x = &x[..r];
            let mut via_transpose_mat = vec![0.0; c];
            m.transpose().matvec(x, &mut via_transpose_mat);
            let mut via_matvec_t = vec![0.0; c];
            m.matvec_transpose(x, &mut via_matvec_t);
            for (a, b) in via_transpose_mat.iter().zip(&via_matvec_t) {
                prop_assert!((a - b).abs() < 1e-9);
            }
        }
    }
}
