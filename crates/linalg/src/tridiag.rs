//! Symmetric tridiagonal eigensolver (implicit QL with Wilkinson shifts).
//!
//! The back end of the Lanczos pipeline: Lanczos reduces a sparse
//! symmetric operator to a small tridiagonal `T`; this module
//! diagonalizes `T` and (optionally) accumulates the rotations so Ritz
//! vectors can be assembled.

use crate::dense::DenseMatrix;
use crate::{LinalgError, Result};

/// Eigendecomposition of a symmetric tridiagonal matrix.
#[derive(Debug, Clone)]
pub struct TridiagEig {
    /// Eigenvalues in ascending order.
    pub eigenvalues: Vec<f64>,
    /// Orthonormal eigenvectors of `T` (column `k` ↔ `eigenvalues[k]`).
    pub eigenvectors: DenseMatrix,
}

/// Diagonalize the symmetric tridiagonal matrix with diagonal `d`
/// (length `n`) and off-diagonal `e` (length `n-1`).
///
/// Implicit-shift QL, adapted from the classic `tql2` routine. Errors if
/// an eigenvalue fails to converge in 50 iterations (indicative of
/// NaN/Inf input).
pub fn tridiag_eig(d: &[f64], e: &[f64]) -> Result<TridiagEig> {
    let n = d.len();
    if n == 0 {
        return Ok(TridiagEig {
            eigenvalues: vec![],
            eigenvectors: DenseMatrix::zeros(0, 0),
        });
    }
    if e.len() + 1 != n {
        return Err(LinalgError::DimensionMismatch {
            expected: n - 1,
            found: e.len(),
        });
    }
    let mut d = d.to_vec();
    // Workspace off-diagonal padded with trailing zero, as in tql2.
    let mut e: Vec<f64> = e.iter().copied().chain(std::iter::once(0.0)).collect();
    let mut z = DenseMatrix::identity(n);

    for l in 0..n {
        let mut iter = 0usize;
        loop {
            // Find a small off-diagonal element to split at.
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            if iter > 50 {
                return Err(LinalgError::NotConverged {
                    iterations: iter,
                    residual: e[l].abs(),
                });
            }
            // Wilkinson shift.
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = g.hypot(1.0);
            g = d[m] - d[l] + e[l] / (g + r.copysign(g));
            let (mut s, mut c) = (1.0f64, 1.0f64);
            let mut p = 0.0f64;
            // Index at which an underflow break occurred, if any (tql2's
            // `r == 0 && i >= l+1` restart condition).
            let mut broke_at: Option<usize> = None;
            for i in (l..m).rev() {
                let mut f = s * e[i];
                let b = c * e[i];
                r = f.hypot(g);
                e[i + 1] = r;
                if r == 0.0 {
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    broke_at = Some(i);
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
                // Accumulate the rotation into the eigenvector matrix.
                for k in 0..n {
                    f = z[(k, i + 1)];
                    z[(k, i + 1)] = s * z[(k, i)] + c * f;
                    z[(k, i)] = c * z[(k, i)] - s * f;
                }
            }
            if broke_at.is_some() {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }

    // Sort ascending, permuting columns.
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&i, &j| d[i].partial_cmp(&d[j]).unwrap());
    let eigenvalues: Vec<f64> = idx.iter().map(|&i| d[i]).collect();
    let eigenvectors = DenseMatrix::from_fn(n, n, |r, c| z[(r, idx[c])]);
    Ok(TridiagEig {
        eigenvalues,
        eigenvectors,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jacobi::SymEig;
    use proptest::prelude::*;

    fn tridiag_dense(d: &[f64], e: &[f64]) -> DenseMatrix {
        let n = d.len();
        let mut m = DenseMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = d[i];
        }
        for i in 0..n - 1 {
            m[(i, i + 1)] = e[i];
            m[(i + 1, i)] = e[i];
        }
        m
    }

    #[test]
    fn empty_and_singleton() {
        let eig = tridiag_eig(&[], &[]).unwrap();
        assert!(eig.eigenvalues.is_empty());
        let eig = tridiag_eig(&[7.0], &[]).unwrap();
        assert_eq!(eig.eigenvalues, vec![7.0]);
        assert_eq!(eig.eigenvectors[(0, 0)], 1.0);
    }

    #[test]
    fn dimension_mismatch() {
        assert!(tridiag_eig(&[1.0, 2.0], &[1.0, 1.0]).is_err());
    }

    #[test]
    fn two_by_two() {
        // [[2,1],[1,2]] → 1, 3.
        let eig = tridiag_eig(&[2.0, 2.0], &[1.0]).unwrap();
        assert!((eig.eigenvalues[0] - 1.0).abs() < 1e-12);
        assert!((eig.eigenvalues[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn path_laplacian_analytic() {
        // Tridiagonal Laplacian of the n-path.
        let n = 10;
        let mut d = vec![2.0; n];
        d[0] = 1.0;
        d[n - 1] = 1.0;
        let e = vec![-1.0; n - 1];
        let eig = tridiag_eig(&d, &e).unwrap();
        for (k, &lam) in eig.eigenvalues.iter().enumerate() {
            let expected = 2.0 - 2.0 * (std::f64::consts::PI * k as f64 / n as f64).cos();
            assert!((lam - expected).abs() < 1e-9, "k={k}");
        }
    }

    #[test]
    fn matches_jacobi_on_random_tridiagonal() {
        let d = [1.0, -2.0, 0.5, 3.0, 1.5];
        let e = [0.7, -1.1, 0.3, 2.0];
        let t = tridiag_dense(&d, &e);
        let ql = tridiag_eig(&d, &e).unwrap();
        let jac = SymEig::new(&t).unwrap();
        for (a, b) in ql.eigenvalues.iter().zip(&jac.eigenvalues) {
            assert!((a - b).abs() < 1e-9);
        }
        // Eigenvectors satisfy T v = λ v.
        for k in 0..d.len() {
            let v = ql.eigenvectors.col(k);
            let mut tv = vec![0.0; d.len()];
            t.gemv(1.0, &v, 0.0, &mut tv);
            for i in 0..d.len() {
                assert!((tv[i] - ql.eigenvalues[k] * v[i]).abs() < 1e-8);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn prop_ql_matches_jacobi(
            d in proptest::collection::vec(-5.0..5.0f64, 2..8),
            raw_e in proptest::collection::vec(-5.0..5.0f64, 7),
        ) {
            let e = &raw_e[..d.len() - 1];
            let ql = tridiag_eig(&d, e).unwrap();
            let jac = SymEig::new(&tridiag_dense(&d, e)).unwrap();
            for (a, b) in ql.eigenvalues.iter().zip(&jac.eigenvalues) {
                prop_assert!((a - b).abs() < 1e-7);
            }
            // Orthonormality of accumulated vectors.
            let q = &ql.eigenvectors;
            let g = q.transpose().matmul(q).unwrap();
            let mut defect = g;
            defect.axpy(-1.0, &DenseMatrix::identity(d.len())).unwrap();
            prop_assert!(defect.max_abs() < 1e-8);
        }
    }
}
