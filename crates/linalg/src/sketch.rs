//! Randomized sketching and randomized SVD (paper §2.3 / ref \[30\]).
//!
//! Two more entries in the paper's catalogue of approximation-as-
//! regularization, both quoted directly from §2.3:
//!
//! * "working with a truncated singular value decomposition in latent
//!   factor models can lead to better precision and recall" — the
//!   truncation rank is a regularization parameter, and
//!   [`truncated_svd_denoises`](self) is demonstrated in the tests:
//!   on a noisy low-rank matrix the rank-k reconstruction is *closer
//!   to the noiseless truth* than the full data;
//! * "empirically similar regularization effects are observed when
//!   randomization is included inside the algorithm, e.g., as with
//!   randomized algorithms for matrix problems such as low-rank matrix
//!   approximation and least-squares approximation \[30\]" — the
//!   randomized range finder and sketched least squares implemented
//!   here.
//!
//! The pieces: Rademacher sketching matrices, thin QR (modified
//! Gram–Schmidt), the Halko–Martinsson–Tropp randomized range finder
//! with power iterations, randomized truncated SVD, and sketch-and-
//! solve least squares.

use crate::dense::DenseMatrix;
use crate::jacobi::SymEig;
use crate::solve::Cholesky;
use crate::vector;
use crate::{LinalgError, Result};
use rand::Rng;

/// A `rows × cols` Rademacher (±1/√rows) sketching matrix.
///
/// Satisfies the Johnson–Lindenstrauss property; the 1/√rows scaling
/// makes `E[SᵀS] = I`.
pub fn rademacher_sketch(rng: &mut impl Rng, rows: usize, cols: usize) -> DenseMatrix {
    let scale = 1.0 / (rows as f64).sqrt();
    DenseMatrix::from_fn(
        rows,
        cols,
        |_, _| {
            if rng.gen_bool(0.5) {
                scale
            } else {
                -scale
            }
        },
    )
}

/// Thin QR factorization of a tall matrix by modified Gram–Schmidt
/// with one reorthogonalization pass: `A = Q R` with `Q` having
/// orthonormal columns. Rank-deficient columns are replaced by zeros
/// in `Q` (and zero rows in `R`).
pub fn qr_thin(a: &DenseMatrix) -> Result<(DenseMatrix, DenseMatrix)> {
    let (m, n) = (a.nrows(), a.ncols());
    if m < n {
        return Err(LinalgError::InvalidArgument("qr_thin needs rows >= cols"));
    }
    let mut q: Vec<Vec<f64>> = (0..n).map(|j| a.col(j)).collect();
    let mut r = DenseMatrix::zeros(n, n);
    for j in 0..n {
        // Two MGS passes for numerical robustness.
        for _ in 0..2 {
            for i in 0..j {
                let qi = q[i].clone();
                let proj = vector::dot(&qi, &q[j]);
                r[(i, j)] += proj;
                vector::axpy(-proj, &qi, &mut q[j]);
            }
        }
        let norm = vector::norm2(&q[j]);
        r[(j, j)] = norm;
        if norm > 1e-12 {
            vector::scale(1.0 / norm, &mut q[j]);
        } else {
            q[j].fill(0.0);
        }
    }
    let qmat = DenseMatrix::from_fn(m, n, |i, j| q[j][i]);
    Ok((qmat, r))
}

/// Randomized range finder (HMT): an orthonormal basis `Q`
/// (`m × (k + oversample)`) approximately spanning the top-`k` left
/// singular subspace of `a`, refined by `power_iters` subspace
/// iterations.
pub fn randomized_range_finder(
    a: &DenseMatrix,
    k: usize,
    oversample: usize,
    power_iters: usize,
    rng: &mut impl Rng,
) -> Result<DenseMatrix> {
    let (m, n) = (a.nrows(), a.ncols());
    let l = (k + oversample).min(n).min(m);
    if k == 0 || l == 0 {
        return Err(LinalgError::InvalidArgument(
            "need k >= 1 and a non-empty matrix",
        ));
    }
    // Y = A Ω with Ω n×l (the sketch generator emits l×n; transpose).
    let omega = rademacher_sketch(rng, l, n).transpose();
    let mut y = a.matmul(&omega)?;
    let (mut q, _) = qr_thin(&y)?;
    let at = a.transpose();
    for _ in 0..power_iters {
        // Subspace iteration with re-orthonormalization each half-step.
        let z = at.matmul(&q)?;
        let (qz, _) = qr_thin(&z)?;
        y = a.matmul(&qz)?;
        let (qy, _) = qr_thin(&y)?;
        q = qy;
    }
    Ok(q)
}

/// A truncated SVD `A ≈ U · diag(s) · Vᵀ`.
#[derive(Debug, Clone)]
pub struct TruncatedSvd {
    /// Left singular vectors (`m × k`).
    pub u: DenseMatrix,
    /// Singular values, descending (length `k`).
    pub s: Vec<f64>,
    /// Right singular vectors, transposed (`k × n`).
    pub vt: DenseMatrix,
}

impl TruncatedSvd {
    /// Reconstruct the rank-`k` approximation `U diag(s) Vᵀ`.
    pub fn reconstruct(&self) -> DenseMatrix {
        let k = self.s.len();
        let mut us = self.u.clone();
        for j in 0..k {
            for i in 0..us.nrows() {
                us[(i, j)] *= self.s[j];
            }
        }
        us.matmul(&self.vt).expect("shapes agree")
    }
}

/// Randomized truncated SVD via the range finder: project `B = QᵀA`,
/// take the exact SVD of the small `B` (through the symmetric
/// eigendecomposition of `BBᵀ`), and lift back.
pub fn randomized_svd(
    a: &DenseMatrix,
    k: usize,
    oversample: usize,
    power_iters: usize,
    rng: &mut impl Rng,
) -> Result<TruncatedSvd> {
    let q = randomized_range_finder(a, k, oversample, power_iters, rng)?;
    let b = q.transpose().matmul(a)?; // l × n
                                      // SVD of B: BBᵀ = W diag(s²) Wᵀ; U_B = W, Vᵀ = diag(1/s) Wᵀ B.
    let bbt = b.matmul(&b.transpose())?;
    let eig = SymEig::new(&bbt)?;
    let l = bbt.nrows();
    let k = k.min(l);
    let mut s = Vec::with_capacity(k);
    let mut u_small = DenseMatrix::zeros(l, k);
    // Largest eigenvalues last in the ascending order.
    for (col, idx) in (0..k).zip((0..l).rev()) {
        let lam = eig.eigenvalues[idx].max(0.0);
        s.push(lam.sqrt());
        let w = eig.eigenvector(idx);
        for i in 0..l {
            u_small[(i, col)] = w[i];
        }
    }
    // Vᵀ rows: vᵀ_j = (1/s_j) w_jᵀ B.
    let wt_b = u_small.transpose().matmul(&b)?; // k × n
    let mut vt = wt_b;
    for (j, sj) in s.iter().enumerate().take(k) {
        let inv = if *sj > 1e-12 { 1.0 / sj } else { 0.0 };
        vector::scale(inv, vt.row_mut(j));
    }
    let u = q.matmul(&u_small)?; // m × k
    Ok(TruncatedSvd { u, s, vt })
}

/// Sketch-and-solve least squares: `argmin_x ‖S(Ax − b)‖₂` with a
/// `sketch_rows × m` Rademacher `S` — the \[30\]-style randomized
/// least-squares approximation. Returns the sketched solution.
pub fn sketched_least_squares(
    a: &DenseMatrix,
    b: &[f64],
    sketch_rows: usize,
    rng: &mut impl Rng,
) -> Result<Vec<f64>> {
    let (m, n) = (a.nrows(), a.ncols());
    if b.len() != m {
        return Err(LinalgError::DimensionMismatch {
            expected: m,
            found: b.len(),
        });
    }
    if sketch_rows < n {
        return Err(LinalgError::InvalidArgument(
            "sketch_rows must be at least the column count",
        ));
    }
    let s = rademacher_sketch(rng, sketch_rows, m);
    let sa = s.matmul(a)?;
    let mut sb = vec![0.0; sketch_rows];
    s.gemv(1.0, b, 0.0, &mut sb);
    // Normal equations on the sketched system.
    let sat = sa.transpose();
    let mut gram = sat.matmul(&sa)?;
    gram.shift_diag(1e-12); // guard against sketched rank deficiency
    let mut rhs = vec![0.0; n];
    sat.gemv(1.0, &sb, 0.0, &mut rhs);
    Cholesky::new(&gram)?.solve(&rhs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    /// A rank-`r` m×n matrix with decaying singular-ish structure.
    fn low_rank(m: usize, n: usize, r: usize, rng: &mut StdRng) -> DenseMatrix {
        let u = DenseMatrix::from_fn(m, r, |_, _| rng.gen_range(-1.0..1.0));
        let v = DenseMatrix::from_fn(r, n, |_, _| rng.gen_range(-1.0..1.0));
        let mut scaled = u;
        for j in 0..r {
            let s = 3.0_f64.powi(-(j as i32));
            for i in 0..scaled.nrows() {
                scaled[(i, j)] *= s;
            }
        }
        scaled.matmul(&v).unwrap()
    }

    #[test]
    fn qr_orthonormal_and_reconstructs() {
        let mut r = rng(1);
        let a = DenseMatrix::from_fn(8, 4, |_, _| r.gen_range(-1.0..1.0));
        let (q, rr) = qr_thin(&a).unwrap();
        // QᵀQ = I.
        let qtq = q.transpose().matmul(&q).unwrap();
        let mut defect = qtq;
        defect.axpy(-1.0, &DenseMatrix::identity(4)).unwrap();
        assert!(defect.max_abs() < 1e-10);
        // QR = A.
        let recon = q.matmul(&rr).unwrap();
        let mut diff = recon;
        diff.axpy(-1.0, &a).unwrap();
        assert!(diff.max_abs() < 1e-10);
        // Wide input rejected.
        assert!(qr_thin(&DenseMatrix::zeros(2, 5)).is_err());
    }

    #[test]
    fn qr_handles_rank_deficiency() {
        // Two identical columns.
        let a = DenseMatrix::from_fn(5, 2, |i, _| i as f64);
        let (q, rr) = qr_thin(&a).unwrap();
        assert!(rr[(1, 1)].abs() < 1e-10);
        let recon = q.matmul(&rr).unwrap();
        let mut diff = recon;
        diff.axpy(-1.0, &a).unwrap();
        assert!(diff.max_abs() < 1e-9);
    }

    #[test]
    fn randomized_svd_recovers_low_rank_exactly() {
        let mut r = rng(2);
        let a = low_rank(20, 14, 3, &mut r);
        let svd = randomized_svd(&a, 3, 4, 2, &mut r).unwrap();
        let recon = svd.reconstruct();
        let mut diff = recon;
        diff.axpy(-1.0, &a).unwrap();
        assert!(
            diff.fro_norm() < 1e-8 * a.fro_norm().max(1.0),
            "relative error {}",
            diff.fro_norm() / a.fro_norm()
        );
        // Singular values descending and nonnegative.
        assert!(svd.s.windows(2).all(|w| w[0] >= w[1] - 1e-12));
        assert!(svd.s.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn truncated_svd_denoises() {
        // §2.3: truncation as regularization. Noisy low-rank data: the
        // rank-k reconstruction is closer to the clean truth than the
        // observed data itself.
        let mut r = rng(3);
        let clean = low_rank(24, 18, 2, &mut r);
        let noisy =
            DenseMatrix::from_fn(24, 18, |i, j| clean[(i, j)] + 0.05 * r.gen_range(-1.0..1.0));
        let svd = randomized_svd(&noisy, 2, 6, 2, &mut r).unwrap();
        let denoised = svd.reconstruct();
        let err = |x: &DenseMatrix| {
            let mut d = x.clone();
            d.axpy(-1.0, &clean).unwrap();
            d.fro_norm()
        };
        assert!(
            err(&denoised) < err(&noisy),
            "truncated reconstruction {} should beat raw data {}",
            err(&denoised),
            err(&noisy)
        );
    }

    #[test]
    fn sketched_least_squares_approximates_exact() {
        let mut r = rng(4);
        let m = 200;
        let n = 5;
        let a = DenseMatrix::from_fn(m, n, |i, j| ((i * (j + 2)) as f64 * 0.01).sin());
        let truth: Vec<f64> = (0..n).map(|j| j as f64 - 2.0).collect();
        let mut b = vec![0.0; m];
        a.gemv(1.0, &truth, 0.0, &mut b);
        for bi in b.iter_mut() {
            *bi += 0.01 * r.gen_range(-1.0..1.0);
        }
        let exact = crate::solve::Cholesky::new(&{
            let at = a.transpose();
            at.matmul(&a).unwrap()
        })
        .unwrap()
        .solve(&{
            let at = a.transpose();
            let mut atb = vec![0.0; n];
            at.gemv(1.0, &b, 0.0, &mut atb);
            atb
        })
        .unwrap();
        let sketched = sketched_least_squares(&a, &b, 60, &mut r).unwrap();
        let rel = vector::dist2(&sketched, &exact) / vector::norm2(&exact);
        assert!(rel < 0.15, "relative gap {rel}");
        // More sketch rows → closer to exact.
        let finer = sketched_least_squares(&a, &b, 150, &mut r).unwrap();
        let rel_fine = vector::dist2(&finer, &exact) / vector::norm2(&exact);
        assert!(rel_fine < rel + 0.02);
    }

    #[test]
    fn sketched_ls_validates() {
        let a = DenseMatrix::zeros(10, 4);
        let mut r = rng(5);
        assert!(sketched_least_squares(&a, &[0.0; 3], 8, &mut r).is_err());
        assert!(sketched_least_squares(&a, &[0.0; 10], 2, &mut r).is_err());
    }

    #[test]
    fn sketch_matrix_is_isotropic_in_expectation() {
        let mut r = rng(6);
        let s = rademacher_sketch(&mut r, 400, 6);
        let sts = s.transpose().matmul(&s).unwrap();
        let mut defect = sts;
        defect.axpy(-1.0, &DenseMatrix::identity(6)).unwrap();
        // Concentration: entries of SᵀS − I are O(1/√rows).
        assert!(defect.max_abs() < 0.3, "defect {}", defect.max_abs());
    }

    #[test]
    fn range_finder_validates() {
        let a = DenseMatrix::zeros(4, 4);
        let mut r = rng(7);
        assert!(randomized_range_finder(&a, 0, 2, 1, &mut r).is_err());
    }
}
