//! BLAS-1 style vector kernels.
//!
//! Free functions over `&[f64]` / `&mut [f64]` so they compose with both
//! owned buffers and matrix rows without copies. All functions panic on
//! length mismatch in debug builds (via `zip` + `debug_assert`), matching
//! the crate convention that dimension errors are programmer errors at
//! this lowest level.
//!
//! ## Determinism and parallelism
//!
//! The reductions ([`dot`], [`norm2`], [`norm1`], [`sum`]) accumulate
//! **strictly sequentially, left to right** — the 4-way unrolled bodies
//! change loop overhead, never the order of floating-point additions, so
//! every result is bit-identical to the naive loop (pinned by tests).
//! They are deliberately *not* thread-parallel: a chunked reduction
//! re-associates additions, and these primitives sit under every
//! convergence test in the workspace.
//!
//! The elementwise updates ([`axpy`], [`scale`], [`hadamard`]) have no
//! cross-element data flow, so they fan out on the ambient
//! [`ExecPool`] once a vector is long enough to pay
//! for it — with per-element arithmetic unchanged, hence bit-identical
//! at every thread count.

use acir_exec::ExecPool;

/// Below this length the elementwise updates stay sequential: the memory
/// scan is far cheaper than waking workers. A size (not thread-count)
/// threshold — results are identical on both paths anyway.
const PAR_MIN_LEN: usize = 1 << 15;

/// Dot product `xᵀy`.
///
/// Accumulated left-to-right (4-way unrolled, order preserved): the
/// result is bit-identical to the naive sequential loop.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    let n4 = x.len() - x.len() % 4;
    let mut acc = 0.0f64;
    let mut i = 0;
    // Left-associated adds: ((((acc + x0·y0) + x1·y1) + x2·y2) + x3·y3)
    // is the exact addition sequence of the one-at-a-time loop.
    while i < n4 {
        acc = acc + x[i] * y[i] + x[i + 1] * y[i + 1] + x[i + 2] * y[i + 2] + x[i + 3] * y[i + 3];
        i += 4;
    }
    while i < x.len() {
        acc += x[i] * y[i];
        i += 1;
    }
    acc
}

/// Euclidean norm `‖x‖₂`.
#[inline]
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// One-norm `‖x‖₁ = Σ|xᵢ|` (sequential accumulation order).
#[inline]
pub fn norm1(x: &[f64]) -> f64 {
    let n4 = x.len() - x.len() % 4;
    let mut acc = 0.0f64;
    let mut i = 0;
    while i < n4 {
        acc = acc + x[i].abs() + x[i + 1].abs() + x[i + 2].abs() + x[i + 3].abs();
        i += 4;
    }
    while i < x.len() {
        acc += x[i].abs();
        i += 1;
    }
    acc
}

/// Infinity norm `max |xᵢ|` (0 for the empty vector).
#[inline]
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0_f64, |m, a| m.max(a.abs()))
}

/// `y ← a·x + y`.
///
/// Elementwise (no cross-element data flow): 4-way unrolled, and
/// thread-parallel for long vectors with per-element arithmetic
/// unchanged — bit-identical at every thread count.
#[inline]
pub fn axpy(a: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    if y.len() >= PAR_MIN_LEN {
        ExecPool::from_env().par_zip_mut(y, x, PAR_MIN_LEN / 4, |yc, xc| axpy_seq(a, xc, yc));
    } else {
        axpy_seq(a, x, y);
    }
}

#[inline]
fn axpy_seq(a: f64, x: &[f64], y: &mut [f64]) {
    let (y4, ytail) = y.split_at_mut(y.len() - y.len() % 4);
    let (x4, xtail) = x.split_at(y4.len());
    for (yc, xc) in y4.chunks_exact_mut(4).zip(x4.chunks_exact(4)) {
        yc[0] += a * xc[0];
        yc[1] += a * xc[1];
        yc[2] += a * xc[2];
        yc[3] += a * xc[3];
    }
    for (yi, xi) in ytail.iter_mut().zip(xtail) {
        *yi += a * xi;
    }
}

/// `y ← a·x + b·y` elementwise — the CG direction update `p ← r + β·p`
/// and the Chebyshev three-term recurrence `t ← 2·t − t_prev` are both
/// instances. Thread-parallel for long vectors with per-element
/// arithmetic unchanged, hence bit-identical at every thread count.
#[inline]
pub fn axpby(a: f64, x: &[f64], b: f64, y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    if y.len() >= PAR_MIN_LEN {
        ExecPool::from_env().par_zip_mut(y, x, PAR_MIN_LEN / 4, |yc, xc| axpby_seq(a, xc, b, yc));
    } else {
        axpby_seq(a, x, b, y);
    }
}

#[inline]
fn axpby_seq(a: f64, x: &[f64], b: f64, y: &mut [f64]) {
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi = a * xi + b * *yi;
    }
}

/// `y[i] ← x[i] / c` — the normalized copy of power iteration. Kept as a
/// true division (not a multiply by `1/c`) so results match the scalar
/// loop bit-for-bit; thread-parallel for long vectors.
#[inline]
pub fn copy_div(c: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    if y.len() >= PAR_MIN_LEN {
        ExecPool::from_env().par_zip_mut(y, x, PAR_MIN_LEN / 4, |yc, xc| {
            for (yi, xi) in yc.iter_mut().zip(xc) {
                *yi = xi / c;
            }
        });
    } else {
        for (yi, xi) in y.iter_mut().zip(x) {
            *yi = xi / c;
        }
    }
}

/// `x ← a·x` (elementwise; thread-parallel for long vectors).
#[inline]
pub fn scale(a: f64, x: &mut [f64]) {
    if x.len() >= PAR_MIN_LEN {
        ExecPool::from_env().par_chunks_mut(x, PAR_MIN_LEN / 4, |_, chunk| {
            for xi in chunk.iter_mut() {
                *xi *= a;
            }
        });
    } else {
        for xi in x.iter_mut() {
            *xi *= a;
        }
    }
}

/// Copy `src` into `dst`.
#[inline]
pub fn copy(src: &[f64], dst: &mut [f64]) {
    dst.copy_from_slice(src);
}

/// Normalize `x` to unit 2-norm in place; returns the original norm.
///
/// If `‖x‖₂ == 0` the vector is left untouched and 0.0 is returned.
pub fn normalize2(x: &mut [f64]) -> f64 {
    let n = norm2(x);
    if n > 0.0 {
        scale(1.0 / n, x);
    }
    n
}

/// Normalize `x` to unit 1-norm in place (probability normalization);
/// returns the original 1-norm. A zero vector is left untouched.
pub fn normalize1(x: &mut [f64]) -> f64 {
    let n = norm1(x);
    if n > 0.0 {
        scale(1.0 / n, x);
    }
    n
}

/// `‖x − y‖₂`.
pub fn dist2(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    x.iter()
        .zip(y)
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f64>()
        .sqrt()
}

/// Project `x` onto the orthogonal complement of unit vector `u`:
/// `x ← x − (uᵀx)·u`.
///
/// Used by eigenvector iterations to deflate known eigenvectors (e.g. the
/// trivial degree-weighted eigenvector `D^{1/2}·1` of a normalized
/// Laplacian, paper §3.1).
pub fn deflate(x: &mut [f64], u: &[f64]) {
    let c = dot(x, u);
    axpy(-c, u, x);
}

/// Alignment `|xᵀy| / (‖x‖·‖y‖)` in `[0, 1]`; 1 means parallel up to sign.
///
/// The natural eigenvector comparison: the paper stresses that `v₂` is only
/// defined up to sign (and possibly not uniquely at all), so comparisons
/// must be sign-invariant.
pub fn alignment(x: &[f64], y: &[f64]) -> f64 {
    let nx = norm2(x);
    let ny = norm2(y);
    if nx == 0.0 || ny == 0.0 {
        return 0.0;
    }
    (dot(x, y) / (nx * ny)).abs().min(1.0)
}

/// Sum of entries.
#[inline]
pub fn sum(x: &[f64]) -> f64 {
    x.iter().sum()
}

/// Elementwise product `z = x ⊙ y` written into `z` (thread-parallel
/// for long vectors; per-element arithmetic unchanged).
pub fn hadamard(x: &[f64], y: &[f64], z: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    debug_assert_eq!(x.len(), z.len());
    if z.len() >= PAR_MIN_LEN {
        ExecPool::from_env().par_chunks_mut(z, PAR_MIN_LEN / 4, |start, chunk| {
            let (xc, yc) = (
                &x[start..start + chunk.len()],
                &y[start..start + chunk.len()],
            );
            for ((zi, xi), yi) in chunk.iter_mut().zip(xc).zip(yc) {
                *zi = xi * yi;
            }
        });
    } else {
        for ((zi, xi), yi) in z.iter_mut().zip(x).zip(y) {
            *zi = xi * yi;
        }
    }
}

/// Index and value of the maximum entry; `None` for the empty slice.
pub fn argmax(x: &[f64]) -> Option<(usize, f64)> {
    x.iter()
        .copied()
        .enumerate()
        .fold(None, |best, (i, v)| match best {
            Some((_, bv)) if bv >= v => best,
            _ => Some((i, v)),
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn dot_and_norms() {
        let x = [3.0, 4.0];
        assert_eq!(dot(&x, &x), 25.0);
        assert_eq!(norm2(&x), 5.0);
        assert_eq!(norm1(&x), 7.0);
        assert_eq!(norm_inf(&x), 4.0);
        assert_eq!(norm_inf(&[]), 0.0);
    }

    #[test]
    fn axpy_scale_copy() {
        let x = [1.0, 2.0];
        let mut y = [10.0, 20.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0]);
        scale(0.5, &mut y);
        assert_eq!(y, [6.0, 12.0]);
        let mut z = [0.0, 0.0];
        copy(&y, &mut z);
        assert_eq!(z, y);
    }

    #[test]
    fn normalize_unit_norm() {
        let mut x = vec![3.0, 4.0];
        let n = normalize2(&mut x);
        assert_eq!(n, 5.0);
        assert!((norm2(&x) - 1.0).abs() < 1e-15);

        let mut p = vec![1.0, 3.0];
        normalize1(&mut p);
        assert!((sum(&p) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn normalize_zero_vector_is_noop() {
        let mut x = vec![0.0, 0.0];
        assert_eq!(normalize2(&mut x), 0.0);
        assert_eq!(x, vec![0.0, 0.0]);
        assert_eq!(normalize1(&mut x), 0.0);
    }

    #[test]
    fn deflate_removes_component() {
        let u = [1.0, 0.0];
        let mut x = [3.0, 7.0];
        deflate(&mut x, &u);
        assert_eq!(x, [0.0, 7.0]);
        assert!(dot(&x, &u).abs() < 1e-15);
    }

    #[test]
    fn alignment_is_sign_invariant() {
        let x = [1.0, 2.0, 3.0];
        let y = [-1.0, -2.0, -3.0];
        assert!((alignment(&x, &y) - 1.0).abs() < 1e-12);
        let z = [0.0, 0.0, 0.0];
        assert_eq!(alignment(&x, &z), 0.0);
    }

    #[test]
    fn alignment_orthogonal_is_zero() {
        assert!(alignment(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-15);
    }

    #[test]
    fn hadamard_elementwise() {
        let mut z = [0.0; 3];
        hadamard(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0], &mut z);
        assert_eq!(z, [4.0, 10.0, 18.0]);
    }

    #[test]
    fn argmax_basic() {
        assert_eq!(argmax(&[1.0, 5.0, 3.0]), Some((1, 5.0)));
        assert_eq!(argmax(&[]), None);
        // First max wins on ties.
        assert_eq!(argmax(&[2.0, 2.0]), Some((0, 2.0)));
    }

    #[test]
    fn dist2_matches_norm_of_difference() {
        let x = [1.0, 2.0];
        let y = [4.0, 6.0];
        assert_eq!(dist2(&x, &y), 5.0);
    }

    /// The naive reference implementations the unrolled kernels are
    /// pinned against: one element at a time, strictly left to right.
    fn naive_dot(x: &[f64], y: &[f64]) -> f64 {
        let mut acc = 0.0;
        for (a, b) in x.iter().zip(y) {
            acc += a * b;
        }
        acc
    }

    fn naive_norm1(x: &[f64]) -> f64 {
        let mut acc = 0.0;
        for a in x {
            acc += a.abs();
        }
        acc
    }

    fn naive_axpy(a: f64, x: &[f64], y: &mut [f64]) {
        for (yi, xi) in y.iter_mut().zip(x) {
            *yi += a * xi;
        }
    }

    /// Awkward values whose sums are rounding-order sensitive, at
    /// lengths straddling every unroll remainder (0..=3).
    fn awkward(len: usize) -> Vec<f64> {
        (0..len)
            .map(|i| {
                let s = if i % 3 == 0 { -1.0 } else { 1.0 };
                s * (1.0 + (i as f64) * 1e-3) * 10f64.powi((i % 13) as i32 - 6)
            })
            .collect()
    }

    #[test]
    fn unrolled_kernels_bit_identical_to_naive_ordering() {
        for len in [0usize, 1, 2, 3, 4, 5, 7, 8, 97, 1024, 1031] {
            let x = awkward(len);
            let y: Vec<f64> = awkward(len).iter().map(|v| v * 0.7 - 0.1).collect();
            assert_eq!(
                dot(&x, &y).to_bits(),
                naive_dot(&x, &y).to_bits(),
                "dot at len {len}"
            );
            assert_eq!(
                norm2(&x).to_bits(),
                naive_dot(&x, &x).sqrt().to_bits(),
                "norm2 at len {len}"
            );
            assert_eq!(
                norm1(&x).to_bits(),
                naive_norm1(&x).to_bits(),
                "norm1 at len {len}"
            );
            let mut got = y.clone();
            axpy(0.3, &x, &mut got);
            let mut want = y.clone();
            naive_axpy(0.3, &x, &mut want);
            assert_eq!(got, want, "axpy at len {len}");
        }
    }

    #[test]
    fn axpby_and_copy_div_match_scalar_loops_at_any_thread_count() {
        // Crosses PAR_MIN_LEN so the pool path actually runs; the scalar
        // references mirror the loops these helpers replaced in CG,
        // Chebyshev, and power iteration.
        let n = (1 << 15) + 5;
        let x = awkward(n);
        let base: Vec<f64> = awkward(n).iter().map(|v| v * 1.3 + 0.125).collect();
        let want_axpby: Vec<f64> = base
            .iter()
            .zip(&x)
            .map(|(yi, xi)| 0.7 * xi + (-1.9) * yi)
            .collect();
        let want_div: Vec<f64> = x.iter().map(|xi| xi / 3.7).collect();
        for threads in ["1", "4"] {
            std::env::set_var("ACIR_THREADS", threads);
            let mut y = base.clone();
            axpby(0.7, &x, -1.9, &mut y);
            assert_eq!(y, want_axpby, "axpby at {threads} threads");
            let mut d = vec![0.0; n];
            copy_div(3.7, &x, &mut d);
            assert_eq!(d, want_div, "copy_div at {threads} threads");
            std::env::remove_var("ACIR_THREADS");
        }
    }

    #[test]
    fn long_elementwise_ops_match_sequential_at_any_thread_count() {
        // Crosses PAR_MIN_LEN so the pool path actually runs.
        let n = (1 << 15) + 3;
        let x = awkward(n);
        let base: Vec<f64> = awkward(n).iter().map(|v| v + 0.25).collect();
        let mut want = base.clone();
        naive_axpy(-1.7, &x, &mut want);
        for threads in ["1", "4"] {
            std::env::set_var("ACIR_THREADS", threads);
            let mut got = base.clone();
            axpy(-1.7, &x, &mut got);
            assert_eq!(got, want, "axpy differs at {threads} threads");
            let mut s = x.clone();
            scale(0.5, &mut s);
            assert!(s.iter().zip(&x).all(|(a, b)| *a == b * 0.5));
            let mut h = vec![0.0; n];
            hadamard(&x, &base, &mut h);
            assert!(h
                .iter()
                .zip(x.iter().zip(&base))
                .all(|(z, (a, b))| *z == a * b));
            std::env::remove_var("ACIR_THREADS");
        }
    }

    proptest! {
        #[test]
        fn prop_cauchy_schwarz(x in proptest::collection::vec(-100.0..100.0f64, 1..32),
                               y in proptest::collection::vec(-100.0..100.0f64, 1..32)) {
            let n = x.len().min(y.len());
            let (x, y) = (&x[..n], &y[..n]);
            prop_assert!(dot(x, y).abs() <= norm2(x) * norm2(y) + 1e-9);
        }

        #[test]
        fn prop_triangle_inequality(x in proptest::collection::vec(-10.0..10.0f64, 1..32),
                                    y in proptest::collection::vec(-10.0..10.0f64, 1..32)) {
            let n = x.len().min(y.len());
            let (x, y) = (&x[..n], &y[..n]);
            let mut s = x.to_vec();
            axpy(1.0, y, &mut s);
            prop_assert!(norm2(&s) <= norm2(x) + norm2(y) + 1e-9);
        }

        #[test]
        fn prop_normalize2_yields_unit(x in proptest::collection::vec(-100.0..100.0f64, 1..32)) {
            let mut v = x.clone();
            let n = normalize2(&mut v);
            if n > 1e-9 {
                prop_assert!((norm2(&v) - 1.0).abs() < 1e-9);
            }
        }

        #[test]
        fn prop_deflate_orthogonalizes(x in proptest::collection::vec(-10.0..10.0f64, 2..16)) {
            let mut u = vec![0.0; x.len()];
            u[0] = 0.6; u[1] = 0.8; // unit vector
            let mut v = x.clone();
            deflate(&mut v, &u);
            prop_assert!(dot(&v, &u).abs() < 1e-9);
        }

        #[test]
        fn prop_norm_ordering(x in proptest::collection::vec(-10.0..10.0f64, 1..32)) {
            // ‖x‖∞ ≤ ‖x‖₂ ≤ ‖x‖₁
            prop_assert!(norm_inf(&x) <= norm2(&x) + 1e-12);
            prop_assert!(norm2(&x) <= norm1(&x) + 1e-12);
        }
    }
}
