//! BLAS-1 style vector kernels.
//!
//! Free functions over `&[f64]` / `&mut [f64]` so they compose with both
//! owned buffers and matrix rows without copies. All functions panic on
//! length mismatch in debug builds (via `zip` + `debug_assert`), matching
//! the crate convention that dimension errors are programmer errors at
//! this lowest level.

/// Dot product `xᵀy`.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// Euclidean norm `‖x‖₂`.
#[inline]
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// One-norm `‖x‖₁ = Σ|xᵢ|`.
#[inline]
pub fn norm1(x: &[f64]) -> f64 {
    x.iter().map(|a| a.abs()).sum()
}

/// Infinity norm `max |xᵢ|` (0 for the empty vector).
#[inline]
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0_f64, |m, a| m.max(a.abs()))
}

/// `y ← a·x + y`.
#[inline]
pub fn axpy(a: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += a * xi;
    }
}

/// `x ← a·x`.
#[inline]
pub fn scale(a: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= a;
    }
}

/// Copy `src` into `dst`.
#[inline]
pub fn copy(src: &[f64], dst: &mut [f64]) {
    dst.copy_from_slice(src);
}

/// Normalize `x` to unit 2-norm in place; returns the original norm.
///
/// If `‖x‖₂ == 0` the vector is left untouched and 0.0 is returned.
pub fn normalize2(x: &mut [f64]) -> f64 {
    let n = norm2(x);
    if n > 0.0 {
        scale(1.0 / n, x);
    }
    n
}

/// Normalize `x` to unit 1-norm in place (probability normalization);
/// returns the original 1-norm. A zero vector is left untouched.
pub fn normalize1(x: &mut [f64]) -> f64 {
    let n = norm1(x);
    if n > 0.0 {
        scale(1.0 / n, x);
    }
    n
}

/// `‖x − y‖₂`.
pub fn dist2(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    x.iter()
        .zip(y)
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f64>()
        .sqrt()
}

/// Project `x` onto the orthogonal complement of unit vector `u`:
/// `x ← x − (uᵀx)·u`.
///
/// Used by eigenvector iterations to deflate known eigenvectors (e.g. the
/// trivial degree-weighted eigenvector `D^{1/2}·1` of a normalized
/// Laplacian, paper §3.1).
pub fn deflate(x: &mut [f64], u: &[f64]) {
    let c = dot(x, u);
    axpy(-c, u, x);
}

/// Alignment `|xᵀy| / (‖x‖·‖y‖)` in `[0, 1]`; 1 means parallel up to sign.
///
/// The natural eigenvector comparison: the paper stresses that `v₂` is only
/// defined up to sign (and possibly not uniquely at all), so comparisons
/// must be sign-invariant.
pub fn alignment(x: &[f64], y: &[f64]) -> f64 {
    let nx = norm2(x);
    let ny = norm2(y);
    if nx == 0.0 || ny == 0.0 {
        return 0.0;
    }
    (dot(x, y) / (nx * ny)).abs().min(1.0)
}

/// Sum of entries.
#[inline]
pub fn sum(x: &[f64]) -> f64 {
    x.iter().sum()
}

/// Elementwise product `z = x ⊙ y` written into `z`.
pub fn hadamard(x: &[f64], y: &[f64], z: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    debug_assert_eq!(x.len(), z.len());
    for ((zi, xi), yi) in z.iter_mut().zip(x).zip(y) {
        *zi = xi * yi;
    }
}

/// Index and value of the maximum entry; `None` for the empty slice.
pub fn argmax(x: &[f64]) -> Option<(usize, f64)> {
    x.iter()
        .copied()
        .enumerate()
        .fold(None, |best, (i, v)| match best {
            Some((_, bv)) if bv >= v => best,
            _ => Some((i, v)),
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn dot_and_norms() {
        let x = [3.0, 4.0];
        assert_eq!(dot(&x, &x), 25.0);
        assert_eq!(norm2(&x), 5.0);
        assert_eq!(norm1(&x), 7.0);
        assert_eq!(norm_inf(&x), 4.0);
        assert_eq!(norm_inf(&[]), 0.0);
    }

    #[test]
    fn axpy_scale_copy() {
        let x = [1.0, 2.0];
        let mut y = [10.0, 20.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0]);
        scale(0.5, &mut y);
        assert_eq!(y, [6.0, 12.0]);
        let mut z = [0.0, 0.0];
        copy(&y, &mut z);
        assert_eq!(z, y);
    }

    #[test]
    fn normalize_unit_norm() {
        let mut x = vec![3.0, 4.0];
        let n = normalize2(&mut x);
        assert_eq!(n, 5.0);
        assert!((norm2(&x) - 1.0).abs() < 1e-15);

        let mut p = vec![1.0, 3.0];
        normalize1(&mut p);
        assert!((sum(&p) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn normalize_zero_vector_is_noop() {
        let mut x = vec![0.0, 0.0];
        assert_eq!(normalize2(&mut x), 0.0);
        assert_eq!(x, vec![0.0, 0.0]);
        assert_eq!(normalize1(&mut x), 0.0);
    }

    #[test]
    fn deflate_removes_component() {
        let u = [1.0, 0.0];
        let mut x = [3.0, 7.0];
        deflate(&mut x, &u);
        assert_eq!(x, [0.0, 7.0]);
        assert!(dot(&x, &u).abs() < 1e-15);
    }

    #[test]
    fn alignment_is_sign_invariant() {
        let x = [1.0, 2.0, 3.0];
        let y = [-1.0, -2.0, -3.0];
        assert!((alignment(&x, &y) - 1.0).abs() < 1e-12);
        let z = [0.0, 0.0, 0.0];
        assert_eq!(alignment(&x, &z), 0.0);
    }

    #[test]
    fn alignment_orthogonal_is_zero() {
        assert!(alignment(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-15);
    }

    #[test]
    fn hadamard_elementwise() {
        let mut z = [0.0; 3];
        hadamard(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0], &mut z);
        assert_eq!(z, [4.0, 10.0, 18.0]);
    }

    #[test]
    fn argmax_basic() {
        assert_eq!(argmax(&[1.0, 5.0, 3.0]), Some((1, 5.0)));
        assert_eq!(argmax(&[]), None);
        // First max wins on ties.
        assert_eq!(argmax(&[2.0, 2.0]), Some((0, 2.0)));
    }

    #[test]
    fn dist2_matches_norm_of_difference() {
        let x = [1.0, 2.0];
        let y = [4.0, 6.0];
        assert_eq!(dist2(&x, &y), 5.0);
    }

    proptest! {
        #[test]
        fn prop_cauchy_schwarz(x in proptest::collection::vec(-100.0..100.0f64, 1..32),
                               y in proptest::collection::vec(-100.0..100.0f64, 1..32)) {
            let n = x.len().min(y.len());
            let (x, y) = (&x[..n], &y[..n]);
            prop_assert!(dot(x, y).abs() <= norm2(x) * norm2(y) + 1e-9);
        }

        #[test]
        fn prop_triangle_inequality(x in proptest::collection::vec(-10.0..10.0f64, 1..32),
                                    y in proptest::collection::vec(-10.0..10.0f64, 1..32)) {
            let n = x.len().min(y.len());
            let (x, y) = (&x[..n], &y[..n]);
            let mut s = x.to_vec();
            axpy(1.0, y, &mut s);
            prop_assert!(norm2(&s) <= norm2(x) + norm2(y) + 1e-9);
        }

        #[test]
        fn prop_normalize2_yields_unit(x in proptest::collection::vec(-100.0..100.0f64, 1..32)) {
            let mut v = x.clone();
            let n = normalize2(&mut v);
            if n > 1e-9 {
                prop_assert!((norm2(&v) - 1.0).abs() < 1e-9);
            }
        }

        #[test]
        fn prop_deflate_orthogonalizes(x in proptest::collection::vec(-10.0..10.0f64, 2..16)) {
            let mut u = vec![0.0; x.len()];
            u[0] = 0.6; u[1] = 0.8; // unit vector
            let mut v = x.clone();
            deflate(&mut v, &u);
            prop_assert!(dot(&v, &u).abs() < 1e-9);
        }

        #[test]
        fn prop_norm_ordering(x in proptest::collection::vec(-10.0..10.0f64, 1..32)) {
            // ‖x‖∞ ≤ ‖x‖₂ ≤ ‖x‖₁
            prop_assert!(norm_inf(&x) <= norm2(&x) + 1e-12);
            prop_assert!(norm2(&x) <= norm1(&x) + 1e-12);
        }
    }
}
