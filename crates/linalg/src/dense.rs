//! Row-major dense matrices with the BLAS-2/3 kernels the reproduction
//! needs.
//!
//! Dense matrices appear only in the *exact*/reference paths of the
//! reproduction (paper footnote 14: in small-scale applications `v₂` is
//! computed "exactly" by a black-box solver). They are deliberately simple:
//! row-major `Vec<f64>` storage, no views, no expression templates.

use crate::vector;
use crate::{LinalgError, Result};

/// A dense row-major `nrows × ncols` matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    nrows: usize,
    ncols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// All-zero matrix.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        Self {
            nrows,
            ncols,
            data: vec![0.0; nrows * ncols],
        }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Diagonal matrix from a slice.
    pub fn from_diag(d: &[f64]) -> Self {
        let mut m = Self::zeros(d.len(), d.len());
        for (i, &v) in d.iter().enumerate() {
            m[(i, i)] = v;
        }
        m
    }

    /// Build from a function of `(row, col)`.
    pub fn from_fn(nrows: usize, ncols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(nrows * ncols);
        for i in 0..nrows {
            for j in 0..ncols {
                data.push(f(i, j));
            }
        }
        Self { nrows, ncols, data }
    }

    /// Build from explicit rows; panics if rows are ragged.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(nrows * ncols);
        for r in rows {
            assert_eq!(r.len(), ncols, "ragged rows");
            data.extend_from_slice(r);
        }
        Self { nrows, ncols, data }
    }

    /// Build from a flat row-major buffer; panics on size mismatch.
    pub fn from_vec(nrows: usize, ncols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), nrows * ncols, "buffer size mismatch");
        Self { nrows, ncols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Whether the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.nrows == self.ncols
    }

    /// Borrow row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.ncols..(i + 1) * self.ncols]
    }

    /// Borrow row `i` mutably.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.ncols..(i + 1) * self.ncols]
    }

    /// Copy column `j` out into a vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        (0..self.nrows).map(|i| self[(i, j)]).collect()
    }

    /// Underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Transpose into a new matrix.
    pub fn transpose(&self) -> Self {
        let mut t = Self::zeros(self.ncols, self.nrows);
        for i in 0..self.nrows {
            for j in 0..self.ncols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix trace; panics if not square.
    pub fn trace(&self) -> f64 {
        assert!(self.is_square(), "trace of non-square matrix");
        (0..self.nrows).map(|i| self[(i, i)]).sum()
    }

    /// Frobenius norm.
    pub fn fro_norm(&self) -> f64 {
        vector::norm2(&self.data)
    }

    /// Max absolute entry.
    pub fn max_abs(&self) -> f64 {
        vector::norm_inf(&self.data)
    }

    /// `self ← a·self`.
    pub fn scale(&mut self, a: f64) {
        vector::scale(a, &mut self.data);
    }

    /// `self ← self + a·other`. Errors on shape mismatch.
    pub fn axpy(&mut self, a: f64, other: &Self) -> Result<()> {
        if self.nrows != other.nrows || self.ncols != other.ncols {
            return Err(LinalgError::DimensionMismatch {
                expected: self.nrows * self.ncols,
                found: other.nrows * other.ncols,
            });
        }
        vector::axpy(a, &other.data, &mut self.data);
        Ok(())
    }

    /// Add `a` to every diagonal entry (matrix shift `A + aI`).
    pub fn shift_diag(&mut self, a: f64) {
        let n = self.nrows.min(self.ncols);
        for i in 0..n {
            self[(i, i)] += a;
        }
    }

    /// GEMV: `y ← alpha·A·x + beta·y`.
    ///
    /// Panics on dimension mismatch (lowest-level kernel; callers validate).
    pub fn gemv(&self, alpha: f64, x: &[f64], beta: f64, y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "gemv: x length");
        assert_eq!(y.len(), self.nrows, "gemv: y length");
        for (i, yi) in y.iter_mut().enumerate() {
            let r = vector::dot(self.row(i), x);
            *yi = alpha * r + beta * *yi;
        }
    }

    /// GEMM: returns `A · B`. Errors on inner-dimension mismatch.
    pub fn matmul(&self, b: &Self) -> Result<Self> {
        if self.ncols != b.nrows {
            return Err(LinalgError::DimensionMismatch {
                expected: self.ncols,
                found: b.nrows,
            });
        }
        let mut c = Self::zeros(self.nrows, b.ncols);
        // i-k-j loop order: stream through B's rows for cache friendliness.
        for i in 0..self.nrows {
            for k in 0..self.ncols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                let brow = b.row(k);
                let crow = c.row_mut(i);
                vector::axpy(aik, brow, crow);
            }
        }
        Ok(c)
    }

    /// Outer product update `self ← self + a·u·vᵀ`.
    pub fn rank1_update(&mut self, a: f64, u: &[f64], v: &[f64]) {
        assert_eq!(u.len(), self.nrows);
        assert_eq!(v.len(), self.ncols);
        for (i, &ui) in u.iter().enumerate() {
            let c = a * ui;
            if c != 0.0 {
                vector::axpy(c, v, self.row_mut(i));
            }
        }
    }

    /// Symmetrize in place: `self ← (self + selfᵀ)/2`. Panics if not square.
    pub fn symmetrize(&mut self) {
        assert!(self.is_square());
        for i in 0..self.nrows {
            for j in (i + 1)..self.ncols {
                let m = 0.5 * (self[(i, j)] + self[(j, i)]);
                self[(i, j)] = m;
                self[(j, i)] = m;
            }
        }
    }

    /// Whether `‖A − Aᵀ‖_max ≤ tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.nrows {
            for j in (i + 1)..self.ncols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Quadratic form `xᵀ A x`; panics on dimension mismatch.
    pub fn quad_form(&self, x: &[f64]) -> f64 {
        assert!(self.is_square());
        assert_eq!(x.len(), self.nrows);
        let mut y = vec![0.0; self.nrows];
        self.gemv(1.0, x, 0.0, &mut y);
        vector::dot(x, &y)
    }

    /// `Tr(AᵀB) = Σᵢⱼ AᵢⱼBᵢⱼ` — the Frobenius inner product, used for the
    /// SDP objective `Tr(LX)` of the paper's Problems (4)/(5).
    pub fn frob_inner(&self, b: &Self) -> Result<f64> {
        if self.nrows != b.nrows || self.ncols != b.ncols {
            return Err(LinalgError::DimensionMismatch {
                expected: self.nrows * self.ncols,
                found: b.nrows * b.ncols,
            });
        }
        Ok(vector::dot(&self.data, &b.data))
    }
}

impl std::ops::Index<(usize, usize)> for DenseMatrix {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.nrows && j < self.ncols);
        &self.data[i * self.ncols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for DenseMatrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.nrows && j < self.ncols);
        &mut self.data[i * self.ncols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn mat2() -> DenseMatrix {
        DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])
    }

    #[test]
    fn constructors() {
        let z = DenseMatrix::zeros(2, 3);
        assert_eq!(z.nrows(), 2);
        assert_eq!(z.ncols(), 3);
        assert!(z.as_slice().iter().all(|&v| v == 0.0));

        let i = DenseMatrix::identity(3);
        assert_eq!(i.trace(), 3.0);

        let d = DenseMatrix::from_diag(&[1.0, 2.0]);
        assert_eq!(d[(1, 1)], 2.0);
        assert_eq!(d[(0, 1)], 0.0);

        let f = DenseMatrix::from_fn(2, 2, |i, j| (i + j) as f64);
        assert_eq!(f[(1, 1)], 2.0);

        let v = DenseMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(v, mat2());
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        let _ = DenseMatrix::from_rows(&[&[1.0], &[1.0, 2.0]]);
    }

    #[test]
    fn row_col_access() {
        let m = mat2();
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.col(0), vec![1.0, 3.0]);
    }

    #[test]
    fn transpose_involution() {
        let m = DenseMatrix::from_fn(3, 2, |i, j| (3 * i + j) as f64);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose()[(0, 2)], m[(2, 0)]);
    }

    #[test]
    fn gemv_matches_hand_computation() {
        let m = mat2();
        let mut y = vec![1.0, 1.0];
        m.gemv(2.0, &[1.0, 1.0], 3.0, &mut y);
        // 2*[3, 7] + 3*[1,1] = [9, 17]
        assert_eq!(y, vec![9.0, 17.0]);
    }

    #[test]
    fn matmul_identity_and_assoc() {
        let m = mat2();
        let i = DenseMatrix::identity(2);
        assert_eq!(m.matmul(&i).unwrap(), m);
        assert_eq!(i.matmul(&m).unwrap(), m);

        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[0.0, 1.0]]);
        let b = DenseMatrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0]]);
        let ab = a.matmul(&b).unwrap();
        assert_eq!(ab, DenseMatrix::from_rows(&[&[3.0, 2.0], &[1.0, 1.0]]));
    }

    #[test]
    fn matmul_shape_error() {
        let a = DenseMatrix::zeros(2, 3);
        let b = DenseMatrix::zeros(2, 3);
        assert!(matches!(
            a.matmul(&b),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn rank1_update_outer_product() {
        let mut m = DenseMatrix::zeros(2, 2);
        m.rank1_update(2.0, &[1.0, 2.0], &[3.0, 4.0]);
        assert_eq!(m, DenseMatrix::from_rows(&[&[6.0, 8.0], &[12.0, 16.0]]));
    }

    #[test]
    fn symmetrize_and_check() {
        let mut m = mat2();
        assert!(!m.is_symmetric(1e-12));
        m.symmetrize();
        assert!(m.is_symmetric(1e-12));
        assert_eq!(m[(0, 1)], 2.5);
    }

    #[test]
    fn quad_form_and_frob_inner() {
        let l = DenseMatrix::from_rows(&[&[1.0, -1.0], &[-1.0, 1.0]]);
        // Path-graph Laplacian: x = [1, -1] gives xᵀLx = 4.
        assert_eq!(l.quad_form(&[1.0, -1.0]), 4.0);
        assert_eq!(l.quad_form(&[1.0, 1.0]), 0.0);

        let x = DenseMatrix::identity(2);
        assert_eq!(l.frob_inner(&x).unwrap(), l.trace());
    }

    #[test]
    fn shift_and_axpy() {
        let mut m = DenseMatrix::zeros(2, 2);
        m.shift_diag(3.0);
        assert_eq!(m, DenseMatrix::from_diag(&[3.0, 3.0]));
        let other = DenseMatrix::identity(2);
        m.axpy(-1.0, &other).unwrap();
        assert_eq!(m, DenseMatrix::from_diag(&[2.0, 2.0]));
        let bad = DenseMatrix::zeros(3, 3);
        assert!(m.axpy(1.0, &bad).is_err());
    }

    #[test]
    fn norms() {
        let m = DenseMatrix::from_rows(&[&[3.0, 0.0], &[0.0, -4.0]]);
        assert_eq!(m.fro_norm(), 5.0);
        assert_eq!(m.max_abs(), 4.0);
    }

    proptest! {
        #[test]
        fn prop_matmul_transpose_rule(
            a in proptest::collection::vec(-5.0..5.0f64, 6),
            b in proptest::collection::vec(-5.0..5.0f64, 6),
        ) {
            // (AB)ᵀ = BᵀAᵀ for 2x3 · 3x2.
            let a = DenseMatrix::from_vec(2, 3, a);
            let b = DenseMatrix::from_vec(3, 2, b);
            let lhs = a.matmul(&b).unwrap().transpose();
            let rhs = b.transpose().matmul(&a.transpose()).unwrap();
            let mut diff = lhs.clone();
            diff.axpy(-1.0, &rhs).unwrap();
            prop_assert!(diff.max_abs() < 1e-9);
        }

        #[test]
        fn prop_quad_form_of_psd_gram_nonneg(
            a in proptest::collection::vec(-5.0..5.0f64, 9),
            x in proptest::collection::vec(-5.0..5.0f64, 3),
        ) {
            // AᵀA is PSD, so xᵀ(AᵀA)x ≥ 0.
            let a = DenseMatrix::from_vec(3, 3, a);
            let g = a.transpose().matmul(&a).unwrap();
            prop_assert!(g.quad_form(&x) >= -1e-9);
        }
    }
}
