//! Direct and iterative linear solvers.
//!
//! * Dense Cholesky and LU with partial pivoting for the small reference
//!   systems (exact PageRank resolvents, MOV reference solutions).
//! * Conjugate gradient for large sparse SPD systems — the workhorse
//!   behind the MOV locally-biased spectral method (§3.3) and exact
//!   PageRank on big graphs. CG's iteration budget is, once again, an
//!   early-stopping regularization knob, so it is exposed.
//! * Weighted Jacobi iteration, the simplest "diffusion-like" solver,
//!   used in tests and as a pedagogical baseline.

use crate::dense::DenseMatrix;
use crate::vector;
use crate::{LinOp, LinalgError, Result};
use acir_runtime::{
    Budget, Certificate, DivergenceCause, Exhaustion, GuardConfig, GuardVerdict, KernelCtx,
    RetryPolicy, SolverOutcome, Workspace,
};

/// Cholesky factorization `A = G Gᵀ` (lower triangular `G`) of an SPD
/// matrix. Errors with [`LinalgError::NotPositiveDefinite`] if a pivot is
/// non-positive.
#[derive(Debug, Clone)]
pub struct Cholesky {
    g: DenseMatrix,
}

impl Cholesky {
    /// Factor a symmetric positive-definite matrix.
    pub fn new(a: &DenseMatrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::InvalidArgument("matrix must be square"));
        }
        let n = a.nrows();
        let mut g = DenseMatrix::zeros(n, n);
        for j in 0..n {
            let mut d = a[(j, j)];
            for k in 0..j {
                d -= g[(j, k)] * g[(j, k)];
            }
            if d <= 0.0 {
                return Err(LinalgError::NotPositiveDefinite);
            }
            let dj = d.sqrt();
            g[(j, j)] = dj;
            for i in (j + 1)..n {
                let mut s = a[(i, j)];
                for k in 0..j {
                    s -= g[(i, k)] * g[(j, k)];
                }
                g[(i, j)] = s / dj;
            }
        }
        Ok(Self { g })
    }

    /// Solve `A x = b`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.g.nrows();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                expected: n,
                found: b.len(),
            });
        }
        // Forward: G y = b.
        let mut y = b.to_vec();
        for i in 0..n {
            for k in 0..i {
                y[i] -= self.g[(i, k)] * y[k];
            }
            y[i] /= self.g[(i, i)];
        }
        // Backward: Gᵀ x = y.
        for i in (0..n).rev() {
            for k in (i + 1)..n {
                y[i] -= self.g[(k, i)] * y[k];
            }
            y[i] /= self.g[(i, i)];
        }
        Ok(y)
    }

    /// `log det A = 2 Σ log Gᵢᵢ` — needed by the log-det regularizer of
    /// the paper's Problem (5).
    pub fn log_det(&self) -> f64 {
        (0..self.g.nrows())
            .map(|i| self.g[(i, i)].ln())
            .sum::<f64>()
            * 2.0
    }
}

/// LU factorization with partial pivoting; solves general square systems.
#[derive(Debug, Clone)]
pub struct Lu {
    lu: DenseMatrix,
    perm: Vec<usize>,
    sign: f64,
}

impl Lu {
    /// Factor a general square matrix. Errors if singular to working
    /// precision.
    pub fn new(a: &DenseMatrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::InvalidArgument("matrix must be square"));
        }
        let n = a.nrows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;
        for k in 0..n {
            // Partial pivot.
            let (mut p, mut maxv) = (k, lu[(k, k)].abs());
            for i in (k + 1)..n {
                if lu[(i, k)].abs() > maxv {
                    p = i;
                    maxv = lu[(i, k)].abs();
                }
            }
            if maxv < 1e-300 {
                return Err(LinalgError::Singular);
            }
            if p != k {
                for j in 0..n {
                    let t = lu[(k, j)];
                    lu[(k, j)] = lu[(p, j)];
                    lu[(p, j)] = t;
                }
                perm.swap(k, p);
                sign = -sign;
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let m = lu[(i, k)] / pivot;
                lu[(i, k)] = m;
                for j in (k + 1)..n {
                    let adj = m * lu[(k, j)];
                    lu[(i, j)] -= adj;
                }
            }
        }
        Ok(Self { lu, perm, sign })
    }

    /// Solve `A x = b`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.lu.nrows();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                expected: n,
                found: b.len(),
            });
        }
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        // Forward substitute through L (unit diagonal).
        for i in 0..n {
            for k in 0..i {
                x[i] -= self.lu[(i, k)] * x[k];
            }
        }
        // Back substitute through U.
        for i in (0..n).rev() {
            for k in (i + 1)..n {
                x[i] -= self.lu[(i, k)] * x[k];
            }
            x[i] /= self.lu[(i, i)];
        }
        Ok(x)
    }

    /// Determinant (product of pivots times permutation sign).
    pub fn det(&self) -> f64 {
        self.sign
            * (0..self.lu.nrows())
                .map(|i| self.lu[(i, i)])
                .product::<f64>()
    }

    /// Dense inverse (solves against the identity columns).
    pub fn inverse(&self) -> Result<DenseMatrix> {
        let n = self.lu.nrows();
        let mut inv = DenseMatrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for j in 0..n {
            e[j] = 1.0;
            let col = self.solve(&e)?;
            for i in 0..n {
                inv[(i, j)] = col[i];
            }
            e[j] = 0.0;
        }
        Ok(inv)
    }
}

/// Options for [`cg`].
#[derive(Debug, Clone)]
pub struct CgOptions {
    /// Iteration budget (also an early-stopping regularization knob).
    pub max_iters: usize,
    /// Relative residual tolerance `‖r‖/‖b‖`.
    pub tol: f64,
}

impl Default for CgOptions {
    fn default() -> Self {
        Self {
            max_iters: 1000,
            tol: 1e-10,
        }
    }
}

/// Outcome of a CG solve.
#[derive(Debug, Clone)]
pub struct CgResult {
    /// Approximate solution.
    pub x: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
    /// Final relative residual.
    pub relative_residual: f64,
    /// Whether the tolerance was reached.
    pub converged: bool,
}

/// Conjugate gradient for `A x = b` with symmetric positive
/// (semi-)definite `A`.
///
/// `x0` seeds the iteration (pass zeros if unknown). Like
/// [`crate::power_method`], this never errors on hitting the budget —
/// truncated CG is a regularized solve and is reported as such.
///
/// Scratch buffers come from the crate's shared pool, so steady-state
/// calls allocate only the returned solution; see [`cg_ws`] to supply a
/// caller-owned workspace instead.
pub fn cg(op: &dyn LinOp, b: &[f64], x0: &[f64], opts: &CgOptions) -> Result<CgResult> {
    crate::SCRATCH.with(|ws| cg_ws(op, b, x0, opts, ws))
}

/// [`cg`] with caller-owned scratch: the three `O(n)` recurrence buffers
/// (residual, search direction, `A p`) are checked out of `ws` and
/// returned to it, so a caller looping over many right-hand sides
/// allocates nothing after the first call. Bit-identical to [`cg`].
pub fn cg_ws(
    op: &dyn LinOp,
    b: &[f64],
    x0: &[f64],
    opts: &CgOptions,
    ws: &mut Workspace,
) -> Result<CgResult> {
    let mut ctx = KernelCtx::new();
    match cg_core(op, b, x0, opts, ws, &mut ctx)? {
        SolverOutcome::Converged { value, .. } => Ok(value),
        _ => unreachable!("an inert context can neither exhaust nor diverge"),
    }
}

/// Conjugate gradient against an explicit [`KernelCtx`]: the unified
/// entry point that every legacy variant wraps. Scratch comes from the
/// context's pool override or the crate pool.
///
/// A metered context drives termination entirely through its budget —
/// clamp the meter to `opts.max_iters` (as [`cg_budgeted`] does) if the
/// options ceiling should still bind.
pub fn cg_ctx(
    op: &dyn LinOp,
    b: &[f64],
    x0: &[f64],
    opts: &CgOptions,
    ctx: &mut KernelCtx,
) -> Result<SolverOutcome<CgResult>> {
    let _spmv = ctx.spmv_scope();
    ctx.scratch_pool_or(&crate::SCRATCH)
        .with(|ws| cg_core(op, b, x0, opts, ws, ctx))
}

/// The single CG recurrence loop. Every public entry point funnels
/// here; the context decides which concerns are live.
fn cg_core(
    op: &dyn LinOp,
    b: &[f64],
    x0: &[f64],
    opts: &CgOptions,
    ws: &mut Workspace,
    ctx: &mut KernelCtx,
) -> Result<SolverOutcome<CgResult>> {
    let n = op.dim();
    if b.len() != n || x0.len() != n {
        return Err(LinalgError::DimensionMismatch {
            expected: n,
            found: if b.len() != n { b.len() } else { x0.len() },
        });
    }
    let bnorm = vector::norm2(b).max(f64::MIN_POSITIVE);
    let mut x = x0.to_vec();
    let mut r = ws.take_f64(n);
    let mut p = ws.take_f64(n);
    let mut ap = ws.take_f64(n);
    r.copy_from_slice(b);
    op.apply(&x, &mut ap);
    vector::axpy(-1.0, &ap, &mut r);
    p.copy_from_slice(&r);
    let mut rs = vector::dot(&r, &r);
    // Initial matvec for the starting residual.
    ctx.add_work(1);

    enum Exit {
        // Loop left normally: converged iff the final relative residual
        // meets the tolerance.
        Finished,
        // The search direction died while numerically converged — a
        // success even though the residual may sit just above `tol`.
        ForcedConverged,
        Diverged(DivergenceCause),
        Exhausted(Exhaustion),
    }

    // Best iterate seen (smallest relative residual), kept only under a
    // budget: it is what an exhausted outcome returns, and the upfront
    // clone would break the plain path's allocation contract.
    let mut best: Option<(Vec<f64>, f64)> = if ctx.is_metered() {
        Some((x.clone(), rs.sqrt() / bnorm))
    } else {
        None
    };
    let mut iterations = 0;
    let mut exit = Exit::Finished;
    // CORE LOOP
    loop {
        let rel = rs.sqrt() / bnorm;
        ctx.push_residual(rel);
        if let GuardVerdict::Halt(cause) = ctx.observe(rel) {
            exit = Exit::Diverged(cause);
            break;
        }
        if let Some((best_x, best_rel)) = best.as_mut() {
            if rel < *best_rel {
                *best_rel = rel;
                best_x.copy_from_slice(&x);
            }
        }
        if rel <= opts.tol {
            break;
        }
        if ctx.is_metered() {
            ctx.tick_iter();
            if let Some(exhausted) = ctx.add_work(1) {
                exit = Exit::Exhausted(exhausted);
                break;
            }
        } else if iterations >= opts.max_iters {
            break;
        }

        op.apply(&p, &mut ap);
        let pap = vector::dot(&p, &ap);
        if ctx.is_guarded() {
            if !pap.is_finite() || pap <= 0.0 {
                if pap.abs() < 1e-300 && rel <= opts.tol.max(1e-12) {
                    // Numerically converged; the direction just died first.
                    exit = Exit::ForcedConverged;
                } else {
                    exit = Exit::Diverged(DivergenceCause::Breakdown {
                        at_iter: iterations,
                        what: "nonpositive-curvature direction (CG stall)",
                    });
                }
                break;
            }
        } else if pap.abs() < 1e-300 {
            break; // Direction in (numerical) null space; cannot proceed.
        }
        let alpha = rs / pap;
        vector::axpy(alpha, &p, &mut x);
        vector::axpy(-alpha, &ap, &mut r);
        let rs_new = vector::dot(&r, &r);
        let beta = rs_new / rs;
        vector::axpby(1.0, &r, beta, &mut p);
        rs = rs_new;
        iterations += 1;
    }
    ws.put_f64(r);
    ws.put_f64(p);
    ws.put_f64(ap);

    let mut diags = ctx.finish();
    match exit {
        Exit::Diverged(cause) => Ok(SolverOutcome::diverged(cause, diags)),
        Exit::Exhausted(exhausted) => {
            let (best_x, best_rel) = best.unwrap_or_else(|| (x, rs.sqrt() / bnorm));
            Ok(SolverOutcome::exhausted(
                CgResult {
                    x: best_x,
                    iterations,
                    relative_residual: best_rel,
                    converged: false,
                },
                exhausted,
                Certificate::ResidualNorm { value: best_rel },
                diags,
            ))
        }
        Exit::Finished | Exit::ForcedConverged => {
            diags.iterations = iterations;
            let relative_residual = rs.sqrt() / bnorm;
            let converged = matches!(exit, Exit::ForcedConverged) || relative_residual <= opts.tol;
            Ok(SolverOutcome::converged(
                CgResult {
                    x,
                    iterations,
                    relative_residual,
                    converged,
                },
                diags,
            ))
        }
    }
}

/// Conjugate gradient under an explicit resource [`Budget`], with
/// divergence guards and a structured [`SolverOutcome`].
///
/// The effective iteration ceiling is the smaller of `opts.max_iters`
/// and `budget.max_iters`; each matvec costs one work unit. On budget
/// exhaustion the *best* iterate seen (smallest relative residual) is
/// returned with a [`Certificate::ResidualNorm`] quality bound — per
/// the paper, the truncated CG solve is the regularized answer, not a
/// failure. NaN/Inf contamination or a nonpositive-curvature direction
/// (a CG stall, e.g. from an indefinite or corrupted operator) yields
/// [`SolverOutcome::Diverged`]; see [`cg_resilient`] for the
/// jittered-restart escalation policy.
pub fn cg_budgeted(
    op: &dyn LinOp,
    b: &[f64],
    x0: &[f64],
    opts: &CgOptions,
    budget: &Budget,
) -> Result<SolverOutcome<CgResult>> {
    let mut ctx = KernelCtx::budgeted(
        "linalg.cg",
        &budget.with_max_iters(budget.max_iters.min(opts.max_iters)),
    )
    .with_guard(GuardConfig::default());
    cg_ctx(op, b, x0, opts, &mut ctx)
}

/// CG with the stall-recovery escalation ladder: on divergence
/// (contamination, blow-up, or a nonpositive-curvature stall), restart
/// from the best-known iterate perturbed by a deterministic jitter that
/// grows with the attempt index, knocking the search out of the
/// degenerate Krylov subspace.
///
/// Budget exhaustion is *not* retried — a certified partial solve is a
/// legitimate outcome. The budget applies per attempt.
pub fn cg_resilient(
    op: &dyn LinOp,
    b: &[f64],
    x0: &[f64],
    opts: &CgOptions,
    budget: &Budget,
    policy: &RetryPolicy,
) -> Result<SolverOutcome<CgResult>> {
    let bnorm = vector::norm2(b).max(f64::MIN_POSITIVE);
    policy.run(|attempt| {
        if attempt == 0 {
            cg_budgeted(op, b, x0, opts, budget)
        } else {
            // Deterministic jitter, scaled up 10× per escalation.
            let scale = bnorm * 1e-8 * 10f64.powi(attempt as i32 - 1);
            let mut state = 0x9e3779b97f4a7c15u64 ^ (attempt as u64);
            let seeded: Vec<f64> = x0
                .iter()
                .map(|&xi| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let u = ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
                    if xi.is_finite() {
                        xi + scale * u
                    } else {
                        scale * u
                    }
                })
                .collect();
            cg_budgeted(op, b, &seeded, opts, budget)
        }
    })
}

/// Weighted Jacobi iteration `x ← x + ω D⁻¹ (b − A x)` for
/// diagonally-dominant systems; returns `(x, iterations, converged)`.
///
/// Needs the matrix (not just an operator) to extract the diagonal.
pub fn jacobi_iteration(
    a: &crate::sparse::CsrMatrix,
    b: &[f64],
    omega: f64,
    max_iters: usize,
    tol: f64,
) -> Result<(Vec<f64>, usize, bool)> {
    let n = a.nrows();
    if a.ncols() != n {
        return Err(LinalgError::InvalidArgument("matrix must be square"));
    }
    if b.len() != n {
        return Err(LinalgError::DimensionMismatch {
            expected: n,
            found: b.len(),
        });
    }
    let d = a.diag();
    if d.iter().any(|&v| v.abs() < 1e-300) {
        return Err(LinalgError::Singular);
    }
    let bnorm = vector::norm2(b).max(f64::MIN_POSITIVE);
    let mut x = vec![0.0; n];
    let mut ax = vec![0.0; n];
    for it in 0..max_iters {
        a.matvec(&x, &mut ax);
        let mut rnorm2 = 0.0;
        for i in 0..n {
            let r = b[i] - ax[i];
            rnorm2 += r * r;
            x[i] += omega * r / d[i];
        }
        if rnorm2.sqrt() / bnorm <= tol {
            return Ok((x, it + 1, true));
        }
    }
    Ok((x, max_iters, false))
}

/// Jacobi(diagonal)-preconditioned conjugate gradient for SPD systems.
///
/// Identical contract to [`cg`], but iterates on the preconditioned
/// residual `z = D⁻¹r`. On degree-heterogeneous graph Laplacian systems
/// (the MOV solves of §3.3) this cuts the iteration count roughly by
/// the square root of the degree spread.
pub fn pcg_jacobi(
    op: &dyn LinOp,
    diag: &[f64],
    b: &[f64],
    x0: &[f64],
    opts: &CgOptions,
) -> Result<CgResult> {
    let n = op.dim();
    if b.len() != n || x0.len() != n || diag.len() != n {
        return Err(LinalgError::DimensionMismatch {
            expected: n,
            found: b.len().min(x0.len()).min(diag.len()),
        });
    }
    if diag.iter().any(|&d| d <= 0.0 || !d.is_finite()) {
        return Err(LinalgError::NotPositiveDefinite);
    }
    let bnorm = vector::norm2(b).max(f64::MIN_POSITIVE);
    let mut x = x0.to_vec();
    let mut r = b.to_vec();
    let ax = op.apply_vec(&x);
    vector::axpy(-1.0, &ax, &mut r);
    let mut z: Vec<f64> = r.iter().zip(diag).map(|(ri, di)| ri / di).collect();
    let mut p = z.clone();
    let mut rz = vector::dot(&r, &z);
    let mut iterations = 0;
    let mut ap = vec![0.0; n];
    while iterations < opts.max_iters && vector::norm2(&r) / bnorm > opts.tol {
        op.apply(&p, &mut ap);
        let pap = vector::dot(&p, &ap);
        if pap.abs() < 1e-300 {
            break;
        }
        let alpha = rz / pap;
        vector::axpy(alpha, &p, &mut x);
        vector::axpy(-alpha, &ap, &mut r);
        for (zi, (ri, di)) in z.iter_mut().zip(r.iter().zip(diag)) {
            *zi = ri / di;
        }
        let rz_new = vector::dot(&r, &z);
        let beta = rz_new / rz;
        vector::axpby(1.0, &z, beta, &mut p);
        rz = rz_new;
        iterations += 1;
    }
    let relative_residual = vector::norm2(&r) / bnorm;
    Ok(CgResult {
        x,
        iterations,
        relative_residual,
        converged: relative_residual <= opts.tol,
    })
}

/// Gauss–Seidel iteration for diagonally-dominant systems: in-place
/// forward sweeps `x_i ← (b_i − Σ_{j≠i} a_ij x_j) / a_ii`; returns
/// `(x, iterations, converged)`. Converges roughly twice as fast as
/// [`jacobi_iteration`] on the same systems (each update sees the
/// current values of earlier coordinates).
pub fn gauss_seidel(
    a: &crate::sparse::CsrMatrix,
    b: &[f64],
    max_iters: usize,
    tol: f64,
) -> Result<(Vec<f64>, usize, bool)> {
    let n = a.nrows();
    if a.ncols() != n {
        return Err(LinalgError::InvalidArgument("matrix must be square"));
    }
    if b.len() != n {
        return Err(LinalgError::DimensionMismatch {
            expected: n,
            found: b.len(),
        });
    }
    let d = a.diag();
    if d.iter().any(|&v| v.abs() < 1e-300) {
        return Err(LinalgError::Singular);
    }
    let bnorm = vector::norm2(b).max(f64::MIN_POSITIVE);
    let mut x = vec![0.0; n];
    let mut ax = vec![0.0; n];
    for it in 0..max_iters {
        for i in 0..n {
            let mut s = 0.0;
            for (j, v) in a.row(i) {
                if j as usize != i {
                    s += v * x[j as usize];
                }
            }
            x[i] = (b[i] - s) / d[i];
        }
        a.matvec(&x, &mut ax);
        let rnorm: f64 = b
            .iter()
            .zip(&ax)
            .map(|(bi, ai)| (bi - ai) * (bi - ai))
            .sum::<f64>()
            .sqrt();
        if rnorm / bnorm <= tol {
            return Ok((x, it + 1, true));
        }
    }
    Ok((x, max_iters, false))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::CsrMatrix;
    use proptest::prelude::*;

    fn spd3() -> DenseMatrix {
        DenseMatrix::from_rows(&[&[4.0, 1.0, 0.0], &[1.0, 3.0, 1.0], &[0.0, 1.0, 2.0]])
    }

    #[test]
    fn cholesky_solves() {
        let a = spd3();
        let ch = Cholesky::new(&a).unwrap();
        let b = [1.0, 2.0, 3.0];
        let x = ch.solve(&b).unwrap();
        let mut ax = vec![0.0; 3];
        a.gemv(1.0, &x, 0.0, &mut ax);
        assert!(vector::dist2(&ax, &b) < 1e-10);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = DenseMatrix::from_diag(&[1.0, -1.0]);
        assert!(matches!(
            Cholesky::new(&a),
            Err(LinalgError::NotPositiveDefinite)
        ));
    }

    #[test]
    fn cholesky_log_det() {
        let a = DenseMatrix::from_diag(&[2.0, 3.0]);
        let ch = Cholesky::new(&a).unwrap();
        assert!((ch.log_det() - 6.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn lu_solves_and_det() {
        let a = DenseMatrix::from_rows(&[&[0.0, 2.0], &[1.0, 1.0]]); // needs pivoting
        let lu = Lu::new(&a).unwrap();
        assert!((lu.det() - (-2.0)).abs() < 1e-12);
        let x = lu.solve(&[2.0, 2.0]).unwrap();
        // x solves [0 2; 1 1] x = [2, 2] → x = [1, 1].
        assert!(vector::dist2(&x, &[1.0, 1.0]) < 1e-12);
    }

    #[test]
    fn lu_inverse() {
        let a = spd3();
        let inv = Lu::new(&a).unwrap().inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        let mut defect = prod;
        defect.axpy(-1.0, &DenseMatrix::identity(3)).unwrap();
        assert!(defect.max_abs() < 1e-10);
    }

    #[test]
    fn lu_detects_singular() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(Lu::new(&a), Err(LinalgError::Singular)));
    }

    #[test]
    fn cg_solves_spd_sparse() {
        // 1D Poisson with Dirichlet boundary (SPD tridiagonal).
        let n = 50;
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 2.0));
            if i + 1 < n {
                t.push((i, i + 1, -1.0));
                t.push((i + 1, i, -1.0));
            }
        }
        let a = CsrMatrix::from_triplets(n, n, t);
        let b = vec![1.0; n];
        let r = cg(&a, &b, &vec![0.0; n], &CgOptions::default()).unwrap();
        assert!(r.converged);
        let mut ax = vec![0.0; n];
        a.matvec(&r.x, &mut ax);
        assert!(vector::dist2(&ax, &b) < 1e-6);
    }

    #[test]
    fn cg_early_stopping_is_reported() {
        let n = 50;
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 2.0));
            if i + 1 < n {
                t.push((i, i + 1, -1.0));
                t.push((i + 1, i, -1.0));
            }
        }
        let a = CsrMatrix::from_triplets(n, n, t);
        let opts = CgOptions {
            max_iters: 3,
            tol: 1e-14,
        };
        let r = cg(&a, &vec![1.0; n], &vec![0.0; n], &opts).unwrap();
        assert_eq!(r.iterations, 3);
        assert!(!r.converged);
    }

    #[test]
    fn cg_exact_in_n_iterations() {
        // CG converges in at most n steps in exact arithmetic.
        let a = spd3();
        let opts = CgOptions {
            max_iters: 3,
            tol: 1e-12,
        };
        let r = cg(&a, &[1.0, 0.0, 0.0], &[0.0; 3], &opts).unwrap();
        let mut ax = vec![0.0; 3];
        a.gemv(1.0, &r.x, 0.0, &mut ax);
        assert!(vector::dist2(&ax, &[1.0, 0.0, 0.0]) < 1e-8);
    }

    #[test]
    fn cg_pooled_scratch_reuse_is_bit_identical() {
        let a = spd3();
        let b = [1.0, 2.0, 3.0];
        let opts = CgOptions::default();
        let first = cg(&a, &b, &[0.0; 3], &opts).unwrap();
        let mut ws = Workspace::new();
        for _ in 0..3 {
            let again = cg_ws(&a, &b, &[0.0; 3], &opts, &mut ws).unwrap();
            assert_eq!(again.x, first.x);
            assert_eq!(
                again.relative_residual.to_bits(),
                first.relative_residual.to_bits()
            );
            assert_eq!(again.iterations, first.iterations);
        }
        assert_eq!(ws.parked_f64(), 3, "all scratch buffers returned");
    }

    #[test]
    fn cg_validates_dimensions() {
        let a = DenseMatrix::identity(3);
        assert!(cg(&a, &[1.0], &[0.0; 3], &CgOptions::default()).is_err());
        assert!(cg(&a, &[1.0; 3], &[0.0], &CgOptions::default()).is_err());
    }

    #[test]
    fn jacobi_iteration_converges_on_dominant() {
        let a =
            CsrMatrix::from_triplets(2, 2, [(0, 0, 4.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 4.0)]);
        let (x, _, conv) = jacobi_iteration(&a, &[5.0, 5.0], 1.0, 200, 1e-12).unwrap();
        assert!(conv);
        assert!(vector::dist2(&x, &[1.0, 1.0]) < 1e-8);
    }

    #[test]
    fn pcg_matches_cg_and_converges_faster_on_skewed_diagonal() {
        // Badly scaled SPD diagonal + coupling.
        let n = 40;
        let mut t = Vec::new();
        for i in 0..n {
            let d = if i % 5 == 0 { 100.0 } else { 2.0 };
            t.push((i, i, d));
            if i + 1 < n {
                t.push((i, i + 1, -0.5));
                t.push((i + 1, i, -0.5));
            }
        }
        let a = CsrMatrix::from_triplets(n, n, t);
        let b = vec![1.0; n];
        let opts = CgOptions {
            max_iters: 500,
            tol: 1e-10,
        };
        let plain = cg(&a, &b, &vec![0.0; n], &opts).unwrap();
        let pre = pcg_jacobi(&a, &a.diag(), &b, &vec![0.0; n], &opts).unwrap();
        assert!(plain.converged && pre.converged);
        assert!(vector::dist2(&plain.x, &pre.x) < 1e-7);
        assert!(
            pre.iterations <= plain.iterations,
            "pcg {} vs cg {}",
            pre.iterations,
            plain.iterations
        );
    }

    #[test]
    fn pcg_validates() {
        let a = DenseMatrix::identity(3);
        let opts = CgOptions::default();
        assert!(pcg_jacobi(&a, &[1.0; 3], &[1.0; 2], &[0.0; 3], &opts).is_err());
        assert!(pcg_jacobi(&a, &[0.0, 1.0, 1.0], &[1.0; 3], &[0.0; 3], &opts).is_err());
        assert!(pcg_jacobi(&a, &[-1.0, 1.0, 1.0], &[1.0; 3], &[0.0; 3], &opts).is_err());
    }

    #[test]
    fn gauss_seidel_converges_faster_than_jacobi() {
        let n = 30;
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 4.0));
            if i + 1 < n {
                t.push((i, i + 1, -1.0));
                t.push((i + 1, i, -1.0));
            }
        }
        let a = CsrMatrix::from_triplets(n, n, t);
        let b = vec![1.0; n];
        let (xg, it_gs, conv_gs) = gauss_seidel(&a, &b, 500, 1e-10).unwrap();
        let (xj, it_j, conv_j) = jacobi_iteration(&a, &b, 1.0, 500, 1e-10).unwrap();
        assert!(conv_gs && conv_j);
        assert!(it_gs < it_j, "GS {it_gs} vs Jacobi {it_j}");
        assert!(vector::dist2(&xg, &xj) < 1e-8);
        let mut ax = vec![0.0; n];
        a.matvec(&xg, &mut ax);
        assert!(vector::dist2(&ax, &b) < 1e-8);
    }

    #[test]
    fn gauss_seidel_validates() {
        let a = CsrMatrix::from_triplets(2, 2, [(0, 1, 1.0), (1, 0, 1.0)]);
        assert!(gauss_seidel(&a, &[1.0, 1.0], 10, 1e-6).is_err()); // zero diag
        let ok = CsrMatrix::from_diag(&[2.0, 2.0]);
        assert!(gauss_seidel(&ok, &[1.0], 10, 1e-6).is_err()); // bad b
    }

    #[test]
    fn jacobi_iteration_rejects_zero_diagonal() {
        let a = CsrMatrix::from_triplets(2, 2, [(0, 1, 1.0), (1, 0, 1.0)]);
        assert!(jacobi_iteration(&a, &[1.0, 1.0], 1.0, 10, 1e-6).is_err());
    }

    #[test]
    fn cg_budgeted_converges_and_matches_plain() {
        let a = spd3();
        let b = [1.0, 2.0, 3.0];
        let opts = CgOptions::default();
        let out = cg_budgeted(&a, &b, &[0.0; 3], &opts, &Budget::unlimited()).unwrap();
        assert!(out.is_converged());
        let plain = cg(&a, &b, &[0.0; 3], &opts).unwrap();
        assert!(vector::dist2(&out.value().unwrap().x, &plain.x) < 1e-10);
    }

    #[test]
    fn cg_budgeted_exhaustion_certifies_best_iterate() {
        // 1D Poisson: needs ~n iterations; give it only 3.
        let n = 50;
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 2.0));
            if i + 1 < n {
                t.push((i, i + 1, -1.0));
                t.push((i + 1, i, -1.0));
            }
        }
        let a = CsrMatrix::from_triplets(n, n, t);
        let b = vec![1.0; n];
        let out = cg_budgeted(
            &a,
            &b,
            &vec![0.0; n],
            &CgOptions {
                tol: 1e-12,
                ..Default::default()
            },
            &Budget::iterations(3),
        )
        .unwrap();
        assert!(!out.is_converged() && out.is_usable());
        let cert = out.certificate().unwrap();
        // Verify the certificate against the actual residual of the
        // returned iterate.
        let x = &out.value().unwrap().x;
        let mut ax = vec![0.0; n];
        a.matvec(x, &mut ax);
        let mut r = b.clone();
        vector::axpy(-1.0, &ax, &mut r);
        let actual = vector::norm2(&r) / vector::norm2(&b);
        assert!(
            actual <= cert.slack() * (1.0 + 1e-9),
            "certificate {} vs actual {}",
            cert.slack(),
            actual
        );
    }

    #[test]
    fn cg_budgeted_diverges_on_indefinite_stall() {
        // Indefinite matrix: CG hits a nonpositive-curvature direction.
        let a = DenseMatrix::from_diag(&[1.0, -1.0]);
        let out = cg_budgeted(
            &a,
            &[0.0, 1.0],
            &[0.0, 0.0],
            &CgOptions::default(),
            &Budget::unlimited(),
        )
        .unwrap();
        assert!(!out.is_usable());
    }

    #[test]
    fn cg_budgeted_diverges_on_nan_injection() {
        let a = spd3();
        let faulty = crate::fault::FaultyOp::new(
            &a,
            acir_runtime::FaultConfig::nans(1.0).after_clean_applies(2),
        );
        let out = cg_budgeted(
            &faulty,
            &[1.0, 2.0, 3.0],
            &[0.0; 3],
            &CgOptions::default(),
            &Budget::unlimited(),
        )
        .unwrap();
        assert!(
            !out.is_usable(),
            "NaN-poisoned CG must diverge, not converge"
        );
    }

    #[test]
    fn cg_resilient_restarts_after_transient_stall() {
        // Operator that stalls on the very first attempt only: the
        // retry's jittered restart must recover.
        use std::cell::Cell;
        struct FlakyOnce<'a> {
            inner: &'a DenseMatrix,
            calls: Cell<u32>,
        }
        impl LinOp for FlakyOnce<'_> {
            fn dim(&self) -> usize {
                self.inner.dim()
            }
            fn apply(&self, x: &[f64], y: &mut [f64]) {
                let c = self.calls.get();
                self.calls.set(c + 1);
                self.inner.apply(x, y);
                if c == 1 {
                    // Corrupt the second matvec of attempt 0.
                    y.fill(f64::NAN);
                }
            }
        }
        let a = spd3();
        let flaky = FlakyOnce {
            inner: &a,
            calls: Cell::new(0),
        };
        let out = cg_resilient(
            &flaky,
            &[1.0, 2.0, 3.0],
            &[0.0; 3],
            &CgOptions::default(),
            &Budget::unlimited(),
            &RetryPolicy::default(),
        )
        .unwrap();
        assert!(out.is_converged(), "retry should recover: {out:?}");
        assert!(out.diagnostics().restarts >= 1);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_cholesky_lu_cg_agree(
            data in proptest::collection::vec(-2.0..2.0f64, 16),
            b in proptest::collection::vec(-5.0..5.0f64, 4),
        ) {
            // Build SPD A = BᵀB + I.
            let bmat = DenseMatrix::from_vec(4, 4, data);
            let mut a = bmat.transpose().matmul(&bmat).unwrap();
            a.shift_diag(1.0);

            let x_ch = Cholesky::new(&a).unwrap().solve(&b).unwrap();
            let x_lu = Lu::new(&a).unwrap().solve(&b).unwrap();
            let x_cg = cg(&a, &b, &[0.0; 4], &CgOptions { max_iters: 200, tol: 1e-12 }).unwrap().x;
            prop_assert!(vector::dist2(&x_ch, &x_lu) < 1e-7);
            prop_assert!(vector::dist2(&x_ch, &x_cg) < 1e-6);
        }
    }
}
