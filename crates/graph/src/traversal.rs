//! Traversal primitives: BFS, connected components, shortest paths.
//!
//! These are the "natural operations" of the geodesic view of a graph
//! (paper §2.1). They also power the Figure 1(b) niceness measure —
//! average shortest-path length inside a cluster — and the largest-
//! connected-component preprocessing every experiment applies.

use crate::csr::{Graph, NodeId};
use std::collections::VecDeque;

/// Breadth-first search from `source`; returns hop distances with
/// `u32::MAX` for unreachable nodes.
pub fn bfs_distances(g: &Graph, source: NodeId) -> Vec<u32> {
    let mut dist = vec![u32::MAX; g.n()];
    let mut q = VecDeque::new();
    dist[source as usize] = 0;
    q.push_back(source);
    while let Some(u) = q.pop_front() {
        let du = dist[u as usize];
        for (v, _) in g.neighbors(u) {
            if dist[v as usize] == u32::MAX {
                dist[v as usize] = du + 1;
                q.push_back(v);
            }
        }
    }
    dist
}

/// BFS restricted to a node subset (given as a membership mask).
/// Distances are within the induced subgraph; non-members get `u32::MAX`.
pub fn bfs_distances_within(g: &Graph, source: NodeId, member: &[bool]) -> Vec<u32> {
    debug_assert_eq!(member.len(), g.n());
    let mut dist = vec![u32::MAX; g.n()];
    if !member[source as usize] {
        return dist;
    }
    let mut q = VecDeque::new();
    dist[source as usize] = 0;
    q.push_back(source);
    while let Some(u) = q.pop_front() {
        let du = dist[u as usize];
        for (v, _) in g.neighbors(u) {
            if member[v as usize] && dist[v as usize] == u32::MAX {
                dist[v as usize] = du + 1;
                q.push_back(v);
            }
        }
    }
    dist
}

/// Multi-source BFS: hop distance to the nearest of `sources`
/// (`u32::MAX` if unreachable from all of them).
pub fn bfs_distances_multi(g: &Graph, sources: &[NodeId]) -> Vec<u32> {
    let mut dist = vec![u32::MAX; g.n()];
    let mut q = VecDeque::new();
    for &s in sources {
        if dist[s as usize] == u32::MAX {
            dist[s as usize] = 0;
            q.push_back(s);
        }
    }
    while let Some(u) = q.pop_front() {
        let du = dist[u as usize];
        for (v, _) in g.neighbors(u) {
            if dist[v as usize] == u32::MAX {
                dist[v as usize] = du + 1;
                q.push_back(v);
            }
        }
    }
    dist
}

/// Iterative depth-first search from `source`; returns nodes in
/// preorder (the "natural operation" counterpart of BFS in §2.1).
/// Neighbors are visited in ascending id order.
pub fn dfs_preorder(g: &Graph, source: NodeId) -> Vec<NodeId> {
    let mut visited = vec![false; g.n()];
    let mut order = Vec::new();
    let mut stack = vec![source];
    while let Some(u) = stack.pop() {
        if visited[u as usize] {
            continue;
        }
        visited[u as usize] = true;
        order.push(u);
        // Push in reverse so the smallest neighbor is popped first.
        let nbrs = g.neighbor_ids(u);
        for &v in nbrs.iter().rev() {
            if !visited[v as usize] {
                stack.push(v);
            }
        }
    }
    order
}

/// Connected components; returns `(component_id_per_node, component_count)`.
/// Component ids are assigned in order of discovery from node 0 upward.
pub fn connected_components(g: &Graph) -> (Vec<u32>, usize) {
    let n = g.n();
    let mut comp = vec![u32::MAX; n];
    let mut count = 0u32;
    let mut q = VecDeque::new();
    for s in 0..n as NodeId {
        if comp[s as usize] != u32::MAX {
            continue;
        }
        comp[s as usize] = count;
        q.push_back(s);
        while let Some(u) = q.pop_front() {
            for (v, _) in g.neighbors(u) {
                if comp[v as usize] == u32::MAX {
                    comp[v as usize] = count;
                    q.push_back(v);
                }
            }
        }
        count += 1;
    }
    (comp, count as usize)
}

/// Whether the graph is connected (the empty graph counts as connected).
pub fn is_connected(g: &Graph) -> bool {
    g.n() == 0 || connected_components(g).1 == 1
}

/// Extract the largest connected component.
///
/// Returns the component as a new graph plus the mapping `new id → old
/// id`. Ties broken toward the lowest component id.
pub fn largest_component(g: &Graph) -> (Graph, Vec<NodeId>) {
    if g.n() == 0 {
        return (Graph::from_pairs(0, []).unwrap(), vec![]);
    }
    let (comp, count) = connected_components(g);
    let mut sizes = vec![0usize; count];
    for &c in &comp {
        sizes[c as usize] += 1;
    }
    let best = sizes
        .iter()
        .enumerate()
        .max_by_key(|&(i, &s)| (s, std::cmp::Reverse(i)))
        .map(|(i, _)| i as u32)
        .unwrap_or(0);
    let nodes: Vec<NodeId> = (0..g.n() as NodeId)
        .filter(|&u| comp[u as usize] == best)
        .collect();
    let (sub, map) = g.induced_subgraph(&nodes).expect("nodes are valid");
    (sub, map)
}

/// Exact average shortest-path length within the subgraph induced by
/// `nodes`, over connected pairs only.
///
/// Returns `None` if fewer than 2 nodes or no connected pairs. This is
/// the Figure 1(b) "niceness" measure; `O(|S|·(|S| + E(S)))`.
pub fn average_shortest_path(g: &Graph, nodes: &[NodeId]) -> Option<f64> {
    if nodes.len() < 2 {
        return None;
    }
    let mut member = vec![false; g.n()];
    for &u in nodes {
        member[u as usize] = true;
    }
    let mut total = 0u64;
    let mut pairs = 0u64;
    for &s in nodes {
        let dist = bfs_distances_within(g, s, &member);
        for &t in nodes {
            if t != s && dist[t as usize] != u32::MAX {
                total += dist[t as usize] as u64;
                pairs += 1;
            }
        }
    }
    if pairs == 0 {
        None
    } else {
        Some(total as f64 / pairs as f64)
    }
}

/// Sampled average shortest-path length within a cluster: BFS from up to
/// `samples` member nodes (deterministically strided), averaging over
/// reached pairs. Cheap surrogate for [`average_shortest_path`] on large
/// clusters.
pub fn average_shortest_path_sampled(g: &Graph, nodes: &[NodeId], samples: usize) -> Option<f64> {
    if nodes.len() < 2 || samples == 0 {
        return None;
    }
    if nodes.len() <= samples {
        return average_shortest_path(g, nodes);
    }
    let mut member = vec![false; g.n()];
    for &u in nodes {
        member[u as usize] = true;
    }
    let stride = nodes.len() / samples;
    let mut total = 0u64;
    let mut pairs = 0u64;
    for k in 0..samples {
        let s = nodes[k * stride];
        let dist = bfs_distances_within(g, s, &member);
        for &t in nodes {
            if t != s && dist[t as usize] != u32::MAX {
                total += dist[t as usize] as u64;
                pairs += 1;
            }
        }
    }
    if pairs == 0 {
        None
    } else {
        Some(total as f64 / pairs as f64)
    }
}

/// Graph diameter (max eccentricity) of a connected graph by all-pairs
/// BFS; `None` if disconnected or empty. `O(n·(n+m))` — reference use.
pub fn diameter(g: &Graph) -> Option<u32> {
    if g.n() == 0 || !is_connected(g) {
        return None;
    }
    let mut best = 0;
    for s in 0..g.n() as NodeId {
        let d = bfs_distances(g, s);
        best = best.max(d.into_iter().max().unwrap_or(0));
    }
    Some(best)
}

/// Nodes within `radius` hops of `seed` (the "local neighborhood" used
/// to seed local clustering methods).
pub fn ball(g: &Graph, seed: NodeId, radius: u32) -> Vec<NodeId> {
    let dist = bfs_distances(g, seed);
    (0..g.n() as NodeId)
        .filter(|&u| dist[u as usize] <= radius)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Path 0-1-2-3 plus isolated node 4.
    fn path_plus_isolated() -> Graph {
        Graph::from_pairs(5, [(0, 1), (1, 2), (2, 3)]).unwrap()
    }

    #[test]
    fn bfs_on_path() {
        let g = path_plus_isolated();
        let d = bfs_distances(&g, 0);
        assert_eq!(d[..4], [0, 1, 2, 3]);
        assert_eq!(d[4], u32::MAX);
    }

    #[test]
    fn multi_source_bfs_takes_nearest() {
        let g = Graph::from_pairs(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]).unwrap();
        let d = bfs_distances_multi(&g, &[0, 5]);
        assert_eq!(d, vec![0, 1, 2, 2, 1, 0]);
        // Duplicate sources are harmless; empty sources reach nothing.
        assert_eq!(bfs_distances_multi(&g, &[0, 0])[5], 5);
        assert!(bfs_distances_multi(&g, &[]).iter().all(|&x| x == u32::MAX));
    }

    #[test]
    fn dfs_preorder_on_tree() {
        // Star: DFS from the hub visits leaves in ascending order;
        // DFS from a leaf goes leaf → hub → other leaves.
        let g = Graph::from_pairs(4, [(0, 1), (0, 2), (0, 3)]).unwrap();
        assert_eq!(dfs_preorder(&g, 0), vec![0, 1, 2, 3]);
        assert_eq!(dfs_preorder(&g, 2), vec![2, 0, 1, 3]);
        // Disconnected part is not reached.
        let g2 = Graph::from_pairs(4, [(0, 1), (2, 3)]).unwrap();
        assert_eq!(dfs_preorder(&g2, 0), vec![0, 1]);
    }

    #[test]
    fn dfs_goes_deep_on_path() {
        let g = Graph::from_pairs(5, [(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        assert_eq!(dfs_preorder(&g, 2), vec![2, 1, 0, 3, 4]);
    }

    #[test]
    fn bfs_within_mask() {
        let g = path_plus_isolated();
        // Exclude node 1: node 2 becomes unreachable from 0.
        let member = vec![true, false, true, true, true];
        let d = bfs_distances_within(&g, 0, &member);
        assert_eq!(d[0], 0);
        assert_eq!(d[2], u32::MAX);
        // Source outside mask: everything unreachable.
        let d2 = bfs_distances_within(&g, 1, &member);
        assert!(d2.iter().all(|&x| x == u32::MAX));
    }

    #[test]
    fn components_counts() {
        let g = path_plus_isolated();
        let (comp, count) = connected_components(&g);
        assert_eq!(count, 2);
        assert_eq!(comp[0], comp[3]);
        assert_ne!(comp[0], comp[4]);
        assert!(!is_connected(&g));
        let g2 = Graph::from_pairs(2, [(0, 1)]).unwrap();
        assert!(is_connected(&g2));
        assert!(is_connected(&Graph::from_pairs(0, []).unwrap()));
    }

    #[test]
    fn largest_component_extracts_path() {
        let g = path_plus_isolated();
        let (lcc, map) = largest_component(&g);
        assert_eq!(lcc.n(), 4);
        assert_eq!(lcc.m(), 3);
        assert_eq!(map, vec![0, 1, 2, 3]);
        let empty = Graph::from_pairs(0, []).unwrap();
        let (e, m) = largest_component(&empty);
        assert_eq!(e.n(), 0);
        assert!(m.is_empty());
    }

    #[test]
    fn average_shortest_path_of_path_graph() {
        let g = Graph::from_pairs(3, [(0, 1), (1, 2)]).unwrap();
        // Pairs: (0,1)=1 (0,2)=2 (1,2)=1, symmetric; mean = 4/3.
        let asp = average_shortest_path(&g, &[0, 1, 2]).unwrap();
        assert!((asp - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn average_shortest_path_within_subset_ignores_outside_shortcuts() {
        // Square 0-1-2-3-0: within {0,1,2} the 0→2 path must go through 1.
        let g = Graph::from_pairs(4, [(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let asp = average_shortest_path(&g, &[0, 1, 2]).unwrap();
        assert!((asp - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn average_shortest_path_degenerate() {
        let g = path_plus_isolated();
        assert_eq!(average_shortest_path(&g, &[0]), None);
        // Two disconnected members: no connected pairs.
        assert_eq!(average_shortest_path(&g, &[0, 4]), None);
    }

    #[test]
    fn sampled_asp_matches_exact_when_small() {
        let g = Graph::from_pairs(3, [(0, 1), (1, 2)]).unwrap();
        let exact = average_shortest_path(&g, &[0, 1, 2]).unwrap();
        let sampled = average_shortest_path_sampled(&g, &[0, 1, 2], 10).unwrap();
        assert_eq!(exact, sampled);
        assert_eq!(average_shortest_path_sampled(&g, &[0, 1, 2], 0), None);
    }

    #[test]
    fn sampled_asp_close_on_cycle() {
        let n = 60u32;
        let g = Graph::from_pairs(n as usize, (0..n).map(|i| (i, (i + 1) % n))).unwrap();
        let nodes: Vec<NodeId> = (0..n).collect();
        let exact = average_shortest_path(&g, &nodes).unwrap();
        let sampled = average_shortest_path_sampled(&g, &nodes, 10).unwrap();
        // Cycle is vertex-transitive: sampling is exact up to rounding.
        assert!((exact - sampled).abs() < 1e-9);
    }

    #[test]
    fn diameter_of_path_and_disconnected() {
        let g = Graph::from_pairs(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        assert_eq!(diameter(&g), Some(3));
        assert_eq!(diameter(&path_plus_isolated()), None);
    }

    #[test]
    fn ball_radius() {
        let g = Graph::from_pairs(5, [(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        assert_eq!(ball(&g, 2, 1), vec![1, 2, 3]);
        assert_eq!(ball(&g, 0, 0), vec![0]);
        assert_eq!(ball(&g, 0, 10).len(), 5);
    }
}
