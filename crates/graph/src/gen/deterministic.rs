//! Deterministic graph constructions.
//!
//! Includes the paper's cited worst cases: the Guattery–Miller
//! "cockroach" graph (§3.2: spectral methods "confuse long paths with
//! deep cuts") and related stringy constructions, plus standard families
//! with analytically known spectra and cuts for testing.

use crate::builder::GraphBuilder;
use crate::csr::{Graph, NodeId};
use crate::{GraphError, Result};

/// Path graph `P_n`: 0 − 1 − ⋯ − (n−1).
pub fn path(n: usize) -> Result<Graph> {
    if n == 0 {
        return Err(GraphError::InvalidArgument("path needs n >= 1".into()));
    }
    Graph::from_pairs(
        n,
        (0..n.saturating_sub(1)).map(|i| (i as NodeId, i as NodeId + 1)),
    )
}

/// Cycle graph `C_n` (`n >= 3`).
pub fn cycle(n: usize) -> Result<Graph> {
    if n < 3 {
        return Err(GraphError::InvalidArgument("cycle needs n >= 3".into()));
    }
    Graph::from_pairs(n, (0..n).map(|i| (i as NodeId, ((i + 1) % n) as NodeId)))
}

/// Complete graph `K_n`.
pub fn complete(n: usize) -> Result<Graph> {
    if n == 0 {
        return Err(GraphError::InvalidArgument("complete needs n >= 1".into()));
    }
    let mut b = GraphBuilder::with_nodes(n);
    for u in 0..n {
        for v in (u + 1)..n {
            b.add_pair(u as NodeId, v as NodeId);
        }
    }
    b.build()
}

/// Star graph: node 0 joined to nodes `1..n`.
pub fn star(n: usize) -> Result<Graph> {
    if n < 2 {
        return Err(GraphError::InvalidArgument("star needs n >= 2".into()));
    }
    Graph::from_pairs(n, (1..n).map(|i| (0, i as NodeId)))
}

/// `rows × cols` 2-D grid (4-neighbor).
pub fn grid2d(rows: usize, cols: usize) -> Result<Graph> {
    if rows == 0 || cols == 0 {
        return Err(GraphError::InvalidArgument(
            "grid needs rows, cols >= 1".into(),
        ));
    }
    let id = |r: usize, c: usize| (r * cols + c) as NodeId;
    let mut b = GraphBuilder::with_nodes(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_pair(id(r, c), id(r, c + 1));
            }
            if r + 1 < rows {
                b.add_pair(id(r, c), id(r + 1, c));
            }
        }
    }
    b.build()
}

/// Complete binary tree with `levels` levels (`2^levels − 1` nodes).
pub fn binary_tree(levels: usize) -> Result<Graph> {
    if levels == 0 {
        return Err(GraphError::InvalidArgument("tree needs levels >= 1".into()));
    }
    let n = (1usize << levels) - 1;
    let mut b = GraphBuilder::with_nodes(n);
    for i in 1..n {
        b.add_pair(i as NodeId, ((i - 1) / 2) as NodeId);
    }
    b.build()
}

/// `d`-dimensional hypercube (`2^d` nodes) — a mild expander with known
/// spectrum (normalized Laplacian eigenvalues `2k/d`).
pub fn hypercube(d: usize) -> Result<Graph> {
    if d == 0 || d > 24 {
        return Err(GraphError::InvalidArgument(
            "hypercube needs 1 <= d <= 24".into(),
        ));
    }
    let n = 1usize << d;
    let mut b = GraphBuilder::with_nodes(n);
    for u in 0..n {
        for bit in 0..d {
            let v = u ^ (1 << bit);
            if v > u {
                b.add_pair(u as NodeId, v as NodeId);
            }
        }
    }
    b.build()
}

/// Barbell: two `K_k` cliques joined by a path of `bridge` extra nodes
/// (`bridge = 0` joins the cliques by a single edge).
///
/// The canonical "two communities + bottleneck" graph: the optimal
/// conductance cut separates the cliques.
pub fn barbell(k: usize, bridge: usize) -> Result<Graph> {
    if k < 2 {
        return Err(GraphError::InvalidArgument("barbell needs k >= 2".into()));
    }
    let n = 2 * k + bridge;
    let mut b = GraphBuilder::with_nodes(n);
    let clique = |b: &mut GraphBuilder, base: usize| {
        for u in 0..k {
            for v in (u + 1)..k {
                b.add_pair((base + u) as NodeId, (base + v) as NodeId);
            }
        }
    };
    clique(&mut b, 0);
    clique(&mut b, k + bridge);
    // Path through the bridge nodes.
    let mut prev = (k - 1) as NodeId; // a clique-A node
    for i in 0..bridge {
        let x = (k + i) as NodeId;
        b.add_pair(prev, x);
        prev = x;
    }
    b.add_pair(prev, (k + bridge) as NodeId); // into clique B
    b.build()
}

/// Lollipop: `K_k` clique with a path of `tail` nodes hanging off it —
/// the classic "whisker" shape that dominates the low-conductance
/// profile of real social networks at small scales \[27, 28\].
pub fn lollipop(k: usize, tail: usize) -> Result<Graph> {
    if k < 2 {
        return Err(GraphError::InvalidArgument("lollipop needs k >= 2".into()));
    }
    let n = k + tail;
    let mut b = GraphBuilder::with_nodes(n);
    for u in 0..k {
        for v in (u + 1)..k {
            b.add_pair(u as NodeId, v as NodeId);
        }
    }
    let mut prev = 0 as NodeId;
    for i in 0..tail {
        let x = (k + i) as NodeId;
        b.add_pair(prev, x);
        prev = x;
    }
    b.build()
}

/// Guattery–Miller "cockroach" graph on `4k` nodes.
///
/// Two horizontal paths of `2k` nodes each; the right halves are joined
/// by vertical rungs (a ladder), the left halves are bare antennae. The
/// optimal conductance cut separates top from bottom (cutting `k`
/// rungs is NOT optimal — cutting the ladder from the antennae is worse
/// — the best cut removes only the rightmost structure), while the
/// Fiedler vector orders nodes left-to-right and so sweeps to a
/// left/right cut that is a factor `Θ(k)` worse. This is the input
/// class on which spectral partitioning provably saturates its
/// quadratic Cheeger bound (\[21\]; paper §3.2 "long stringy pieces").
pub fn cockroach(k: usize) -> Result<Graph> {
    if k < 1 {
        return Err(GraphError::InvalidArgument("cockroach needs k >= 1".into()));
    }
    let n = 4 * k;
    // Top path: 0 .. 2k-1 (left to right); bottom path: 2k .. 4k-1.
    let top = |i: usize| i as NodeId;
    let bot = |i: usize| (2 * k + i) as NodeId;
    let mut b = GraphBuilder::with_nodes(n);
    for i in 0..(2 * k - 1) {
        b.add_pair(top(i), top(i + 1));
        b.add_pair(bot(i), bot(i + 1));
    }
    // Rungs join the right halves: positions k .. 2k-1.
    for i in k..(2 * k) {
        b.add_pair(top(i), bot(i));
    }
    b.build()
}

/// Ladder graph: two paths of length `len` joined by a rung at every
/// position. A "long stringy" graph whose best cut is across the middle.
pub fn ladder(len: usize) -> Result<Graph> {
    if len < 2 {
        return Err(GraphError::InvalidArgument("ladder needs len >= 2".into()));
    }
    let mut b = GraphBuilder::with_nodes(2 * len);
    for i in 0..len {
        if i + 1 < len {
            b.add_pair(i as NodeId, (i + 1) as NodeId);
            b.add_pair((len + i) as NodeId, (len + i + 1) as NodeId);
        }
        b.add_pair(i as NodeId, (len + i) as NodeId);
    }
    b.build()
}

/// Ring of `count` cliques of size `k`, adjacent cliques joined by one
/// edge. Clear multi-community structure with known optimal cuts.
pub fn ring_of_cliques(count: usize, k: usize) -> Result<Graph> {
    if count < 3 || k < 2 {
        return Err(GraphError::InvalidArgument(
            "ring_of_cliques needs count >= 3, k >= 2".into(),
        ));
    }
    let n = count * k;
    let mut b = GraphBuilder::with_nodes(n);
    for c in 0..count {
        let base = c * k;
        for u in 0..k {
            for v in (u + 1)..k {
                b.add_pair((base + u) as NodeId, (base + v) as NodeId);
            }
        }
        // Link node 0 of this clique to node 1 of the next.
        let next = ((c + 1) % count) * k;
        b.add_pair(base as NodeId, (next + 1 % k) as NodeId);
    }
    b.build()
}

/// Dumbbell variant of [`barbell`] with two cliques and a single edge.
pub fn dumbbell(k: usize) -> Result<Graph> {
    barbell(k, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::{diameter, is_connected};

    #[test]
    fn path_shape() {
        let g = path(5).unwrap();
        assert_eq!((g.n(), g.m()), (5, 4));
        assert!(is_connected(&g));
        assert_eq!(diameter(&g), Some(4));
        assert!(path(0).is_err());
        let single = path(1).unwrap();
        assert_eq!((single.n(), single.m()), (1, 0));
    }

    #[test]
    fn cycle_shape() {
        let g = cycle(6).unwrap();
        assert_eq!((g.n(), g.m()), (6, 6));
        assert!(g.degrees().iter().all(|&d| d == 2.0));
        assert_eq!(diameter(&g), Some(3));
        assert!(cycle(2).is_err());
    }

    #[test]
    fn complete_shape() {
        let g = complete(5).unwrap();
        assert_eq!(g.m(), 10);
        assert!(g.degrees().iter().all(|&d| d == 4.0));
        assert_eq!(diameter(&g), Some(1));
        assert!(complete(0).is_err());
    }

    #[test]
    fn star_shape() {
        let g = star(5).unwrap();
        assert_eq!(g.degree(0), 4.0);
        assert!((1..5).all(|i| g.degree(i) == 1.0));
        assert!(star(1).is_err());
    }

    #[test]
    fn grid_shape() {
        let g = grid2d(3, 4).unwrap();
        assert_eq!(g.n(), 12);
        // Edges: 3*3 horizontal + 2*4 vertical = 17.
        assert_eq!(g.m(), 17);
        assert!(is_connected(&g));
        assert_eq!(diameter(&g), Some(5));
        assert!(grid2d(0, 3).is_err());
    }

    #[test]
    fn tree_shape() {
        let g = binary_tree(4).unwrap();
        assert_eq!(g.n(), 15);
        assert_eq!(g.m(), 14);
        assert!(is_connected(&g));
        assert!(binary_tree(0).is_err());
    }

    #[test]
    fn hypercube_shape() {
        let g = hypercube(4).unwrap();
        assert_eq!(g.n(), 16);
        assert!(g.degrees().iter().all(|&d| d == 4.0));
        assert_eq!(g.m(), 32);
        assert_eq!(diameter(&g), Some(4));
        assert!(hypercube(0).is_err());
        assert!(hypercube(30).is_err());
    }

    #[test]
    fn barbell_bottleneck() {
        let g = barbell(5, 2).unwrap();
        assert_eq!(g.n(), 12);
        assert!(is_connected(&g));
        // Cliques intact.
        assert!(g.has_edge(0, 4));
        assert!(g.has_edge(7, 11));
        // Bridge path: 4-5, 5-6, 6-7.
        assert!(g.has_edge(4, 5));
        assert!(g.has_edge(5, 6));
        assert!(g.has_edge(6, 7));
        assert!(barbell(1, 0).is_err());
    }

    #[test]
    fn dumbbell_single_bridge_edge() {
        let g = dumbbell(4).unwrap();
        assert_eq!(g.n(), 8);
        // 2 * C(4,2) + 1 bridge.
        assert_eq!(g.m(), 13);
        assert!(g.has_edge(3, 4));
    }

    #[test]
    fn lollipop_whisker() {
        let g = lollipop(4, 3).unwrap();
        assert_eq!(g.n(), 7);
        assert_eq!(g.m(), 6 + 3);
        assert_eq!(g.degree(6), 1.0); // tail end
        assert!(is_connected(&g));
        assert!(lollipop(1, 2).is_err());
    }

    #[test]
    fn cockroach_structure() {
        let k = 3;
        let g = cockroach(k).unwrap();
        assert_eq!(g.n(), 12);
        // Edges: 2*(2k-1) path edges + k rungs.
        assert_eq!(g.m(), 2 * (2 * k - 1) + k);
        assert!(is_connected(&g));
        // Antenna tips have degree 1.
        assert_eq!(g.degree(0), 1.0);
        assert_eq!(g.degree(2 * k as u32), 1.0);
        // Rung positions have degree 3 (interior).
        assert_eq!(g.degree(k as u32), 3.0);
        assert!(cockroach(0).is_err());
    }

    #[test]
    fn ladder_structure() {
        let g = ladder(4).unwrap();
        assert_eq!(g.n(), 8);
        assert_eq!(g.m(), 3 + 3 + 4);
        assert!(is_connected(&g));
        assert!(ladder(1).is_err());
    }

    #[test]
    fn ring_of_cliques_structure() {
        let g = ring_of_cliques(4, 4).unwrap();
        assert_eq!(g.n(), 16);
        // 4 cliques * 6 + 4 links.
        assert_eq!(g.m(), 28);
        assert!(is_connected(&g));
        assert!(ring_of_cliques(2, 3).is_err());
        assert!(ring_of_cliques(3, 1).is_err());
    }
}
