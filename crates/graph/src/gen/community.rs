//! Generators with planted community structure.
//!
//! These produce the synthetic stand-ins for the paper's Figure 1 data
//! (AtP-DBLP and the networks of \[27, 28\]). Per DESIGN.md §2, the
//! substitution is justified because the relevant structural properties
//! are reproduced: expander-like cores, whisker-rich peripheries,
//! heavy-tailed degrees, and small planted communities that local
//! methods should recover.

use crate::builder::GraphBuilder;
use crate::csr::{Graph, NodeId};
use crate::gen::random::{barabasi_albert, erdos_renyi_gnp};
use crate::{GraphError, Result};
use rand::Rng;

/// Ground-truth community assignment returned alongside a generated
/// graph.
#[derive(Debug, Clone)]
pub struct PlantedCommunities {
    /// The generated graph.
    pub graph: Graph,
    /// `community[u]` is the community index of node `u`
    /// (`u32::MAX` = background/core).
    pub community: Vec<u32>,
}

impl PlantedCommunities {
    /// Node lists per community (background nodes excluded).
    pub fn community_nodes(&self) -> Vec<Vec<NodeId>> {
        let k = self
            .community
            .iter()
            .filter(|&&c| c != u32::MAX)
            .max()
            .map_or(0, |&c| c as usize + 1);
        let mut out = vec![Vec::new(); k];
        for (u, &c) in self.community.iter().enumerate() {
            if c != u32::MAX {
                out[c as usize].push(u as NodeId);
            }
        }
        out
    }
}

/// Stochastic block model / planted partition: `k` blocks of
/// `block_size` nodes; within-block edges with probability `p_in`,
/// between-block with `p_out`.
pub fn planted_partition(
    rng: &mut impl Rng,
    k: usize,
    block_size: usize,
    p_in: f64,
    p_out: f64,
) -> Result<PlantedCommunities> {
    if k == 0 || block_size == 0 {
        return Err(GraphError::InvalidArgument(
            "planted_partition needs k, block_size >= 1".into(),
        ));
    }
    for p in [p_in, p_out] {
        if !(0.0..=1.0).contains(&p) {
            return Err(GraphError::InvalidArgument(
                "probabilities must be in [0,1]".into(),
            ));
        }
    }
    let n = k * block_size;
    let mut b = GraphBuilder::with_nodes(n);
    let block_of = |u: usize| u / block_size;
    for u in 0..n {
        for v in (u + 1)..n {
            let p = if block_of(u) == block_of(v) {
                p_in
            } else {
                p_out
            };
            if p > 0.0 && rng.gen_bool(p) {
                b.add_pair(u as NodeId, v as NodeId);
            }
        }
    }
    let community: Vec<u32> = (0..n).map(|u| block_of(u) as u32).collect();
    Ok(PlantedCommunities {
        graph: b.build()?,
        community,
    })
}

/// LFR-style benchmark: power-law degree sequence (exponent `tau1`),
/// power-law community sizes (exponent `tau2`), and a mixing parameter
/// `mu` — the fraction of each node's edges that leave its community.
///
/// This is a simplified LFR: degrees are drawn from a bounded Pareto,
/// community sizes likewise; intra-community stubs are paired within
/// the community and inter-community stubs are paired globally.
/// It keeps LFR's defining feature (tunable mixing on a heavy-tailed
/// substrate) while staying simple enough to verify.
#[allow(clippy::too_many_arguments)]
pub fn lfr_like(
    rng: &mut impl Rng,
    n: usize,
    tau1: f64,
    tau2: f64,
    mu: f64,
    k_min: usize,
    k_max: usize,
    c_min: usize,
    c_max: usize,
) -> Result<PlantedCommunities> {
    if n == 0 || k_min == 0 || k_min > k_max || c_min == 0 || c_min > c_max || c_max > n {
        return Err(GraphError::InvalidArgument(
            "lfr_like: bad size parameters".into(),
        ));
    }
    if !(0.0..=1.0).contains(&mu) {
        return Err(GraphError::InvalidArgument(
            "lfr_like: mu must be in [0,1]".into(),
        ));
    }
    if tau1 <= 1.0 || tau2 <= 1.0 {
        return Err(GraphError::InvalidArgument(
            "lfr_like: exponents must exceed 1".into(),
        ));
    }

    // Bounded-Pareto sampler via inverse CDF.
    let pareto = |rng: &mut dyn rand::RngCore, lo: f64, hi: f64, alpha: f64| -> f64 {
        let a = alpha - 1.0;
        let u: f64 = rand::Rng::gen_range(rng, 0.0..1.0);
        let l = lo.powf(-a);
        let h = hi.powf(-a);
        (l - u * (l - h)).powf(-1.0 / a)
    };

    // Community sizes until they cover n.
    let mut sizes: Vec<usize> = Vec::new();
    let mut covered = 0usize;
    while covered < n {
        let s = pareto(rng, c_min as f64, c_max as f64, tau2).round() as usize;
        let s = s.clamp(c_min, c_max).min(n - covered).max(1);
        sizes.push(s);
        covered += s;
    }
    // Assign nodes to communities contiguously.
    let mut community = vec![0u32; n];
    let mut start = 0usize;
    let mut members: Vec<Vec<NodeId>> = Vec::with_capacity(sizes.len());
    for (c, &s) in sizes.iter().enumerate() {
        let mut mem = Vec::with_capacity(s);
        for (u, slot) in community.iter_mut().enumerate().skip(start).take(s) {
            *slot = c as u32;
            mem.push(u as NodeId);
        }
        members.push(mem);
        start += s;
    }

    // Degrees; split into internal/external stubs by mu.
    let mut internal_stubs: Vec<Vec<NodeId>> = vec![Vec::new(); sizes.len()];
    let mut external_stubs: Vec<NodeId> = Vec::new();
    for (u, &cu) in community.iter().enumerate() {
        let d = pareto(rng, k_min as f64, k_max as f64, tau1).round() as usize;
        let d = d.clamp(k_min, k_max);
        let ext = ((d as f64) * mu).round() as usize;
        let int = d - ext;
        let c = cu as usize;
        for _ in 0..int {
            internal_stubs[c].push(u as NodeId);
        }
        for _ in 0..ext {
            external_stubs.push(u as NodeId);
        }
    }

    let mut b = GraphBuilder::with_nodes(n);
    use rand::seq::SliceRandom;
    // Pair internal stubs within each community.
    for stubs in internal_stubs.iter_mut() {
        stubs.shuffle(rng);
        for chunk in stubs.chunks(2) {
            if chunk.len() == 2 && chunk[0] != chunk[1] {
                b.add_pair(chunk[0], chunk[1]);
            }
        }
    }
    // Pair external stubs globally (cross-community preferred; same-
    // community pairs are allowed — they just reduce effective mu).
    external_stubs.shuffle(rng);
    for chunk in external_stubs.chunks(2) {
        if chunk.len() == 2 && chunk[0] != chunk[1] {
            b.add_pair(chunk[0], chunk[1]);
        }
    }

    Ok(PlantedCommunities {
        graph: b.build()?,
        community,
    })
}

/// Parameters for [`social_network`], the Figure 1 surrogate.
#[derive(Debug, Clone)]
pub struct SocialNetworkParams {
    /// Nodes in the expander-like preferential-attachment core.
    pub core_nodes: usize,
    /// Attachment parameter of the core (edges per new core node).
    pub core_attach: usize,
    /// Number of planted communities attached to the core.
    pub communities: usize,
    /// Smallest / largest community size (sizes log-spaced between).
    pub community_size_range: (usize, usize),
    /// Internal edge probability within each community (scaled down
    /// with size so big communities are sparse like real ones).
    pub community_density: f64,
    /// Minimum edges connecting each community to the core.
    pub community_anchors: usize,
    /// Additional anchors per community node: each community gets
    /// `max(community_anchors, round(size × anchor_density))` core
    /// edges. Positive densities make community conductance *rise*
    /// with size — the defining feature of real social-network NCPs
    /// \[27, 28\] (small communities are good, large ones blend into the
    /// expander core).
    pub anchor_density: f64,
    /// Number of whiskers (pendant paths/trees) hanging off the core.
    pub whiskers: usize,
    /// Maximum whisker length.
    pub whisker_max_len: usize,
}

impl Default for SocialNetworkParams {
    fn default() -> Self {
        Self {
            core_nodes: 4000,
            core_attach: 4,
            communities: 60,
            community_size_range: (8, 800),
            community_density: 0.5,
            community_anchors: 2,
            anchor_density: 0.25,
            whiskers: 150,
            whisker_max_len: 12,
        }
    }
}

/// The AtP-DBLP surrogate for Figure 1: a preferential-attachment core
/// (expander-like at large scales, heavy-tailed degrees) with planted
/// communities across a range of sizes (each connected to the core by a
/// few anchor edges, so small communities have low conductance and
/// larger ones progressively worse — the rising NCP of \[27, 28\]) and
/// pendant whiskers (the stringy periphery that spectral methods
/// regularize away).
pub fn social_network(
    rng: &mut impl Rng,
    params: &SocialNetworkParams,
) -> Result<PlantedCommunities> {
    let p = params;
    if p.core_nodes <= p.core_attach || p.core_attach == 0 {
        return Err(GraphError::InvalidArgument(
            "social_network: need core_nodes > core_attach > 0".into(),
        ));
    }
    let (cmin, cmax) = p.community_size_range;
    if cmin < 3 || cmin > cmax {
        return Err(GraphError::InvalidArgument(
            "social_network: need 3 <= community min size <= max size".into(),
        ));
    }
    if !(0.0..=1.0).contains(&p.community_density) {
        return Err(GraphError::InvalidArgument(
            "social_network: community_density must be in [0,1]".into(),
        ));
    }
    if !(p.anchor_density >= 0.0 && p.anchor_density.is_finite()) {
        return Err(GraphError::InvalidArgument(
            "social_network: anchor_density must be nonnegative".into(),
        ));
    }

    // 1. Core.
    let core = barabasi_albert(rng, p.core_nodes, p.core_attach)?;
    let mut b = GraphBuilder::with_nodes(p.core_nodes);
    for (u, v, w) in core.edges() {
        b.add_edge(u, v, w);
    }
    let mut community = vec![u32::MAX; p.core_nodes];

    // 2. Planted communities, log-spaced sizes.
    for c in 0..p.communities {
        let t = if p.communities > 1 {
            c as f64 / (p.communities - 1) as f64
        } else {
            0.0
        };
        let size = ((cmin as f64).ln() + t * ((cmax as f64).ln() - (cmin as f64).ln()))
            .exp()
            .round() as usize;
        let size = size.clamp(cmin, cmax);
        // Density shrinks with size: expected internal degree ≈
        // density * 10·ln(size), keeping communities sparse but connected.
        let p_in = (p.community_density * 10.0 * (size as f64).ln() / size as f64).min(1.0);
        let sub = erdos_renyi_gnp(rng, size, p_in)?;
        let offset = b.n() as NodeId;
        for (u, v, w) in sub.edges() {
            b.add_edge(u + offset, v + offset, w);
        }
        b.grow_to(offset as usize + size);
        community.resize(offset as usize + size, c as u32);
        // Ring backbone guarantees connectivity inside the community.
        for i in 0..size {
            b.add_pair(offset + i as NodeId, offset + ((i + 1) % size) as NodeId);
        }
        // Anchor edges into the core: a floor plus a size-proportional
        // component, so larger communities have worse conductance (the
        // rising NCP of real networks).
        let anchors = p
            .community_anchors
            .max((size as f64 * p.anchor_density).round() as usize)
            .max(1);
        for _ in 0..anchors {
            let inside = offset + rng.gen_range(0..size) as NodeId;
            let anchor = rng.gen_range(0..p.core_nodes as NodeId);
            b.add_pair(inside, anchor);
        }
    }

    // 3. Whiskers: pendant paths off random core nodes.
    for _ in 0..p.whiskers {
        let len = rng.gen_range(1..=p.whisker_max_len.max(1));
        let mut prev = rng.gen_range(0..p.core_nodes as NodeId);
        for _ in 0..len {
            let x = b.n() as NodeId;
            b.grow_to(x as usize + 1);
            b.add_pair(prev, x);
            prev = x;
        }
        community.resize(b.n(), u32::MAX);
    }

    community.resize(b.n(), u32::MAX);
    Ok(PlantedCommunities {
        graph: b.build()?,
        community,
    })
}

/// Convenience: a small planted cluster inside a big ambient graph —
/// the §3.3 workload (find the cluster near a seed without touching the
/// whole graph). Returns the graph and the planted cluster's node list
/// (ids `0..cluster_size`).
pub fn planted_cluster(
    rng: &mut impl Rng,
    ambient_nodes: usize,
    ambient_attach: usize,
    cluster_size: usize,
    cluster_p: f64,
    bridge_edges: usize,
) -> Result<(Graph, Vec<NodeId>)> {
    if cluster_size < 3 || ambient_nodes < ambient_attach + 1 {
        return Err(GraphError::InvalidArgument(
            "planted_cluster: bad sizes".into(),
        ));
    }
    let cluster = erdos_renyi_gnp(rng, cluster_size, cluster_p)?;
    let ambient = barabasi_albert(rng, ambient_nodes, ambient_attach)?;
    let mut b = GraphBuilder::with_nodes(cluster_size + ambient_nodes);
    for (u, v, w) in cluster.edges() {
        b.add_edge(u, v, w);
    }
    // Ring backbone keeps the cluster connected even at low p.
    for i in 0..cluster_size {
        b.add_pair(i as NodeId, ((i + 1) % cluster_size) as NodeId);
    }
    let off = cluster_size as NodeId;
    for (u, v, w) in ambient.edges() {
        b.add_edge(u + off, v + off, w);
    }
    for _ in 0..bridge_edges.max(1) {
        let inside = rng.gen_range(0..cluster_size as NodeId);
        let outside = off + rng.gen_range(0..ambient_nodes as NodeId);
        b.add_pair(inside, outside);
    }
    Ok((b.build()?, (0..cluster_size as NodeId).collect()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::is_connected;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn sbm_blocks_denser_inside() {
        let mut r = rng(1);
        let pc = planted_partition(&mut r, 3, 30, 0.4, 0.02).unwrap();
        let g = &pc.graph;
        assert_eq!(g.n(), 90);
        // Count internal vs external edges.
        let mut internal = 0usize;
        let mut external = 0usize;
        for (u, v, _) in g.edges() {
            if pc.community[u as usize] == pc.community[v as usize] {
                internal += 1;
            } else {
                external += 1;
            }
        }
        assert!(
            internal > external,
            "internal={internal} external={external}"
        );
        let comms = pc.community_nodes();
        assert_eq!(comms.len(), 3);
        assert!(comms.iter().all(|c| c.len() == 30));
    }

    #[test]
    fn sbm_validates_args() {
        let mut r = rng(2);
        assert!(planted_partition(&mut r, 0, 5, 0.5, 0.1).is_err());
        assert!(planted_partition(&mut r, 2, 5, 1.5, 0.1).is_err());
    }

    #[test]
    fn lfr_mixing_controls_cut_fraction() {
        let mut r = rng(3);
        let low_mu = lfr_like(&mut r, 400, 2.5, 2.0, 0.1, 4, 30, 20, 80).unwrap();
        let high_mu = lfr_like(&mut r, 400, 2.5, 2.0, 0.6, 4, 30, 20, 80).unwrap();
        let cut_frac = |pc: &PlantedCommunities| {
            let mut cut = 0usize;
            let mut tot = 0usize;
            for (u, v, _) in pc.graph.edges() {
                tot += 1;
                if pc.community[u as usize] != pc.community[v as usize] {
                    cut += 1;
                }
            }
            cut as f64 / tot.max(1) as f64
        };
        assert!(cut_frac(&low_mu) < cut_frac(&high_mu));
    }

    #[test]
    fn lfr_validates_args() {
        let mut r = rng(4);
        assert!(lfr_like(&mut r, 0, 2.5, 2.0, 0.1, 4, 30, 20, 80).is_err());
        assert!(lfr_like(&mut r, 100, 2.5, 2.0, 1.5, 4, 30, 20, 80).is_err());
        assert!(lfr_like(&mut r, 100, 0.5, 2.0, 0.1, 4, 30, 20, 80).is_err());
        assert!(lfr_like(&mut r, 100, 2.5, 2.0, 0.1, 10, 4, 20, 80).is_err());
    }

    #[test]
    fn social_network_structure() {
        let mut r = rng(5);
        let params = SocialNetworkParams {
            core_nodes: 300,
            core_attach: 3,
            communities: 8,
            community_size_range: (6, 60),
            community_density: 0.5,
            community_anchors: 2,
            whiskers: 20,
            whisker_max_len: 6,
            ..Default::default()
        };
        let pc = social_network(&mut r, &params).unwrap();
        let g = &pc.graph;
        assert!(g.n() > 300);
        assert!(is_connected(g), "anchors and whiskers keep it connected");
        // Communities exist and have the declared range of sizes.
        let comms = pc.community_nodes();
        assert_eq!(comms.len(), 8);
        assert!(comms.iter().all(|c| c.len() >= 6 && c.len() <= 60));
        // Community labels align with graph size.
        assert_eq!(pc.community.len(), g.n());
        // Degree-1 whisker tips exist.
        let tips = (0..g.n() as NodeId).filter(|&u| g.degree(u) == 1.0).count();
        assert!(tips >= 10, "found {tips} whisker tips");
    }

    #[test]
    fn social_network_validates() {
        let mut r = rng(6);
        let p = SocialNetworkParams {
            core_nodes: 2,
            core_attach: 4,
            ..Default::default()
        };
        assert!(social_network(&mut r, &p).is_err());
        let p2 = SocialNetworkParams {
            community_size_range: (1, 5),
            ..Default::default()
        };
        assert!(social_network(&mut r, &p2).is_err());
    }

    #[test]
    fn planted_cluster_low_conductance() {
        let mut r = rng(7);
        let (g, cluster) = planted_cluster(&mut r, 500, 3, 40, 0.3, 3).unwrap();
        assert!(is_connected(&g));
        assert_eq!(cluster.len(), 40);
        // The planted cluster should have few outgoing edges relative to
        // its internal volume.
        let in_cluster: Vec<bool> = {
            let mut m = vec![false; g.n()];
            for &u in &cluster {
                m[u as usize] = true;
            }
            m
        };
        let mut cut = 0.0;
        for &u in &cluster {
            for (v, w) in g.neighbors(u) {
                if !in_cluster[v as usize] {
                    cut += w;
                }
            }
        }
        let vol = g.volume(&cluster);
        assert!(cut / vol < 0.2, "conductance-ish {}", cut / vol);
    }

    #[test]
    fn deterministic_given_seed() {
        let p = SocialNetworkParams {
            core_nodes: 100,
            core_attach: 2,
            communities: 3,
            community_size_range: (5, 20),
            whiskers: 5,
            whisker_max_len: 3,
            ..Default::default()
        };
        let a = social_network(&mut rng(9), &p).unwrap();
        let b = social_network(&mut rng(9), &p).unwrap();
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.community, b.community);
    }
}
