//! Graph generators.
//!
//! Three families, matching the data the paper's case studies need:
//!
//! * [`deterministic`] — closed-form constructions, including the
//!   worst-case inputs the paper cites: "long stringy" graphs
//!   (Guattery–Miller cockroach, ladders, lollipops) that saturate the
//!   spectral method's quadratic Cheeger guarantee, and structured
//!   graphs (paths, cycles, grids, hypercubes) with known spectra for
//!   testing.
//! * [`random`] — classic random models: Erdős–Rényi, preferential
//!   attachment, Watts–Strogatz, random-regular (expanders — the
//!   worst case for flow-based methods), forest fire.
//! * [`community`] — networks with planted structure: stochastic block
//!   models, LFR-style power-law community benchmarks, and the
//!   whiskered social-network surrogate standing in for AtP-DBLP in the
//!   Figure 1 reproduction (see DESIGN.md §2 for the substitution
//!   argument).

pub mod community;
pub mod deterministic;
pub mod random;

pub use community::*;
pub use deterministic::*;
pub use random::*;
