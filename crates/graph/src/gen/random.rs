//! Random graph models.
//!
//! All generators take a caller-supplied `Rng` so experiments are
//! reproducible from a seed. The models cover the structural regimes the
//! paper's §3.2 discussion needs: Erdős–Rényi (featureless baseline),
//! preferential attachment and forest fire (heavy-tailed degrees and
//! whiskers, as in social/information networks), Watts–Strogatz (locally
//! low-dimensional with shortcuts), and random-regular graphs (expanders
//! — the inputs on which flow-based partitioning saturates its
//! `O(log n)` guarantee and "there are no good partitions to find").

use crate::builder::GraphBuilder;
use crate::csr::{Graph, NodeId};
use crate::{GraphError, Result};
use rand::seq::SliceRandom;
use rand::Rng;

/// Erdős–Rényi `G(n, p)`: each of the `C(n,2)` edges present
/// independently with probability `p`.
///
/// Uses the geometric skipping method, `O(n + m)` expected time.
pub fn erdos_renyi_gnp(rng: &mut impl Rng, n: usize, p: f64) -> Result<Graph> {
    if !(0.0..=1.0).contains(&p) {
        return Err(GraphError::InvalidArgument("p must be in [0, 1]".into()));
    }
    let mut b = GraphBuilder::with_nodes(n);
    if p > 0.0 {
        if p >= 1.0 {
            for u in 0..n {
                for v in (u + 1)..n {
                    b.add_pair(u as NodeId, v as NodeId);
                }
            }
        } else {
            // Iterate over the C(n,2) pairs in lexicographic order,
            // skipping geometrically between successes.
            let lq = (1.0 - p).ln();
            let total = n.saturating_mul(n.saturating_sub(1)) / 2;
            let mut idx: f64 = -1.0;
            loop {
                let r: f64 = rng.gen_range(f64::EPSILON..1.0);
                idx += 1.0 + (r.ln() / lq).floor();
                if idx >= total as f64 {
                    break;
                }
                let k = idx as usize;
                // Decode pair index k -> (u, v), u < v.
                let u = pair_row(k, n);
                let before = u * (2 * n - u - 1) / 2;
                let v = u + 1 + (k - before);
                b.add_pair(u as NodeId, v as NodeId);
            }
        }
    }
    b.build()
}

/// Row index of the k-th pair (lexicographic upper-triangle order).
fn pair_row(k: usize, n: usize) -> usize {
    // Smallest u with u*(2n-u-1)/2 > k is the row after ours.
    let mut u = 0usize;
    let mut consumed = 0usize;
    while u + 1 < n {
        let row_len = n - u - 1;
        if consumed + row_len > k {
            break;
        }
        consumed += row_len;
        u += 1;
    }
    u
}

/// Erdős–Rényi `G(n, m)`: exactly `m` distinct edges sampled uniformly.
pub fn erdos_renyi_gnm(rng: &mut impl Rng, n: usize, m: usize) -> Result<Graph> {
    let max_m = n.saturating_mul(n.saturating_sub(1)) / 2;
    if m > max_m {
        return Err(GraphError::InvalidArgument(format!(
            "m = {m} exceeds max {max_m} for n = {n}"
        )));
    }
    let mut chosen = std::collections::HashSet::with_capacity(m * 2);
    let mut b = GraphBuilder::with_nodes(n);
    while chosen.len() < m {
        let u = rng.gen_range(0..n as NodeId);
        let v = rng.gen_range(0..n as NodeId);
        if u == v {
            continue;
        }
        let key = (u.min(v), u.max(v));
        if chosen.insert(key) {
            b.add_pair(key.0, key.1);
        }
    }
    b.build()
}

/// Barabási–Albert preferential attachment: start from a small clique,
/// then each new node attaches to `m_attach` existing nodes chosen
/// proportionally to degree. Produces the heavy-tailed degree
/// distributions characteristic of the paper's MMDS graphs.
pub fn barabasi_albert(rng: &mut impl Rng, n: usize, m_attach: usize) -> Result<Graph> {
    if m_attach == 0 || n <= m_attach {
        return Err(GraphError::InvalidArgument(
            "barabasi_albert needs 0 < m_attach < n".into(),
        ));
    }
    let mut b = GraphBuilder::with_nodes(n);
    // Degree-proportional sampling via the repeated-endpoints trick.
    let mut endpoints: Vec<NodeId> = Vec::with_capacity(2 * n * m_attach);
    // Seed: clique on m_attach + 1 nodes.
    for u in 0..=(m_attach) {
        for v in (u + 1)..=(m_attach) {
            b.add_pair(u as NodeId, v as NodeId);
            endpoints.push(u as NodeId);
            endpoints.push(v as NodeId);
        }
    }
    for new in (m_attach + 1)..n {
        // Pick m_attach distinct targets, degree-proportionally. A Vec
        // (not a HashSet) keeps iteration order — and hence the generated
        // graph — deterministic for a given RNG seed.
        let mut picked: Vec<NodeId> = Vec::with_capacity(m_attach);
        let mut guard = 0;
        while picked.len() < m_attach && guard < 100 * m_attach {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if !picked.contains(&t) {
                picked.push(t);
            }
            guard += 1;
        }
        // Fallback: fill with uniform nodes if degree sampling stalled.
        while picked.len() < m_attach {
            let t = rng.gen_range(0..new as NodeId);
            if !picked.contains(&t) {
                picked.push(t);
            }
        }
        for &t in &picked {
            b.add_pair(new as NodeId, t);
            endpoints.push(new as NodeId);
            endpoints.push(t);
        }
    }
    b.build()
}

/// Watts–Strogatz small world: ring lattice where each node connects to
/// `k/2` neighbors on each side, each edge rewired with probability
/// `beta`. Locally one-dimensional ("locally low-dimensional regions",
/// §3.2) with long-range shortcuts.
pub fn watts_strogatz(rng: &mut impl Rng, n: usize, k: usize, beta: f64) -> Result<Graph> {
    if k % 2 != 0 || k < 2 || k >= n {
        return Err(GraphError::InvalidArgument(
            "watts_strogatz needs even 2 <= k < n".into(),
        ));
    }
    if !(0.0..=1.0).contains(&beta) {
        return Err(GraphError::InvalidArgument("beta must be in [0, 1]".into()));
    }
    let half = k / 2;
    // Track the edge set to avoid duplicates while rewiring.
    let mut edges = std::collections::HashSet::new();
    for u in 0..n {
        for d in 1..=half {
            let v = (u + d) % n;
            let key = (u.min(v) as NodeId, u.max(v) as NodeId);
            edges.insert(key);
        }
    }
    let original: Vec<(NodeId, NodeId)> = {
        let mut v: Vec<_> = edges.iter().copied().collect();
        v.sort_unstable();
        v
    };
    for (u, v) in original {
        if rng.gen_bool(beta) {
            // Rewire: keep u, choose a fresh partner.
            let mut guard = 0;
            loop {
                let w = rng.gen_range(0..n as NodeId);
                let key = (u.min(w), u.max(w));
                if w != u && !edges.contains(&key) {
                    edges.remove(&(u.min(v), u.max(v)));
                    edges.insert(key);
                    break;
                }
                guard += 1;
                if guard > 100 {
                    break; // dense corner case: keep the original edge
                }
            }
        }
    }
    let mut b = GraphBuilder::with_nodes(n);
    for (u, v) in edges {
        b.add_pair(u, v);
    }
    b.build()
}

/// Random `d`-regular graph via the configuration model with
/// edge-swap repair of self-loops and multi-edges.
///
/// A raw stub pairing is simple with probability ≈ `e^{-(d²-1)/4}`,
/// which is hopeless already at `d = 6`; instead of rejecting whole
/// pairings, conflicting pairs are repaired by random 2-swaps against
/// good pairs (the standard fix, which preserves the degree sequence).
///
/// For `d >= 3` these are expanders with high probability — the family
/// on which flow-based partitioning is provably `Θ(log n)` off optimal
/// and "anyone would wonder why you'd partition a graph with no good
/// partitions" (paper §3.2 and footnote 23).
pub fn random_regular(rng: &mut impl Rng, n: usize, d: usize) -> Result<Graph> {
    if n * d % 2 != 0 || d == 0 || d >= n {
        return Err(GraphError::InvalidArgument(
            "random_regular needs 0 < d < n with n*d even".into(),
        ));
    }
    let mut stubs: Vec<NodeId> = (0..n as NodeId)
        .flat_map(|u| std::iter::repeat(u).take(d))
        .collect();
    stubs.shuffle(rng);
    let mut pairs: Vec<(NodeId, NodeId)> = stubs
        .chunks(2)
        .map(|c| (c[0].min(c[1]), c[0].max(c[1])))
        .collect();

    let mut counts: std::collections::HashMap<(NodeId, NodeId), usize> = Default::default();
    for &p in &pairs {
        *counts.entry(p).or_insert(0) += 1;
    }
    let is_bad = |p: (NodeId, NodeId),
                  counts: &std::collections::HashMap<(NodeId, NodeId), usize>| {
        p.0 == p.1 || counts[&p] > 1
    };

    let m = pairs.len();
    let mut budget = 200usize * m + 10_000;
    loop {
        let bad: Vec<usize> = (0..m).filter(|&i| is_bad(pairs[i], &counts)).collect();
        if bad.is_empty() {
            break;
        }
        for &i in &bad {
            if !is_bad(pairs[i], &counts) {
                continue; // repaired by an earlier swap this round
            }
            // Swap against a uniformly random partner pair.
            let j = rng.gen_range(0..m);
            if j == i {
                continue;
            }
            let (a, b) = pairs[i];
            let (c, dd) = pairs[j];
            // Propose (a,c) and (b,dd), randomly mirrored.
            let (p1, p2) = if rng.gen_bool(0.5) {
                ((a.min(c), a.max(c)), (b.min(dd), b.max(dd)))
            } else {
                ((a.min(dd), a.max(dd)), (b.min(c), b.max(c)))
            };
            if p1.0 == p1.1 || p2.0 == p2.1 {
                continue;
            }
            let extra = usize::from(p1 == p2);
            if counts.get(&p1).copied().unwrap_or(0) + extra > 0 {
                continue;
            }
            if counts.get(&p2).copied().unwrap_or(0) > 0 {
                continue;
            }
            // Apply the swap.
            for old in [pairs[i], pairs[j]] {
                let c = counts.get_mut(&old).expect("tracked");
                *c -= 1;
                if *c == 0 {
                    counts.remove(&old);
                }
            }
            pairs[i] = p1;
            pairs[j] = p2;
            *counts.entry(p1).or_insert(0) += 1;
            *counts.entry(p2).or_insert(0) += 1;
            budget = budget.saturating_sub(1);
        }
        budget = budget.saturating_sub(bad.len().max(1));
        if budget == 0 {
            return Err(GraphError::InvalidArgument(
                "random_regular repair did not converge; try smaller d".into(),
            ));
        }
    }
    Graph::from_pairs(n, pairs)
}

/// Forest-fire model (Leskovec et al.): each new node picks an
/// ambassador and "burns" through its neighborhood with forward
/// probability `p`, linking to every burned node. Produces heavy tails,
/// densification, and the whisker-rich periphery of real social
/// networks — the properties \[27, 28\] identify as driving Figure 1.
pub fn forest_fire(rng: &mut impl Rng, n: usize, p: f64) -> Result<Graph> {
    if !(0.0..1.0).contains(&p) {
        return Err(GraphError::InvalidArgument(
            "forest_fire needs p in [0, 1)".into(),
        ));
    }
    if n == 0 {
        return Err(GraphError::InvalidArgument(
            "forest_fire needs n >= 1".into(),
        ));
    }
    let mut b = GraphBuilder::with_nodes(n);
    // Adjacency mirror for burning (builder has no fast adjacency).
    let mut adj: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    for new in 1..n {
        let ambassador = rng.gen_range(0..new as NodeId);
        // Burn outward from the ambassador.
        let mut burned = vec![false; new];
        let mut frontier = vec![ambassador];
        burned[ambassador as usize] = true;
        let mut links = vec![ambassador];
        // Geometric number of neighbors to burn per visited node.
        while let Some(u) = frontier.pop() {
            let mut candidates: Vec<NodeId> = adj[u as usize]
                .iter()
                .copied()
                .filter(|&v| !burned[v as usize])
                .collect();
            candidates.shuffle(rng);
            // Burn a geometric(1-p) number of neighbors.
            let mut burn_count = 0usize;
            while rng.gen_bool(p) {
                burn_count += 1;
            }
            for &v in candidates.iter().take(burn_count) {
                burned[v as usize] = true;
                links.push(v);
                frontier.push(v);
            }
        }
        for &t in &links {
            b.add_pair(new as NodeId, t);
            adj[new].push(t);
            adj[t as usize].push(new as NodeId);
        }
    }
    b.build()
}

/// R-MAT / Kronecker-style generator (Chakrabarti–Zhan–Faloutsos):
/// `2^scale` nodes, `edge_factor · 2^scale` sampled edges, each drawn by
/// recursively descending the adjacency matrix with quadrant
/// probabilities `(a, b, c, d)` (the classic Graph500 choice is
/// `(0.57, 0.19, 0.19, 0.05)`). Produces the skewed degree
/// distributions and self-similar community structure of large
/// information networks — the standard synthetic workload for
/// MMDS-scale graph benchmarks.
///
/// Self-loops are dropped and duplicate edges merged, so the final
/// edge count is at most `edge_factor · 2^scale`. Isolated nodes can
/// remain (use `largest_component` downstream, as with real data).
pub fn rmat(
    rng: &mut impl Rng,
    scale: u32,
    edge_factor: usize,
    probs: (f64, f64, f64, f64),
) -> Result<Graph> {
    if scale == 0 || scale > 24 {
        return Err(GraphError::InvalidArgument(
            "rmat needs 1 <= scale <= 24".into(),
        ));
    }
    if edge_factor == 0 {
        return Err(GraphError::InvalidArgument(
            "rmat needs edge_factor >= 1".into(),
        ));
    }
    let (a, b, c, d) = probs;
    if [a, b, c, d].iter().any(|&p| !(p > 0.0 && p < 1.0)) || (a + b + c + d - 1.0).abs() > 1e-9 {
        return Err(GraphError::InvalidArgument(
            "rmat quadrant probabilities must be positive and sum to 1".into(),
        ));
    }
    let n = 1usize << scale;
    let m_target = edge_factor * n;
    let mut builder = GraphBuilder::with_nodes(n);
    for _ in 0..m_target {
        let (mut u, mut v) = (0usize, 0usize);
        for _ in 0..scale {
            let r: f64 = rng.gen_range(0.0..1.0);
            let (du, dv) = if r < a {
                (0, 0)
            } else if r < a + b {
                (0, 1)
            } else if r < a + b + c {
                (1, 0)
            } else {
                (1, 1)
            };
            u = (u << 1) | du;
            v = (v << 1) | dv;
        }
        if u != v {
            builder.add_pair(u as NodeId, v as NodeId);
        }
    }
    // Merge duplicates into unweighted simple edges (weight 1), per the
    // Graph500 convention of ignoring multiplicity.
    let g = builder.build()?;
    let simple = g.edges().map(|(u, v, _)| (u, v, 1.0)).collect::<Vec<_>>();
    Graph::from_edges(n, simple)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::is_connected;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn gnp_density_close_to_p() {
        let mut r = rng(1);
        let n = 200;
        let p = 0.05;
        let g = erdos_renyi_gnp(&mut r, n, p).unwrap();
        let expected = p * (n * (n - 1) / 2) as f64;
        let m = g.m() as f64;
        assert!(
            (m - expected).abs() < 4.0 * expected.sqrt() + 10.0,
            "m={m}, expected≈{expected}"
        );
        g.validate().unwrap();
    }

    #[test]
    fn gnp_extremes() {
        let mut r = rng(2);
        let empty = erdos_renyi_gnp(&mut r, 10, 0.0).unwrap();
        assert_eq!(empty.m(), 0);
        let full = erdos_renyi_gnp(&mut r, 10, 1.0).unwrap();
        assert_eq!(full.m(), 45);
        assert!(erdos_renyi_gnp(&mut r, 10, 1.5).is_err());
    }

    #[test]
    fn gnp_deterministic_given_seed() {
        let g1 = erdos_renyi_gnp(&mut rng(7), 50, 0.1).unwrap();
        let g2 = erdos_renyi_gnp(&mut rng(7), 50, 0.1).unwrap();
        assert_eq!(g1, g2);
    }

    #[test]
    fn gnm_exact_edge_count() {
        let mut r = rng(3);
        let g = erdos_renyi_gnm(&mut r, 30, 100).unwrap();
        assert_eq!(g.m(), 100);
        assert!(erdos_renyi_gnm(&mut r, 5, 11).is_err());
    }

    #[test]
    fn ba_heavy_tail() {
        let mut r = rng(4);
        let n = 500;
        let g = barabasi_albert(&mut r, n, 3).unwrap();
        assert!(is_connected(&g));
        // Max degree far above the mean — heavy tail signature.
        let (_, dmax) = g.degree_range();
        let mean = g.total_volume() / n as f64;
        assert!(dmax > 4.0 * mean, "dmax={dmax}, mean={mean}");
        assert!(barabasi_albert(&mut r, 5, 5).is_err());
        assert!(barabasi_albert(&mut r, 5, 0).is_err());
    }

    #[test]
    fn ws_shape_and_rewiring() {
        let mut r = rng(5);
        let g0 = watts_strogatz(&mut r, 100, 4, 0.0).unwrap();
        // No rewiring: exactly the ring lattice.
        assert_eq!(g0.m(), 200);
        assert!(g0.degrees().iter().all(|&d| d == 4.0));
        let g1 = watts_strogatz(&mut r, 100, 4, 0.3).unwrap();
        assert_eq!(g1.m(), 200); // rewiring preserves edge count
        assert!(watts_strogatz(&mut r, 10, 3, 0.1).is_err()); // odd k
        assert!(watts_strogatz(&mut r, 10, 10, 0.1).is_err()); // k >= n
        assert!(watts_strogatz(&mut r, 10, 4, 2.0).is_err());
    }

    #[test]
    fn regular_graph_is_regular() {
        let mut r = rng(6);
        let g = random_regular(&mut r, 60, 4).unwrap();
        assert!(g.degrees().iter().all(|&d| d == 4.0));
        assert!(is_connected(&g)); // whp for d=4, n=60
        assert!(random_regular(&mut r, 5, 3).is_err()); // odd n*d
        assert!(random_regular(&mut r, 5, 5).is_err());
    }

    #[test]
    fn forest_fire_connected_and_tailed() {
        let mut r = rng(8);
        let g = forest_fire(&mut r, 300, 0.35).unwrap();
        assert!(is_connected(&g)); // every node links to its ambassador
        assert!(g.m() >= 299);
        assert!(forest_fire(&mut r, 10, 1.0).is_err());
        assert!(forest_fire(&mut r, 0, 0.3).is_err());
    }

    #[test]
    fn rmat_shape_and_skew() {
        let mut r = rng(23);
        let g = rmat(&mut r, 10, 8, (0.57, 0.19, 0.19, 0.05)).unwrap();
        assert_eq!(g.n(), 1024);
        assert!(g.m() > 1024, "m = {}", g.m());
        assert!(g.m() <= 8 * 1024);
        // Skew: max degree far above mean (the R-MAT signature).
        let (_, dmax) = g.degree_range();
        let mean = g.total_volume() / g.n() as f64;
        assert!(dmax > 5.0 * mean, "dmax {dmax} vs mean {mean}");
        // All weights 1 (duplicates merged, not summed).
        assert!(g.edges().all(|(_, _, w)| w == 1.0));
    }

    #[test]
    fn rmat_validates() {
        let mut r = rng(24);
        assert!(rmat(&mut r, 0, 8, (0.25, 0.25, 0.25, 0.25)).is_err());
        assert!(rmat(&mut r, 30, 8, (0.25, 0.25, 0.25, 0.25)).is_err());
        assert!(rmat(&mut r, 5, 0, (0.25, 0.25, 0.25, 0.25)).is_err());
        assert!(rmat(&mut r, 5, 4, (0.5, 0.5, 0.1, 0.1)).is_err());
        assert!(rmat(&mut r, 5, 4, (1.0, 0.0, 0.0, 0.0)).is_err());
    }

    #[test]
    fn rmat_deterministic() {
        let a = rmat(&mut rng(9), 8, 4, (0.57, 0.19, 0.19, 0.05)).unwrap();
        let b = rmat(&mut rng(9), 8, 4, (0.57, 0.19, 0.19, 0.05)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn pair_row_decoding() {
        // n = 4 pairs in order: (0,1)(0,2)(0,3)(1,2)(1,3)(2,3).
        let n = 4;
        let expect = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];
        for (k, &(eu, ev)) in expect.iter().enumerate() {
            let u = pair_row(k, n);
            let before = u * (2 * n - u - 1) / 2;
            let v = u + 1 + (k - before);
            assert_eq!((u, v), (eu, ev), "k={k}");
        }
    }
}
