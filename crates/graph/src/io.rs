//! Graph IO: whitespace edge lists, the METIS graph format, and a
//! serde-friendly exchange form.
//!
//! Formats:
//! * **Edge list** — one `u v [w]` triple per line, `#` comments;
//!   read/write against any `io::Read`/`io::Write`.
//! * **METIS** — the classic partitioner input format: a header line
//!   `n m [fmt]` followed by one line per node listing its (1-based)
//!   neighbors, with optional edge weights when `fmt = 1`; the lingua
//!   franca for exchanging graphs with external partitioning tools.
//! * [`GraphData`] — a plain serializable struct for experiment
//!   artifacts (serde `Serialize`/`Deserialize`).

use crate::csr::{Graph, NodeId};
use crate::{GraphError, Result};
use serde::{Deserialize, Serialize};
use std::io::{BufRead, BufReader, Read, Write};

/// Parse an edge list. Lines: `u v` or `u v w`, `#`-prefixed comments
/// and blank lines ignored. Node count is `max id + 1` unless
/// `min_nodes` is larger.
pub fn read_edge_list(reader: impl Read, min_nodes: usize) -> Result<Graph> {
    let reader = BufReader::new(reader);
    let mut edges: Vec<(NodeId, NodeId, f64)> = Vec::new();
    let mut max_node: usize = 0;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let parse_err = |message: String| GraphError::Parse {
            line: lineno + 1,
            message,
        };
        let u: NodeId = parts
            .next()
            .ok_or_else(|| parse_err("missing source".into()))?
            .parse()
            .map_err(|e| parse_err(format!("bad source: {e}")))?;
        let v: NodeId = parts
            .next()
            .ok_or_else(|| parse_err("missing target".into()))?
            .parse()
            .map_err(|e| parse_err(format!("bad target: {e}")))?;
        let w: f64 = match parts.next() {
            Some(tok) => tok
                .parse()
                .map_err(|e| parse_err(format!("bad weight: {e}")))?,
            None => 1.0,
        };
        if parts.next().is_some() {
            return Err(parse_err("trailing tokens".into()));
        }
        max_node = max_node.max(u as usize + 1).max(v as usize + 1);
        edges.push((u, v, w));
    }
    Graph::from_edges(max_node.max(min_nodes), edges)
}

/// Write a graph as an edge list (one line per undirected edge, `u <= v`;
/// weight included when ≠ 1).
pub fn write_edge_list(g: &Graph, mut writer: impl Write) -> Result<()> {
    writeln!(writer, "# nodes {} edges {}", g.n(), g.m())?;
    for (u, v, w) in g.edges() {
        if (w - 1.0).abs() < f64::EPSILON {
            writeln!(writer, "{u} {v}")?;
        } else {
            writeln!(writer, "{u} {v} {w}")?;
        }
    }
    Ok(())
}

/// Read a graph in METIS format.
///
/// Header: `n m [fmt]` where `fmt` is `0`/absent (unweighted) or `1`
/// (edge weights). Line `i` (1-based, after the header) lists node
/// `i`'s neighbors as 1-based indices, each followed by its weight when
/// `fmt = 1`. `%`-prefixed comment lines are ignored. Every edge must
/// appear from both endpoints (the format stores both directions);
/// inconsistent weights are a parse error.
pub fn read_metis(reader: impl Read) -> Result<Graph> {
    let reader = BufReader::new(reader);
    let mut lines = reader.lines().enumerate();
    // Find the header.
    let (header_lineno, header) = loop {
        match lines.next() {
            Some((no, line)) => {
                let line = line?;
                let t = line.trim().to_string();
                if !t.is_empty() && !t.starts_with('%') {
                    break (no, t);
                }
            }
            None => {
                return Err(GraphError::Parse {
                    line: 1,
                    message: "missing METIS header".into(),
                })
            }
        }
    };
    let parse_err = |line: usize, message: String| GraphError::Parse {
        line: line + 1,
        message,
    };
    let mut head = header.split_whitespace();
    let n: usize = head
        .next()
        .ok_or_else(|| parse_err(header_lineno, "missing n".into()))?
        .parse()
        .map_err(|e| parse_err(header_lineno, format!("bad n: {e}")))?;
    let m_declared: usize = head
        .next()
        .ok_or_else(|| parse_err(header_lineno, "missing m".into()))?
        .parse()
        .map_err(|e| parse_err(header_lineno, format!("bad m: {e}")))?;
    let weighted = match head.next() {
        None | Some("0") | Some("00") => false,
        Some("1") | Some("01") => true,
        Some(other) => {
            return Err(parse_err(
                header_lineno,
                format!("unsupported METIS fmt field {other}"),
            ))
        }
    };

    // Every directed appearance, keyed by (from, to), 0-based. The
    // header's edge count is attacker-controlled, so capacity is not
    // pre-reserved from it.
    let mut directed: std::collections::HashMap<(usize, usize), f64> =
        std::collections::HashMap::new();
    let mut node = 0usize;
    for (lineno, line) in lines {
        let line = line?;
        let t = line.trim();
        if t.starts_with('%') {
            continue;
        }
        if node >= n {
            if t.is_empty() {
                continue;
            }
            return Err(parse_err(lineno, format!("more than {n} node lines")));
        }
        let mut tok = t.split_whitespace();
        while let Some(v_tok) = tok.next() {
            let v: usize = v_tok
                .parse()
                .map_err(|e| parse_err(lineno, format!("bad neighbor: {e}")))?;
            if v == 0 || v > n {
                return Err(parse_err(lineno, format!("neighbor {v} out of 1..={n}")));
            }
            let w = if weighted {
                tok.next()
                    .ok_or_else(|| parse_err(lineno, "missing edge weight".into()))?
                    .parse()
                    .map_err(|e| parse_err(lineno, format!("bad weight: {e}")))?
            } else {
                1.0
            };
            if directed.insert((node, v - 1), w).is_some() {
                return Err(parse_err(
                    lineno,
                    format!("duplicate neighbor {v} on node {}'s line", node + 1),
                ));
            }
        }
        node += 1;
    }
    if node != n {
        return Err(GraphError::Parse {
            line: 0,
            message: format!("expected {n} node lines, found {node}"),
        });
    }
    // The format stores both directions of every edge; enforce the
    // symmetry the docs promise. Self-loops appear once.
    let mut edges: Vec<(NodeId, NodeId, f64)> = Vec::with_capacity(directed.len() / 2 + 1);
    let sym_err = |message: String| GraphError::Parse { line: 0, message };
    for (&(a, b), &w) in &directed {
        if a == b {
            edges.push((a as NodeId, b as NodeId, w));
        } else if a < b {
            match directed.get(&(b, a)) {
                Some(&wr) if wr == w => edges.push((a as NodeId, b as NodeId, w)),
                Some(&wr) => {
                    return Err(sym_err(format!(
                        "inconsistent weights on edge {}-{}: {w} vs {wr}",
                        a + 1,
                        b + 1
                    )))
                }
                None => {
                    return Err(sym_err(format!(
                        "edge {}-{} listed only from node {}",
                        a + 1,
                        b + 1,
                        a + 1
                    )))
                }
            }
        } else if !directed.contains_key(&(b, a)) {
            return Err(sym_err(format!(
                "edge {}-{} listed only from node {}",
                b + 1,
                a + 1,
                a + 1
            )));
        }
    }
    let g = Graph::from_edges(n, edges)?;
    if g.m() != m_declared {
        return Err(GraphError::Parse {
            line: header_lineno + 1,
            message: format!("header declares {m_declared} edges, body has {}", g.m()),
        });
    }
    Ok(g)
}

/// Write a graph in METIS format (weighted iff any edge weight ≠ 1).
pub fn write_metis(g: &Graph, mut writer: impl Write) -> Result<()> {
    let weighted = g.edges().any(|(_, _, w)| (w - 1.0).abs() > f64::EPSILON);
    writeln!(
        writer,
        "{} {}{}",
        g.n(),
        g.m(),
        if weighted { " 1" } else { "" }
    )?;
    for u in 0..g.n() as NodeId {
        let mut first = true;
        for (v, w) in g.neighbors(u) {
            if !first {
                write!(writer, " ")?;
            }
            first = false;
            if weighted {
                write!(writer, "{} {}", v + 1, w)?;
            } else {
                write!(writer, "{}", v + 1)?;
            }
        }
        writeln!(writer)?;
    }
    Ok(())
}

/// Serde-serializable exchange form of a graph.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct GraphData {
    /// Node count.
    pub n: usize,
    /// Undirected edges `(u, v, w)` with `u <= v`.
    pub edges: Vec<(NodeId, NodeId, f64)>,
}

impl From<&Graph> for GraphData {
    fn from(g: &Graph) -> Self {
        Self {
            n: g.n(),
            edges: g.edges().collect(),
        }
    }
}

impl GraphData {
    /// Rebuild the CSR graph.
    pub fn to_graph(&self) -> Result<Graph> {
        Graph::from_edges(self.n, self.edges.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_edge_list() {
        let g = Graph::from_edges(4, [(0, 1, 1.0), (1, 2, 2.5), (2, 3, 1.0)]).unwrap();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(buf.as_slice(), 0).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn parses_comments_blanks_and_default_weight() {
        let text = "# comment\n\n0 1\n1 2 3.5\n";
        let g = read_edge_list(text.as_bytes(), 0).unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(g.edge_weight(0, 1), 1.0);
        assert_eq!(g.edge_weight(1, 2), 3.5);
    }

    #[test]
    fn min_nodes_pads_isolated() {
        let g = read_edge_list("0 1\n".as_bytes(), 10).unwrap();
        assert_eq!(g.n(), 10);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let e = read_edge_list("0 1\nx 2\n".as_bytes(), 0).unwrap_err();
        match e {
            GraphError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected {other:?}"),
        }
        assert!(read_edge_list("0\n".as_bytes(), 0).is_err());
        assert!(read_edge_list("0 1 2 3\n".as_bytes(), 0).is_err());
        assert!(read_edge_list("0 1 abc\n".as_bytes(), 0).is_err());
    }

    #[test]
    fn graph_data_roundtrip() {
        let g = Graph::from_edges(3, [(0, 1, 1.0), (1, 2, 2.0)]).unwrap();
        let data = GraphData::from(&g);
        assert_eq!(data.n, 3);
        let g2 = data.to_graph().unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn metis_roundtrip_unweighted() {
        let g = Graph::from_pairs(4, [(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let mut buf = Vec::new();
        write_metis(&g, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.starts_with("4 4\n"), "{text}");
        let g2 = read_metis(buf.as_slice()).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn metis_roundtrip_weighted() {
        let g = Graph::from_edges(3, [(0, 1, 2.5), (1, 2, 1.0)]).unwrap();
        let mut buf = Vec::new();
        write_metis(&g, &mut buf).unwrap();
        assert!(String::from_utf8_lossy(&buf).starts_with("3 2 1\n"));
        let g2 = read_metis(buf.as_slice()).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn metis_parses_reference_sample() {
        // The canonical METIS manual example graph (7 nodes, 11 edges).
        let text = "% a comment\n7 11\n5 3 2\n1 3 4\n5 4 2 1\n2 3 6 7\n1 3 6\n5 4 7\n6 4\n";
        let g = read_metis(text.as_bytes()).unwrap();
        assert_eq!(g.n(), 7);
        assert_eq!(g.m(), 11);
        assert!(g.has_edge(0, 4)); // node 1 - node 5, 0-based
        assert!(g.has_edge(3, 6));
    }

    #[test]
    fn metis_rejects_malformed() {
        assert!(read_metis("".as_bytes()).is_err());
        assert!(read_metis("abc 3\n".as_bytes()).is_err());
        // Neighbor out of range.
        assert!(read_metis("2 1\n3\n1\n".as_bytes()).is_err());
        // Edge count mismatch with header.
        assert!(read_metis("2 5\n2\n1\n".as_bytes()).is_err());
        // Missing node lines.
        assert!(read_metis("3 1\n2\n1\n".as_bytes()).is_err());
        // Weighted fmt but missing weight.
        assert!(read_metis("2 1 1\n2\n1 1.0\n".as_bytes()).is_err());
        // Unsupported fmt (vertex weights).
        assert!(read_metis("2 1 10\n2\n1\n".as_bytes()).is_err());
    }

    #[test]
    fn edge_list_rejects_hostile_weights() {
        // "nan"/"inf"/negatives parse as f64 but must be rejected at
        // graph construction, not propagated into solvers.
        for text in ["0 1 nan\n", "0 1 inf\n", "0 1 -1.0\n", "0 1 0.0\n"] {
            let e = read_edge_list(text.as_bytes(), 0).unwrap_err();
            assert!(matches!(e, GraphError::BadWeight(_)), "{text:?} gave {e:?}");
        }
    }

    #[test]
    fn metis_huge_declared_edge_count_is_error_not_allocation() {
        // The header's m is attacker-controlled; it must not drive a
        // pre-allocation. This returns a parse error promptly.
        let e = read_metis("2 123456789012345\n2\n1\n".as_bytes());
        assert!(e.is_err());
    }

    #[test]
    fn metis_rejects_asymmetric_adjacency() {
        // Edge 1-3 listed only from node 1: the format requires both
        // directions, and the old edge-count check alone missed this.
        let e = read_metis("3 2\n2 3\n1\n\n".as_bytes()).unwrap_err();
        assert!(e.to_string().contains("listed only"), "{e}");
    }

    #[test]
    fn metis_rejects_inconsistent_direction_weights() {
        let e = read_metis("2 1 1\n2 2.0\n1 3.0\n".as_bytes()).unwrap_err();
        assert!(e.to_string().contains("inconsistent"), "{e}");
    }

    #[test]
    fn metis_rejects_duplicate_neighbor() {
        let e = read_metis("2 1\n2 2\n1\n".as_bytes()).unwrap_err();
        assert!(e.to_string().contains("duplicate"), "{e}");
    }

    #[test]
    fn empty_input_gives_empty_graph() {
        let g = read_edge_list("".as_bytes(), 0).unwrap();
        assert_eq!(g.n(), 0);
        assert_eq!(g.m(), 0);
    }
}
