//! # acir-graph
//!
//! Graph substrate for the ACIR reproduction of Mahoney, *"Approximate
//! Computation and Implicit Regularization for Very Large-scale Data
//! Analysis"* (PODS 2012).
//!
//! The paper's data model of interest (§2.1) is the *graph*: undirected,
//! weighted, typically sparse and poorly structured. This crate supplies:
//!
//! * an immutable CSR [`Graph`] with `u32` node ids and `f64` edge
//!   weights ([`csr`]), plus a mutable [`GraphBuilder`] ([`builder`]);
//! * traversal primitives — BFS, connected components, shortest paths —
//!   the "natural operations" of the geodesic view ([`traversal`]);
//! * a generator suite ([`gen`]) producing both the deterministic worst
//!   cases the paper cites (cockroach/stringy graphs for spectral,
//!   expanders for flow) and random families with the statistical
//!   properties of the social/information networks in Figure 1
//!   (heavy-tailed degrees, whiskers, planted communities);
//! * structural statistics ([`stats`]) and simple edge-list IO ([`io`]);
//! * locality-improving vertex reorderings ([`permute`]): reverse
//!   Cuthill–McKee and degree orderings with full inverse-mapping
//!   support, so results computed on a reordered graph map back to the
//!   original ids;
//! * an epoch-versioned snapshot layer ([`snapshot`]): immutable
//!   `Arc`-published [`GraphSnapshot`]s with delta records and
//!   permutation lineage, so readers pin a consistent graph while a
//!   writer applies deltas or relabeling compactions off to the side.
//!
//! All randomness flows through caller-supplied seeded RNGs; every
//! generator is deterministic given its seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod csr;
pub mod delta;
pub mod gen;
pub mod io;
pub mod permute;
pub mod result;
pub mod snapshot;
pub mod stats;
pub mod traversal;

pub use builder::GraphBuilder;
pub use csr::{Graph, NodeId};
pub use delta::{DeltaGraph, EdgeDelta, EdgeOp};
pub use permute::{bandwidth_stats, BandwidthStats, Permutation};
pub use result::NodeValued;
pub use snapshot::{compact_ordered, CompactionOrder, GraphSnapshot, SnapshotStore};

/// Errors produced by the graph substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// A node id is out of range for the graph.
    NodeOutOfRange {
        /// The offending node id.
        node: NodeId,
        /// Number of nodes in the graph.
        n: usize,
    },
    /// An edge weight was non-positive or non-finite.
    BadWeight(f64),
    /// Parse failure in graph IO.
    Parse {
        /// 1-based line number of the failure.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// Underlying IO failure (message only, to keep the error `Clone`).
    Io(String),
    /// Invalid argument to a generator or algorithm.
    InvalidArgument(String),
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, n } => {
                write!(f, "node {node} out of range for graph with {n} nodes")
            }
            GraphError::BadWeight(w) => write!(f, "edge weight {w} must be positive and finite"),
            GraphError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            GraphError::Io(msg) => write!(f, "io error: {msg}"),
            GraphError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e.to_string())
    }
}

/// Result alias for graph operations.
pub type Result<T> = std::result::Result<T, GraphError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = GraphError::NodeOutOfRange { node: 9, n: 4 };
        assert!(e.to_string().contains("node 9"));
        assert!(GraphError::BadWeight(-1.0).to_string().contains("-1"));
        let e = GraphError::Parse {
            line: 3,
            message: "bad".into(),
        };
        assert!(e.to_string().contains("line 3"));
        assert!(GraphError::Io("x".into()).to_string().contains("io"));
        assert!(GraphError::InvalidArgument("y".into())
            .to_string()
            .contains("y"));
    }

    #[test]
    fn io_error_converts() {
        let ioe = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let ge: GraphError = ioe.into();
        assert!(matches!(ge, GraphError::Io(_)));
    }
}
