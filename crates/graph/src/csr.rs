//! The immutable CSR graph.
//!
//! An undirected, weighted graph `G = (V, E)` stored as a symmetric
//! adjacency structure in compressed-sparse-row form: each undirected
//! edge `{u, v}` appears as two directed arcs. Self-loops are permitted;
//! a self-loop's weight is stored once and counted once in the node's
//! weighted degree, which keeps `L = D − A` positive semidefinite.

use crate::permute::Permutation;
use crate::{GraphError, Result};

/// Node identifier. `u32` keeps adjacency arrays compact (paper §2.1:
/// MMDS graphs are large and sparse; memory layout matters).
pub type NodeId = u32;

/// An immutable undirected weighted graph in CSR form.
///
/// Invariants (established by [`Graph::from_edges`], checked by
/// [`Graph::validate`]):
/// * `offsets.len() == n + 1`, non-decreasing, `offsets[0] == 0`;
/// * arcs within a row are sorted by target with no duplicate targets;
/// * the arc structure is symmetric: `(u→v, w)` exists iff `(v→u, w)`;
/// * all weights are positive and finite;
/// * `degrees[u] = Σ_v w(u, v)` and `total_volume = Σ_u degrees[u]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Graph {
    offsets: Vec<usize>,
    targets: Vec<NodeId>,
    weights: Vec<f64>,
    degrees: Vec<f64>,
    total_volume: f64,
}

impl Graph {
    /// Build from undirected edges `(u, v, w)`. Duplicate edges (in either
    /// orientation) are merged by summing weights; `u == v` is a self-loop.
    ///
    /// Errors if a node id is `>= n` or a weight is not positive/finite.
    pub fn from_edges(
        n: usize,
        edges: impl IntoIterator<Item = (NodeId, NodeId, f64)>,
    ) -> Result<Self> {
        let mut arcs: Vec<(NodeId, NodeId, f64)> = Vec::new();
        for (u, v, w) in edges {
            if u as usize >= n {
                return Err(GraphError::NodeOutOfRange { node: u, n });
            }
            if v as usize >= n {
                return Err(GraphError::NodeOutOfRange { node: v, n });
            }
            if !(w.is_finite() && w > 0.0) {
                return Err(GraphError::BadWeight(w));
            }
            arcs.push((u, v, w));
            if u != v {
                arcs.push((v, u, w));
            }
        }
        arcs.sort_unstable_by_key(|a| (a.0, a.1));

        // Merge consecutive duplicates.
        let mut merged: Vec<(NodeId, NodeId, f64)> = Vec::with_capacity(arcs.len());
        for (u, v, w) in arcs {
            match merged.last_mut() {
                Some((lu, lv, lw)) if *lu == u && *lv == v => *lw += w,
                _ => merged.push((u, v, w)),
            }
        }

        let mut offsets = vec![0usize; n + 1];
        let mut targets = Vec::with_capacity(merged.len());
        let mut weights = Vec::with_capacity(merged.len());
        for (u, v, w) in merged {
            offsets[u as usize + 1] += 1;
            targets.push(v);
            weights.push(w);
        }
        for i in 1..=n {
            offsets[i] += offsets[i - 1];
        }

        let degrees: Vec<f64> = (0..n)
            .map(|u| weights[offsets[u]..offsets[u + 1]].iter().sum())
            .collect();
        let total_volume = degrees.iter().sum();

        let g = Self {
            offsets,
            targets,
            weights,
            degrees,
            total_volume,
        };
        debug_assert!(g.validate().is_ok(), "{:?}", g.validate());
        Ok(g)
    }

    /// Build an unweighted graph (all weights 1.0) from node pairs.
    pub fn from_pairs(n: usize, pairs: impl IntoIterator<Item = (NodeId, NodeId)>) -> Result<Self> {
        Self::from_edges(n, pairs.into_iter().map(|(u, v)| (u, v, 1.0)))
    }

    /// Check all structural invariants (used by tests and after IO).
    pub fn validate(&self) -> Result<()> {
        let n = self.n();
        let bad = |m: &str| Err(GraphError::InvalidArgument(m.to_string()));
        if self.offsets.len() != n + 1 || self.offsets[0] != 0 {
            return bad("offsets malformed");
        }
        if self.offsets.last().copied() != Some(self.targets.len())
            || self.targets.len() != self.weights.len()
        {
            return bad("offsets end mismatch");
        }
        for w in self.offsets.windows(2) {
            if w[1] < w[0] {
                return bad("offsets must be non-decreasing");
            }
        }
        for u in 0..n {
            let row = &self.targets[self.offsets[u]..self.offsets[u + 1]];
            for w in row.windows(2) {
                if w[1] <= w[0] {
                    return bad("row targets must be strictly increasing");
                }
            }
            if row.iter().any(|&v| v as usize >= n) {
                return bad("target out of range");
            }
        }
        for &w in &self.weights {
            if !(w.is_finite() && w > 0.0) {
                return Err(GraphError::BadWeight(w));
            }
        }
        // Symmetry.
        for u in 0..n as NodeId {
            for (v, w) in self.neighbors(u) {
                if (self.edge_weight(v, u) - w).abs() > 1e-12 * w.abs().max(1.0) {
                    return bad("arc structure not symmetric");
                }
            }
        }
        // Degree cache.
        for u in 0..n {
            let s: f64 = self.weights[self.offsets[u]..self.offsets[u + 1]]
                .iter()
                .sum();
            if (s - self.degrees[u]).abs() > 1e-9 * s.abs().max(1.0) {
                return bad("degree cache stale");
            }
        }
        Ok(())
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.degrees.len()
    }

    /// Number of undirected edges (self-loops count once).
    pub fn m(&self) -> usize {
        let self_loops = (0..self.n() as NodeId)
            .filter(|&u| self.edge_weight(u, u) > 0.0)
            .count();
        (self.targets.len() - self_loops) / 2 + self_loops
    }

    /// Number of stored arcs (2 per non-loop edge, 1 per self-loop).
    #[inline]
    pub fn arc_count(&self) -> usize {
        self.targets.len()
    }

    /// Weighted degree `d_u = Σ_v w(u, v)`.
    #[inline]
    pub fn degree(&self, u: NodeId) -> f64 {
        self.degrees[u as usize]
    }

    /// Unweighted degree (neighbor count, self-loop counts once).
    #[inline]
    pub fn degree_unweighted(&self, u: NodeId) -> usize {
        self.offsets[u as usize + 1] - self.offsets[u as usize]
    }

    /// All weighted degrees.
    #[inline]
    pub fn degrees(&self) -> &[f64] {
        &self.degrees
    }

    /// Total volume `vol(V) = Σ_u d_u` (= 2·total edge weight for
    /// loop-free graphs).
    #[inline]
    pub fn total_volume(&self) -> f64 {
        self.total_volume
    }

    /// Iterate over `(neighbor, weight)` pairs of `u`, sorted by neighbor.
    #[inline]
    pub fn neighbors(&self, u: NodeId) -> impl Iterator<Item = (NodeId, f64)> + '_ {
        let r = self.offsets[u as usize]..self.offsets[u as usize + 1];
        self.targets[r.clone()]
            .iter()
            .copied()
            .zip(self.weights[r].iter().copied())
    }

    /// Neighbor ids of `u` (no weights), sorted.
    #[inline]
    pub fn neighbor_ids(&self, u: NodeId) -> &[NodeId] {
        &self.targets[self.offsets[u as usize]..self.offsets[u as usize + 1]]
    }

    /// Weight of edge `{u, v}`, or 0.0 if absent. `O(log deg(u))`.
    pub fn edge_weight(&self, u: NodeId, v: NodeId) -> f64 {
        let r = self.offsets[u as usize]..self.offsets[u as usize + 1];
        debug_assert!(
            self.targets[r.clone()].windows(2).all(|w| w[0] < w[1]),
            "adjacency row of {u} must be strictly sorted for binary search"
        );
        match self.targets[r.clone()].binary_search(&v) {
            Ok(k) => self.weights[r.start + k],
            Err(_) => 0.0,
        }
    }

    /// Whether `{u, v}` is an edge.
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.edge_weight(u, v) > 0.0
    }

    /// Iterate over each undirected edge once as `(u, v, w)` with `u <= v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, f64)> + '_ {
        (0..self.n() as NodeId)
            .flat_map(move |u| self.neighbors(u).map(move |(v, w)| (u, v, w)))
            .filter(|&(u, v, _)| u <= v)
    }

    /// Volume of a node set: `vol(S) = Σ_{u∈S} d_u`.
    pub fn volume(&self, nodes: &[NodeId]) -> f64 {
        nodes.iter().map(|&u| self.degree(u)).sum()
    }

    /// Relabel the vertex set by a [`Permutation`]: vertex `old` of
    /// `self` becomes vertex `perm.to_new(old)` of the result.
    ///
    /// The relabelled graph is the *same* graph — every structural and
    /// spectral quantity is preserved — laid out in a different memory
    /// order (see [`crate::permute`] for why that matters). Weighted
    /// degrees and the total volume are **copied bitwise** from the
    /// cached values rather than re-accumulated, so per-vertex float
    /// metadata survives the round trip `permute(p)` →
    /// `permute(p.inverse())` exactly.
    ///
    /// Errors if `perm.len() != self.n()`.
    pub fn permute(&self, perm: &Permutation) -> Result<Graph> {
        let n = self.n();
        if perm.len() != n {
            return Err(GraphError::InvalidArgument(format!(
                "permutation over {} vertices applied to graph with {n} vertices",
                perm.len()
            )));
        }
        let mut offsets = vec![0usize; n + 1];
        for new in 0..n {
            let old = perm.to_old(new as NodeId);
            offsets[new + 1] = offsets[new] + self.degree_unweighted(old);
        }
        let arcs = self.targets.len();
        let mut targets: Vec<NodeId> = Vec::with_capacity(arcs);
        let mut weights: Vec<f64> = Vec::with_capacity(arcs);
        let mut degrees: Vec<f64> = Vec::with_capacity(n);
        let mut row: Vec<(NodeId, f64)> = Vec::new();
        for new in 0..n {
            let old = perm.to_old(new as NodeId);
            row.clear();
            row.extend(self.neighbors(old).map(|(v, w)| (perm.to_new(v), w)));
            // Relabelling scrambles the within-row target order; CSR
            // rows must be sorted for binary search and merge walks.
            row.sort_unstable_by_key(|&(t, _)| t);
            targets.extend(row.iter().map(|&(t, _)| t));
            weights.extend(row.iter().map(|&(_, w)| w));
            degrees.push(self.degrees[old as usize]);
        }
        let g = Graph {
            offsets,
            targets,
            weights,
            degrees,
            total_volume: self.total_volume,
        };
        debug_assert!(g.validate().is_ok(), "{:?}", g.validate());
        Ok(g)
    }

    /// Extract the subgraph induced by `nodes` (order defines new ids).
    ///
    /// Returns the subgraph and the mapping `new id → old id`. Duplicate
    /// input nodes are an error.
    pub fn induced_subgraph(&self, nodes: &[NodeId]) -> Result<(Graph, Vec<NodeId>)> {
        let n = self.n();
        let mut new_id = vec![u32::MAX; n];
        for (new, &old) in nodes.iter().enumerate() {
            if old as usize >= n {
                return Err(GraphError::NodeOutOfRange { node: old, n });
            }
            if new_id[old as usize] != u32::MAX {
                return Err(GraphError::InvalidArgument(format!(
                    "duplicate node {old} in induced_subgraph"
                )));
            }
            new_id[old as usize] = new as u32;
        }
        let mut edges = Vec::new();
        for (new_u, &old_u) in nodes.iter().enumerate() {
            for (old_v, w) in self.neighbors(old_u) {
                let nv = new_id[old_v as usize];
                if nv != u32::MAX && (nv as usize > new_u || old_v == old_u) {
                    edges.push((new_u as NodeId, nv, w));
                }
            }
        }
        let sub = Graph::from_edges(nodes.len(), edges)?;
        Ok((sub, nodes.to_vec()))
    }

    /// Complement indicator: all nodes not in `s` (given as sorted-or-not
    /// slice), in ascending order.
    pub fn complement(&self, s: &[NodeId]) -> Vec<NodeId> {
        let mut in_s = vec![false; self.n()];
        for &u in s {
            in_s[u as usize] = true;
        }
        (0..self.n() as NodeId)
            .filter(|&u| !in_s[u as usize])
            .collect()
    }

    /// Minimum and maximum weighted degree.
    pub fn degree_range(&self) -> (f64, f64) {
        let mut lo = f64::INFINITY;
        let mut hi = 0.0f64;
        for &d in &self.degrees {
            lo = lo.min(d);
            hi = hi.max(d);
        }
        if self.degrees.is_empty() {
            (0.0, 0.0)
        } else {
            (lo, hi)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Triangle with a pendant node: 0-1, 1-2, 2-0, 2-3.
    pub(crate) fn triangle_pendant() -> Graph {
        Graph::from_pairs(4, [(0, 1), (1, 2), (2, 0), (2, 3)]).unwrap()
    }

    #[test]
    fn basic_construction() {
        let g = triangle_pendant();
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 4);
        assert_eq!(g.arc_count(), 8);
        assert_eq!(g.degree(0), 2.0);
        assert_eq!(g.degree(2), 3.0);
        assert_eq!(g.degree(3), 1.0);
        assert_eq!(g.total_volume(), 8.0);
        g.validate().unwrap();
    }

    #[test]
    fn neighbors_sorted_and_symmetric() {
        let g = triangle_pendant();
        let n2: Vec<_> = g.neighbors(2).collect();
        assert_eq!(n2, vec![(0, 1.0), (1, 1.0), (3, 1.0)]);
        assert!(g.has_edge(3, 2));
        assert!(!g.has_edge(3, 0));
        assert_eq!(g.edge_weight(0, 1), 1.0);
        assert_eq!(g.edge_weight(1, 0), 1.0);
    }

    #[test]
    fn duplicate_edges_merge() {
        let g = Graph::from_edges(2, [(0, 1, 1.0), (1, 0, 2.0), (0, 1, 0.5)]).unwrap();
        assert_eq!(g.edge_weight(0, 1), 3.5);
        assert_eq!(g.m(), 1);
        g.validate().unwrap();
    }

    #[test]
    fn self_loop_handling() {
        let g = Graph::from_edges(2, [(0, 0, 2.0), (0, 1, 1.0)]).unwrap();
        assert_eq!(g.degree(0), 3.0);
        assert_eq!(g.m(), 2);
        assert_eq!(g.edge_weight(0, 0), 2.0);
        g.validate().unwrap();
    }

    #[test]
    fn rejects_bad_input() {
        assert!(matches!(
            Graph::from_pairs(2, [(0, 5)]),
            Err(GraphError::NodeOutOfRange { node: 5, .. })
        ));
        assert!(matches!(
            Graph::from_edges(2, [(0, 1, -1.0)]),
            Err(GraphError::BadWeight(_))
        ));
        assert!(matches!(
            Graph::from_edges(2, [(0, 1, f64::NAN)]),
            Err(GraphError::BadWeight(_))
        ));
        assert!(matches!(
            Graph::from_edges(2, [(0, 1, 0.0)]),
            Err(GraphError::BadWeight(_))
        ));
    }

    #[test]
    fn empty_and_isolated() {
        let g = Graph::from_pairs(3, []).unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 0);
        assert_eq!(g.degree(1), 0.0);
        assert_eq!(g.neighbors(1).count(), 0);
        g.validate().unwrap();
    }

    #[test]
    fn edges_iterates_each_once() {
        let g = triangle_pendant();
        let e: Vec<_> = g.edges().collect();
        assert_eq!(e.len(), 4);
        assert!(e.contains(&(0, 1, 1.0)));
        assert!(e.contains(&(2, 3, 1.0)));
        // Each with u <= v.
        assert!(e.iter().all(|&(u, v, _)| u <= v));
    }

    #[test]
    fn volume_and_complement() {
        let g = triangle_pendant();
        assert_eq!(g.volume(&[0, 1]), 4.0);
        assert_eq!(g.complement(&[0, 2]), vec![1, 3]);
        assert_eq!(g.complement(&[]), vec![0, 1, 2, 3]);
    }

    #[test]
    fn induced_subgraph_triangle() {
        let g = triangle_pendant();
        let (sub, map) = g.induced_subgraph(&[0, 1, 2]).unwrap();
        assert_eq!(sub.n(), 3);
        assert_eq!(sub.m(), 3);
        assert_eq!(map, vec![0, 1, 2]);
        // Pendant excluded entirely.
        let (sub2, _) = g.induced_subgraph(&[2, 3]).unwrap();
        assert_eq!(sub2.m(), 1);
        assert!(sub2.has_edge(0, 1));
    }

    #[test]
    fn induced_subgraph_rejects_duplicates_and_range() {
        let g = triangle_pendant();
        assert!(g.induced_subgraph(&[0, 0]).is_err());
        assert!(g.induced_subgraph(&[0, 9]).is_err());
    }

    #[test]
    fn degree_range() {
        let g = triangle_pendant();
        assert_eq!(g.degree_range(), (1.0, 3.0));
        let empty = Graph::from_pairs(0, []).unwrap();
        assert_eq!(empty.degree_range(), (0.0, 0.0));
    }

    #[test]
    fn weighted_edges() {
        let g = Graph::from_edges(3, [(0, 1, 2.5), (1, 2, 0.5)]).unwrap();
        assert_eq!(g.degree(1), 3.0);
        assert_eq!(g.total_volume(), 6.0);
        assert_eq!(g.m(), 2);
    }
}
