//! Epoch-versioned immutable graph snapshots: the publish/pin protocol
//! that lets readers keep computing against a stable graph while a
//! writer applies deltas or compacts off to the side.
//!
//! The serving stack (PRs 6–9) owned exactly one mutable [`Graph`], so
//! every delta application was a stop-the-world swap and a relabeling
//! compaction had nowhere to record its [`Permutation`]. This module
//! converts that into a snapshot lifecycle:
//!
//! ```text
//!            writer builds aside            atomic publish
//!   ┌────────────────────────────┐   ┌──────────────────────────┐
//!   │ pin() ─► DeltaGraph overlay │   │ SnapshotStore::publish_* │
//!   │          compact()/permute  ├──►│   swap Arc under RwLock  │
//!   └────────────────────────────┘   └───────────┬──────────────┘
//!                                                 │
//!         readers drain on old Arcs ◄─────────────┘
//!   (every pinned `Arc<GraphSnapshot>` stays valid until dropped)
//! ```
//!
//! Each published [`GraphSnapshot`] carries:
//!
//! * the immutable CSR [`Graph`] for that version;
//! * a monotonically increasing **epoch** (the cache/sketch key);
//! * the net [`EdgeDelta`] record that produced it from its
//!   predecessor (empty for the root, a full swap, or a pure-relabel
//!   compaction) — the input the repair kernels consume;
//! * the **step** [`Permutation`] (previous snapshot's ids → this
//!   snapshot's ids) and the composed **lineage** (root ids → this
//!   snapshot's ids), so estimates, residuals, sketches and cached
//!   answers survive a relabeling compaction by being routed through
//!   the permutation instead of being rebuilt.
//!
//! Publication is single-writer (the owning engine mutates through
//! `&mut self`) and wait-free for readers apart from the brief
//! read-lock clone in [`SnapshotStore::pin`]; the write-lock section is
//! exactly one `Arc` swap, so a reader never observes a half-applied
//! delta — it sees the old snapshot or the new one, nothing between.

use std::sync::{Arc, RwLock};

use crate::csr::Graph;
use crate::delta::{DeltaGraph, EdgeDelta};
use crate::permute::Permutation;
use crate::{GraphError, NodeId, Result};

/// Vertex-order policy for a relabeling compaction.
///
/// [`DeltaGraph::compact`] always preserves vertex ids; a snapshot
/// compaction may additionally renumber vertices to restore locality
/// that a long delta stream has destroyed. The chosen permutation is
/// recorded as the snapshot's `step`, so downstream state repairs
/// across the relabeling instead of rebuilding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CompactionOrder {
    /// Keep vertex ids as they are (identity step — today's behavior).
    #[default]
    Preserve,
    /// Reverse Cuthill–McKee: bandwidth-minimizing BFS order.
    Rcm,
    /// Hubs first: sort vertices by unweighted degree, descending.
    DegreeDescending,
}

/// Compact a [`DeltaGraph`] into a fresh CSR under `order`, returning
/// the rebuilt graph and the relabeling that was applied (identity for
/// [`CompactionOrder::Preserve`]). The returned permutation maps the
/// overlay's vertex ids to the rebuilt graph's ids — exactly the
/// `step` a snapshot publication wants.
pub fn compact_ordered(
    dg: &DeltaGraph<'_>,
    order: CompactionOrder,
) -> Result<(Graph, Permutation)> {
    let (g, base) = dg.compact()?;
    match order {
        CompactionOrder::Preserve => Ok((g, base)),
        CompactionOrder::Rcm => {
            let p = Permutation::rcm(&g);
            Ok((g.permute(&p)?, p))
        }
        CompactionOrder::DegreeDescending => {
            let p = Permutation::degree_descending(&g);
            Ok((g.permute(&p)?, p))
        }
    }
}

/// One immutable, epoch-stamped graph version.
///
/// Snapshots are only handed out as `Arc<GraphSnapshot>`; holding the
/// `Arc` pins the version — the store publishing a successor never
/// invalidates it.
#[derive(Debug)]
pub struct GraphSnapshot {
    graph: Graph,
    epoch: u64,
    delta: Vec<EdgeDelta>,
    step: Permutation,
    lineage: Permutation,
}

impl GraphSnapshot {
    /// The snapshot's immutable CSR.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The monotonically increasing version stamp.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Net edge changes from the predecessor snapshot, in the
    /// predecessor's vertex ids (empty for the root, a full swap, or a
    /// pure-relabel compaction).
    pub fn delta(&self) -> &[EdgeDelta] {
        &self.delta
    }

    /// Relabeling from the predecessor snapshot's ids to this
    /// snapshot's ids (identity unless this snapshot was published by
    /// a relabeling compaction).
    pub fn step(&self) -> &Permutation {
        &self.step
    }

    /// Composed relabeling from root (external/query) ids to this
    /// snapshot's internal ids.
    pub fn lineage(&self) -> &Permutation {
        &self.lineage
    }

    /// Has any compaction in this snapshot's history renumbered
    /// vertices relative to external ids?
    pub fn is_relabeled(&self) -> bool {
        !self.lineage.is_identity()
    }

    /// Map an external (root-lineage) vertex id to this snapshot's
    /// internal id. Errors on out-of-range ids so the serving layer
    /// can reject bad queries instead of panicking.
    pub fn to_internal(&self, external: NodeId) -> Result<NodeId> {
        if (external as usize) >= self.graph.n() {
            return Err(GraphError::NodeOutOfRange {
                node: external,
                n: self.graph.n(),
            });
        }
        Ok(self.lineage.to_new(external))
    }

    /// Map one of this snapshot's internal vertex ids back to the
    /// external (root-lineage) id space.
    pub fn to_external(&self, internal: NodeId) -> NodeId {
        self.lineage.to_old(internal)
    }
}

/// Single-writer, multi-reader publication point for
/// [`GraphSnapshot`]s.
///
/// Readers call [`pin`](Self::pin) and keep the returned `Arc` for the
/// whole lifetime of their computation; the writer builds the next
/// version entirely off to the side and swaps it in atomically with
/// one of the `publish_*` methods. The lock is held only for the
/// pointer swap (or clone), never during graph construction.
#[derive(Debug)]
pub struct SnapshotStore {
    current: RwLock<Arc<GraphSnapshot>>,
}

impl SnapshotStore {
    /// Wrap `graph` as the root snapshot (epoch 0, identity lineage).
    pub fn new(graph: Graph) -> Self {
        Self::with_epoch(graph, 0)
    }

    /// Wrap `graph` as a root snapshot at an explicit starting epoch
    /// (used when a store replaces an older lifecycle mid-stream and
    /// the epoch counter must stay monotonic).
    pub fn with_epoch(graph: Graph, epoch: u64) -> Self {
        let n = graph.n();
        Self {
            current: RwLock::new(Arc::new(GraphSnapshot {
                graph,
                epoch,
                delta: Vec::new(),
                step: Permutation::identity(n),
                lineage: Permutation::identity(n),
            })),
        }
    }

    /// Pin the currently published snapshot. The returned `Arc` stays
    /// valid — same graph, same epoch, same lineage — no matter how
    /// many successors are published while the caller holds it.
    pub fn pin(&self) -> Arc<GraphSnapshot> {
        Arc::clone(&self.current.read().expect("snapshot lock poisoned"))
    }

    /// Epoch of the currently published snapshot.
    pub fn head_epoch(&self) -> u64 {
        self.current.read().expect("snapshot lock poisoned").epoch
    }

    /// Publish `graph` as the delta successor of the current head:
    /// identity step, lineage carried over, `delta` recorded as the
    /// net change from the predecessor. Returns the new head.
    pub fn publish_delta(&self, graph: Graph, delta: Vec<EdgeDelta>) -> Arc<GraphSnapshot> {
        let mut slot = self.current.write().expect("snapshot lock poisoned");
        let prev = slot.as_ref();
        let n = graph.n();
        debug_assert_eq!(n, prev.graph.n(), "delta publication cannot resize");
        let next = Arc::new(GraphSnapshot {
            graph,
            epoch: prev.epoch + 1,
            delta,
            step: Permutation::identity(n),
            lineage: prev.lineage.clone(),
        });
        *slot = Arc::clone(&next);
        next
    }

    /// Publish `graph` as a compacted successor relabeled by `step`
    /// (previous ids → new ids). The lineage is composed so external
    /// ids keep resolving; the recorded delta is empty — a compaction
    /// changes the numbering, not the edge set.
    pub fn publish_compacted(&self, graph: Graph, step: Permutation) -> Arc<GraphSnapshot> {
        let mut slot = self.current.write().expect("snapshot lock poisoned");
        let prev = slot.as_ref();
        let next = Arc::new(GraphSnapshot {
            graph,
            epoch: prev.epoch + 1,
            delta: Vec::new(),
            step: step.clone(),
            lineage: prev.lineage.then(&step),
        });
        *slot = Arc::clone(&next);
        next
    }

    /// Publish `graph` as a fresh root (a full graph swap): the epoch
    /// keeps counting up, but the delta record, step, and lineage all
    /// reset — the new graph's ids *are* the external ids.
    pub fn publish_root(&self, graph: Graph) -> Arc<GraphSnapshot> {
        let mut slot = self.current.write().expect("snapshot lock poisoned");
        let prev = slot.as_ref();
        let n = graph.n();
        let next = Arc::new(GraphSnapshot {
            graph,
            epoch: prev.epoch + 1,
            delta: Vec::new(),
            step: Permutation::identity(n),
            lineage: Permutation::identity(n),
        });
        *slot = Arc::clone(&next);
        next
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use crate::gen::deterministic::{barbell, path};

    #[test]
    fn pinned_snapshot_survives_publications() {
        let g = path(6).unwrap();
        let store = SnapshotStore::new(g);
        let pinned = store.pin();
        assert_eq!(pinned.epoch(), 0);
        assert!(!pinned.is_relabeled());
        assert!(pinned.delta().is_empty());

        let mut dg = DeltaGraph::new(pinned.graph());
        dg.insert_edge(0, 5, 2.0).unwrap();
        let delta = dg.net_delta();
        let (g2, _) = dg.compact().unwrap();
        let head = store.publish_delta(g2, delta);

        assert_eq!(head.epoch(), 1);
        assert_eq!(store.head_epoch(), 1);
        assert_eq!(head.delta().len(), 1);
        // The pinned snapshot still reads the pre-delta graph.
        assert_eq!(pinned.epoch(), 0);
        assert_eq!(pinned.graph().edge_weight(0, 5), 0.0);
        assert!(head.graph().edge_weight(0, 5) > 0.0);
    }

    #[test]
    fn compaction_composes_lineage() {
        let g = barbell(5, 3).unwrap();
        let store = SnapshotStore::new(g);
        let root = store.pin();

        let dg = DeltaGraph::new(root.graph());
        let (g2, step) = compact_ordered(&dg, CompactionOrder::DegreeDescending).unwrap();
        assert!(!step.is_identity());
        let head = store.publish_compacted(g2, step.clone());

        assert_eq!(head.epoch(), 1);
        assert!(head.is_relabeled());
        // External ids route through the lineage to the same vertex.
        for u in 0..root.graph().n() as NodeId {
            let internal = head.to_internal(u).unwrap();
            assert_eq!(head.to_external(internal), u);
            assert_eq!(
                root.graph().degree(u),
                head.graph().degree(internal),
                "degree must be preserved under relabeling"
            );
        }

        // A second relabeling composes: lineage == step1 ∘ step2.
        let dg2 = DeltaGraph::new(head.graph());
        let (g3, step2) = compact_ordered(&dg2, CompactionOrder::Rcm).unwrap();
        let head2 = store.publish_compacted(g3, step2.clone());
        for u in 0..root.graph().n() as NodeId {
            assert_eq!(
                head2.to_internal(u).unwrap(),
                step2.to_new(step.to_new(u)),
                "lineage must equal the composition of the steps"
            );
        }
    }

    #[test]
    fn preserve_order_compaction_is_bit_identical_to_plain_compact() {
        let g = barbell(4, 2).unwrap();
        let mut dg = DeltaGraph::new(&g);
        dg.insert_edge(1, 9, 3.0).unwrap();
        let (plain, _) = dg.compact().unwrap();
        let (ordered, step) = compact_ordered(&dg, CompactionOrder::Preserve).unwrap();
        assert!(step.is_identity());
        for u in 0..plain.n() as NodeId {
            let a: Vec<(NodeId, u64)> = plain.neighbors(u).map(|(v, w)| (v, w.to_bits())).collect();
            let b: Vec<(NodeId, u64)> = ordered
                .neighbors(u)
                .map(|(v, w)| (v, w.to_bits()))
                .collect();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn full_swap_resets_lineage_but_not_epoch() {
        let root_graph = path(4).unwrap();
        let store = SnapshotStore::new(root_graph.clone());
        let dg = DeltaGraph::new(&root_graph);
        let (gp, step) = compact_ordered(&dg, CompactionOrder::Rcm).unwrap();
        store.publish_compacted(gp, step);
        let head = store.publish_root(barbell(3, 1).unwrap());
        assert_eq!(head.epoch(), 2);
        assert!(!head.is_relabeled());
        assert!(head.to_internal(99).is_err());
    }
}
