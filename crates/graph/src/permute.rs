//! Vertex permutations and locality-improving graph reorderings.
//!
//! CSR traversal speed is dominated by the memory distance between a
//! row and the rows of its neighbors: a diffusion whose support is a
//! tight community still takes cache misses on every hop if the input
//! file happened to number that community's vertices far apart. A
//! [`Permutation`] relabels vertices; [`Permutation::rcm`] (reverse
//! Cuthill–McKee) and [`Permutation::degree_descending`] produce
//! orderings that shrink the CSR *bandwidth* (mean |u − v| over arcs,
//! see [`bandwidth_stats`]) so breadth-first-shaped workloads — BFS,
//! push diffusions, SpMV — touch near-contiguous memory.
//!
//! Reordering is **opt-in and reversible**: `Graph::permute` returns a
//! relabelled graph, and the permutation object maps seeds forward and
//! results (node sets, dense per-vertex vectors) back, so a caller can
//! run `permute → compute → inverse-map` and compare against the
//! direct computation. Which computations are *bit*-identical under
//! that round trip is a per-kernel property (documented in DESIGN.md
//! §9): set-valued outputs (sweep cuts, communities) and unweighted
//! integer-weight conductances are exact; accumulation-order-sensitive
//! floating-point results (Lanczos, long dot products) agree to
//! rounding.

use crate::{Graph, GraphError, NodeId, Result};

/// A bijective relabelling of the vertex set `0..n`.
///
/// Stored in both directions so mapping is `O(1)` either way:
/// `to_new(old)` and `to_old(new)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation {
    /// `new_of_old[old] = new`.
    new_of_old: Vec<NodeId>,
    /// `old_of_new[new] = old`.
    old_of_new: Vec<NodeId>,
}

impl Permutation {
    /// The identity permutation on `n` vertices.
    pub fn identity(n: usize) -> Self {
        let ids: Vec<NodeId> = (0..n as NodeId).collect();
        Self {
            new_of_old: ids.clone(),
            old_of_new: ids,
        }
    }

    /// Build from the forward map `new_of_old[old] = new`.
    ///
    /// Errors unless the map is a bijection on `0..len`.
    pub fn from_new_of_old(new_of_old: Vec<NodeId>) -> Result<Self> {
        let n = new_of_old.len();
        let mut old_of_new = vec![NodeId::MAX; n];
        for (old, &new) in new_of_old.iter().enumerate() {
            if new as usize >= n {
                return Err(GraphError::NodeOutOfRange { node: new, n });
            }
            if old_of_new[new as usize] != NodeId::MAX {
                return Err(GraphError::InvalidArgument(format!(
                    "permutation maps two vertices to {new}"
                )));
            }
            old_of_new[new as usize] = old as NodeId;
        }
        Ok(Self {
            new_of_old,
            old_of_new,
        })
    }

    /// Build from the backward map `old_of_new[new] = old` (i.e. the
    /// order in which old vertices should be laid out).
    pub fn from_old_of_new(old_of_new: Vec<NodeId>) -> Result<Self> {
        Ok(Self::from_new_of_old(old_of_new)?.inverse())
    }

    /// Number of vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.new_of_old.len()
    }

    /// Whether the permutation is over an empty vertex set.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.new_of_old.is_empty()
    }

    /// Map an old vertex id to its new id.
    #[inline]
    pub fn to_new(&self, old: NodeId) -> NodeId {
        self.new_of_old[old as usize]
    }

    /// Map a new vertex id back to its old id.
    #[inline]
    pub fn to_old(&self, new: NodeId) -> NodeId {
        self.old_of_new[new as usize]
    }

    /// The inverse permutation (swaps the two directions; `O(1)` data
    /// movement beyond the clones).
    pub fn inverse(&self) -> Permutation {
        Permutation {
            new_of_old: self.old_of_new.clone(),
            old_of_new: self.new_of_old.clone(),
        }
    }

    /// Compose with a second relabeling applied *after* this one:
    /// `self.then(next).to_new(u) == next.to_new(self.to_new(u))`.
    ///
    /// This is the lineage accumulator for snapshot chains
    /// ([`crate::snapshot::SnapshotStore`]): each relabeling compaction
    /// contributes one `step` permutation, and the composed product
    /// maps root-snapshot ids directly into the newest snapshot's ids.
    /// Panics if the two permutations disagree on length (distinct
    /// vertex universes cannot be chained).
    pub fn then(&self, next: &Permutation) -> Permutation {
        assert_eq!(
            self.len(),
            next.len(),
            "cannot compose permutations over different vertex counts"
        );
        let new_of_old: Vec<NodeId> = self.new_of_old.iter().map(|&m| next.to_new(m)).collect();
        let old_of_new: Vec<NodeId> = next.old_of_new.iter().map(|&m| self.to_old(m)).collect();
        Permutation {
            new_of_old,
            old_of_new,
        }
    }

    /// Whether this is the identity.
    pub fn is_identity(&self) -> bool {
        self.new_of_old
            .iter()
            .enumerate()
            .all(|(i, &v)| v as usize == i)
    }

    /// Map a set of old vertex ids into new ids, **sorted ascending**
    /// (the canonical form for node sets throughout the workspace).
    pub fn map_nodes(&self, nodes: &[NodeId]) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = nodes.iter().map(|&u| self.to_new(u)).collect();
        out.sort_unstable();
        out
    }

    /// Map a set of new vertex ids back to old ids, sorted ascending.
    pub fn unmap_nodes(&self, nodes: &[NodeId]) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = nodes.iter().map(|&u| self.to_old(u)).collect();
        out.sort_unstable();
        out
    }

    /// Re-lay-out a dense per-vertex array from old indexing to new
    /// indexing: `out[new] = values[old]`.
    pub fn map_values<T: Copy>(&self, values: &[T]) -> Vec<T> {
        debug_assert_eq!(values.len(), self.len());
        self.old_of_new
            .iter()
            .map(|&old| values[old as usize])
            .collect()
    }

    /// Re-lay-out a dense per-vertex array from new indexing back to
    /// old indexing: `out[old] = values[new]`.
    pub fn unmap_values<T: Copy>(&self, values: &[T]) -> Vec<T> {
        debug_assert_eq!(values.len(), self.len());
        self.new_of_old
            .iter()
            .map(|&new| values[new as usize])
            .collect()
    }

    /// Map a sparse `(node, value)` vector (old ids) into new ids,
    /// re-sorted by node id.
    pub fn map_sparse(&self, pairs: &[(NodeId, f64)]) -> Vec<(NodeId, f64)> {
        let mut out: Vec<(NodeId, f64)> = pairs.iter().map(|&(u, x)| (self.to_new(u), x)).collect();
        out.sort_unstable_by_key(|&(u, _)| u);
        out
    }

    /// Map a sparse `(node, value)` vector (new ids) back to old ids,
    /// re-sorted by node id.
    pub fn unmap_sparse(&self, pairs: &[(NodeId, f64)]) -> Vec<(NodeId, f64)> {
        let mut out: Vec<(NodeId, f64)> = pairs.iter().map(|&(u, x)| (self.to_old(u), x)).collect();
        out.sort_unstable_by_key(|&(u, _)| u);
        out
    }

    /// Reverse Cuthill–McKee ordering.
    ///
    /// Per connected component (components taken in order of their
    /// minimum-`(degree, id)` vertex): breadth-first search from that
    /// pseudo-peripheral start, visiting neighbors in ascending
    /// `(unweighted degree, id)` order, then reverse the concatenated
    /// visit order. Deterministic — a pure function of the adjacency
    /// structure. Isolated vertices keep their relative order at the
    /// front of the reversed layout's component sequence.
    pub fn rcm(g: &Graph) -> Permutation {
        let n = g.n();
        let mut visited = vec![false; n];
        let mut order: Vec<NodeId> = Vec::with_capacity(n);
        let mut queue: std::collections::VecDeque<NodeId> = std::collections::VecDeque::new();
        let mut neigh: Vec<NodeId> = Vec::new();

        // Component starts: ascending (degree, id) over all vertices.
        let mut starts: Vec<NodeId> = (0..n as NodeId).collect();
        starts.sort_unstable_by_key(|&u| (g.degree_unweighted(u), u));

        for &s in &starts {
            if visited[s as usize] {
                continue;
            }
            visited[s as usize] = true;
            queue.push_back(s);
            while let Some(u) = queue.pop_front() {
                order.push(u);
                neigh.clear();
                neigh.extend(
                    g.neighbor_ids(u)
                        .iter()
                        .copied()
                        .filter(|&v| !visited[v as usize]),
                );
                neigh.sort_unstable_by_key(|&v| (g.degree_unweighted(v), v));
                for &v in &neigh {
                    visited[v as usize] = true;
                    queue.push_back(v);
                }
            }
        }
        order.reverse();
        Self::from_old_of_new(order).expect("BFS visit order is a bijection")
    }

    /// Hub-first ordering: vertices sorted by descending unweighted
    /// degree, ties broken by ascending id.
    ///
    /// Packs the high-degree core — which most diffusions repeatedly
    /// traverse — into one contiguous, cache-resident prefix.
    pub fn degree_descending(g: &Graph) -> Permutation {
        let mut order: Vec<NodeId> = (0..g.n() as NodeId).collect();
        order.sort_unstable_by_key(|&u| (std::cmp::Reverse(g.degree_unweighted(u)), u));
        Self::from_old_of_new(order).expect("a sort of 0..n is a bijection")
    }
}

/// CSR bandwidth statistics: the distribution of `|u − v|` over stored
/// arcs. Locality-improving orderings shrink these; the perfsuite
/// records them next to the timings so the mechanism is visible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BandwidthStats {
    /// Largest |u − v| over arcs (0 for edgeless graphs).
    pub max: usize,
    /// Mean |u − v| over arcs (0.0 for edgeless graphs).
    pub mean: f64,
}

/// Compute [`BandwidthStats`] for a graph in its current vertex order.
pub fn bandwidth_stats(g: &Graph) -> BandwidthStats {
    let mut max = 0usize;
    let mut sum = 0u64;
    let mut arcs = 0u64;
    for u in 0..g.n() as NodeId {
        for v in g.neighbor_ids(u) {
            let d = u.abs_diff(*v) as usize;
            max = max.max(d);
            sum += d as u64;
            arcs += 1;
        }
    }
    BandwidthStats {
        max,
        mean: if arcs == 0 {
            0.0
        } else {
            sum as f64 / arcs as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::deterministic::{barbell, cycle, path};

    #[test]
    fn identity_and_inverse() {
        let p = Permutation::identity(5);
        assert!(p.is_identity());
        assert_eq!(p.len(), 5);
        assert_eq!(p.to_new(3), 3);
        assert_eq!(p.inverse(), p);
    }

    #[test]
    fn from_new_of_old_validates() {
        assert!(Permutation::from_new_of_old(vec![0, 0]).is_err());
        assert!(Permutation::from_new_of_old(vec![0, 7]).is_err());
        let p = Permutation::from_new_of_old(vec![2, 0, 1]).unwrap();
        assert_eq!(p.to_new(0), 2);
        assert_eq!(p.to_old(2), 0);
        assert!(!p.is_identity());
        let q = p.inverse();
        assert_eq!(q.to_new(2), 0);
        assert_eq!(q.inverse(), p);
    }

    #[test]
    fn map_and_unmap_round_trip() {
        let p = Permutation::from_new_of_old(vec![3, 1, 0, 2]).unwrap();
        let set = vec![0u32, 2];
        let mapped = p.map_nodes(&set);
        assert_eq!(mapped, vec![0, 3]); // {to_new(0)=3, to_new(2)=0} sorted
        assert_eq!(p.unmap_nodes(&mapped), set);

        let dense = vec![10.0, 11.0, 12.0, 13.0];
        let re = p.map_values(&dense);
        assert_eq!(p.unmap_values(&re), dense);
        for old in 0..4u32 {
            assert_eq!(re[p.to_new(old) as usize], dense[old as usize]);
        }

        let sparse = vec![(1u32, 0.5), (3u32, 0.25)];
        let ms = p.map_sparse(&sparse);
        assert!(ms.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(p.unmap_sparse(&ms), sparse);
    }

    #[test]
    fn rcm_shrinks_bandwidth_on_shuffled_path() {
        // A path relabelled by a decimation permutation has terrible
        // bandwidth; RCM recovers (a reflection of) the natural order.
        let n = 64usize;
        let scramble: Vec<NodeId> = (0..n as NodeId).map(|i| (i * 37) % n as NodeId).collect();
        let p = Permutation::from_new_of_old(scramble).unwrap();
        let g = path(n).unwrap().permute(&p).unwrap();
        let before = bandwidth_stats(&g);
        let rcm = Permutation::rcm(&g);
        let after = bandwidth_stats(&g.permute(&rcm).unwrap());
        assert_eq!(after.max, 1, "RCM must restore the path layout");
        assert!(before.mean > after.mean);
    }

    #[test]
    fn rcm_is_a_bijection_with_components() {
        // Two components + an isolated vertex.
        let mut edges: Vec<(NodeId, NodeId)> = (0..5).map(|i| (i, i + 1)).collect();
        edges.extend([(7, 8), (8, 9)]);
        let g = Graph::from_pairs(11, edges).unwrap();
        let p = Permutation::rcm(&g);
        assert_eq!(p.len(), 11);
        let mut seen = [false; 11];
        for u in 0..11u32 {
            let v = p.to_new(u) as usize;
            assert!(!seen[v]);
            seen[v] = true;
            assert_eq!(p.to_old(p.to_new(u)), u);
        }
    }

    #[test]
    fn degree_descending_puts_hubs_first() {
        let g = barbell(5, 3).unwrap(); // cliques of degree 4+, path of degree 2
        let p = Permutation::degree_descending(&g);
        let first = p.to_old(0);
        let last = p.to_old(g.n() as NodeId - 1);
        assert!(g.degree_unweighted(first) >= g.degree_unweighted(last));
        // Ties break by ascending old id, so the layout is deterministic.
        let q = Permutation::degree_descending(&g);
        assert_eq!(p, q);
    }

    #[test]
    fn bandwidth_stats_known_values() {
        let g = cycle(6).unwrap();
        let b = bandwidth_stats(&g);
        // Cycle arcs: |u−v| = 1 except the wrap arc (5−0) twice.
        assert_eq!(b.max, 5);
        assert!((b.mean - (10.0 + 2.0 * 5.0) / 12.0).abs() < 1e-12);
        let empty = Graph::from_pairs(3, []).unwrap();
        assert_eq!(bandwidth_stats(&empty).max, 0);
        assert_eq!(bandwidth_stats(&empty).mean, 0.0);
    }
}
