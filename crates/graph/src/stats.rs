//! Structural statistics.
//!
//! Used by the experiments to certify that generated surrogates have the
//! properties the paper attributes to real social/information networks
//! (heavy-tailed degrees, whiskers, clustering) before any conclusion is
//! drawn from them — the DESIGN.md substitution contract.

use crate::csr::{Graph, NodeId};
use crate::traversal::connected_components;

/// Degree distribution as (degree, count) pairs, ascending by degree
/// (unweighted degrees).
pub fn degree_histogram(g: &Graph) -> Vec<(usize, usize)> {
    let mut counts: std::collections::BTreeMap<usize, usize> = Default::default();
    for u in 0..g.n() as NodeId {
        *counts.entry(g.degree_unweighted(u)).or_insert(0) += 1;
    }
    counts.into_iter().collect()
}

/// Estimate of the power-law exponent via the Hill / maximum-likelihood
/// estimator `1 + n_tail / Σ ln(d_i / d_min)` over degrees `>= d_min`.
/// Returns `None` if fewer than 10 tail nodes.
pub fn powerlaw_exponent_mle(g: &Graph, d_min: usize) -> Option<f64> {
    let d_min = d_min.max(1);
    let tail: Vec<f64> = (0..g.n() as NodeId)
        .map(|u| g.degree_unweighted(u) as f64)
        .filter(|&d| d >= d_min as f64)
        .collect();
    if tail.len() < 10 {
        return None;
    }
    let s: f64 = tail.iter().map(|&d| (d / d_min as f64).ln()).sum();
    if s <= 0.0 {
        return None;
    }
    Some(1.0 + tail.len() as f64 / s)
}

/// Global clustering coefficient (transitivity):
/// `3 × triangles / wedges`. `O(Σ d_u²)` — fine for the graph sizes here.
pub fn global_clustering(g: &Graph) -> f64 {
    let mut triangles = 0u64; // counted 3 times each around vertices? (see below)
    let mut wedges = 0u64;
    for u in 0..g.n() as NodeId {
        let nbrs: Vec<NodeId> = g
            .neighbor_ids(u)
            .iter()
            .copied()
            .filter(|&v| v != u)
            .collect();
        let d = nbrs.len() as u64;
        wedges += d * d.saturating_sub(1) / 2;
        for i in 0..nbrs.len() {
            for j in (i + 1)..nbrs.len() {
                if g.has_edge(nbrs[i], nbrs[j]) {
                    triangles += 1; // each triangle counted once per corner
                }
            }
        }
    }
    if wedges == 0 {
        0.0
    } else {
        triangles as f64 / wedges as f64
    }
}

/// Census of whiskers: maximal subtrees hanging off the 2-edge-connected
/// core, detected by iteratively shaving degree-1 nodes.
///
/// Returns `(whisker_node_count, shave_rounds)` — how much of the graph
/// is "stringy periphery" (paper §3.2: the pieces spectral methods
/// regularize away) and how deep it runs.
pub fn whisker_census(g: &Graph) -> (usize, usize) {
    let n = g.n();
    let mut alive_deg: Vec<usize> = (0..n as NodeId).map(|u| g.degree_unweighted(u)).collect();
    let mut removed = vec![false; n];
    let mut rounds = 0usize;
    let mut total_removed = 0usize;
    loop {
        let shave: Vec<NodeId> = (0..n as NodeId)
            .filter(|&u| !removed[u as usize] && alive_deg[u as usize] <= 1)
            .collect();
        // Only count nodes that have at least one edge in the original
        // graph (isolated nodes are not whiskers), but shave them too so
        // they do not loop forever.
        let real: Vec<&NodeId> = shave
            .iter()
            .filter(|&&u| g.degree_unweighted(u) > 0)
            .collect();
        if shave.is_empty() {
            break;
        }
        total_removed += real.len();
        for &u in &shave {
            removed[u as usize] = true;
            for (v, _) in g.neighbors(u) {
                if !removed[v as usize] && alive_deg[v as usize] > 0 {
                    alive_deg[v as usize] -= 1;
                }
            }
        }
        if !real.is_empty() {
            rounds += 1;
        }
        if real.is_empty() {
            break;
        }
    }
    (total_removed, rounds)
}

/// Summary statistics bundle for experiment logs.
#[derive(Debug, Clone)]
pub struct GraphSummary {
    /// Node count.
    pub n: usize,
    /// Edge count.
    pub m: usize,
    /// Connected components.
    pub components: usize,
    /// Min/max weighted degree.
    pub degree_range: (f64, f64),
    /// Mean unweighted degree.
    pub mean_degree: f64,
    /// Global clustering coefficient.
    pub clustering: f64,
    /// Whisker node count.
    pub whisker_nodes: usize,
}

/// Compute a [`GraphSummary`].
pub fn summarize(g: &Graph) -> GraphSummary {
    let (_, components) = connected_components(g);
    let (whisker_nodes, _) = whisker_census(g);
    GraphSummary {
        n: g.n(),
        m: g.m(),
        components,
        degree_range: g.degree_range(),
        mean_degree: if g.n() == 0 {
            0.0
        } else {
            g.arc_count() as f64 / g.n() as f64
        },
        clustering: global_clustering(g),
        whisker_nodes,
    }
}

impl std::fmt::Display for GraphSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} m={} comps={} deg=[{:.1},{:.1}] mean_deg={:.2} clust={:.4} whiskers={}",
            self.n,
            self.m,
            self.components,
            self.degree_range.0,
            self.degree_range.1,
            self.mean_degree,
            self.clustering,
            self.whisker_nodes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::deterministic::{complete, lollipop, path, star};
    use crate::Graph;

    #[test]
    fn histogram_of_star() {
        let g = star(5).unwrap();
        let h = degree_histogram(&g);
        assert_eq!(h, vec![(1, 4), (4, 1)]);
    }

    #[test]
    fn clustering_extremes() {
        assert!((global_clustering(&complete(5).unwrap()) - 1.0).abs() < 1e-12);
        assert_eq!(global_clustering(&path(5).unwrap()), 0.0);
        assert_eq!(global_clustering(&Graph::from_pairs(2, []).unwrap()), 0.0);
    }

    #[test]
    fn clustering_of_triangle_with_pendant() {
        // Triangle 0-1-2 plus pendant 2-3: wedges = 1+1+3 = 5, closed = 3.
        let g = Graph::from_pairs(4, [(0, 1), (1, 2), (2, 0), (2, 3)]).unwrap();
        assert!((global_clustering(&g) - 3.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn whiskers_of_lollipop() {
        // K5 with a 4-node tail: tail nodes shave off; 4 whisker nodes.
        let g = lollipop(5, 4).unwrap();
        let (count, rounds) = whisker_census(&g);
        assert_eq!(count, 4);
        assert_eq!(rounds, 4); // one node per round, deepest whisker = 4
    }

    #[test]
    fn whiskers_of_clique_none() {
        let g = complete(6).unwrap();
        assert_eq!(whisker_census(&g).0, 0);
    }

    #[test]
    fn whiskers_of_tree_everything() {
        // A path is all whisker: shaving eats it entirely.
        let g = path(6).unwrap();
        let (count, _) = whisker_census(&g);
        assert_eq!(count, 6);
    }

    #[test]
    fn powerlaw_mle_detects_heavy_tail() {
        use crate::gen::random::barabasi_albert;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut r = StdRng::seed_from_u64(11);
        let g = barabasi_albert(&mut r, 2000, 3).unwrap();
        let alpha = powerlaw_exponent_mle(&g, 5).unwrap();
        // BA graphs have exponent ≈ 3; accept a generous band.
        assert!(alpha > 2.0 && alpha < 4.5, "alpha = {alpha}");
        // Regular graph: no tail beyond d_min → None or degenerate.
        let reg = complete(5).unwrap();
        assert!(powerlaw_exponent_mle(&reg, 10).is_none());
    }

    #[test]
    fn summary_display() {
        let g = lollipop(5, 3).unwrap();
        let s = summarize(&g);
        assert_eq!(s.n, 8);
        assert_eq!(s.components, 1);
        assert_eq!(s.whisker_nodes, 3);
        let text = s.to_string();
        assert!(text.contains("n=8"));
        assert!(text.contains("whiskers=3"));
    }
}
