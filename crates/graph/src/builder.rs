//! Mutable graph construction.
//!
//! Generators and IO accumulate edges into a [`GraphBuilder`] and then
//! freeze into the immutable CSR [`Graph`]. The builder tolerates
//! duplicate edges (merged at freeze time) and grows the node count on
//! demand, which keeps generator code simple.

use crate::csr::{Graph, NodeId};
use crate::Result;

/// An edge-list accumulator that freezes into a [`Graph`].
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(NodeId, NodeId, f64)>,
}

impl GraphBuilder {
    /// Empty builder with `n` pre-declared nodes.
    pub fn with_nodes(n: usize) -> Self {
        Self {
            n,
            edges: Vec::new(),
        }
    }

    /// Empty builder with no nodes (node count grows with edges).
    pub fn new() -> Self {
        Self::default()
    }

    /// Current node count.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of accumulated (possibly duplicate) edge records.
    pub fn edge_records(&self) -> usize {
        self.edges.len()
    }

    /// Ensure at least `n` nodes exist.
    pub fn grow_to(&mut self, n: usize) -> &mut Self {
        self.n = self.n.max(n);
        self
    }

    /// Add a fresh node and return its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = self.n as NodeId;
        self.n += 1;
        id
    }

    /// Add an undirected weighted edge, growing the node count if needed.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, w: f64) -> &mut Self {
        self.n = self.n.max(u.max(v) as usize + 1);
        self.edges.push((u, v, w));
        self
    }

    /// Add an unweighted (weight-1) edge.
    pub fn add_pair(&mut self, u: NodeId, v: NodeId) -> &mut Self {
        self.add_edge(u, v, 1.0)
    }

    /// Whether an edge record between `u` and `v` (either orientation)
    /// has been added. `O(edges)` — intended for generators that need
    /// occasional duplicate checks on small neighborhoods, not hot loops.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.edges
            .iter()
            .any(|&(a, b, _)| (a == u && b == v) || (a == v && b == u))
    }

    /// Append all edges of another builder, offsetting its node ids by
    /// `offset`. Useful for attaching whiskers/communities to a core.
    pub fn append_offset(&mut self, other: &GraphBuilder, offset: NodeId) -> &mut Self {
        self.grow_to(offset as usize + other.n);
        for &(u, v, w) in &other.edges {
            self.edges.push((u + offset, v + offset, w));
        }
        self
    }

    /// Freeze into an immutable validated [`Graph`].
    pub fn build(&self) -> Result<Graph> {
        Graph::from_edges(self.n, self.edges.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grows_with_edges() {
        let mut b = GraphBuilder::new();
        b.add_pair(0, 5);
        assert_eq!(b.n(), 6);
        let g = b.build().unwrap();
        assert_eq!(g.n(), 6);
        assert_eq!(g.m(), 1);
    }

    #[test]
    fn with_nodes_allows_isolated() {
        let b = GraphBuilder::with_nodes(4);
        let g = b.build().unwrap();
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 0);
    }

    #[test]
    fn add_node_sequences_ids() {
        let mut b = GraphBuilder::new();
        assert_eq!(b.add_node(), 0);
        assert_eq!(b.add_node(), 1);
        b.grow_to(10);
        assert_eq!(b.add_node(), 10);
    }

    #[test]
    fn has_edge_checks_both_orientations() {
        let mut b = GraphBuilder::new();
        b.add_pair(1, 2);
        assert!(b.has_edge(1, 2));
        assert!(b.has_edge(2, 1));
        assert!(!b.has_edge(0, 1));
    }

    #[test]
    fn append_offset_disjoint_union() {
        let mut core = GraphBuilder::new();
        core.add_pair(0, 1);
        let mut whisker = GraphBuilder::new();
        whisker.add_pair(0, 1);
        whisker.add_pair(1, 2);
        core.append_offset(&whisker, 2);
        let g = core.build().unwrap();
        assert_eq!(g.n(), 5);
        assert_eq!(g.m(), 3);
        assert!(g.has_edge(2, 3));
        assert!(g.has_edge(3, 4));
        assert!(!g.has_edge(1, 2));
    }

    #[test]
    fn duplicates_merge_at_build() {
        let mut b = GraphBuilder::new();
        b.add_pair(0, 1).add_pair(0, 1);
        assert_eq!(b.edge_records(), 2);
        let g = b.build().unwrap();
        assert_eq!(g.m(), 1);
        assert_eq!(g.edge_weight(0, 1), 2.0);
    }

    #[test]
    fn build_propagates_weight_errors() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1, -3.0);
        assert!(b.build().is_err());
    }
}
