//! Shared behavior for node-valued kernel results.
//!
//! Every local method (ACL push, hk-relax, Nibble) returns a sparse
//! vector over nodes as sorted `(node, value)` pairs plus some
//! labelling-independent scalars. Before this trait each result type
//! carried its own verbatim copies of `to_dense` / `map_back`;
//! [`NodeValued`] consolidates them so the sparse-support behavior is
//! written once and every result type gets the same semantics.

use crate::{NodeId, Permutation};

/// A kernel result whose payload is a sparse vector over nodes,
/// stored as sorted `(node, value)` pairs.
///
/// Implementors expose the support; densification, scaling, and
/// permutation unmapping come for free. A type whose *other* fields
/// also name nodes (e.g. a best-cluster set alongside the vector)
/// must override [`NodeValued::map_back`] to remap those fields too —
/// the default only remaps the support.
pub trait NodeValued: Clone {
    /// The sparse support, as sorted `(node, value)` pairs.
    fn node_values(&self) -> &[(NodeId, f64)];

    /// Mutable access to the support, for the provided combinators.
    fn node_values_mut(&mut self) -> &mut Vec<(NodeId, f64)>;

    /// Densify to a full-length vector of `n` entries (nodes outside
    /// the support are zero).
    fn to_dense(&self, n: usize) -> Vec<f64> {
        let mut v = vec![0.0; n];
        for &(u, x) in self.node_values() {
            v[u as usize] = x;
        }
        v
    }

    /// Scale every support value by `a` in place (e.g. to renormalize
    /// a truncated distribution); scalars are left untouched.
    fn scale(&mut self, a: f64) {
        for (_, x) in self.node_values_mut() {
            *x *= a;
        }
    }

    /// Sum of the support values (the retained probability mass for
    /// the diffusion methods).
    fn support_mass(&self) -> f64 {
        self.node_values().iter().map(|&(_, x)| x).sum()
    }

    /// Map a result computed on `g.permute(perm)` back to the original
    /// vertex ids. The default remaps the support and carries every
    /// other field over unchanged (scalars are layout-independent).
    fn map_back(&self, perm: &Permutation) -> Self {
        let mut out = self.clone();
        *out.node_values_mut() = perm.unmap_sparse(self.node_values());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, Default, PartialEq)]
    struct Toy {
        vector: Vec<(NodeId, f64)>,
        work: usize,
    }

    impl NodeValued for Toy {
        fn node_values(&self) -> &[(NodeId, f64)] {
            &self.vector
        }
        fn node_values_mut(&mut self) -> &mut Vec<(NodeId, f64)> {
            &mut self.vector
        }
    }

    #[test]
    fn dense_scale_mass() {
        let mut t = Toy {
            vector: vec![(1, 0.25), (3, 0.5)],
            work: 7,
        };
        assert_eq!(t.to_dense(5), vec![0.0, 0.25, 0.0, 0.5, 0.0]);
        assert!((t.support_mass() - 0.75).abs() < 1e-15);
        t.scale(2.0);
        assert_eq!(t.vector, vec![(1, 0.5), (3, 1.0)]);
        assert_eq!(t.work, 7, "scalars untouched by scale");
    }

    #[test]
    fn map_back_remaps_support_only() {
        // Rotation permutation on 3 nodes: new id i is old id (i+1)%3.
        let perm = Permutation::from_old_of_new(vec![1, 2, 0]).unwrap();
        let t = Toy {
            vector: vec![(0, 0.5), (1, 0.25), (2, 0.125)],
            work: 3,
        };
        let back = t.map_back(&perm);
        assert_eq!(back.work, 3, "scalars carry over");
        assert_eq!(
            back.vector,
            vec![(0, 0.125), (1, 0.5), (2, 0.25)],
            "support lands on the original ids, re-sorted"
        );
    }
}
