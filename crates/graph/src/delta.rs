//! A mutable edge-delta overlay over the immutable CSR [`Graph`].
//!
//! Production graphs mutate; the CSR does not. [`DeltaGraph`] bridges
//! the two: it borrows a base snapshot and accumulates edge inserts,
//! re-weights, and deletes in sorted per-node side-lists, giving
//! `O(log d)` edge lookup and merged neighbor iteration that is
//! **bit-compatible** with the CSR a fresh [`Graph::from_edges`] build
//! of the edited edge list would produce (same targets, same weights,
//! same degree sums in the same order). [`DeltaGraph::compact`]
//! performs exactly that rebuild and emits a [`Permutation`] relabeling
//! hook — the identity today, the seam through which a future
//! compaction that drops or renumbers vertices plugs into the existing
//! `map_back` plumbing.
//!
//! Snapshot semantics: the overlay is a *writer-side* structure. The
//! borrowed base and every compacted CSR are immutable snapshots, so a
//! reader holding one (stamped with an epoch, as the serve engine does)
//! never observes a half-applied delta — writers append to the overlay
//! and publish a new snapshot atomically via `compact`. The
//! [`DeltaGraph::version`] counter advances once per applied mutation;
//! [`DeltaGraph::net_delta`] summarizes the accumulated edits as one
//! [`EdgeDelta`] record per changed edge, the input contract of the
//! push-style residual repair kernel in `acir-local`.

use crate::permute::Permutation;
use crate::{Graph, GraphError, NodeId, Result};
use std::collections::BTreeMap;

/// One edge mutation to apply to a [`DeltaGraph`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EdgeOp {
    /// Insert the edge `{u, v}` with `weight`, or overwrite its weight
    /// if it already exists.
    Insert {
        /// One endpoint.
        u: NodeId,
        /// The other endpoint (`u == v` is a self-loop).
        v: NodeId,
        /// New edge weight; must be finite and positive.
        weight: f64,
    },
    /// Remove the edge `{u, v}` (a no-op if absent).
    Delete {
        /// One endpoint.
        u: NodeId,
        /// The other endpoint.
        v: NodeId,
    },
}

/// The net effect of the accumulated mutations on one edge, in the
/// canonical `u <= v` orientation: the weight the base graph held
/// (`None` if the edge did not exist) and the weight the merged view
/// holds now (`None` if deleted). This is the record the residual
/// repair kernel consumes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeDelta {
    /// Smaller endpoint.
    pub u: NodeId,
    /// Larger endpoint (`u == v` for self-loops).
    pub v: NodeId,
    /// Weight in the base snapshot (`None` = edge absent).
    pub old: Option<f64>,
    /// Weight in the merged view (`None` = edge deleted).
    pub new: Option<f64>,
}

impl EdgeDelta {
    /// Net weighted-degree change this edit contributes at endpoint
    /// `c` (zero if `c` is not an endpoint). Self-loops contribute
    /// their weight once, matching the CSR degree convention.
    pub fn degree_change_at(&self, c: NodeId) -> f64 {
        if c != self.u && c != self.v {
            return 0.0;
        }
        self.new.unwrap_or(0.0) - self.old.unwrap_or(0.0)
    }
}

/// A sorted per-node overlay row: `(target, Some(weight))` overrides
/// the base arc's weight (or inserts a new arc); `(target, None)`
/// tombstones it.
type OverlayRow = Vec<(NodeId, Option<f64>)>;

/// An edge-insert/delete overlay over a borrowed CSR snapshot. See the
/// [module docs](self).
#[derive(Debug, Clone)]
pub struct DeltaGraph<'g> {
    base: &'g Graph,
    overlay: BTreeMap<NodeId, OverlayRow>,
    /// Merged weighted degree of every touched node, recomputed after
    /// each mutation by summing the merged row in ascending-target
    /// order — the same order `Graph::from_edges` sums rows in, so the
    /// cached value is bit-identical to the compacted CSR's.
    degrees: BTreeMap<NodeId, f64>,
    version: u64,
}

impl<'g> DeltaGraph<'g> {
    /// An empty overlay over `base`.
    pub fn new(base: &'g Graph) -> Self {
        Self {
            base,
            overlay: BTreeMap::new(),
            degrees: BTreeMap::new(),
            version: 0,
        }
    }

    /// The borrowed base snapshot.
    pub fn base(&self) -> &Graph {
        self.base
    }

    /// Number of nodes (the overlay never adds or removes vertices;
    /// relabeling across such compactions is what the [`Permutation`]
    /// hook of [`Self::compact`] exists for).
    pub fn n(&self) -> usize {
        self.base.n()
    }

    /// Write cursor: advances once per applied mutation. Readers pair
    /// it with an immutable snapshot to detect concurrent edits.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Has any mutation been applied?
    pub fn is_dirty(&self) -> bool {
        !self.overlay.is_empty()
    }

    /// Nodes with at least one overlaid arc, ascending.
    pub fn touched_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.overlay.keys().copied()
    }

    /// Apply one [`EdgeOp`]; returns the edge's previous merged weight
    /// (`None` if it did not exist).
    pub fn apply(&mut self, op: &EdgeOp) -> Result<Option<f64>> {
        match *op {
            EdgeOp::Insert { u, v, weight } => self.insert_edge(u, v, weight),
            EdgeOp::Delete { u, v } => self.delete_edge(u, v),
        }
    }

    /// Insert `{u, v}` with `weight`, overwriting an existing weight.
    /// Returns the previous merged weight, if any.
    pub fn insert_edge(&mut self, u: NodeId, v: NodeId, weight: f64) -> Result<Option<f64>> {
        self.check_node(u)?;
        self.check_node(v)?;
        if !(weight.is_finite() && weight > 0.0) {
            return Err(GraphError::BadWeight(weight));
        }
        let old = self.lookup(u, v);
        self.set_overlay(u, v, Some(weight));
        if u != v {
            self.set_overlay(v, u, Some(weight));
        }
        self.refresh_degree(u);
        if u != v {
            self.refresh_degree(v);
        }
        self.version += 1;
        Ok(old)
    }

    /// Delete `{u, v}`. Returns the weight it had, or `None` (and
    /// leaves the overlay untouched) if the edge does not exist.
    pub fn delete_edge(&mut self, u: NodeId, v: NodeId) -> Result<Option<f64>> {
        self.check_node(u)?;
        self.check_node(v)?;
        let old = self.lookup(u, v);
        if old.is_none() {
            return Ok(None);
        }
        self.set_overlay(u, v, None);
        if u != v {
            self.set_overlay(v, u, None);
        }
        self.refresh_degree(u);
        if u != v {
            self.refresh_degree(v);
        }
        self.version += 1;
        Ok(old)
    }

    /// Merged weight of `{u, v}`, or 0.0 if absent. `O(log d)`:
    /// a binary search of the overlay row, then of the CSR row.
    pub fn edge_weight(&self, u: NodeId, v: NodeId) -> f64 {
        self.lookup(u, v).unwrap_or(0.0)
    }

    /// Whether `{u, v}` is an edge in the merged view.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.edge_weight(u, v) > 0.0
    }

    /// Merged weighted degree of `u` — bit-identical to what the
    /// compacted CSR reports.
    pub fn degree(&self, u: NodeId) -> f64 {
        match self.degrees.get(&u) {
            Some(&d) => d,
            None => self.base.degree(u),
        }
    }

    /// Merged total volume `Σ_u d_u`, summed in node order — the same
    /// order `Graph::from_edges` uses, so bit-identical to the
    /// compacted CSR's.
    pub fn total_volume(&self) -> f64 {
        if self.overlay.is_empty() {
            return self.base.total_volume();
        }
        (0..self.n() as NodeId).map(|u| self.degree(u)).sum()
    }

    /// Iterate over the merged `(neighbor, weight)` row of `u`, sorted
    /// by neighbor — element-for-element and bit-for-bit what the
    /// compacted CSR's `neighbors(u)` yields.
    pub fn neighbors(&self, u: NodeId) -> MergedNeighbors<'_> {
        MergedNeighbors {
            base: Box::new(self.base.neighbors(u)),
            base_peek: None,
            over: self
                .overlay
                .get(&u)
                .map_or(&[][..], |row| row.as_slice())
                .iter(),
            over_peek: None,
            primed: false,
        }
    }

    /// The accumulated edits as one canonical record per changed edge
    /// (ascending `(u, v)`, `u <= v`), dropping edits that net out to
    /// no change. This is the delta the residual repair kernel and the
    /// serve engine's sketch/answer maintenance consume.
    pub fn net_delta(&self) -> Vec<EdgeDelta> {
        let mut out = Vec::new();
        for (&u, row) in &self.overlay {
            for &(v, new) in row {
                if v < u {
                    continue; // recorded once, from the smaller endpoint
                }
                let old = match self.base.edge_weight(u, v) {
                    w if w > 0.0 => Some(w),
                    _ => None,
                };
                let changed = match (old, new) {
                    (Some(a), Some(b)) => a.to_bits() != b.to_bits(),
                    (None, None) => false,
                    _ => true,
                };
                if changed {
                    out.push(EdgeDelta { u, v, old, new });
                }
            }
        }
        out
    }

    /// Rebuild the CSR from the merged view and emit the relabeling
    /// hook. The rebuilt graph is exactly `Graph::from_edges` of the
    /// edited edge list — bit-identical to a fresh build — and the
    /// permutation is the identity (the overlay neither adds nor drops
    /// vertices); callers should still route results through it, so a
    /// future compaction that renumbers vertices is a local change.
    pub fn compact(&self) -> Result<(Graph, Permutation)> {
        let n = self.n();
        let mut edges: Vec<(NodeId, NodeId, f64)> = Vec::new();
        for u in 0..n as NodeId {
            for (v, w) in self.neighbors(u) {
                if v >= u {
                    edges.push((u, v, w));
                }
            }
        }
        let g = Graph::from_edges(n, edges)?;
        Ok((g, Permutation::identity(n)))
    }

    fn check_node(&self, u: NodeId) -> Result<()> {
        if u as usize >= self.n() {
            return Err(GraphError::NodeOutOfRange {
                node: u,
                n: self.n(),
            });
        }
        Ok(())
    }

    /// Merged weight lookup as an `Option`.
    fn lookup(&self, u: NodeId, v: NodeId) -> Option<f64> {
        if let Some(row) = self.overlay.get(&u) {
            if let Ok(k) = row.binary_search_by_key(&v, |e| e.0) {
                return row[k].1;
            }
        }
        match self.base.edge_weight(u, v) {
            w if w > 0.0 => Some(w),
            _ => None,
        }
    }

    fn set_overlay(&mut self, u: NodeId, target: NodeId, val: Option<f64>) {
        let row = self.overlay.entry(u).or_default();
        match row.binary_search_by_key(&target, |e| e.0) {
            Ok(k) => row[k].1 = val,
            Err(k) => row.insert(k, (target, val)),
        }
    }

    fn refresh_degree(&mut self, u: NodeId) {
        let d: f64 = self.neighbors(u).map(|(_, w)| w).sum();
        self.degrees.insert(u, d);
    }
}

/// Iterator over a [`DeltaGraph`] node's merged `(neighbor, weight)`
/// row: a two-pointer merge of the CSR row and the overlay side-list,
/// both sorted by target. Overlay entries override (or tombstone) base
/// arcs with the same target.
pub struct MergedNeighbors<'a> {
    base: Box<dyn Iterator<Item = (NodeId, f64)> + 'a>,
    base_peek: Option<(NodeId, f64)>,
    over: std::slice::Iter<'a, (NodeId, Option<f64>)>,
    over_peek: Option<(NodeId, Option<f64>)>,
    primed: bool,
}

impl Iterator for MergedNeighbors<'_> {
    type Item = (NodeId, f64);

    fn next(&mut self) -> Option<Self::Item> {
        if !self.primed {
            self.base_peek = self.base.next();
            self.over_peek = self.over.next().copied();
            self.primed = true;
        }
        loop {
            match (self.base_peek, self.over_peek) {
                (Some((bv, bw)), Some((ov, val))) => {
                    if bv < ov {
                        self.base_peek = self.base.next();
                        return Some((bv, bw));
                    }
                    if bv == ov {
                        self.base_peek = self.base.next();
                    }
                    self.over_peek = self.over.next().copied();
                    match val {
                        Some(w) => return Some((ov, w)),
                        None => continue, // tombstoned arc
                    }
                }
                (Some((bv, bw)), None) => {
                    self.base_peek = self.base.next();
                    return Some((bv, bw));
                }
                (None, Some((ov, val))) => {
                    self.over_peek = self.over.next().copied();
                    match val {
                        Some(w) => return Some((ov, w)),
                        None => continue,
                    }
                }
                (None, None) => return None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use crate::gen::deterministic::{barbell, cycle};

    fn bits(it: impl Iterator<Item = (NodeId, f64)>) -> Vec<(NodeId, u64)> {
        it.map(|(v, w)| (v, w.to_bits())).collect()
    }

    fn assert_bitwise_same(a: &Graph, b: &Graph) {
        assert_eq!(a.n(), b.n());
        assert_eq!(a.arc_count(), b.arc_count());
        for u in 0..a.n() as NodeId {
            assert_eq!(bits(a.neighbors(u)), bits(b.neighbors(u)), "row {u}");
            assert_eq!(a.degree(u).to_bits(), b.degree(u).to_bits(), "degree {u}");
        }
        assert_eq!(a.total_volume().to_bits(), b.total_volume().to_bits());
    }

    #[test]
    fn empty_overlay_reads_like_the_base() {
        let g = barbell(5, 2).unwrap();
        let d = DeltaGraph::new(&g);
        assert!(!d.is_dirty());
        assert_eq!(d.version(), 0);
        for u in 0..g.n() as NodeId {
            assert_eq!(bits(d.neighbors(u)), bits(g.neighbors(u)));
            assert_eq!(d.degree(u).to_bits(), g.degree(u).to_bits());
        }
        assert_eq!(d.total_volume().to_bits(), g.total_volume().to_bits());
        assert!(d.net_delta().is_empty());
        let (c, p) = d.compact().unwrap();
        assert!(p.is_identity());
        assert_bitwise_same(&c, &g);
    }

    #[test]
    fn insert_delete_reweight_round_trip() {
        let g = cycle(6).unwrap();
        let mut d = DeltaGraph::new(&g);
        // Insert a chord.
        assert_eq!(d.insert_edge(0, 3, 2.0).unwrap(), None);
        assert_eq!(d.edge_weight(0, 3), 2.0);
        assert_eq!(d.edge_weight(3, 0), 2.0);
        assert_eq!(d.degree(0), g.degree(0) + 2.0);
        // Reweight an existing base edge.
        assert_eq!(d.insert_edge(1, 2, 5.0).unwrap(), Some(1.0));
        assert_eq!(d.edge_weight(2, 1), 5.0);
        // Delete a base edge.
        assert_eq!(d.delete_edge(4, 5).unwrap(), Some(1.0));
        assert!(!d.has_edge(4, 5));
        assert_eq!(d.degree(4), 1.0);
        // Deleting a non-edge is a no-op.
        let v = d.version();
        assert_eq!(d.delete_edge(0, 2).unwrap(), None);
        assert_eq!(d.version(), v);

        let delta = d.net_delta();
        assert_eq!(
            delta,
            vec![
                EdgeDelta {
                    u: 0,
                    v: 3,
                    old: None,
                    new: Some(2.0)
                },
                EdgeDelta {
                    u: 1,
                    v: 2,
                    old: Some(1.0),
                    new: Some(5.0)
                },
                EdgeDelta {
                    u: 4,
                    v: 5,
                    old: Some(1.0),
                    new: None
                },
            ]
        );
        assert_eq!(delta[0].degree_change_at(0), 2.0);
        assert_eq!(delta[2].degree_change_at(5), -1.0);
        assert_eq!(delta[2].degree_change_at(0), 0.0);
    }

    #[test]
    fn merged_view_bit_identical_to_fresh_build() {
        let g = barbell(6, 3).unwrap();
        let mut d = DeltaGraph::new(&g);
        d.insert_edge(0, 14, 0.5).unwrap();
        d.delete_edge(0, 1).unwrap();
        d.insert_edge(3, 3, 1.25).unwrap(); // self-loop
        d.insert_edge(2, 4, 7.0).unwrap(); // reweight inside the clique
        d.delete_edge(6, 7).unwrap(); // bridge segment edge
                                      // Reference: fresh CSR from the edited edge list.
        let mut edges: Vec<(NodeId, NodeId, f64)> = g
            .edges()
            .filter(|&(u, v, _)| !((u, v) == (0, 1) || (u, v) == (6, 7)))
            .map(|(u, v, w)| {
                if (u, v) == (2, 4) {
                    (u, v, 7.0)
                } else {
                    (u, v, w)
                }
            })
            .collect();
        edges.push((0, 14, 0.5));
        edges.push((3, 3, 1.25));
        let fresh = Graph::from_edges(g.n(), edges).unwrap();
        for u in 0..g.n() as NodeId {
            assert_eq!(bits(d.neighbors(u)), bits(fresh.neighbors(u)), "row {u}");
            assert_eq!(d.degree(u).to_bits(), fresh.degree(u).to_bits());
        }
        assert_eq!(d.total_volume().to_bits(), fresh.total_volume().to_bits());
        let (compacted, perm) = d.compact().unwrap();
        assert!(perm.is_identity());
        assert_bitwise_same(&compacted, &fresh);
    }

    #[test]
    fn lookup_is_consistent_after_overwrites() {
        let g = cycle(4).unwrap();
        let mut d = DeltaGraph::new(&g);
        d.insert_edge(0, 2, 1.0).unwrap();
        d.delete_edge(0, 2).unwrap();
        assert!(!d.has_edge(0, 2));
        assert!(d.net_delta().is_empty(), "insert+delete nets out");
        d.insert_edge(0, 2, 3.0).unwrap();
        assert_eq!(d.edge_weight(0, 2), 3.0);
        assert_eq!(d.net_delta().len(), 1);
        // Re-inserting the base weight of an existing edge nets out too.
        d.insert_edge(0, 1, 2.0).unwrap();
        d.insert_edge(0, 1, 1.0).unwrap();
        assert_eq!(d.net_delta().len(), 1);
    }

    #[test]
    fn validates_nodes_and_weights() {
        let g = cycle(4).unwrap();
        let mut d = DeltaGraph::new(&g);
        assert!(d.insert_edge(0, 9, 1.0).is_err());
        assert!(d.insert_edge(9, 0, 1.0).is_err());
        assert!(d.insert_edge(0, 1, 0.0).is_err());
        assert!(d.insert_edge(0, 1, f64::NAN).is_err());
        assert!(d.insert_edge(0, 1, -1.0).is_err());
        assert!(d.delete_edge(9, 0).is_err());
        assert_eq!(d.version(), 0);
        assert!(!d.is_dirty());
    }

    #[test]
    fn touched_nodes_and_apply() {
        let g = cycle(5).unwrap();
        let mut d = DeltaGraph::new(&g);
        d.apply(&EdgeOp::Insert {
            u: 4,
            v: 1,
            weight: 1.0,
        })
        .unwrap();
        d.apply(&EdgeOp::Delete { u: 2, v: 3 }).unwrap();
        let touched: Vec<NodeId> = d.touched_nodes().collect();
        assert_eq!(touched, vec![1, 2, 3, 4]);
        assert_eq!(d.version(), 2);
    }
}
