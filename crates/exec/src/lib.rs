//! # acir-exec
//!
//! The deterministic parallel execution layer of the ACIR workspace.
//!
//! The paper's thesis is that approximation makes very large-scale
//! analysis feasible "in a reasonable length of time ... on a
//! realistic machine" (§2) — and on a realistic machine that means
//! using every core. But the workspace also promises exact
//! reproducibility (`tests/determinism.rs`): every result must be a
//! pure function of its inputs and seeds, never of the thread count or
//! the scheduler. This crate reconciles the two with one rule:
//!
//! > **Work decomposition is a function of the input alone.**
//!
//! Every primitive here splits its input into chunks whose boundaries
//! depend only on the input size (see [`chunk_ranges`]) — never on
//! [`ExecPool::threads`]. Chunks are computed independently (each one
//! sequentially, in index order) and combined in ascending chunk
//! order. Threads only decide *who* computes a chunk, not *what* a
//! chunk is or *when* its result is folded in, so every result is
//! bit-identical from 1 to N threads.
//!
//! ## Pool model
//!
//! [`ExecPool`] is a reusable execution policy: it records the worker
//! count (from `ACIR_THREADS` or the machine) and spins up scoped
//! worker threads per parallel region via [`std::thread::scope`].
//! Scoped spawning is what lets workers borrow the caller's data with
//! no `unsafe`, no `'static` bounds, and no channels; the spawn cost
//! (tens of microseconds) is amortized by only going parallel when a
//! region has more than one chunk of work, and callers size chunks so
//! each is worth far more than a spawn (see the `min_chunk` arguments).
//! Workers pull chunk indices from a shared atomic counter, so uneven
//! chunks still balance across threads.
//!
//! ## Primitives
//!
//! * [`ExecPool::par_for`] — index-parallel loop;
//! * [`ExecPool::par_map`] — map a slice to a `Vec`, input order;
//! * [`ExecPool::par_reduce`] — the deterministic reduction: chunk
//!   partials folded in ascending chunk order;
//! * [`ExecPool::par_chunks_mut`] / [`ExecPool::par_zip_mut`] —
//!   mutate disjoint chunks of a slice (optionally zipped with an
//!   equally-chunked read-only slice).
//! * [`ExecPool::try_par_map`] — [`par_map`](ExecPool::par_map) with a
//!   per-item [`panic_fence`]: a panicking item yields `Err(message)`
//!   in its slot instead of tearing down the region. This is the
//!   panic-isolation seam supervised servers build on: a worker that
//!   dies becomes a certified `diverged` outcome, never a crash.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub mod spmv;

pub use spmv::{
    current_spmv_layout, spmv_layout_scope, SpmvLayout, SpmvLayoutScope, SPMV_LAYOUT_ENV,
};

/// Run `f`, converting a panic into `Err(message)`.
///
/// Safe-code wrapper over [`std::panic::catch_unwind`]: the supervised
/// execution seam for code that must never crash the process (serve
/// workers, chaos tests, batch items). The payload is flattened to a
/// `String` via [`panic_message`] so callers can thread the cause into
/// a `Diagnostics` event trail.
///
/// The standard panic hook still runs (so aborting panics keep their
/// backtrace); tests that inject panics on purpose may want
/// [`std::panic::set_hook`] to silence it.
pub fn panic_fence<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)).map_err(|p| panic_message(p.as_ref()))
}

/// Best-effort human-readable form of a panic payload (`&str` and
/// `String` payloads verbatim, anything else a placeholder).
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Environment variable controlling the default worker count.
pub const THREADS_ENV: &str = "ACIR_THREADS";

/// Hard cap on the number of chunks a single region is split into.
///
/// Bounds per-chunk bookkeeping (and, for reductions, the number of
/// partials) while leaving enough slack to balance load on any
/// realistic core count. Part of the determinism contract: the cap is
/// a constant, so chunk boundaries stay a pure function of input size.
pub const MAX_CHUNKS: usize = 64;

/// A reusable parallel execution policy.
///
/// Cheap to construct and copy; holds no OS resources. Worker threads
/// are scoped to each parallel region (see the crate docs for why).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecPool {
    threads: usize,
}

impl ExecPool {
    /// A pool with exactly `threads` workers (`0` is clamped to 1).
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// The ambient pool: `ACIR_THREADS` if set to a positive integer,
    /// otherwise [`std::thread::available_parallelism`].
    ///
    /// The environment is re-read on every call (it is a handful of
    /// nanoseconds next to any parallel region worth running), so
    /// tests and binaries can switch thread counts at runtime without
    /// process-global state.
    pub fn from_env() -> Self {
        let threads = std::env::var(THREADS_ENV)
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        Self { threads }
    }

    /// Like [`ExecPool::from_env`], but fall back to `default` (instead
    /// of the machine parallelism) when `ACIR_THREADS` is unset or
    /// invalid. For callers whose options struct carries its own thread
    /// count: the environment wins when present, so one variable can
    /// steer a whole pipeline.
    pub fn from_env_or(default: usize) -> Self {
        let threads = std::env::var(THREADS_ENV)
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(default);
        Self::with_threads(threads)
    }

    /// Number of worker threads this pool will use (≥ 1).
    #[inline]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run `jobs` closures indexed `0..n_jobs`; workers claim indices
    /// from a shared counter. Blocks until all jobs finish.
    ///
    /// This is the engine under every primitive; `f` must be safe to
    /// call concurrently for distinct indices.
    fn run_indexed<F>(&self, n_jobs: usize, f: F)
    where
        F: Fn(usize) + Sync,
    {
        let workers = self.threads.min(n_jobs);
        if workers <= 1 {
            for i in 0..n_jobs {
                f(i);
            }
            return;
        }
        let next = AtomicUsize::new(0);
        let work = |_w: usize| loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= n_jobs {
                break;
            }
            f(i);
        };
        std::thread::scope(|s| {
            for w in 1..workers {
                let work = &work;
                s.spawn(move || work(w));
            }
            work(0); // the calling thread participates
        });
    }

    /// Index-parallel loop: call `f(i)` for every `i in 0..len`.
    ///
    /// `min_chunk` is the smallest number of indices worth handing to a
    /// worker; indices within a chunk run sequentially in order. `f`
    /// must be independent across indices (same contract as the other
    /// primitives: chunking is invisible in the result).
    pub fn par_for<F>(&self, len: usize, min_chunk: usize, f: F)
    where
        F: Fn(usize) + Sync,
    {
        let ranges = chunk_ranges(len, min_chunk);
        self.run_indexed(ranges.len(), |c| {
            for i in ranges[c].clone() {
                f(i);
            }
        });
    }

    /// Map `items` through `f`, returning results in input order.
    pub fn par_map<T, U, F>(&self, items: &[T], min_chunk: usize, f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(&T) -> U + Sync,
    {
        let ranges = chunk_ranges(items.len(), min_chunk);
        let slots: Vec<Mutex<Option<Vec<U>>>> =
            (0..ranges.len()).map(|_| Mutex::new(None)).collect();
        self.run_indexed(ranges.len(), |c| {
            let part: Vec<U> = items[ranges[c].clone()].iter().map(&f).collect();
            *slots[c].lock().expect("exec: poisoned result slot") = Some(part);
        });
        let mut out = Vec::with_capacity(items.len());
        for slot in slots {
            out.extend(
                slot.into_inner()
                    .expect("exec: poisoned result slot")
                    .expect("exec: missing chunk result"),
            );
        }
        out
    }

    /// Like [`ExecPool::par_map`], but each item runs behind a
    /// [`panic_fence`]: an item whose closure panics lands as
    /// `Err(panic message)` in its own slot, and every other item —
    /// including the rest of the panicking item's chunk — still
    /// completes. Result order matches input order, and the
    /// `Ok` results are bit-identical to [`par_map`](ExecPool::par_map)
    /// of the same closure (the fence adds no reordering).
    pub fn try_par_map<T, U, F>(
        &self,
        items: &[T],
        min_chunk: usize,
        f: F,
    ) -> Vec<Result<U, String>>
    where
        T: Sync,
        U: Send,
        F: Fn(&T) -> U + Sync,
    {
        self.par_map(items, min_chunk, |item| panic_fence(|| f(item)))
    }

    /// Deterministic reduction: `map` each chunk range to a partial,
    /// then `fold` the partials **in ascending chunk order**.
    ///
    /// Because the chunk boundaries are fixed by `(len, min_chunk)` and
    /// the fold order is fixed by chunk index, the result — including
    /// its floating-point rounding — is independent of the thread
    /// count. Returns `None` for an empty range.
    pub fn par_reduce<A, M, F>(
        &self,
        len: usize,
        min_chunk: usize,
        map: M,
        mut fold: F,
    ) -> Option<A>
    where
        A: Send,
        M: Fn(Range<usize>) -> A + Sync,
        F: FnMut(A, A) -> A,
    {
        let ranges = chunk_ranges(len, min_chunk);
        if ranges.is_empty() {
            return None;
        }
        let slots: Vec<Mutex<Option<A>>> = (0..ranges.len()).map(|_| Mutex::new(None)).collect();
        self.run_indexed(ranges.len(), |c| {
            *slots[c].lock().expect("exec: poisoned result slot") = Some(map(ranges[c].clone()));
        });
        let mut acc: Option<A> = None;
        for slot in slots {
            let part = slot
                .into_inner()
                .expect("exec: poisoned result slot")
                .expect("exec: missing chunk result");
            acc = Some(match acc {
                Some(a) => fold(a, part),
                None => part,
            });
        }
        acc
    }

    /// Mutate `data` in parallel, one disjoint chunk per job. `f`
    /// receives the chunk's starting index and the chunk itself.
    pub fn par_chunks_mut<T, F>(&self, data: &mut [T], min_chunk: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        let ranges = chunk_ranges(data.len(), min_chunk);
        let lens: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
        self.par_parts_mut(data, &lens, |c, chunk| f(ranges[c].start, chunk));
    }

    /// Mutate `data` in parallel split into caller-defined consecutive
    /// parts of lengths `lens` (which must sum to `data.len()`); `f`
    /// receives each part's index and slice.
    ///
    /// This is the escape hatch for decompositions that [`chunk_ranges`]
    /// cannot express — e.g. the nnz-balanced row chunks of a CSR
    /// matrix, where part lengths come from the matrix structure. The
    /// caller owns the determinism obligation: `lens` must be a pure
    /// function of the input, never of [`ExecPool::threads`].
    pub fn par_parts_mut<T, F>(&self, data: &mut [T], lens: &[usize], f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        assert_eq!(
            lens.iter().sum::<usize>(),
            data.len(),
            "par_parts_mut: part lengths must tile the slice"
        );
        let mut parts: Vec<Mutex<Option<&mut [T]>>> = Vec::with_capacity(lens.len());
        let mut rest = data;
        for &len in lens {
            let (head, tail) = rest.split_at_mut(len);
            parts.push(Mutex::new(Some(head)));
            rest = tail;
        }
        self.run_indexed(parts.len(), |c| {
            let chunk = parts[c]
                .lock()
                .expect("exec: poisoned part slot")
                .take()
                .expect("exec: part claimed twice");
            f(c, chunk);
        });
    }

    /// Mutate `dst` in parallel alongside the equally-long `src`,
    /// chunked with identical boundaries: `f(dst_chunk, src_chunk)`.
    ///
    /// Panics if the lengths differ.
    pub fn par_zip_mut<T, U, F>(&self, dst: &mut [T], src: &[U], min_chunk: usize, f: F)
    where
        T: Send,
        U: Sync,
        F: Fn(&mut [T], &[U]) + Sync,
    {
        assert_eq!(dst.len(), src.len(), "par_zip_mut: length mismatch");
        self.par_chunks_mut(dst, min_chunk, |start, chunk| {
            f(chunk, &src[start..start + chunk.len()]);
        });
    }
}

impl Default for ExecPool {
    fn default() -> Self {
        Self::from_env()
    }
}

/// Split `0..len` into chunks of at least `min_chunk` indices (except
/// possibly a short final input), at most [`MAX_CHUNKS`] chunks total,
/// as evenly as possible.
///
/// **Determinism contract:** the boundaries are a pure function of
/// `(len, min_chunk)` — thread counts never enter. Every parallel
/// primitive in this crate derives its work decomposition from this
/// function (or an equivalent input-only rule, e.g. the nnz-balanced
/// row chunks of `acir-linalg`'s CSR kernels).
pub fn chunk_ranges(len: usize, min_chunk: usize) -> Vec<Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let min_chunk = min_chunk.max(1);
    let n_chunks = (len / min_chunk).clamp(1, MAX_CHUNKS);
    let base = len / n_chunks;
    let rem = len % n_chunks;
    let mut out = Vec::with_capacity(n_chunks);
    let mut start = 0usize;
    for c in 0..n_chunks {
        let size = base + usize::from(c < rem);
        out.push(start..start + size);
        start += size;
    }
    debug_assert_eq!(start, len);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_ranges_tile_exactly() {
        for len in [0usize, 1, 2, 7, 64, 65, 1000, 12345] {
            for min_chunk in [1usize, 3, 16, 1024] {
                let ranges = chunk_ranges(len, min_chunk);
                let mut expect = 0usize;
                for r in &ranges {
                    assert_eq!(r.start, expect, "gap at len={len} min={min_chunk}");
                    assert!(!r.is_empty());
                    expect = r.end;
                }
                assert_eq!(expect, len);
                assert!(ranges.len() <= MAX_CHUNKS);
                if len > 0 {
                    // Balanced: sizes differ by at most one.
                    let sizes: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
                    let (lo, hi) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                    assert!(hi - lo <= 1);
                }
            }
        }
    }

    #[test]
    fn chunk_ranges_ignore_thread_count_by_construction() {
        // Same input → same chunks, regardless of any pool.
        assert_eq!(chunk_ranges(1000, 8), chunk_ranges(1000, 8));
        assert_eq!(chunk_ranges(100, 200).len(), 1);
    }

    #[test]
    fn from_env_reads_and_clamps() {
        std::env::set_var(THREADS_ENV, "3");
        assert_eq!(ExecPool::from_env().threads(), 3);
        std::env::set_var(THREADS_ENV, "0");
        assert!(ExecPool::from_env().threads() >= 1);
        std::env::set_var(THREADS_ENV, "not a number");
        assert!(ExecPool::from_env().threads() >= 1);
        std::env::remove_var(THREADS_ENV);
        assert!(ExecPool::from_env().threads() >= 1);
        assert_eq!(ExecPool::with_threads(0).threads(), 1);
        // from_env_or: default fills in when the variable is absent,
        // the environment wins when present.
        assert_eq!(ExecPool::from_env_or(6).threads(), 6);
        assert_eq!(ExecPool::from_env_or(0).threads(), 1);
        std::env::set_var(THREADS_ENV, "2");
        assert_eq!(ExecPool::from_env_or(6).threads(), 2);
        std::env::remove_var(THREADS_ENV);
    }

    #[test]
    fn par_for_covers_every_index_once() {
        for threads in [1usize, 2, 4, 9] {
            let pool = ExecPool::with_threads(threads);
            let hits: Vec<AtomicUsize> = (0..500).map(|_| AtomicUsize::new(0)).collect();
            pool.par_for(hits.len(), 7, |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        }
    }

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<u64> = (0..997).collect();
        for threads in [1usize, 2, 8] {
            let pool = ExecPool::with_threads(threads);
            let out = pool.par_map(&items, 5, |&x| x * x);
            let expect: Vec<u64> = items.iter().map(|&x| x * x).collect();
            assert_eq!(out, expect);
        }
        // Empty input.
        let out: Vec<u64> = ExecPool::with_threads(4).par_map(&[] as &[u64], 1, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn par_reduce_is_bit_identical_across_thread_counts() {
        // Floating-point summation order is fixed by chunk order, so
        // the rounding is too.
        let xs: Vec<f64> = (0..10_000)
            .map(|i| ((i * 37) % 101) as f64 * 0.1 - 3.7)
            .collect();
        let sum_with = |threads: usize| {
            ExecPool::with_threads(threads)
                .par_reduce(xs.len(), 64, |r| xs[r].iter().sum::<f64>(), |a, b| a + b)
                .unwrap()
        };
        let s1 = sum_with(1);
        for threads in [2usize, 3, 4, 16] {
            let st = sum_with(threads);
            assert_eq!(s1.to_bits(), st.to_bits(), "threads={threads}");
        }
        // Empty reduction.
        assert!(ExecPool::with_threads(4)
            .par_reduce(0, 1, |_| 0.0f64, |a, b| a + b)
            .is_none());
    }

    #[test]
    fn par_chunks_mut_touches_each_element_once() {
        for threads in [1usize, 2, 6] {
            let pool = ExecPool::with_threads(threads);
            let mut data = vec![0u32; 1003];
            pool.par_chunks_mut(&mut data, 10, |start, chunk| {
                for (k, x) in chunk.iter_mut().enumerate() {
                    *x += (start + k) as u32 + 1;
                }
            });
            assert!(data.iter().enumerate().all(|(i, &x)| x == i as u32 + 1));
        }
    }

    #[test]
    fn par_zip_mut_pairs_equal_chunks() {
        let src: Vec<f64> = (0..4096).map(|i| i as f64).collect();
        let mut dst = vec![1.0f64; 4096];
        ExecPool::with_threads(4).par_zip_mut(&mut dst, &src, 32, |d, s| {
            for (di, si) in d.iter_mut().zip(s) {
                *di += 2.0 * si;
            }
        });
        assert!(dst
            .iter()
            .enumerate()
            .all(|(i, &x)| x == 1.0 + 2.0 * i as f64));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn par_zip_mut_rejects_length_mismatch() {
        let mut dst = vec![0.0; 3];
        ExecPool::with_threads(2).par_zip_mut(&mut dst, &[1.0, 2.0], 1, |_, _| {});
    }

    #[test]
    fn panic_fence_catches_and_reports() {
        assert_eq!(panic_fence(|| 5), Ok(5));
        let quiet = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let e = panic_fence(|| -> u32 { panic!("boom {}", 7) });
        let s = panic_fence(|| -> u32 { panic!("literal") });
        std::panic::set_hook(quiet);
        assert_eq!(e, Err("boom 7".to_string()));
        assert_eq!(s, Err("literal".to_string()));
    }

    #[test]
    fn try_par_map_isolates_panicking_items() {
        let quiet = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let items: Vec<u64> = (0..200).collect();
        for threads in [1usize, 2, 4] {
            let pool = ExecPool::with_threads(threads);
            let out = pool.try_par_map(&items, 7, |&x| {
                assert!(x % 31 != 3, "injected fault at {x}");
                x * 2
            });
            for (i, r) in out.iter().enumerate() {
                if items[i] % 31 == 3 {
                    let msg = r.as_ref().unwrap_err();
                    assert!(msg.contains("injected fault"), "got {msg:?}");
                } else {
                    // Ok items bit-identical to the plain path.
                    assert_eq!(*r, Ok(items[i] * 2), "threads={threads} i={i}");
                }
            }
        }
        std::panic::set_hook(quiet);
    }

    #[test]
    fn pool_oversubscription_is_harmless() {
        // More threads than work: result identical, no deadlock.
        let pool = ExecPool::with_threads(32);
        let out = pool.par_map(&[1u8, 2, 3], 1, |&x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }
}
