//! Sparse-storage layout selection for the SpMV family.
//!
//! The CSR products in `acir-linalg` can run on alternate storage
//! layouts (unrolled CSR, SELL-C-σ, merge-based nnz chunking) that are
//! all **bit-identical** to the scalar scan — the layout is purely an
//! execution policy, like the thread count. This module is the policy
//! knob: a small [`SpmvLayout`] enum, the `ACIR_SPMV_LAYOUT`
//! environment variable (mirroring [`crate::THREADS_ENV`]), and a
//! thread-local override installed as an RAII scope by kernel entry
//! points (via `KernelCtx::spmv_scope` in `acir-runtime`).
//!
//! The enum lives here — below `acir-linalg` in the dependency order —
//! so `acir-runtime`'s `KernelCtx` can carry a layout preference
//! without depending on the linear-algebra crate that implements the
//! layouts.
//!
//! Selection precedence, resolved on the **calling** thread before any
//! fan-out (worker threads never consult it):
//!
//! 1. the innermost live [`SpmvLayoutScope`] on this thread;
//! 2. `ACIR_SPMV_LAYOUT` (read per call, like `ACIR_THREADS`);
//! 3. [`SpmvLayout::Csr`], the scalar reference layout.

use std::cell::Cell;

/// Environment variable naming the default SpMV layout
/// (`csr`/`scalar`, `unrolled`, `sell`, `merge`, `auto`). Unset or
/// unrecognized values fall back to [`SpmvLayout::Csr`].
pub const SPMV_LAYOUT_ENV: &str = "ACIR_SPMV_LAYOUT";

/// Which storage layout the CSR product family should execute on.
///
/// Every variant produces bitwise-identical results (pinned by the
/// `layout_equivalence` test matrix); they differ only in speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SpmvLayout {
    /// The scalar CSR gather — the reference layout and the default.
    #[default]
    Csr,
    /// CSR storage with 8-wide unrolled, left-associated row
    /// accumulation (same addition order as the scalar scan).
    Unrolled,
    /// SELL-C-σ: rows sorted by length within σ-windows and packed
    /// into column-major slices of C rows, so the C lanes advance C
    /// *different* rows per step — inter-row instruction-level
    /// parallelism instead of one serial add chain per row.
    Sell,
    /// Merge-based nnz-balanced chunking for skewed (power-law) degree
    /// distributions: chunk boundaries split the *entry* space evenly;
    /// rows crossing a boundary are recomputed sequentially so no
    /// addition is ever re-associated.
    Merge,
    /// Pick per matrix: `Unrolled` below the parallel threshold, else
    /// `Merge` for heavily skewed rows and `Sell` otherwise.
    Auto,
}

impl SpmvLayout {
    /// Canonical lowercase name (the token `ACIR_SPMV_LAYOUT` accepts).
    pub fn name(self) -> &'static str {
        match self {
            SpmvLayout::Csr => "csr",
            SpmvLayout::Unrolled => "unrolled",
            SpmvLayout::Sell => "sell",
            SpmvLayout::Merge => "merge",
            SpmvLayout::Auto => "auto",
        }
    }

    /// All selectable layouts, scalar reference first (the order bench
    /// and test matrices iterate in).
    pub const ALL: [SpmvLayout; 5] = [
        SpmvLayout::Csr,
        SpmvLayout::Unrolled,
        SpmvLayout::Sell,
        SpmvLayout::Merge,
        SpmvLayout::Auto,
    ];
}

impl std::fmt::Display for SpmvLayout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for SpmvLayout {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "csr" | "scalar" => Ok(SpmvLayout::Csr),
            "unrolled" => Ok(SpmvLayout::Unrolled),
            "sell" | "sell-c-sigma" => Ok(SpmvLayout::Sell),
            "merge" => Ok(SpmvLayout::Merge),
            "auto" => Ok(SpmvLayout::Auto),
            other => Err(format!("unknown SpMV layout {other:?}")),
        }
    }
}

thread_local! {
    /// Innermost scope override for this thread (`None` = use the env).
    static OVERRIDE: Cell<Option<SpmvLayout>> = const { Cell::new(None) };
}

/// The layout the next CSR product on this thread should run on:
/// scope override, else `ACIR_SPMV_LAYOUT`, else [`SpmvLayout::Csr`].
pub fn current_spmv_layout() -> SpmvLayout {
    if let Some(k) = OVERRIDE.with(Cell::get) {
        return k;
    }
    std::env::var(SPMV_LAYOUT_ENV)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or_default()
}

/// RAII guard restoring the previous thread-local layout on drop.
/// Scopes nest: the innermost live scope wins.
#[derive(Debug)]
pub struct SpmvLayoutScope {
    prev: Option<SpmvLayout>,
}

/// Install `layout` as this thread's SpMV layout until the returned
/// scope drops. Kernel entry points call this (through
/// `KernelCtx::spmv_scope`) so a per-request preference reaches every
/// product in the kernel without signature changes.
pub fn spmv_layout_scope(layout: SpmvLayout) -> SpmvLayoutScope {
    SpmvLayoutScope {
        prev: OVERRIDE.with(|c| c.replace(Some(layout))),
    }
}

impl Drop for SpmvLayoutScope {
    fn drop(&mut self) {
        OVERRIDE.with(|c| c.set(self.prev));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip_and_aliases() {
        for k in SpmvLayout::ALL {
            assert_eq!(k.name().parse::<SpmvLayout>().unwrap(), k);
            assert_eq!(k.to_string(), k.name());
        }
        assert_eq!("scalar".parse::<SpmvLayout>().unwrap(), SpmvLayout::Csr);
        assert_eq!(
            "SELL-C-Sigma".parse::<SpmvLayout>().unwrap(),
            SpmvLayout::Sell
        );
        assert!("blocked".parse::<SpmvLayout>().is_err());
    }

    #[test]
    fn scopes_nest_and_restore() {
        // Note: no env manipulation here — this test relies only on
        // the thread-local, so it is safe under parallel test threads.
        let base = OVERRIDE.with(Cell::get);
        assert_eq!(base, None);
        {
            let _outer = spmv_layout_scope(SpmvLayout::Sell);
            assert_eq!(current_spmv_layout(), SpmvLayout::Sell);
            {
                let _inner = spmv_layout_scope(SpmvLayout::Merge);
                assert_eq!(current_spmv_layout(), SpmvLayout::Merge);
            }
            assert_eq!(current_spmv_layout(), SpmvLayout::Sell);
        }
        assert_eq!(OVERRIDE.with(Cell::get), None);
    }

    #[test]
    fn override_is_thread_local() {
        let _scope = spmv_layout_scope(SpmvLayout::Unrolled);
        assert_eq!(current_spmv_layout(), SpmvLayout::Unrolled);
        std::thread::scope(|s| {
            s.spawn(|| {
                assert_eq!(OVERRIDE.with(Cell::get), None);
            });
        });
    }
}
