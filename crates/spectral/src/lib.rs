//! # acir-spectral
//!
//! Spectral graph machinery for the ACIR reproduction of Mahoney,
//! *"Approximate Computation and Implicit Regularization for Very
//! Large-scale Data Analysis"* (PODS 2012), case study §3.1.
//!
//! * [`laplacian`] — the matrices of §3.1: combinatorial `L = D − A`,
//!   normalized `𝓛 = I − D^{−1/2} A D^{−1/2}`, the random-walk
//!   transition matrix `M = A D^{−1}`, and the lazy walk
//!   `W_α = αI + (1−α)M`; all sparse, none densified.
//! * [`fiedler`] — the exact leading nontrivial eigenvector `v₂`
//!   (Problem (3)): dense Jacobi for small graphs, Lanczos with
//!   deflation of the trivial eigenvector for large ones.
//! * [`diffusion`] — the three approximation dynamics of §3.1 (Heat
//!   Kernel, PageRank, Lazy Random Walk), each with its
//!   "aggressiveness" parameter (`t`, `γ`, step count) exposed, plus
//!   seed-vector utilities.
//! * [`ranking`] — spectral ranking (PageRank scores, eigenvector
//!   centrality) and rank-comparison utilities (Kendall tau, top-k
//!   overlap) for the "approximations rank almost as well" claims.
//! * [`embedding`] — k-dimensional spectral embeddings, k-means, and
//!   k-way spectral clustering (the "classification and clustering"
//!   uses of the leading eigenvectors).
//! * [`streaming`] — PageRank estimation over an edge stream with
//!   one-step-per-pass random walks and `O(walkers)` memory (the §3.3
//!   database-environment primitive of ref \[37\]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diffusion;
pub mod embedding;
pub mod fiedler;
pub mod laplacian;
pub mod ranking;
pub mod streaming;

pub use diffusion::{
    heat_kernel, heat_kernel_chebyshev, heat_kernel_chebyshev_budgeted,
    heat_kernel_chebyshev_multi, lazy_walk, pagerank, pagerank_budgeted, pagerank_power,
    pagerank_power_budgeted, pagerank_power_ctx, pagerank_power_multi, Seed,
};
pub use embedding::{adjusted_rand_index, kmeans, spectral_clustering, spectral_embedding};
pub use fiedler::{fiedler_vector, fiedler_vector_budgeted, FiedlerResult};
pub use laplacian::{
    adjacency_matrix, combinatorial_laplacian, lazy_walk_matrix, normalized_adjacency,
    normalized_laplacian, random_walk_matrix, trivial_eigenvector,
};
pub use streaming::{streaming_pagerank, streaming_pagerank_of_graph, StreamingPageRank};

/// Errors from the spectral layer.
#[derive(Debug, Clone, PartialEq)]
pub enum SpectralError {
    /// Underlying linear algebra failure.
    Linalg(acir_linalg::LinalgError),
    /// Underlying graph failure.
    Graph(acir_graph::GraphError),
    /// Invalid argument (e.g. parameter out of range).
    InvalidArgument(String),
}

impl std::fmt::Display for SpectralError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpectralError::Linalg(e) => write!(f, "linalg: {e}"),
            SpectralError::Graph(e) => write!(f, "graph: {e}"),
            SpectralError::InvalidArgument(m) => write!(f, "invalid argument: {m}"),
        }
    }
}

impl std::error::Error for SpectralError {}

impl From<acir_linalg::LinalgError> for SpectralError {
    fn from(e: acir_linalg::LinalgError) -> Self {
        SpectralError::Linalg(e)
    }
}

impl From<acir_graph::GraphError> for SpectralError {
    fn from(e: acir_graph::GraphError) -> Self {
        SpectralError::Graph(e)
    }
}

/// Result alias for spectral operations.
pub type Result<T> = std::result::Result<T, SpectralError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_conversion_and_display() {
        let le: SpectralError = acir_linalg::LinalgError::Singular.into();
        assert!(le.to_string().contains("linalg"));
        let ge: SpectralError = acir_graph::GraphError::BadWeight(0.0).into();
        assert!(ge.to_string().contains("graph"));
        assert!(SpectralError::InvalidArgument("z".into())
            .to_string()
            .contains("z"));
    }
}
