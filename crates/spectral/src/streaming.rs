//! PageRank estimation over an edge stream (paper ref \[37\], Das Sarma,
//! Gollapudi & Panigrahy, "Estimating PageRank on graph streams").
//!
//! §3.3 points to this as evidence that the "operational and
//! interactive approach to database algorithms is already being adopted
//! in practice": when the graph only exists as a stream of edges (too
//! large, or arriving from a log), PageRank can still be estimated by
//! simulating random walks with **one step per pass** over the stream
//! and `O(walkers)` memory — no random access to the adjacency
//! structure at all.
//!
//! Implementation: each walker carries a geometric(γ) remaining length
//! (the standard decomposition: the PageRank distribution is the law of
//! the endpoint of a γ-geometric-length walk from the seed
//! distribution). One pass over the stream advances every active
//! walker by a single step, chosen by weighted reservoir sampling over
//! the edges incident to the walker's current node — so the memory is
//! the walker table, never the graph.
//!
//! This estimator is itself an *approximation with a knob* (the walker
//! count), and its output concentrates on the exact PageRank as
//! walkers grow — one more instance of the paper's theme, measured in
//! the tests by rank correlation against the exact solve.

use crate::{Result, SpectralError};
use acir_graph::{Graph, NodeId};
use rand::Rng;

/// Outcome of a streaming PageRank estimation.
#[derive(Debug, Clone)]
pub struct StreamingPageRank {
    /// Estimated PageRank scores (empirical endpoint distribution;
    /// sums to 1).
    pub scores: Vec<f64>,
    /// Passes made over the edge stream.
    pub passes: usize,
    /// Walkers simulated.
    pub walkers: usize,
    /// Peak memory in walker slots (== walkers; recorded to make the
    /// streaming claim explicit: independent of `m`).
    pub peak_memory_slots: usize,
}

/// Estimate global PageRank (uniform teleportation `gamma`) from an
/// edge stream, using `walkers` walks and one step per pass.
///
/// `stream` is any replayable edge sequence — each pass calls it to
/// obtain a fresh iteration over the edges, mimicking a re-scan of an
/// on-disk log. `max_passes` bounds the work (walks longer than that
/// are truncated — an early-stopping knob like any other; with
/// probability `(1-γ)^max_passes` per walker).
pub fn streaming_pagerank<I>(
    n: usize,
    mut stream: impl FnMut() -> I,
    gamma: f64,
    walkers: usize,
    max_passes: usize,
    rng: &mut impl Rng,
) -> Result<StreamingPageRank>
where
    I: Iterator<Item = (NodeId, NodeId, f64)>,
{
    if n == 0 {
        return Err(SpectralError::InvalidArgument("empty graph".into()));
    }
    if !(0.0 < gamma && gamma < 1.0) {
        return Err(SpectralError::InvalidArgument(format!(
            "gamma must be in (0, 1), got {gamma}"
        )));
    }
    if walkers == 0 || max_passes == 0 {
        return Err(SpectralError::InvalidArgument(
            "need walkers > 0 and max_passes > 0".into(),
        ));
    }

    // Walker state: current node + remaining steps (geometric(gamma)).
    let mut position: Vec<NodeId> = (0..walkers)
        .map(|_| rng.gen_range(0..n as NodeId))
        .collect();
    let mut remaining: Vec<u32> = (0..walkers)
        .map(|_| {
            let mut len = 0u32;
            while !rng.gen_bool(gamma) && (len as usize) < max_passes {
                len += 1;
            }
            len
        })
        .collect();

    // Reservoir per active walker: (chosen neighbor, total weight seen).
    let mut reservoir: Vec<(NodeId, f64)> = vec![(0, 0.0); walkers];
    // Active walkers grouped by current node, rebuilt each pass, so an
    // edge only touches the walkers sitting at its endpoints — one pass
    // costs O(n + m + Σ_w deg(pos(w))) instead of O(m·walkers).
    let mut at_node: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut passes = 0usize;
    while remaining.iter().any(|&r| r > 0) && passes < max_passes {
        for slot in reservoir.iter_mut() {
            *slot = (0, 0.0);
        }
        for bucket in at_node.iter_mut() {
            bucket.clear();
        }
        for (walker, &r) in remaining.iter().enumerate() {
            if r > 0 {
                at_node[position[walker] as usize].push(walker as u32);
            }
        }
        for (a, b, w) in stream() {
            // Each undirected edge can move a walker from either side;
            // a self-loop is offered once (it keeps the walker put, with
            // its weight still diluting the reservoir, as a real
            // self-transition should).
            let sides: &[(NodeId, NodeId)] = if a == b { &[(a, b)] } else { &[(a, b), (b, a)] };
            for &(here, to) in sides {
                for &walker in &at_node[here as usize] {
                    // Weighted reservoir sampling (A-Chao): keep `to`
                    // with probability w / total-so-far.
                    let slot = &mut reservoir[walker as usize];
                    slot.1 += w;
                    if rng.gen_bool((w / slot.1).clamp(0.0, 1.0)) {
                        slot.0 = to;
                    }
                }
            }
        }
        for walker in 0..walkers {
            if remaining[walker] == 0 {
                continue;
            }
            let (next, total) = reservoir[walker];
            if total > 0.0 {
                position[walker] = next;
            }
            // Isolated node: the walk is stuck; it simply ends here.
            remaining[walker] -= 1;
        }
        passes += 1;
    }

    let mut scores = vec![0.0f64; n];
    for &p in &position {
        scores[p as usize] += 1.0 / walkers as f64;
    }
    Ok(StreamingPageRank {
        scores,
        passes,
        walkers,
        peak_memory_slots: walkers,
    })
}

/// Convenience wrapper: stream the edges of an in-memory [`Graph`]
/// (each undirected edge once per pass), as the tests and examples do.
pub fn streaming_pagerank_of_graph(
    g: &Graph,
    gamma: f64,
    walkers: usize,
    max_passes: usize,
    rng: &mut impl Rng,
) -> Result<StreamingPageRank> {
    streaming_pagerank(g.n(), || g.edges(), gamma, walkers, max_passes, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ranking::{kendall_tau, pagerank_scores, top_k_overlap};
    use acir_graph::gen::deterministic::star;
    use acir_graph::gen::random::barabasi_albert;
    use acir_linalg::vector;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn scores_form_a_distribution() {
        let g = star(8).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let r = streaming_pagerank_of_graph(&g, 0.2, 500, 60, &mut rng).unwrap();
        assert!((vector::sum(&r.scores) - 1.0).abs() < 1e-9);
        assert!(r.scores.iter().all(|&s| s >= 0.0));
        assert_eq!(r.peak_memory_slots, 500);
        assert!(r.passes <= 60);
    }

    #[test]
    fn hub_gets_the_most_mass() {
        let g = star(10).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let r = streaming_pagerank_of_graph(&g, 0.15, 2000, 80, &mut rng).unwrap();
        let max = r
            .scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(max, 0, "the hub ranks first");
    }

    #[test]
    fn correlates_with_exact_pagerank() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = barabasi_albert(&mut rng, 150, 3).unwrap();
        let exact = pagerank_scores(&g, 0.15).unwrap();
        let est = streaming_pagerank_of_graph(&g, 0.15, 20_000, 120, &mut rng).unwrap();
        let tau = kendall_tau(&exact, &est.scores);
        assert!(tau > 0.55, "kendall tau {tau}");
        let overlap = top_k_overlap(&exact, &est.scores, 10);
        assert!(overlap >= 0.7, "top-10 overlap {overlap}");
    }

    #[test]
    fn more_walkers_estimate_better() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = barabasi_albert(&mut rng, 100, 3).unwrap();
        let exact = pagerank_scores(&g, 0.2).unwrap();
        let mut rng_a = StdRng::seed_from_u64(5);
        let rough = streaming_pagerank_of_graph(&g, 0.2, 500, 80, &mut rng_a).unwrap();
        let mut rng_b = StdRng::seed_from_u64(5);
        let fine = streaming_pagerank_of_graph(&g, 0.2, 20_000, 80, &mut rng_b).unwrap();
        let err = |s: &[f64]| vector::dist2(s, &exact);
        assert!(err(&fine.scores) < err(&rough.scores));
    }

    #[test]
    fn validates_inputs() {
        let g = star(4).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        assert!(streaming_pagerank_of_graph(&g, 0.0, 10, 10, &mut rng).is_err());
        assert!(streaming_pagerank_of_graph(&g, 1.0, 10, 10, &mut rng).is_err());
        assert!(streaming_pagerank_of_graph(&g, 0.2, 0, 10, &mut rng).is_err());
        assert!(streaming_pagerank_of_graph(&g, 0.2, 10, 0, &mut rng).is_err());
        let empty = acir_graph::Graph::from_pairs(0, []).unwrap();
        assert!(streaming_pagerank_of_graph(&empty, 0.2, 10, 10, &mut rng).is_err());
    }

    #[test]
    fn self_loops_hold_walkers_proportionally() {
        // Node 0 has a heavy self-loop plus one edge to node 1: the
        // stationary distribution favors node 0 strongly, and so does
        // PageRank at small gamma.
        let g = acir_graph::Graph::from_edges(2, [(0, 0, 9.0), (0, 1, 1.0)]).unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        let r = streaming_pagerank_of_graph(&g, 0.1, 5000, 60, &mut rng).unwrap();
        assert!(r.scores[0] > 0.7, "node 0 share {}", r.scores[0]);
    }

    #[test]
    fn isolated_walkers_stay_put() {
        // A graph with an isolated node: walkers starting there end
        // there (the stream never offers them a move).
        let g = acir_graph::Graph::from_pairs(3, [(0, 1)]).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let r = streaming_pagerank_of_graph(&g, 0.3, 3000, 40, &mut rng).unwrap();
        // Node 2 keeps roughly its 1/3 share of uniform starts.
        assert!((r.scores[2] - 1.0 / 3.0).abs() < 0.05, "{}", r.scores[2]);
    }
}
