//! Spectral ranking (paper §3.1 and ref \[42\]).
//!
//! PageRank "provides a ranking or measure of importance for a Web
//! page"; more generally, "other spectral ranking procedures compute
//! vectors that can be used instead of the second eigenvector v₂ to
//! perform ranking, classification, clustering, etc." This module
//! provides the ranking vectors and the comparison metrics the
//! experiments use to check that truncated/tweaked approximations rank
//! almost as well as exact computations.

use crate::diffusion::{pagerank, pagerank_power, Seed};
use crate::Result;
use acir_graph::Graph;
use acir_linalg::power::{power_method, PowerOptions};

/// Global PageRank scores with uniform teleportation (the classic
/// setting: seed = uniform).
pub fn pagerank_scores(g: &Graph, gamma: f64) -> Result<Vec<f64>> {
    pagerank(g, gamma, &Seed::Uniform)
}

/// Truncated global PageRank (power-method iterations), the Web-scale
/// variant of [`pagerank_scores`].
pub fn pagerank_scores_truncated(g: &Graph, gamma: f64, iters: usize) -> Result<Vec<f64>> {
    Ok(pagerank_power(g, gamma, &Seed::Uniform, iters)?.0)
}

/// Eigenvector centrality: the dominant eigenvector of the adjacency
/// matrix, computed with the Power Method (footnote 15). `max_iters`
/// exposes the early-stopping knob.
pub fn eigenvector_centrality(g: &Graph, max_iters: usize) -> Result<Vec<f64>> {
    let a = crate::laplacian::adjacency_matrix(g);
    let seed = vec![1.0; g.n()];
    let opts = PowerOptions {
        max_iters,
        tol: 1e-12,
        deflate: vec![],
    };
    let r = power_method(&a, &seed, &opts)?;
    // Fix sign: centralities are conventionally nonnegative.
    let mut v = r.eigenvector;
    let total: f64 = v.iter().sum();
    if total < 0.0 {
        for x in &mut v {
            *x = -*x;
        }
    }
    Ok(v)
}

/// Ranking (node order, best first) induced by a score vector.
/// Ties broken by node id for determinism.
pub fn ranking_of(scores: &[f64]) -> Vec<u32> {
    let mut idx: Vec<u32> = (0..scores.len() as u32).collect();
    idx.sort_by(|&a, &b| {
        scores[b as usize]
            .partial_cmp(&scores[a as usize])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    idx
}

/// Kendall tau-a rank correlation between two score vectors, in
/// `[−1, 1]`. `O(n²)` — reference/testing use.
pub fn kendall_tau(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len());
    let n = x.len();
    if n < 2 {
        return 1.0;
    }
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    for i in 0..n {
        for j in (i + 1)..n {
            let sx = (x[i] - x[j]).signum();
            let sy = (y[i] - y[j]).signum();
            let prod = sx * sy;
            if prod > 0.0 {
                concordant += 1;
            } else if prod < 0.0 {
                discordant += 1;
            }
        }
    }
    let pairs = (n * (n - 1) / 2) as f64;
    (concordant - discordant) as f64 / pairs
}

/// Fraction of overlap between the top-`k` sets of two score vectors,
/// in `[0, 1]` — the ranking metric that matters in retrieval settings.
pub fn top_k_overlap(x: &[f64], y: &[f64], k: usize) -> f64 {
    assert_eq!(x.len(), y.len());
    let k = k.min(x.len());
    if k == 0 {
        return 1.0;
    }
    let top = |s: &[f64]| -> std::collections::HashSet<u32> {
        ranking_of(s).into_iter().take(k).collect()
    };
    let tx = top(x);
    let ty = top(y);
    tx.intersection(&ty).count() as f64 / k as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use acir_graph::gen::deterministic::{lollipop, path, star};

    #[test]
    fn pagerank_ranks_hub_first() {
        let g = star(8).unwrap();
        let scores = pagerank_scores(&g, 0.15).unwrap();
        let rank = ranking_of(&scores);
        assert_eq!(rank[0], 0, "hub of the star ranks first");
    }

    #[test]
    fn truncated_pagerank_ranks_almost_as_well() {
        // The paper's practical claim: tweaked/truncated PageRank is
        // good enough for ranking.
        let g = lollipop(8, 5).unwrap();
        let exact = pagerank_scores(&g, 0.15).unwrap();
        // 30 iterations ≈ (1−γ)^30 ≈ 0.8% residual: "tweaked" but close.
        let rough = pagerank_scores_truncated(&g, 0.15, 30).unwrap();
        assert!(kendall_tau(&exact, &rough) > 0.9);
        assert!(top_k_overlap(&exact, &rough, 5) >= 0.8);
        // Even a very aggressive truncation preserves most of the order.
        let very_rough = pagerank_scores_truncated(&g, 0.15, 5).unwrap();
        assert!(kendall_tau(&exact, &very_rough) > 0.5);
    }

    #[test]
    fn eigenvector_centrality_prefers_clique() {
        let g = lollipop(6, 4).unwrap();
        let c = eigenvector_centrality(&g, 2000).unwrap();
        // Clique nodes outrank tail nodes.
        let tail_end = c[9];
        assert!(c[1] > tail_end);
        assert!(c.iter().all(|&v| v >= -1e-9), "nonnegative by sign fix");
    }

    #[test]
    fn ranking_of_breaks_ties_by_id() {
        assert_eq!(ranking_of(&[1.0, 3.0, 3.0]), vec![1, 2, 0]);
        assert_eq!(ranking_of(&[]), Vec::<u32>::new());
    }

    #[test]
    fn kendall_tau_extremes() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let rev = [4.0, 3.0, 2.0, 1.0];
        assert_eq!(kendall_tau(&x, &x), 1.0);
        assert_eq!(kendall_tau(&x, &rev), -1.0);
        assert_eq!(kendall_tau(&[1.0], &[2.0]), 1.0);
    }

    #[test]
    fn top_k_overlap_basics() {
        let x = [5.0, 4.0, 3.0, 2.0];
        let y = [5.0, 4.0, 0.0, 3.0];
        assert_eq!(top_k_overlap(&x, &y, 2), 1.0);
        assert!((top_k_overlap(&x, &y, 3) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(top_k_overlap(&x, &y, 0), 1.0);
    }

    #[test]
    fn path_centrality_is_symmetric_and_peaked() {
        let g = path(7).unwrap();
        let c = eigenvector_centrality(&g, 5000).unwrap();
        assert!((c[0] - c[6]).abs() < 1e-6);
        assert!(c[3] > c[0]);
    }
}
