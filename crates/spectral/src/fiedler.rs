//! Exact solution of the paper's Problem (3): the leading nontrivial
//! eigenvector of the normalized Laplacian.
//!
//! ```text
//! minimize  xᵀ𝓛x   subject to  xᵀx = 1,  xᵀD^{1/2}1 = 0.
//! ```
//!
//! Two routes, switched on size (paper footnote 14: in small and medium
//! scale one calls a black-box "exact" solver):
//!
//! * `n ≤ DENSE_CUTOFF`: densify and run the Jacobi eigensolver;
//! * larger: Lanczos on the sparse `𝓛` with the trivial eigenvector
//!   `D^{1/2}1` deflated out.
//!
//! Both return the eigenvalue `λ₂` and unit eigenvector `v₂`, plus the
//! achieved Rayleigh quotient so callers can reason in
//! quality-of-approximation terms.

use crate::laplacian::{normalized_laplacian, trivial_eigenvector};
use crate::{Result, SpectralError};
use acir_graph::Graph;
use acir_linalg::lanczos::{smallest_eigenpairs, smallest_eigenpairs_resilient};
use acir_linalg::{vector, SymEig};
use acir_runtime::{Budget, Certificate, DivergenceCause, RetryPolicy, SolverOutcome};

/// Cutoff below which the dense Jacobi route is used.
pub const DENSE_CUTOFF: usize = 384;

/// The exact leading nontrivial eigenpair of the normalized Laplacian.
#[derive(Debug, Clone)]
pub struct FiedlerResult {
    /// `λ₂`, the smallest nontrivial eigenvalue.
    pub lambda2: f64,
    /// Unit-norm eigenvector `v₂` (defined up to sign).
    pub vector: Vec<f64>,
    /// The Rayleigh quotient `v₂ᵀ𝓛v₂` actually achieved (≈ `λ₂`).
    pub rayleigh: f64,
}

/// Compute the Fiedler pair of the normalized Laplacian.
///
/// Requires a connected graph (the deflation assumes a single trivial
/// eigenvector; on disconnected graphs `λ₂ = 0` and "the problem of
/// computing v₂ is not even well-posed", as the paper notes — callers
/// should extract the largest component first).
pub fn fiedler_vector(g: &Graph) -> Result<FiedlerResult> {
    validate_fiedler(g)?;
    let nl = normalized_laplacian(g);
    let v1 = trivial_eigenvector(g);

    let (lambda2, mut v2) = if g.n() <= DENSE_CUTOFF {
        let eig = SymEig::new(&nl.to_dense())?;
        // Eigenvalues ascend; index 0 is the trivial 0 eigenvalue.
        (eig.eigenvalues[1], eig.eigenvector(1))
    } else {
        // Adaptive Krylov dimension: small eigenvalues of 𝓛 can cluster
        // (e.g. long cycles), so start modest and grow until the
        // eigenpair residual certifies convergence. The Krylov
        // recurrence itself lives in `acir_linalg::lanczos`; this is
        // only the restart-escalation wrapper around it.
        // CORE LOOP (delegated: the Krylov recurrence lives in acir-linalg)
        let mut krylov = (4 * (g.n() as f64).ln() as usize + 40).min(g.n());
        loop {
            let (vals, vecs) = smallest_eigenpairs(&nl, 1, krylov, std::slice::from_ref(&v1))?;
            let mut r = vec![0.0; g.n()];
            nl.matvec(&vecs[0], &mut r);
            vector::axpy(-vals[0], &vecs[0], &mut r);
            let residual = vector::norm2(&r);
            if residual < 1e-8 || krylov >= g.n() {
                break (vals[0], vecs[0].clone());
            }
            krylov = (krylov * 2).min(g.n());
        }
    };

    // Clean up: remove any residual trivial component and renormalize.
    vector::deflate(&mut v2, &v1);
    vector::normalize2(&mut v2);
    let rayleigh = nl.quad_form(&v2);
    Ok(FiedlerResult {
        lambda2,
        vector: v2,
        rayleigh,
    })
}

/// Budgeted variant of [`fiedler_vector`]: the Fiedler pair under a
/// resource [`Budget`], always via the sparse Lanczos route (budgets
/// meter matvecs, which the dense Jacobi route does not perform).
///
/// On exhaustion the best Ritz pair found so far is returned with a
/// [`Certificate::RayleighInterval`] recomputed against `𝓛` directly:
/// by symmetric perturbation theory some true eigenvalue lies within
/// `radius = ‖𝓛v − θv‖₂` of the returned `θ` — the truncated iterate
/// is a usable regularized answer, not an error. Lanczos breakdowns
/// are retried with perturbed seeds before reporting divergence.
pub fn fiedler_vector_budgeted(g: &Graph, budget: &Budget) -> Result<SolverOutcome<FiedlerResult>> {
    validate_fiedler(g)?;
    let nl = normalized_laplacian(g);
    let v1 = trivial_eigenvector(g);
    let krylov = (4 * (g.n() as f64).ln() as usize + 40).min(g.n());
    let out = smallest_eigenpairs_resilient(
        &nl,
        1,
        krylov,
        std::slice::from_ref(&v1),
        budget,
        &RetryPolicy::attempts(3),
    )?;

    let build = |mut v2: Vec<f64>, lambda2: f64| {
        vector::deflate(&mut v2, &v1);
        vector::normalize2(&mut v2);
        let rayleigh = nl.quad_form(&v2);
        let mut r = vec![0.0; v2.len()];
        nl.matvec(&v2, &mut r);
        vector::axpy(-rayleigh, &v2, &mut r);
        let radius = vector::norm2(&r);
        (
            FiedlerResult {
                lambda2,
                vector: v2,
                rayleigh,
            },
            radius,
        )
    };

    Ok(match out {
        SolverOutcome::Converged {
            value: (vals, mut vecs),
            mut diagnostics,
        } => {
            let (result, _) = build(std::mem::take(&mut vecs[0]), vals[0]);
            diagnostics.wrap_span("spectral.fiedler");
            SolverOutcome::Converged {
                value: result,
                diagnostics,
            }
        }
        SolverOutcome::BudgetExhausted {
            best_so_far: (vals, mut vecs),
            exhausted,
            certificate: _,
            mut diagnostics,
        } => {
            if vecs.is_empty() {
                // No Krylov direction survived the budget at all.
                diagnostics.wrap_span("spectral.fiedler");
                return Ok(SolverOutcome::diverged(
                    DivergenceCause::Breakdown {
                        at_iter: 0,
                        what: "budget exhausted before any Lanczos step completed",
                    },
                    diagnostics,
                ));
            }
            let (result, radius) = build(std::mem::take(&mut vecs[0]), vals[0]);
            let center = result.rayleigh;
            diagnostics
                .note("partial Fiedler pair: eigenvalue interval recomputed against the Laplacian");
            let certificate = Certificate::RayleighInterval { center, radius };
            diagnostics.certificate_issued(&certificate);
            diagnostics.wrap_span("spectral.fiedler");
            SolverOutcome::BudgetExhausted {
                best_so_far: result,
                exhausted,
                certificate,
                diagnostics,
            }
        }
        SolverOutcome::Diverged {
            at_iter,
            cause,
            mut diagnostics,
        } => {
            diagnostics.wrap_span("spectral.fiedler");
            SolverOutcome::Diverged {
                at_iter,
                cause,
                diagnostics,
            }
        }
    })
}

/// Validation shared by both Fiedler entry points.
fn validate_fiedler(g: &Graph) -> Result<()> {
    if g.n() < 2 {
        return Err(SpectralError::InvalidArgument(
            "fiedler_vector needs at least 2 nodes".into(),
        ));
    }
    if !acir_graph::traversal::is_connected(g) {
        return Err(SpectralError::InvalidArgument(
            "fiedler_vector requires a connected graph (extract the largest component first)"
                .into(),
        ));
    }
    Ok(())
}

/// Rayleigh quotient `xᵀ𝓛x / xᵀx` of an arbitrary vector against the
/// normalized Laplacian — the forward-error currency of §3.1 ("any
/// vector can be used with a quality-of-approximation loss that depends
/// on how far its Rayleigh quotient is from the Rayleigh quotient of
/// v₂").
///
/// Delegates to the operator-level
/// [`acir_linalg::power::rayleigh_quotient`] on the normalized
/// Laplacian; the zero vector is defined to have quotient 0 (rather
/// than the operator version's NaN) because callers probe truncated
/// diffusion vectors that may be identically zero.
pub fn rayleigh_quotient(g: &Graph, x: &[f64]) -> f64 {
    if vector::dot(x, x) == 0.0 {
        return 0.0;
    }
    let nl = normalized_laplacian(g);
    acir_linalg::power::rayleigh_quotient(&nl, x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use acir_graph::gen::deterministic::{barbell, complete, cycle, path};
    use acir_graph::Graph;

    #[test]
    fn complete_graph_lambda2() {
        // K_n: λ₂ = n/(n−1).
        let n = 6;
        let g = complete(n).unwrap();
        let f = fiedler_vector(&g).unwrap();
        assert!((f.lambda2 - n as f64 / (n as f64 - 1.0)).abs() < 1e-9);
        assert!((f.rayleigh - f.lambda2).abs() < 1e-9);
    }

    #[test]
    fn cycle_lambda2() {
        // C_n (2-regular): 𝓛 eigenvalues 1 − cos(2πk/n); λ₂ = 1 − cos(2π/n).
        let n = 10;
        let g = cycle(n).unwrap();
        let f = fiedler_vector(&g).unwrap();
        let expected = 1.0 - (2.0 * std::f64::consts::PI / n as f64).cos();
        assert!(
            (f.lambda2 - expected).abs() < 1e-9,
            "{} vs {expected}",
            f.lambda2
        );
    }

    #[test]
    fn vector_is_unit_and_orthogonal_to_trivial() {
        let g = path(12).unwrap();
        let f = fiedler_vector(&g).unwrap();
        assert!((vector::norm2(&f.vector) - 1.0).abs() < 1e-10);
        let v1 = trivial_eigenvector(&g);
        assert!(vector::dot(&f.vector, &v1).abs() < 1e-10);
    }

    #[test]
    fn barbell_fiedler_separates_cliques() {
        let g = barbell(8, 0).unwrap();
        let f = fiedler_vector(&g).unwrap();
        // All of clique A on one sign, all of clique B on the other.
        let sign_a = f.vector[0].signum();
        assert!((0..8).all(|i| f.vector[i].signum() == sign_a));
        assert!((8..16).all(|i| f.vector[i].signum() == -sign_a));
        // Small λ₂: there is a deep cut.
        assert!(f.lambda2 < 0.1, "λ₂ = {}", f.lambda2);
    }

    #[test]
    fn lanczos_route_matches_dense_route() {
        // A path has a simple (non-degenerate) λ₂, so the eigenvector is
        // unique up to sign and the two routes must align. (A cycle's λ₂
        // has multiplicity 2 — comparing eigenvectors there would test
        // basis choice, not correctness.)
        let n = 100;
        let g = path(n).unwrap();
        let nl = normalized_laplacian(&g);
        let v1 = trivial_eigenvector(&g);
        let dense = SymEig::new(&nl.to_dense()).unwrap();
        let (vals, vecs) = smallest_eigenpairs(&nl, 1, n, std::slice::from_ref(&v1)).unwrap();
        assert!((vals[0] - dense.eigenvalues[1]).abs() < 1e-8);
        assert!(vector::alignment(&vecs[0], &dense.eigenvector(1)) > 1.0 - 1e-6);
    }

    #[test]
    fn large_graph_uses_lanczos_route() {
        let g = cycle(DENSE_CUTOFF + 50).unwrap();
        let f = fiedler_vector(&g).unwrap();
        let expected = 1.0 - (2.0 * std::f64::consts::PI / g.n() as f64).cos();
        assert!(
            (f.lambda2 - expected).abs() < 1e-7,
            "{} vs {expected}",
            f.lambda2
        );
    }

    #[test]
    fn budgeted_unlimited_matches_plain_eigenvalue() {
        let g = path(60).unwrap();
        let out = fiedler_vector_budgeted(&g, &Budget::unlimited()).unwrap();
        assert!(out.is_converged());
        let f = fiedler_vector(&g).unwrap();
        assert!((out.value().unwrap().lambda2 - f.lambda2).abs() < 1e-7);
    }

    #[test]
    fn budgeted_exhaustion_interval_contains_true_eigenvalue() {
        // Starve the matvec budget: the partial Ritz pair must come
        // back certified, and the interval must contain a true
        // eigenvalue of 𝓛 for the path: 1 − cos(πk/(n−1))... computed
        // densely here instead, to avoid formula drift.
        let n = 64;
        let g = path(n).unwrap();
        let out = fiedler_vector_budgeted(&g, &Budget::work(12)).unwrap();
        assert!(!out.is_converged());
        if !out.is_usable() {
            return; // too starved to produce any pair — also a valid structured outcome
        }
        let (center, radius) = match out.certificate() {
            Some(&Certificate::RayleighInterval { center, radius }) => (center, radius),
            c => panic!("wrong certificate {c:?}"),
        };
        let nl = normalized_laplacian(&g);
        let eig = SymEig::new(&nl.to_dense()).unwrap();
        assert!(
            eig.eigenvalues
                .iter()
                .any(|&lam| (lam - center).abs() <= radius + 1e-9),
            "no eigenvalue in [{:.3e}, {:.3e}]",
            center - radius,
            center + radius
        );
    }

    #[test]
    fn rejects_degenerate_inputs() {
        let single = Graph::from_pairs(1, []).unwrap();
        assert!(fiedler_vector(&single).is_err());
        let disconnected = Graph::from_pairs(4, [(0, 1), (2, 3)]).unwrap();
        assert!(fiedler_vector(&disconnected).is_err());
    }

    #[test]
    fn rayleigh_quotient_bounds_lambda2() {
        let g = path(10).unwrap();
        let f = fiedler_vector(&g).unwrap();
        // Any vector orthogonal to v₁ has RQ ≥ λ₂; v₂ achieves it.
        let mut x: Vec<f64> = (0..10).map(|i| (i as f64).sin()).collect();
        let v1 = trivial_eigenvector(&g);
        vector::deflate(&mut x, &v1);
        assert!(rayleigh_quotient(&g, &x) >= f.lambda2 - 1e-10);
        assert_eq!(rayleigh_quotient(&g, &[0.0; 10]), 0.0);
    }
}
