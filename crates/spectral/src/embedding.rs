//! Spectral embeddings and k-way spectral clustering.
//!
//! §3.1: the leading eigenvectors "can be used for classification and
//! other common machine learning tasks"; §3.2 notes the spectral
//! relaxation "effectively embeds the data on the one-dimensional span
//! of v₂". This module generalizes both beyond the bisection case:
//! embed each node as the row of the first `k` nontrivial eigenvectors
//! (degree-rescaled, i.e. the diffusion-map convention), then cluster
//! the rows with Lloyd's k-means (k-means++ seeding) — the standard
//! k-way spectral clustering pipeline.

use crate::fiedler::DENSE_CUTOFF;
use crate::laplacian::{normalized_laplacian, trivial_eigenvector};
use crate::{Result, SpectralError};
use acir_graph::{Graph, NodeId};
use acir_linalg::lanczos::smallest_eigenpairs;
use acir_linalg::{vector, SymEig};
use rand::Rng;

/// A spectral embedding: `coords[u]` is node `u`'s `k`-dimensional
/// coordinate row.
#[derive(Debug, Clone)]
pub struct SpectralEmbedding {
    /// Node coordinates (n rows × k columns).
    pub coords: Vec<Vec<f64>>,
    /// The eigenvalues `λ₂ ≤ … ≤ λ_{k+1}` behind the columns.
    pub eigenvalues: Vec<f64>,
}

/// Embed the nodes of a connected graph with the first `k` nontrivial
/// eigenvectors of the normalized Laplacian, each column rescaled as
/// `D^{−1/2} v` (so coordinates live in the random-walk geometry).
pub fn spectral_embedding(g: &Graph, k: usize) -> Result<SpectralEmbedding> {
    let n = g.n();
    if k == 0 || k + 1 > n {
        return Err(SpectralError::InvalidArgument(format!(
            "need 1 <= k <= n-1, got k = {k} with n = {n}"
        )));
    }
    if !acir_graph::traversal::is_connected(g) {
        return Err(SpectralError::InvalidArgument(
            "spectral_embedding requires a connected graph".into(),
        ));
    }
    let nl = normalized_laplacian(g);
    let v1 = trivial_eigenvector(g);
    let (vals, vecs) = if n <= DENSE_CUTOFF {
        let eig = SymEig::new(&nl.to_dense())?;
        let vals = eig.eigenvalues[1..=k].to_vec();
        let vecs: Vec<Vec<f64>> = (1..=k).map(|i| eig.eigenvector(i)).collect();
        (vals, vecs)
    } else {
        let krylov = (6 * k + 4 * (n as f64).ln() as usize + 40).min(n);
        smallest_eigenpairs(&nl, k, krylov, std::slice::from_ref(&v1))?
    };
    let mut coords = vec![vec![0.0; k]; n];
    for (j, v) in vecs.iter().enumerate() {
        for (u, row) in coords.iter_mut().enumerate() {
            let d = g.degree(u as NodeId);
            row[j] = if d > 0.0 { v[u] / d.sqrt() } else { 0.0 };
        }
    }
    Ok(SpectralEmbedding {
        coords,
        eigenvalues: vals,
    })
}

/// Lloyd's k-means with k-means++ seeding on a point set.
///
/// Returns `(assignment, centroids, inertia)`. Deterministic given the
/// RNG. Errors on empty input or `k` larger than the point count.
pub fn kmeans(
    points: &[Vec<f64>],
    k: usize,
    max_iters: usize,
    rng: &mut impl Rng,
) -> Result<(Vec<u32>, Vec<Vec<f64>>, f64)> {
    let n = points.len();
    if n == 0 || k == 0 || k > n {
        return Err(SpectralError::InvalidArgument(format!(
            "kmeans needs 0 < k <= n, got k = {k}, n = {n}"
        )));
    }
    let dim = points[0].len();
    if points.iter().any(|p| p.len() != dim) {
        return Err(SpectralError::InvalidArgument("ragged point set".into()));
    }

    // k-means++ seeding.
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(points[rng.gen_range(0..n)].clone());
    let mut d2 = vec![f64::INFINITY; n];
    while centroids.len() < k {
        let last = centroids.last().unwrap();
        let mut total = 0.0;
        for (p, slot) in points.iter().zip(d2.iter_mut()) {
            let d = vector::dist2(p, last);
            *slot = slot.min(d * d);
            total += *slot;
        }
        let next = if total <= 0.0 {
            // All remaining points coincide with a centroid.
            rng.gen_range(0..n)
        } else {
            let mut target = rng.gen_range(0.0..total);
            let mut chosen = n - 1;
            for (i, &w) in d2.iter().enumerate() {
                if target < w {
                    chosen = i;
                    break;
                }
                target -= w;
            }
            chosen
        };
        centroids.push(points[next].clone());
    }

    // Lloyd iterations.
    let mut assignment = vec![0u32; n];
    let mut inertia = f64::INFINITY;
    for _ in 0..max_iters.max(1) {
        // Assign.
        let mut new_inertia = 0.0;
        for (i, p) in points.iter().enumerate() {
            let (best, best_d) = centroids
                .iter()
                .enumerate()
                .map(|(c, cen)| (c, vector::dist2(p, cen)))
                .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                .unwrap();
            assignment[i] = best as u32;
            new_inertia += best_d * best_d;
        }
        // Update.
        let mut sums = vec![vec![0.0; dim]; k];
        let mut counts = vec![0usize; k];
        for (p, &a) in points.iter().zip(&assignment) {
            vector::axpy(1.0, p, &mut sums[a as usize]);
            counts[a as usize] += 1;
        }
        for (c, (sum, &count)) in sums.iter().zip(&counts).enumerate() {
            if count > 0 {
                for (slot, &s) in centroids[c].iter_mut().zip(sum) {
                    *slot = s / count as f64;
                }
            }
        }
        if (inertia - new_inertia).abs() < 1e-12 {
            inertia = new_inertia;
            break;
        }
        inertia = new_inertia;
    }
    Ok((assignment, centroids, inertia))
}

/// k-way spectral clustering: embed with `k − 1` nontrivial
/// eigenvectors (the standard choice for `k` clusters) and run
/// k-means, keeping the best of `restarts` seedings by inertia.
pub fn spectral_clustering(
    g: &Graph,
    k: usize,
    restarts: usize,
    rng: &mut impl Rng,
) -> Result<Vec<u32>> {
    if k < 2 {
        return Err(SpectralError::InvalidArgument(
            "need k >= 2 clusters".into(),
        ));
    }
    let emb = spectral_embedding(g, k - 1)?;
    let mut best: Option<(Vec<u32>, f64)> = None;
    for _ in 0..restarts.max(1) {
        let (assign, _, inertia) = kmeans(&emb.coords, k, 100, rng)?;
        match &best {
            Some((_, bi)) if *bi <= inertia => {}
            _ => best = Some((assign, inertia)),
        }
    }
    Ok(best.expect("restarts >= 1").0)
}

/// Adjusted Rand index between two clusterings, in `[-0.5, 1]`
/// (1 = identical up to relabeling; ≈ 0 = chance).
pub fn adjusted_rand_index(a: &[u32], b: &[u32]) -> f64 {
    assert_eq!(a.len(), b.len());
    let n = a.len();
    if n < 2 {
        return 1.0;
    }
    let ka = a.iter().copied().max().map_or(0, |m| m as usize + 1);
    let kb = b.iter().copied().max().map_or(0, |m| m as usize + 1);
    let mut table = vec![vec![0u64; kb]; ka];
    for (&x, &y) in a.iter().zip(b) {
        table[x as usize][y as usize] += 1;
    }
    let choose2 = |x: u64| -> f64 { (x * x.saturating_sub(1)) as f64 / 2.0 };
    let sum_ij: f64 = table.iter().flatten().map(|&x| choose2(x)).sum();
    let sum_a: f64 = table
        .iter()
        .map(|row| choose2(row.iter().sum::<u64>()))
        .sum();
    let sum_b: f64 = (0..kb)
        .map(|j| choose2(table.iter().map(|row| row[j]).sum::<u64>()))
        .sum();
    let total = choose2(n as u64);
    let expected = sum_a * sum_b / total;
    let max_index = 0.5 * (sum_a + sum_b);
    if (max_index - expected).abs() < 1e-12 {
        return 1.0;
    }
    (sum_ij - expected) / (max_index - expected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use acir_graph::gen::community::planted_partition;
    use acir_graph::gen::deterministic::{cycle, ring_of_cliques};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn embedding_shape_and_orthogonality() {
        let g = cycle(12).unwrap();
        let emb = spectral_embedding(&g, 3).unwrap();
        assert_eq!(emb.coords.len(), 12);
        assert_eq!(emb.coords[0].len(), 3);
        assert_eq!(emb.eigenvalues.len(), 3);
        // Eigenvalues ascend and are nontrivial.
        assert!(emb.eigenvalues[0] > 1e-9);
        assert!(emb.eigenvalues.windows(2).all(|w| w[0] <= w[1] + 1e-12));
    }

    #[test]
    fn embedding_validates() {
        let g = cycle(6).unwrap();
        assert!(spectral_embedding(&g, 0).is_err());
        assert!(spectral_embedding(&g, 6).is_err());
        let disc = acir_graph::Graph::from_pairs(4, [(0, 1), (2, 3)]).unwrap();
        assert!(spectral_embedding(&disc, 1).is_err());
    }

    #[test]
    fn kmeans_separates_obvious_blobs() {
        let mut pts = Vec::new();
        for i in 0..10 {
            pts.push(vec![0.0 + 0.01 * i as f64, 0.0]);
            pts.push(vec![5.0 + 0.01 * i as f64, 5.0]);
        }
        let mut rng = StdRng::seed_from_u64(1);
        let (assign, centroids, inertia) = kmeans(&pts, 2, 50, &mut rng).unwrap();
        assert_eq!(centroids.len(), 2);
        assert!(inertia < 1.0);
        // Even indices together, odd indices together.
        let c0 = assign[0];
        assert!(assign.iter().step_by(2).all(|&c| c == c0));
        assert!(assign.iter().skip(1).step_by(2).all(|&c| c != c0));
    }

    #[test]
    fn kmeans_validates() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(kmeans(&[], 1, 10, &mut rng).is_err());
        let pts = vec![vec![0.0], vec![1.0]];
        assert!(kmeans(&pts, 3, 10, &mut rng).is_err());
        assert!(kmeans(&pts, 0, 10, &mut rng).is_err());
        let ragged = vec![vec![0.0], vec![1.0, 2.0]];
        assert!(kmeans(&ragged, 1, 10, &mut rng).is_err());
    }

    #[test]
    fn spectral_clustering_recovers_ring_of_cliques() {
        let g = ring_of_cliques(4, 8).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let assign = spectral_clustering(&g, 4, 8, &mut rng).unwrap();
        // Ground truth: clique c = nodes 8c..8c+8.
        let truth: Vec<u32> = (0..32).map(|u| (u / 8) as u32).collect();
        let ari = adjusted_rand_index(&assign, &truth);
        assert!(ari > 0.95, "ARI = {ari}");
    }

    #[test]
    fn spectral_clustering_recovers_sbm() {
        let mut rng = StdRng::seed_from_u64(4);
        let pc = planted_partition(&mut rng, 3, 30, 0.5, 0.02).unwrap();
        let (g, map) = acir_graph::traversal::largest_component(&pc.graph);
        let assign = spectral_clustering(&g, 3, 8, &mut rng).unwrap();
        let truth: Vec<u32> = map.iter().map(|&old| pc.community[old as usize]).collect();
        let ari = adjusted_rand_index(&assign, &truth);
        assert!(ari > 0.9, "ARI = {ari}");
    }

    #[test]
    fn ari_properties() {
        let a = [0u32, 0, 1, 1];
        assert_eq!(adjusted_rand_index(&a, &a), 1.0);
        // Relabeling invariance.
        let b = [1u32, 1, 0, 0];
        assert_eq!(adjusted_rand_index(&a, &b), 1.0);
        // Orthogonal clustering scores low.
        let c = [0u32, 1, 0, 1];
        assert!(adjusted_rand_index(&a, &c) < 0.1);
        assert_eq!(adjusted_rand_index(&[0], &[0]), 1.0);
    }
}
