//! The graph matrices of §3.1.
//!
//! For a connected, weighted, undirected graph with adjacency `A` and
//! diagonal degree matrix `D`:
//!
//! * combinatorial Laplacian `L = D − A`;
//! * normalized Laplacian `𝓛 = D^{−1/2} L D^{−1/2} = I − 𝒜` where
//!   `𝒜 = D^{−1/2} A D^{−1/2}` is the normalized adjacency;
//! * random-walk transition matrix `M = A D^{−1}` (column-stochastic:
//!   each column sums to 1, matching the paper's "charge evolves as
//!   `M` times an input seed vector" convention in Eq. (2));
//! * lazy walk `W_α = αI + (1−α)M`.
//!
//! Everything stays in CSR with exactly the graph's sparsity (plus the
//! diagonal), honoring the paper's point that the Power Method wins at
//! scale because it does "not damage the sparsity of the matrix".
//!
//! Isolated (degree-0) nodes are permitted: they contribute a zero row
//! and column to `L`/`𝓛`, and `M` leaves their charge in place (the
//! convention that makes `M` substochastic rather than undefined).

use crate::Result;
use acir_graph::{Graph, NodeId};
use acir_linalg::CsrMatrix;

/// Sparse adjacency matrix `A` of the graph.
pub fn adjacency_matrix(g: &Graph) -> CsrMatrix {
    let n = g.n();
    let mut trip = Vec::with_capacity(g.arc_count());
    for u in 0..n as NodeId {
        for (v, w) in g.neighbors(u) {
            trip.push((u as usize, v as usize, w));
        }
    }
    CsrMatrix::from_triplets(n, n, trip)
}

/// Combinatorial Laplacian `L = D − A`.
///
/// Self-loops cancel out of `L` (they appear in both `D` and `A`), so
/// the result is always positive semidefinite with `L·1 = 0`.
pub fn combinatorial_laplacian(g: &Graph) -> CsrMatrix {
    let n = g.n();
    let mut trip = Vec::with_capacity(g.arc_count() + n);
    for u in 0..n as NodeId {
        let mut diag = g.degree(u);
        for (v, w) in g.neighbors(u) {
            if v == u {
                // Self-loop: contributes w to the degree and w to A_uu,
                // net zero in L.
                diag -= w;
            } else {
                trip.push((u as usize, v as usize, -w));
            }
        }
        trip.push((u as usize, u as usize, diag));
    }
    let mut m = CsrMatrix::from_triplets(n, n, trip);
    m.prune(0.0);
    m
}

/// Normalized adjacency `𝒜 = D^{−1/2} A D^{−1/2}` (degree-0 rows/cols
/// are zero).
pub fn normalized_adjacency(g: &Graph) -> CsrMatrix {
    let n = g.n();
    let inv_sqrt: Vec<f64> = g
        .degrees()
        .iter()
        .map(|&d| if d > 0.0 { 1.0 / d.sqrt() } else { 0.0 })
        .collect();
    let mut trip = Vec::with_capacity(g.arc_count());
    for u in 0..n as NodeId {
        for (v, w) in g.neighbors(u) {
            trip.push((
                u as usize,
                v as usize,
                w * inv_sqrt[u as usize] * inv_sqrt[v as usize],
            ));
        }
    }
    CsrMatrix::from_triplets(n, n, trip)
}

/// Normalized Laplacian `𝓛 = I − 𝒜` (for degree-0 nodes the diagonal
/// entry is 0, keeping `𝓛` PSD).
pub fn normalized_laplacian(g: &Graph) -> CsrMatrix {
    let n = g.n();
    let mut a = normalized_adjacency(g);
    a.scale(-1.0);
    // Add the identity on non-isolated nodes.
    let mut trip: Vec<(usize, usize, f64)> = Vec::with_capacity(n);
    for u in 0..n {
        if g.degree(u as NodeId) > 0.0 {
            trip.push((u, u, 1.0));
        }
    }
    let eye = CsrMatrix::from_triplets(n, n, trip);
    // Sum the two CSR matrices by re-tripleting (n is moderate; clarity
    // over micro-optimization here — the result is built once per graph).
    let mut all = Vec::with_capacity(a.nnz() + eye.nnz());
    for r in 0..n {
        for (c, v) in a.row(r) {
            all.push((r, c as usize, v));
        }
        for (c, v) in eye.row(r) {
            all.push((r, c as usize, v));
        }
    }
    let mut m = CsrMatrix::from_triplets(n, n, all);
    m.prune(0.0);
    m
}

/// Random-walk transition matrix `M = A D^{−1}` (column-stochastic).
///
/// Column `v` holds `w(u,v)/d_v`: multiplying a probability
/// distribution by `M` moves its mass along edges. Degree-0 columns are
/// zero (their mass is frozen by convention in [`crate::diffusion`]).
pub fn random_walk_matrix(g: &Graph) -> CsrMatrix {
    let n = g.n();
    let inv_deg: Vec<f64> = g
        .degrees()
        .iter()
        .map(|&d| if d > 0.0 { 1.0 / d } else { 0.0 })
        .collect();
    let mut trip = Vec::with_capacity(g.arc_count());
    for u in 0..n as NodeId {
        for (v, w) in g.neighbors(u) {
            trip.push((u as usize, v as usize, w * inv_deg[v as usize]));
        }
    }
    CsrMatrix::from_triplets(n, n, trip)
}

/// Lazy random-walk matrix `W_α = αI + (1−α)M` for holding probability
/// `α ∈ (0, 1)` (§3.1 "Lazy Random Walk").
pub fn lazy_walk_matrix(g: &Graph, alpha: f64) -> Result<CsrMatrix> {
    if !(0.0..1.0).contains(&alpha) || alpha == 0.0 {
        return Err(crate::SpectralError::InvalidArgument(format!(
            "lazy walk needs alpha in (0, 1), got {alpha}"
        )));
    }
    let n = g.n();
    let m = random_walk_matrix(g);
    let mut trip = Vec::with_capacity(m.nnz() + n);
    for r in 0..n {
        for (c, v) in m.row(r) {
            trip.push((r, c as usize, (1.0 - alpha) * v));
        }
        trip.push((r, r, alpha));
    }
    Ok(CsrMatrix::from_triplets(n, n, trip))
}

/// The trivial eigenvector of the normalized Laplacian: the unit vector
/// proportional to `D^{1/2}·1` (paper §3.1). `𝓛 v₁ = 0`.
pub fn trivial_eigenvector(g: &Graph) -> Vec<f64> {
    let mut v: Vec<f64> = g.degrees().iter().map(|&d| d.sqrt()).collect();
    acir_linalg::vector::normalize2(&mut v);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use acir_graph::gen::deterministic::{complete, cycle, path, star};
    use acir_linalg::vector;

    #[test]
    fn laplacian_rows_sum_to_zero() {
        let g = path(6).unwrap();
        let l = combinatorial_laplacian(&g);
        let mut y = vec![0.0; 6];
        l.matvec(&[1.0; 6], &mut y);
        assert!(vector::norm_inf(&y) < 1e-14);
        assert!(l.is_symmetric(1e-14));
    }

    #[test]
    fn laplacian_quadratic_form_is_cut_energy() {
        // xᵀLx = Σ_{(u,v)∈E} w(u,v)(x_u − x_v)².
        let g = Graph::from_edges(3, [(0, 1, 2.0), (1, 2, 1.0)]).unwrap();
        let l = combinatorial_laplacian(&g);
        let x = [1.0, 0.0, -1.0];
        // 2*(1-0)² + 1*(0+1)² = 3.
        assert!((l.quad_form(&x) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn self_loops_cancel_in_laplacian() {
        let g = Graph::from_edges(2, [(0, 0, 5.0), (0, 1, 1.0)]).unwrap();
        let l = combinatorial_laplacian(&g);
        assert_eq!(l.get(0, 0), 1.0); // only the real edge remains
        assert_eq!(l.get(0, 1), -1.0);
    }

    #[test]
    fn normalized_laplacian_trivial_eigenvector() {
        let g = star(5).unwrap();
        let nl = normalized_laplacian(&g);
        let v1 = trivial_eigenvector(&g);
        let mut y = vec![0.0; 5];
        nl.matvec(&v1, &mut y);
        assert!(vector::norm_inf(&y) < 1e-12, "𝓛 D^{{1/2}}1 = 0");
        assert!((vector::norm2(&v1) - 1.0).abs() < 1e-12);
        assert!(nl.is_symmetric(1e-12));
    }

    #[test]
    fn normalized_laplacian_spectrum_of_complete_graph() {
        // K_n: eigenvalues 0 and n/(n−1) (multiplicity n−1).
        let n = 5;
        let g = complete(n).unwrap();
        let nl = normalized_laplacian(&g).to_dense();
        let eig = acir_linalg::SymEig::new(&nl).unwrap();
        assert!(eig.eigenvalues[0].abs() < 1e-12);
        for k in 1..n {
            assert!((eig.eigenvalues[k] - n as f64 / (n as f64 - 1.0)).abs() < 1e-10);
        }
    }

    #[test]
    fn normalized_laplacian_spectrum_in_0_2() {
        let g = cycle(7).unwrap();
        let nl = normalized_laplacian(&g).to_dense();
        let eig = acir_linalg::SymEig::new(&nl).unwrap();
        assert!(eig.eigenvalues[0] > -1e-12);
        assert!(*eig.eigenvalues.last().unwrap() <= 2.0 + 1e-12);
    }

    #[test]
    fn walk_matrix_columns_stochastic() {
        let g = star(4).unwrap();
        let m = random_walk_matrix(&g);
        // Column sums: Σ_u M_uv = Σ_u w(u,v)/d_v = 1.
        let mut col_sums = vec![0.0; 4];
        m.matvec_transpose(&[1.0; 4], &mut col_sums);
        for &s in &col_sums {
            assert!((s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn walk_preserves_probability_mass() {
        let g = cycle(5).unwrap();
        let m = random_walk_matrix(&g);
        let mut p = vec![0.0; 5];
        p[2] = 1.0;
        let mut q = vec![0.0; 5];
        m.matvec(&p, &mut q);
        assert!((vector::sum(&q) - 1.0).abs() < 1e-12);
        // One step from node 2 on a cycle: half mass to each neighbor.
        assert!((q[1] - 0.5).abs() < 1e-12);
        assert!((q[3] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lazy_walk_mixes_slower() {
        let g = cycle(6).unwrap();
        let w = lazy_walk_matrix(&g, 0.5).unwrap();
        let mut p = vec![0.0; 6];
        p[0] = 1.0;
        let mut q = vec![0.0; 6];
        w.matvec(&p, &mut q);
        assert!((q[0] - 0.5).abs() < 1e-12); // holds half the mass
        assert!((vector::sum(&q) - 1.0).abs() < 1e-12);
        assert!(lazy_walk_matrix(&g, 0.0).is_err());
        assert!(lazy_walk_matrix(&g, 1.0).is_err());
    }

    #[test]
    fn isolated_nodes_are_harmless() {
        let g = Graph::from_pairs(3, [(0, 1)]).unwrap(); // node 2 isolated
        let l = combinatorial_laplacian(&g);
        assert_eq!(l.get(2, 2), 0.0);
        let nl = normalized_laplacian(&g);
        assert_eq!(nl.get(2, 2), 0.0);
        let m = random_walk_matrix(&g);
        let mut y = vec![0.0; 3];
        m.matvec(&[0.0, 0.0, 1.0], &mut y);
        // Mass on an isolated node goes nowhere under M itself.
        assert_eq!(vector::sum(&y), 0.0);
    }

    use acir_graph::Graph;
}
