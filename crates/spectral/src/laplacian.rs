//! The graph matrices of §3.1.
//!
//! For a connected, weighted, undirected graph with adjacency `A` and
//! diagonal degree matrix `D`:
//!
//! * combinatorial Laplacian `L = D − A`;
//! * normalized Laplacian `𝓛 = D^{−1/2} L D^{−1/2} = I − 𝒜` where
//!   `𝒜 = D^{−1/2} A D^{−1/2}` is the normalized adjacency;
//! * random-walk transition matrix `M = A D^{−1}` (column-stochastic:
//!   each column sums to 1, matching the paper's "charge evolves as
//!   `M` times an input seed vector" convention in Eq. (2));
//! * lazy walk `W_α = αI + (1−α)M`.
//!
//! Everything stays in CSR with exactly the graph's sparsity (plus the
//! diagonal), honoring the paper's point that the Power Method wins at
//! scale because it does "not damage the sparsity of the matrix".
//!
//! Isolated (degree-0) nodes are permitted: they contribute a zero row
//! and column to `L`/`𝓛`, and `M` leaves their charge in place (the
//! convention that makes `M` substochastic rather than undefined).

use crate::Result;
use acir_exec::ExecPool;
use acir_graph::{Graph, NodeId};
use acir_linalg::CsrMatrix;

/// Rows per parallel work unit when assembling graph matrices: row
/// generation is cheap per row, so chunks must be coarse enough to
/// amortize worker wake-up on large graphs (and small graphs collapse to
/// a single chunk, i.e. the sequential path).
const ROWS_MIN_CHUNK: usize = 2_048;

/// Assemble an `n × n` CSR matrix whose row `u` is produced by
/// `row_fn(u)` as column-sorted `(col, value)` pairs.
///
/// Rows are generated on the ambient [`ExecPool`]: each row is a pure
/// function of its index (the chunking is a function of `n` alone), and
/// the per-row results are concatenated in ascending row order, so the
/// assembled matrix is bit-identical at every thread count.
fn build_rows(n: usize, row_fn: impl Fn(usize) -> Vec<(u32, f64)> + Sync) -> CsrMatrix {
    let idx: Vec<usize> = (0..n).collect();
    let rows = ExecPool::from_env().par_map(&idx, ROWS_MIN_CHUNK, |&u| row_fn(u));
    let nnz: usize = rows.iter().map(Vec::len).sum();
    let mut row_ptr = Vec::with_capacity(n + 1);
    row_ptr.push(0usize);
    let mut col_idx = Vec::with_capacity(nnz);
    let mut values = Vec::with_capacity(nnz);
    for row in &rows {
        for &(c, v) in row {
            col_idx.push(c);
            values.push(v);
        }
        row_ptr.push(col_idx.len());
    }
    CsrMatrix::from_csr(n, n, row_ptr, col_idx, values)
        .expect("graph rows are column-sorted and in range")
}

/// Sparse adjacency matrix `A` of the graph.
pub fn adjacency_matrix(g: &Graph) -> CsrMatrix {
    build_rows(g.n(), |u| g.neighbors(u as NodeId).collect())
}

/// Combinatorial Laplacian `L = D − A`.
///
/// Self-loops cancel out of `L` (they appear in both `D` and `A`), so
/// the result is always positive semidefinite with `L·1 = 0`. Zero
/// diagonal entries (isolated or pure-self-loop nodes) are dropped,
/// keeping exactly the graph's sparsity plus the live diagonal.
pub fn combinatorial_laplacian(g: &Graph) -> CsrMatrix {
    build_rows(g.n(), |u| {
        let mut diag = g.degree(u as NodeId);
        let mut row: Vec<(u32, f64)> = Vec::with_capacity(g.degree_unweighted(u as NodeId) + 1);
        let mut diag_placed = false;
        for (v, w) in g.neighbors(u as NodeId) {
            if v as usize == u {
                // Self-loop: contributes w to the degree and w to A_uu,
                // net zero in L. Reserve the diagonal slot in place.
                diag -= w;
                row.push((v, 0.0));
                diag_placed = true;
            } else {
                if !diag_placed && (v as usize) > u {
                    row.push((u as u32, 0.0));
                    diag_placed = true;
                }
                row.push((v, -w));
            }
        }
        if !diag_placed {
            row.push((u as u32, 0.0));
        }
        for e in row.iter_mut() {
            if e.0 as usize == u {
                e.1 += diag;
            }
        }
        row.retain(|&(_, v)| v.abs() > 0.0);
        row
    })
}

/// Normalized adjacency `𝒜 = D^{−1/2} A D^{−1/2}` (degree-0 rows/cols
/// are zero).
pub fn normalized_adjacency(g: &Graph) -> CsrMatrix {
    let inv_sqrt: Vec<f64> = g
        .degrees()
        .iter()
        .map(|&d| if d > 0.0 { 1.0 / d.sqrt() } else { 0.0 })
        .collect();
    build_rows(g.n(), |u| {
        g.neighbors(u as NodeId)
            .map(|(v, w)| (v, w * inv_sqrt[u] * inv_sqrt[v as usize]))
            .collect()
    })
}

/// Normalized Laplacian `𝓛 = I − 𝒜` (for degree-0 nodes the diagonal
/// entry is 0, keeping `𝓛` PSD). Zero entries are dropped, as in
/// [`combinatorial_laplacian`].
pub fn normalized_laplacian(g: &Graph) -> CsrMatrix {
    let inv_sqrt: Vec<f64> = g
        .degrees()
        .iter()
        .map(|&d| if d > 0.0 { 1.0 / d.sqrt() } else { 0.0 })
        .collect();
    build_rows(g.n(), |u| {
        let isolated = inv_sqrt[u] == 0.0;
        let mut row: Vec<(u32, f64)> = Vec::with_capacity(g.degree_unweighted(u as NodeId) + 1);
        let mut diag_placed = false;
        for (v, w) in g.neighbors(u as NodeId) {
            let a_uv = w * inv_sqrt[u] * inv_sqrt[v as usize];
            if v as usize == u {
                row.push((v, -a_uv + 1.0));
                diag_placed = true;
            } else {
                if !diag_placed && (v as usize) > u && !isolated {
                    row.push((u as u32, 1.0));
                    diag_placed = true;
                }
                row.push((v, -a_uv));
            }
        }
        if !diag_placed && !isolated {
            row.push((u as u32, 1.0));
        }
        row.retain(|&(_, v)| v.abs() > 0.0);
        row
    })
}

/// Random-walk transition matrix `M = A D^{−1}` (column-stochastic).
///
/// Column `v` holds `w(u,v)/d_v`: multiplying a probability
/// distribution by `M` moves its mass along edges. Degree-0 columns are
/// zero (their mass is frozen by convention in [`crate::diffusion`]).
pub fn random_walk_matrix(g: &Graph) -> CsrMatrix {
    let inv_deg: Vec<f64> = g
        .degrees()
        .iter()
        .map(|&d| if d > 0.0 { 1.0 / d } else { 0.0 })
        .collect();
    build_rows(g.n(), |u| {
        g.neighbors(u as NodeId)
            .map(|(v, w)| (v, w * inv_deg[v as usize]))
            .collect()
    })
}

/// Lazy random-walk matrix `W_α = αI + (1−α)M` for holding probability
/// `α ∈ (0, 1)` (§3.1 "Lazy Random Walk").
pub fn lazy_walk_matrix(g: &Graph, alpha: f64) -> Result<CsrMatrix> {
    if !(0.0..1.0).contains(&alpha) || alpha == 0.0 {
        return Err(crate::SpectralError::InvalidArgument(format!(
            "lazy walk needs alpha in (0, 1), got {alpha}"
        )));
    }
    let inv_deg: Vec<f64> = g
        .degrees()
        .iter()
        .map(|&d| if d > 0.0 { 1.0 / d } else { 0.0 })
        .collect();
    Ok(build_rows(g.n(), |u| {
        let mut row: Vec<(u32, f64)> = Vec::with_capacity(g.degree_unweighted(u as NodeId) + 1);
        let mut diag_placed = false;
        for (v, w) in g.neighbors(u as NodeId) {
            let m_uv = w * inv_deg[v as usize];
            if v as usize == u {
                row.push((v, (1.0 - alpha) * m_uv + alpha));
                diag_placed = true;
            } else {
                if !diag_placed && (v as usize) > u {
                    row.push((u as u32, alpha));
                    diag_placed = true;
                }
                row.push((v, (1.0 - alpha) * m_uv));
            }
        }
        if !diag_placed {
            row.push((u as u32, alpha));
        }
        row
    }))
}

/// The trivial eigenvector of the normalized Laplacian: the unit vector
/// proportional to `D^{1/2}·1` (paper §3.1). `𝓛 v₁ = 0`.
pub fn trivial_eigenvector(g: &Graph) -> Vec<f64> {
    let mut v: Vec<f64> = g.degrees().iter().map(|&d| d.sqrt()).collect();
    acir_linalg::vector::normalize2(&mut v);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use acir_graph::gen::deterministic::{complete, cycle, path, star};
    use acir_linalg::vector;

    #[test]
    fn laplacian_rows_sum_to_zero() {
        let g = path(6).unwrap();
        let l = combinatorial_laplacian(&g);
        let mut y = vec![0.0; 6];
        l.matvec(&[1.0; 6], &mut y);
        assert!(vector::norm_inf(&y) < 1e-14);
        assert!(l.is_symmetric(1e-14));
    }

    #[test]
    fn laplacian_quadratic_form_is_cut_energy() {
        // xᵀLx = Σ_{(u,v)∈E} w(u,v)(x_u − x_v)².
        let g = Graph::from_edges(3, [(0, 1, 2.0), (1, 2, 1.0)]).unwrap();
        let l = combinatorial_laplacian(&g);
        let x = [1.0, 0.0, -1.0];
        // 2*(1-0)² + 1*(0+1)² = 3.
        assert!((l.quad_form(&x) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn self_loops_cancel_in_laplacian() {
        let g = Graph::from_edges(2, [(0, 0, 5.0), (0, 1, 1.0)]).unwrap();
        let l = combinatorial_laplacian(&g);
        assert_eq!(l.get(0, 0), 1.0); // only the real edge remains
        assert_eq!(l.get(0, 1), -1.0);
    }

    #[test]
    fn normalized_laplacian_trivial_eigenvector() {
        let g = star(5).unwrap();
        let nl = normalized_laplacian(&g);
        let v1 = trivial_eigenvector(&g);
        let mut y = vec![0.0; 5];
        nl.matvec(&v1, &mut y);
        assert!(vector::norm_inf(&y) < 1e-12, "𝓛 D^{{1/2}}1 = 0");
        assert!((vector::norm2(&v1) - 1.0).abs() < 1e-12);
        assert!(nl.is_symmetric(1e-12));
    }

    #[test]
    fn normalized_laplacian_spectrum_of_complete_graph() {
        // K_n: eigenvalues 0 and n/(n−1) (multiplicity n−1).
        let n = 5;
        let g = complete(n).unwrap();
        let nl = normalized_laplacian(&g).to_dense();
        let eig = acir_linalg::SymEig::new(&nl).unwrap();
        assert!(eig.eigenvalues[0].abs() < 1e-12);
        for k in 1..n {
            assert!((eig.eigenvalues[k] - n as f64 / (n as f64 - 1.0)).abs() < 1e-10);
        }
    }

    #[test]
    fn normalized_laplacian_spectrum_in_0_2() {
        let g = cycle(7).unwrap();
        let nl = normalized_laplacian(&g).to_dense();
        let eig = acir_linalg::SymEig::new(&nl).unwrap();
        assert!(eig.eigenvalues[0] > -1e-12);
        assert!(*eig.eigenvalues.last().unwrap() <= 2.0 + 1e-12);
    }

    #[test]
    fn walk_matrix_columns_stochastic() {
        let g = star(4).unwrap();
        let m = random_walk_matrix(&g);
        // Column sums: Σ_u M_uv = Σ_u w(u,v)/d_v = 1.
        let mut col_sums = vec![0.0; 4];
        m.matvec_transpose(&[1.0; 4], &mut col_sums);
        for &s in &col_sums {
            assert!((s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn walk_preserves_probability_mass() {
        let g = cycle(5).unwrap();
        let m = random_walk_matrix(&g);
        let mut p = vec![0.0; 5];
        p[2] = 1.0;
        let mut q = vec![0.0; 5];
        m.matvec(&p, &mut q);
        assert!((vector::sum(&q) - 1.0).abs() < 1e-12);
        // One step from node 2 on a cycle: half mass to each neighbor.
        assert!((q[1] - 0.5).abs() < 1e-12);
        assert!((q[3] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lazy_walk_mixes_slower() {
        let g = cycle(6).unwrap();
        let w = lazy_walk_matrix(&g, 0.5).unwrap();
        let mut p = vec![0.0; 6];
        p[0] = 1.0;
        let mut q = vec![0.0; 6];
        w.matvec(&p, &mut q);
        assert!((q[0] - 0.5).abs() < 1e-12); // holds half the mass
        assert!((vector::sum(&q) - 1.0).abs() < 1e-12);
        assert!(lazy_walk_matrix(&g, 0.0).is_err());
        assert!(lazy_walk_matrix(&g, 1.0).is_err());
    }

    #[test]
    fn isolated_nodes_are_harmless() {
        let g = Graph::from_pairs(3, [(0, 1)]).unwrap(); // node 2 isolated
        let l = combinatorial_laplacian(&g);
        assert_eq!(l.get(2, 2), 0.0);
        let nl = normalized_laplacian(&g);
        assert_eq!(nl.get(2, 2), 0.0);
        let m = random_walk_matrix(&g);
        let mut y = vec![0.0; 3];
        m.matvec(&[0.0, 0.0, 1.0], &mut y);
        // Mass on an isolated node goes nowhere under M itself.
        assert_eq!(vector::sum(&y), 0.0);
    }

    #[test]
    fn parallel_assembly_matches_triplet_reference_at_any_thread_count() {
        // A graph big enough to split into several row chunks, built from
        // a deterministic edge list.
        let n = 6000usize;
        let mut edges = Vec::new();
        let mut s = 0x9e3779b97f4a7c15u64;
        for u in 0..n as u32 {
            edges.push((u, (u + 1) % n as u32, 1.0 + (u % 7) as f64));
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            let v = (s % n as u64) as u32;
            if v != u {
                edges.push((u, v, 1.0 + (s % 5) as f64));
            }
        }
        edges.push((17, 17, 2.5)); // a self-loop, to hit diagonal merging
        let g = Graph::from_edges(n, edges).unwrap();

        // Triplet-path reference for L = D − A (the pre-parallel builder).
        let mut trip = Vec::new();
        for u in 0..n as NodeId {
            let mut diag = g.degree(u);
            for (v, w) in g.neighbors(u) {
                if v == u {
                    diag -= w;
                } else {
                    trip.push((u as usize, v as usize, -w));
                }
            }
            trip.push((u as usize, u as usize, diag));
        }
        let mut want = CsrMatrix::from_triplets(n, n, trip);
        want.prune(0.0);

        for threads in ["1", "4"] {
            std::env::set_var("ACIR_THREADS", threads);
            let l = combinatorial_laplacian(&g);
            assert_eq!(l.nnz(), want.nnz(), "nnz at {threads} threads");
            for r in [0usize, 17, 1234, n - 1] {
                let got: Vec<(u32, f64)> = l.row(r).collect();
                let exp: Vec<(u32, f64)> = want.row(r).collect();
                assert_eq!(got, exp, "row {r} at {threads} threads");
            }
            let nl = normalized_laplacian(&g);
            assert!(nl.is_symmetric(1e-12));
            let v1 = trivial_eigenvector(&g);
            let mut y = vec![0.0; n];
            nl.matvec(&v1, &mut y);
            assert!(vector::norm_inf(&y) < 1e-12, "𝓛·D^{{1/2}}1 = 0");
            let m = random_walk_matrix(&g);
            let mut cols = vec![0.0; n];
            m.matvec_transpose(&vec![1.0; n], &mut cols);
            assert!(cols.iter().all(|&c| (c - 1.0).abs() < 1e-12));
            std::env::remove_var("ACIR_THREADS");
        }
    }

    use acir_graph::Graph;
}
