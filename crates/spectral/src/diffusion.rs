//! The three diffusion dynamics of §3.1.
//!
//! Each assigns "charge" to nodes via a seed distribution and evolves it:
//!
//! * **Heat Kernel** — `H_t s = exp(−t𝓛)·s` with time parameter `t`;
//! * **PageRank** — `R_γ s = γ(I − (1−γ)M)^{−1}·s` with teleportation
//!   `γ` (paper Eq. (2));
//! * **Lazy Random Walk** — `W_α^k s` with holding probability `α` and
//!   step count `k`.
//!
//! Each has an *aggressiveness* parameter (`t`, `γ`, `k`) controlling
//! how far the dynamics run toward equilibrium. Run to the limit they
//! forget the seed and recover the trivial stationary distribution;
//! truncated early they compute a seed-dependent *regularized*
//! approximation to the leading nontrivial eigenvector — the central
//! phenomenon of the paper. Exact and truncated variants are both
//! provided so the experiments can measure the gap.

use crate::laplacian::{normalized_laplacian, random_walk_matrix};
use crate::{Result, SpectralError};
use acir_graph::{Graph, NodeId};
use acir_linalg::expm::expm_multiply;
use acir_linalg::solve::{cg, cg_budgeted, CgOptions};
use acir_linalg::{vector, CsrMatrix, LinOp};
use acir_runtime::{
    Budget, Certificate, Diagnostics, DivergenceCause, Exhaustion, GuardVerdict, KernelCtx,
    SolverOutcome,
};

/// Seed ("charge") distributions for diffusions.
#[derive(Debug, Clone)]
pub enum Seed {
    /// All mass on one node.
    Node(NodeId),
    /// Uniform over a node set.
    Set(Vec<NodeId>),
    /// Uniform over all nodes.
    Uniform,
    /// Degree-proportional (the stationary distribution of `M`).
    Degree,
    /// Explicit distribution (will be 1-normalized).
    Custom(Vec<f64>),
}

impl Seed {
    /// Materialize as a 1-normalized nonnegative vector of length `n`.
    pub fn to_vector(&self, g: &Graph) -> Result<Vec<f64>> {
        let n = g.n();
        let mut s = vec![0.0; n];
        match self {
            Seed::Node(u) => {
                if *u as usize >= n {
                    return Err(SpectralError::InvalidArgument(format!(
                        "seed node {u} out of range"
                    )));
                }
                s[*u as usize] = 1.0;
            }
            Seed::Set(nodes) => {
                if nodes.is_empty() {
                    return Err(SpectralError::InvalidArgument("empty seed set".into()));
                }
                for &u in nodes {
                    if u as usize >= n {
                        return Err(SpectralError::InvalidArgument(format!(
                            "seed node {u} out of range"
                        )));
                    }
                    s[u as usize] = 1.0;
                }
            }
            Seed::Uniform => s.fill(1.0),
            Seed::Degree => s.copy_from_slice(g.degrees()),
            Seed::Custom(v) => {
                if v.len() != n {
                    return Err(SpectralError::InvalidArgument(format!(
                        "custom seed length {} != n {}",
                        v.len(),
                        n
                    )));
                }
                if v.iter().any(|&x| x < 0.0 || !x.is_finite()) {
                    return Err(SpectralError::InvalidArgument(
                        "custom seed must be nonnegative and finite".into(),
                    ));
                }
                s.copy_from_slice(v);
            }
        }
        if vector::normalize1(&mut s) == 0.0 {
            return Err(SpectralError::InvalidArgument("seed has zero mass".into()));
        }
        Ok(s)
    }
}

/// Heat-kernel diffusion `exp(−t·𝓛)·s` on the *normalized* Laplacian,
/// computed with a Krylov budget of `krylov_dim` (≥ 30 is effectively
/// exact for `t ≲ 100` since `spec(𝓛) ⊆ [0, 2]`).
///
/// Aggressiveness: larger `t` diffuses further (and regularizes less in
/// the η ↔ t correspondence of the regularized SDP; see
/// `acir-regularize`).
pub fn heat_kernel(g: &Graph, t: f64, seed: &Seed, krylov_dim: usize) -> Result<Vec<f64>> {
    if !(t >= 0.0 && t.is_finite()) {
        return Err(SpectralError::InvalidArgument(format!(
            "heat kernel time must be nonnegative, got {t}"
        )));
    }
    let s = seed.to_vector(g)?;
    if t == 0.0 {
        return Ok(s);
    }
    let nl = normalized_laplacian(g);
    let mut neg = nl;
    neg.scale(-1.0);
    Ok(expm_multiply(&neg, t, &s, krylov_dim)?)
}

/// Heat-kernel diffusion via the Chebyshev route ([`acir_linalg::chebyshev`]):
/// `degree` matvecs, no orthogonalization, and — because a degree-`d`
/// polynomial of the Laplacian reaches only `d` hops — a *structurally
/// local* approximation at low degrees. Agrees with [`heat_kernel`] as
/// the degree grows.
pub fn heat_kernel_chebyshev(g: &Graph, t: f64, seed: &Seed, degree: usize) -> Result<Vec<f64>> {
    if !(t >= 0.0 && t.is_finite()) {
        return Err(SpectralError::InvalidArgument(format!(
            "heat kernel time must be nonnegative, got {t}"
        )));
    }
    let s = seed.to_vector(g)?;
    if t == 0.0 {
        return Ok(s);
    }
    let nl = normalized_laplacian(g);
    // spec(𝓛) ⊆ [0, 2] always.
    Ok(acir_linalg::chebyshev::cheb_heat_kernel(
        &nl,
        t,
        &s,
        2.0,
        degree.max(1),
    )?)
}

/// Batched [`heat_kernel_chebyshev`]: diffuse every seed in one pass.
///
/// The normalized Laplacian is built once and each Chebyshev degree
/// costs a single blocked SpMM over the whole batch
/// ([`acir_linalg::chebyshev::cheb_heat_kernel_multi`]), which is how
/// the NCP and case-study sweeps amortize their many-seed runs. Every
/// output is bit-identical to the corresponding single-seed call.
pub fn heat_kernel_chebyshev_multi(
    g: &Graph,
    t: f64,
    seeds: &[Seed],
    degree: usize,
) -> Result<Vec<Vec<f64>>> {
    if !(t >= 0.0 && t.is_finite()) {
        return Err(SpectralError::InvalidArgument(format!(
            "heat kernel time must be nonnegative, got {t}"
        )));
    }
    let vs: Vec<Vec<f64>> = seeds
        .iter()
        .map(|s| s.to_vector(g))
        .collect::<Result<_>>()?;
    if t == 0.0 {
        return Ok(vs);
    }
    let nl = normalized_laplacian(g);
    Ok(acir_linalg::chebyshev::cheb_heat_kernel_multi(
        &nl,
        t,
        &vs,
        2.0,
        degree.max(1),
    )?)
}

/// Batched [`pagerank_power`]: advance one truncated-PageRank recurrence
/// per seed in lockstep, so each sweep multiplies `M` into the whole
/// batch at once ([`acir_linalg::CsrMatrix::matvec_multi_ws`]). Per-seed
/// arithmetic is unchanged, so each `(vector, delta)` pair is
/// bit-identical to the corresponding independent call.
pub fn pagerank_power_multi(
    g: &Graph,
    gamma: f64,
    seeds: &[Seed],
    iters: usize,
) -> Result<Vec<(Vec<f64>, f64)>> {
    if !(0.0 < gamma && gamma <= 1.0) {
        return Err(SpectralError::InvalidArgument(format!(
            "pagerank needs gamma in (0, 1], got {gamma}"
        )));
    }
    let ss: Vec<Vec<f64>> = seeds
        .iter()
        .map(|s| s.to_vector(g))
        .collect::<Result<_>>()?;
    let m = random_walk_matrix(g);
    let n = g.n();
    let mut xs = ss.clone();
    let mut deltas = vec![0.0; ss.len()];
    // Staging workspace and output batch held across sweeps: after the
    // first sweep the SpMM allocates nothing
    // ([`acir_linalg::CsrMatrix::matvec_multi_ws`]).
    let mut ws = acir_linalg::Workspace::default();
    let mut mxs: Vec<Vec<f64>> = Vec::new();
    for _ in 0..iters {
        m.matvec_multi_ws(&xs, &mut ws, &mut mxs);
        for ((x, mx), (s, delta)) in xs.iter_mut().zip(&mxs).zip(ss.iter().zip(&mut deltas)) {
            *delta = 0.0;
            for i in 0..n {
                let next = gamma * s[i] + (1.0 - gamma) * mx[i];
                *delta += (next - x[i]).abs();
                x[i] = next;
            }
        }
    }
    Ok(xs.into_iter().zip(deltas).collect())
}

/// The symmetrized PageRank system operator `I − (1−γ)·𝒜`.
struct SysOp<'a> {
    a: &'a CsrMatrix,
    c: f64,
}
impl LinOp for SysOp<'_> {
    fn dim(&self) -> usize {
        self.a.nrows()
    }
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.a.matvec(x, y);
        for (yi, xi) in y.iter_mut().zip(x) {
            *yi = *xi - self.c * *yi;
        }
    }
}

fn validate_gamma(gamma: f64) -> Result<()> {
    if !(0.0 < gamma && gamma <= 1.0) {
        return Err(SpectralError::InvalidArgument(format!(
            "pagerank needs gamma in (0, 1], got {gamma}"
        )));
    }
    Ok(())
}

fn validate_degrees(g: &Graph) -> Result<()> {
    if g.degrees().iter().any(|&d| d <= 0.0) {
        return Err(SpectralError::InvalidArgument(
            "pagerank requires positive degrees (no isolated nodes)".into(),
        ));
    }
    Ok(())
}

/// Assemble the symmetrized SPD system `(I − (1−γ)𝒜) y = γ D^{−1/2} s`
/// shared by the exact and budgeted PageRank solvers: degree square
/// roots, normalized adjacency, right-hand side, and CG options.
fn pagerank_system(g: &Graph, gamma: f64, s: &[f64]) -> (Vec<f64>, CsrMatrix, Vec<f64>, CgOptions) {
    let n = g.n();
    let sqrt_d: Vec<f64> = g.degrees().iter().map(|&d| d.sqrt()).collect();
    let a_norm = crate::laplacian::normalized_adjacency(g);
    let b: Vec<f64> = (0..n).map(|i| gamma * s[i] / sqrt_d[i]).collect();
    let opts = CgOptions {
        max_iters: 10_000,
        tol: 1e-12,
    };
    (sqrt_d, a_norm, b, opts)
}

/// Exact PageRank vector `R_γ s = γ(I − (1−γ)M)^{−1} s` (paper Eq. (2)),
/// via the symmetrized SPD system solved with conjugate gradient:
///
/// with `x = D^{1/2} y`, `(I − (1−γ)𝒜) y = γ D^{−1/2} s` where
/// `𝒜 = D^{−1/2}AD^{−1/2}` is symmetric with spectrum in `[−1, 1]`, so
/// the system matrix is SPD for `γ ∈ (0, 1]`.
///
/// Requires all degrees positive (run on a connected component).
pub fn pagerank(g: &Graph, gamma: f64, seed: &Seed) -> Result<Vec<f64>> {
    validate_gamma(gamma)?;
    validate_degrees(g)?;
    let s = seed.to_vector(g)?;
    if gamma == 1.0 {
        return Ok(s);
    }
    let n = g.n();
    let (sqrt_d, a_norm, b, opts) = pagerank_system(g, gamma, &s);
    let op = SysOp {
        a: &a_norm,
        c: 1.0 - gamma,
    };
    let res = cg(&op, &b, &vec![0.0; n], &opts)?;
    if !res.converged {
        return Err(SpectralError::Linalg(
            acir_linalg::LinalgError::NotConverged {
                iterations: res.iterations,
                residual: res.relative_residual,
            },
        ));
    }
    Ok(res.x.iter().zip(&sqrt_d).map(|(y, d)| y * d).collect())
}

/// Budgeted variant of [`pagerank`]: the same symmetrized CG solve
/// under a resource [`Budget`], returning a structured
/// [`SolverOutcome`].
///
/// On exhaustion the best CG iterate is mapped back through
/// `x = D^{1/2} y` and returned with its
/// [`acir_runtime::Certificate::ResidualNorm`] — the relative residual
/// of the *symmetrized* system, which bounds the PageRank error up to
/// the conditioning of `D^{1/2}`. Early-truncated PageRank is exactly
/// the paper's regularized approximation, so a budget here is an
/// aggressiveness knob, not a failure mode.
pub fn pagerank_budgeted(
    g: &Graph,
    gamma: f64,
    seed: &Seed,
    budget: &Budget,
) -> Result<SolverOutcome<Vec<f64>>> {
    validate_gamma(gamma)?;
    validate_degrees(g)?;
    let s = seed.to_vector(g)?;
    if gamma == 1.0 {
        let mut diags = Diagnostics::for_kernel("spectral.pagerank");
        diags.note("gamma = 1: PageRank is the seed itself");
        return Ok(SolverOutcome::converged(s, diags));
    }
    let n = g.n();
    let (sqrt_d, a_norm, b, opts) = pagerank_system(g, gamma, &s);
    let op = SysOp {
        a: &a_norm,
        c: 1.0 - gamma,
    };
    let out = cg_budgeted(&op, &b, &vec![0.0; n], &opts, budget)?;
    let mut out = out.map(|res| res.x.iter().zip(&sqrt_d).map(|(y, d)| y * d).collect());
    out.diagnostics_mut().wrap_span("spectral.pagerank");
    Ok(out)
}

/// Budgeted variant of [`heat_kernel_chebyshev`]: the same Chebyshev
/// evaluation under a resource [`Budget`].
///
/// Exhaustion returns the series truncated at the last affordable
/// degree with an [`acir_runtime::Certificate::ResidualNorm`] bounding
/// the dropped Chebyshev tail (`Σ_{k>d} |c_k| · ‖s‖`); NaN injection in
/// the operator surfaces as a structured `Diverged`, never a poisoned
/// vector.
pub fn heat_kernel_chebyshev_budgeted(
    g: &Graph,
    t: f64,
    seed: &Seed,
    degree: usize,
    budget: &Budget,
) -> Result<SolverOutcome<Vec<f64>>> {
    if !(t >= 0.0 && t.is_finite()) {
        return Err(SpectralError::InvalidArgument(format!(
            "heat kernel time must be nonnegative, got {t}"
        )));
    }
    let s = seed.to_vector(g)?;
    if t == 0.0 {
        let mut diags = Diagnostics::for_kernel("spectral.heat_kernel");
        diags.note("t = 0: heat kernel is the identity");
        return Ok(SolverOutcome::converged(s, diags));
    }
    let nl = normalized_laplacian(g);
    let mut out =
        acir_linalg::chebyshev::cheb_heat_kernel_budgeted(&nl, t, &s, 2.0, degree.max(1), budget)?;
    out.diagnostics_mut().wrap_span("spectral.heat_kernel");
    Ok(out)
}

/// Truncated iterative PageRank: `x ← γs + (1−γ)Mx` for `iters`
/// iterations from `x = s`.
///
/// This is the practitioner's Power-Method variant of Eq. (2); with
/// `iters → ∞` it converges to [`pagerank`], truncated early it is the
/// §3.1 regularized approximation. Returns the iterate and the final
/// update norm (a convergence certificate the caller may ignore —
/// deliberately, truncation is the point).
pub fn pagerank_power(g: &Graph, gamma: f64, seed: &Seed, iters: usize) -> Result<(Vec<f64>, f64)> {
    let mut ctx = KernelCtx::new();
    match pagerank_power_ctx(g, gamma, seed, iters, &mut ctx)? {
        SolverOutcome::Converged { value, .. } => Ok(value),
        _ => unreachable!("an inert context can neither exhaust nor diverge"),
    }
}

enum PowerExit {
    Done,
    Exhausted(Exhaustion),
    Diverged(DivergenceCause),
}

/// [`pagerank_power`] under an explicit [`KernelCtx`]: the same
/// recurrence with metering, guarding, and tracing routed through the
/// context. An inert context reproduces [`pagerank_power`] bit for bit;
/// a metered one may stop after fewer sweeps and certifies the iterate
/// with its last update norm (`ℓ₁` distance between consecutive
/// iterates — truncation is the paper's regularization, not a failure).
pub fn pagerank_power_ctx(
    g: &Graph,
    gamma: f64,
    seed: &Seed,
    iters: usize,
    ctx: &mut KernelCtx,
) -> Result<SolverOutcome<(Vec<f64>, f64)>> {
    validate_gamma(gamma)?;
    let _spmv = ctx.spmv_scope();
    let s = seed.to_vector(g)?;
    let m = random_walk_matrix(g);
    let n = g.n();
    let sweep_work = m.nnz() as u64;
    let mut x = s.clone();
    let mut mx = vec![0.0; n];
    let mut delta = 0.0;
    let mut exit = PowerExit::Done;
    // CORE LOOP
    for k in 0..iters {
        m.matvec(&x, &mut mx);
        delta = 0.0;
        for i in 0..n {
            let next = gamma * s[i] + (1.0 - gamma) * mx[i];
            delta += (next - x[i]).abs();
            x[i] = next;
        }
        ctx.push_residual(delta);
        if let GuardVerdict::Halt(cause) = ctx.observe(delta) {
            exit = PowerExit::Diverged(cause);
            break;
        }
        ctx.tick_iter();
        if let Some(exhausted) = ctx.add_work(sweep_work) {
            ctx.note_with(|| format!("stopped after sweep {} of {iters}", k + 1));
            exit = PowerExit::Exhausted(exhausted);
            break;
        }
    }
    let diags = ctx.finish();
    Ok(match exit {
        PowerExit::Done => SolverOutcome::converged((x, delta), diags),
        PowerExit::Exhausted(exhausted) => SolverOutcome::exhausted(
            (x, delta),
            exhausted,
            Certificate::ResidualNorm { value: delta },
            diags,
        ),
        PowerExit::Diverged(cause) => SolverOutcome::diverged(cause, diags),
    })
}

/// Budgeted variant of [`pagerank_power`]: the truncated recurrence
/// under a resource [`Budget`], each sweep costing `nnz(M)` work units.
pub fn pagerank_power_budgeted(
    g: &Graph,
    gamma: f64,
    seed: &Seed,
    iters: usize,
    budget: &Budget,
) -> Result<SolverOutcome<(Vec<f64>, f64)>> {
    let mut ctx = KernelCtx::budgeted("spectral.pagerank_power", budget);
    pagerank_power_ctx(g, gamma, seed, iters, &mut ctx)
}

/// `k` steps of the lazy random walk `W_α = αI + (1−α)M` from the seed.
///
/// Aggressiveness: more steps equilibrate further; fewer steps keep the
/// output seed-local.
pub fn lazy_walk(g: &Graph, alpha: f64, steps: usize, seed: &Seed) -> Result<Vec<f64>> {
    if !(0.0 < alpha && alpha < 1.0) {
        return Err(SpectralError::InvalidArgument(format!(
            "lazy walk needs alpha in (0, 1), got {alpha}"
        )));
    }
    let s = seed.to_vector(g)?;
    let m = random_walk_matrix(g);
    let n = g.n();
    let mut x = s;
    let mut mx = vec![0.0; n];
    for _ in 0..steps {
        m.matvec(&x, &mut mx);
        for i in 0..n {
            x[i] = alpha * x[i] + (1.0 - alpha) * mx[i];
        }
    }
    Ok(x)
}

/// The stationary distribution of the natural random walk:
/// `π_u = d_u / vol(V)` — the limit every aggressive diffusion forgets
/// its seed toward (on connected non-bipartite graphs).
pub fn stationary_distribution(g: &Graph) -> Vec<f64> {
    let vol = g.total_volume();
    if vol == 0.0 {
        return vec![0.0; g.n()];
    }
    g.degrees().iter().map(|&d| d / vol).collect()
}

/// Total-variation distance between two distributions: `½‖p − q‖₁`.
pub fn tv_distance(p: &[f64], q: &[f64]) -> f64 {
    debug_assert_eq!(p.len(), q.len());
    0.5 * p.iter().zip(q).map(|(a, b)| (a - b).abs()).sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use acir_graph::gen::deterministic::{barbell, complete, cycle, path, star};

    #[test]
    fn seed_vectors() {
        let g = path(4).unwrap();
        assert_eq!(
            Seed::Node(2).to_vector(&g).unwrap(),
            vec![0.0, 0.0, 1.0, 0.0]
        );
        let set = Seed::Set(vec![0, 1]).to_vector(&g).unwrap();
        assert_eq!(set, vec![0.5, 0.5, 0.0, 0.0]);
        let uni = Seed::Uniform.to_vector(&g).unwrap();
        assert!((vector::sum(&uni) - 1.0).abs() < 1e-12);
        let deg = Seed::Degree.to_vector(&g).unwrap();
        assert!((deg[1] - 2.0 / 6.0).abs() < 1e-12);
        let custom = Seed::Custom(vec![2.0, 0.0, 0.0, 2.0])
            .to_vector(&g)
            .unwrap();
        assert_eq!(custom, vec![0.5, 0.0, 0.0, 0.5]);
    }

    #[test]
    fn seed_validation() {
        let g = path(3).unwrap();
        assert!(Seed::Node(9).to_vector(&g).is_err());
        assert!(Seed::Set(vec![]).to_vector(&g).is_err());
        assert!(Seed::Set(vec![7]).to_vector(&g).is_err());
        assert!(Seed::Custom(vec![1.0]).to_vector(&g).is_err());
        assert!(Seed::Custom(vec![-1.0, 0.0, 0.0]).to_vector(&g).is_err());
        assert!(Seed::Custom(vec![0.0; 3]).to_vector(&g).is_err());
    }

    #[test]
    fn heat_kernel_zero_time_is_identity() {
        let g = cycle(6).unwrap();
        let s = heat_kernel(&g, 0.0, &Seed::Node(0), 20).unwrap();
        assert_eq!(s[0], 1.0);
        assert!(heat_kernel(&g, -1.0, &Seed::Node(0), 20).is_err());
    }

    #[test]
    fn heat_kernel_matches_dense_reference() {
        let g = star(7).unwrap();
        let t = 1.3;
        let out = heat_kernel(&g, t, &Seed::Node(3), g.n()).unwrap();
        // Dense reference via the symmetric eigensolver.
        let nl = normalized_laplacian(&g).to_dense();
        let eig = acir_linalg::SymEig::new(&nl).unwrap();
        let h = eig.matrix_function(|lam| (-t * lam).exp());
        let mut expected = vec![0.0; g.n()];
        let mut s = vec![0.0; g.n()];
        s[3] = 1.0;
        h.gemv(1.0, &s, 0.0, &mut expected);
        assert!(vector::dist2(&out, &expected) < 1e-9);
    }

    #[test]
    fn chebyshev_heat_kernel_matches_krylov_route() {
        let g = barbell(5, 2).unwrap();
        let t = 1.9;
        let krylov = heat_kernel(&g, t, &Seed::Node(2), g.n()).unwrap();
        let cheb = heat_kernel_chebyshev(&g, t, &Seed::Node(2), 50).unwrap();
        assert!(vector::dist2(&krylov, &cheb) < 1e-9);
        // t = 0 short-circuits; bad t rejected.
        let id = heat_kernel_chebyshev(&g, 0.0, &Seed::Node(2), 10).unwrap();
        assert_eq!(id[2], 1.0);
        assert!(heat_kernel_chebyshev(&g, -1.0, &Seed::Node(2), 10).is_err());
    }

    #[test]
    fn batched_diffusions_bit_identical_to_independent_runs() {
        let g = barbell(6, 2).unwrap();
        let seeds = vec![Seed::Node(0), Seed::Node(7), Seed::Uniform];
        for threads in ["1", "4"] {
            std::env::set_var("ACIR_THREADS", threads);
            let batched = pagerank_power_multi(&g, 0.1, &seeds, 25).unwrap();
            for (seed, (x, delta)) in seeds.iter().zip(&batched) {
                let (want_x, want_delta) = pagerank_power(&g, 0.1, seed, 25).unwrap();
                assert_eq!(&want_x, x, "pagerank batch at {threads} threads");
                assert_eq!(want_delta.to_bits(), delta.to_bits());
            }
            let hk = heat_kernel_chebyshev_multi(&g, 1.2, &seeds, 30).unwrap();
            for (seed, got) in seeds.iter().zip(&hk) {
                let want = heat_kernel_chebyshev(&g, 1.2, seed, 30).unwrap();
                assert_eq!(&want, got, "heat kernel batch at {threads} threads");
            }
            std::env::remove_var("ACIR_THREADS");
        }
        assert!(pagerank_power_multi(&g, 0.0, &seeds, 3).is_err());
        assert!(heat_kernel_chebyshev_multi(&g, -1.0, &seeds, 3).is_err());
        assert!(heat_kernel_chebyshev_multi(&g, 0.0, &[Seed::Node(1)], 3).unwrap()[0][1] == 1.0);
    }

    #[test]
    fn pagerank_solves_the_resolvent_exactly() {
        // Verify (I − (1−γ)M) x = γ s.
        let g = barbell(4, 1).unwrap();
        let gamma = 0.2;
        let seed = Seed::Node(0);
        let x = pagerank(&g, gamma, &seed).unwrap();
        let m = random_walk_matrix(&g);
        let mut mx = vec![0.0; g.n()];
        m.matvec(&x, &mut mx);
        let s = seed.to_vector(&g).unwrap();
        for i in 0..g.n() {
            let lhs = x[i] - (1.0 - gamma) * mx[i];
            assert!((lhs - gamma * s[i]).abs() < 1e-9, "row {i}");
        }
        // PageRank of a probability seed is a probability vector.
        assert!((vector::sum(&x) - 1.0).abs() < 1e-9);
        assert!(x.iter().all(|&v| v >= -1e-12));
    }

    #[test]
    fn pagerank_gamma_one_returns_seed() {
        let g = cycle(5).unwrap();
        let x = pagerank(&g, 1.0, &Seed::Node(2)).unwrap();
        assert_eq!(x[2], 1.0);
    }

    #[test]
    fn pagerank_power_converges_to_exact() {
        let g = complete(6).unwrap();
        let gamma = 0.15;
        let exact = pagerank(&g, gamma, &Seed::Node(1)).unwrap();
        let (approx, delta) = pagerank_power(&g, gamma, &Seed::Node(1), 200).unwrap();
        assert!(vector::dist2(&exact, &approx) < 1e-9);
        assert!(delta < 1e-10);
    }

    #[test]
    fn pagerank_power_truncation_stays_seed_biased() {
        // Few iterations: the output still concentrates near the seed
        // (the paper's point about truncated dynamics).
        let g = path(30).unwrap();
        let (x, _) = pagerank_power(&g, 0.05, &Seed::Node(0), 3).unwrap();
        assert!(x[0] > x[15], "seed end should hold more mass");
        // More iterations move the iterate closer to the exact PPR
        // fixed point (pointwise comparisons would be brittle on a
        // bipartite path, where mass parity oscillates).
        let exact = pagerank(&g, 0.05, &Seed::Node(0)).unwrap();
        let (x_long, _) = pagerank_power(&g, 0.05, &Seed::Node(0), 500).unwrap();
        assert!(tv_distance(&x_long, &exact) < tv_distance(&x, &exact));
        assert!(tv_distance(&x_long, &exact) < 1e-9);
    }

    #[test]
    fn pagerank_budgeted_unlimited_matches_plain() {
        let g = barbell(4, 1).unwrap();
        let out = pagerank_budgeted(&g, 0.2, &Seed::Node(0), &Budget::unlimited()).unwrap();
        assert!(out.is_converged());
        let exact = pagerank(&g, 0.2, &Seed::Node(0)).unwrap();
        assert!(vector::dist2(out.value().unwrap(), &exact) < 1e-9);
        // gamma = 1 short-circuits.
        let one = pagerank_budgeted(&g, 1.0, &Seed::Node(2), &Budget::iterations(1)).unwrap();
        assert!(one.is_converged());
        assert_eq!(one.value().unwrap()[2], 1.0);
    }

    #[test]
    fn pagerank_budgeted_exhaustion_is_certified_partial() {
        let g = path(50).unwrap();
        let out = pagerank_budgeted(&g, 0.01, &Seed::Node(0), &Budget::iterations(3)).unwrap();
        assert!(!out.is_converged() && out.is_usable());
        let slack = out.certificate().unwrap().slack();
        assert!(slack > 0.0 && slack.is_finite());
        // The partial iterate is still seed-biased — a usable
        // regularized answer, per the paper.
        let x = out.value().unwrap();
        assert!(x[0] > x[25]);
    }

    #[test]
    fn heat_kernel_chebyshev_budgeted_matches_and_degrades() {
        let g = barbell(5, 2).unwrap();
        let t = 1.9;
        let out = heat_kernel_chebyshev_budgeted(&g, t, &Seed::Node(2), 50, &Budget::unlimited())
            .unwrap();
        assert!(out.is_converged());
        let plain = heat_kernel_chebyshev(&g, t, &Seed::Node(2), 50).unwrap();
        assert!(vector::dist2(out.value().unwrap(), &plain) < 1e-12);
        // Starve it: partial series with a finite tail bound.
        let starved =
            heat_kernel_chebyshev_budgeted(&g, t, &Seed::Node(2), 50, &Budget::work(4)).unwrap();
        assert!(!starved.is_converged() && starved.is_usable());
        let slack = starved.certificate().unwrap().slack();
        let err = vector::dist2(starved.value().unwrap(), &plain);
        assert!(
            err <= slack + 1e-9,
            "error {err} exceeds tail bound {slack}"
        );
    }

    #[test]
    fn pagerank_power_budgeted_matches_and_truncates() {
        let g = path(20).unwrap();
        // Unlimited budget: bit-identical to the plain recurrence.
        let (want_x, want_delta) = pagerank_power(&g, 0.1, &Seed::Node(0), 40).unwrap();
        let out =
            pagerank_power_budgeted(&g, 0.1, &Seed::Node(0), 40, &Budget::unlimited()).unwrap();
        assert!(out.is_converged());
        let (x, delta) = out.value().unwrap();
        assert_eq!(&want_x, x);
        assert_eq!(want_delta.to_bits(), delta.to_bits());
        // Starved: exhausts with the update norm as certificate, and the
        // partial iterate matches the same number of plain sweeps.
        let starved =
            pagerank_power_budgeted(&g, 0.1, &Seed::Node(0), 40, &Budget::iterations(3)).unwrap();
        assert!(!starved.is_converged() && starved.is_usable());
        let (x3, _) = starved.value().unwrap();
        let (want3, _) = pagerank_power(&g, 0.1, &Seed::Node(0), 3).unwrap();
        assert_eq!(&want3, x3);
        assert!(starved.certificate().unwrap().slack() > 0.0);
    }

    #[test]
    fn pagerank_validates() {
        let g = cycle(4).unwrap();
        assert!(pagerank(&g, 0.0, &Seed::Node(0)).is_err());
        assert!(pagerank(&g, 1.5, &Seed::Node(0)).is_err());
        let iso = acir_graph::Graph::from_pairs(3, [(0, 1)]).unwrap();
        assert!(pagerank(&iso, 0.2, &Seed::Node(0)).is_err());
        assert!(pagerank_power(&g, 0.0, &Seed::Node(0), 5).is_err());
    }

    #[test]
    fn lazy_walk_preserves_mass_and_equilibrates() {
        let g = barbell(4, 0).unwrap();
        let x1 = lazy_walk(&g, 0.5, 1, &Seed::Node(0)).unwrap();
        assert!((vector::sum(&x1) - 1.0).abs() < 1e-12);
        let x_inf = lazy_walk(&g, 0.5, 4000, &Seed::Node(0)).unwrap();
        let pi = stationary_distribution(&g);
        assert!(
            tv_distance(&x_inf, &pi) < 1e-6,
            "tv = {}",
            tv_distance(&x_inf, &pi)
        );
        assert!(lazy_walk(&g, 0.0, 1, &Seed::Node(0)).is_err());
        assert!(lazy_walk(&g, 1.0, 1, &Seed::Node(0)).is_err());
    }

    #[test]
    fn truncated_lazy_walk_depends_on_seed_equilibrated_does_not() {
        // The paper: "if one runs any of these diffusive dynamics to a
        // limiting value ... an exact answer is computed, independent of
        // the initial seed vector; but if one truncates this process
        // early, then some sort of approximation, which in general
        // depends strongly on the initial seed set, is computed."
        let g = barbell(5, 0).unwrap();
        let short_a = lazy_walk(&g, 0.5, 2, &Seed::Node(0)).unwrap();
        let short_b = lazy_walk(&g, 0.5, 2, &Seed::Node(9)).unwrap();
        assert!(tv_distance(&short_a, &short_b) > 0.5);
        let long_a = lazy_walk(&g, 0.5, 5000, &Seed::Node(0)).unwrap();
        let long_b = lazy_walk(&g, 0.5, 5000, &Seed::Node(9)).unwrap();
        assert!(tv_distance(&long_a, &long_b) < 1e-6);
    }

    #[test]
    fn stationary_distribution_is_fixed_point() {
        let g = star(5).unwrap();
        let pi = stationary_distribution(&g);
        let m = random_walk_matrix(&g);
        let mut mpi = vec![0.0; 5];
        m.matvec(&pi, &mut mpi);
        assert!(vector::dist2(&pi, &mpi) < 1e-12);
        let empty = acir_graph::Graph::from_pairs(2, []).unwrap();
        assert_eq!(stationary_distribution(&empty), vec![0.0, 0.0]);
    }

    #[test]
    fn tv_distance_properties() {
        assert_eq!(tv_distance(&[1.0, 0.0], &[0.0, 1.0]), 1.0);
        assert_eq!(tv_distance(&[0.5, 0.5], &[0.5, 0.5]), 0.0);
    }
}
