//! # acir
//!
//! Umbrella crate of the ACIR project — a from-scratch Rust
//! reproduction of Michael W. Mahoney, *"Approximate Computation and
//! Implicit Regularization for Very Large-scale Data Analysis"*
//! (PODS 2012, arXiv:1203.0786).
//!
//! The paper's thesis: **approximate computation, in and of itself,
//! implicitly performs statistical regularization.** This workspace
//! builds every system the paper's three case studies rest on —
//! sparse linear algebra, graph generators, global and strongly local
//! diffusions, spectral and flow-based (Metis+MQI) partitioning, and
//! the regularized-SDP machinery — and regenerates the paper's
//! evaluation (Figure 1 and the in-text quantitative claims).
//!
//! ## Layout
//!
//! | crate | contents |
//! |-------|----------|
//! | `acir-linalg` | dense/sparse kernels, Jacobi & Lanczos eigensolvers, CG, matrix exponentials |
//! | `acir-graph` | CSR graphs, traversal, generators (incl. worst cases and the Figure 1 surrogate) |
//! | `acir-spectral` | Laplacians, Fiedler vectors, Heat-Kernel / PageRank / Lazy-Walk diffusions |
//! | `acir-local` | ACL push, Spielman–Teng Nibble, heat-kernel push, MOV, sweep cuts |
//! | `acir-flow` | Dinic max-flow, MQI, FlowImprove |
//! | `acir-partition` | conductance, multilevel partitioning, NCPs, niceness, Cheeger checks |
//! | `acir-regularize` | explicit regularization, the Problem (5) SDP, implicit↔explicit equivalence |
//! | `acir` (this) | curated [`prelude`], experiment framework, figure drivers |
//!
//! ## Quickstart
//!
//! ```
//! use acir::prelude::*;
//!
//! // A graph with two communities and a bottleneck.
//! let g = acir_graph::gen::deterministic::barbell(8, 0).unwrap();
//!
//! // Exact spectral partitioning finds the bottleneck (one of the two
//! // cliques; the eigenvector sign decides which).
//! let cut = spectral_bisect(&g).unwrap();
//! assert_eq!(cut.sweep.set.len(), 8);
//!
//! // ...and the strongly local push method finds the seed's own
//! // clique, touching only the neighborhood of its seed.
//! let ppr = ppr_push(&g, &[1], 0.05, 1e-6).unwrap();
//! let local = sweep_cut_support(&g, &ppr.to_dense(g.n()));
//! assert_eq!(local.set, (0..8).collect::<Vec<_>>());
//! assert!((local.conductance - cut.sweep.conductance).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiment;
pub mod figures;

/// Solver resilience vocabulary, re-exported from `acir-runtime`.
///
/// Budgets ([`Budget`](runtime::Budget)), structured outcomes
/// ([`SolverOutcome`](runtime::SolverOutcome)) with quality
/// [`Certificate`](runtime::Certificate)s, divergence guards, retry
/// policies, and the fault-injection harness. Every iterative kernel
/// in the workspace has a `*_budgeted` (and often `*_resilient`)
/// variant speaking this vocabulary; truncation under a budget returns
/// a *certified partial answer* — the paper's implicitly regularized
/// iterate — never a bare error.
pub mod runtime {
    pub use acir_runtime::fault::corrupt;
    pub use acir_runtime::{
        Backoff, Budget, BudgetMeter, Certificate, ConvergenceGuard, Diagnostics, DivergenceCause,
        Exhaustion, FaultConfig, FaultStream, GuardConfig, GuardVerdict, KernelCtx, RetryPolicy,
        SolverOutcome,
    };
}

/// Deterministic parallel execution, re-exported from `acir-exec`.
///
/// The scoped-thread [`ExecPool`](exec::ExecPool) every parallel kernel
/// in the workspace runs on. Work decomposition is always a pure
/// function of the input (never the thread count), so any result
/// computed on the pool is bit-identical from 1 to N threads; the
/// `ACIR_THREADS` environment variable steers the width globally.
pub mod exec {
    pub use acir_exec::{chunk_ranges, ExecPool, MAX_CHUNKS, THREADS_ENV};
}

/// The fault-tolerant PPR query engine, re-exported from `acir-serve`.
///
/// A long-running [`Engine`](serve::Engine) that answers seed→cluster
/// queries with admission control (bounded queue + work-token bucket)
/// and a degradation ladder: under overload, deadline pressure, or
/// injected faults it serves a coarser, *more* regularized answer —
/// never a timeout. Every response is certified. The deterministic
/// [`ChaosConfig`](serve::ChaosConfig) fault scheduler drives both the
/// chaos test suite and the `servebench` load generator.
pub mod serve {
    pub use acir_serve::{
        Admission, ChaosConfig, CompactionSummary, Engine, EngineConfig, EngineStats, Overloaded,
        PublishPoint, Query, QueryOptions, RejectReason, Response, ResponseKind, SweepCut, WriteOp,
    };
}

/// Curated re-exports: the API surface the examples and experiment
/// binaries are written against.
pub mod prelude {
    pub use acir_exec::{ExecPool, THREADS_ENV};
    pub use acir_flow::{flow_improve, mqi, mqi_budgeted, mqi_ctx};
    pub use acir_graph::gen;
    pub use acir_graph::{bandwidth_stats, Graph, GraphBuilder, NodeId, NodeValued, Permutation};
    pub use acir_local::push::{
        ppr_push, ppr_push_batch, ppr_push_budgeted, ppr_push_ctx, ppr_push_ws, PushResult,
        PushWorkspace,
    };
    pub use acir_local::sweep::{set_conductance, sweep_cut, sweep_cut_sparse, sweep_cut_support};
    pub use acir_local::{
        hk_relax, hk_relax_budgeted, hk_relax_ctx, mov_vector, nibble, nibble_budgeted, nibble_ctx,
        HkWorkspace,
    };
    pub use acir_partition::{
        cheeger_check, cluster_niceness, conductance, multilevel_bisect, ncp_local_spectral,
        ncp_local_spectral_budgeted, ncp_metis_mqi, refine_bisection, spectral_bisect,
        spectral_bisect_budgeted, spectral_bisect_ratio, spectral_bisect_truncated,
        whisker_union_envelope, whiskers, MultilevelOptions, NcpOptions,
    };
    pub use acir_regularize::{
        check_heat_kernel, check_lazy_walk, check_pagerank, solve_regularized_sdp, Regularizer,
        SpectralProblem,
    };
    pub use acir_runtime::{
        Budget, Certificate, GuardConfig, KernelCtx, RetryPolicy, SolverOutcome,
    };
    pub use acir_runtime::{StampedSet, StampedVec, Workspace, WorkspacePool};
    pub use acir_spectral::{
        fiedler_vector, fiedler_vector_budgeted, heat_kernel, heat_kernel_chebyshev,
        heat_kernel_chebyshev_budgeted, heat_kernel_chebyshev_multi, lazy_walk,
        normalized_laplacian, pagerank, pagerank_budgeted, pagerank_power, pagerank_power_budgeted,
        pagerank_power_ctx, pagerank_power_multi, spectral_clustering, spectral_embedding,
        streaming_pagerank_of_graph, Seed,
    };

    pub use crate::experiment::{ExperimentContext, TextTable};
}

/// Errors from the umbrella layer.
#[derive(Debug)]
pub enum AcirError {
    /// Any lower-layer error, boxed for uniformity at this level.
    Inner(Box<dyn std::error::Error + Send + Sync>),
    /// IO failure while writing experiment artifacts.
    Io(std::io::Error),
    /// A [`TextTable`](experiment::TextTable) row whose cell count
    /// disagrees with its header.
    TableArity {
        /// Number of columns the header declares.
        expected: usize,
        /// Number of cells the offending row carried.
        got: usize,
    },
}

impl std::fmt::Display for AcirError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AcirError::Inner(e) => write!(f, "{e}"),
            AcirError::Io(e) => write!(f, "io: {e}"),
            AcirError::TableArity { expected, got } => {
                write!(
                    f,
                    "table row arity mismatch: expected {expected} cells, got {got}"
                )
            }
        }
    }
}

impl std::error::Error for AcirError {}

impl From<std::io::Error> for AcirError {
    fn from(e: std::io::Error) -> Self {
        AcirError::Io(e)
    }
}

macro_rules! from_inner {
    ($($ty:ty),+) => {$(
        impl From<$ty> for AcirError {
            fn from(e: $ty) -> Self {
                AcirError::Inner(Box::new(e))
            }
        }
    )+};
}

from_inner!(
    acir_graph::GraphError,
    acir_linalg::LinalgError,
    acir_spectral::SpectralError,
    acir_local::LocalError,
    acir_flow::FlowError,
    acir_partition::PartitionError,
    acir_regularize::RegularizeError
);

/// Result alias for umbrella operations.
pub type Result<T> = std::result::Result<T, AcirError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_conversions() {
        let e: AcirError = acir_graph::GraphError::BadWeight(0.0).into();
        assert!(e.to_string().contains("weight"));
        let e: AcirError = std::io::Error::other("x").into();
        assert!(e.to_string().contains("io"));
        let e: AcirError = acir_partition::PartitionError::InvalidArgument("y".into()).into();
        assert!(e.to_string().contains("y"));
    }

    #[test]
    fn prelude_is_usable() {
        use crate::prelude::*;
        let g = gen::deterministic::barbell(4, 0).unwrap();
        let phi = conductance(&g, &[0, 1, 2, 3]).unwrap();
        assert!(phi < 0.1);
    }
}
