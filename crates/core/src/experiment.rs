//! Experiment plumbing: output directories, CSV writers, aligned text
//! tables, and log-log scatter summaries.
//!
//! Every figure driver in [`crate::figures`] emits two artifacts per
//! result: a machine-readable CSV under the context's output directory
//! and a human-readable aligned table (what the experiment binaries
//! print). Keeping this in one place guarantees the EXPERIMENTS.md
//! numbers and the CSVs come from the same code path.

use crate::Result;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Where an experiment writes its artifacts, and its base RNG seed.
#[derive(Debug, Clone)]
pub struct ExperimentContext {
    /// Output directory (created on demand).
    pub out_dir: PathBuf,
    /// Base seed: every stochastic component derives from this.
    pub seed: u64,
}

impl ExperimentContext {
    /// Context writing into `out_dir` with the given base seed.
    pub fn new(out_dir: impl AsRef<Path>, seed: u64) -> Self {
        Self {
            out_dir: out_dir.as_ref().to_path_buf(),
            seed,
        }
    }

    /// Write a CSV file (header + rows) under the output directory.
    /// Returns the full path written.
    pub fn write_csv(&self, name: &str, header: &[&str], rows: &[Vec<String>]) -> Result<PathBuf> {
        std::fs::create_dir_all(&self.out_dir)?;
        let path = self.out_dir.join(name);
        let mut f = std::io::BufWriter::new(std::fs::File::create(&path)?);
        writeln!(f, "{}", header.join(","))?;
        for row in rows {
            writeln!(f, "{}", row.join(","))?;
        }
        f.flush()?;
        Ok(path)
    }
}

/// An aligned fixed-width text table (the experiment binaries' output
/// format, mirrored into EXPERIMENTS.md).
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Table with the given column names.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (stringified cells).
    ///
    /// Returns [`AcirError::TableArity`](crate::AcirError::TableArity)
    /// when the cell count does not match the header, so drivers fed
    /// malformed data degrade into an ordinary recoverable error
    /// instead of aborting an entire experiment run.
    pub fn row(&mut self, cells: Vec<String>) -> Result<&mut Self> {
        if cells.len() != self.header.len() {
            return Err(crate::AcirError::TableArity {
                expected: self.header.len(),
                got: cells.len(),
            });
        }
        self.rows.push(cells);
        Ok(self)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The rows, for CSV reuse.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }
}

impl std::fmt::Display for TextTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let write_row = |f: &mut std::fmt::Formatter<'_>, cells: &[String]| -> std::fmt::Result {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:>w$}", w = w)?;
            }
            writeln!(f)
        };
        write_row(f, &self.header)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// One scatter series: label, plot glyph, and `(x, y)` points.
pub type ScatterSeries<'a> = (&'a str, char, &'a [(f64, f64)]);

/// Render a log-log scatter of `(x, y)` series as ASCII art — the
/// terminal rendition of Figure 1's panels. Each series gets a glyph;
/// later series overwrite earlier ones on collisions.
pub fn ascii_loglog_scatter(series: &[ScatterSeries<'_>], width: usize, height: usize) -> String {
    let pts: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|(_, _, pts)| pts.iter().copied())
        .filter(|&(x, y)| x > 0.0 && y > 0.0 && x.is_finite() && y.is_finite())
        .collect();
    if pts.is_empty() || width < 8 || height < 4 {
        return String::from("(no finite positive points)\n");
    }
    let (mut x0, mut x1) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y0, mut y1) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &pts {
        x0 = x0.min(x.log10());
        x1 = x1.max(x.log10());
        y0 = y0.min(y.log10());
        y1 = y1.max(y.log10());
    }
    if x1 - x0 < 1e-12 {
        x1 = x0 + 1.0;
    }
    if y1 - y0 < 1e-12 {
        y1 = y0 + 1.0;
    }
    let mut grid = vec![vec![' '; width]; height];
    for (_, glyph, pts) in series {
        for &(x, y) in pts.iter() {
            if !(x > 0.0 && y > 0.0 && x.is_finite() && y.is_finite()) {
                continue;
            }
            let cx = ((x.log10() - x0) / (x1 - x0) * (width - 1) as f64).round() as usize;
            let cy = ((y.log10() - y0) / (y1 - y0) * (height - 1) as f64).round() as usize;
            grid[height - 1 - cy][cx] = *glyph;
        }
    }
    let mut out = String::new();
    out.push_str(&format!(
        "y: 1e{y1:.1} (top) .. 1e{y0:.1} (bottom), log scale\n"
    ));
    for row in grid {
        out.push('|');
        out.extend(row);
        out.push('\n');
    }
    out.push('+');
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out.push_str(&format!(" x: 1e{x0:.1} .. 1e{x1:.1}, log scale; "));
    for (name, glyph, _) in series {
        out.push_str(&format!("[{glyph}] {name}  "));
    }
    out.push('\n');
    out
}

/// Format a float compactly for tables (`3` sig figs, scientific when
/// tiny/huge).
pub fn fmt_f(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.is_infinite() {
        "inf".to_string()
    } else if v.is_nan() {
        "nan".to_string()
    } else if v.abs() >= 1e4 || v.abs() < 1e-3 {
        format!("{v:.2e}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_table_alignment() {
        let mut t = TextTable::new(&["name", "value"]);
        t.row(vec!["alpha".into(), "1".into()]).unwrap();
        t.row(vec!["b".into(), "10000".into()]).unwrap();
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[1].starts_with('-'));
        // Right-aligned columns: equal line lengths.
        assert_eq!(lines[2].len(), lines[3].len());
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn text_table_arity_is_an_error_not_a_panic() {
        let mut t = TextTable::new(&["a", "b"]);
        let err = t.row(vec!["only one".into()]).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("expected 2"), "got: {msg}");
        assert!(msg.contains("got 1"), "got: {msg}");
        // The malformed row was not appended; the table stays usable.
        assert!(t.is_empty());
        t.row(vec!["x".into(), "y".into()]).unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join(format!("acir-test-{}", std::process::id()));
        let ctx = ExperimentContext::new(&dir, 1);
        let path = ctx
            .write_csv(
                "t.csv",
                &["x", "y"],
                &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
            )
            .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "x,y\n1,2\n3,4\n");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scatter_renders_points() {
        let a = [(10.0, 0.1), (100.0, 0.01)];
        let b = [(10.0, 0.5)];
        let s = ascii_loglog_scatter(&[("flow", 'x', &a), ("spec", 'o', &b)], 40, 10);
        assert!(s.contains('x'));
        assert!(s.contains('o'));
        assert!(s.contains("log scale"));
        // Degenerate input.
        let empty = ascii_loglog_scatter(&[("none", 'z', &[])], 40, 10);
        assert!(empty.contains("no finite"));
    }

    #[test]
    fn fmt_f_ranges() {
        assert_eq!(fmt_f(0.0), "0");
        assert_eq!(fmt_f(f64::INFINITY), "inf");
        assert_eq!(fmt_f(f64::NAN), "nan");
        assert!(fmt_f(0.5).starts_with("0.5"));
        assert!(fmt_f(1e-9).contains('e'));
        assert!(fmt_f(123456.0).contains('e'));
    }
}
