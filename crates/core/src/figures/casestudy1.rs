//! Case study §3.1 drivers: the implicit-regularization equivalence
//! (DESIGN.md C1-eq) and the aggressiveness-as-regularization-strength
//! sweep (C1-reg).

use crate::experiment::{fmt_f, ExperimentContext, TextTable};
use crate::Result;
use acir_graph::traversal::largest_component;
use acir_graph::Graph;
use acir_linalg::vector;
use acir_regularize::equivalence::{
    check_heat_kernel, check_lazy_walk, check_pagerank, effective_rank, lazy_walk_eta_limit,
};
use acir_regularize::regularizers::DiffusionParameter;
use acir_regularize::sdp::{solve_regularized_sdp, SpectralProblem};
use acir_regularize::Regularizer;
use acir_spectral::diffusion::{lazy_walk, tv_distance, Seed};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration of the case-study-1 experiments.
#[derive(Debug, Clone)]
pub struct CaseStudy1Config {
    /// η grid for the heat-kernel and PageRank checks.
    pub etas: Vec<f64>,
    /// Lazy-walk step counts to check.
    pub lazy_ks: Vec<u32>,
    /// Size of the random test graph.
    pub random_n: usize,
    /// Edge probability of the random test graph.
    pub random_p: f64,
}

impl Default for CaseStudy1Config {
    fn default() -> Self {
        Self {
            etas: vec![0.1, 0.5, 1.0, 2.0, 5.0, 10.0],
            lazy_ks: vec![1, 2, 4, 8],
            random_n: 60,
            random_p: 0.12,
        }
    }
}

/// Graph families used by the §3.1 reference experiments.
fn test_graphs(cfg: &CaseStudy1Config, seed: u64) -> Result<Vec<(String, Graph)>> {
    use acir_graph::gen::deterministic::{barbell, cycle, lollipop, path};
    let mut rng = StdRng::seed_from_u64(seed);
    let er0 = acir_graph::gen::random::erdos_renyi_gnp(&mut rng, cfg.random_n, cfg.random_p)?;
    let (er, _) = largest_component(&er0);
    Ok(vec![
        ("barbell(6,2)".into(), barbell(6, 2)?),
        ("cycle(12)".into(), cycle(12)?),
        ("path(14)".into(), path(14)?),
        ("lollipop(6,5)".into(), lollipop(6, 5)?),
        (format!("er({},{})", cfg.random_n, cfg.random_p), er),
    ])
}

/// C1-eq: for every graph family, every dynamics, and every η, the
/// relative Frobenius gap between the diffusion operator and the
/// regularized-SDP optimum. Writes `casestudy1_equivalence.csv` and
/// returns the table.
pub fn run_equivalence(ctx: &ExperimentContext, cfg: &CaseStudy1Config) -> Result<TextTable> {
    let mut table = TextTable::new(&["graph", "dynamics", "eta", "implied_param", "rel_error"]);
    for (name, g) in test_graphs(cfg, ctx.seed)? {
        let sp = SpectralProblem::new(&g)?;
        for &eta in &cfg.etas {
            let hk = check_heat_kernel(&sp, eta)?;
            table.row(vec![
                name.clone(),
                "heat_kernel".into(),
                fmt_f(eta),
                format!("t={}", fmt_f(eta)),
                fmt_f(hk.relative_error),
            ])?;
            let pr = check_pagerank(&sp, eta)?;
            let gamma = match pr.parameter {
                DiffusionParameter::PageRankGamma(gm) => gm,
                _ => unreachable!(),
            };
            table.row(vec![
                name.clone(),
                "pagerank".into(),
                fmt_f(eta),
                format!("gamma={}", fmt_f(gamma)),
                fmt_f(pr.relative_error),
            ])?;
        }
        for &k in &cfg.lazy_ks {
            // Stay in the exact (untruncated) regime for the lazy walk.
            let eta = lazy_walk_eta_limit(&sp, k)? * 0.5;
            let lw = check_lazy_walk(&sp, eta, k)?;
            let alpha = match lw.parameter {
                DiffusionParameter::LazyWalk { alpha, .. } => alpha,
                _ => unreachable!(),
            };
            table.row(vec![
                name.clone(),
                "lazy_walk".into(),
                fmt_f(eta),
                format!("alpha={},k={k}", fmt_f(alpha)),
                fmt_f(lw.relative_error),
            ])?;
        }
    }
    ctx.write_csv(
        "casestudy1_equivalence.csv",
        &["graph", "dynamics", "eta", "implied_param", "rel_error"],
        table.rows(),
    )?;
    Ok(table)
}

/// C1-reg: the aggressiveness parameter *is* the regularization
/// strength. For a barbell graph: per η, report the effective rank of
/// the entropy-regularized optimum, its linear objective `Tr(𝓛X)`
/// (approaching λ₂ as regularization weakens), and — on the dynamics
/// side — the seed dependence of the truncated lazy walk (TV distance
/// between runs from opposite-end seeds) at the matching step count.
pub fn run_regularization_path(
    ctx: &ExperimentContext,
    cfg: &CaseStudy1Config,
) -> Result<TextTable> {
    let g = acir_graph::gen::deterministic::barbell(8, 0)?;
    let sp = SpectralProblem::new(&g)?;
    let lambda2 = sp.lambda2();
    let mut table = TextTable::new(&[
        "eta",
        "eff_rank",
        "Tr(LX)",
        "excess_over_lambda2",
        "walk_steps",
        "seed_dependence_tv",
    ]);
    for &eta in &cfg.etas {
        let sol = solve_regularized_sdp(&sp, Regularizer::Entropy, eta)?;
        let rank = effective_rank(&sol.x);
        // Matching dynamics-side view: a lazy walk truncated after
        // ~η steps (the η ↔ t dictionary, one step ≈ unit time at
        // α = 1/2).
        let steps = (eta.round() as usize).max(1);
        let a = lazy_walk(&g, 0.5, steps, &Seed::Node(0))?;
        let b = lazy_walk(&g, 0.5, steps, &Seed::Node((g.n() - 1) as u32))?;
        let tv = tv_distance(&a, &b);
        table.row(vec![
            fmt_f(eta),
            fmt_f(rank),
            fmt_f(sol.linear_objective),
            fmt_f(sol.linear_objective - lambda2),
            steps.to_string(),
            fmt_f(tv),
        ])?;
    }
    ctx.write_csv(
        "casestudy1_regpath.csv",
        &[
            "eta",
            "eff_rank",
            "tr_lx",
            "excess_over_lambda2",
            "walk_steps",
            "seed_dependence_tv",
        ],
        table.rows(),
    )?;
    Ok(table)
}

/// C1-reg companion: the equilibration claim quoted in §3.1 — run any
/// dynamics to its limit and the output forgets the seed. Returns
/// `(truncated_tv, equilibrated_tv)` between opposite seeds for the
/// lazy walk on a barbell.
pub fn seed_forgetting_demo() -> Result<(f64, f64)> {
    let g = acir_graph::gen::deterministic::barbell(8, 0)?;
    let far = (g.n() - 1) as u32;
    let early_a = lazy_walk(&g, 0.5, 3, &Seed::Node(0))?;
    let early_b = lazy_walk(&g, 0.5, 3, &Seed::Node(far))?;
    let late_a = lazy_walk(&g, 0.5, 4000, &Seed::Node(0))?;
    let late_b = lazy_walk(&g, 0.5, 4000, &Seed::Node(far))?;
    Ok((
        tv_distance(&early_a, &early_b),
        tv_distance(&late_a, &late_b),
    ))
}

/// Sanity view used by tests and the binary: the rank-one limit. At
/// very weak regularization the SDP optimum aligns with `v₂v₂ᵀ`.
pub fn weak_regularization_recovers_v2(g: &Graph) -> Result<f64> {
    let sp = SpectralProblem::new(g)?;
    let sol = solve_regularized_sdp(&sp, Regularizer::Entropy, 500.0)?;
    // Alignment of the dominant eigenvector of X* with v₂.
    let eig = acir_linalg::SymEig::new(&sol.x)?;
    let top = eig.eigenvector(eig.dim() - 1);
    Ok(vector::alignment(&top, &sp.vectors[0]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> (ExperimentContext, std::path::PathBuf) {
        let dir = std::env::temp_dir().join(format!(
            "acir-cs1-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        (ExperimentContext::new(&dir, 3), dir)
    }

    fn small_cfg() -> CaseStudy1Config {
        CaseStudy1Config {
            etas: vec![0.5, 2.0],
            lazy_ks: vec![1, 2],
            random_n: 24,
            random_p: 0.25,
        }
    }

    #[test]
    fn equivalence_table_is_tight_everywhere() {
        let (ctx, dir) = ctx();
        let t = run_equivalence(&ctx, &small_cfg()).unwrap();
        // 5 graphs × (2 etas × 2 dynamics + 2 ks).
        assert_eq!(t.len(), 5 * (2 * 2 + 2));
        for row in t.rows() {
            let err: f64 = row[4].parse().unwrap_or(1.0);
            assert!(err < 1e-6, "{row:?}");
        }
        assert!(dir.join("casestudy1_equivalence.csv").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn regularization_path_is_monotone() {
        let (ctx, dir) = ctx();
        let t = run_regularization_path(&ctx, &small_cfg()).unwrap();
        // Effective rank decreases as eta grows (weaker regularization).
        let ranks: Vec<f64> = t.rows().iter().map(|r| r[1].parse().unwrap()).collect();
        assert!(ranks[0] > *ranks.last().unwrap());
        // Excess objective is nonnegative and decreasing.
        let excess: Vec<f64> = t.rows().iter().map(|r| r[3].parse().unwrap()).collect();
        assert!(excess.iter().all(|&e| e >= -1e-9));
        assert!(excess[0] >= *excess.last().unwrap() - 1e-12);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn seeds_are_forgotten_at_equilibrium() {
        let (early, late) = seed_forgetting_demo().unwrap();
        assert!(early > 0.5, "truncated runs stay seed-dependent: {early}");
        assert!(late < 1e-6, "equilibrated runs forget the seed: {late}");
    }

    #[test]
    fn weak_regularization_is_rank_one_on_v2() {
        let g = acir_graph::gen::deterministic::barbell(6, 1).unwrap();
        let align = weak_regularization_recovers_v2(&g).unwrap();
        assert!(align > 0.999, "alignment {align}");
    }
}
