//! Case study §3.3 drivers: strong locality of the operational
//! methods (DESIGN.md C3-local), the Cheeger-like recovery quality of
//! their sweeps (C3-cheeger), and the seed-not-in-its-own-cluster
//! curiosity (C3-seed).

use crate::experiment::{fmt_f, ExperimentContext, TextTable};
use crate::Result;
use acir_graph::gen::community::planted_cluster;
use acir_graph::{NodeId, NodeValued};
use acir_local::hkrelax::hk_relax;
use acir_local::mov::{mov_embedding, mov_vector};
use acir_local::nibble::nibble;
use acir_local::push::{ppr_push, ppr_push_ctx};
use acir_local::sweep::{set_conductance, sweep_cut, sweep_cut_support};
use acir_runtime::{KernelCtx, SolverOutcome};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration for the §3.3 experiments.
#[derive(Debug, Clone)]
pub struct CaseStudy3Config {
    /// Ambient graph sizes to sweep (the planted cluster stays fixed).
    pub ambient_sizes: Vec<usize>,
    /// Planted cluster size.
    pub cluster_size: usize,
    /// Planted cluster internal edge probability.
    pub cluster_p: f64,
    /// Bridge edges between cluster and ambient graph.
    pub bridges: usize,
    /// Push/Nibble/HK truncation parameter.
    pub epsilon: f64,
    /// Push teleportation.
    pub alpha: f64,
    /// Nibble step budget.
    pub nibble_steps: usize,
    /// Heat-kernel time.
    pub hk_t: f64,
    /// Whether to include the (whole-graph-touching) MOV runs.
    pub include_mov: bool,
}

impl Default for CaseStudy3Config {
    fn default() -> Self {
        Self {
            ambient_sizes: vec![1_000, 10_000, 100_000],
            cluster_size: 100,
            cluster_p: 0.15,
            bridges: 4,
            epsilon: 1e-5,
            alpha: 0.05,
            nibble_steps: 60,
            hk_t: 8.0,
            include_mov: true,
        }
    }
}

/// Jaccard similarity between a recovered set and the planted cluster.
fn jaccard(a: &[NodeId], b: &[NodeId]) -> f64 {
    let sa: std::collections::HashSet<_> = a.iter().collect();
    let sb: std::collections::HashSet<_> = b.iter().collect();
    let inter = sa.intersection(&sb).count();
    let union = sa.union(&sb).count();
    if union == 0 {
        0.0
    } else {
        inter as f64 / union as f64
    }
}

/// C3-local + C3-cheeger: for each ambient size, plant a fixed-size
/// cluster and run every method from a seed inside it. Reports nodes
/// touched (the strong-locality claim: flat for the push methods,
/// equal to `n` for MOV), the recovered conductance, and the Jaccard
/// overlap with the planted cluster. Writes `casestudy3_locality.csv`.
pub fn run_locality(ctx: &ExperimentContext, cfg: &CaseStudy3Config) -> Result<TextTable> {
    let mut table = TextTable::new(&[
        "n",
        "method",
        "touched",
        "work",
        "phi_recovered",
        "phi_planted",
        "jaccard",
    ]);
    for (i, &n_ambient) in cfg.ambient_sizes.iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(ctx.seed.wrapping_add(i as u64));
        let (g, planted) = planted_cluster(
            &mut rng,
            n_ambient,
            3,
            cfg.cluster_size,
            cfg.cluster_p,
            cfg.bridges,
        )?;
        let phi_planted = set_conductance(&g, &planted);
        let seed = planted[cfg.cluster_size / 2];
        let n_total = g.n();

        // ACL push, through the unified context seam so the driver
        // records a trace alongside the figure data. A traced context
        // only observes — the iterate sequence is bit-identical to the
        // plain `ppr_push` entry point.
        let mut kctx = KernelCtx::traced("local.ppr_push");
        let push = match ppr_push_ctx(&g, &[seed], cfg.alpha, cfg.epsilon, &mut kctx)? {
            SolverOutcome::Converged { value, .. } => value,
            _ => unreachable!("an unmetered context cannot exhaust"),
        };
        let cut = sweep_cut_support(&g, &push.to_dense(n_total));
        table.row(vec![
            n_total.to_string(),
            "push".into(),
            push.touched.to_string(),
            push.work.to_string(),
            fmt_f(cut.conductance),
            fmt_f(phi_planted),
            fmt_f(jaccard(&cut.set, &planted)),
        ])?;

        // Nibble.
        let nib = nibble(&g, seed, cfg.nibble_steps, cfg.epsilon)?;
        table.row(vec![
            n_total.to_string(),
            "nibble".into(),
            nib.max_support.to_string(),
            nib.work.to_string(),
            fmt_f(nib.conductance),
            fmt_f(phi_planted),
            fmt_f(jaccard(&nib.set, &planted)),
        ])?;

        // Heat-kernel push.
        let hk = hk_relax(&g, seed, cfg.hk_t, cfg.epsilon, 1e-4)?;
        let hk_cut = sweep_cut_support(&g, &hk.to_dense(n_total));
        table.row(vec![
            n_total.to_string(),
            "hk_relax".into(),
            hk.touched.to_string(),
            hk.work.to_string(),
            fmt_f(hk_cut.conductance),
            fmt_f(phi_planted),
            fmt_f(jaccard(&hk_cut.set, &planted)),
        ])?;

        // MOV (optimization approach): touches everything by design.
        if cfg.include_mov {
            let mov = mov_vector(&g, &[seed], -1.0)?;
            let emb = mov_embedding(&g, &mov);
            let mov_cut = sweep_cut(&g, &emb);
            table.row(vec![
                n_total.to_string(),
                "mov".into(),
                mov.touched.to_string(),
                (mov.cg_iterations * g.m()).to_string(),
                fmt_f(mov_cut.conductance),
                fmt_f(phi_planted),
                fmt_f(jaccard(&mov_cut.set, &planted)),
            ])?;
        }
    }
    ctx.write_csv(
        "casestudy3_locality.csv",
        &[
            "n",
            "method",
            "touched",
            "work",
            "phi_recovered",
            "phi_planted",
            "jaccard",
        ],
        table.rows(),
    )?;
    Ok(table)
}

/// C3-seed: "counterintuitive things like a seed node not being part
/// of 'its own cluster' can easily happen." The construction (in the
/// spirit of Andersen–Lang's "communities from seed sets", paper
/// ref \[2\]): a two-node seed set — one member of a planted clique, one
/// stray node in the ambient expander. At small teleportation the
/// stray seed's diffusion mass disperses while the clique traps its
/// half, so the best sweep cluster is exactly the clique — and the
/// stray seed is not part of "its own" cluster.
/// Returns `(cluster, stray_seed, stray_seed_included)`.
pub fn run_seed_exclusion(cfg: &CaseStudy3Config) -> Result<(Vec<NodeId>, NodeId, bool)> {
    use acir_graph::GraphBuilder;
    let _ = cfg;
    let mut rng = StdRng::seed_from_u64(0x5EED);
    let ambient = acir_graph::gen::random::barabasi_albert(&mut rng, 400, 3)?;
    let mut b = GraphBuilder::with_nodes(400);
    for (u, v, w) in ambient.edges() {
        b.add_edge(u, v, w);
    }
    // Clique nodes 400..419, anchored to the ambient graph.
    let clique: Vec<NodeId> = (400..420).collect();
    for (i, &u) in clique.iter().enumerate() {
        for &v in &clique[i + 1..] {
            b.add_pair(u, v);
        }
    }
    b.add_pair(clique[0], 7);
    let g = b.build()?;

    // Seed set: clique member 405 plus stray ambient node 200. The
    // small alpha is essential — it is the aggressiveness knob again:
    // run the diffusion "softly" enough and the stray seed's own mass
    // disperses below the clique's sweep threshold.
    let stray: NodeId = 200;
    let push = ppr_push(&g, &[405, stray], 0.001, 1e-7)?;
    let cut = sweep_cut_support(&g, &push.to_dense(g.n()));
    let included = cut.set.contains(&stray);
    Ok((cut.set, stray, included))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> CaseStudy3Config {
        CaseStudy3Config {
            ambient_sizes: vec![600, 3000],
            cluster_size: 40,
            cluster_p: 0.25,
            bridges: 3,
            epsilon: 1e-4,
            alpha: 0.05,
            nibble_steps: 40,
            hk_t: 6.0,
            include_mov: true,
        }
    }

    #[test]
    fn locality_table_shows_flat_touch_counts() {
        let dir = std::env::temp_dir().join(format!("acir-cs3-{}", std::process::id()));
        let ctx = ExperimentContext::new(&dir, 11);
        let cfg = small_cfg();
        let t = run_locality(&ctx, &cfg).unwrap();
        assert_eq!(t.len(), 2 * 4);

        let get = |n_idx: usize, method: &str| -> Vec<String> {
            t.rows()
                .iter()
                .find(|r| {
                    r[1] == method
                        && r[0]
                            .parse::<usize>()
                            .map(|n| (n_idx == 0) == (n < 2000))
                            .unwrap_or(false)
                })
                .unwrap()
                .clone()
        };
        // Push touch counts stay flat across a 5x ambient-size change.
        let small_touch: f64 = get(0, "push")[2].parse().unwrap();
        let big_touch: f64 = get(1, "push")[2].parse().unwrap();
        assert!(
            big_touch <= small_touch * 3.0,
            "push touched {small_touch} -> {big_touch}"
        );
        // MOV touches everything.
        let mov_small: usize = get(0, "mov")[2].parse().unwrap();
        assert!(mov_small >= 600);
        // Recovery quality: push finds a cluster at least as good as
        // the planted one (Cheeger-like sweep guarantee in practice).
        for row in t.rows().iter().filter(|r| r[1] == "push") {
            let phi_rec: f64 = row[4].parse().unwrap();
            let phi_planted: f64 = row[5].parse().unwrap();
            assert!(phi_rec <= phi_planted * 1.5 + 1e-9, "{row:?}");
            let jac: f64 = row[6].parse().unwrap();
            assert!(jac > 0.5, "push should mostly recover the planted cluster");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn seed_exclusion_triggers_on_stray_seed() {
        let (cluster, stray, included) = run_seed_exclusion(&small_cfg()).unwrap();
        assert!(!cluster.is_empty());
        // The paper's counterintuitive case: one of the seeds is not
        // part of "its own" cluster — the diffusion regularized it away.
        assert!(
            !included,
            "stray seed {stray} unexpectedly inside {cluster:?}"
        );
        // The cluster is (essentially) the planted clique.
        let in_clique = cluster.iter().filter(|&&u| (400..420).contains(&u)).count();
        assert!(in_clique >= 18, "cluster should be the clique: {cluster:?}");
    }

    #[test]
    fn jaccard_basics() {
        assert_eq!(jaccard(&[1, 2, 3], &[1, 2, 3]), 1.0);
        assert_eq!(jaccard(&[1, 2], &[3, 4]), 0.0);
        assert!((jaccard(&[1, 2, 3], &[2, 3, 4]) - 0.5).abs() < 1e-12);
        assert_eq!(jaccard(&[], &[]), 0.0);
    }
}
