//! Figure 1 (a–c): size-resolved conductance and niceness, spectral
//! (LocalSpectral, blue in the paper) vs flow-based (Metis+MQI, red).
//!
//! Pipeline: generate the AtP-DBLP surrogate, keep its largest
//! component, compute both NCPs, then evaluate the two niceness
//! measures on every plotted cluster. Panel (a) is conductance vs
//! size; (b) is average shortest-path length vs size; (c) is the
//! external/internal conductance ratio vs size.
//!
//! Expected shape (paper): "the flow-based algorithm generally yields
//! clusters with better conductance scores, while the spectral
//! algorithm generally yields clusters that are nicer."

use crate::experiment::{ascii_loglog_scatter, fmt_f, ExperimentContext, TextTable};
use crate::Result;
use acir_graph::gen::community::{social_network, SocialNetworkParams};
use acir_graph::traversal::largest_component;
use acir_graph::Graph;
use acir_partition::ncp::{ncp_local_spectral, ncp_metis_mqi, NcpOptions};
use acir_partition::niceness::cluster_niceness;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration of the Figure 1 run.
#[derive(Debug, Clone)]
pub struct Fig1Config {
    /// Surrogate-network generator parameters.
    pub network: SocialNetworkParams,
    /// NCP computation parameters.
    pub ncp: NcpOptions,
    /// BFS-source budget for the average-shortest-path estimates.
    pub asp_samples: usize,
}

impl Default for Fig1Config {
    fn default() -> Self {
        Self {
            network: SocialNetworkParams::default(),
            ncp: NcpOptions::default(),
            asp_samples: 48,
        }
    }
}

/// One plotted cluster with all three panel values.
#[derive(Debug, Clone)]
pub struct Fig1Point {
    /// Cluster size.
    pub size: usize,
    /// Panel (a): conductance.
    pub conductance: f64,
    /// Panel (b): average shortest-path length inside the cluster.
    pub avg_shortest_path: Option<f64>,
    /// Panel (c): external / internal conductance ratio.
    pub ratio: f64,
}

/// The full Figure 1 dataset.
#[derive(Debug, Clone)]
pub struct Fig1Result {
    /// Spectral (LocalSpectral) series.
    pub spectral: Vec<Fig1Point>,
    /// Flow (Metis+MQI) series.
    pub flow: Vec<Fig1Point>,
    /// The whisker-union lower envelope `(size, conductance)` — the
    /// \[28\] structural explanation of panel (a)'s dips.
    pub whisker_envelope: Vec<(usize, f64)>,
    /// Summary line of the analyzed graph.
    pub graph_summary: String,
}

impl Fig1Result {
    /// Render the three panels plus a merged table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("graph: {}\n\n", self.graph_summary));
        let collect =
            |pts: &[Fig1Point], f: &dyn Fn(&Fig1Point) -> Option<f64>| -> Vec<(f64, f64)> {
                pts.iter()
                    .filter_map(|p| f(p).map(|y| (p.size as f64, y)))
                    .collect()
            };

        type PanelFn = Box<dyn Fn(&Fig1Point) -> Option<f64>>;
        let panels: [(&str, PanelFn); 3] = [
            (
                "Fig 1(a): conductance vs size",
                Box::new(|p: &Fig1Point| Some(p.conductance)),
            ),
            (
                "Fig 1(b): avg shortest path vs size",
                Box::new(|p: &Fig1Point| p.avg_shortest_path),
            ),
            (
                "Fig 1(c): external/internal conductance ratio vs size",
                Box::new(|p: &Fig1Point| p.ratio.is_finite().then_some(p.ratio)),
            ),
        ];
        for (i, (title, f)) in panels.iter().enumerate() {
            let s = collect(&self.spectral, f.as_ref());
            let fl = collect(&self.flow, f.as_ref());
            out.push_str(&format!("== {title} ==\n"));
            if i == 0 && !self.whisker_envelope.is_empty() {
                // Panel (a) carries the whisker-union envelope too.
                let env: Vec<(f64, f64)> = self
                    .whisker_envelope
                    .iter()
                    .map(|&(k, phi)| (k as f64, phi))
                    .collect();
                out.push_str(&ascii_loglog_scatter(
                    &[
                        ("Metis+MQI (flow)", 'x', &fl),
                        ("LocalSpectral", 'o', &s),
                        ("whisker unions", 'w', &env),
                    ],
                    64,
                    16,
                ));
            } else {
                out.push_str(&ascii_loglog_scatter(
                    &[("Metis+MQI (flow)", 'x', &fl), ("LocalSpectral", 'o', &s)],
                    64,
                    16,
                ));
            }
            out.push('\n');
        }

        let mut table = TextTable::new(&["method", "size", "phi", "avg_path", "ext/int"]);
        for (name, pts) in [("spectral", &self.spectral), ("flow", &self.flow)] {
            for p in pts.iter() {
                table
                    .row(vec![
                        name.to_string(),
                        p.size.to_string(),
                        fmt_f(p.conductance),
                        p.avg_shortest_path.map(fmt_f).unwrap_or_else(|| "-".into()),
                        fmt_f(p.ratio),
                    ])
                    .expect("static 5-column row");
            }
        }
        out.push_str(&table.to_string());
        out
    }

    /// Headline comparison: on bins where both methods produced a
    /// cluster, how often does flow win panel (a) and spectral win
    /// panels (b)/(c)? Returns `(flow_phi_wins, spectral_asp_wins,
    /// spectral_ratio_wins, comparisons)`.
    pub fn headline(&self) -> (usize, usize, usize, usize) {
        let bin = |size: usize| ((size as f64).log10() * 8.0).floor() as i64;
        let mut smap = std::collections::BTreeMap::new();
        for p in &self.spectral {
            smap.insert(bin(p.size), p.clone());
        }
        let mut flow_phi = 0;
        let mut spec_asp = 0;
        let mut spec_ratio = 0;
        let mut comparisons = 0;
        for p in &self.flow {
            let Some(s) = smap.get(&bin(p.size)) else {
                continue;
            };
            comparisons += 1;
            if p.conductance <= s.conductance * 1.0001 {
                flow_phi += 1;
            }
            if let (Some(fa), Some(sa)) = (p.avg_shortest_path, s.avg_shortest_path) {
                if sa <= fa * 1.0001 {
                    spec_asp += 1;
                }
            }
            // Infinite flow ratio counts as a spectral win if spectral is finite.
            if s.ratio <= p.ratio * 1.0001 || (!p.ratio.is_finite() && s.ratio.is_finite()) {
                spec_ratio += 1;
            }
        }
        (flow_phi, spec_asp, spec_ratio, comparisons)
    }
}

fn niceness_points(
    g: &Graph,
    pts: &[acir_partition::NcpPoint],
    asp_samples: usize,
) -> Result<Vec<Fig1Point>> {
    let mut out = Vec::with_capacity(pts.len());
    for p in pts {
        let n = cluster_niceness(g, &p.set, asp_samples)?;
        out.push(Fig1Point {
            size: p.size,
            conductance: p.conductance,
            avg_shortest_path: n.avg_shortest_path,
            ratio: n.ratio,
        });
    }
    Ok(out)
}

/// Run the full Figure 1 experiment and write `fig1a.csv`,
/// `fig1b.csv`, `fig1c.csv` (size, spectral value, flow value columns
/// are split per method in one file each).
pub fn run_fig1(ctx: &ExperimentContext, cfg: &Fig1Config) -> Result<Fig1Result> {
    let mut rng = StdRng::seed_from_u64(ctx.seed);
    let pc = social_network(&mut rng, &cfg.network)?;
    let (g, _) = largest_component(&pc.graph);
    let graph_summary = acir_graph::stats::summarize(&g).to_string();

    let mut ncp_opts = cfg.ncp.clone();
    ncp_opts.rng_seed = ctx.seed ^ 0x5eed;
    let spectral_ncp = ncp_local_spectral(&g, &ncp_opts)?;
    let flow_ncp = ncp_metis_mqi(&g, &ncp_opts)?;

    let spectral = niceness_points(&g, &spectral_ncp, cfg.asp_samples)?;
    let flow = niceness_points(&g, &flow_ncp, cfg.asp_samples)?;
    let whisker_envelope = acir_partition::whisker::whisker_union_envelope(&g)?;

    // CSV artifacts: one per panel, long format.
    let mut rows_a = Vec::new();
    let mut rows_b = Vec::new();
    let mut rows_c = Vec::new();
    for &(size, phi) in &whisker_envelope {
        rows_a.push(vec!["whiskers".into(), size.to_string(), format!("{phi}")]);
    }
    for (name, pts) in [("spectral", &spectral), ("flow", &flow)] {
        for p in pts.iter() {
            rows_a.push(vec![
                name.into(),
                p.size.to_string(),
                format!("{}", p.conductance),
            ]);
            if let Some(a) = p.avg_shortest_path {
                rows_b.push(vec![name.into(), p.size.to_string(), format!("{a}")]);
            }
            if p.ratio.is_finite() {
                rows_c.push(vec![
                    name.into(),
                    p.size.to_string(),
                    format!("{}", p.ratio),
                ]);
            }
        }
    }
    ctx.write_csv("fig1a.csv", &["method", "size", "conductance"], &rows_a)?;
    ctx.write_csv(
        "fig1b.csv",
        &["method", "size", "avg_shortest_path"],
        &rows_b,
    )?;
    ctx.write_csv("fig1c.csv", &["method", "size", "ext_int_ratio"], &rows_c)?;

    Ok(Fig1Result {
        spectral,
        flow,
        whisker_envelope,
        graph_summary,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> Fig1Config {
        Fig1Config {
            network: SocialNetworkParams {
                core_nodes: 250,
                core_attach: 3,
                communities: 6,
                community_size_range: (6, 50),
                whiskers: 15,
                whisker_max_len: 5,
                ..Default::default()
            },
            ncp: NcpOptions {
                min_size: 2,
                max_size: 120,
                bins_per_decade: 5,
                seeds: 10,
                alphas: vec![0.2, 0.05],
                epsilons: vec![1e-3, 1e-4],
                threads: 2,
                ..Default::default()
            },
            asp_samples: 16,
        }
    }

    #[test]
    fn fig1_end_to_end_small() {
        let dir = std::env::temp_dir().join(format!("acir-fig1-{}", std::process::id()));
        let ctx = ExperimentContext::new(&dir, 7);
        let r = run_fig1(&ctx, &tiny_config()).unwrap();
        assert!(!r.spectral.is_empty());
        assert!(!r.flow.is_empty());
        // CSVs exist and have headers.
        for f in ["fig1a.csv", "fig1b.csv", "fig1c.csv"] {
            let text = std::fs::read_to_string(dir.join(f)).unwrap();
            assert!(text.starts_with("method,size,"), "{f}");
        }
        // Rendering works and contains all three panels.
        let rendered = r.render();
        assert!(rendered.contains("Fig 1(a)"));
        assert!(rendered.contains("Fig 1(b)"));
        assert!(rendered.contains("Fig 1(c)"));
        // Headline comparison has overlapping bins.
        let (fw, _, _, cmp) = r.headline();
        assert!(cmp >= 2, "need comparable bins, got {cmp}");
        assert!(
            fw * 2 >= cmp,
            "flow should win conductance often: {fw}/{cmp}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
