//! Figure drivers: one module per row group of the DESIGN.md
//! experiment index.
//!
//! Each driver takes an [`crate::experiment::ExperimentContext`] and a
//! config struct sized by the caller (tests use miniature configs; the
//! `acir-bench` binaries use paper-scale ones), returns a structured
//! result, and writes CSV artifacts. The binaries print the
//! human-readable rendition recorded in EXPERIMENTS.md.

pub mod ablations;
pub mod casestudy1;
pub mod casestudy3;
pub mod fig1;

pub use ablations::{
    run_bayes_risk, run_cheeger_table, run_early_stopping, run_expander_ncp, run_noise_ablation,
    run_worst_cases,
};
pub use casestudy1::{run_equivalence, run_regularization_path, CaseStudy1Config};
pub use casestudy3::{run_locality, run_seed_exclusion, CaseStudy3Config};
pub use fig1::{run_fig1, Fig1Config, Fig1Point, Fig1Result};
