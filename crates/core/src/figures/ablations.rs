//! Ablation drivers: the §3.2 worst-case geometry claims
//! (C2-cheeger, C2-stringy, C2-expander) and the §2.3 heuristic
//! equivalences (A-early, A-noise).

use crate::experiment::{fmt_f, ExperimentContext, TextTable};
use crate::Result;
use acir_graph::gen::deterministic::{barbell, cockroach, cycle, path};
use acir_graph::gen::random::random_regular;
use acir_linalg::{vector, DenseMatrix};
use acir_partition::cheeger::cheeger_check;
use acir_partition::conductance::cut_weight;
use acir_partition::multilevel::{multilevel_bisect, MultilevelOptions};
use acir_partition::spectral_part::{spectral_bisect, spectral_bisect_ratio};
use acir_regularize::explicit::ridge;
use acir_regularize::heuristics::{gradient_descent_path, noisy_features_averaged};
use acir_regularize::robustness::{risk_profile, PopulationModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// C2-cheeger: the Cheeger sandwich `λ₂/2 ≤ φ(G) ≤ √(2λ₂)` across
/// graph families, with exact `φ` where brute force is feasible.
/// Writes `ablation_cheeger.csv`.
pub fn run_cheeger_table(ctx: &ExperimentContext) -> Result<TextTable> {
    let mut rng = StdRng::seed_from_u64(ctx.seed);
    let graphs: Vec<(String, acir_graph::Graph)> = vec![
        ("path(16)".into(), path(16)?),
        ("cycle(16)".into(), cycle(16)?),
        ("barbell(5,2)".into(), barbell(5, 2)?),
        ("cockroach(4)".into(), cockroach(4)?),
        ("regular(64,4)".into(), random_regular(&mut rng, 64, 4)?),
        ("regular(128,6)".into(), random_regular(&mut rng, 128, 6)?),
    ];
    let mut table = TextTable::new(&[
        "graph",
        "lambda2",
        "lower(l2/2)",
        "phi_exact",
        "phi_sweep",
        "upper(sqrt(2*l2))",
        "holds",
    ]);
    for (name, g) in graphs {
        let r = cheeger_check(&g)?;
        table.row(vec![
            name,
            fmt_f(r.lambda2),
            fmt_f(r.lower),
            r.phi_exact.map(fmt_f).unwrap_or_else(|| "-".into()),
            fmt_f(r.phi_sweep),
            fmt_f(r.upper),
            r.holds.to_string(),
        ])?;
    }
    ctx.write_csv(
        "ablation_cheeger.csv",
        &[
            "graph",
            "lambda2",
            "lower",
            "phi_exact",
            "phi_sweep",
            "upper",
            "holds",
        ],
        table.rows(),
    )?;
    Ok(table)
}

/// C2-stringy + C2-expander: the complementary failure modes.
///
/// On cockroach graphs the spectral *bisection* (half-size sweep
/// prefix) cuts Θ(k) edges where the optimal bisection cuts 2, and the
/// gap grows with k; the flow-refined multilevel bisection stays near
/// the optimum. On random-regular expanders both methods return Θ(1)
/// conductance and neither embarrasses the other — "spectral methods
/// are better for expanders, basically since the quadratic of a
/// constant is a constant" (footnote 23). Writes
/// `ablation_worstcase.csv`.
pub fn run_worst_cases(
    ctx: &ExperimentContext,
    ks: &[usize],
    expander_ns: &[usize],
) -> Result<TextTable> {
    let mut table = TextTable::new(&[
        "family",
        "param",
        "spectral_bisection_cut",
        "flow_bisection_cut",
        "optimal_cut",
        "lambda2",
    ]);
    for &k in ks {
        let g = cockroach(k)?;
        // Combinatorial-Laplacian (ratio-cut) bisection: the exact
        // Guattery-Miller setting, where the pathology holds for all k.
        let spec = spectral_bisect_ratio(&g)?;
        // Spectral bisection = half-size prefix of the sweep order.
        let half: Vec<u32> = spec.sweep.order[..g.n() / 2].to_vec();
        let spectral_cut = cut_weight(&g, &half)?;
        let ml = multilevel_bisect(
            &g,
            &MultilevelOptions {
                seed: ctx.seed,
                balance: 0.02,
                ..Default::default()
            },
        )?;
        table.row(vec![
            "cockroach".into(),
            k.to_string(),
            fmt_f(spectral_cut),
            fmt_f(ml.cut),
            "2".into(),
            fmt_f(spec.lambda2),
        ])?;
    }
    let mut rng = StdRng::seed_from_u64(ctx.seed ^ 0xE87);
    for &n in expander_ns {
        let g = random_regular(&mut rng, n, 4)?;
        let spec = spectral_bisect(&g)?;
        let half: Vec<u32> = spec.sweep.order[..n / 2].to_vec();
        let spectral_cut = cut_weight(&g, &half)?;
        let ml = multilevel_bisect(
            &g,
            &MultilevelOptions {
                seed: ctx.seed,
                balance: 0.02,
                ..Default::default()
            },
        )?;
        table.row(vec![
            "regular4".into(),
            n.to_string(),
            fmt_f(spectral_cut),
            fmt_f(ml.cut),
            "~Theta(n)".into(),
            fmt_f(spec.lambda2),
        ])?;
    }
    ctx.write_csv(
        "ablation_worstcase.csv",
        &[
            "family",
            "param",
            "spectral_cut",
            "flow_cut",
            "optimal_cut",
            "lambda2",
        ],
        table.rows(),
    )?;
    Ok(table)
}

/// A-early: early-stopped gradient descent tracks the ridge path.
/// For each stop iteration `k`, reports the relative distance between
/// the GD iterate and the ridge solution at `λ = 1/(k·step)`. Writes
/// `ablation_early_stopping.csv`.
pub fn run_early_stopping(ctx: &ExperimentContext, stops: &[usize]) -> Result<TextTable> {
    // A mildly ill-conditioned regression task.
    let mut rng = StdRng::seed_from_u64(ctx.seed);
    use rand::Rng;
    let m = 40;
    let d = 6;
    let a = DenseMatrix::from_fn(m, d, |i, j| {
        ((i * (j + 1)) as f64 * 0.1).sin() + 0.05 * rng.gen_range(-1.0..1.0)
    });
    let truth: Vec<f64> = (0..d).map(|j| (j as f64 - 2.0) * 0.5).collect();
    let mut b = vec![0.0; m];
    a.gemv(1.0, &truth, 0.0, &mut b);
    for bi in &mut b {
        *bi += 0.1 * rng.gen_range(-1.0..1.0);
    }

    let step = 0.01;
    let max_k = stops.iter().copied().max().unwrap_or(1);
    let paths = gradient_descent_path(&a, &b, step, max_k)?;
    let mut table = TextTable::new(&[
        "k",
        "implied_lambda",
        "rel_gap_gd_vs_ridge",
        "gd_norm",
        "ridge_norm",
    ]);
    for &k in stops {
        let lambda = 1.0 / (k as f64 * step);
        let ridge_sol = ridge(&a, &b, lambda)?;
        let gd = &paths[k.min(paths.len() - 1)];
        let rel = vector::dist2(gd, &ridge_sol) / vector::norm2(&ridge_sol).max(1e-300);
        table.row(vec![
            k.to_string(),
            fmt_f(lambda),
            fmt_f(rel),
            fmt_f(vector::norm2(gd)),
            fmt_f(vector::norm2(&ridge_sol)),
        ])?;
    }
    ctx.write_csv(
        "ablation_early_stopping.csv",
        &["k", "implied_lambda", "rel_gap", "gd_norm", "ridge_norm"],
        table.rows(),
    )?;
    Ok(table)
}

/// A-noise: input noising ≈ Tikhonov. For each σ, reports the relative
/// distance between the noise-averaged solution and the ridge solution
/// at `λ = m·σ²`. Writes `ablation_noise.csv`.
pub fn run_noise_ablation(
    ctx: &ExperimentContext,
    sigmas: &[f64],
    trials: usize,
) -> Result<TextTable> {
    let a = DenseMatrix::from_rows(&[
        &[1.0, 0.3, -0.2],
        &[1.0, 1.2, 0.4],
        &[1.0, 2.1, -0.5],
        &[1.0, 2.9, 0.8],
        &[1.0, 4.2, -0.1],
        &[1.0, 5.1, 0.6],
    ]);
    let b = vec![1.0, 2.2, 2.9, 4.1, 5.2, 5.9];
    let mut rng = StdRng::seed_from_u64(ctx.seed);
    let mut table = TextTable::new(&[
        "sigma",
        "implied_lambda",
        "rel_gap_noisy_vs_ridge",
        "shrinkage",
    ]);
    let ls = ridge(&a, &b, 0.0)?;
    for &sigma in sigmas {
        let noisy = noisy_features_averaged(&a, &b, sigma, trials, &mut rng)?;
        let lambda = a.nrows() as f64 * sigma * sigma;
        let ridge_sol = ridge(&a, &b, lambda)?;
        let rel = vector::dist2(&noisy, &ridge_sol) / vector::norm2(&ridge_sol).max(1e-300);
        table.row(vec![
            fmt_f(sigma),
            fmt_f(lambda),
            fmt_f(rel),
            fmt_f(vector::norm2(&noisy) / vector::norm2(&ls).max(1e-300)),
        ])?;
    }
    ctx.write_csv(
        "ablation_noise.csv",
        &["sigma", "implied_lambda", "rel_gap", "shrinkage"],
        table.rows(),
    )?;
    Ok(table)
}

/// C2-flat-ncp: footnote 27's "partitioning a graph without any good
/// partitions". The NCP of an expander is *flat and high* — no size
/// scale offers a community — while the social surrogate's NCP dips by
/// an order of magnitude at its planted scales. Reports the minimum
/// conductance found at any size for both graphs. Writes
/// `ablation_flat_ncp.csv`.
pub fn run_expander_ncp(ctx: &ExperimentContext, n: usize, d: usize) -> Result<TextTable> {
    use acir_graph::gen::community::{social_network, SocialNetworkParams};
    use acir_graph::traversal::largest_component;
    use acir_partition::ncp::{ncp_local_spectral, NcpOptions};

    let mut rng = StdRng::seed_from_u64(ctx.seed ^ 0xF1A7);
    let expander = random_regular(&mut rng, n, d)?;
    let social = {
        let pc = social_network(
            &mut rng,
            &SocialNetworkParams {
                core_nodes: n,
                core_attach: 3,
                communities: 12,
                community_size_range: (6, n / 8),
                whiskers: n / 20,
                whisker_max_len: 8,
                ..Default::default()
            },
        )?;
        largest_component(&pc.graph).0
    };
    let opts = NcpOptions {
        min_size: 2,
        max_size: n / 2,
        seeds: 24,
        alphas: vec![0.2, 0.05, 0.01],
        epsilons: vec![1e-3, 1e-4],
        threads: 4,
        rng_seed: ctx.seed,
        ..Default::default()
    };
    let mut table = TextTable::new(&["graph", "n", "ncp_points", "min_phi", "max_phi_of_best"]);
    for (name, g) in [
        ("regular_expander", &expander),
        ("social_surrogate", &social),
    ] {
        let pts = ncp_local_spectral(g, &opts)?;
        let min_phi = pts
            .iter()
            .map(|p| p.conductance)
            .fold(f64::INFINITY, f64::min);
        let max_phi = pts
            .iter()
            .map(|p| p.conductance)
            .fold(f64::NEG_INFINITY, f64::max);
        table.row(vec![
            name.to_string(),
            g.n().to_string(),
            pts.len().to_string(),
            fmt_f(min_phi),
            fmt_f(max_phi),
        ])?;
    }
    ctx.write_csv(
        "ablation_flat_ncp.csv",
        &["graph", "n", "ncp_points", "min_phi", "max_phi"],
        table.rows(),
    )?;
    Ok(table)
}

/// A-bayes: the "faster *and better*" demonstration (paper §1 and
/// footnote 17 / ref \[36\]). For each signal strength (gap between
/// within- and between-block probabilities of a 2-block population),
/// Monte-Carlo risk of the exact rank-one eigenvector estimator vs the
/// best entropy-regularized (= heat-kernel-computable) estimator
/// against the *population* eigenvector. Writes `ablation_bayes.csv`.
pub fn run_bayes_risk(
    ctx: &ExperimentContext,
    gaps: &[(f64, f64)],
    trials: usize,
) -> Result<TextTable> {
    let mut rng = StdRng::seed_from_u64(ctx.seed ^ 0xBA1E5);
    let etas = [0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 128.0];
    let mut table = TextTable::new(&[
        "p_in",
        "p_out",
        "exact_risk",
        "best_regularized_risk",
        "best_eta",
        "improvement",
    ]);
    for &(p_in, p_out) in gaps {
        let model = PopulationModel {
            block_size: 15,
            p_in,
            p_out,
        };
        let profile = risk_profile(&model, &etas, trials, &mut rng)?;
        let (best_eta, best_risk) = profile.best();
        table.row(vec![
            fmt_f(p_in),
            fmt_f(p_out),
            fmt_f(profile.exact_risk),
            fmt_f(best_risk),
            fmt_f(best_eta),
            fmt_f(profile.improvement()),
        ])?;
    }
    ctx.write_csv(
        "ablation_bayes.csv",
        &[
            "p_in",
            "p_out",
            "exact_risk",
            "best_reg_risk",
            "best_eta",
            "improvement",
        ],
        table.rows(),
    )?;
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(tag: &str) -> (ExperimentContext, std::path::PathBuf) {
        let dir = std::env::temp_dir().join(format!("acir-abl-{tag}-{}", std::process::id()));
        (ExperimentContext::new(&dir, 17), dir)
    }

    #[test]
    fn cheeger_table_all_hold() {
        let (c, dir) = ctx("cheeger");
        let t = run_cheeger_table(&c).unwrap();
        assert_eq!(t.len(), 6);
        for row in t.rows() {
            assert_eq!(row[6], "true", "{row:?}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn worst_cases_show_the_gap() {
        let (c, dir) = ctx("worst");
        let t = run_worst_cases(&c, &[4, 8], &[64]).unwrap();
        // Cockroach rows: spectral bisection cut grows with k and beats
        // nothing; flow stays near the 2-edge optimum.
        let cockroach_rows: Vec<_> = t.rows().iter().filter(|r| r[0] == "cockroach").collect();
        assert_eq!(cockroach_rows.len(), 2);
        for row in &cockroach_rows {
            let k: f64 = row[1].parse().unwrap();
            let spec: f64 = row[2].parse().unwrap();
            let flow: f64 = row[3].parse().unwrap();
            assert!(spec >= 0.7 * k, "spectral cut {spec} should be Θ(k={k})");
            assert!(flow <= 6.0, "flow bisection cut {flow} should stay near 2");
        }
        // Expander row: both cuts are Θ(n) — no deep cut exists.
        let expander = t.rows().iter().find(|r| r[0] == "regular4").unwrap();
        let spec: f64 = expander[2].parse().unwrap();
        assert!(spec > 20.0, "expander has no small bisection: {spec}");
        let l2: f64 = expander[5].parse().unwrap();
        assert!(l2 > 0.05, "expander gap bounded away from zero");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn early_stopping_gap_small_at_matched_lambda() {
        let (c, dir) = ctx("early");
        let t = run_early_stopping(&c, &[10, 40, 160]).unwrap();
        for row in t.rows() {
            let rel: f64 = row[2].parse().unwrap();
            assert!(rel < 0.5, "{row:?}");
        }
        // Norm grows with k (less shrinkage as stopping weakens).
        let norms: Vec<f64> = t.rows().iter().map(|r| r[3].parse().unwrap()).collect();
        assert!(norms.windows(2).all(|w| w[1] >= w[0] - 1e-12));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn expander_ncp_is_flat_social_ncp_dips() {
        let (c, dir) = ctx("flatncp");
        let t = run_expander_ncp(&c, 400, 4).unwrap();
        assert_eq!(t.len(), 2);
        let get = |name: &str| -> f64 {
            t.rows().iter().find(|r| r[0] == name).unwrap()[3]
                .parse()
                .unwrap()
        };
        let expander_min = get("regular_expander");
        let social_min = get("social_surrogate");
        assert!(
            expander_min > 0.1,
            "expander best community φ = {expander_min} should stay Θ(1)"
        );
        assert!(
            social_min < expander_min / 2.0,
            "social surrogate should dip well below the expander: {social_min} vs {expander_min}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bayes_risk_shows_regularization_winning_when_noisy() {
        let (c, dir) = ctx("bayes");
        let t = run_bayes_risk(&c, &[(0.55, 0.35), (0.9, 0.05)], 8).unwrap();
        assert_eq!(t.len(), 2);
        // Noisy regime (first row): positive improvement.
        let improvement: f64 = t.rows()[0][5].parse().unwrap();
        assert!(improvement > 0.0, "noisy regime improvement {improvement}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn noise_ablation_matches_ridge() {
        let (c, dir) = ctx("noise");
        let t = run_noise_ablation(&c, &[0.2, 0.6, 1.2], 120).unwrap();
        for row in t.rows() {
            let rel: f64 = row[2].parse().unwrap();
            assert!(rel < 0.5, "{row:?}");
        }
        // Shrinkage increases with sigma.
        let shr: Vec<f64> = t.rows().iter().map(|r| r[3].parse().unwrap()).collect();
        assert!(shr[0] > *shr.last().unwrap());
        std::fs::remove_dir_all(&dir).ok();
    }
}
