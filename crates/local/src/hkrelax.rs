//! Truncated heat-kernel diffusion (paper ref \[15\], Chung's "heat
//! kernel as the PageRank of a graph", operationalized in the style of
//! later push methods).
//!
//! The heat-kernel PageRank is `h = e^{−t} Σ_{k≥0} (t^k/k!) P^k s`
//! with `P = A D^{−1}`. The operational method truncates twice:
//!
//! * the Taylor series is cut at `N` terms, with `N` chosen so the tail
//!   is below `tail_tol`;
//! * each propagated term is ε-truncated per degree, exactly like
//!   Nibble, keeping the work output-sized.
//!
//! Both truncations are "heuristic design decisions (such as ...
//! truncating ... and early stopping)" — §1's catalogue of implicit
//! regularizers — and both are exposed as parameters.

use crate::{LocalError, Result};
use acir_graph::{Graph, NodeId, NodeValued};
use acir_runtime::{
    Budget, Certificate, DivergenceCause, Exhaustion, GuardConfig, KernelCtx, SolverOutcome,
    StampedSet, StampedVec, WorkspacePool,
};

/// Output of [`hk_relax`].
#[derive(Debug, Clone, Default)]
pub struct HkRelaxResult {
    /// Approximate heat-kernel vector as sorted `(node, value)` pairs.
    pub vector: Vec<(NodeId, f64)>,
    /// Taylor terms actually used.
    pub terms: usize,
    /// Probability mass lost to the two truncations.
    pub mass_lost: f64,
    /// Edge traversals performed.
    pub work: usize,
    /// Number of distinct nodes ever holding mass.
    pub touched: usize,
}

/// `to_dense` / `scale` / `map_back` come from the shared
/// [`NodeValued`] trait.
impl NodeValued for HkRelaxResult {
    fn node_values(&self) -> &[(NodeId, f64)] {
        &self.vector
    }

    fn node_values_mut(&mut self) -> &mut Vec<(NodeId, f64)> {
        &mut self.vector
    }
}

/// Reusable scratch for [`hk_relax`]: the accumulated heat vector, the
/// current and next Taylor terms, the ever-touched set, and the
/// support lists. All resets are `O(1)`, so a relax run touching `k`
/// nodes does `O(k·terms)` bookkeeping regardless of `n`.
#[derive(Debug, Default)]
pub struct HkWorkspace {
    h: StampedVec,
    q: StampedVec,
    next: StampedVec,
    ever: StampedSet,
    support: Vec<NodeId>,
    next_support: Vec<NodeId>,
    kept: Vec<NodeId>,
    /// First-touch order of `h`'s support (sorted during harvest).
    h_touched: Vec<NodeId>,
}

impl HkWorkspace {
    /// Fresh, empty workspace.
    pub fn new() -> Self {
        Self::default()
    }
}

static HK_POOL: WorkspacePool<HkWorkspace> = WorkspacePool::new();

/// Number of Taylor terms needed so that `e^{−t} Σ_{k>N} t^k/k! <
/// tail_tol` (simple forward scan; `t` is small in practice).
fn taylor_terms(t: f64, tail_tol: f64) -> usize {
    let mut term = (-t).exp(); // e^{−t} t^0/0!
    let mut sum = term;
    let mut k = 0usize;
    while 1.0 - sum > tail_tol && k < 10_000 {
        k += 1;
        term *= t / k as f64;
        sum += term;
    }
    k
}

/// Truncated heat-kernel diffusion from `seed` at time `t`, with
/// per-term degree-normalized threshold `epsilon` and Taylor tail
/// tolerance `tail_tol`.
pub fn hk_relax(
    g: &Graph,
    seed: NodeId,
    t: f64,
    epsilon: f64,
    tail_tol: f64,
) -> Result<HkRelaxResult> {
    validate_hk_args(g, seed, t, epsilon, tail_tol)?;
    let mut ctx = KernelCtx::new();
    let (result, _exit) = HK_POOL.with(|ws| hk_core(g, seed, t, epsilon, tail_tol, ws, &mut ctx));
    Ok(result)
}

/// Parameter validation shared by the pooled and budgeted entry points.
fn validate_hk_args(g: &Graph, seed: NodeId, t: f64, epsilon: f64, tail_tol: f64) -> Result<()> {
    if seed as usize >= g.n() {
        return Err(LocalError::InvalidArgument(format!(
            "seed {seed} out of range"
        )));
    }
    if g.degree(seed) <= 0.0 {
        return Err(LocalError::InvalidArgument(format!(
            "seed {seed} has zero degree"
        )));
    }
    if !(t > 0.0 && t.is_finite()) {
        return Err(LocalError::InvalidArgument(format!(
            "t must be positive, got {t}"
        )));
    }
    if !(epsilon > 0.0 && epsilon.is_finite() && tail_tol > 0.0 && tail_tol < 1.0) {
        return Err(LocalError::InvalidArgument(
            "need epsilon > 0 and tail_tol in (0, 1)".into(),
        ));
    }
    Ok(())
}

/// How the single truncated-Taylor core loop exited.
enum HkExit {
    /// All Taylor terms delivered (or the support emptied early).
    Done,
    /// Budget ran out; the accumulated partial diffusion was harvested.
    Exhausted(Exhaustion),
    /// NaN/Inf contamination of the propagated term (guarded contexts).
    Diverged(DivergenceCause),
}

/// The truncated-Taylor loop on stamped scratch. Inputs pre-validated.
///
/// Arithmetic, truncation decisions, and accumulation order match the
/// historical dense implementation exactly (a freshly-reset stamped
/// array reads like `vec![0.0; n]`, first-touch coincides with the old
/// `next[v] == 0.0` test because every contribution is positive, and
/// the final harvest walks the sorted touched list in the same
/// ascending order the dense `0..n` filter did), so results are
/// bit-identical to it while per-call work and allocations stay
/// proportional to the touched set.
///
/// The [`KernelCtx`] supplies the cross-cutting concerns: metering (one
/// iteration per Taylor term, one work unit per edge traversal),
/// residual recording of the undelivered mass, and — when a guard is
/// attached — finiteness scans of every contribution and propagated
/// entry. An inert context runs the historical plain loop exactly.
fn hk_core(
    g: &Graph,
    seed: NodeId,
    t: f64,
    epsilon: f64,
    tail_tol: f64,
    ws: &mut HkWorkspace,
    ctx: &mut KernelCtx,
) -> (HkRelaxResult, HkExit) {
    let n = g.n();
    let terms = taylor_terms(t, tail_tol);
    // h accumulates e^{−t} Σ coeff_k q_k with q_0 = s, q_{k+1} = P q_k.
    ws.h.reset(n);
    ws.q.reset(n);
    ws.next.reset(n);
    ws.ever.reset(n);
    ws.support.clear();
    ws.h_touched.clear();
    ws.support.push(seed);
    ws.ever.insert(seed as usize);
    let mut ever_count = 1usize;
    ws.q.set(seed as usize, 1.0);

    let e_neg_t = (-t).exp();
    let mut coeff = e_neg_t; // e^{−t} t^k / k! at k = 0
    let mut accounted = 0.0; // mass placed into h
    let mut work = 0usize;
    let mut used_terms = terms;
    let mut exit = HkExit::Done;

    // CORE LOOP
    'terms: for k in 0..=terms {
        for &u in &ws.support {
            let qu = ws.q.get(u as usize);
            let contribution = coeff * qu;
            if ctx.is_guarded() && !contribution.is_finite() {
                exit = HkExit::Diverged(DivergenceCause::NonFiniteIterate { at_iter: k });
                break 'terms;
            }
            if ws.h.add(u as usize, contribution) {
                ws.h_touched.push(u);
            }
            accounted += contribution;
        }
        ctx.push_residual((1.0 - accounted).max(0.0));
        if k == terms {
            break;
        }
        ctx.tick_iter();
        if let Some(exhausted) = ctx.check_budget() {
            ctx.note_with(|| format!("stopped after Taylor term {k} of {terms}"));
            used_terms = k + 1;
            exit = HkExit::Exhausted(exhausted);
            break;
        }
        // Propagate one walk step with ε-truncation.
        ws.next_support.clear();
        let mut traversals = 0u64;
        for &u in &ws.support {
            let qu = ws.q.get(u as usize);
            if qu == 0.0 {
                continue;
            }
            let du = g.degree(u);
            for (v, w) in g.neighbors(u) {
                work += 1;
                traversals += 1;
                if ws.next.add(v as usize, qu * w / du) {
                    ws.next_support.push(v);
                }
            }
        }
        if let Some(exhausted) = ctx.add_work(traversals) {
            // The work axis ran out mid-term: the already-accumulated h
            // (through term k) is still a valid truncation.
            ctx.note_with(|| format!("work exhausted propagating term {k}"));
            used_terms = k + 1;
            exit = HkExit::Exhausted(exhausted);
            break;
        }
        ws.kept.clear();
        for &v in &ws.next_support {
            if ctx.is_guarded() && !ws.next.get(v as usize).is_finite() {
                exit = HkExit::Diverged(DivergenceCause::NonFiniteIterate { at_iter: k });
                break 'terms;
            }
            if ws.next.get(v as usize) >= epsilon * g.degree(v) {
                ws.kept.push(v);
                if ws.ever.insert(v as usize) {
                    ever_count += 1;
                }
            }
        }
        ws.q.reset(n);
        for &v in &ws.kept {
            let x = ws.next.get(v as usize);
            ws.q.set(v as usize, x);
        }
        ws.next.reset(n);
        std::mem::swap(&mut ws.support, &mut ws.kept);
        coeff *= t / (k + 1) as f64;
        if ws.support.is_empty() {
            break;
        }
    }

    if let HkExit::Diverged(_) = exit {
        let empty = HkRelaxResult {
            vector: Vec::new(),
            terms: 0,
            mass_lost: 0.0,
            work: 0,
            touched: 0,
        };
        return (empty, exit);
    }

    ws.h_touched.sort_unstable();
    let mut vector: Vec<(NodeId, f64)> = Vec::with_capacity(ws.h_touched.len());
    for &u in &ws.h_touched {
        let x = ws.h.get(u as usize);
        if x > 0.0 {
            vector.push((u, x));
        }
    }

    let result = HkRelaxResult {
        vector,
        terms: used_terms,
        mass_lost: (1.0 - accounted).max(0.0),
        work,
        touched: ever_count,
    };
    (result, exit)
}

/// Truncated heat-kernel diffusion under an explicit resource
/// [`Budget`], with contamination guards and a structured
/// [`SolverOutcome`].
///
/// Each Taylor term costs one iteration; each edge traversal costs one
/// work unit. On budget exhaustion the partial diffusion accumulated so
/// far is returned with a [`Certificate::ResidualMass`]: the heat-kernel
/// mass not yet delivered (un-accumulated Taylor tail plus ε-truncated
/// mass), which bounds the ℓ₁ error of the partial vector — a harder
/// truncation of an already-truncated diffusion, in the paper's spirit.
/// NaN/Inf contamination of the propagated term diverges.
pub fn hk_relax_budgeted(
    g: &Graph,
    seed: NodeId,
    t: f64,
    epsilon: f64,
    tail_tol: f64,
    budget: &Budget,
) -> Result<SolverOutcome<HkRelaxResult>> {
    // Guard present so the per-contribution finiteness scans run.
    let mut ctx =
        KernelCtx::budgeted("local.hk_relax", budget).with_guard(GuardConfig::contamination_only());
    hk_relax_ctx(g, seed, t, epsilon, tail_tol, &mut ctx)
}

/// Context-driven truncated heat-kernel diffusion: the [`KernelCtx`]
/// decides whether the run is metered, guarded, or traced. Scratch is
/// drawn from the module pool.
pub fn hk_relax_ctx(
    g: &Graph,
    seed: NodeId,
    t: f64,
    epsilon: f64,
    tail_tol: f64,
    ctx: &mut KernelCtx,
) -> Result<SolverOutcome<HkRelaxResult>> {
    validate_hk_args(g, seed, t, epsilon, tail_tol)?;
    let (result, exit) = HK_POOL.with(|ws| hk_core(g, seed, t, epsilon, tail_tol, ws, ctx));
    let diags = ctx.finish();
    Ok(match exit {
        HkExit::Done => SolverOutcome::converged(result, diags),
        HkExit::Exhausted(exhausted) => {
            let remaining = result.mass_lost;
            SolverOutcome::exhausted(
                result,
                exhausted,
                Certificate::ResidualMass {
                    remaining,
                    per_degree_bound: epsilon,
                },
                diags,
            )
        }
        HkExit::Diverged(cause) => SolverOutcome::diverged(cause, diags),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::sweep_cut_support;
    use acir_graph::gen::deterministic::{barbell, cycle};
    use acir_graph::gen::random::barabasi_albert;
    use acir_linalg::vector;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn taylor_terms_grow_with_t() {
        assert!(taylor_terms(1.0, 1e-6) < taylor_terms(10.0, 1e-6));
        assert!(taylor_terms(1.0, 1e-3) <= taylor_terms(1.0, 1e-9));
        assert!(taylor_terms(0.1, 1e-4) >= 1);
    }

    #[test]
    fn matches_dense_heat_kernel_on_walk_laplacian() {
        // With tiny epsilon the method computes e^{−t(I−P)} s, which in
        // the D^{1/2} similarity transform equals the symmetric heat
        // kernel: check total mass and seed bias instead of the full
        // operator identity.
        let g = cycle(16).unwrap();
        let r = hk_relax(&g, 0, 2.0, 1e-12, 1e-12).unwrap();
        let dense = r.to_dense(16);
        assert!((vector::sum(&dense) - 1.0).abs() < 1e-9, "mass preserved");
        assert!(dense[0] > dense[8], "seed holds the most mass");
        // Symmetry of the cycle about the seed.
        assert!((dense[1] - dense[15]).abs() < 1e-9);
        assert!(r.mass_lost < 1e-9);
    }

    #[test]
    fn equals_exact_taylor_reference() {
        // Against a dense reference: h = e^{-t} Σ t^k/k! P^k s.
        let g = barbell(5, 1).unwrap();
        let n = g.n();
        let t = 1.5;
        let r = hk_relax(&g, 2, t, 1e-14, 1e-13).unwrap();
        let p = acir_spectral::random_walk_matrix(&g);
        let mut s = vec![0.0; n];
        s[2] = 1.0;
        let mut h = vec![0.0; n];
        let mut q = s.clone();
        let mut coeff = (-t).exp();
        let mut buf = vec![0.0; n];
        for k in 0..200 {
            for i in 0..n {
                h[i] += coeff * q[i];
            }
            p.matvec(&q, &mut buf);
            std::mem::swap(&mut q, &mut buf);
            coeff *= t / (k + 1) as f64;
        }
        let dense = r.to_dense(n);
        assert!(vector::dist2(&dense, &h) < 1e-8);
    }

    #[test]
    fn truncation_keeps_it_local() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = barabasi_albert(&mut rng, 3000, 3).unwrap();
        let r = hk_relax(&g, 1000, 3.0, 1e-3, 1e-4).unwrap();
        assert!(r.touched < 1500, "touched {} of 3000", r.touched);
        let fine = hk_relax(&g, 1000, 3.0, 1e-6, 1e-4).unwrap();
        assert!(fine.touched >= r.touched);
    }

    #[test]
    fn sweep_recovers_barbell_cluster() {
        let g = barbell(8, 0).unwrap();
        let r = hk_relax(&g, 1, 5.0, 1e-8, 1e-8).unwrap();
        let cut = sweep_cut_support(&g, &r.to_dense(g.n()));
        assert_eq!(cut.set, (0..8).collect::<Vec<u32>>());
    }

    #[test]
    fn validates_inputs() {
        let g = cycle(5).unwrap();
        assert!(hk_relax(&g, 9, 1.0, 1e-3, 1e-3).is_err());
        assert!(hk_relax(&g, 0, 0.0, 1e-3, 1e-3).is_err());
        assert!(hk_relax(&g, 0, -2.0, 1e-3, 1e-3).is_err());
        assert!(hk_relax(&g, 0, 1.0, 0.0, 1e-3).is_err());
        assert!(hk_relax(&g, 0, 1.0, 1e-3, 0.0).is_err());
        assert!(hk_relax(&g, 0, 1.0, 1e-3, 1.0).is_err());
        let iso = acir_graph::Graph::from_pairs(2, []).unwrap();
        assert!(hk_relax(&iso, 0, 1.0, 1e-3, 1e-3).is_err());
    }

    #[test]
    fn budgeted_unlimited_matches_plain() {
        let g = cycle(16).unwrap();
        let out = hk_relax_budgeted(&g, 0, 2.0, 1e-12, 1e-12, &Budget::unlimited()).unwrap();
        assert!(out.is_converged());
        let plain = hk_relax(&g, 0, 2.0, 1e-12, 1e-12).unwrap();
        assert_eq!(out.value().unwrap().vector, plain.vector);
    }

    #[test]
    fn budgeted_exhaustion_certificate_bounds_l1_error() {
        let g = cycle(40).unwrap();
        // Only 2 Taylor terms allowed out of many.
        let out = hk_relax_budgeted(&g, 0, 6.0, 1e-12, 1e-10, &Budget::iterations(2)).unwrap();
        assert!(!out.is_converged() && out.is_usable());
        let remaining = match out.certificate() {
            Some(&acir_runtime::Certificate::ResidualMass { remaining, .. }) => remaining,
            c => panic!("wrong certificate {c:?}"),
        };
        // ℓ₁ distance to the (essentially exact) full diffusion is
        // bounded by the certified undelivered mass.
        let exact = hk_relax(&g, 0, 6.0, 1e-14, 1e-12).unwrap().to_dense(g.n());
        let partial = out.value().unwrap().to_dense(g.n());
        let l1: f64 = exact.iter().zip(&partial).map(|(a, b)| (a - b).abs()).sum();
        assert!(
            l1 <= remaining + 1e-9,
            "l1 error {l1} exceeds certificate {remaining}"
        );
        assert!(!out.diagnostics().events.is_empty());
    }

    #[test]
    fn mass_lost_grows_with_epsilon() {
        let g = cycle(40).unwrap();
        let tight = hk_relax(&g, 0, 4.0, 1e-10, 1e-6).unwrap();
        let loose = hk_relax(&g, 0, 4.0, 1e-2, 1e-6).unwrap();
        assert!(loose.mass_lost > tight.mass_lost);
    }
}
