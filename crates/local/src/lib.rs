//! # acir-local
//!
//! Strongly local diffusion algorithms — the ACIR reproduction of
//! Mahoney (PODS 2012) case study §3.3, "Computing locally-biased graph
//! partitions".
//!
//! Two philosophies, per the paper:
//!
//! * **Optimization approach** ([`mov`]) — the MOV locally-biased
//!   spectral program (Problem (8)): modify the global objective with a
//!   seed-correlation constraint and solve it exactly via a
//!   Personalized-PageRank-style linear system. Clean semantics, but
//!   the computation "touches all the nodes in the graph".
//! * **Operational approach** ([`mod@push`], [`mod@nibble`], [`hkrelax`]) — run
//!   truncated diffusions whose truncate-small-values-to-zero steps
//!   make the cost depend on the *output* size, not the graph size.
//!   These are the Andersen–Chung–Lang push algorithm for approximate
//!   PPR \[1\], Spielman–Teng truncated lazy random walks \[39\], and a
//!   truncated heat-kernel method in the spirit of Chung \[15\]. The
//!   truncation implicitly regularizes — the paper's central point —
//!   and every routine here reports its touched-node and work counters
//!   so experiments can measure the strong-locality claim directly.
//!
//! All methods produce an embedding vector over (a subset of) nodes;
//! [`sweep`] turns any such vector into a cluster with a conductance
//! guarantee of Cheeger type.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hkrelax;
pub mod mov;
pub mod nibble;
pub mod push;
pub mod repair;
pub mod sketch;
pub mod sweep;

pub use acir_graph::NodeValued;
pub use hkrelax::{hk_relax, hk_relax_budgeted, hk_relax_ctx, HkRelaxResult, HkWorkspace};
pub use mov::{mov_vector, MovResult};
pub use nibble::{nibble, nibble_budgeted, nibble_ctx, NibbleResult};
pub use push::{
    ppr_push, ppr_push_batch, ppr_push_batch_outcomes, ppr_push_budgeted, ppr_push_ctx,
    ppr_push_ws, PushResult, PushWorkspace,
};
pub use repair::{
    ppr_repair, ppr_repair_ctx, ppr_repair_relabeled, RepairRequest, RepairResult,
    DEFAULT_REPAIR_MASS_THRESHOLD,
};
pub use sketch::{
    build_hub_sketches, build_hub_sketches_ctx, build_sketches_for_hubs, ppr_push_spliced,
    ppr_push_spliced_ctx, relabel_sketch_set, repair_hub_sketches, HubSketch, SketchRepair,
    SketchSet, SpliceResult,
};
pub use sweep::{sweep_cut, sweep_cut_ctx, sweep_cut_sparse, sweep_cut_support, SweepResult};

/// Errors from the local-methods layer.
#[derive(Debug, Clone, PartialEq)]
pub enum LocalError {
    /// Invalid argument.
    InvalidArgument(String),
    /// Underlying spectral-layer error.
    Spectral(acir_spectral::SpectralError),
    /// Underlying linear algebra error.
    Linalg(acir_linalg::LinalgError),
}

impl std::fmt::Display for LocalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LocalError::InvalidArgument(m) => write!(f, "invalid argument: {m}"),
            LocalError::Spectral(e) => write!(f, "spectral: {e}"),
            LocalError::Linalg(e) => write!(f, "linalg: {e}"),
        }
    }
}

impl std::error::Error for LocalError {}

impl From<acir_spectral::SpectralError> for LocalError {
    fn from(e: acir_spectral::SpectralError) -> Self {
        LocalError::Spectral(e)
    }
}

impl From<acir_linalg::LinalgError> for LocalError {
    fn from(e: acir_linalg::LinalgError) -> Self {
        LocalError::Linalg(e)
    }
}

/// Result alias for local-method operations.
pub type Result<T> = std::result::Result<T, LocalError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_conversion() {
        assert!(LocalError::InvalidArgument("q".into())
            .to_string()
            .contains("q"));
        let se: LocalError = acir_spectral::SpectralError::InvalidArgument("x".into()).into();
        assert!(se.to_string().contains("spectral"));
        let le: LocalError = acir_linalg::LinalgError::Singular.into();
        assert!(le.to_string().contains("linalg"));
    }
}
