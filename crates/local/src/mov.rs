//! The MOV locally-biased spectral method (Mahoney–Orecchia–Vishnoi,
//! paper ref \[33\]) — the "optimization approach" of §3.3.
//!
//! MOV modifies the global spectral program (Problem (3)) with a
//! seed-correlation constraint, giving the paper's Problem (8):
//!
//! ```text
//! minimize  xᵀ𝓛x
//! s.t.      xᵀx = 1,   xᵀD^{1/2}1 = 0,   (xᵀD^{1/2}s)² ≥ κ.
//! ```
//!
//! Its solution has the closed form (up to normalization)
//!
//! ```text
//! x*(γ) ∝ (𝓛 − γ·I)⁺ D^{1/2} s          (γ < λ₂, on span⊥(D^{1/2}1))
//! ```
//!
//! where `γ` trades off locality (very negative `γ` → concentrated near
//! the seed) against globality (`γ → λ₂` → the Fiedler vector). The
//! exact solution can be found "relatively quickly by running a
//! so-called Personalized PageRank computation" — here, projected
//! conjugate gradient on the SPD-on-the-subspace system.
//!
//! The defining *disadvantage* (the paper's point): the computation
//! touches every node of the graph. [`MovResult::touched`] therefore
//! always equals `n`, in deliberate contrast to the push methods.

use crate::{LocalError, Result};
use acir_graph::{Graph, NodeId};
use acir_linalg::solve::{cg, CgOptions};
use acir_linalg::{vector, CsrMatrix, LinOp};
use acir_spectral::{normalized_laplacian, trivial_eigenvector};

/// Output of [`mov_vector`].
#[derive(Debug, Clone)]
pub struct MovResult {
    /// The locally-biased vector, unit-norm, orthogonal to `D^{1/2}1`
    /// (in the `x`-coordinates of Problem (8), i.e. already
    /// `D^{−1/2}`-free: sweep it with degree normalization as usual).
    pub vector: Vec<f64>,
    /// Rayleigh quotient `xᵀ𝓛x` achieved.
    pub rayleigh: f64,
    /// Seed correlation `(xᵀD^{1/2}s)²` achieved.
    pub seed_correlation: f64,
    /// CG iterations used.
    pub cg_iterations: usize,
    /// Nodes touched — always `n`: the optimization approach is not
    /// strongly local.
    pub touched: usize,
}

/// Operator `(𝓛 − γI)` restricted to the complement of `v₁` by
/// projection on both sides.
struct ProjectedShiftedLaplacian<'a> {
    nl: &'a CsrMatrix,
    gamma: f64,
    v1: &'a [f64],
}

impl LinOp for ProjectedShiftedLaplacian<'_> {
    fn dim(&self) -> usize {
        self.nl.nrows()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        // y = P(𝓛 − γI)P x with P = I − v₁v₁ᵀ.
        let mut px = x.to_vec();
        vector::deflate(&mut px, self.v1);
        self.nl.matvec(&px, y);
        for (yi, xi) in y.iter_mut().zip(&px) {
            *yi -= self.gamma * xi;
        }
        vector::deflate(y, self.v1);
    }
}

/// Compute the MOV locally-biased vector for seed set `seeds` and shift
/// `gamma`.
///
/// Requires `gamma < λ₂` (the caller usually knows `λ₂`, or passes a
/// safely negative `gamma`; the PPR correspondence is `γ = −(1−γ_pr)/…`
/// — any `γ ≤ 0` is always valid). If CG stalls because `gamma` is too
/// close to (or above) `λ₂`, an error is returned.
pub fn mov_vector(g: &Graph, seeds: &[NodeId], gamma: f64) -> Result<MovResult> {
    let n = g.n();
    if seeds.is_empty() {
        return Err(LocalError::InvalidArgument("mov_vector needs seeds".into()));
    }
    for &u in seeds {
        if u as usize >= n {
            return Err(LocalError::InvalidArgument(format!(
                "seed {u} out of range"
            )));
        }
        if g.degree(u) <= 0.0 {
            return Err(LocalError::InvalidArgument(format!(
                "seed {u} has zero degree"
            )));
        }
    }
    if !gamma.is_finite() {
        return Err(LocalError::InvalidArgument("gamma must be finite".into()));
    }
    // Any γ ≤ 0 is valid on a connected graph (λ₂ > 0). For γ > 0 the
    // shifted operator is only positive definite on span⊥(v₁) when
    // γ < λ₂, and CG on an indefinite system can terminate at a
    // non-minimizing stationary point without noticing — so check
    // explicitly against the exact λ₂.
    if gamma > 0.0 {
        let f = acir_spectral::fiedler_vector(g)?;
        if gamma >= f.lambda2 * (1.0 - 1e-9) {
            return Err(LocalError::InvalidArgument(format!(
                "gamma = {gamma} must be strictly below lambda_2 = {}",
                f.lambda2
            )));
        }
    }

    let nl = normalized_laplacian(g);
    let v1 = trivial_eigenvector(g);

    // Right-hand side: D^{1/2} s, projected off v₁, unit-normalized.
    let mut rhs = vec![0.0; n];
    let mass = 1.0 / seeds.len() as f64;
    for &u in seeds {
        rhs[u as usize] += mass * g.degree(u).sqrt();
    }
    vector::deflate(&mut rhs, &v1);
    if vector::normalize2(&mut rhs) < 1e-300 {
        return Err(LocalError::InvalidArgument(
            "seed vector coincides with the trivial eigenvector".into(),
        ));
    }
    let seed_dir = rhs.clone();

    let op = ProjectedShiftedLaplacian {
        nl: &nl,
        gamma,
        v1: &v1,
    };
    let opts = CgOptions {
        max_iters: 20_000,
        tol: 1e-10,
    };
    let res = cg(&op, &rhs, &vec![0.0; n], &opts)?;
    if !res.converged {
        return Err(LocalError::InvalidArgument(format!(
            "CG did not converge (relative residual {:.2e}); gamma = {gamma} may be >= lambda_2",
            res.relative_residual
        )));
    }

    let mut x = res.x;
    vector::deflate(&mut x, &v1);
    if vector::normalize2(&mut x) < 1e-300 {
        return Err(LocalError::InvalidArgument("MOV solution vanished".into()));
    }
    // Fix sign so the seed correlation is positive.
    if vector::dot(&x, &seed_dir) < 0.0 {
        vector::scale(-1.0, &mut x);
    }

    let rayleigh = nl.quad_form(&x);
    let corr = vector::dot(&x, &seed_dir);
    Ok(MovResult {
        vector: x,
        rayleigh,
        seed_correlation: corr * corr,
        cg_iterations: res.iterations,
        touched: n,
    })
}

/// Sweep helper: MOV vectors live in the `x = D^{1/2} y` coordinates of
/// Problem (8); the conductance sweep wants the `y = D^{−1/2} x`
/// embedding (so that the profile relates to the random-walk view).
pub fn mov_embedding(g: &Graph, mov: &MovResult) -> Vec<f64> {
    mov.vector
        .iter()
        .zip(g.degrees())
        .map(|(&x, &d)| if d > 0.0 { x / d.sqrt() } else { 0.0 })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::sweep_cut;
    use acir_graph::gen::deterministic::{barbell, cycle, path};
    use acir_spectral::fiedler_vector;

    #[test]
    fn very_negative_gamma_localizes_near_seed() {
        let g = path(30).unwrap();
        let r = mov_vector(&g, &[0], -50.0).unwrap();
        // Mass concentrated at the seed end.
        let head: f64 = r.vector[..5].iter().map(|x| x * x).sum();
        let tail: f64 = r.vector[25..].iter().map(|x| x * x).sum();
        assert!(head > 10.0 * tail, "head {head} vs tail {tail}");
        assert_eq!(r.touched, 30);
    }

    #[test]
    fn gamma_near_lambda2_recovers_fiedler() {
        let g = barbell(6, 0).unwrap();
        let f = fiedler_vector(&g).unwrap();
        // γ close below λ₂: x*(γ) → v₂ regardless of seed.
        let r = mov_vector(&g, &[0], f.lambda2 * 0.98).unwrap();
        assert!(
            vector::alignment(&r.vector, &f.vector) > 0.99,
            "alignment {}",
            vector::alignment(&r.vector, &f.vector)
        );
    }

    #[test]
    fn solution_satisfies_problem8_constraints() {
        let g = cycle(12).unwrap();
        let r = mov_vector(&g, &[3], -1.0).unwrap();
        assert!((vector::norm2(&r.vector) - 1.0).abs() < 1e-9, "unit norm");
        let v1 = trivial_eigenvector(&g);
        assert!(vector::dot(&r.vector, &v1).abs() < 1e-8, "orthogonality");
        assert!(r.seed_correlation > 0.0, "positive correlation");
        assert!(r.rayleigh >= 0.0);
    }

    #[test]
    fn stationarity_of_problem8_solution() {
        // KKT: (𝓛 − γI)x = c·D^{1/2}s (projected) for some scalar c.
        let g = barbell(5, 1).unwrap();
        let gamma = -0.5;
        let r = mov_vector(&g, &[2], gamma).unwrap();
        let nl = normalized_laplacian(&g);
        let v1 = trivial_eigenvector(&g);
        let mut s = vec![0.0; g.n()];
        s[2] = g.degree(2).sqrt();
        vector::deflate(&mut s, &v1);
        vector::normalize2(&mut s);
        // residual = (𝓛 − γ)x, should be parallel to s.
        let mut lx = vec![0.0; g.n()];
        nl.matvec(&r.vector, &mut lx);
        vector::axpy(-gamma, &r.vector, &mut lx);
        vector::deflate(&mut lx, &v1);
        let c = vector::dot(&lx, &s);
        vector::axpy(-c, &s, &mut lx);
        assert!(
            vector::norm2(&lx) < 1e-7,
            "off-seed residual {}",
            vector::norm2(&lx)
        );
    }

    #[test]
    fn sweep_of_mov_finds_local_cluster() {
        let g = barbell(8, 0).unwrap();
        let r = mov_vector(&g, &[1], -2.0).unwrap();
        let emb = mov_embedding(&g, &r);
        let cut = sweep_cut(&g, &emb);
        assert_eq!(cut.set, (0..8).collect::<Vec<u32>>());
    }

    #[test]
    fn gamma_above_lambda2_errors() {
        let g = cycle(8).unwrap();
        // λ₂ of C₈ ≈ 0.293; γ = 0.9 is between eigenvalues and makes the
        // projected system indefinite.
        assert!(mov_vector(&g, &[0], 0.9).is_err());
    }

    #[test]
    fn validates_inputs() {
        let g = cycle(5).unwrap();
        assert!(mov_vector(&g, &[], -1.0).is_err());
        assert!(mov_vector(&g, &[9], -1.0).is_err());
        assert!(mov_vector(&g, &[0], f64::NAN).is_err());
        let iso = acir_graph::Graph::from_pairs(3, [(0, 1)]).unwrap();
        assert!(mov_vector(&iso, &[2], -1.0).is_err());
    }

    #[test]
    fn embedding_is_degree_rescaled() {
        let g = path(6).unwrap();
        let r = mov_vector(&g, &[0], -3.0).unwrap();
        let emb = mov_embedding(&g, &r);
        for (u, (&e, &v)) in emb.iter().zip(&r.vector).enumerate() {
            let d = g.degree(u as u32).sqrt();
            assert!((e * d - v).abs() < 1e-12);
        }
    }
}
