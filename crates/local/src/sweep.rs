//! Degree-normalized sweep cuts.
//!
//! Every method in this reproduction — global spectral (§3.2), the MOV
//! program, and the strongly local diffusions (§3.3) — turns its
//! embedding vector into a cluster the same way: order nodes by
//! `x_u / d_u` (descending), and return the prefix with the smallest
//! conductance. Cheeger-type theorems guarantee the best prefix is
//! quadratically close to the best cut correlated with the vector.

use acir_graph::{Graph, NodeId, Permutation};
use acir_runtime::{KernelCtx, StampedSet, WorkspacePool};

/// Outcome of a sweep cut.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// The best-conductance prefix set, sorted by node id.
    pub set: Vec<NodeId>,
    /// Conductance of that set.
    pub conductance: f64,
    /// The full profile: `(prefix_size, conductance)` per prefix.
    pub profile: Vec<(usize, f64)>,
    /// The sweep ordering itself: `order[..k]` is the prefix whose
    /// conductance is `profile[k-1].1`. NCP harvesting uses this to
    /// recover the best cluster at *every* size from a single sweep.
    pub order: Vec<NodeId>,
}

impl SweepResult {
    /// Map a result computed on `g.permute(perm)` back to the original
    /// vertex ids: `set` is re-sorted, `order` keeps its sweep
    /// sequence, and the scalar profile/conductance (properties of the
    /// prefix sets, not of the labelling) carry over.
    pub fn map_back(&self, perm: &Permutation) -> SweepResult {
        SweepResult {
            set: perm.unmap_nodes(&self.set),
            conductance: self.conductance,
            profile: self.profile.clone(),
            order: self.order.iter().map(|&u| perm.to_old(u)).collect(),
        }
    }
}

/// Pool of membership sets shared by every sweep entry point; resets
/// are `O(1)`, so a sweep's cost stays proportional to the volume of
/// its candidates even on huge graphs.
static SET_POOL: WorkspacePool<StampedSet> = WorkspacePool::new();

/// Shared implementation behind every public entry point: an inert
/// context reproduces the historical sweep exactly.
fn sweep_over(g: &Graph, candidates: Vec<(NodeId, f64)>) -> SweepResult {
    let mut ctx = KernelCtx::new();
    sweep_core(g, candidates, &mut ctx)
}

/// Context-driven global sweep cut: [`sweep_cut`] with the run's
/// metering/tracing decided by the caller's [`KernelCtx`]. A metered
/// context may truncate the prefix scan when its work budget (one unit
/// per edge traversal) runs out — the best prefix among those scanned
/// is still a valid, just coarser, sweep cut. A traced context records
/// the chosen cut as a structured event.
pub fn sweep_cut_ctx(g: &Graph, score: &[f64], ctx: &mut KernelCtx) -> SweepResult {
    debug_assert_eq!(score.len(), g.n());
    let candidates: Vec<(NodeId, f64)> = score
        .iter()
        .enumerate()
        .map(|(u, &x)| (u as NodeId, x))
        .collect();
    sweep_core(g, candidates, ctx)
}

/// The sweep loop: candidates ordered by `score / d_u` descending (ties
/// by ascending node id), computing the conductance of every prefix
/// incrementally in `O(vol(candidates))` total — no length-`n` scan or
/// allocation. The [`KernelCtx`] meters one iteration per prefix and
/// one work unit per edge traversal, and records the winning cut when
/// traced; an inert context adds nothing.
fn sweep_core(g: &Graph, mut candidates: Vec<(NodeId, f64)>, ctx: &mut KernelCtx) -> SweepResult {
    candidates.sort_by(|&(a, xa), &(b, xb)| {
        let da = g.degree(a).max(f64::MIN_POSITIVE);
        let db = g.degree(b).max(f64::MIN_POSITIVE);
        let ra = xa / da;
        let rb = xb / db;
        rb.partial_cmp(&ra)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let order: Vec<NodeId> = candidates.iter().map(|&(u, _)| u).collect();

    let total = g.total_volume();
    let mut cut = 0.0;
    let mut vol = 0.0;
    let mut best_phi = f64::INFINITY;
    let mut best_len = 0usize;
    let mut profile = Vec::with_capacity(order.len());

    SET_POOL.with(|in_set| {
        in_set.reset(g.n());
        // CORE LOOP
        for (i, &u) in order.iter().enumerate() {
            let d = g.degree(u);
            // Adding u: every edge to the current set leaves the cut;
            // every other edge joins it. Self-loops never cross a cut.
            let mut to_set = 0.0;
            let mut self_loop = 0.0;
            let mut traversals = 0u64;
            for (v, w) in g.neighbors(u) {
                traversals += 1;
                if v == u {
                    self_loop += w;
                } else if in_set.contains(v as usize) {
                    to_set += w;
                }
            }
            cut += d - self_loop - 2.0 * to_set;
            vol += d;
            in_set.insert(u as usize);

            let denom = vol.min(total - vol);
            let phi = if denom > 0.0 {
                cut / denom
            } else {
                f64::INFINITY
            };
            profile.push((i + 1, phi));
            // Skip the degenerate full-graph prefix.
            if (i + 1 < order.len() || vol < total) && phi < best_phi {
                best_phi = phi;
                best_len = i + 1;
            }

            ctx.tick_iter();
            ctx.push_residual(phi);
            if let Some(_exhausted) = ctx.add_work(traversals) {
                ctx.note_with(|| {
                    format!("sweep truncated after prefix {} of {}", i + 1, order.len())
                });
                break;
            }
        }
    });

    let mut set: Vec<NodeId> = order[..best_len].to_vec();
    set.sort_unstable();
    if let Some(d) = ctx.diags_mut() {
        d.sweep_cut(set.len(), best_phi);
    }
    SweepResult {
        set,
        conductance: best_phi,
        profile,
        order,
    }
}

/// Global sweep cut: consider all nodes, ordered by `score[u]/d_u`.
///
/// Returns the best prefix among sizes `1..n` (never the full set, whose
/// conductance is undefined).
pub fn sweep_cut(g: &Graph, score: &[f64]) -> SweepResult {
    debug_assert_eq!(score.len(), g.n());
    let candidates: Vec<(NodeId, f64)> = score
        .iter()
        .enumerate()
        .map(|(u, &x)| (u as NodeId, x))
        .collect();
    sweep_over(g, candidates)
}

/// Strongly local sweep cut: consider only nodes with `score[u] > 0`
/// (the support of a truncated diffusion), so the cost is proportional
/// to the support volume — this is what keeps the §3.3 operational
/// methods independent of graph size.
pub fn sweep_cut_support(g: &Graph, score: &[f64]) -> SweepResult {
    debug_assert_eq!(score.len(), g.n());
    let candidates: Vec<(NodeId, f64)> = score
        .iter()
        .enumerate()
        .filter(|&(_, &x)| x > 0.0)
        .map(|(u, &x)| (u as NodeId, x))
        .collect();
    sweep_over(g, candidates)
}

/// Sweep cut over a sparse embedding, as produced by the truncated
/// diffusions (`PushResult::vector`, `HkRelaxResult::vector`): exactly
/// [`sweep_cut_support`] on the densified vector, without ever
/// materializing a length-`n` array. Entries with value ≤ 0 are
/// ignored; node ids must be `< g.n()`.
pub fn sweep_cut_sparse(g: &Graph, pairs: &[(NodeId, f64)]) -> SweepResult {
    debug_assert!(pairs.iter().all(|&(u, _)| (u as usize) < g.n()));
    let candidates: Vec<(NodeId, f64)> = pairs.iter().copied().filter(|&(_, x)| x > 0.0).collect();
    sweep_over(g, candidates)
}

/// Conductance of an explicit node set (`min`-side normalized):
/// `φ(S) = cut(S) / min(vol(S), vol(S̄))` — the paper's Eq. (6).
pub fn set_conductance(g: &Graph, set: &[NodeId]) -> f64 {
    let mut cut = 0.0;
    let mut vol = 0.0;
    SET_POOL.with(|member| {
        member.reset(g.n());
        for &u in set {
            member.insert(u as usize);
        }
        for &u in set {
            vol += g.degree(u);
            for (v, w) in g.neighbors(u) {
                if !member.contains(v as usize) {
                    cut += w;
                }
            }
        }
    });
    let denom = vol.min(g.total_volume() - vol);
    if denom > 0.0 {
        cut / denom
    } else {
        f64::INFINITY
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acir_graph::gen::deterministic::{barbell, complete, cycle, path};
    use acir_graph::Graph;

    #[test]
    fn sweep_finds_barbell_bottleneck() {
        let g = barbell(6, 0).unwrap();
        // Score: clique A high, clique B low (a caricature of v2).
        let score: Vec<f64> = (0..12).map(|i| if i < 6 { 1.0 } else { -1.0 }).collect();
        let r = sweep_cut(&g, &score);
        assert_eq!(r.set, (0..6).collect::<Vec<u32>>());
        // cut = 1, vol(A) = 31.
        assert!((r.conductance - 1.0 / 31.0).abs() < 1e-12);
        assert_eq!(r.profile.len(), 12);
    }

    #[test]
    fn sweep_profile_matches_set_conductance() {
        let g = path(8).unwrap();
        let score: Vec<f64> = (0..8).map(|i| -(i as f64)).collect();
        let r = sweep_cut(&g, &score);
        // Ordering is node 0, 1, ..., so prefix k = {0..k-1}.
        for (k, phi) in &r.profile {
            if *k < 8 {
                let set: Vec<u32> = (0..*k as u32).collect();
                assert!(
                    (phi - set_conductance(&g, &set)).abs() < 1e-12,
                    "prefix {k}"
                );
            }
        }
    }

    #[test]
    fn degree_normalization_matters() {
        // High raw score on a high-degree node should rank below a
        // slightly lower score on a degree-1 node after normalization.
        let g = Graph::from_pairs(4, [(0, 1), (0, 2), (0, 3)]).unwrap(); // star, hub 0
        let score = vec![1.0, 0.9, 0.0, 0.0];
        let r = sweep_cut(&g, &score);
        // hub has ratio 1/3; node 1 has 0.9 → node 1 first; prefix {1}
        // has conductance 1/1 = 1; {1, hub}: cut 2, vol 4 → 2/min(4,2)=1.
        // All prefixes are conductance 1 on a star; just check order
        // via the profile membership.
        assert_eq!(r.profile.len(), 4);
        assert!(!r.set.is_empty());
    }

    #[test]
    fn support_sweep_ignores_zero_entries() {
        let g = cycle(10).unwrap();
        let mut score = vec![0.0; 10];
        score[2] = 1.0;
        score[3] = 0.8;
        score[4] = 0.6;
        let r = sweep_cut_support(&g, &score);
        assert!(r.profile.len() == 3, "only support nodes considered");
        assert_eq!(r.set, vec![2, 3, 4]);
        // Arc of 3 on a 10-cycle: cut 2, vol 6 → 1/3.
        assert!((r.conductance - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn set_conductance_known_values() {
        let g = complete(4).unwrap();
        // {0}: cut 3, vol 3 → 1. {0,1}: cut 4, vol 6, min(6, 6) → 2/3.
        assert!((set_conductance(&g, &[0]) - 1.0).abs() < 1e-12);
        assert!((set_conductance(&g, &[0, 1]) - 4.0 / 6.0).abs() < 1e-12);
        assert!(set_conductance(&g, &[]).is_infinite());
    }

    #[test]
    fn self_loops_do_not_cross_cuts() {
        let g = Graph::from_edges(2, [(0, 0, 5.0), (0, 1, 1.0)]).unwrap();
        // {0}: cut 1 (self-loop stays inside), vol 6, other side vol 1.
        assert!((set_conductance(&g, &[0]) - 1.0).abs() < 1e-12);
        let r = sweep_cut(&g, &[1.0, 0.0]);
        assert!((r.conductance - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sparse_sweep_equals_support_sweep() {
        let g = barbell(6, 3).unwrap();
        let mut score = vec![0.0; g.n()];
        score[1] = 0.9;
        score[4] = 0.4;
        score[7] = 0.1;
        score[2] = 0.9; // tie with node 1 → id-order tiebreak exercised
        let dense = sweep_cut_support(&g, &score);
        let pairs: Vec<(u32, f64)> = vec![(1, 0.9), (4, 0.4), (7, 0.1), (2, 0.9), (9, 0.0)];
        let sparse = sweep_cut_sparse(&g, &pairs);
        assert_eq!(sparse.set, dense.set);
        assert_eq!(sparse.order, dense.order);
        assert_eq!(sparse.conductance.to_bits(), dense.conductance.to_bits());
        assert_eq!(sparse.profile.len(), dense.profile.len());
        for (a, b) in sparse.profile.iter().zip(&dense.profile) {
            assert_eq!(a.0, b.0);
            assert_eq!(a.1.to_bits(), b.1.to_bits());
        }
    }

    #[test]
    fn sweep_map_back_round_trips() {
        use acir_graph::Permutation;
        let g = barbell(6, 0).unwrap();
        let score: Vec<f64> = (0..12).map(|i| if i < 6 { 1.0 } else { 0.1 }).collect();
        let direct = sweep_cut(&g, &score);
        let perm = Permutation::degree_descending(&g);
        let pg = g.permute(&perm).unwrap();
        let pscore = perm.map_values(&score);
        let back = sweep_cut(&pg, &pscore).map_back(&perm);
        assert_eq!(back.set, direct.set);
        assert!((back.conductance - direct.conductance).abs() < 1e-15);
        assert_eq!(back.order.len(), direct.order.len());
    }

    #[test]
    fn sweep_ties_are_deterministic() {
        let g = cycle(6).unwrap();
        let score = vec![1.0; 6];
        let a = sweep_cut(&g, &score);
        let b = sweep_cut(&g, &score);
        assert_eq!(a.set, b.set);
    }
}
