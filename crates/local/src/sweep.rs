//! Degree-normalized sweep cuts.
//!
//! Every method in this reproduction — global spectral (§3.2), the MOV
//! program, and the strongly local diffusions (§3.3) — turns its
//! embedding vector into a cluster the same way: order nodes by
//! `x_u / d_u` (descending), and return the prefix with the smallest
//! conductance. Cheeger-type theorems guarantee the best prefix is
//! quadratically close to the best cut correlated with the vector.

use acir_graph::{Graph, NodeId};

/// Outcome of a sweep cut.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// The best-conductance prefix set, sorted by node id.
    pub set: Vec<NodeId>,
    /// Conductance of that set.
    pub conductance: f64,
    /// The full profile: `(prefix_size, conductance)` per prefix.
    pub profile: Vec<(usize, f64)>,
    /// The sweep ordering itself: `order[..k]` is the prefix whose
    /// conductance is `profile[k-1].1`. NCP harvesting uses this to
    /// recover the best cluster at *every* size from a single sweep.
    pub order: Vec<NodeId>,
}

/// Shared implementation: sweep over `candidates` ordered by
/// `score[u] / d_u` descending, computing the conductance of every
/// prefix incrementally in `O(vol(candidates))` total.
fn sweep_over(g: &Graph, score: &[f64], candidates: Vec<NodeId>) -> SweepResult {
    let n = g.n();
    debug_assert_eq!(score.len(), n);
    let mut order = candidates;
    order.sort_by(|&a, &b| {
        let da = g.degree(a).max(f64::MIN_POSITIVE);
        let db = g.degree(b).max(f64::MIN_POSITIVE);
        let ra = score[a as usize] / da;
        let rb = score[b as usize] / db;
        rb.partial_cmp(&ra)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });

    let total = g.total_volume();
    let mut in_set = vec![false; n];
    let mut cut = 0.0;
    let mut vol = 0.0;
    let mut best_phi = f64::INFINITY;
    let mut best_len = 0usize;
    let mut profile = Vec::with_capacity(order.len());

    for (i, &u) in order.iter().enumerate() {
        let d = g.degree(u);
        // Adding u: every edge to the current set leaves the cut; every
        // other edge joins it. Self-loops never cross a cut.
        let mut to_set = 0.0;
        let mut self_loop = 0.0;
        for (v, w) in g.neighbors(u) {
            if v == u {
                self_loop += w;
            } else if in_set[v as usize] {
                to_set += w;
            }
        }
        cut += d - self_loop - 2.0 * to_set;
        vol += d;
        in_set[u as usize] = true;

        let denom = vol.min(total - vol);
        let phi = if denom > 0.0 {
            cut / denom
        } else {
            f64::INFINITY
        };
        profile.push((i + 1, phi));
        // Skip the degenerate full-graph prefix.
        if (i + 1 < order.len() || vol < total) && phi < best_phi {
            best_phi = phi;
            best_len = i + 1;
        }
    }

    let mut set: Vec<NodeId> = order[..best_len].to_vec();
    set.sort_unstable();
    SweepResult {
        set,
        conductance: best_phi,
        profile,
        order,
    }
}

/// Global sweep cut: consider all nodes, ordered by `score[u]/d_u`.
///
/// Returns the best prefix among sizes `1..n` (never the full set, whose
/// conductance is undefined).
pub fn sweep_cut(g: &Graph, score: &[f64]) -> SweepResult {
    let candidates: Vec<NodeId> = (0..g.n() as NodeId).collect();
    sweep_over(g, score, candidates)
}

/// Strongly local sweep cut: consider only nodes with `score[u] > 0`
/// (the support of a truncated diffusion), so the cost is proportional
/// to the support volume — this is what keeps the §3.3 operational
/// methods independent of graph size.
pub fn sweep_cut_support(g: &Graph, score: &[f64]) -> SweepResult {
    let candidates: Vec<NodeId> = (0..g.n() as NodeId)
        .filter(|&u| score[u as usize] > 0.0)
        .collect();
    sweep_over(g, score, candidates)
}

/// Conductance of an explicit node set (`min`-side normalized):
/// `φ(S) = cut(S) / min(vol(S), vol(S̄))` — the paper's Eq. (6).
pub fn set_conductance(g: &Graph, set: &[NodeId]) -> f64 {
    let n = g.n();
    let mut member = vec![false; n];
    for &u in set {
        member[u as usize] = true;
    }
    let mut cut = 0.0;
    let mut vol = 0.0;
    for &u in set {
        vol += g.degree(u);
        for (v, w) in g.neighbors(u) {
            if !member[v as usize] {
                cut += w;
            }
        }
    }
    let denom = vol.min(g.total_volume() - vol);
    if denom > 0.0 {
        cut / denom
    } else {
        f64::INFINITY
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acir_graph::gen::deterministic::{barbell, complete, cycle, path};
    use acir_graph::Graph;

    #[test]
    fn sweep_finds_barbell_bottleneck() {
        let g = barbell(6, 0).unwrap();
        // Score: clique A high, clique B low (a caricature of v2).
        let score: Vec<f64> = (0..12).map(|i| if i < 6 { 1.0 } else { -1.0 }).collect();
        let r = sweep_cut(&g, &score);
        assert_eq!(r.set, (0..6).collect::<Vec<u32>>());
        // cut = 1, vol(A) = 31.
        assert!((r.conductance - 1.0 / 31.0).abs() < 1e-12);
        assert_eq!(r.profile.len(), 12);
    }

    #[test]
    fn sweep_profile_matches_set_conductance() {
        let g = path(8).unwrap();
        let score: Vec<f64> = (0..8).map(|i| -(i as f64)).collect();
        let r = sweep_cut(&g, &score);
        // Ordering is node 0, 1, ..., so prefix k = {0..k-1}.
        for (k, phi) in &r.profile {
            if *k < 8 {
                let set: Vec<u32> = (0..*k as u32).collect();
                assert!(
                    (phi - set_conductance(&g, &set)).abs() < 1e-12,
                    "prefix {k}"
                );
            }
        }
    }

    #[test]
    fn degree_normalization_matters() {
        // High raw score on a high-degree node should rank below a
        // slightly lower score on a degree-1 node after normalization.
        let g = Graph::from_pairs(4, [(0, 1), (0, 2), (0, 3)]).unwrap(); // star, hub 0
        let score = vec![1.0, 0.9, 0.0, 0.0];
        let r = sweep_cut(&g, &score);
        // hub has ratio 1/3; node 1 has 0.9 → node 1 first; prefix {1}
        // has conductance 1/1 = 1; {1, hub}: cut 2, vol 4 → 2/min(4,2)=1.
        // All prefixes are conductance 1 on a star; just check order
        // via the profile membership.
        assert_eq!(r.profile.len(), 4);
        assert!(!r.set.is_empty());
    }

    #[test]
    fn support_sweep_ignores_zero_entries() {
        let g = cycle(10).unwrap();
        let mut score = vec![0.0; 10];
        score[2] = 1.0;
        score[3] = 0.8;
        score[4] = 0.6;
        let r = sweep_cut_support(&g, &score);
        assert!(r.profile.len() == 3, "only support nodes considered");
        assert_eq!(r.set, vec![2, 3, 4]);
        // Arc of 3 on a 10-cycle: cut 2, vol 6 → 1/3.
        assert!((r.conductance - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn set_conductance_known_values() {
        let g = complete(4).unwrap();
        // {0}: cut 3, vol 3 → 1. {0,1}: cut 4, vol 6, min(6, 6) → 2/3.
        assert!((set_conductance(&g, &[0]) - 1.0).abs() < 1e-12);
        assert!((set_conductance(&g, &[0, 1]) - 4.0 / 6.0).abs() < 1e-12);
        assert!(set_conductance(&g, &[]).is_infinite());
    }

    #[test]
    fn self_loops_do_not_cross_cuts() {
        let g = Graph::from_edges(2, [(0, 0, 5.0), (0, 1, 1.0)]).unwrap();
        // {0}: cut 1 (self-loop stays inside), vol 6, other side vol 1.
        assert!((set_conductance(&g, &[0]) - 1.0).abs() < 1e-12);
        let r = sweep_cut(&g, &[1.0, 0.0]);
        assert!((r.conductance - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sweep_ties_are_deterministic() {
        let g = cycle(6).unwrap();
        let score = vec![1.0; 6];
        let a = sweep_cut(&g, &score);
        let b = sweep_cut(&g, &score);
        assert_eq!(a.set, b.set);
    }
}
