//! Push-style residual **repair**: update a prior ACL `(estimate,
//! residual)` pair to a mutated graph without recomputing from scratch.
//!
//! The ACL invariant (see [`crate::push`]) is, written for the lazy
//! walk matrix `W = (I + A D⁻¹)/2`,
//!
//! ```text
//! s = r + (1/α)(I − (1−α)W) p .
//! ```
//!
//! When the graph mutates (`A, D → A', D'`), keep `p` fixed and solve
//! for the residual that restores the invariant on the new graph:
//!
//! ```text
//! r' = r + ((1−α)/(2α)) (A'D'⁻¹ − AD⁻¹) p .
//! ```
//!
//! Only columns of changed endpoints differ, so the correction is
//! supported on `N_old(c) ∪ N_new(c)` for each delta endpoint `c` with
//! `p_c ≠ 0` — `O(d_u + d_v)` work per changed edge, independent of
//! how much diffusion built the prior. The corrected residual is
//! **signed** (a deleted edge can leave `p` locally too large), and the
//! ordinary push recurrence is sign-agnostic: pushing while
//! `|r_u| ≥ ε·d_u` restores `‖D⁻¹(pr_α(s) − p)‖_∞ ≤ ε` on the new
//! graph, because `D⁻¹ pr_α(r')` is a row-stochastic-matrix average of
//! `r'/d`. Mass conservation holds exactly throughout: `Σp + Σr = 1`.
//!
//! Termination: each push removes `α·|r_u|` of absolute residual mass
//! and the injected perturbation is `Δ = Σ|Δr|`, so the push count is
//! `O((1 + Δ)/(εα))`. When `Δ` exceeds a caller-set mass threshold the
//! kernel abandons repair and falls back to a from-scratch push — the
//! "how approximate is optimal" dial of Perry–Mahoney applied to
//! incremental maintenance: a large enough perturbation makes
//! recomputation the cheaper regularizer.
//!
//! This is the engine behind incremental hub-sketch maintenance
//! ([`crate::sketch::repair_hub_sketches`]) and the serve layer's
//! cached-answer revalidation.

use crate::push::{push_core, validate_push_args, PushExit, PushResult, PUSH_POOL};
use crate::{LocalError, Result};
use acir_graph::delta::EdgeDelta;
use acir_graph::{Graph, NodeId, NodeValued, Permutation};
use acir_runtime::{Certificate, DivergenceCause, KernelCtx, SolverOutcome};

/// Default perturbation threshold above which [`ppr_repair`] falls back
/// to a from-scratch push: the full unit of diffusion mass. A fresh
/// push reflows `Σr = 1` of mass; a repair reflows `O(Δ)` — so repair
/// is the economical choice exactly while the injected perturbation
/// stays below one unit, and beyond it the fallback's tighter constant
/// wins.
pub const DEFAULT_REPAIR_MASS_THRESHOLD: f64 = 1.0;

/// Everything a repair needs besides the (new) graph: the prior state,
/// the edge delta that separates the graph the prior was computed on
/// from the graph being repaired against, and the ACL parameters the
/// prior was computed with.
#[derive(Debug, Clone, Copy)]
pub struct RepairRequest<'a> {
    /// Seed set of the prior computation (used by the from-scratch
    /// fallback; must be valid on the new graph).
    pub seeds: &'a [NodeId],
    /// Prior estimate `p`, sparse sorted `(node, value)`.
    pub estimate: &'a [(NodeId, f64)],
    /// Prior residual `r`, sparse sorted `(node, value)`.
    pub residual: &'a [(NodeId, f64)],
    /// Net edge changes from the prior's graph to this one, as
    /// produced by `DeltaGraph::net_delta`.
    pub delta: &'a [EdgeDelta],
    /// Teleportation probability; must match the prior run.
    pub alpha: f64,
    /// Truncation threshold; must match the prior run.
    pub epsilon: f64,
    /// Fall back to a from-scratch push when the injected perturbation
    /// `Σ|Δr|` exceeds this ([`DEFAULT_REPAIR_MASS_THRESHOLD`] is the
    /// usual choice; `f64::INFINITY` disables the fallback).
    pub mass_threshold: f64,
}

/// Output of [`ppr_repair`]. Mirrors [`PushResult`] plus repair
/// bookkeeping; `vector` and `residuals` describe the repaired state
/// on the new graph, satisfying `|r| < ε·d` everywhere when converged.
#[derive(Debug, Clone, Default)]
pub struct RepairResult {
    /// Repaired estimate, sparse sorted `(node, value)`. Entries can
    /// be negative by up to `ε·d` near the truncation frontier (the
    /// signed residual can overshoot); consumers that need
    /// nonnegativity should clamp at presentation time.
    pub vector: Vec<(NodeId, f64)>,
    /// Repaired residual, sparse sorted `(node, value)`, signed.
    pub residuals: Vec<(NodeId, f64)>,
    /// Signed residual mass `Σ_u r[u]` at exit (`Σp + Σr = 1` exactly).
    pub residual_mass: f64,
    /// **Measured** worst per-degree residual `max_u |r_u|/d_u` at
    /// exit — `< ε` when converged. This is the pointwise error bound
    /// the certificate carries.
    pub per_degree_bound: f64,
    /// Push operations performed (0 = the delta did not disturb the
    /// invariant; the prior was returned unchanged, bit for bit).
    pub pushes: usize,
    /// Edge traversals performed (correction pass + push loop).
    pub work: usize,
    /// Distinct nodes with nonzero `p` or `r` at exit.
    pub touched: usize,
    /// Absolute residual mass processed by the push loop.
    pub mass_pushed: f64,
    /// Injected perturbation `Σ|Δr|` from the edge delta.
    pub perturbation: f64,
    /// `true` if the prior was repaired incrementally; `false` if the
    /// kernel fell back to a from-scratch push.
    pub repaired: bool,
}

impl NodeValued for RepairResult {
    fn node_values(&self) -> &[(NodeId, f64)] {
        &self.vector
    }

    fn node_values_mut(&mut self) -> &mut Vec<(NodeId, f64)> {
        &mut self.vector
    }
}

impl From<RepairResult> for PushResult {
    fn from(r: RepairResult) -> Self {
        PushResult {
            vector: r.vector,
            residual_mass: r.residual_mass,
            pushes: r.pushes,
            work: r.work,
            touched: r.touched,
            residuals: r.residuals,
            mass_pushed: r.mass_pushed,
        }
    }
}

fn validate_repair_args(g: &Graph, req: &RepairRequest<'_>) -> Result<()> {
    validate_push_args(g, req.seeds, req.alpha, req.epsilon)?;
    if req.mass_threshold.is_nan() || req.mass_threshold <= 0.0 {
        return Err(LocalError::InvalidArgument(format!(
            "ppr_repair needs mass_threshold > 0, got {}",
            req.mass_threshold
        )));
    }
    let n = g.n();
    for (name, slice) in [("estimate", req.estimate), ("residual", req.residual)] {
        for &(u, x) in slice {
            if u as usize >= n {
                return Err(LocalError::InvalidArgument(format!(
                    "ppr_repair: {name} node {u} out of range"
                )));
            }
            if !x.is_finite() {
                return Err(LocalError::InvalidArgument(format!(
                    "ppr_repair: {name} value at node {u} is not finite"
                )));
            }
        }
    }
    for d in req.delta {
        if d.u as usize >= n || d.v as usize >= n {
            return Err(LocalError::InvalidArgument(format!(
                "ppr_repair: delta edge ({}, {}) out of range",
                d.u, d.v
            )));
        }
    }
    Ok(())
}

/// Changed arcs at one endpoint: `(target, old_weight, new_weight)`
/// sorted by target (0.0 = absent).
type ArcChanges = Vec<(NodeId, f64, f64)>;

/// Per-endpoint view of the delta: for endpoint `c`, the changed arcs
/// `(target, old_weight, new_weight)` sorted by target (0.0 = absent).
fn endpoint_changes(delta: &[EdgeDelta]) -> Vec<(NodeId, ArcChanges)> {
    let mut map: std::collections::BTreeMap<NodeId, ArcChanges> = Default::default();
    for d in delta {
        let (old, new) = (d.old.unwrap_or(0.0), d.new.unwrap_or(0.0));
        map.entry(d.u).or_default().push((d.v, old, new));
        if d.u != d.v {
            map.entry(d.v).or_default().push((d.u, old, new));
        }
    }
    map.into_iter()
        .map(|(c, mut row)| {
            row.sort_unstable_by_key(|e| e.0);
            (c, row)
        })
        .collect()
}

/// The repair loop on the shared push scratch. Inputs are
/// pre-validated. See the [module docs](self) for the math; the loop
/// body is the ordinary ACL push with `|r|` in place of `r`.
#[allow(clippy::too_many_lines)]
fn repair_core(
    g: &Graph,
    req: &RepairRequest<'_>,
    ws: &mut crate::push::PushWorkspace,
    out: &mut RepairResult,
    ctx: &mut KernelCtx,
) -> Result<PushExit> {
    let n = g.n();
    let (alpha, epsilon) = (req.alpha, req.epsilon);
    ws.p.reset(n);
    ws.r.reset(n);
    ws.in_queue.reset(n);
    ws.queue.clear();
    ws.touched.clear();
    out.vector.clear();
    out.residuals.clear();

    // Load the prior state. Adding into freshly-stamped zeros is exact,
    // so a zero-delta repair returns the prior bit for bit.
    let mut residual_mass = 0.0f64;
    for &(u, x) in req.estimate {
        if ws.p.add(u as usize, x) {
            ws.touched.push(u);
        }
    }
    for &(u, x) in req.residual {
        if ws.r.add(u as usize, x) {
            ws.touched.push(u);
        }
        residual_mass += x;
    }

    // Correction pass: restore the invariant on the new graph by
    // adjusting r at the changed columns (delta endpoints with p ≠ 0).
    let changes = endpoint_changes(req.delta);
    let mut perturbation = 0.0f64;
    let mut work = 0usize;
    let mut unrepairable = false;
    for (c, row) in &changes {
        let pc = ws.p.get(*c as usize);
        if pc == 0.0 {
            continue; // column c never received estimate mass
        }
        let d_new = g.degree(*c);
        let d_old = d_new - row.iter().map(|&(_, o, nw)| nw - o).sum::<f64>();
        if d_old <= 0.0 || d_new <= 0.0 {
            // A node carrying estimate mass gained its first edges or
            // lost its last ones: the column swap is degenerate, and a
            // fresh push is the only honest answer.
            unrepairable = true;
            break;
        }
        let kappa = pc * (1.0 - alpha) / (2.0 * alpha);
        // Net column swap A'_{·c}/d'_c − A_{·c}/d_c, one merged pass:
        // the new CSR row (old weights restored from the delta record)
        // plus fully-deleted arcs. Unchanged arcs nearly cancel —
        // their adjustment is κ·w·(1/d' − 1/d) — so the measured
        // perturbation scales with the *relative* degree change, not
        // with the column mass.
        for (x, w_new) in g.neighbors(*c) {
            work += 1;
            let w_old = match row.binary_search_by_key(&x, |e| e.0) {
                Ok(k) => row[k].1,
                Err(_) => w_new,
            };
            let adj = kappa * (w_new / d_new - w_old / d_old);
            if adj != 0.0 {
                perturbation += adj.abs();
                residual_mass += adj;
                if ws.r.add(x as usize, adj) {
                    ws.touched.push(x);
                }
            }
        }
        for &(x, w_old, w_new) in row {
            if w_new == 0.0 && w_old > 0.0 {
                work += 1;
                let adj = -kappa * w_old / d_old;
                perturbation += adj.abs();
                residual_mass += adj;
                if ws.r.add(x as usize, adj) {
                    ws.touched.push(x);
                }
            }
        }
    }
    out.perturbation = perturbation;

    if unrepairable || perturbation > req.mass_threshold {
        // From-scratch fallback: an ordinary push on the new graph.
        ctx.note_with(|| {
            if unrepairable {
                "repair fallback: delta isolates or newly connects an estimate-bearing node".into()
            } else {
                format!(
                    "repair fallback: perturbation {:.3e} exceeds threshold {:.3e}",
                    perturbation, req.mass_threshold
                )
            }
        });
        let mut fresh = PushResult::empty();
        let exit = push_core(g, req.seeds, alpha, epsilon, ws, &mut fresh, ctx)?;
        out.per_degree_bound = match &exit {
            PushExit::Exhausted {
                per_degree_bound, ..
            } => *per_degree_bound,
            _ => fresh
                .residuals
                .iter()
                .map(|&(u, r)| r.abs() / g.degree(u))
                .fold(0.0f64, f64::max),
        };
        out.vector = std::mem::take(&mut fresh.vector);
        out.residuals = std::mem::take(&mut fresh.residuals);
        out.residual_mass = fresh.residual_mass;
        out.pushes = fresh.pushes;
        out.work = work + fresh.work;
        out.touched = fresh.touched;
        out.mass_pushed = fresh.mass_pushed;
        out.repaired = false;
        return Ok(exit);
    }

    // Re-arm the queue: the only nodes whose `|r| ≥ ε·d` status can
    // have changed are the endpoints (degree changed) and the nodes
    // their corrections landed on (residual changed).
    let mut candidates: Vec<NodeId> = Vec::new();
    for (c, row) in &changes {
        candidates.push(*c);
        for (x, _) in g.neighbors(*c) {
            candidates.push(x);
        }
        for &(x, w_old, w_new) in row {
            if w_new == 0.0 && w_old > 0.0 {
                candidates.push(x);
            }
        }
    }
    candidates.sort_unstable();
    candidates.dedup();
    for &u in &candidates {
        let du = g.degree(u);
        if !ws.in_queue.contains(u as usize)
            && ws.r.get(u as usize).abs() >= epsilon * du
            && du > 0.0
        {
            ws.in_queue.insert(u as usize);
            ws.queue.push_back(u);
        }
    }

    let mut pushes = 0usize;
    let mut mass_pushed = 0.0f64;
    // Safety cap: each push retires α·|r| of absolute residual mass,
    // of which at most 1 + Δ exists.
    let push_cap =
        ((4.0 * (1.0 + perturbation) / (epsilon * alpha)).ceil() as usize).saturating_add(16);
    let mut exit = PushExit::Done;

    // CORE LOOP
    while let Some(u) = ws.queue.pop_front() {
        ws.in_queue.remove(u as usize);
        let du = g.degree(u);
        let ru = ws.r.get(u as usize);
        if ctx.is_guarded() && !ru.is_finite() {
            exit = PushExit::Diverged(DivergenceCause::NonFiniteIterate { at_iter: pushes });
            break;
        }
        if ru.abs() < epsilon * du {
            continue;
        }
        pushes += 1;
        mass_pushed += ru.abs();
        if pushes > push_cap {
            if ctx.is_guarded() {
                exit = PushExit::Diverged(DivergenceCause::Breakdown {
                    at_iter: pushes,
                    what: "exceeded the perturbation-scaled O((1+Δ)/(εα)) push bound",
                });
                break;
            }
            return Err(LocalError::InvalidArgument(
                "ppr_repair exceeded its perturbation-scaled push bound (bug guard)".into(),
            ));
        }
        // The ordinary lazy push, sign-agnostic: α·ru into p, half the
        // rest stays, half spreads. Negative residuals retract mass.
        if ws.p.add(u as usize, alpha * ru) {
            ws.touched.push(u);
        }
        residual_mass -= alpha * ru;
        let stay = (1.0 - alpha) * ru / 2.0;
        ws.r.set(u as usize, stay);
        let spread = (1.0 - alpha) * ru / 2.0;
        let mut traversals = 0u64;
        for (v, w) in g.neighbors(u) {
            work += 1;
            traversals += 1;
            let dv = g.degree(v);
            if ws.r.add(v as usize, spread * w / du) {
                ws.touched.push(v);
            }
            if ctx.is_guarded() && !ws.r.get(v as usize).is_finite() {
                exit = PushExit::Diverged(DivergenceCause::NonFiniteIterate { at_iter: pushes });
                break;
            }
            if !ws.in_queue.contains(v as usize)
                && ws.r.get(v as usize).abs() >= epsilon * dv
                && dv > 0.0
            {
                ws.in_queue.insert(v as usize);
                ws.queue.push_back(v);
            }
        }
        if matches!(exit, PushExit::Diverged(_)) {
            break;
        }
        if !ws.in_queue.contains(u as usize) && ws.r.get(u as usize).abs() >= epsilon * du {
            ws.in_queue.insert(u as usize);
            ws.queue.push_back(u);
        }

        ctx.tick_iter();
        ctx.push_residual(residual_mass);
        if let Some(exhausted) = ctx.add_work(traversals) {
            let per_degree_bound = (0..n)
                .map(|u| {
                    let d = g.degree(u as NodeId);
                    if d > 0.0 {
                        ws.r.get(u).abs() / d
                    } else {
                        0.0
                    }
                })
                .fold(0.0f64, f64::max)
                .max(epsilon);
            exit = PushExit::Exhausted {
                exhausted,
                remaining: residual_mass,
                per_degree_bound,
            };
            break;
        }
    }

    if matches!(exit, PushExit::Diverged(_)) {
        return Ok(exit);
    }

    // Harvest. The touched list can hold a node twice (first-touched
    // separately through p and r), so dedup after sorting.
    ws.touched.sort_unstable();
    ws.touched.dedup();
    let mut touched = 0usize;
    let mut residual_sum = 0.0f64;
    let mut bound = 0.0f64;
    for &u in &ws.touched {
        let p = ws.p.get(u as usize);
        let r = ws.r.get(u as usize);
        if p != 0.0 {
            out.vector.push((u, p));
        }
        if r != 0.0 {
            out.residuals.push((u, r));
            let d = g.degree(u);
            if d > 0.0 {
                bound = bound.max(r.abs() / d);
            }
        }
        if p != 0.0 || r != 0.0 {
            touched += 1;
        }
        residual_sum += r;
    }
    out.residual_mass = residual_sum;
    out.per_degree_bound = match &exit {
        PushExit::Exhausted {
            per_degree_bound, ..
        } => *per_degree_bound,
        _ => bound,
    };
    out.pushes = pushes;
    out.work = work;
    out.touched = touched;
    out.mass_pushed = mass_pushed;
    out.repaired = true;
    Ok(exit)
}

/// Repair a prior push state against an edge delta. See the
/// [module docs](self).
///
/// Returns the repaired state on the new graph with the invariant
/// `|r_u| < ε·d_u` restored everywhere (so the repaired vector carries
/// the same `‖D⁻¹(pr_α(s) − p)‖_∞ ≤ ε` guarantee a from-scratch push
/// earns). An empty delta returns the prior unchanged, bit for bit,
/// with `pushes == 0`.
pub fn ppr_repair(g: &Graph, req: &RepairRequest<'_>) -> Result<RepairResult> {
    validate_repair_args(g, req)?;
    let mut out = RepairResult::default();
    let mut ctx = KernelCtx::new();
    PUSH_POOL.with(|ws| repair_core(g, req, ws, &mut out, &mut ctx))?;
    Ok(out)
}

/// Repair a prior push state recorded in a *previous* snapshot's
/// vertex labeling against a graph that has since been relabeled by
/// `step` (prior ids → `g`'s ids), e.g. by a relabeling compaction
/// ([`acir_graph::snapshot`]).
///
/// The prior's seeds, estimate, residual, and delta endpoints are
/// routed through `step` into `g`'s id space and the repair then
/// proceeds exactly as [`ppr_repair`] — so the returned state lives in
/// `g`'s labeling and carries the same freshly **measured**
/// `per_degree_bound`. With an empty delta this reduces to relabeling
/// the prior verbatim (`pushes == 0`) while still re-measuring the
/// certificate against `g`; with an identity `step` it is bit-identical
/// to [`ppr_repair`].
pub fn ppr_repair_relabeled(
    g: &Graph,
    req: &RepairRequest<'_>,
    step: &Permutation,
) -> Result<RepairResult> {
    if step.is_identity() {
        return ppr_repair(g, req);
    }
    if step.len() != g.n() {
        return Err(LocalError::InvalidArgument(format!(
            "ppr_repair_relabeled: permutation over {} vertices cannot relabel into a graph with {} nodes",
            step.len(),
            g.n()
        )));
    }
    validate_repair_args(g, req)?;
    let seeds: Vec<NodeId> = req.seeds.iter().map(|&u| step.to_new(u)).collect();
    let estimate = step.map_sparse(req.estimate);
    let residual = step.map_sparse(req.residual);
    let mut delta: Vec<EdgeDelta> = req
        .delta
        .iter()
        .map(|d| {
            let (mut u, mut v) = (step.to_new(d.u), step.to_new(d.v));
            if u > v {
                std::mem::swap(&mut u, &mut v);
            }
            EdgeDelta {
                u,
                v,
                old: d.old,
                new: d.new,
            }
        })
        .collect();
    delta.sort_unstable_by_key(|d| (d.u, d.v));
    ppr_repair(
        g,
        &RepairRequest {
            seeds: &seeds,
            estimate: &estimate,
            residual: &residual,
            delta: &delta,
            alpha: req.alpha,
            epsilon: req.epsilon,
            mass_threshold: req.mass_threshold,
        },
    )
}

/// Context-driven repair: metering, contamination guards, and tracing
/// per the [`KernelCtx`], with the result structured as a
/// [`SolverOutcome`] whose certificate is the usual
/// [`Certificate::ResidualMass`] — `remaining` is the signed residual
/// mass and `per_degree_bound` the **measured** worst `|r|/d` at exit.
pub fn ppr_repair_ctx(
    g: &Graph,
    req: &RepairRequest<'_>,
    ctx: &mut KernelCtx,
) -> Result<SolverOutcome<RepairResult>> {
    validate_repair_args(g, req)?;
    let mut out = RepairResult::default();
    let exit = PUSH_POOL.with(|ws| repair_core(g, req, ws, &mut out, ctx))?;
    let diags = ctx.finish();
    Ok(match exit {
        PushExit::Done => SolverOutcome::converged(out, diags),
        PushExit::Exhausted {
            exhausted,
            remaining,
            per_degree_bound,
        } => SolverOutcome::exhausted(
            out,
            exhausted,
            Certificate::ResidualMass {
                remaining,
                per_degree_bound,
            },
            diags,
        ),
        PushExit::Diverged(cause) => SolverOutcome::diverged(cause, diags),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::push::{ppr_exact_reference, ppr_push};
    use acir_graph::gen::deterministic::{barbell, cycle};
    use acir_graph::DeltaGraph;

    fn repair_after(
        g_old: &Graph,
        edits: impl FnOnce(&mut DeltaGraph<'_>),
        seeds: &[NodeId],
        alpha: f64,
        epsilon: f64,
    ) -> (Graph, Vec<EdgeDelta>, RepairResult) {
        let prior = ppr_push(g_old, seeds, alpha, epsilon).unwrap();
        let mut dg = DeltaGraph::new(g_old);
        edits(&mut dg);
        let delta = dg.net_delta();
        let (g_new, _) = dg.compact().unwrap();
        let rr = ppr_repair(
            &g_new,
            &RepairRequest {
                seeds,
                estimate: &prior.vector,
                residual: &prior.residuals,
                delta: &delta,
                alpha,
                epsilon,
                mass_threshold: DEFAULT_REPAIR_MASS_THRESHOLD,
            },
        )
        .unwrap();
        (g_new, delta, rr)
    }

    #[test]
    fn empty_delta_returns_prior_bit_for_bit() {
        let g = barbell(6, 2).unwrap();
        let prior = ppr_push(&g, &[0], 0.1, 1e-4).unwrap();
        let rr = ppr_repair(
            &g,
            &RepairRequest {
                seeds: &[0],
                estimate: &prior.vector,
                residual: &prior.residuals,
                delta: &[],
                alpha: 0.1,
                epsilon: 1e-4,
                mass_threshold: DEFAULT_REPAIR_MASS_THRESHOLD,
            },
        )
        .unwrap();
        assert!(rr.repaired);
        assert_eq!(rr.pushes, 0);
        assert_eq!(rr.perturbation, 0.0);
        assert_eq!(rr.vector, prior.vector);
        assert_eq!(rr.residuals, prior.residuals);
        assert_eq!(rr.residual_mass.to_bits(), prior.residual_mass.to_bits());
    }

    #[test]
    fn repaired_state_meets_invariant_and_tracks_reference() {
        let (alpha, eps) = (0.1, 1e-5);
        let g_old = barbell(8, 2).unwrap();
        let (g_new, _, rr) = repair_after(
            &g_old,
            |dg| {
                dg.insert_edge(0, 12, 1.0).unwrap();
                dg.delete_edge(1, 2).unwrap();
            },
            &[0],
            alpha,
            eps,
        );
        assert!(rr.repaired);
        assert!(rr.pushes > 0);
        // Invariant restored: measured bound below ε.
        assert!(rr.per_degree_bound < eps, "bound {}", rr.per_degree_bound);
        for &(u, r) in &rr.residuals {
            assert!(r.abs() < eps * g_new.degree(u));
        }
        // Mass conserved exactly through correction and push.
        let p_mass: f64 = rr.vector.iter().map(|&(_, x)| x).sum();
        assert!((p_mass + rr.residual_mass - 1.0).abs() < 1e-12);
        // Within ε·d of the exact answer on the NEW graph, node by node.
        let exact = ppr_exact_reference(&g_new, &[0], alpha, 20_000).unwrap();
        let dense = rr.to_dense(g_new.n());
        for u in 0..g_new.n() {
            let err = (exact[u] - dense[u]).abs() / g_new.degree(u as NodeId);
            assert!(err <= eps + 1e-9, "node {u}: err {err}");
        }
    }

    #[test]
    fn repair_is_cheaper_than_recompute_for_single_edges() {
        let (alpha, eps) = (0.05, 1e-6);
        let g_old = barbell(10, 3).unwrap();
        // Reweight an edge inside the far clique: little of the seed's
        // estimate mass sits on the endpoints, so the perturbation —
        // and the repair work — is small.
        let (g_new, _, rr) = repair_after(
            &g_old,
            |dg| {
                dg.insert_edge(14, 20, 3.0).unwrap();
            },
            &[0],
            alpha,
            eps,
        );
        let fresh = ppr_push(&g_new, &[0], alpha, eps).unwrap();
        assert!(rr.repaired);
        assert!(
            rr.pushes * 5 <= fresh.pushes,
            "repair {} vs rebuild {} pushes",
            rr.pushes,
            fresh.pushes
        );
        // And the two agree within 2ε per degree (both ε-truncations of
        // the same exact PPR).
        let dense_r = rr.to_dense(g_new.n());
        let dense_f = fresh.to_dense(g_new.n());
        for u in 0..g_new.n() {
            let diff = (dense_r[u] - dense_f[u]).abs() / g_new.degree(u as NodeId);
            assert!(diff <= 2.0 * eps + 1e-12, "node {u}: {diff}");
        }
    }

    #[test]
    fn oversized_perturbation_falls_back_to_scratch() {
        let (alpha, eps) = (0.1, 1e-4);
        let g_old = cycle(12).unwrap();
        let prior = ppr_push(&g_old, &[0], alpha, eps).unwrap();
        let mut dg = DeltaGraph::new(&g_old);
        // Rewire everything around the seed: huge perturbation.
        for v in 2..10 {
            dg.insert_edge(0, v, 10.0).unwrap();
        }
        let delta = dg.net_delta();
        let (g_new, _) = dg.compact().unwrap();
        let req = RepairRequest {
            seeds: &[0],
            estimate: &prior.vector,
            residual: &prior.residuals,
            delta: &delta,
            alpha,
            epsilon: eps,
            mass_threshold: 1e-6, // force the fallback
        };
        let rr = ppr_repair(&g_new, &req).unwrap();
        assert!(!rr.repaired);
        assert!(rr.perturbation > 1e-6);
        let fresh = ppr_push(&g_new, &[0], alpha, eps).unwrap();
        assert_eq!(rr.vector, fresh.vector);
        assert_eq!(rr.residuals, fresh.residuals);
        assert_eq!(rr.pushes, fresh.pushes);
    }

    #[test]
    fn relabeled_repair_with_empty_delta_maps_prior_and_remeasures() {
        use acir_graph::Permutation;
        let (alpha, eps) = (0.1, 1e-4);
        let g = barbell(6, 2).unwrap();
        let prior = ppr_push(&g, &[0], alpha, eps).unwrap();
        let step = Permutation::degree_descending(&g);
        assert!(!step.is_identity());
        let gp = g.permute(&step).unwrap();
        let rr = ppr_repair_relabeled(
            &gp,
            &RepairRequest {
                seeds: &[0],
                estimate: &prior.vector,
                residual: &prior.residuals,
                delta: &[],
                alpha,
                epsilon: eps,
                mass_threshold: DEFAULT_REPAIR_MASS_THRESHOLD,
            },
            &step,
        )
        .unwrap();
        // A pure relabel reflows nothing: the prior comes back mapped,
        // bit for bit, and the bound is re-measured against gp.
        assert!(rr.repaired);
        assert_eq!(rr.pushes, 0);
        assert_eq!(rr.vector, step.map_sparse(&prior.vector));
        assert_eq!(rr.residuals, step.map_sparse(&prior.residuals));
        assert!(rr.per_degree_bound > 0.0 && rr.per_degree_bound < eps);
    }

    #[test]
    fn relabeled_repair_restores_invariant_after_a_real_delta() {
        use acir_graph::Permutation;
        let (alpha, eps) = (0.1, 1e-5);
        let g_old = barbell(8, 2).unwrap();
        let prior = ppr_push(&g_old, &[0], alpha, eps).unwrap();
        let mut dg = DeltaGraph::new(&g_old);
        dg.insert_edge(0, 12, 2.0).unwrap();
        dg.delete_edge(1, 2).unwrap();
        let delta = dg.net_delta();
        let (g_new, _) = dg.compact().unwrap();
        let step = Permutation::rcm(&g_new);
        let gp = g_new.permute(&step).unwrap();
        let req = RepairRequest {
            seeds: &[0],
            estimate: &prior.vector,
            residual: &prior.residuals,
            delta: &delta,
            alpha,
            epsilon: eps,
            mass_threshold: DEFAULT_REPAIR_MASS_THRESHOLD,
        };
        let rr = ppr_repair_relabeled(&gp, &req, &step).unwrap();
        assert!(rr.repaired);
        assert!(rr.pushes > 0);
        assert!(rr.per_degree_bound < eps);
        let p_mass: f64 = rr.vector.iter().map(|&(_, x)| x).sum();
        assert!((p_mass + rr.residual_mass - 1.0).abs() < 1e-12);
        // Node-by-node agreement with the exact answer on the permuted
        // graph, from the permuted seed.
        let exact = ppr_exact_reference(&gp, &[step.to_new(0)], alpha, 20_000).unwrap();
        let dense = rr.to_dense(gp.n());
        for u in 0..gp.n() {
            let err = (exact[u] - dense[u]).abs() / gp.degree(u as NodeId);
            assert!(err <= eps + 1e-9, "node {u}: err {err}");
        }
        // Identity step delegates bit-for-bit to the plain kernel.
        let ident = Permutation::identity(g_new.n());
        let a = ppr_repair_relabeled(&g_new, &req, &ident).unwrap();
        let b = ppr_repair(&g_new, &req).unwrap();
        assert_eq!(a.vector, b.vector);
        assert_eq!(a.residuals, b.residuals);
        assert_eq!(a.pushes, b.pushes);
    }

    #[test]
    fn isolating_an_estimate_node_is_unrepairable() {
        let (alpha, eps) = (0.1, 1e-4);
        let g_old = barbell(4, 1).unwrap(); // bridge node 4 between cliques
        let prior = ppr_push(&g_old, &[0], alpha, eps).unwrap();
        let mut dg = DeltaGraph::new(&g_old);
        // Cut the bridge node loose entirely.
        dg.delete_edge(3, 4).unwrap();
        dg.delete_edge(4, 5).unwrap();
        let delta = dg.net_delta();
        let (g_new, _) = dg.compact().unwrap();
        let rr = ppr_repair(
            &g_new,
            &RepairRequest {
                seeds: &[0],
                estimate: &prior.vector,
                residual: &prior.residuals,
                delta: &delta,
                alpha,
                epsilon: eps,
                mass_threshold: f64::INFINITY,
            },
        )
        .unwrap();
        assert!(!rr.repaired, "degenerate column swap must fall back");
        let fresh = ppr_push(&g_new, &[0], alpha, eps).unwrap();
        assert_eq!(rr.vector, fresh.vector);
    }

    #[test]
    fn ctx_variant_certifies_and_validates() {
        let (alpha, eps) = (0.1, 1e-4);
        let g_old = barbell(6, 2).unwrap();
        let prior = ppr_push(&g_old, &[0], alpha, eps).unwrap();
        let mut dg = DeltaGraph::new(&g_old);
        dg.insert_edge(0, 9, 1.0).unwrap();
        let delta = dg.net_delta();
        let (g_new, _) = dg.compact().unwrap();
        let req = RepairRequest {
            seeds: &[0],
            estimate: &prior.vector,
            residual: &prior.residuals,
            delta: &delta,
            alpha,
            epsilon: eps,
            mass_threshold: DEFAULT_REPAIR_MASS_THRESHOLD,
        };
        let mut ctx = acir_runtime::KernelCtx::traced("local.ppr_repair");
        let out = ppr_repair_ctx(&g_new, &req, &mut ctx).unwrap();
        assert!(out.is_converged());
        assert!(out.value().unwrap().per_degree_bound < eps);

        // Bad arguments are rejected before any work.
        let bad = RepairRequest {
            mass_threshold: 0.0,
            ..req
        };
        assert!(ppr_repair(&g_new, &bad).is_err());
        let bad = RepairRequest {
            estimate: &[(9999, 0.1)],
            ..req
        };
        assert!(ppr_repair(&g_new, &bad).is_err());
        let bad = RepairRequest {
            residual: &[(0, f64::NAN)],
            ..req
        };
        assert!(ppr_repair(&g_new, &bad).is_err());
        let bad_delta = [EdgeDelta {
            u: 0,
            v: 9999,
            old: None,
            new: Some(1.0),
        }];
        let bad = RepairRequest {
            delta: &bad_delta,
            ..req
        };
        assert!(ppr_repair(&g_new, &bad).is_err());
    }
}
