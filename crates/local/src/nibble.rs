//! Spielman–Teng truncated random walks ("Nibble", paper ref \[39\]).
//!
//! The original strongly local method: run the lazy random walk from a
//! seed for `T` steps, but after every step set to zero every entry
//! with `q[u] < ε·d_u` ("\[39\] sets to zero very small probabilities",
//! §3.3). Sweep the distribution at each step and keep the best
//! cluster seen. The truncation keeps the support — and therefore the
//! work — bounded independently of the graph size, at the cost of
//! leaking probability mass; that leak *is* the implicit regularizer.

use crate::sweep::sweep_cut_sparse;
use crate::{LocalError, Result};
use acir_graph::{Graph, NodeId, NodeValued, Permutation};
use acir_runtime::{
    Budget, Certificate, DivergenceCause, Exhaustion, GuardConfig, KernelCtx, SolverOutcome,
    StampedVec, WorkspacePool,
};

/// Output of [`nibble`].
#[derive(Debug, Clone)]
pub struct NibbleResult {
    /// Best cluster found across all steps (sorted).
    pub set: Vec<NodeId>,
    /// Its conductance.
    pub conductance: f64,
    /// Step at which the best cluster appeared (1-based).
    pub best_step: usize,
    /// Final truncated distribution as sorted `(node, value)` pairs.
    pub vector: Vec<(NodeId, f64)>,
    /// Total probability mass discarded by truncation.
    pub mass_lost: f64,
    /// Edge traversals performed (work measure).
    pub work: usize,
    /// Maximum support size over all steps (touched-node measure).
    pub max_support: usize,
}

/// `to_dense` / `scale` come from the shared [`NodeValued`] trait;
/// `map_back` is overridden because the best-cluster `set` names
/// nodes too and must be remapped alongside the distribution.
impl NodeValued for NibbleResult {
    fn node_values(&self) -> &[(NodeId, f64)] {
        &self.vector
    }

    fn node_values_mut(&mut self) -> &mut Vec<(NodeId, f64)> {
        &mut self.vector
    }

    fn map_back(&self, perm: &Permutation) -> Self {
        let mut out = self.clone();
        out.vector = perm.unmap_sparse(&self.vector);
        out.set = perm.unmap_nodes(&self.set);
        out
    }
}

/// Run truncated lazy random walks from `seed` for `steps` steps with
/// truncation threshold `epsilon` and holding probability 1/2.
///
/// Errors on bad parameters or a degree-0/out-of-range seed.
pub fn nibble(g: &Graph, seed: NodeId, steps: usize, epsilon: f64) -> Result<NibbleResult> {
    validate_nibble_args(g, seed, steps, epsilon)?;
    let mut ctx = KernelCtx::new();
    let (result, _exit) = NIBBLE_POOL.with(|ws| nibble_core(g, seed, steps, epsilon, ws, &mut ctx));
    Ok(result)
}

/// Parameter validation shared by every nibble entry point.
fn validate_nibble_args(g: &Graph, seed: NodeId, steps: usize, epsilon: f64) -> Result<()> {
    let n = g.n();
    if seed as usize >= n {
        return Err(LocalError::InvalidArgument(format!(
            "seed {seed} out of range"
        )));
    }
    if g.degree(seed) <= 0.0 {
        return Err(LocalError::InvalidArgument(format!(
            "seed {seed} has zero degree"
        )));
    }
    if steps == 0 {
        return Err(LocalError::InvalidArgument("steps must be positive".into()));
    }
    if !(epsilon > 0.0 && epsilon.is_finite()) {
        return Err(LocalError::InvalidArgument(format!(
            "epsilon must be positive, got {epsilon}"
        )));
    }
    Ok(())
}

/// Truncated random walks under an explicit resource [`Budget`].
///
/// Each walk step costs one iteration; each edge traversal costs one
/// work unit. On exhaustion the best cluster seen so far is returned
/// with a [`Certificate::ResidualMass`] recording the truncation leak —
/// a walk stopped early is just a harder truncation of the same
/// diffusion. NaN/Inf contamination diverges.
pub fn nibble_budgeted(
    g: &Graph,
    seed: NodeId,
    steps: usize,
    epsilon: f64,
    budget: &Budget,
) -> Result<SolverOutcome<NibbleResult>> {
    let mut ctx =
        KernelCtx::budgeted("local.nibble", budget).with_guard(GuardConfig::contamination_only());
    nibble_ctx(g, seed, steps, epsilon, &mut ctx)
}

/// Context-driven truncated random walks: the [`KernelCtx`] decides
/// whether the run is metered, guarded, or traced.
pub fn nibble_ctx(
    g: &Graph,
    seed: NodeId,
    steps: usize,
    epsilon: f64,
    ctx: &mut KernelCtx,
) -> Result<SolverOutcome<NibbleResult>> {
    validate_nibble_args(g, seed, steps, epsilon)?;
    let (result, exit) = NIBBLE_POOL.with(|ws| nibble_core(g, seed, steps, epsilon, ws, ctx));
    let diags = ctx.finish();
    Ok(match exit {
        NibbleExit::Done => SolverOutcome::converged(result, diags),
        NibbleExit::Exhausted(exhausted) => {
            let remaining = result.mass_lost;
            SolverOutcome::exhausted(
                result,
                exhausted,
                Certificate::ResidualMass {
                    remaining,
                    per_degree_bound: epsilon,
                },
                diags,
            )
        }
        NibbleExit::Diverged(cause) => SolverOutcome::diverged(cause, diags),
    })
}

/// Reusable scratch for [`nibble`]: the current and next distributions
/// on stamped arrays, support lists, and the per-step sweep input.
#[derive(Debug, Default)]
struct NibbleWorkspace {
    q: StampedVec,
    next: StampedVec,
    support: Vec<NodeId>,
    next_support: Vec<NodeId>,
    kept: Vec<NodeId>,
    pairs: Vec<(NodeId, f64)>,
}

static NIBBLE_POOL: WorkspacePool<NibbleWorkspace> = WorkspacePool::new();

/// How the single truncated-walk core loop exited.
enum NibbleExit {
    /// All steps ran (or the walk truncated away entirely).
    Done,
    /// Budget ran out; the best cluster seen so far was harvested.
    Exhausted(Exhaustion),
    /// NaN/Inf contamination of the distribution (guarded contexts).
    Diverged(DivergenceCause),
}

/// The truncated-walk loop on stamped scratch (inputs pre-validated).
/// Bit-identical to the historical dense implementation: stamped resets
/// read like fresh zeroed arrays, first touch coincides with the old
/// `next[v] == 0.0` test (all contributions are positive), and each
/// per-step sweep runs over exactly the support the dense `0..n` filter
/// found — the sweep's ordering is a strict total order (ratio
/// descending, id ascending), so candidate input order cannot matter.
///
/// The [`KernelCtx`] supplies the cross-cutting concerns: metering (one
/// iteration per walk step, one work unit per edge traversal), residual
/// recording of the truncation leak, and finiteness scans when a guard
/// is attached. An inert context runs the historical loop exactly.
fn nibble_core(
    g: &Graph,
    seed: NodeId,
    steps: usize,
    epsilon: f64,
    ws: &mut NibbleWorkspace,
    ctx: &mut KernelCtx,
) -> (NibbleResult, NibbleExit) {
    let n = g.n();
    ws.q.reset(n);
    ws.next.reset(n);
    ws.support.clear();
    ws.support.push(seed);
    ws.q.set(seed as usize, 1.0);

    let mut best: Option<(Vec<NodeId>, f64, usize)> = None;
    let mut mass_lost = 0.0;
    let mut work = 0usize;
    let mut max_support = 1usize;
    let mut exit = NibbleExit::Done;

    // CORE LOOP
    'steps: for step in 1..=steps {
        // One lazy step over the support: next = (q + M q)/2 restricted
        // to the out-neighborhood of the support.
        ws.next_support.clear();
        let mut traversals = 0u64;
        for &u in &ws.support {
            let qu = ws.q.get(u as usize);
            if qu == 0.0 {
                continue;
            }
            // Lazy half stays.
            if ws.next.add(u as usize, 0.5 * qu) {
                ws.next_support.push(u);
            }
            let du = g.degree(u);
            for (v, w) in g.neighbors(u) {
                work += 1;
                traversals += 1;
                if ws.next.add(v as usize, 0.5 * qu * w / du) {
                    ws.next_support.push(v);
                }
            }
        }
        // Truncate: zero entries below ε·d_v (degree-0 nodes cannot
        // receive mass, so no special case needed).
        ws.kept.clear();
        for &v in &ws.next_support {
            let x = ws.next.get(v as usize);
            if ctx.is_guarded() && !x.is_finite() {
                exit = NibbleExit::Diverged(DivergenceCause::NonFiniteIterate { at_iter: step });
                break 'steps;
            }
            if x < epsilon * g.degree(v) {
                mass_lost += x;
            } else if x > 0.0 {
                ws.kept.push(v);
            }
        }
        // Swap buffers: move the kept entries of next into q.
        ws.q.reset(n);
        for &v in &ws.kept {
            let x = ws.next.get(v as usize);
            ws.q.set(v as usize, x);
        }
        ws.next.reset(n);
        std::mem::swap(&mut ws.support, &mut ws.kept);
        max_support = max_support.max(ws.support.len());
        ctx.push_residual(mass_lost);
        if ws.support.is_empty() {
            break; // everything truncated away
        }

        // Sweep the current distribution (support-sized, not n-sized).
        ws.pairs.clear();
        ws.pairs
            .extend(ws.support.iter().map(|&u| (u, ws.q.get(u as usize))));
        let sr = sweep_cut_sparse(g, &ws.pairs);
        if let Some(d) = ctx.diags_mut() {
            d.sweep_cut(sr.set.len(), sr.conductance);
        }
        if !sr.set.is_empty() {
            match &best {
                Some((_, phi, _)) if *phi <= sr.conductance => {}
                _ => best = Some((sr.set, sr.conductance, step)),
            }
        }

        ctx.tick_iter();
        if let Some(exhausted) = ctx.add_work(traversals) {
            ctx.note_with(|| format!("stopped after walk step {step} of {steps}"));
            exit = NibbleExit::Exhausted(exhausted);
            break;
        }
    }

    if let NibbleExit::Diverged(_) = exit {
        let empty = NibbleResult {
            set: Vec::new(),
            conductance: f64::INFINITY,
            best_step: 0,
            vector: Vec::new(),
            mass_lost: 0.0,
            work: 0,
            max_support: 0,
        };
        return (empty, exit);
    }

    let (set, conductance, best_step) = best.unwrap_or((vec![seed], f64::INFINITY, 0));
    let mut vector: Vec<(NodeId, f64)> = ws
        .support
        .iter()
        .map(|&u| (u, ws.q.get(u as usize)))
        .filter(|&(_, x)| x > 0.0)
        .collect();
    vector.sort_unstable_by_key(|&(u, _)| u);

    let result = NibbleResult {
        set,
        conductance,
        best_step,
        vector,
        mass_lost,
        work,
        max_support,
    };
    (result, exit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use acir_graph::gen::deterministic::{barbell, cycle};
    use acir_graph::gen::random::barabasi_albert;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn finds_barbell_community() {
        let g = barbell(8, 0).unwrap();
        let r = nibble(&g, 3, 40, 1e-5).unwrap();
        assert_eq!(r.set, (0..8).collect::<Vec<u32>>());
        assert!(r.conductance < 0.02);
        assert!(r.best_step >= 1);
    }

    #[test]
    fn mass_conservation_with_leak() {
        let g = cycle(30).unwrap();
        let r = nibble(&g, 0, 10, 1e-4).unwrap();
        let kept: f64 = r.vector.iter().map(|&(_, x)| x).sum();
        assert!((kept + r.mass_lost - 1.0).abs() < 1e-9);
        assert!(r.mass_lost >= 0.0);
    }

    #[test]
    fn truncation_bounds_support() {
        let mut rng = StdRng::seed_from_u64(17);
        let g = barabasi_albert(&mut rng, 3000, 3).unwrap();
        // Generous epsilon: the walk must stay tiny even after many steps.
        let r = nibble(&g, 1500, 30, 1e-2).unwrap();
        assert!(
            r.max_support < 300,
            "support {} should stay far below n = 3000",
            r.max_support
        );
        // Finer epsilon expands the support.
        let r2 = nibble(&g, 1500, 30, 1e-5).unwrap();
        assert!(r2.max_support > r.max_support);
    }

    #[test]
    fn aggressive_truncation_can_kill_the_walk() {
        // ε so large that even the seed's mass dies after a step or two.
        let g = cycle(10).unwrap();
        let r = nibble(&g, 0, 50, 10.0).unwrap();
        assert!(r.vector.is_empty() || r.mass_lost > 0.9);
    }

    #[test]
    fn validates_inputs() {
        let g = cycle(5).unwrap();
        assert!(nibble(&g, 9, 5, 1e-3).is_err());
        assert!(nibble(&g, 0, 0, 1e-3).is_err());
        assert!(nibble(&g, 0, 5, 0.0).is_err());
        assert!(nibble(&g, 0, 5, f64::NAN).is_err());
        let iso = acir_graph::Graph::from_pairs(2, []).unwrap();
        assert!(nibble(&iso, 0, 5, 1e-3).is_err());
    }

    #[test]
    fn work_scales_with_epsilon_not_n() {
        let mut rng = StdRng::seed_from_u64(5);
        let small = barabasi_albert(&mut rng, 400, 3).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let big = barabasi_albert(&mut rng, 4000, 3).unwrap();
        let a = nibble(&small, 200, 15, 1e-3).unwrap();
        let b = nibble(&big, 200, 15, 1e-3).unwrap();
        // Same seed region, same parameters: work within a small factor.
        let ratio = b.work as f64 / a.work.max(1) as f64;
        assert!(ratio < 5.0, "work ratio {ratio} suggests global scaling");
    }
}
