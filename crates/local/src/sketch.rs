//! Hub-sketch precomputation and online splice for sublinear PPR
//! serving (FORA/TopPPR-style, refs \[FORA, TopPPR\]; paper §3.3).
//!
//! The ACL push loop is output-local, but a *cold* push from every
//! query seed still re-diffuses the same high-degree neighborhoods over
//! and over: on power-law graphs most of the frontier's residual mass
//! lands on a handful of hubs within a hop or two. This module
//! precomputes push sketches from the top-K hubs (degree-descending)
//! and splices them into the online push:
//!
//! * **Offline** ([`build_hub_sketches`]): run [`ppr_push_ctx`] from
//!   each hub `h` at a fine threshold `ε_sketch`, storing the truncated
//!   estimate `p_h` and residual `r_h` vectors.
//! * **Online** ([`ppr_push_spliced`]): push from the query seed at
//!   threshold `ε_push = ε − ε_sketch`, but *never enqueue a sketched
//!   hub* — residual arriving at a hub parks there. When the frontier
//!   drains, every remaining non-hub residual is `< ε_push·d` and the
//!   parked hub residual is substituted by linearity of PPR:
//!
//!   ```text
//!   pr_α(s) = p + Σ_h r[h]·pr_α(e_h) + pr_α(r_nonhub)
//!           ≈ p + Σ_h r[h]·p_h            (the spliced answer)
//!   ```
//!
//!   The unaccounted mass is `Σ_v r_nonhub[v] + Σ_h r[h]·‖r_h‖₁`, and
//!   per unit degree it is bounded by `ε_push + ε_sketch·Σ_h r[h]
//!   ≤ ε` since the parked mass is at most 1 — the *same* `ε·deg`
//!   invariant direct push certifies, at a fraction of the pushed mass.
//!
//! When no sketch can help (empty store, mismatched α, `ε_sketch ≥ ε`)
//! the splice entry point degrades to the exact push core loop and
//! is bit-identical to [`crate::push::ppr_push`].

use crate::push::{ppr_push_ctx, push_core, validate_push_args, PushExit, PushResult, PUSH_POOL};
use crate::repair::{ppr_repair, RepairRequest, DEFAULT_REPAIR_MASS_THRESHOLD};
use crate::{LocalError, Result};
use acir_graph::delta::EdgeDelta;
use acir_graph::{Graph, NodeId, NodeValued, Permutation};
use acir_runtime::{Certificate, KernelCtx, SolverOutcome};
use std::collections::BTreeMap;

/// Sentinel in [`SketchSet::slot`] marking a node with no sketch.
const NO_SKETCH: u32 = u32::MAX;

/// One precomputed hub diffusion: the truncated `(estimate, residual)`
/// pair of an ACL push from `hub`.
#[derive(Debug, Clone)]
pub struct HubSketch {
    /// The hub the sketch diffuses from.
    pub hub: NodeId,
    /// Truncated PPR estimate `p_h`, sorted `(node, value)` pairs.
    pub estimate: Vec<(NodeId, f64)>,
    /// Residual `r_h` at exit (every entry `< ε_sketch·d`), sorted.
    pub residual: Vec<(NodeId, f64)>,
    /// `‖r_h‖₁` — the mass the sketch leaves undistributed; splices
    /// charge `r[h]·residual_mass` of slack per unit of parked mass.
    pub residual_mass: f64,
    /// Pushes the offline build spent on this hub.
    pub pushes: usize,
}

/// An immutable set of hub sketches for one `(graph, α, ε_sketch)`
/// triple, with O(1) hub-membership lookup for the splice loop.
#[derive(Debug, Clone)]
pub struct SketchSet {
    alpha: f64,
    epsilon: f64,
    n: usize,
    /// Per-node sketch index, `NO_SKETCH` for non-hubs.
    slot: Vec<u32>,
    sketches: Vec<HubSketch>,
}

impl SketchSet {
    /// A set with no sketches at all: every splice against it takes the
    /// pure-push fallback.
    pub fn empty() -> Self {
        Self {
            alpha: 0.0,
            epsilon: 0.0,
            n: 0,
            slot: Vec::new(),
            sketches: Vec::new(),
        }
    }

    /// Teleportation probability the sketches were built for.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Truncation threshold the sketches were pushed to.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Node count of the graph the sketches were built against.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of sketched hubs.
    pub fn len(&self) -> usize {
        self.sketches.len()
    }

    /// Does the set hold no sketches?
    pub fn is_empty(&self) -> bool {
        self.sketches.is_empty()
    }

    /// Is `u` a sketched hub?
    pub fn covers(&self, u: NodeId) -> bool {
        self.slot.get(u as usize).is_some_and(|&s| s != NO_SKETCH)
    }

    /// The sketch diffusing from `u`, if `u` is a sketched hub.
    pub fn get(&self, u: NodeId) -> Option<&HubSketch> {
        match self.slot.get(u as usize) {
            Some(&s) if s != NO_SKETCH => self.sketches.get(s as usize),
            _ => None,
        }
    }

    /// All sketches, in hub-rank (degree-descending) order.
    pub fn sketches(&self) -> &[HubSketch] {
        &self.sketches
    }

    /// Total offline pushes spent building the set.
    pub fn build_pushes(&self) -> usize {
        self.sketches.iter().map(|s| s.pushes).sum()
    }
}

/// Precompute push sketches from the top-`k` hubs of `g` by
/// unweighted degree (ties by id, via
/// [`Permutation::degree_descending`]), at threshold `epsilon`.
///
/// `k = 0` yields a valid set that covers nothing. Hubs are pushed in
/// parallel over the ambient [`acir_exec::ExecPool`]; the result is
/// identical at any thread count (each hub's push is independent and
/// results are collected in rank order).
pub fn build_hub_sketches(g: &Graph, k: usize, alpha: f64, epsilon: f64) -> Result<SketchSet> {
    let mut ctx = KernelCtx::new();
    build_hub_sketches_ctx(g, k, alpha, epsilon, &mut ctx)
}

/// [`build_hub_sketches`] against a caller-supplied [`KernelCtx`]; the
/// build's aggregate cost is noted in the context's diagnostics (each
/// per-hub push runs [`ppr_push_ctx`] on its own inert context).
pub fn build_hub_sketches_ctx(
    g: &Graph,
    k: usize,
    alpha: f64,
    epsilon: f64,
    ctx: &mut KernelCtx,
) -> Result<SketchSet> {
    validate_sketch_params(alpha, epsilon)?;
    let n = g.n();
    let perm = Permutation::degree_descending(g);
    let hubs: Vec<NodeId> = (0..k.min(n))
        .map(|rank| perm.to_old(rank as NodeId))
        .filter(|&u| g.degree(u) > 0.0)
        .collect();
    build_for_hub_list(g, hubs, alpha, epsilon, ctx)
}

/// Build sketches for an explicit, caller-chosen hub list instead of
/// the top-`k`-by-degree selection — the engine uses this to *reuse*
/// a previous store's hub set when a pure-reweight delta leaves the
/// unweighted degree sequence (and therefore the top-K selection)
/// unchanged. Out-of-range hubs are an error; duplicates collapse to
/// their first occurrence and edgeless hubs are skipped, mirroring
/// [`build_hub_sketches`]. Per-hub output is bit-identical to what the
/// top-K builder would produce for the same hub.
pub fn build_sketches_for_hubs(
    g: &Graph,
    hubs: &[NodeId],
    alpha: f64,
    epsilon: f64,
) -> Result<SketchSet> {
    validate_sketch_params(alpha, epsilon)?;
    let n = g.n();
    let mut seen = vec![false; n];
    let mut list = Vec::with_capacity(hubs.len());
    for &h in hubs {
        if h as usize >= n {
            return Err(LocalError::InvalidArgument(format!(
                "build_sketches_for_hubs: hub {h} out of range for graph with {n} nodes"
            )));
        }
        if !seen[h as usize] && g.degree(h) > 0.0 {
            seen[h as usize] = true;
            list.push(h);
        }
    }
    let mut ctx = KernelCtx::new();
    build_for_hub_list(g, list, alpha, epsilon, &mut ctx)
}

/// Relabel a sketch set into a new vertex numbering: `step` maps the
/// set's (old) ids to the new ids, exactly as a relabeling compaction
/// ([`acir_graph::snapshot::CompactionOrder`]) permutes the graph.
/// Hub ids, estimate/residual supports, and the hub-membership slots
/// are re-laid-out; masses, push counts, and `(α, ε_sketch)` carry
/// over bitwise — a relabeling permutes a diffusion, it does not
/// change it. An identity `step` returns a verbatim clone.
pub fn relabel_sketch_set(set: &SketchSet, step: &Permutation) -> Result<SketchSet> {
    if step.is_identity() {
        return Ok(set.clone());
    }
    if step.len() != set.n {
        return Err(LocalError::InvalidArgument(format!(
            "relabel_sketch_set: permutation over {} vertices cannot relabel a sketch set built for {} nodes",
            step.len(),
            set.n
        )));
    }
    let mut slot = vec![NO_SKETCH; set.n];
    let sketches: Vec<HubSketch> = set
        .sketches
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let hub = step.to_new(s.hub);
            slot[hub as usize] = i as u32;
            HubSketch {
                hub,
                estimate: step.map_sparse(&s.estimate),
                residual: step.map_sparse(&s.residual),
                residual_mass: s.residual_mass,
                pushes: s.pushes,
            }
        })
        .collect();
    Ok(SketchSet {
        alpha: set.alpha,
        epsilon: set.epsilon,
        n: set.n,
        slot,
        sketches,
    })
}

/// Same α/ε validity rules as the push kernel itself.
fn validate_sketch_params(alpha: f64, epsilon: f64) -> Result<()> {
    if !(0.0 < alpha && alpha < 1.0) {
        return Err(LocalError::InvalidArgument(format!(
            "build_hub_sketches needs alpha in (0, 1), got {alpha}"
        )));
    }
    if !(epsilon > 0.0 && epsilon.is_finite()) {
        return Err(LocalError::InvalidArgument(format!(
            "build_hub_sketches needs epsilon > 0, got {epsilon}"
        )));
    }
    Ok(())
}

/// Shared tail of the sketch builders: push every hub in `hubs` in
/// parallel and assemble the set (see [`build_hub_sketches_ctx`] for
/// the determinism argument).
fn build_for_hub_list(
    g: &Graph,
    hubs: Vec<NodeId>,
    alpha: f64,
    epsilon: f64,
    ctx: &mut KernelCtx,
) -> Result<SketchSet> {
    let n = g.n();
    let pushed = acir_exec::ExecPool::from_env().par_map(&hubs, 1, |&h| {
        let mut hub_ctx = KernelCtx::new();
        let out = ppr_push_ctx(g, &[h], alpha, epsilon, &mut hub_ctx)?;
        out.into_value().ok_or_else(|| {
            LocalError::InvalidArgument(format!("hub {h} sketch diverged on an inert context"))
        })
    });
    let mut slot = vec![NO_SKETCH; n];
    let mut sketches = Vec::with_capacity(hubs.len());
    for (hub, result) in hubs.into_iter().zip(pushed) {
        let r = result?;
        slot[hub as usize] = sketches.len() as u32;
        sketches.push(HubSketch {
            hub,
            estimate: r.vector,
            residual: r.residuals,
            residual_mass: r.residual_mass,
            pushes: r.pushes,
        });
    }
    ctx.note_with(|| {
        format!(
            "hub sketches built: {} hubs at eps {epsilon:e} ({} offline pushes)",
            sketches.len(),
            sketches.iter().map(|s| s.pushes).sum::<usize>(),
        )
    });
    Ok(SketchSet {
        alpha,
        epsilon,
        n,
        slot,
        sketches,
    })
}

/// Output of [`repair_hub_sketches`]: the repaired set plus the exact
/// work accounting the dynamic benchmarks compare against a full
/// rebuild.
#[derive(Debug, Clone)]
pub struct SketchRepair {
    /// The repaired sketch set — same hubs, same `(α, ε_sketch)`,
    /// every sketch valid on the *new* graph.
    pub set: SketchSet,
    /// Sketches whose support touched the delta and were incrementally
    /// repaired.
    pub repaired: usize,
    /// Sketches whose estimate and residual were both zero at every
    /// delta endpoint: carried over verbatim at zero cost.
    pub untouched: usize,
    /// Sketches the repair kernel recomputed from scratch (oversized
    /// perturbation or a degenerate column swap), plus hubs the delta
    /// isolated entirely (their sketch becomes empty and inert).
    pub fallbacks: usize,
    /// Fresh pushes this repair spent, across all sketches — the
    /// numerator of the repair-vs-rebuild gate.
    pub pushes: usize,
    /// Fresh edge traversals this repair spent.
    pub work: usize,
}

/// Incrementally maintain a hub-sketch set across an edge delta,
/// instead of rebuilding all K sketches from scratch.
///
/// A sketch can only be invalidated by the delta if its diffusion ever
/// put estimate or residual mass on a delta endpoint (the changed
/// columns of the walk matrix); everything else is carried over
/// verbatim. Touched sketches go through [`ppr_repair`] with the hub as
/// seed at the set's own `(α, ε_sketch)`, preserving the per-sketch ACL
/// guarantee on the new graph. A hub the delta isolates entirely keeps
/// its slot but becomes an empty sketch — no residual can ever park on
/// a degree-0 node, so splices never consult it.
///
/// Sketches are repaired in parallel over the ambient
/// [`acir_exec::ExecPool`]; the result is identical at any thread
/// count. Errors if the set was built for a different node count.
pub fn repair_hub_sketches(
    g: &Graph,
    set: &SketchSet,
    delta: &[EdgeDelta],
) -> Result<SketchRepair> {
    if !set.is_empty() && set.n() != g.n() {
        return Err(LocalError::InvalidArgument(format!(
            "sketch set built for {} nodes, graph has {}",
            set.n(),
            g.n()
        )));
    }
    let mut endpoints: Vec<NodeId> = delta.iter().flat_map(|d| [d.u, d.v]).collect();
    endpoints.sort_unstable();
    endpoints.dedup();

    let touches = |s: &HubSketch| {
        endpoints.iter().any(|&c| {
            s.estimate.binary_search_by_key(&c, |e| e.0).is_ok()
                || s.residual.binary_search_by_key(&c, |e| e.0).is_ok()
        })
    };

    let idxs: Vec<usize> = (0..set.len()).collect();
    let outcomes = acir_exec::ExecPool::from_env().par_map(&idxs, 1, |&i| {
        let s = &set.sketches[i];
        if endpoints.is_empty() || !touches(s) {
            return Ok::<(HubSketch, u8, usize), LocalError>((s.clone(), 0, 0));
        }
        if g.degree(s.hub) <= 0.0 {
            // The delta cut the hub loose: park an inert empty sketch.
            let empty = HubSketch {
                hub: s.hub,
                estimate: Vec::new(),
                residual: Vec::new(),
                residual_mass: 0.0,
                pushes: s.pushes,
            };
            return Ok((empty, 2, 0));
        }
        let rr = ppr_repair(
            g,
            &RepairRequest {
                seeds: &[s.hub],
                estimate: &s.estimate,
                residual: &s.residual,
                delta,
                alpha: set.alpha,
                epsilon: set.epsilon,
                mass_threshold: DEFAULT_REPAIR_MASS_THRESHOLD,
            },
        )?;
        let kind = if rr.repaired { 1 } else { 2 };
        let work = rr.work;
        let sketch = HubSketch {
            hub: s.hub,
            estimate: rr.vector,
            residual: rr.residuals,
            residual_mass: rr.residual_mass,
            pushes: s.pushes + rr.pushes,
        };
        Ok((sketch, kind, work))
    });

    let mut sketches = Vec::with_capacity(set.len());
    let (mut repaired, mut untouched, mut fallbacks) = (0usize, 0usize, 0usize);
    let (mut pushes, mut work) = (0usize, 0usize);
    for (outcome, prior) in outcomes.into_iter().zip(&set.sketches) {
        let (sketch, kind, w) = outcome?;
        pushes += sketch.pushes - prior.pushes;
        work += w;
        match kind {
            0 => untouched += 1,
            1 => repaired += 1,
            _ => fallbacks += 1,
        }
        sketches.push(sketch);
    }
    Ok(SketchRepair {
        set: SketchSet {
            alpha: set.alpha,
            epsilon: set.epsilon,
            n: set.n,
            slot: set.slot.clone(),
            sketches,
        },
        repaired,
        untouched,
        fallbacks,
        pushes,
        work,
    })
}

/// Output of [`ppr_push_spliced`].
#[derive(Debug, Clone, Default)]
pub struct SpliceResult {
    /// The combined PPR estimate (online push plus spliced hub
    /// sketches), sorted `(node, value)` pairs.
    pub vector: Vec<(NodeId, f64)>,
    /// Total unaccounted mass: non-hub residual of the online loop plus
    /// `Σ_h r[h]·‖r_h‖₁` inherited from the spliced sketches.
    pub residual_mass: f64,
    /// Certified per-unit-degree error bound of `vector`; at most the
    /// requested ε when the run converged.
    pub per_degree_bound: f64,
    /// Online pushes performed (0 when every seed is a sketched hub).
    pub pushes: usize,
    /// Online edge traversals.
    pub work: usize,
    /// Distinct nodes the *online* frontier touched — the per-query
    /// locality measure the benchmarks compare against cold push.
    pub touched: usize,
    /// Hubs whose sketches were spliced in.
    pub hubs_spliced: usize,
    /// Residual mass parked on hubs and answered from sketches,
    /// `Σ_h r[h]` (≤ 1).
    pub hub_mass: f64,
    /// Residual mass processed by the online loop (`Σ r[u]` over
    /// pushes) — cold push's same counter is the speedup denominator.
    pub mass_pushed: f64,
    /// False when the call degraded to the pure-push fallback (empty or
    /// incompatible sketch set); the result is then bit-identical to
    /// [`crate::push::ppr_push`].
    pub used_sketches: bool,
}

/// `to_dense` / `map_back` via the shared [`NodeValued`] trait.
impl NodeValued for SpliceResult {
    fn node_values(&self) -> &[(NodeId, f64)] {
        &self.vector
    }

    fn node_values_mut(&mut self) -> &mut Vec<(NodeId, f64)> {
        &mut self.vector
    }
}

impl From<SpliceResult> for PushResult {
    /// Flatten a splice into the [`PushResult`] shape serving layers
    /// already speak (the combined vector and residual accounting; the
    /// post-combination residual support is not materialized).
    fn from(s: SpliceResult) -> Self {
        PushResult {
            vector: s.vector,
            residual_mass: s.residual_mass,
            pushes: s.pushes,
            work: s.work,
            touched: s.touched,
            residuals: Vec::new(),
            mass_pushed: s.mass_pushed,
        }
    }
}

/// Sketch-spliced approximate PPR from `seeds`: equivalent (within the
/// certified `ε·deg` bound) to [`crate::push::ppr_push`] at the same ε,
/// but pushing only until the frontier's residual is parked on sketched
/// hubs. Falls back to the exact push loop — bit-identical to
/// `ppr_push` — when `set` is empty, was built for a different α, or
/// its `ε_sketch` is not finer than `epsilon`.
pub fn ppr_push_spliced(
    g: &Graph,
    seeds: &[NodeId],
    alpha: f64,
    epsilon: f64,
    set: &SketchSet,
) -> Result<SpliceResult> {
    let mut ctx = KernelCtx::new();
    match ppr_push_spliced_ctx(g, seeds, alpha, epsilon, set, &mut ctx)? {
        SolverOutcome::Converged { value, .. } => Ok(value),
        // An inert context never meters or guards, so the loop can only
        // run to completion.
        _ => Err(LocalError::InvalidArgument(
            "splice on an inert context did not converge (bug guard)".into(),
        )),
    }
}

/// Context-driven [`ppr_push_spliced`]: metered, guarded, or traced per
/// the [`KernelCtx`]. Budget exhaustion returns a certified partial
/// whose [`Certificate::ResidualMass`] accounts for both the un-pushed
/// online residual and the slack inherited from spliced sketches.
pub fn ppr_push_spliced_ctx(
    g: &Graph,
    seeds: &[NodeId],
    alpha: f64,
    epsilon: f64,
    set: &SketchSet,
    ctx: &mut KernelCtx,
) -> Result<SolverOutcome<SpliceResult>> {
    validate_push_args(g, seeds, alpha, epsilon)?;
    let fallback_reason = if set.is_empty() {
        Some("empty sketch set")
    } else if set.n() != g.n() {
        return Err(LocalError::InvalidArgument(format!(
            "sketch set built for {} nodes, graph has {}",
            set.n(),
            g.n()
        )));
    } else if set.alpha().to_bits() != alpha.to_bits() {
        Some("sketch alpha mismatch")
    } else if set.epsilon() >= epsilon {
        Some("sketch epsilon not finer than the query epsilon")
    } else {
        None
    };
    if let Some(reason) = fallback_reason {
        ctx.note_with(|| format!("sketch fallback to pure push: {reason}"));
        let mut out = PushResult::empty();
        let exit = PUSH_POOL.with(|ws| push_core(g, seeds, alpha, epsilon, ws, &mut out, ctx))?;
        let diags = ctx.finish();
        return Ok(match exit {
            PushExit::Done => {
                let value = fallback_result(out, epsilon);
                SolverOutcome::converged(value, diags)
            }
            PushExit::Exhausted {
                exhausted,
                remaining,
                per_degree_bound,
            } => {
                let mut value = fallback_result(out, per_degree_bound);
                value.residual_mass = remaining;
                SolverOutcome::exhausted(
                    value,
                    exhausted,
                    Certificate::ResidualMass {
                        remaining,
                        per_degree_bound,
                    },
                    diags,
                )
            }
            PushExit::Diverged(cause) => SolverOutcome::diverged(cause, diags),
        });
    }

    let mut out = SpliceResult::default();
    let exit =
        PUSH_POOL.with(|ws| splice_core(g, seeds, alpha, epsilon, set, ws, &mut out, ctx))?;
    ctx.note_with(|| {
        format!(
            "splice: {} hubs park {:.3e} mass; {} online pushes ({:.3e} mass pushed)",
            out.hubs_spliced, out.hub_mass, out.pushes, out.mass_pushed,
        )
    });
    let diags = ctx.finish();
    Ok(match exit {
        PushExit::Done => SolverOutcome::converged(out, diags),
        PushExit::Exhausted {
            exhausted,
            remaining,
            per_degree_bound,
        } => SolverOutcome::exhausted(
            out,
            exhausted,
            Certificate::ResidualMass {
                remaining,
                per_degree_bound,
            },
            diags,
        ),
        PushExit::Diverged(cause) => SolverOutcome::diverged(cause, diags),
    })
}

/// Shape a pure-push fallback as a [`SpliceResult`] (`used_sketches =
/// false`, nothing spliced).
fn fallback_result(out: PushResult, per_degree_bound: f64) -> SpliceResult {
    SpliceResult {
        vector: out.vector,
        residual_mass: out.residual_mass,
        per_degree_bound,
        pushes: out.pushes,
        work: out.work,
        touched: out.touched,
        hubs_spliced: 0,
        hub_mass: 0.0,
        mass_pushed: out.mass_pushed,
        used_sketches: false,
    }
}

/// The splice loop on the shared push scratch. Inputs are pre-validated
/// and `set` is known compatible (`ε_sketch < ε`, same α, same n).
///
/// Identical to [`push_core`] except sketched hubs are never enqueued:
/// residual arriving at a hub parks there, and the harvest substitutes
/// `r[h]·p_h` for it (ascending hub id, so the combination order — and
/// hence every bit of the output — is deterministic at any thread
/// count). The online threshold is `ε_push = ε − ε_sketch`, which makes
/// the combined per-degree bound `ε_push + ε_sketch·Σ_h r[h] ≤ ε`.
#[allow(clippy::too_many_arguments)]
fn splice_core(
    g: &Graph,
    seeds: &[NodeId],
    alpha: f64,
    epsilon: f64,
    set: &SketchSet,
    ws: &mut crate::push::PushWorkspace,
    out: &mut SpliceResult,
    ctx: &mut KernelCtx,
) -> Result<PushExit> {
    use acir_runtime::DivergenceCause;
    let n = g.n();
    let eps_push = epsilon - set.epsilon();
    ws.p.reset(n);
    ws.r.reset(n);
    ws.in_queue.reset(n);
    ws.queue.clear();
    ws.touched.clear();
    out.vector.clear();

    let seed_mass = 1.0 / seeds.len() as f64;
    for &u in seeds {
        if ws.r.add(u as usize, seed_mass) {
            ws.touched.push(u);
        }
    }
    for &u in seeds {
        if !set.covers(u)
            && !ws.in_queue.contains(u as usize)
            && ws.r.get(u as usize) >= eps_push * g.degree(u)
        {
            ws.in_queue.insert(u as usize);
            ws.queue.push_back(u);
        }
    }

    let mut pushes = 0usize;
    let mut work = 0usize;
    let mut mass_pushed = 0.0f64;
    let mut residual_mass = 1.0f64;
    let push_cap = ((4.0 / (eps_push * alpha)).ceil() as usize).saturating_add(16);
    let mut exit = PushExit::Done;

    // CORE LOOP
    while let Some(u) = ws.queue.pop_front() {
        ws.in_queue.remove(u as usize);
        let du = g.degree(u);
        let ru = ws.r.get(u as usize);
        if ctx.is_guarded() && !ru.is_finite() {
            exit = PushExit::Diverged(DivergenceCause::NonFiniteIterate { at_iter: pushes });
            break;
        }
        if ru < eps_push * du {
            continue;
        }
        pushes += 1;
        mass_pushed += ru;
        if pushes > push_cap {
            if ctx.is_guarded() {
                exit = PushExit::Diverged(DivergenceCause::Breakdown {
                    at_iter: pushes,
                    what: "exceeded the theoretical O(1/(εα)) push bound",
                });
                break;
            }
            return Err(LocalError::InvalidArgument(
                "ppr_push_spliced exceeded its theoretical push bound (bug guard)".into(),
            ));
        }
        ws.p.add(u as usize, alpha * ru);
        residual_mass -= alpha * ru;
        let stay = (1.0 - alpha) * ru / 2.0;
        ws.r.set(u as usize, stay);
        let spread = (1.0 - alpha) * ru / 2.0;
        let mut traversals = 0u64;
        for (v, w) in g.neighbors(u) {
            work += 1;
            traversals += 1;
            let dv = g.degree(v);
            if ws.r.add(v as usize, spread * w / du) {
                ws.touched.push(v);
            }
            if ctx.is_guarded() && !ws.r.get(v as usize).is_finite() {
                exit = PushExit::Diverged(DivergenceCause::NonFiniteIterate { at_iter: pushes });
                break;
            }
            // Hubs park their residual: it is answered from the sketch
            // at harvest instead of being pushed on.
            if !set.covers(v)
                && !ws.in_queue.contains(v as usize)
                && ws.r.get(v as usize) >= eps_push * dv
                && dv > 0.0
            {
                ws.in_queue.insert(v as usize);
                ws.queue.push_back(v);
            }
        }
        if matches!(exit, PushExit::Diverged(_)) {
            break;
        }
        // u was enqueued, so it is not a hub; the lazy half may requeue.
        if !ws.in_queue.contains(u as usize) && ws.r.get(u as usize) >= eps_push * du {
            ws.in_queue.insert(u as usize);
            ws.queue.push_back(u);
        }

        ctx.tick_iter();
        ctx.push_residual(residual_mass);
        if let Some(exhausted) = ctx.add_work(traversals) {
            exit = PushExit::Exhausted {
                exhausted,
                remaining: residual_mass,
                per_degree_bound: eps_push,
            };
            break;
        }
    }

    if matches!(exit, PushExit::Diverged(_)) {
        return Ok(exit);
    }

    // Harvest: ascending node order, like the push kernel. Non-hub
    // residuals stay unaccounted; hub residuals are substituted by
    // their sketches below.
    ws.touched.sort_unstable();
    let mut touched = 0usize;
    let mut own_residual = 0.0f64;
    let mut worst_per_degree = 0.0f64;
    let mut hub_mass = 0.0f64;
    let mut hubs_spliced = 0usize;
    let mut sketch_slack = 0.0f64;
    let mut combined: BTreeMap<NodeId, f64> = BTreeMap::new();
    for &u in &ws.touched {
        let p = ws.p.get(u as usize);
        let r = ws.r.get(u as usize);
        if p > 0.0 {
            *combined.entry(u).or_insert(0.0) += p;
        }
        if p > 0.0 || r > 0.0 {
            touched += 1;
        }
        if r > 0.0 {
            if let Some(sketch) = set.get(u) {
                hub_mass += r;
                hubs_spliced += 1;
                sketch_slack += r * sketch.residual_mass;
                for &(v, x) in &sketch.estimate {
                    *combined.entry(v).or_insert(0.0) += r * x;
                }
            } else {
                own_residual += r;
                let d = g.degree(u);
                if d > 0.0 {
                    worst_per_degree = worst_per_degree.max(r / d);
                }
            }
        }
    }
    out.vector
        .extend(combined.into_iter().filter(|&(_, x)| x > 0.0));
    let remaining = own_residual + sketch_slack;
    // Converged: every non-hub residual is < ε_push·d by the loop exit
    // condition. Exhausted: the frontier may still hold larger
    // residuals, so the realized worst per-degree residual takes over.
    let base = match &exit {
        PushExit::Exhausted { .. } => worst_per_degree.max(eps_push),
        _ => eps_push,
    };
    let per_degree_bound = base + set.epsilon() * hub_mass;
    out.residual_mass = remaining;
    out.per_degree_bound = per_degree_bound;
    out.pushes = pushes;
    out.work = work;
    out.touched = touched;
    out.hubs_spliced = hubs_spliced;
    out.hub_mass = hub_mass;
    out.mass_pushed = mass_pushed;
    out.used_sketches = true;
    if let PushExit::Exhausted {
        remaining: r,
        per_degree_bound: b,
        ..
    } = &mut exit
    {
        // The certificate must describe the *combined* answer.
        *r = remaining;
        *b = per_degree_bound;
    }
    Ok(exit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::push::{ppr_exact_reference, ppr_push};
    use acir_graph::gen::deterministic::barbell;
    use acir_graph::gen::random::barabasi_albert;
    use acir_runtime::Budget;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ba(n: usize, seed: u64) -> Graph {
        let mut rng = StdRng::seed_from_u64(seed);
        barabasi_albert(&mut rng, n, 3).unwrap()
    }

    #[test]
    fn build_selects_top_degree_hubs_and_validates() {
        let g = ba(200, 5);
        let set = build_hub_sketches(&g, 8, 0.1, 1e-4).unwrap();
        assert_eq!(set.len(), 8);
        assert_eq!(set.n(), g.n());
        // Every sketched hub has degree at least any non-hub's degree.
        let min_hub = set
            .sketches()
            .iter()
            .map(|s| g.degree_unweighted(s.hub))
            .min()
            .unwrap();
        for u in 0..g.n() as NodeId {
            if !set.covers(u) {
                assert!(g.degree_unweighted(u) <= min_hub);
            }
        }
        // Each sketch is a genuine push result with the ACL guarantee.
        for s in set.sketches() {
            assert!(s.residual_mass < 1.0);
            for &(v, r) in &s.residual {
                assert!(r < 1e-4 * g.degree(v));
            }
            let direct = ppr_push(&g, &[s.hub], 0.1, 1e-4).unwrap();
            assert_eq!(s.estimate, direct.vector);
        }
        assert!(build_hub_sketches(&g, 4, 0.0, 1e-4).is_err());
        assert!(build_hub_sketches(&g, 4, 0.1, 0.0).is_err());
        assert!(build_hub_sketches(&g, 0, 0.1, 1e-4).unwrap().is_empty());
    }

    #[test]
    fn build_is_thread_count_invariant() {
        let g = ba(300, 9);
        let mut baseline: Option<SketchSet> = None;
        for threads in ["1", "4"] {
            std::env::set_var(acir_exec::THREADS_ENV, threads);
            let set = build_hub_sketches(&g, 16, 0.1, 1e-4).unwrap();
            std::env::remove_var(acir_exec::THREADS_ENV);
            if let Some(b) = &baseline {
                for (a, c) in b.sketches().iter().zip(set.sketches()) {
                    assert_eq!(a.hub, c.hub);
                    assert_eq!(a.estimate, c.estimate);
                    assert_eq!(a.residual, c.residual);
                    assert_eq!(a.residual_mass.to_bits(), c.residual_mass.to_bits());
                }
            } else {
                baseline = Some(set);
            }
        }
    }

    #[test]
    fn explicit_hub_build_matches_topk_selection() {
        let g = ba(200, 5);
        let topk = build_hub_sketches(&g, 8, 0.1, 1e-4).unwrap();
        let hubs: Vec<NodeId> = topk.sketches().iter().map(|s| s.hub).collect();
        let explicit = build_sketches_for_hubs(&g, &hubs, 0.1, 1e-4).unwrap();
        assert_eq!(explicit.len(), topk.len());
        for (a, b) in topk.sketches().iter().zip(explicit.sketches()) {
            assert_eq!(a.hub, b.hub);
            assert_eq!(a.estimate, b.estimate);
            assert_eq!(a.residual, b.residual);
            assert_eq!(a.residual_mass.to_bits(), b.residual_mass.to_bits());
        }
        // Duplicates collapse; out-of-range hubs are rejected.
        let dup = build_sketches_for_hubs(&g, &[hubs[0], hubs[0]], 0.1, 1e-4).unwrap();
        assert_eq!(dup.len(), 1);
        assert!(build_sketches_for_hubs(&g, &[g.n() as NodeId], 0.1, 1e-4).is_err());
    }

    #[test]
    fn relabeled_set_answers_like_the_original() {
        let g = ba(220, 7);
        let set = build_hub_sketches(&g, 10, 0.1, 1e-5).unwrap();
        let step = Permutation::rcm(&g);
        assert!(!step.is_identity());
        let gp = g.permute(&step).unwrap();
        let mapped = relabel_sketch_set(&set, &step).unwrap();
        assert_eq!(mapped.len(), set.len());
        assert_eq!(mapped.alpha(), set.alpha());
        assert_eq!(mapped.n(), set.n());
        for (orig, rel) in set.sketches().iter().zip(mapped.sketches()) {
            assert_eq!(rel.hub, step.to_new(orig.hub));
            assert!(mapped.covers(rel.hub));
            assert_eq!(rel.estimate, step.map_sparse(&orig.estimate));
            assert_eq!(rel.residual, step.map_sparse(&orig.residual));
            assert_eq!(rel.residual_mass.to_bits(), orig.residual_mass.to_bits());
            // The mapped sketch is a valid truncated push on gp: the
            // residual bound transfers because degrees are preserved.
            for &(v, r) in &rel.residual {
                assert!(r < 1e-5 * gp.degree(v));
            }
        }
        // Splicing through the relabeled set on the permuted graph
        // still certifies: the combined answer tracks the exact PPR
        // within its measured bound.
        let seed = step.to_new(3);
        let spliced = ppr_push_spliced(&gp, &[seed], 0.1, 1e-3, &mapped).unwrap();
        assert!(spliced.used_sketches);
        assert!(spliced.per_degree_bound <= 1e-3 + 1e-12);
        let exact = ppr_exact_reference(&gp, &[seed], 0.1, 4000).unwrap();
        let dense = spliced.to_dense(gp.n());
        for u in 0..gp.n() {
            let err = (exact[u] - dense[u]) / gp.degree(u as NodeId);
            assert!(err >= -1e-9 && err <= spliced.per_degree_bound + 1e-9);
        }
        // Mismatched length and identity fast-path.
        let small = build_hub_sketches(&ba(50, 1), 2, 0.1, 1e-4).unwrap();
        assert!(relabel_sketch_set(&small, &step).is_err());
        let ident = Permutation::identity(g.n());
        let same = relabel_sketch_set(&set, &ident).unwrap();
        assert_eq!(same.sketches()[0].estimate, set.sketches()[0].estimate);
    }

    #[test]
    fn splice_matches_direct_push_within_certified_bound() {
        let g = ba(250, 11);
        let eps = 1e-3;
        let set = build_hub_sketches(&g, 12, 0.1, eps / 5.0).unwrap();
        let spliced = ppr_push_spliced(&g, &[40], 0.1, eps, &set).unwrap();
        assert!(spliced.used_sketches);
        assert!(spliced.per_degree_bound <= eps + 1e-12);
        let exact = ppr_exact_reference(&g, &[40], 0.1, 4000).unwrap();
        let dense = spliced.to_dense(g.n());
        for u in 0..g.n() {
            let err = (exact[u] - dense[u]) / g.degree(u as NodeId);
            assert!(err >= -1e-9, "node {u}: splice overshoots by {err}");
            assert!(
                err <= spliced.per_degree_bound + 1e-9,
                "node {u}: err {err} vs bound {}",
                spliced.per_degree_bound
            );
        }
        // Mass conservation: the combined estimate plus the combined
        // residual accounts for all teleported mass.
        let p_mass: f64 = spliced.vector.iter().map(|&(_, x)| x).sum();
        assert!((p_mass + spliced.residual_mass - 1.0).abs() < 1e-9);
        // And it genuinely spliced: fewer pushes than the cold run.
        let cold = ppr_push(&g, &[40], 0.1, eps).unwrap();
        assert!(spliced.hubs_spliced > 0);
        assert!(spliced.mass_pushed < cold.mass_pushed);
    }

    #[test]
    fn fallback_paths_are_bit_identical_to_ppr_push() {
        let g = barbell(8, 3).unwrap();
        let direct = ppr_push(&g, &[0], 0.1, 1e-4).unwrap();
        // Empty set, mismatched α, and non-finer ε all fall back.
        let coarse = build_hub_sketches(&g, 4, 0.1, 1e-2).unwrap();
        for set in [
            SketchSet::empty(),
            build_hub_sketches(&g, 0, 0.1, 1e-5).unwrap(),
            build_hub_sketches(&g, 4, 0.2, 1e-5).unwrap(),
            coarse,
        ] {
            let s = ppr_push_spliced(&g, &[0], 0.1, 1e-4, &set).unwrap();
            assert!(!s.used_sketches);
            assert_eq!(s.vector, direct.vector);
            assert_eq!(s.residual_mass.to_bits(), direct.residual_mass.to_bits());
            assert_eq!(s.pushes, direct.pushes);
            assert_eq!(s.per_degree_bound, 1e-4);
        }
    }

    #[test]
    fn seed_on_a_hub_needs_no_pushes() {
        let g = ba(200, 5);
        let set = build_hub_sketches(&g, 8, 0.1, 1e-5).unwrap();
        let hub = set.sketches()[0].hub;
        let s = ppr_push_spliced(&g, &[hub], 0.1, 1e-3, &set).unwrap();
        assert!(s.used_sketches);
        assert_eq!(s.pushes, 0);
        assert!((s.hub_mass - 1.0).abs() < 1e-12);
        // The whole answer is the hub's own sketch.
        assert_eq!(s.vector, set.sketches()[0].estimate);
    }

    #[test]
    fn budget_exhaustion_certifies_the_combined_answer() {
        let g = ba(400, 13);
        let set = build_hub_sketches(&g, 8, 0.05, 1e-6).unwrap();
        let mut ctx = acir_runtime::KernelCtx::budgeted("test.splice", &Budget::iterations(3));
        let out = ppr_push_spliced_ctx(&g, &[17], 0.05, 1e-5, &set, &mut ctx).unwrap();
        assert!(!out.is_converged() && out.is_usable());
        let (remaining, bound) = match out.certificate() {
            Some(&Certificate::ResidualMass {
                remaining,
                per_degree_bound,
            }) => (remaining, per_degree_bound),
            c => panic!("wrong certificate {c:?}"),
        };
        let v = out.value().unwrap();
        assert_eq!(remaining.to_bits(), v.residual_mass.to_bits());
        assert_eq!(bound.to_bits(), v.per_degree_bound.to_bits());
        // The certified bound really does bound the pointwise error.
        let exact = ppr_exact_reference(&g, &[17], 0.05, 4000).unwrap();
        let dense = v.to_dense(g.n());
        for u in 0..g.n() {
            let err = (exact[u] - dense[u]) / g.degree(u as NodeId);
            assert!(err >= -1e-9 && err <= bound + 1e-9, "node {u}: {err}");
        }
    }

    #[test]
    fn rejects_mismatched_graphs() {
        let g = ba(200, 5);
        let other = ba(100, 5);
        let set = build_hub_sketches(&g, 4, 0.1, 1e-5).unwrap();
        assert!(ppr_push_spliced(&other, &[0], 0.1, 1e-3, &set).is_err());
        assert!(repair_hub_sketches(&other, &set, &[]).is_err());
    }

    #[test]
    fn sketch_repair_tracks_a_fresh_rebuild() {
        use acir_graph::DeltaGraph;
        let g_old = ba(300, 21);
        let (alpha, eps) = (0.1, 1e-5);
        let set = build_hub_sketches(&g_old, 10, alpha, eps).unwrap();
        let mut dg = DeltaGraph::new(&g_old);
        dg.insert_edge(0, 299, 1.0).unwrap();
        let delta = dg.net_delta();
        let (g_new, _) = dg.compact().unwrap();
        let rep = repair_hub_sketches(&g_new, &set, &delta).unwrap();
        assert_eq!(rep.set.len(), set.len());
        assert_eq!(rep.repaired + rep.untouched + rep.fallbacks, set.len());
        let rebuilt = build_hub_sketches(&g_new, 10, alpha, eps).unwrap();
        assert!(
            rep.pushes < rebuilt.build_pushes(),
            "repair {} vs rebuild {} pushes",
            rep.pushes,
            rebuilt.build_pushes()
        );
        // Every repaired sketch satisfies the ACL bound on the new
        // graph and agrees with the fresh sketch within 2ε per degree.
        for (r, f) in rep.set.sketches().iter().zip(rebuilt.sketches()) {
            assert_eq!(r.hub, f.hub);
            for &(v, x) in &r.residual {
                assert!(x.abs() < eps * g_new.degree(v));
            }
            let dense_r = {
                let mut d = vec![0.0; g_new.n()];
                for &(v, x) in &r.estimate {
                    d[v as usize] = x;
                }
                d
            };
            let dense_f = {
                let mut d = vec![0.0; g_new.n()];
                for &(v, x) in &f.estimate {
                    d[v as usize] = x;
                }
                d
            };
            for u in 0..g_new.n() {
                let diff = (dense_r[u] - dense_f[u]).abs() / g_new.degree(u as NodeId);
                assert!(diff <= 2.0 * eps + 1e-12, "hub {} node {u}: {diff}", r.hub);
            }
        }
    }

    #[test]
    fn untouched_sketches_carry_over_verbatim() {
        // Two far-apart cliques: a delta inside one never touches the
        // other's hub sketch.
        let g_old = barbell(8, 30).unwrap();
        let set = build_hub_sketches(&g_old, 6, 0.2, 1e-4).unwrap();
        use acir_graph::DeltaGraph;
        let mut dg = DeltaGraph::new(&g_old);
        dg.insert_edge(0, 3, 4.0).unwrap(); // inside clique A
        let delta = dg.net_delta();
        let (g_new, _) = dg.compact().unwrap();
        let rep = repair_hub_sketches(&g_new, &set, &delta).unwrap();
        assert!(rep.untouched > 0, "some hub must be unaffected");
        for (r, p) in rep.set.sketches().iter().zip(set.sketches()) {
            let unaffected = p
                .estimate
                .iter()
                .chain(&p.residual)
                .all(|&(v, _)| v != 0 && v != 3);
            if unaffected {
                assert_eq!(r.estimate, p.estimate, "hub {}", p.hub);
                assert_eq!(r.residual, p.residual, "hub {}", p.hub);
                assert_eq!(r.pushes, p.pushes);
            }
        }
        // An empty delta is a pure carry-over.
        let rep = repair_hub_sketches(&g_new, &rep.set, &[]).unwrap();
        assert_eq!(rep.untouched, rep.set.len());
        assert_eq!(rep.pushes, 0);
    }
}
