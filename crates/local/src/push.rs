//! The ACL push algorithm for approximate Personalized PageRank
//! (Andersen–Chung–Lang, paper ref \[1\]; see also refs \[24, 10\]).
//!
//! Maintains an approximation `p` and residual `r` with the invariant
//!
//! ```text
//! p + pr_α(r) = pr_α(s)        (pr_α = exact PPR of the lazy walk)
//! ```
//!
//! and repeatedly *pushes* nodes whose residual is large relative to
//! their degree (`r[u] ≥ ε·d_u`), moving `α·r[u]` into `p[u]` and
//! spreading half the rest over `u`'s neighbors (lazy step). The
//! ε-truncation — never processing nodes with small residuals — is
//! exactly the "truncating small quantities to zero based on
//! computational considerations" the paper identifies as an implicit
//! regularizer (§3.3), and it makes the running time `O(1/(εα))`
//! *independent of the graph size* (the queue only ever holds nodes
//! near the seed). The update step "is a form of stochastic gradient
//! descent" (§3.3, via \[20\]).
//!
//! Guarantee on exit: `r[u] < ε·d_u` for every `u`, hence
//! `‖D⁻¹(pr_α(s) − p)‖_∞ ≤ ε`.

use crate::{LocalError, Result};
use acir_graph::{Graph, NodeId, NodeValued};
use acir_runtime::{
    Budget, Certificate, DivergenceCause, Exhaustion, GuardConfig, KernelCtx, SolverOutcome,
    StampedSet, StampedVec, WorkspacePool,
};
use std::collections::VecDeque;

/// Output of [`ppr_push`].
#[derive(Debug, Clone, Default)]
pub struct PushResult {
    /// The approximate PPR vector, stored sparsely as sorted
    /// `(node, value)` pairs (its support is the touched set).
    pub vector: Vec<(NodeId, f64)>,
    /// Residual mass left undistributed (`Σ_u r[u]`, ≤ 1).
    pub residual_mass: f64,
    /// Number of push operations performed.
    pub pushes: usize,
    /// Number of edge traversals (the true work measure).
    pub work: usize,
    /// Number of distinct nodes with nonzero `p` or `r` at exit.
    pub touched: usize,
    /// The residual vector at exit, stored sparsely as sorted
    /// `(node, value)` pairs — every entry satisfies `r < ε·d`. Hub
    /// sketches ([`crate::sketch`]) store it alongside the estimate so
    /// splices can account for the mass a sketch leaves undistributed.
    pub residuals: Vec<(NodeId, f64)>,
    /// Total residual mass processed by the push loop (`Σ r[u]` over
    /// push operations). Each push recirculates `(1−α)·r[u]`, so this
    /// exceeds 1 for long diffusions — it is the natural "how much
    /// diffusion happened" measure the sketch benchmarks compare.
    pub mass_pushed: f64,
}

impl PushResult {
    /// Empty result, for use as the reusable output slot of
    /// [`ppr_push_ws`] (steady-state calls then reuse its capacity and
    /// perform no heap allocation at all).
    pub fn empty() -> Self {
        Self::default()
    }
}

/// `to_dense` / `scale` / `map_back` come from the shared
/// [`NodeValued`] trait; for sweeps over large graphs prefer
/// [`crate::sweep::sweep_cut_support`] on the dense form.
impl NodeValued for PushResult {
    fn node_values(&self) -> &[(NodeId, f64)] {
        &self.vector
    }

    fn node_values_mut(&mut self) -> &mut Vec<(NodeId, f64)> {
        &mut self.vector
    }
}

/// Reusable scratch for [`ppr_push`]: epoch-stamped `p`/`r` arrays, the
/// queue-membership set, the work queue, and the touched-node list.
///
/// Resetting costs `O(1)`; a push run touching `k` nodes then does
/// `O(k)` bookkeeping regardless of `n`. A warm workspace makes
/// [`ppr_push_ws`] allocation-free in steady state; the plain
/// [`ppr_push`] entry point borrows one from a module-level
/// [`WorkspacePool`] automatically.
#[derive(Debug, Default)]
pub struct PushWorkspace {
    pub(crate) p: StampedVec,
    pub(crate) r: StampedVec,
    pub(crate) in_queue: StampedSet,
    pub(crate) queue: VecDeque<NodeId>,
    /// Nodes whose residual was ever touched, in first-touch order
    /// (sorted during harvest; every node with `p > 0` or `r > 0` is
    /// here, because mass only ever arrives through `r`).
    pub(crate) touched: Vec<NodeId>,
}

impl PushWorkspace {
    /// Fresh, empty workspace.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Pool backing the plain [`ppr_push`] / [`ppr_push_batch`] APIs (and
/// the splice kernel in [`crate::sketch`], which shares the same
/// scratch shape), so repeated calls reuse scratch without the caller
/// holding a workspace.
pub(crate) static PUSH_POOL: WorkspacePool<PushWorkspace> = WorkspacePool::new();

/// Run the ACL push algorithm from `seeds` (uniform mass over them).
///
/// * `alpha` ∈ (0, 1): teleportation probability of the lazy PPR.
/// * `epsilon` > 0: truncation threshold; output support has volume at
///   most `O(1/(εα))`.
///
/// Errors on bad parameters, empty/out-of-range seeds, or degree-0
/// seeds.
pub fn ppr_push(g: &Graph, seeds: &[NodeId], alpha: f64, epsilon: f64) -> Result<PushResult> {
    validate_push_args(g, seeds, alpha, epsilon)?;
    let mut out = PushResult::empty();
    let mut ctx = KernelCtx::new();
    PUSH_POOL.with(|ws| push_core(g, seeds, alpha, epsilon, ws, &mut out, &mut ctx))?;
    Ok(out)
}

/// [`ppr_push`] with caller-held scratch and output: the steady-state
/// allocation-free entry point.
///
/// After one warm-up call on a graph of the same (or larger) size, a
/// call performs **zero** heap allocations — the workspace arrays and
/// `out.vector` reuse their capacity (the CI allocation gate asserts
/// this). The result written to `out` is bit-identical to what
/// [`ppr_push`] returns; on error `out` is left cleared.
pub fn ppr_push_ws(
    g: &Graph,
    seeds: &[NodeId],
    alpha: f64,
    epsilon: f64,
    ws: &mut PushWorkspace,
    out: &mut PushResult,
) -> Result<()> {
    validate_push_args(g, seeds, alpha, epsilon)?;
    let mut ctx = KernelCtx::new();
    push_core(g, seeds, alpha, epsilon, ws, out, &mut ctx)?;
    Ok(())
}

/// Parameter and seed validation shared by every push entry point
/// (including the splice path in [`crate::sketch`]), and hoisted out of
/// the per-item loop by [`ppr_push_batch`].
pub(crate) fn validate_push_args(
    g: &Graph,
    seeds: &[NodeId],
    alpha: f64,
    epsilon: f64,
) -> Result<()> {
    if !(0.0 < alpha && alpha < 1.0) {
        return Err(LocalError::InvalidArgument(format!(
            "ppr_push needs alpha in (0, 1), got {alpha}"
        )));
    }
    if !(epsilon > 0.0 && epsilon.is_finite()) {
        return Err(LocalError::InvalidArgument(format!(
            "ppr_push needs epsilon > 0, got {epsilon}"
        )));
    }
    if seeds.is_empty() {
        return Err(LocalError::InvalidArgument("ppr_push needs seeds".into()));
    }
    let n = g.n();
    for &u in seeds {
        if u as usize >= n {
            return Err(LocalError::InvalidArgument(format!(
                "seed {u} out of range"
            )));
        }
        if g.degree(u) <= 0.0 {
            return Err(LocalError::InvalidArgument(format!(
                "seed {u} has zero degree"
            )));
        }
    }
    Ok(())
}

/// How the single ACL core loop exited (inert contexts only ever `Done`).
pub(crate) enum PushExit {
    /// Every residual fell below `ε·d`: the full ACL guarantee holds.
    Done,
    /// Budget ran out mid-diffusion; the partial vector was harvested
    /// and the certificate ingredients captured at the exit point.
    Exhausted {
        exhausted: Exhaustion,
        remaining: f64,
        per_degree_bound: f64,
    },
    /// Contamination or a violated push bound (guarded contexts only).
    Diverged(DivergenceCause),
}

/// The ACL loop on stamped scratch. Inputs are pre-validated.
///
/// Work is `O(|touched| + Σ pushed degrees)`: the stamped arrays reset
/// in `O(1)` and are only ever read/written at queue and neighbor
/// indices, and the final harvest walks the touched list instead of
/// scanning `0..n`. Every arithmetic operation, queue transition, and
/// summation order matches the historical dense implementation exactly,
/// so results are bit-identical to it (untouched entries read as the
/// literal `0.0` the dense arrays held, and adding `0.0` to the
/// residual sum was an exact no-op for the nonnegative residuals).
///
/// The [`KernelCtx`] decides which cross-cutting concerns run: an inert
/// context performs no metering, no residual recording, and no
/// finiteness scans — and allocates nothing, preserving the
/// zero-allocation guarantee of [`ppr_push_ws`]. A guarded context gets
/// the budgeted path's NaN/Inf checks and turns the push-bound guard
/// into a structured divergence instead of an error.
pub(crate) fn push_core(
    g: &Graph,
    seeds: &[NodeId],
    alpha: f64,
    epsilon: f64,
    ws: &mut PushWorkspace,
    out: &mut PushResult,
    ctx: &mut KernelCtx,
) -> Result<PushExit> {
    let n = g.n();
    ws.p.reset(n);
    ws.r.reset(n);
    ws.in_queue.reset(n);
    ws.queue.clear();
    ws.touched.clear();
    out.vector.clear();
    out.residuals.clear();

    let seed_mass = 1.0 / seeds.len() as f64;
    for &u in seeds {
        if ws.r.add(u as usize, seed_mass) {
            ws.touched.push(u);
        }
    }
    for &u in seeds {
        if !ws.in_queue.contains(u as usize) && ws.r.get(u as usize) >= epsilon * g.degree(u) {
            ws.in_queue.insert(u as usize);
            ws.queue.push_back(u);
        }
    }

    let mut pushes = 0usize;
    let mut work = 0usize;
    let mut mass_pushed = 0.0f64;
    // Tracked incrementally: each push moves exactly α·r[u] into p.
    // Only observed by metered/traced contexts (residual recording and
    // the exhaustion certificate); plain scalar arithmetic otherwise.
    let mut residual_mass = 1.0f64;
    // Hard safety cap well above the theoretical O(1/(εα)) push bound.
    let push_cap = ((4.0 / (epsilon * alpha)).ceil() as usize).saturating_add(16);
    let mut exit = PushExit::Done;

    // CORE LOOP
    while let Some(u) = ws.queue.pop_front() {
        ws.in_queue.remove(u as usize);
        let du = g.degree(u);
        let ru = ws.r.get(u as usize);
        if ctx.is_guarded() && !ru.is_finite() {
            exit = PushExit::Diverged(DivergenceCause::NonFiniteIterate { at_iter: pushes });
            break;
        }
        if ru < epsilon * du {
            continue;
        }
        pushes += 1;
        mass_pushed += ru;
        if pushes > push_cap {
            if ctx.is_guarded() {
                exit = PushExit::Diverged(DivergenceCause::Breakdown {
                    at_iter: pushes,
                    what: "exceeded the theoretical O(1/(εα)) push bound",
                });
                break;
            }
            return Err(LocalError::InvalidArgument(
                "ppr_push exceeded its theoretical push bound (bug guard)".into(),
            ));
        }
        // Lazy push: α·ru into p; half of the rest stays at u; half
        // spreads over neighbors proportionally to weight.
        ws.p.add(u as usize, alpha * ru);
        residual_mass -= alpha * ru;
        let stay = (1.0 - alpha) * ru / 2.0;
        ws.r.set(u as usize, stay);
        let spread = (1.0 - alpha) * ru / 2.0;
        let mut traversals = 0u64;
        for (v, w) in g.neighbors(u) {
            work += 1;
            traversals += 1;
            let dv = g.degree(v);
            if ws.r.add(v as usize, spread * w / du) {
                ws.touched.push(v);
            }
            // A NaN residual never re-enters the queue (comparisons with
            // NaN are false), so contamination must be caught here.
            if ctx.is_guarded() && !ws.r.get(v as usize).is_finite() {
                exit = PushExit::Diverged(DivergenceCause::NonFiniteIterate { at_iter: pushes });
                break;
            }
            if !ws.in_queue.contains(v as usize) && ws.r.get(v as usize) >= epsilon * dv && dv > 0.0
            {
                ws.in_queue.insert(v as usize);
                ws.queue.push_back(v);
            }
        }
        if matches!(exit, PushExit::Diverged(_)) {
            break;
        }
        // u itself may still be above threshold (the lazy half).
        if !ws.in_queue.contains(u as usize) && ws.r.get(u as usize) >= epsilon * du {
            ws.in_queue.insert(u as usize);
            ws.queue.push_back(u);
        }

        ctx.tick_iter();
        ctx.push_residual(residual_mass);
        if let Some(exhausted) = ctx.add_work(traversals) {
            // Worst per-degree residual over positive-degree nodes: the
            // pointwise error bound for the partial vector.
            let per_degree_bound = (0..n)
                .map(|u| {
                    let d = g.degree(u as NodeId);
                    if d > 0.0 {
                        ws.r.get(u) / d
                    } else {
                        0.0
                    }
                })
                .fold(0.0f64, f64::max)
                .max(epsilon);
            exit = PushExit::Exhausted {
                exhausted,
                remaining: residual_mass,
                per_degree_bound,
            };
            break;
        }
    }

    if matches!(exit, PushExit::Diverged(_)) {
        return Ok(exit);
    }

    // Harvest over the sorted touched list — ascending node order, the
    // same order the dense `0..n` scans visited the nonzero entries in.
    ws.touched.sort_unstable();
    let mut touched = 0usize;
    let mut residual_sum = 0.0f64;
    for &u in &ws.touched {
        let p = ws.p.get(u as usize);
        let r = ws.r.get(u as usize);
        if p > 0.0 {
            out.vector.push((u, p));
        }
        if r > 0.0 {
            out.residuals.push((u, r));
        }
        if p > 0.0 || r > 0.0 {
            touched += 1;
        }
        residual_sum += r;
    }
    out.residual_mass = residual_sum;
    out.pushes = pushes;
    out.work = work;
    out.touched = touched;
    out.mass_pushed = mass_pushed;
    Ok(exit)
}

/// Run [`ppr_push`] for many seed sets in one call, fanned out over the
/// ambient [`acir_exec::ExecPool`].
///
/// Each push is strongly local (its work is output-sized, independent
/// of `n`), so a batch of seeds is embarrassingly parallel; results come
/// back in input order and each entry is exactly what the corresponding
/// single-seed call returns, at any thread count. The whole batch fails
/// on the first invalid seed set — parameter errors are programmer
/// errors, not data-dependent outcomes — and all validation happens up
/// front, before any diffusion work is spent. Workers draw scratch from
/// the shared workspace pool, so a batch of thousands of pushes
/// materializes at most one workspace per concurrently-live worker.
pub fn ppr_push_batch(
    g: &Graph,
    seed_sets: &[Vec<NodeId>],
    alpha: f64,
    epsilon: f64,
) -> Result<Vec<PushResult>> {
    for seeds in seed_sets {
        validate_push_args(g, seeds, alpha, epsilon)?;
    }
    let outs = acir_exec::ExecPool::from_env().par_map(seed_sets, 1, |seeds| {
        let mut out = PushResult::empty();
        let mut ctx = KernelCtx::new();
        PUSH_POOL.with(|ws| push_core(g, seeds, alpha, epsilon, ws, &mut out, &mut ctx))?;
        Ok::<PushResult, LocalError>(out)
    });
    outs.into_iter().collect()
}

/// Batched, per-item-budgeted, panic-isolated push: the serving-layer
/// entry point. `budgets[i]` meters item `i`; the two slices must have
/// equal length.
///
/// Every item comes back as its own [`SolverOutcome`], never an error
/// and never a panic escaping the batch:
///
/// * a clean run is `Converged` (bit-identical to what
///   [`ppr_push_budgeted`] returns for the same item, at any thread
///   count — asserted by tests);
/// * budget exhaustion is `BudgetExhausted` with the usual
///   [`Certificate::ResidualMass`];
/// * NaN/Inf contamination is `Diverged` via the contamination guard;
/// * a worker panic is caught by [`acir_exec::panic_fence`] and lands
///   as `Diverged` with the panic message in the event trail, leaving
///   every other item of the batch intact.
///
/// Argument validation still fails the whole batch up front (parameter
/// errors are programmer errors, not data-dependent outcomes).
pub fn ppr_push_batch_outcomes(
    g: &Graph,
    seed_sets: &[Vec<NodeId>],
    alpha: f64,
    epsilon: f64,
    budgets: &[Budget],
) -> Result<Vec<SolverOutcome<PushResult>>> {
    if seed_sets.len() != budgets.len() {
        return Err(LocalError::InvalidArgument(format!(
            "ppr_push_batch_outcomes: {} seed sets but {} budgets",
            seed_sets.len(),
            budgets.len()
        )));
    }
    for seeds in seed_sets {
        validate_push_args(g, seeds, alpha, epsilon)?;
    }
    let items: Vec<usize> = (0..seed_sets.len()).collect();
    let fenced = acir_exec::ExecPool::from_env().try_par_map(&items, 1, |&i| {
        let mut ctx = KernelCtx::budgeted("local.ppr_push", &budgets[i])
            .with_guard(GuardConfig::contamination_only());
        ppr_push_ctx(g, &seed_sets[i], alpha, epsilon, &mut ctx)
    });
    Ok(fenced
        .into_iter()
        .map(|slot| match slot {
            Ok(Ok(outcome)) => outcome,
            Ok(Err(err)) => {
                // Unreachable after up-front validation, but a batch
                // item must never poison its neighbors.
                let mut diags = acir_runtime::Diagnostics::new();
                diags.note(format!("batch item error: {err}"));
                SolverOutcome::diverged(
                    DivergenceCause::Breakdown {
                        at_iter: 0,
                        what: "batch item returned an error",
                    },
                    diags,
                )
            }
            Err(panic_msg) => {
                let mut diags = acir_runtime::Diagnostics::new();
                diags.note(format!("worker panic: {panic_msg}"));
                SolverOutcome::diverged(
                    DivergenceCause::Breakdown {
                        at_iter: 0,
                        what: "worker panicked mid-push",
                    },
                    diags,
                )
            }
        })
        .collect())
}

/// Context-driven ACL push: the [`KernelCtx`] decides whether the run is
/// metered, guarded against contamination, or traced. Scratch is drawn
/// from the module pool; the result is structured as a
/// [`SolverOutcome`] even for inert contexts (which always converge).
pub fn ppr_push_ctx(
    g: &Graph,
    seeds: &[NodeId],
    alpha: f64,
    epsilon: f64,
    ctx: &mut KernelCtx,
) -> Result<SolverOutcome<PushResult>> {
    validate_push_args(g, seeds, alpha, epsilon)?;
    let mut out = PushResult::empty();
    let exit = PUSH_POOL.with(|ws| push_core(g, seeds, alpha, epsilon, ws, &mut out, ctx))?;
    let diags = ctx.finish();
    Ok(match exit {
        PushExit::Done => SolverOutcome::converged(out, diags),
        PushExit::Exhausted {
            exhausted,
            remaining,
            per_degree_bound,
        } => SolverOutcome::exhausted(
            out,
            exhausted,
            Certificate::ResidualMass {
                remaining,
                per_degree_bound,
            },
            diags,
        ),
        PushExit::Diverged(cause) => SolverOutcome::diverged(cause, diags),
    })
}

/// ACL push under an explicit resource [`Budget`], with contamination
/// guards and a structured [`SolverOutcome`].
///
/// Each push costs one iteration; each edge traversal costs one work
/// unit. On budget exhaustion the partial diffusion is returned with a
/// [`Certificate::ResidualMass`]: the un-pushed residual mass and the
/// worst per-degree residual, which by the ACL invariant
/// `p + pr_α(r) = pr_α(s)` bound the pointwise error of the truncated
/// vector — the partial push *is* a more aggressively regularized PPR,
/// not a failure. NaN/Inf contamination (e.g. corrupted edge weights)
/// yields [`SolverOutcome::Diverged`].
pub fn ppr_push_budgeted(
    g: &Graph,
    seeds: &[NodeId],
    alpha: f64,
    epsilon: f64,
    budget: &Budget,
) -> Result<SolverOutcome<PushResult>> {
    // Guard present so the in-loop NaN/Inf residual scans run and the
    // push-bound trip becomes a structured divergence.
    let mut ctx =
        KernelCtx::budgeted("local.ppr_push", budget).with_guard(GuardConfig::contamination_only());
    ppr_push_ctx(g, seeds, alpha, epsilon, &mut ctx)
}

/// Exact lazy-walk PPR by dense fixed-point iteration — the reference
/// implementation the push algorithm approximates; `O(n·m)` and only
/// for validation on small graphs.
///
/// Fixed point of `pr = α·s + (1−α)·W·pr` with `W = (I + AD⁻¹)/2`.
pub fn ppr_exact_reference(
    g: &Graph,
    seeds: &[NodeId],
    alpha: f64,
    iters: usize,
) -> Result<Vec<f64>> {
    if seeds.is_empty() {
        return Err(LocalError::InvalidArgument("needs seeds".into()));
    }
    let n = g.n();
    let mut s = vec![0.0; n];
    let mass = 1.0 / seeds.len() as f64;
    for &u in seeds {
        if u as usize >= n {
            return Err(LocalError::InvalidArgument(format!(
                "seed {u} out of range"
            )));
        }
        s[u as usize] += mass;
    }
    let m = acir_spectral::random_walk_matrix(g);
    let mut pr = s.clone();
    let mut mp = vec![0.0; n];
    for _ in 0..iters {
        m.matvec(&pr, &mut mp);
        for i in 0..n {
            let lazy = 0.5 * (pr[i] + mp[i]);
            pr[i] = alpha * s[i] + (1.0 - alpha) * lazy;
        }
    }
    Ok(pr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::{set_conductance, sweep_cut_support};
    use acir_graph::gen::deterministic::{barbell, cycle, lollipop};
    use acir_graph::gen::random::barabasi_albert;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn push_batch_matches_single_runs_at_any_thread_count() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = barabasi_albert(&mut rng, 300, 3).unwrap();
        let seed_sets: Vec<Vec<NodeId>> = vec![vec![0], vec![5, 9], vec![42], vec![100, 200, 17]];
        let singles: Vec<PushResult> = seed_sets
            .iter()
            .map(|s| ppr_push(&g, s, 0.1, 1e-4).unwrap())
            .collect();
        for threads in ["1", "4"] {
            std::env::set_var("ACIR_THREADS", threads);
            let batch = ppr_push_batch(&g, &seed_sets, 0.1, 1e-4).unwrap();
            assert_eq!(batch.len(), singles.len());
            for (got, want) in batch.iter().zip(&singles) {
                assert_eq!(got.vector, want.vector, "at {threads} threads");
                assert_eq!(got.pushes, want.pushes);
                assert_eq!(got.work, want.work);
                assert_eq!(got.residual_mass.to_bits(), want.residual_mass.to_bits());
            }
            std::env::remove_var("ACIR_THREADS");
        }
        // One bad seed set poisons the whole batch.
        assert!(ppr_push_batch(&g, &[vec![0], vec![]], 0.1, 1e-4).is_err());
    }

    #[test]
    fn batch_outcomes_bit_identical_to_solo_budgeted_path() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = barabasi_albert(&mut rng, 300, 3).unwrap();
        let seed_sets: Vec<Vec<NodeId>> = vec![vec![0], vec![5, 9], vec![42], vec![100, 200, 17]];
        let budgets = vec![
            Budget::unlimited(),
            Budget::iterations(4),
            Budget::work(50),
            Budget::unlimited(),
        ];
        let solo: Vec<_> = seed_sets
            .iter()
            .zip(&budgets)
            .map(|(s, b)| ppr_push_budgeted(&g, s, 0.1, 1e-4, b).unwrap())
            .collect();
        for threads in ["1", "4"] {
            std::env::set_var("ACIR_THREADS", threads);
            let batch = ppr_push_batch_outcomes(&g, &seed_sets, 0.1, 1e-4, &budgets).unwrap();
            std::env::remove_var("ACIR_THREADS");
            assert_eq!(batch.len(), solo.len());
            for (i, (got, want)) in batch.iter().zip(&solo).enumerate() {
                assert_eq!(got.is_converged(), want.is_converged(), "item {i}");
                let (gv, wv) = (got.value().unwrap(), want.value().unwrap());
                assert_eq!(gv.vector, wv.vector, "item {i} at {threads} threads");
                assert_eq!(gv.pushes, wv.pushes);
                assert_eq!(gv.residual_mass.to_bits(), wv.residual_mass.to_bits());
            }
        }
        // Items under tight budgets exhaust with a certificate instead
        // of erroring out.
        let batch = ppr_push_batch_outcomes(&g, &seed_sets, 0.1, 1e-4, &budgets).unwrap();
        assert!(!batch[1].is_converged() && batch[1].is_usable());
        assert!(matches!(
            batch[1].certificate(),
            Some(acir_runtime::Certificate::ResidualMass { .. })
        ));
        // Length mismatch and bad seeds fail the batch up front.
        assert!(ppr_push_batch_outcomes(&g, &seed_sets, 0.1, 1e-4, &budgets[..2]).is_err());
        assert!(ppr_push_batch_outcomes(&g, &[vec![]], 0.1, 1e-4, &[Budget::unlimited()]).is_err());
    }

    #[test]
    fn push_residuals_below_threshold() {
        let g = barbell(6, 2).unwrap();
        let eps = 1e-4;
        let r = ppr_push(&g, &[0], 0.1, eps).unwrap();
        // Invariant: approximation error per degree below eps.
        let exact = ppr_exact_reference(&g, &[0], 0.1, 5000).unwrap();
        let dense = r.to_dense(g.n());
        for u in 0..g.n() {
            let err = (exact[u] - dense[u]) / g.degree(u as u32);
            assert!(err >= -1e-9, "p never overshoots");
            assert!(err <= eps + 1e-9, "node {u}: err {err}");
        }
        assert!(r.residual_mass <= 1.0);
        assert!(r.pushes > 0);
    }

    #[test]
    fn push_mass_accounting() {
        // p-mass + residual mass = 1 (nothing created or destroyed).
        let g = cycle(20).unwrap();
        let r = ppr_push(&g, &[0], 0.2, 1e-5).unwrap();
        let p_mass: f64 = r.vector.iter().map(|&(_, x)| x).sum();
        assert!((p_mass + r.residual_mass - 1.0).abs() < 1e-12);
    }

    #[test]
    fn push_is_strongly_local() {
        // Same seed, same parameters, graphs of very different size:
        // the touched set stays put.
        let mut rng = StdRng::seed_from_u64(3);
        let small = barabasi_albert(&mut rng, 500, 3).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let large = barabasi_albert(&mut rng, 5000, 3).unwrap();
        let a = ppr_push(&small, &[400], 0.3, 1e-3).unwrap();
        let b = ppr_push(&large, &[400], 0.3, 1e-3).unwrap();
        // Work bounded by theory, not by n.
        let bound = (2.0 / (1e-3 * 0.3)) as usize;
        assert!(a.pushes <= bound && b.pushes <= bound);
        assert!(b.touched < 1000, "touched {} of 5000 nodes", b.touched);
    }

    #[test]
    fn push_plus_sweep_recovers_planted_community() {
        let g = barbell(10, 0).unwrap();
        let r = ppr_push(&g, &[2], 0.05, 1e-6).unwrap();
        let dense = r.to_dense(g.n());
        let cut = sweep_cut_support(&g, &dense);
        assert_eq!(cut.set, (0..10).collect::<Vec<u32>>());
        assert!(cut.conductance < 0.02);
    }

    #[test]
    fn seed_can_fail_to_join_its_own_cluster() {
        // The paper: "counterintuitive things like a seed node not
        // being part of 'its own cluster' can easily happen." Seed on a
        // whisker tip hanging off a clique: the swept cluster is the
        // clique region, and the best cut can exclude the tip.
        let g = lollipop(8, 1).unwrap(); // clique 0..7, tip 8 attached to 0
        let r = ppr_push(&g, &[8], 0.01, 1e-6).unwrap();
        let dense = r.to_dense(g.n());
        let cut = sweep_cut_support(&g, &dense);
        // Whatever the details, the cluster must be low-conductance.
        assert!(cut.conductance <= set_conductance(&g, &[8]) + 1e-12);
        // And the interesting observation: is the seed inside?
        // On this construction, excluding the tip gives conductance
        // 1/... while {8} alone has conductance 1. Document whichever
        // happens; assert only that the mechanism can exclude seeds by
        // checking the tip is not essential to the best sweep set.
        let without_tip: Vec<u32> = cut.set.iter().copied().filter(|&u| u != 8).collect();
        if !without_tip.is_empty() {
            assert!(set_conductance(&g, &without_tip) <= 1.0);
        }
    }

    #[test]
    fn epsilon_controls_support_size() {
        let mut rng = StdRng::seed_from_u64(9);
        let g = barabasi_albert(&mut rng, 2000, 3).unwrap();
        let coarse = ppr_push(&g, &[100], 0.1, 1e-2).unwrap();
        let fine = ppr_push(&g, &[100], 0.1, 1e-5).unwrap();
        assert!(coarse.touched < fine.touched);
        assert!(coarse.work < fine.work);
    }

    #[test]
    fn validates_inputs() {
        let g = cycle(5).unwrap();
        assert!(ppr_push(&g, &[], 0.1, 1e-3).is_err());
        assert!(ppr_push(&g, &[0], 0.0, 1e-3).is_err());
        assert!(ppr_push(&g, &[0], 1.0, 1e-3).is_err());
        assert!(ppr_push(&g, &[0], 0.1, 0.0).is_err());
        assert!(ppr_push(&g, &[9], 0.1, 1e-3).is_err());
        let iso = acir_graph::Graph::from_pairs(2, []).unwrap();
        assert!(ppr_push(&iso, &[0], 0.1, 1e-3).is_err());
    }

    #[test]
    fn budgeted_unlimited_matches_plain() {
        let g = barbell(6, 2).unwrap();
        let out = ppr_push_budgeted(&g, &[0], 0.1, 1e-4, &Budget::unlimited()).unwrap();
        assert!(out.is_converged());
        let plain = ppr_push(&g, &[0], 0.1, 1e-4).unwrap();
        assert_eq!(out.value().unwrap().vector, plain.vector);
        assert_eq!(out.value().unwrap().pushes, plain.pushes);
    }

    #[test]
    fn budgeted_exhaustion_certificate_bounds_error() {
        let g = barbell(10, 2).unwrap();
        let out = ppr_push_budgeted(&g, &[0], 0.05, 1e-6, &Budget::iterations(5)).unwrap();
        assert!(!out.is_converged() && out.is_usable());
        let (remaining, per_degree) = match out.certificate() {
            Some(&acir_runtime::Certificate::ResidualMass {
                remaining,
                per_degree_bound,
            }) => (remaining, per_degree_bound),
            c => panic!("wrong certificate {c:?}"),
        };
        // Verify against the exact answer: per-node error of the partial
        // vector is bounded by the certified per-degree residual bound
        // (the ACL invariant, with the remaining PPR mass ≤ remaining).
        let exact = ppr_exact_reference(&g, &[0], 0.05, 5000).unwrap();
        let dense = out.value().unwrap().to_dense(g.n());
        for u in 0..g.n() {
            let err = (exact[u] - dense[u]) / g.degree(u as u32);
            assert!(err >= -1e-9);
            assert!(
                err <= per_degree + 1e-9,
                "node {u}: err {err} vs bound {per_degree}"
            );
        }
        assert!(remaining > 0.0 && remaining <= 1.0 + 1e-12);
        assert!(!out.diagnostics().events.is_empty() || !out.diagnostics().residuals.is_empty());
    }

    #[test]
    fn corrupted_edge_lists_rejected_before_push() {
        // Graph-level fault injection: the CSR constructor is the first
        // line of defense — corrupted triplets must never reach a
        // diffusion. (In-loop NaN guards in ppr_push_budgeted remain as
        // defense-in-depth for operators built outside `Graph`.)
        use acir_runtime::fault::corrupt;
        let base: Vec<(u32, u32, f64)> = (0..9).map(|i| (i, i + 1, 1.0)).collect();

        let mut dangling = base.clone();
        assert!(corrupt::dangling_arcs(&mut dangling, 10, 0.5, 11) > 0);
        assert!(acir_graph::Graph::from_edges(10, dangling).is_err());

        let mut zeroed = base.clone();
        assert!(corrupt::zero_weights(&mut zeroed, 0.5, 11) > 0);
        assert!(acir_graph::Graph::from_edges(10, zeroed).is_err());

        let mut negated = base;
        assert!(corrupt::negative_weights(&mut negated, 0.5, 11) > 0);
        assert!(acir_graph::Graph::from_edges(10, negated).is_err());
    }

    #[test]
    fn ws_variant_bit_identical_across_reuse() {
        // One workspace and one output slot reused across calls of
        // different sizes and seeds must reproduce fresh results bit
        // for bit — reuse may never leak state between calls.
        let mut rng = StdRng::seed_from_u64(11);
        let big = barabasi_albert(&mut rng, 800, 3).unwrap();
        let small = barbell(6, 2).unwrap();
        let mut ws = PushWorkspace::new();
        let mut out = PushResult::empty();
        let cases: Vec<(&acir_graph::Graph, Vec<NodeId>)> = vec![
            (&big, vec![0]),
            (&small, vec![0]),
            (&big, vec![17, 399]),
            (&big, vec![0]), // repeat: shrunk-then-regrown scratch
        ];
        for (g, seeds) in cases {
            let fresh = ppr_push(g, &seeds, 0.1, 1e-4).unwrap();
            ppr_push_ws(g, &seeds, 0.1, 1e-4, &mut ws, &mut out).unwrap();
            assert_eq!(out.vector, fresh.vector);
            assert_eq!(out.residual_mass.to_bits(), fresh.residual_mass.to_bits());
            assert_eq!(
                (out.pushes, out.work, out.touched),
                (fresh.pushes, fresh.work, fresh.touched)
            );
        }
        // Errors still validate through the ws path.
        assert!(ppr_push_ws(&small, &[], 0.1, 1e-4, &mut ws, &mut out).is_err());
    }

    #[test]
    fn map_back_restores_original_ids() {
        use acir_graph::Permutation;
        let g = barbell(6, 2).unwrap();
        let direct = ppr_push(&g, &[0], 0.1, 1e-4).unwrap();
        assert_eq!(
            direct.map_back(&Permutation::identity(g.n())).vector,
            direct.vector
        );
        let perm = Permutation::rcm(&g);
        let pg = g.permute(&perm).unwrap();
        let mapped_seed = perm.to_new(0);
        let on_permuted = ppr_push(&pg, &[mapped_seed], 0.1, 1e-4).unwrap();
        let back = on_permuted.map_back(&perm);
        // Same support and bookkeeping; values agree to rounding (the
        // permuted run accumulates in a different neighbor order).
        let ids: Vec<NodeId> = back.vector.iter().map(|&(u, _)| u).collect();
        let want: Vec<NodeId> = direct.vector.iter().map(|&(u, _)| u).collect();
        assert_eq!(ids, want);
        // Push order differs on the relabelled graph, so the two runs
        // are different ε-truncations of the same exact PPR: each is
        // within ε per degree of it, hence within 2ε·d_u of each other.
        for (a, b) in back.vector.iter().zip(&direct.vector) {
            assert!((a.1 - b.1).abs() <= 2.0 * 1e-4 * g.degree(a.0));
        }
    }

    #[test]
    fn multiple_seeds_split_mass() {
        let g = cycle(12).unwrap();
        let r = ppr_push(&g, &[0, 6], 0.5, 1e-6).unwrap();
        let dense = r.to_dense(12);
        // Symmetric seeds on a cycle: symmetric output.
        assert!((dense[0] - dense[6]).abs() < 1e-9);
        assert!((dense[1] - dense[7]).abs() < 1e-9);
    }
}
