//! # acir-mem
//!
//! Deterministic heap-allocation instrumentation for the ACIR
//! workspace.
//!
//! The memory-locality work (DESIGN.md §9) claims that steady-state
//! calls of the hot diffusion kernels perform **zero** heap
//! allocations once their [`acir_runtime::workspace`] scratch is warm.
//! Wall-clock numbers cannot gate that on a shared CI runner —
//! allocation *counts* can: for a fixed workload on one thread they
//! are a pure function of the code, so a count regression is a real
//! regression, never noise.
//!
//! [`CountingAlloc`] is a zero-cost-when-uninstalled wrapper around
//! the system allocator that counts calls and bytes in relaxed
//! atomics. A binary or integration test opts in with:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: acir_mem::CountingAlloc = acir_mem::CountingAlloc;
//! ```
//!
//! and then brackets a region with [`snapshot`]:
//!
//! ```ignore
//! let before = acir_mem::snapshot();
//! hot_call();
//! let delta = acir_mem::snapshot().since(&before);
//! assert_eq!(delta.allocs, 0, "steady state must not allocate");
//! ```
//!
//! Counters are process-global: measure on a single thread (or with
//! `--test-threads=1`) when asserting exact counts. [`record_into`]
//! mirrors the counters into an [`acir_obs::MetricsRegistry`] so
//! perfsuite artifacts carry them.
//!
//! [`acir_runtime::workspace`]: ../acir_runtime/workspace/index.html

#![warn(missing_docs)]
// This is the one crate in the workspace allowed to contain `unsafe`:
// a `GlobalAlloc` impl cannot be written without it. The unsafe code
// is pure forwarding to `std::alloc::System` plus relaxed counter
// bumps — no pointer arithmetic of its own.

use acir_obs::MetricsRegistry;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
static DEALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static REALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static INSTALLED: AtomicU64 = AtomicU64::new(0);

/// A counting wrapper around the system allocator.
///
/// Install as `#[global_allocator]` in a binary or test to make
/// [`snapshot`] meaningful there; the counters stay at zero (and
/// [`is_installed`] reports `false`) otherwise.
pub struct CountingAlloc;

// SAFETY: every method forwards verbatim to `System`, which upholds
// the `GlobalAlloc` contract; the counter bumps have no effect on the
// returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        INSTALLED.store(1, Relaxed);
        ALLOC_CALLS.fetch_add(1, Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        INSTALLED.store(1, Relaxed);
        ALLOC_CALLS.fetch_add(1, Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        DEALLOC_CALLS.fetch_add(1, Relaxed);
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        REALLOC_CALLS.fetch_add(1, Relaxed);
        ALLOC_BYTES.fetch_add(new_size.saturating_sub(layout.size()) as u64, Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

/// Point-in-time reading of the allocation counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllocSnapshot {
    /// `alloc`/`alloc_zeroed` calls so far.
    pub allocs: u64,
    /// Bytes requested by those calls (plus realloc growth).
    pub bytes: u64,
    /// `dealloc` calls so far.
    pub deallocs: u64,
    /// `realloc` calls so far.
    pub reallocs: u64,
}

impl AllocSnapshot {
    /// Counter deltas since an `earlier` snapshot (saturating, so a
    /// stale pair never underflows).
    pub fn since(&self, earlier: &AllocSnapshot) -> AllocSnapshot {
        AllocSnapshot {
            allocs: self.allocs.saturating_sub(earlier.allocs),
            bytes: self.bytes.saturating_sub(earlier.bytes),
            deallocs: self.deallocs.saturating_sub(earlier.deallocs),
            reallocs: self.reallocs.saturating_sub(earlier.reallocs),
        }
    }

    /// Total allocator traffic (alloc + realloc calls) — the number
    /// gated by the CI regression test.
    pub fn heap_events(&self) -> u64 {
        self.allocs + self.reallocs
    }
}

/// Read the global counters.
pub fn snapshot() -> AllocSnapshot {
    AllocSnapshot {
        allocs: ALLOC_CALLS.load(Relaxed),
        bytes: ALLOC_BYTES.load(Relaxed),
        deallocs: DEALLOC_CALLS.load(Relaxed),
        reallocs: REALLOC_CALLS.load(Relaxed),
    }
}

/// Whether [`CountingAlloc`] is the process's global allocator (true
/// once it has served at least one allocation).
pub fn is_installed() -> bool {
    INSTALLED.load(Relaxed) != 0
}

/// Mirror an [`AllocSnapshot`] (typically a delta) into a
/// [`MetricsRegistry`] under `mem.*` counters, so perfsuite artifacts
/// and traces can carry allocation measurements alongside the solver
/// metrics.
pub fn record_into(reg: &mut MetricsRegistry, prefix: &str, snap: &AllocSnapshot) {
    reg.set(&format!("{prefix}.alloc_calls"), snap.allocs);
    reg.set(&format!("{prefix}.alloc_bytes"), snap.bytes);
    reg.set(&format!("{prefix}.dealloc_calls"), snap.deallocs);
    reg.set(&format!("{prefix}.realloc_calls"), snap.reallocs);
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    // NOTE: the allocator is NOT installed in this crate's own test
    // binary, so counters stay at zero and the arithmetic is what gets
    // tested here; end-to-end counting is exercised by the workspace's
    // `alloc_gate` integration test, which does install it.

    #[test]
    fn deltas_saturate() {
        let a = AllocSnapshot {
            allocs: 5,
            bytes: 100,
            deallocs: 2,
            reallocs: 1,
        };
        let b = AllocSnapshot {
            allocs: 9,
            bytes: 150,
            deallocs: 4,
            reallocs: 1,
        };
        let d = b.since(&a);
        assert_eq!(d.allocs, 4);
        assert_eq!(d.bytes, 50);
        assert_eq!(d.deallocs, 2);
        assert_eq!(d.reallocs, 0);
        assert_eq!(d.heap_events(), 4);
        // Reversed order saturates instead of underflowing.
        assert_eq!(a.since(&b).allocs, 0);
    }

    #[test]
    fn snapshot_without_install_is_zero() {
        assert!(!is_installed());
        let s = snapshot();
        assert_eq!(s.allocs, 0);
        assert_eq!(s.heap_events(), 0);
    }

    #[test]
    fn record_into_sets_counters() {
        let mut reg = MetricsRegistry::new();
        let s = AllocSnapshot {
            allocs: 3,
            bytes: 42,
            deallocs: 1,
            reallocs: 2,
        };
        record_into(&mut reg, "mem", &s);
        assert_eq!(reg.counter("mem.alloc_calls"), 3);
        assert_eq!(reg.counter("mem.alloc_bytes"), 42);
        assert_eq!(reg.counter("mem.dealloc_calls"), 1);
        assert_eq!(reg.counter("mem.realloc_calls"), 2);
    }
}
