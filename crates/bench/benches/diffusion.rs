//! Criterion benches of the §3.1 diffusion dynamics: the cost of the
//! exact solves vs their truncated approximations — the paper's
//! "faster" half of "faster and better".

use acir_graph::gen::random::barabasi_albert;
use acir_spectral::diffusion::{heat_kernel, lazy_walk, pagerank, pagerank_power, Seed};
use acir_spectral::fiedler_vector;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn graph(n: usize) -> acir_graph::Graph {
    let mut rng = StdRng::seed_from_u64(11);
    barabasi_albert(&mut rng, n, 4).unwrap()
}

fn bench_pagerank(c: &mut Criterion) {
    let mut group = c.benchmark_group("pagerank");
    let g = graph(5_000);
    group.bench_function("exact_cg_n5000", |b| {
        b.iter(|| pagerank(black_box(&g), 0.15, &Seed::Node(3)).unwrap());
    });
    for iters in [10usize, 50] {
        group.bench_function(format!("power_{iters}iters_n5000"), |b| {
            b.iter(|| pagerank_power(black_box(&g), 0.15, &Seed::Node(3), iters).unwrap());
        });
    }
    group.finish();
}

fn bench_heat_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("heat_kernel");
    let g = graph(5_000);
    for krylov in [15usize, 40] {
        group.bench_function(format!("krylov{krylov}_n5000"), |b| {
            b.iter(|| heat_kernel(black_box(&g), 3.0, &Seed::Node(3), krylov).unwrap());
        });
    }
    group.finish();
}

fn bench_lazy_walk(c: &mut Criterion) {
    let mut group = c.benchmark_group("lazy_walk");
    let g = graph(5_000);
    for steps in [5usize, 50] {
        group.bench_function(format!("steps{steps}_n5000"), |b| {
            b.iter(|| lazy_walk(black_box(&g), 0.5, steps, &Seed::Node(3)).unwrap());
        });
    }
    group.finish();
}

fn bench_fiedler(c: &mut Criterion) {
    let mut group = c.benchmark_group("fiedler_exact");
    group.sample_size(20);
    for n in [300usize, 2_000] {
        let g = graph(n);
        group.bench_function(format!("n{n}"), |b| {
            b.iter(|| fiedler_vector(black_box(&g)).unwrap());
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_pagerank,
    bench_heat_kernel,
    bench_lazy_walk,
    bench_fiedler
);
criterion_main!(benches);
