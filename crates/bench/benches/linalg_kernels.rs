//! Criterion benches of the linear-algebra substrate: the kernels
//! whose costs determine every experiment's wall-clock.

use acir_graph::gen::random::barabasi_albert;
use acir_linalg::expm::expm_multiply;
use acir_linalg::solve::{cg, CgOptions};
use acir_linalg::{lanczos, SymEig};
use acir_spectral::{combinatorial_laplacian, normalized_laplacian};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_matvec(c: &mut Criterion) {
    let mut group = c.benchmark_group("sparse_matvec");
    for n in [1_000usize, 10_000] {
        let mut rng = StdRng::seed_from_u64(1);
        let g = barabasi_albert(&mut rng, n, 4).unwrap();
        let l = normalized_laplacian(&g);
        let x: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let mut y = vec![0.0; n];
        group.bench_function(format!("ba_n{n}_m4"), |b| {
            b.iter(|| l.matvec(black_box(&x), &mut y));
        });
    }
    group.finish();
}

fn bench_eigensolvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("eigensolvers");
    // Dense Jacobi (the exact reference path).
    let mut rng = StdRng::seed_from_u64(2);
    let g = barabasi_albert(&mut rng, 64, 3).unwrap();
    let dense = normalized_laplacian(&g).to_dense();
    group.bench_function("jacobi_dense_n64", |b| {
        b.iter(|| SymEig::new(black_box(&dense)).unwrap());
    });
    // Sparse Lanczos at a scale Jacobi cannot touch.
    let mut rng = StdRng::seed_from_u64(3);
    let g = barabasi_albert(&mut rng, 5_000, 3).unwrap();
    let l = normalized_laplacian(&g);
    let seed: Vec<f64> = (0..5_000).map(|i| ((i * 37) % 101) as f64 - 50.0).collect();
    group.bench_function("lanczos_k60_n5000", |b| {
        b.iter(|| lanczos(black_box(&l), &seed, 60, &[]).unwrap());
    });
    group.finish();
}

fn bench_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("solvers");
    let mut rng = StdRng::seed_from_u64(4);
    let g = barabasi_albert(&mut rng, 5_000, 3).unwrap();
    // SPD system: L + 0.1 I (combinatorial Laplacian, shifted).
    let mut l = combinatorial_laplacian(&g);
    let n = l.nrows();
    let eye = acir_linalg::CsrMatrix::identity(n);
    // Shift by adding 0.1 * I via triplets merge.
    let mut trips: Vec<(usize, usize, f64)> = Vec::new();
    for r in 0..n {
        for (cc, v) in l.row(r) {
            trips.push((r, cc as usize, v));
        }
        trips.push((r, r, 0.1));
    }
    l = acir_linalg::CsrMatrix::from_triplets(n, n, trips);
    let _ = eye;
    let bvec: Vec<f64> = (0..n).map(|i| ((i % 7) as f64) - 3.0).collect();
    group.bench_function("cg_shifted_laplacian_n5000", |b| {
        b.iter(|| {
            cg(
                black_box(&l),
                &bvec,
                &vec![0.0; n],
                &CgOptions {
                    max_iters: 500,
                    tol: 1e-8,
                },
            )
            .unwrap()
        });
    });
    group.finish();
}

fn bench_expm(c: &mut Criterion) {
    let mut group = c.benchmark_group("heat_kernel_expm");
    let mut rng = StdRng::seed_from_u64(5);
    let g = barabasi_albert(&mut rng, 5_000, 3).unwrap();
    let mut neg = normalized_laplacian(&g);
    neg.scale(-1.0);
    let mut s = vec![0.0; 5_000];
    s[17] = 1.0;
    for k in [10usize, 30] {
        group.bench_function(format!("krylov_dim{k}_n5000"), |b| {
            b.iter(|| expm_multiply(black_box(&neg), 3.0, &s, k).unwrap());
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_matvec,
    bench_eigensolvers,
    bench_solvers,
    bench_expm
);
criterion_main!(benches);
