//! Criterion benches of the §3.3 strongly local methods. The key
//! series: push cost vs graph size at fixed (α, ε) — flat if the
//! strong-locality claim holds — against MOV, whose cost grows with n.

use acir_graph::gen::random::barabasi_albert;
use acir_graph::NodeValued;
use acir_local::hkrelax::hk_relax;
use acir_local::mov::mov_vector;
use acir_local::nibble::nibble;
use acir_local::push::ppr_push;
use acir_local::sweep::sweep_cut_support;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn graph(n: usize) -> acir_graph::Graph {
    let mut rng = StdRng::seed_from_u64(23);
    barabasi_albert(&mut rng, n, 4).unwrap()
}

fn bench_push_locality(c: &mut Criterion) {
    let mut group = c.benchmark_group("push_vs_graph_size");
    for n in [2_000usize, 20_000, 200_000] {
        let g = graph(n);
        group.bench_function(format!("push_a0.05_e1e-4_n{n}"), |b| {
            b.iter(|| ppr_push(black_box(&g), &[100], 0.05, 1e-4).unwrap());
        });
    }
    group.finish();
}

fn bench_push_epsilon(c: &mut Criterion) {
    let mut group = c.benchmark_group("push_vs_epsilon");
    let g = graph(50_000);
    for (label, eps) in [("1e-3", 1e-3), ("1e-4", 1e-4), ("1e-5", 1e-5)] {
        group.bench_function(format!("eps{label}_n50000"), |b| {
            b.iter(|| ppr_push(black_box(&g), &[100], 0.05, eps).unwrap());
        });
    }
    group.finish();
}

fn bench_other_local(c: &mut Criterion) {
    let mut group = c.benchmark_group("local_methods_n20000");
    let g = graph(20_000);
    group.bench_function("nibble_30steps", |b| {
        b.iter(|| nibble(black_box(&g), 100, 30, 1e-4).unwrap());
    });
    group.bench_function("hk_relax_t5", |b| {
        b.iter(|| hk_relax(black_box(&g), 100, 5.0, 1e-4, 1e-4).unwrap());
    });
    group.bench_function("push_plus_sweep", |b| {
        b.iter(|| {
            let p = ppr_push(black_box(&g), &[100], 0.05, 1e-4).unwrap();
            sweep_cut_support(&g, &p.to_dense(g.n()))
        });
    });
    group.finish();
}

fn bench_mov(c: &mut Criterion) {
    let mut group = c.benchmark_group("mov_vs_graph_size");
    group.sample_size(10);
    for n in [2_000usize, 20_000] {
        let g = graph(n);
        group.bench_function(format!("mov_gamma-1_n{n}"), |b| {
            b.iter(|| mov_vector(black_box(&g), &[100], -1.0).unwrap());
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_push_locality,
    bench_push_epsilon,
    bench_other_local,
    bench_mov
);
criterion_main!(benches);
