//! Criterion benches for the extension modules: Chebyshev matrix
//! functions vs the Krylov route, k-way spectral clustering, and
//! streaming PageRank.

use acir_graph::gen::random::barabasi_albert;
use acir_linalg::chebyshev::cheb_heat_kernel;
use acir_linalg::expm::expm_multiply;
use acir_spectral::embedding::spectral_clustering;
use acir_spectral::normalized_laplacian;
use acir_spectral::streaming::streaming_pagerank_of_graph;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn graph(n: usize) -> acir_graph::Graph {
    let mut rng = StdRng::seed_from_u64(51);
    barabasi_albert(&mut rng, n, 4).unwrap()
}

fn bench_heat_kernel_routes(c: &mut Criterion) {
    let mut group = c.benchmark_group("heat_kernel_routes_n10000");
    let g = graph(10_000);
    let nl = normalized_laplacian(&g);
    let mut neg = nl.clone();
    neg.scale(-1.0);
    let mut seed = vec![0.0; 10_000];
    seed[7] = 1.0;
    group.bench_function("krylov_dim30", |b| {
        b.iter(|| expm_multiply(black_box(&neg), 3.0, &seed, 30).unwrap());
    });
    group.bench_function("chebyshev_deg30", |b| {
        b.iter(|| cheb_heat_kernel(black_box(&nl), 3.0, &seed, 2.0, 30).unwrap());
    });
    group.finish();
}

fn bench_spectral_clustering(c: &mut Criterion) {
    let mut group = c.benchmark_group("spectral_clustering");
    group.sample_size(10);
    for n in [200usize, 1_000] {
        let g = graph(n);
        group.bench_function(format!("k4_n{n}"), |b| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(1);
                spectral_clustering(black_box(&g), 4, 4, &mut rng).unwrap()
            });
        });
    }
    group.finish();
}

fn bench_streaming_pagerank(c: &mut Criterion) {
    let mut group = c.benchmark_group("streaming_pagerank_n5000");
    group.sample_size(10);
    let g = graph(5_000);
    for walkers in [1_000usize, 10_000] {
        group.bench_function(format!("walkers{walkers}"), |b| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(2);
                streaming_pagerank_of_graph(black_box(&g), 0.2, walkers, 60, &mut rng).unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_heat_kernel_routes,
    bench_spectral_clustering,
    bench_streaming_pagerank
);
criterion_main!(benches);
