//! Criterion benches of the §3.2 partitioning rivals and the Figure 1
//! pipeline components.

use acir_flow::mqi;
use acir_graph::gen::community::{social_network, SocialNetworkParams};
use acir_graph::gen::random::barabasi_albert;
use acir_graph::traversal::largest_component;
use acir_partition::multilevel::{multilevel_bisect, recursive_partition, MultilevelOptions};
use acir_partition::ncp::{ncp_local_spectral, ncp_metis_mqi, NcpOptions};
use acir_partition::spectral_part::spectral_bisect;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn fig1_graph() -> acir_graph::Graph {
    let mut rng = StdRng::seed_from_u64(99);
    let pc = social_network(
        &mut rng,
        &SocialNetworkParams {
            core_nodes: 1_000,
            core_attach: 3,
            communities: 12,
            community_size_range: (6, 120),
            whiskers: 60,
            whisker_max_len: 8,
            ..Default::default()
        },
    )
    .unwrap();
    largest_component(&pc.graph).0
}

fn bench_bisection(c: &mut Criterion) {
    let mut group = c.benchmark_group("bisection");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(7);
    let g = barabasi_albert(&mut rng, 5_000, 4).unwrap();
    group.bench_function("spectral_n5000", |b| {
        b.iter(|| spectral_bisect(black_box(&g)).unwrap());
    });
    group.bench_function("multilevel_n5000", |b| {
        b.iter(|| multilevel_bisect(black_box(&g), &MultilevelOptions::default()).unwrap());
    });
    group.finish();
}

fn bench_mqi(c: &mut Criterion) {
    let mut group = c.benchmark_group("mqi_polish");
    group.sample_size(10);
    let g = fig1_graph();
    let pieces = recursive_partition(&g, 120, &MultilevelOptions::default()).unwrap();
    let total = g.total_volume();
    let piece = pieces
        .iter()
        .filter(|p| p.len() >= 30 && g.volume(p) <= total / 2.0)
        .max_by_key(|p| p.len())
        .cloned()
        .expect("a usable piece");
    group.bench_function(format!("piece_of_{}", piece.len()), |b| {
        b.iter(|| mqi(black_box(&g), &piece).unwrap());
    });
    group.finish();
}

fn bench_ncp(c: &mut Criterion) {
    let mut group = c.benchmark_group("ncp_fig1_components");
    group.sample_size(10);
    let g = fig1_graph();
    let opts = NcpOptions {
        min_size: 2,
        max_size: 200,
        seeds: 12,
        alphas: vec![0.2, 0.05],
        epsilons: vec![1e-3, 1e-4],
        threads: 4,
        ..Default::default()
    };
    group.bench_function("local_spectral", |b| {
        b.iter(|| ncp_local_spectral(black_box(&g), &opts).unwrap());
    });
    group.bench_function("metis_mqi", |b| {
        b.iter(|| ncp_metis_mqi(black_box(&g), &opts).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_bisection, bench_mqi, bench_ncp);
criterion_main!(benches);
