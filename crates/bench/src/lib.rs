//! # acir-bench
//!
//! Benchmark harness of the ACIR reproduction: criterion microbenches
//! (`benches/`) and the figure-regeneration binaries (`src/bin/`).
//!
//! Binaries (run with `--release`; each writes CSVs under `results/`
//! and prints the tables recorded in EXPERIMENTS.md):
//!
//! * `fig1` — regenerates Figure 1(a–c) on the AtP-DBLP surrogate;
//! * `casestudy1` — the §3.1 equivalence and regularization-path
//!   tables;
//! * `casestudy3` — the §3.3 locality/recovery table and the
//!   seed-exclusion demo;
//! * `ablations` — Cheeger table, worst-case geometry sweeps, early
//!   stopping, and noise ablations.
//!
//! A `--quick` flag on each binary shrinks the workload for smoke
//! runs; the full configuration is the EXPERIMENTS.md reference.

/// Common CLI arguments of the experiment binaries.
pub struct BinArgs {
    /// Run the reduced smoke-test configuration.
    pub quick: bool,
    /// Base RNG seed.
    pub seed: u64,
    /// Output directory for CSV artifacts.
    pub out_dir: std::path::PathBuf,
}

impl BinArgs {
    /// Parse from `std::env::args` (supported: `--quick`, `--seed N`,
    /// `--out DIR`).
    pub fn parse() -> Self {
        let mut quick = false;
        let mut seed = 0xAC1D;
        let mut out_dir = std::path::PathBuf::from("results");
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--quick" => quick = true,
                "--seed" => {
                    seed = args
                        .next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| panic!("--seed needs an integer"));
                }
                "--out" => {
                    out_dir = args
                        .next()
                        .map(Into::into)
                        .unwrap_or_else(|| panic!("--out needs a path"));
                }
                other => {
                    panic!("unknown argument: {other} (supported: --quick, --seed N, --out DIR)")
                }
            }
        }
        Self {
            quick,
            seed,
            out_dir,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn struct_fields() {
        let a = BinArgs {
            quick: true,
            seed: 1,
            out_dir: "x".into(),
        };
        assert!(a.quick);
        assert_eq!(a.seed, 1);
        assert_eq!(a.out_dir, std::path::PathBuf::from("x"));
    }
}
