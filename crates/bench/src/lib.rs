//! # acir-bench
//!
//! Benchmark harness of the ACIR reproduction: criterion microbenches
//! (`benches/`), the figure-regeneration binaries (`src/bin/`), and the
//! wall-clock `perfsuite` that emits `BENCH_parallel.json`.
//!
//! Binaries (run with `--release`; each writes CSVs under `results/`
//! and prints the tables recorded in EXPERIMENTS.md):
//!
//! * `fig1` — regenerates Figure 1(a–c) on the AtP-DBLP surrogate;
//! * `casestudy1` — the §3.1 equivalence and regularization-path
//!   tables;
//! * `casestudy3` — the §3.3 locality/recovery table and the
//!   seed-exclusion demo;
//! * `ablations` — Cheeger table, worst-case geometry sweeps, early
//!   stopping, and noise ablations;
//! * `perfsuite` — times SpMV / batched PPR / Lanczos / NCP across
//!   thread counts and writes `BENCH_parallel.json`.
//!
//! A `--quick` flag on each binary shrinks the workload for smoke
//! runs; the full configuration is the EXPERIMENTS.md reference.

/// Node ordering selected by `--reorder` (opt-in: the default `None`
/// preserves the input ordering bit-for-bit).
///
/// Reordering relabels nodes so that adjacent nodes get nearby ids,
/// shrinking the CSR bandwidth and making SpMV and diffusion sweeps
/// cache-friendlier; results are mapped back to original ids via
/// [`acir_graph::Permutation`], so outputs are invariant up to the
/// relabeling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Reorder {
    /// Keep the input node ordering (the default).
    #[default]
    None,
    /// Reverse Cuthill–McKee: per-component BFS from a low-degree
    /// start, reversed — the classic bandwidth-minimizing heuristic.
    Rcm,
    /// Degree-descending: hubs first, so the hottest rows share cache.
    Degree,
}

impl Reorder {
    /// The permutation this mode prescribes for `g`; `None` for the
    /// identity mode, so callers can skip the permute entirely.
    pub fn permutation(self, g: &acir_graph::Graph) -> Option<acir_graph::Permutation> {
        match self {
            Reorder::None => None,
            Reorder::Rcm => Some(acir_graph::Permutation::rcm(g)),
            Reorder::Degree => Some(acir_graph::Permutation::degree_descending(g)),
        }
    }
}

impl std::str::FromStr for Reorder {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "none" => Ok(Reorder::None),
            "rcm" => Ok(Reorder::Rcm),
            "degree" => Ok(Reorder::Degree),
            other => Err(format!(
                "--reorder needs one of none|rcm|degree, got `{other}`"
            )),
        }
    }
}

impl std::fmt::Display for Reorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Reorder::None => "none",
            Reorder::Rcm => "rcm",
            Reorder::Degree => "degree",
        })
    }
}

/// Common CLI arguments of the experiment binaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinArgs {
    /// Run the reduced smoke-test configuration.
    pub quick: bool,
    /// Base RNG seed.
    pub seed: u64,
    /// Output directory for CSV artifacts.
    pub out_dir: std::path::PathBuf,
    /// Worker-thread override (`--threads N`); `None` leaves the
    /// `ACIR_THREADS` environment / per-call defaults in charge.
    pub threads: Option<usize>,
    /// Node-ordering override (`--reorder none|rcm|degree`).
    pub reorder: Reorder,
}

/// One line per supported flag; printed to stderr on a parse error.
pub const USAGE: &str = "supported arguments:\n  --quick        run the reduced smoke-test configuration\n  --seed N       base RNG seed (non-negative integer)\n  --out DIR      output directory for artifacts\n  --threads N    worker threads (positive integer; sets ACIR_THREADS)\n  --reorder M    node ordering: none (default), rcm, or degree";

impl BinArgs {
    /// Parse from `std::env::args`, reporting bad input like a CLI tool
    /// should: usage to stderr and exit code 2, never a panic.
    ///
    /// A `--threads N` override is also exported as `ACIR_THREADS`
    /// before returning, so every [`acir::exec::ExecPool`] the binary
    /// constructs — including pools deep inside library code — follows
    /// the flag without plumbing.
    pub fn parse() -> Self {
        match Self::parse_from(std::env::args().skip(1)) {
            Ok(args) => {
                if let Some(n) = args.threads {
                    std::env::set_var(acir::exec::THREADS_ENV, n.to_string());
                }
                args
            }
            Err(msg) => {
                eprintln!("error: {msg}");
                eprintln!("{USAGE}");
                std::process::exit(2);
            }
        }
    }

    /// The fallible core of [`BinArgs::parse`]: pure argument
    /// validation, no process exit and no environment mutation, so
    /// tests can drive every error path.
    pub fn parse_from(args: impl IntoIterator<Item = String>) -> Result<Self, String> {
        let mut out = Self {
            quick: false,
            seed: 0xAC1D,
            out_dir: std::path::PathBuf::from("results"),
            threads: None,
            reorder: Reorder::None,
        };
        let mut args = args.into_iter();
        while let Some(a) = args.next() {
            match a.as_str() {
                "--quick" => out.quick = true,
                "--seed" => {
                    let v = args.next().ok_or("--seed needs an integer")?;
                    out.seed = v
                        .parse()
                        .map_err(|_| format!("--seed needs a non-negative integer, got `{v}`"))?;
                }
                "--out" => {
                    let v = args.next().ok_or("--out needs a path")?;
                    out.out_dir = v.into();
                }
                "--threads" => {
                    let v = args.next().ok_or("--threads needs an integer")?;
                    let n: usize = v
                        .parse()
                        .map_err(|_| format!("--threads needs a positive integer, got `{v}`"))?;
                    if n == 0 {
                        return Err("--threads must be at least 1".to_owned());
                    }
                    out.threads = Some(n);
                }
                "--reorder" => {
                    let v = args
                        .next()
                        .ok_or("--reorder needs a mode (none|rcm|degree)")?;
                    out.reorder = v.parse()?;
                }
                other => return Err(format!("unknown argument: {other}")),
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    fn parse(args: &[&str]) -> Result<BinArgs, String> {
        BinArgs::parse_from(args.iter().map(|s| (*s).to_owned()))
    }

    #[test]
    fn defaults_without_arguments() {
        let a = parse(&[]).unwrap();
        assert!(!a.quick);
        assert_eq!(a.seed, 0xAC1D);
        assert_eq!(a.out_dir, std::path::PathBuf::from("results"));
        assert_eq!(a.threads, None);
        assert_eq!(a.reorder, Reorder::None);
    }

    #[test]
    fn parses_every_flag() {
        let a = parse(&[
            "--quick",
            "--seed",
            "7",
            "--out",
            "artifacts",
            "--threads",
            "4",
            "--reorder",
            "rcm",
        ])
        .unwrap();
        assert!(a.quick);
        assert_eq!(a.seed, 7);
        assert_eq!(a.out_dir, std::path::PathBuf::from("artifacts"));
        assert_eq!(a.threads, Some(4));
        assert_eq!(a.reorder, Reorder::Rcm);
        assert_eq!(
            parse(&["--reorder", "degree"]).unwrap().reorder,
            Reorder::Degree
        );
        assert_eq!(
            parse(&["--reorder", "none"]).unwrap().reorder,
            Reorder::None
        );
    }

    #[test]
    fn reorder_round_trips_through_display() {
        for mode in [Reorder::None, Reorder::Rcm, Reorder::Degree] {
            assert_eq!(mode.to_string().parse::<Reorder>().unwrap(), mode);
        }
    }

    #[test]
    fn reorder_prescribes_a_permutation_only_when_active() {
        let g = acir_graph::gen::deterministic::cycle(6).unwrap();
        assert!(Reorder::None.permutation(&g).is_none());
        let p = Reorder::Rcm.permutation(&g).unwrap();
        assert_eq!(p.len(), 6);
        let p = Reorder::Degree.permutation(&g).unwrap();
        assert_eq!(p.len(), 6);
    }

    #[test]
    fn bad_input_is_an_err_not_a_panic() {
        assert!(parse(&["--seed"]).unwrap_err().contains("--seed"));
        assert!(parse(&["--seed", "abc"]).unwrap_err().contains("abc"));
        assert!(parse(&["--seed", "-3"]).unwrap_err().contains("-3"));
        assert!(parse(&["--out"]).unwrap_err().contains("--out"));
        assert!(parse(&["--threads"]).unwrap_err().contains("--threads"));
        assert!(parse(&["--threads", "zero"]).unwrap_err().contains("zero"));
        assert!(parse(&["--threads", "0"])
            .unwrap_err()
            .contains("at least 1"));
        assert!(parse(&["--frobnicate"]).unwrap_err().contains("unknown"));
        assert!(parse(&["--reorder"]).unwrap_err().contains("--reorder"));
        assert!(parse(&["--reorder", "hilbert"])
            .unwrap_err()
            .contains("hilbert"));
    }

    #[test]
    fn usage_names_every_flag() {
        for flag in ["--quick", "--seed", "--out", "--threads", "--reorder"] {
            assert!(USAGE.contains(flag), "USAGE missing {flag}");
        }
    }
}
