//! Regenerate Figure 1(a–c): size-resolved conductance and two
//! niceness measures, spectral (LocalSpectral) vs flow (Metis+MQI),
//! on the AtP-DBLP surrogate network.
//!
//! ```text
//! cargo run --release -p acir-bench --bin fig1 [-- --quick] [--seed N] [--out DIR] [--threads N]
//! ```

use acir::experiment::ExperimentContext;
use acir::figures::fig1::{run_fig1, Fig1Config};
use acir_bench::BinArgs;
use acir_graph::gen::community::SocialNetworkParams;
use acir_partition::ncp::NcpOptions;

fn main() {
    let args = BinArgs::parse();
    let ctx = ExperimentContext::new(&args.out_dir, args.seed);

    let cfg = if args.quick {
        Fig1Config {
            network: SocialNetworkParams {
                core_nodes: 800,
                core_attach: 3,
                communities: 16,
                community_size_range: (6, 150),
                whiskers: 50,
                whisker_max_len: 8,
                ..Default::default()
            },
            ncp: NcpOptions {
                min_size: 2,
                max_size: 400,
                seeds: 24,
                alphas: vec![0.2, 0.05, 0.01],
                epsilons: vec![1e-3, 1e-4],
                threads: args.threads.unwrap_or(4),
                ..Default::default()
            },
            asp_samples: 24,
        }
    } else {
        Fig1Config {
            network: SocialNetworkParams {
                core_nodes: 8000,
                core_attach: 4,
                communities: 80,
                community_size_range: (8, 2000),
                whiskers: 300,
                whisker_max_len: 15,
                ..Default::default()
            },
            ncp: NcpOptions {
                min_size: 2,
                max_size: 10_000,
                seeds: 96,
                alphas: vec![0.3, 0.1, 0.03, 0.01],
                epsilons: vec![1e-3, 1e-4, 1e-5],
                threads: args.threads.unwrap_or(8),
                ..Default::default()
            },
            asp_samples: 48,
        }
    };

    let t0 = std::time::Instant::now();
    let result = run_fig1(&ctx, &cfg).expect("fig1 run failed");
    println!("{}", result.render());
    let (flow_phi, spec_asp, spec_ratio, cmp) = result.headline();
    println!(
        "headline: over {cmp} comparable size bins — flow wins conductance {flow_phi}/{cmp}, \
         spectral wins avg-path {spec_asp}/{cmp}, spectral wins ext/int ratio {spec_ratio}/{cmp}"
    );
    println!(
        "artifacts: {}/fig1a.csv, fig1b.csv, fig1c.csv (elapsed {:.1?})",
        args.out_dir.display(),
        t0.elapsed()
    );
}
