//! Case study §3.3: strong locality of the operational methods vs the
//! whole-graph MOV optimization approach, and the seed-exclusion
//! curiosity.
//!
//! ```text
//! cargo run --release -p acir-bench --bin casestudy3 [-- --quick] [--seed N] [--out DIR] [--threads N]
//! ```

use acir::experiment::ExperimentContext;
use acir::figures::casestudy3::{run_locality, run_seed_exclusion, CaseStudy3Config};
use acir_bench::BinArgs;

fn main() {
    let args = BinArgs::parse();
    let ctx = ExperimentContext::new(&args.out_dir, args.seed);
    let cfg = if args.quick {
        CaseStudy3Config {
            ambient_sizes: vec![1_000, 5_000],
            cluster_size: 60,
            include_mov: true,
            ..Default::default()
        }
    } else {
        CaseStudy3Config {
            ambient_sizes: vec![1_000, 10_000, 100_000, 300_000],
            cluster_size: 100,
            // MOV on 300k nodes is exactly the "touches everything"
            // pain the paper describes; keep it on to measure it.
            include_mov: true,
            ..Default::default()
        }
    };

    println!("== C3-local / C3-cheeger: work scales with output, not graph size ==");
    println!(
        "(planted {}-node cluster; push/nibble/hk are strongly local; MOV touches all n)\n",
        cfg.cluster_size
    );
    let t0 = std::time::Instant::now();
    let t = run_locality(&ctx, &cfg).expect("locality run failed");
    println!("{t}");
    println!("(elapsed {:.1?})\n", t0.elapsed());

    println!("== C3-seed: a seed node need not join its own cluster ==");
    let (cluster, stray, included) = run_seed_exclusion(&cfg).expect("seed demo failed");
    println!(
        "seed set = {{clique member 405, stray node {stray}}}; swept cluster = {} nodes \
         ({} of the 20-clique); stray seed included: {included}",
        cluster.len(),
        cluster.iter().filter(|&&u| (400..420).contains(&u)).count()
    );
    println!(
        "\nartifacts: {}/casestudy3_locality.csv",
        args.out_dir.display()
    );
}
