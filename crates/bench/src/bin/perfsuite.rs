//! Wall-clock perfsuite for the deterministic parallel execution layer
//! and the memory-locality work.
//!
//! Times four kernels — SpMV on the normalized Laplacian, a batch of
//! PPR push runs, the Lanczos Fiedler solve, and a quick NCP sweep —
//! on the Figure-1 social surrogate at 1/2/4/8 worker threads, checks
//! that every kernel's output is bit-identical across thread counts,
//! and writes the timings to `BENCH_parallel.json` in the working
//! directory (repo root, when run from there). A second, single-thread
//! section measures the locality layer — CSR bandwidth under the RCM
//! and degree orderings, reordered-vs-original SpMV and NCP timings,
//! and steady-state heap-allocation counts of `ppr_push` under the
//! process-wide counting allocator — and writes `BENCH_locality.json`.
//! A third section compares the pluggable SpMV storage layouts
//! (scalar CSR, unrolled, SELL-C-σ, merge-based, and the `auto`
//! policy) on the generator suite — three power-law graphs and a
//! uniform-degree control — asserting bitwise-identical products and
//! writing `BENCH_spmv.json`. A fourth section measures the hub-sketch
//! splice path (DESIGN.md §13) on forest-fire and R-MAT generators:
//! residual mass pushed and nodes touched per query, cold push vs
//! sketch-spliced at equal certified ε, swept over hub-coverage
//! levels, with the parallel sketch build and splice asserted
//! bit-identical at 1 and 4 threads — writing `BENCH_sketch.json`.
//! Its ≥5× mass gate is *never* waived on degraded hosts: the gated
//! quantities are deterministic operation counts, not wall times.
//! A fifth section streams seeded single-edge deltas through the
//! delta-overlay CSR (DESIGN.md §14), repairing hub sketches and
//! cached answers with the push-style residual-repair kernel while
//! also recomputing them from scratch, and writes `BENCH_dynamic.json`
//! gating repair at ≥10× less push work than rebuild — the same
//! deterministic-counter discipline, never waived.
//! A sixth section drives the serving engine's snapshot lifecycle
//! (DESIGN.md §15): open-loop queries pin the head snapshot at
//! admission while staged writers publish edge deltas and relabeling
//! compactions at every interleaving point mid-flight; every response
//! is replayed bitwise against a `ppr_push` oracle on its pinned
//! snapshot and the run is asserted bit-identical at 1 and 4 threads,
//! writing `BENCH_snapshot.json`. Its gate — zero half-applied-delta
//! observations, with responses on superseded snapshots actually
//! observed — is likewise never waived.
//! All files are re-read and validated before the process exits, so a
//! committed artifact always parses.
//! Hosts that expose a single CPU are flagged `degraded_host: true`
//! in every artifact (and warned about on stderr): parallel speedups
//! there are bounded by 1 and say nothing about the kernels.
//!
//! ```text
//! cargo run --release -p acir-bench --bin perfsuite [-- --quick] [--seed N] [--threads N] [--reorder M]
//! ```
//!
//! `--threads N` caps the sweep at N (the env override applies to every
//! other binary; here the sweep *is* the thread axis, so the flag
//! truncates it instead). `--reorder rcm|degree` relabels the surrogate
//! before the parallel sweep (the locality section always compares
//! orderings regardless). Speedups are relative to the 1-thread row of
//! the same kernel; `host_cpus` records how much hardware parallelism
//! the host actually had, since speedup on a 1-CPU host is bounded by 1.

use std::collections::BTreeMap;
use std::time::Instant;

use acir::prelude::*;
use acir::serve::{Admission, Engine, EngineConfig, PublishPoint, Query, ResponseKind, WriteOp};
use acir_bench::BinArgs;
use acir_graph::gen::community::{social_network, SocialNetworkParams};
use acir_graph::gen::random::{barabasi_albert, forest_fire, rmat, watts_strogatz};
use acir_graph::snapshot::CompactionOrder;
use acir_graph::traversal::largest_component;
use acir_graph::{bandwidth_stats, DeltaGraph, EdgeOp, Permutation};
use acir_linalg::{spmv_layout_scope, CsrMatrix, MergePlan, SellCSigma, SpmvLayout};
use acir_local::{
    build_hub_sketches, ppr_push, ppr_push_ctx, ppr_push_spliced, ppr_push_ws,
    repair::{ppr_repair, RepairRequest, DEFAULT_REPAIR_MASS_THRESHOLD},
    repair_hub_sketches, PushResult, PushWorkspace,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde_json::Value;

/// Count every heap allocation the suite makes, so the locality section
/// can report allocs-per-call for the steady-state diffusion kernels.
#[global_allocator]
static ALLOC: acir_mem::CountingAlloc = acir_mem::CountingAlloc;

/// Thread counts the suite sweeps, ascending (validated on re-read).
const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// Where the parallel-sweep artifact lands, relative to the working
/// directory.
const OUT_FILE: &str = "BENCH_parallel.json";

/// Where the locality artifact lands.
const LOCALITY_FILE: &str = "BENCH_locality.json";

/// Where the SpMV layout-comparison artifact lands.
const SPMV_FILE: &str = "BENCH_spmv.json";

/// Where the hub-sketch splice artifact lands.
const SKETCH_FILE: &str = "BENCH_sketch.json";

/// The factor by which the best hub-coverage level must cut the
/// residual mass pushed per query (spliced vs cold, equal certified ε)
/// on every power-law generator. Unlike the wall-clock gates this one
/// is never waived: mass pushed and nodes touched are deterministic
/// counts, identical on any host.
const SKETCH_TARGET_RATIO: f64 = 5.0;

/// Where the dynamic-graph (delta + residual repair) artifact lands.
const DYNAMIC_FILE: &str = "BENCH_dynamic.json";

/// Where the snapshot-consistency artifact lands.
const SNAPSHOT_FILE: &str = "BENCH_snapshot.json";

/// The factor by which incremental residual repair must cut total push
/// work (hub sketches + cached answers) relative to a from-scratch
/// rebuild after a single-edge delta, on every power-law generator.
/// Like the sketch gate, this one is *never* waived: pushes are
/// deterministic counts, identical on any host.
const DYNAMIC_TARGET_RATIO: f64 = 10.0;

/// The speedup a power-law graph must show under some alternate layout
/// for `target_met` (waived when `degraded_host` — a 1-CPU host cannot
/// demonstrate parallel wins, only record the measured ratio).
const SPMV_TARGET_SPEEDUP: f64 = 2.0;

struct KernelTiming {
    kernel: &'static str,
    /// `(threads, best-of-reps seconds)` in sweep order.
    rows: Vec<(usize, f64)>,
}

fn main() {
    let args = BinArgs::parse();
    let sweep: Vec<usize> = match args.threads {
        Some(cap) => THREAD_SWEEP.iter().copied().filter(|&t| t <= cap).collect(),
        None => THREAD_SWEEP.to_vec(),
    };
    assert!(
        !sweep.is_empty(),
        "--threads below 1 leaves nothing to sweep"
    );
    if host_cpus() == 1 {
        eprintln!(
            "perfsuite: WARNING: host exposes a single CPU; parallel speedups are \
             bounded by 1, so every artifact this run writes carries \
             `degraded_host: true` and its thread-scaling numbers only prove \
             bit-identity, not performance"
        );
    }

    let mut rng = StdRng::seed_from_u64(args.seed);
    let params = if args.quick {
        SocialNetworkParams {
            core_nodes: 800,
            core_attach: 3,
            communities: 16,
            community_size_range: (6, 150),
            whiskers: 50,
            whisker_max_len: 8,
            ..Default::default()
        }
    } else {
        // Mid-size cut of the fig1 surrogate: big enough that every
        // kernel takes its parallel path, small enough that the full
        // 4-count sweep of the Lanczos solve stays in CI-friendly time.
        SocialNetworkParams {
            core_nodes: 3000,
            core_attach: 4,
            communities: 40,
            community_size_range: (8, 600),
            whiskers: 150,
            whisker_max_len: 12,
            ..Default::default()
        }
    };
    let pc = social_network(&mut rng, &params).expect("surrogate generation failed");
    let (g, _) = largest_component(&pc.graph);
    let g = match args.reorder.permutation(&g) {
        Some(p) => {
            let rg = g.permute(&p).expect("reorder permutation failed");
            println!(
                "perfsuite: --reorder {} shrank CSR bandwidth {} -> {}",
                args.reorder,
                bandwidth_stats(&g).max,
                bandwidth_stats(&rg).max,
            );
            rg
        }
        None => g,
    };
    let reps = if args.quick { 3 } else { 5 };
    println!(
        "perfsuite: fig1 surrogate LCC with {} nodes / {} edges; sweeping {:?} threads, best of {} reps",
        g.n(),
        g.m(),
        sweep,
        reps,
    );

    let timings = vec![
        bench_spmv(&g, &sweep, if args.quick { 20 } else { 50 }, reps),
        bench_ppr_batch(&g, &sweep, if args.quick { 8 } else { 32 }, reps),
        bench_fiedler(&g, &sweep, reps.min(2)),
        bench_ncp_quick(&g, &sweep, args.seed, reps),
    ];

    for t in &timings {
        let base = t.rows[0].1;
        for &(threads, secs) in &t.rows {
            println!(
                "  {:<14} threads={threads}  {:>9.3} ms  speedup {:.2}x",
                t.kernel,
                secs * 1e3,
                base / secs
            );
        }
    }

    let doc = render(&args, &g, &sweep, &timings);
    let text = serde_json::to_string_pretty(&doc);
    std::fs::write(OUT_FILE, format!("{text}\n")).expect("writing BENCH_parallel.json failed");

    validate(&std::fs::read_to_string(OUT_FILE).expect("re-reading artifact failed"));
    println!("wrote {OUT_FILE} (validated: parses, thread counts monotone)");

    let locality = bench_locality(&g, &args, reps);
    let text = serde_json::to_string_pretty(&locality);
    std::fs::write(LOCALITY_FILE, format!("{text}\n")).expect("writing BENCH_locality.json failed");
    validate_locality(&std::fs::read_to_string(LOCALITY_FILE).expect("re-reading artifact failed"));
    println!("wrote {LOCALITY_FILE} (validated: parses, zero steady-state allocs)");

    let spmv = bench_spmv_layouts(&args, reps);
    let text = serde_json::to_string_pretty(&spmv);
    std::fs::write(SPMV_FILE, format!("{text}\n")).expect("writing BENCH_spmv.json failed");
    validate_spmv(&std::fs::read_to_string(SPMV_FILE).expect("re-reading artifact failed"));
    println!("wrote {SPMV_FILE} (validated: parses, layouts bit-identical, speedup gate)");

    let sketch = bench_sketch(&args);
    let text = serde_json::to_string_pretty(&sketch);
    std::fs::write(SKETCH_FILE, format!("{text}\n")).expect("writing BENCH_sketch.json failed");
    validate_sketch(&std::fs::read_to_string(SKETCH_FILE).expect("re-reading artifact failed"));
    println!(
        "wrote {SKETCH_FILE} (validated: parses, bit-identical, ≥{SKETCH_TARGET_RATIO}x mass gate)"
    );

    let dynamic = bench_dynamic(&args);
    let text = serde_json::to_string_pretty(&dynamic);
    std::fs::write(DYNAMIC_FILE, format!("{text}\n")).expect("writing BENCH_dynamic.json failed");
    validate_dynamic(&std::fs::read_to_string(DYNAMIC_FILE).expect("re-reading artifact failed"));
    println!(
        "wrote {DYNAMIC_FILE} (validated: parses, bit-identical, ≥{DYNAMIC_TARGET_RATIO}x repair gate)"
    );

    let snapshot = bench_snapshot(&args);
    let text = serde_json::to_string_pretty(&snapshot);
    std::fs::write(SNAPSHOT_FILE, format!("{text}\n")).expect("writing BENCH_snapshot.json failed");
    validate_snapshot(&std::fs::read_to_string(SNAPSHOT_FILE).expect("re-reading artifact failed"));
    println!(
        "wrote {SNAPSHOT_FILE} (validated: parses, zero torn reads, superseded snapshots exercised)"
    );
}

/// Hardware parallelism the host actually exposes.
fn host_cpus() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Run `f` `reps` times under each thread count in `sweep`, returning
/// the best wall time per count; `check` receives every result and the
/// 1-thread reference so kernels prove bit-identity while being timed.
fn sweep_kernel<T>(
    kernel: &'static str,
    sweep: &[usize],
    reps: usize,
    mut f: impl FnMut() -> T,
    check: impl Fn(&T, &T),
) -> KernelTiming {
    let mut rows = Vec::new();
    let mut reference: Option<T> = None;
    for &threads in sweep {
        std::env::set_var(THREADS_ENV, threads.to_string());
        let mut best = f64::INFINITY; // first call doubles as warmup
        let mut last = None;
        for _ in 0..reps {
            let t0 = Instant::now();
            let out = f();
            best = best.min(t0.elapsed().as_secs_f64());
            last = Some(out);
        }
        let out = last.expect("reps >= 1");
        match &reference {
            None => reference = Some(out),
            Some(r) => check(r, &out),
        }
        rows.push((threads, best));
    }
    std::env::remove_var(THREADS_ENV);
    KernelTiming { kernel, rows }
}

fn bench_spmv(g: &Graph, sweep: &[usize], iters: usize, reps: usize) -> KernelTiming {
    let l = normalized_laplacian(g);
    let x: Vec<f64> = (0..l.ncols())
        .map(|i| 1.0 + (i % 17) as f64 / 17.0)
        .collect();
    sweep_kernel(
        "spmv",
        sweep,
        reps,
        || {
            let mut y = vec![0.0; l.nrows()];
            for _ in 0..iters {
                l.matvec(&x, &mut y);
            }
            y
        },
        |a, b| assert_eq!(a, b, "spmv must be bit-identical across thread counts"),
    )
}

fn bench_ppr_batch(g: &Graph, sweep: &[usize], batch: usize, reps: usize) -> KernelTiming {
    let seed_sets: Vec<Vec<NodeId>> = (0..batch)
        .map(|i| vec![(i * g.n() / batch) as NodeId])
        .collect();
    sweep_kernel(
        "ppr_batch",
        sweep,
        reps,
        || ppr_push_batch(g, &seed_sets, 0.05, 1e-4).expect("ppr_push_batch failed"),
        |a, b| {
            assert_eq!(a.len(), b.len());
            for (ra, rb) in a.iter().zip(b) {
                assert_eq!(
                    ra.vector, rb.vector,
                    "ppr_batch must be bit-identical across thread counts"
                );
            }
        },
    )
}

fn bench_fiedler(g: &Graph, sweep: &[usize], reps: usize) -> KernelTiming {
    sweep_kernel(
        "lanczos_fiedler",
        sweep,
        reps,
        || fiedler_vector(g).expect("fiedler_vector failed"),
        |a, b| {
            assert_eq!(
                a.vector, b.vector,
                "fiedler must be bit-identical across thread counts"
            );
            assert_eq!(a.lambda2.to_bits(), b.lambda2.to_bits());
        },
    )
}

fn bench_ncp_quick(g: &Graph, sweep: &[usize], seed: u64, reps: usize) -> KernelTiming {
    let opts = NcpOptions {
        min_size: 2,
        max_size: 400,
        seeds: 12,
        alphas: vec![0.1, 0.01],
        epsilons: vec![1e-3],
        rng_seed: seed ^ 0x5eed,
        ..Default::default()
    };
    sweep_kernel(
        "ncp_quick",
        sweep,
        reps,
        || ncp_local_spectral(g, &opts).expect("ncp_local_spectral failed"),
        |a, b| {
            assert_eq!(a.len(), b.len());
            for (pa, pb) in a.iter().zip(b) {
                assert_eq!(pa.size, pb.size);
                assert_eq!(
                    pa.conductance.to_bits(),
                    pb.conductance.to_bits(),
                    "ncp must be bit-identical across thread counts"
                );
            }
        },
    )
}

fn render(args: &BinArgs, g: &Graph, sweep: &[usize], timings: &[KernelTiming]) -> Value {
    let host_cpus = host_cpus();
    let mut root = BTreeMap::new();
    root.insert("schema".into(), Value::from("acir-bench-parallel-v1"));
    root.insert("host_cpus".into(), Value::from(host_cpus));
    root.insert("degraded_host".into(), Value::from(host_cpus == 1));
    root.insert("quick".into(), Value::from(args.quick));
    root.insert("seed".into(), Value::from(args.seed));
    let mut graph = BTreeMap::new();
    graph.insert("nodes".into(), Value::from(g.n()));
    graph.insert("edges".into(), Value::from(g.m()));
    root.insert("graph".into(), Value::Object(graph));
    root.insert(
        "thread_counts".into(),
        Value::Array(sweep.iter().map(|&t| Value::from(t)).collect()),
    );
    let kernels = timings
        .iter()
        .map(|t| {
            let base = t.rows[0].1;
            let mut k = BTreeMap::new();
            k.insert("kernel".into(), Value::from(t.kernel));
            k.insert(
                "results".into(),
                Value::Array(
                    t.rows
                        .iter()
                        .map(|&(threads, secs)| {
                            let mut r = BTreeMap::new();
                            r.insert("threads".into(), Value::from(threads));
                            r.insert("secs".into(), Value::from(secs));
                            r.insert("speedup".into(), Value::from(base / secs));
                            Value::Object(r)
                        })
                        .collect(),
                ),
            );
            Value::Object(k)
        })
        .collect();
    root.insert("kernels".into(), Value::Array(kernels));
    Value::Object(root)
}

/// Best-of-`reps` wall time of `f` (first call doubles as warmup).
fn best_of<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        std::hint::black_box(f());
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// Per-call allocator traffic and wall time of `f` over `calls`
/// steady-state invocations (three warmup calls first).
fn steady_state_allocs<T>(calls: usize, mut f: impl FnMut() -> T) -> (f64, f64, f64) {
    for _ in 0..3 {
        std::hint::black_box(f());
    }
    let before = acir_mem::snapshot();
    let t0 = Instant::now();
    for _ in 0..calls {
        std::hint::black_box(f());
    }
    let secs = t0.elapsed().as_secs_f64();
    let delta = acir_mem::snapshot().since(&before);
    let n = calls as f64;
    (
        delta.heap_events() as f64 / n,
        delta.bytes as f64 / n,
        secs / n,
    )
}

/// The single-thread locality section: CSR bandwidth under each
/// ordering, reordered-vs-original SpMV and NCP wall times, and
/// steady-state allocation counts of the PPR push kernel.
fn bench_locality(g: &Graph, args: &BinArgs, reps: usize) -> Value {
    std::env::set_var(THREADS_ENV, "1");
    let bw_orig = bandwidth_stats(g);
    let rcm = Permutation::rcm(g);
    let g_rcm = g.permute(&rcm).expect("RCM permute failed");
    let bw_rcm = bandwidth_stats(&g_rcm);
    let deg = Permutation::degree_descending(g);
    let g_deg = g.permute(&deg).expect("degree permute failed");
    let bw_deg = bandwidth_stats(&g_deg);
    println!(
        "locality: CSR bandwidth max/mean  original {}/{:.1}  rcm {}/{:.1}  degree {}/{:.1}",
        bw_orig.max, bw_orig.mean, bw_rcm.max, bw_rcm.mean, bw_deg.max, bw_deg.mean,
    );

    // SpMV: same matvec count as the parallel sweep, original vs RCM.
    let iters = if args.quick { 20 } else { 50 };
    let mut kernels: Vec<(&str, &str, f64)> = Vec::new();
    for (variant, graph) in [("original", g), ("rcm", &g_rcm)] {
        let l = normalized_laplacian(graph);
        let x: Vec<f64> = (0..l.ncols())
            .map(|i| 1.0 + (i % 17) as f64 / 17.0)
            .collect();
        let mut y = vec![0.0; l.nrows()];
        let secs = best_of(reps, || {
            for _ in 0..iters {
                l.matvec(&x, &mut y);
            }
        });
        kernels.push(("spmv", variant, secs));
    }

    // Steady-state PPR push: the pooled public entry point and the
    // caller-owned-workspace variant, with allocator traffic per call.
    let seeds = [(g.n() / 2) as NodeId];
    let calls = if args.quick { 50 } else { 200 };
    let (pooled_allocs, pooled_bytes, pooled_secs) = steady_state_allocs(calls, || {
        ppr_push(g, &seeds, 0.05, 1e-4).expect("ppr_push failed")
    });
    let mut ws = PushWorkspace::new();
    let mut out = PushResult::empty();
    let (ws_allocs, ws_bytes, ws_secs) = steady_state_allocs(calls, || {
        ppr_push_ws(g, &seeds, 0.05, 1e-4, &mut ws, &mut out).expect("ppr_push_ws failed")
    });
    // The unified-core seam: an inert KernelCtx constructed directly at
    // the call site must cost the same as the plain pooled entry point.
    let (ctx_allocs, ctx_bytes, ctx_secs) = steady_state_allocs(calls, || {
        let mut ctx = KernelCtx::new();
        match ppr_push_ctx(g, &seeds, 0.05, 1e-4, &mut ctx).expect("ppr_push_ctx failed") {
            SolverOutcome::Converged { value, .. } => value,
            _ => unreachable!("inert context"),
        }
    });
    kernels.push(("ppr_push_steady", "pooled", pooled_secs));
    kernels.push(("ppr_push_steady", "workspace", ws_secs));
    kernels.push(("ppr_push_steady", "ctx", ctx_secs));
    println!(
        "locality: ppr_push steady state  pooled {pooled_allocs:.2} allocs/call ({pooled_bytes:.0} B)  workspace {ws_allocs:.2} allocs/call ({ws_bytes:.0} B)  ctx {ctx_allocs:.2} allocs/call ({ctx_bytes:.0} B)",
    );

    // NCP quick sweep, original vs RCM ordering (timing only: the
    // reordered run visits seeds under new labels, so outputs differ by
    // the relabeling while total work stays comparable).
    let opts = NcpOptions {
        min_size: 2,
        max_size: 400,
        seeds: 12,
        alphas: vec![0.1, 0.01],
        epsilons: vec![1e-3],
        rng_seed: args.seed ^ 0x5eed,
        ..Default::default()
    };
    for (variant, graph) in [("original", g), ("rcm", &g_rcm)] {
        let secs = best_of(reps.min(2), || {
            ncp_local_spectral(graph, &opts).expect("ncp_local_spectral failed")
        });
        kernels.push(("ncp_quick", variant, secs));
    }
    std::env::remove_var(THREADS_ENV);

    for &(kernel, variant, secs) in &kernels {
        println!("  {kernel:<16} {variant:<9} {:>9.3} ms", secs * 1e3);
    }

    let bw = |s: acir_graph::BandwidthStats| {
        let mut m = BTreeMap::new();
        m.insert("max".into(), Value::from(s.max));
        m.insert("mean".into(), Value::from(s.mean));
        Value::Object(m)
    };
    let alloc_row = |allocs: f64, bytes: f64| {
        let mut m = BTreeMap::new();
        m.insert("allocs_per_call".into(), Value::from(allocs));
        m.insert("bytes_per_call".into(), Value::from(bytes));
        Value::Object(m)
    };
    let mut root = BTreeMap::new();
    root.insert("schema".into(), Value::from("acir-bench-locality-v1"));
    root.insert("quick".into(), Value::from(args.quick));
    root.insert("seed".into(), Value::from(args.seed));
    root.insert("reorder".into(), Value::from(args.reorder.to_string()));
    let mut graph = BTreeMap::new();
    graph.insert("nodes".into(), Value::from(g.n()));
    graph.insert("edges".into(), Value::from(g.m()));
    root.insert("graph".into(), Value::Object(graph));
    let mut bws = BTreeMap::new();
    bws.insert("original".into(), bw(bw_orig));
    bws.insert("rcm".into(), bw(bw_rcm));
    bws.insert("degree".into(), bw(bw_deg));
    root.insert("bandwidth".into(), Value::Object(bws));
    root.insert(
        "kernels".into(),
        Value::Array(
            kernels
                .iter()
                .map(|&(kernel, variant, secs)| {
                    let mut r = BTreeMap::new();
                    r.insert("kernel".into(), Value::from(kernel));
                    r.insert("variant".into(), Value::from(variant));
                    r.insert("secs".into(), Value::from(secs));
                    Value::Object(r)
                })
                .collect(),
        ),
    );
    let mut alloc = BTreeMap::new();
    alloc.insert("pooled".into(), alloc_row(pooled_allocs, pooled_bytes));
    alloc.insert("workspace".into(), alloc_row(ws_allocs, ws_bytes));
    root.insert("ppr_alloc".into(), Value::Object(alloc));
    Value::Object(root)
}

/// CI-grade checks on the locality artifact: it parses, names the
/// expected schema, records all three orderings with finite bandwidth,
/// has positive timings, and — the regression gate — the caller-owned
/// workspace path of `ppr_push` performed zero steady-state heap
/// allocations.
fn validate_locality(text: &str) {
    let doc: Value = serde_json::from_str(text).expect("BENCH_locality.json does not parse");
    assert_eq!(
        doc.get("schema").and_then(Value::as_str),
        Some("acir-bench-locality-v1"),
        "schema marker missing"
    );
    let bws = doc
        .get("bandwidth")
        .and_then(Value::as_object)
        .expect("bandwidth object missing");
    for key in ["original", "rcm", "degree"] {
        let b = bws.get(key).and_then(Value::as_object).expect(key);
        assert!(b.get("max").and_then(Value::as_u64).is_some(), "{key}.max");
        assert!(
            b.get("mean").and_then(Value::as_f64).unwrap_or(-1.0) >= 0.0,
            "{key}.mean"
        );
    }
    let kernels = doc
        .get("kernels")
        .and_then(Value::as_array)
        .expect("kernels array missing");
    assert!(!kernels.is_empty(), "no locality kernels recorded");
    for k in kernels {
        let secs = k.get("secs").and_then(Value::as_f64).expect("secs");
        assert!(secs > 0.0, "non-positive locality timing");
    }
    let ws = doc
        .get("ppr_alloc")
        .and_then(|a| a.get("workspace"))
        .and_then(Value::as_object)
        .expect("ppr_alloc.workspace missing");
    assert_eq!(
        ws.get("allocs_per_call").and_then(Value::as_f64),
        Some(0.0),
        "steady-state ppr_push_ws must not allocate"
    );
}

/// The same checks the CI smoke runs: the artifact parses, names the
/// expected schema, and every kernel's thread counts ascend strictly
/// with positive timings.
fn validate(text: &str) {
    let doc = serde_json::from_str(text).expect("BENCH_parallel.json does not parse");
    assert_eq!(
        doc.get("schema").and_then(Value::as_str),
        Some("acir-bench-parallel-v1"),
        "schema marker missing"
    );
    let cpus = doc.get("host_cpus").and_then(Value::as_u64).unwrap_or(0);
    assert!(cpus >= 1);
    assert_eq!(
        doc.get("degraded_host").and_then(Value::as_bool),
        Some(cpus == 1),
        "degraded_host must record whether the host exposed a single CPU"
    );
    let kernels = doc
        .get("kernels")
        .and_then(Value::as_array)
        .expect("kernels array missing");
    assert!(!kernels.is_empty(), "no kernels recorded");
    for k in kernels {
        let name = k
            .get("kernel")
            .and_then(Value::as_str)
            .expect("kernel name");
        let results = k
            .get("results")
            .and_then(Value::as_array)
            .expect("results array");
        assert!(!results.is_empty(), "{name}: empty results");
        let mut prev = 0u64;
        for r in results {
            let threads = r.get("threads").and_then(Value::as_u64).expect("threads");
            let secs = r.get("secs").and_then(Value::as_f64).expect("secs");
            assert!(
                threads > prev,
                "{name}: thread counts must be strictly increasing"
            );
            assert!(secs > 0.0, "{name}: non-positive timing");
            prev = threads;
        }
    }
}

/// The SpMV layout-comparison section: the normalized Laplacian of
/// each generator-suite graph (three power-law families plus a
/// uniform-degree control) multiplied under every storage layout, at
/// one and four worker threads, with every product checked bit-for-bit
/// against the 1-thread scalar-CSR reference. Also records the static
/// layout geometry — SELL padding overhead and the merge plan's part /
/// boundary-row counts — so a committed artifact explains *why* a
/// layout won on a given degree distribution.
fn bench_spmv_layouts(args: &BinArgs, reps: usize) -> Value {
    let mut rng = StdRng::seed_from_u64(args.seed ^ 0x5e11);
    let iters: usize = if args.quick { 20 } else { 50 };
    let cpus = host_cpus();
    let degraded_host = cpus == 1;
    let thread_counts: Vec<usize> = [1usize, 4]
        .into_iter()
        .filter(|&t| args.threads.map_or(true, |cap| t <= cap))
        .collect();
    const LAYOUTS: [SpmvLayout; 5] = [
        SpmvLayout::Csr,
        SpmvLayout::Unrolled,
        SpmvLayout::Sell,
        SpmvLayout::Merge,
        SpmvLayout::Auto,
    ];

    let graphs: Vec<(&'static str, &'static str, Graph)> = vec![
        (
            "barabasi_albert",
            "power_law",
            barabasi_albert(&mut rng, if args.quick { 4_000 } else { 20_000 }, 8)
                .expect("barabasi_albert failed"),
        ),
        (
            "forest_fire",
            "power_law",
            forest_fire(&mut rng, if args.quick { 3_000 } else { 12_000 }, 0.37)
                .expect("forest_fire failed"),
        ),
        (
            "rmat",
            "power_law",
            rmat(
                &mut rng,
                if args.quick { 12 } else { 14 },
                8,
                (0.57, 0.19, 0.19, 0.05),
            )
            .expect("rmat failed"),
        ),
        (
            "watts_strogatz",
            "uniform",
            watts_strogatz(&mut rng, if args.quick { 4_000 } else { 20_000 }, 8, 0.1)
                .expect("watts_strogatz failed"),
        ),
    ];

    let mut best_powerlaw_speedup = 0.0f64;
    let mut graph_docs = Vec::new();
    for (name, family, raw) in &graphs {
        let (g, _) = largest_component(raw);
        let l: CsrMatrix = normalized_laplacian(&g);
        let x: Vec<f64> = (0..l.ncols())
            .map(|i| 1.0 + (i % 17) as f64 / 17.0)
            .collect();

        // 1-thread scalar-CSR reference every layout must reproduce
        // bit-for-bit, at every thread count.
        std::env::set_var(THREADS_ENV, "1");
        let y_ref = {
            let _scope = spmv_layout_scope(SpmvLayout::Csr);
            let mut y = vec![0.0; l.nrows()];
            l.matvec(&x, &mut y);
            y
        };

        // Row shape (Laplacian row nnz = degree + diagonal) and the
        // static geometry of the two structural layouts.
        let max_row = (0..g.n())
            .map(|v| g.degree_unweighted(v as NodeId) + 1)
            .max()
            .unwrap_or(0);
        let mean_row = l.nnz() as f64 / l.nrows().max(1) as f64;
        let sell = SellCSigma::build(&l);
        let merge = MergePlan::build(&l);
        println!(
            "spmv[{name}] {} nodes / {} nnz  max/mean row {} / {:.1}  sell padding {:.3}x  merge parts {} (+{} boundary)",
            l.nrows(),
            l.nnz(),
            max_row,
            mean_row,
            sell.padded_nnz() as f64 / l.nnz().max(1) as f64,
            merge.n_parts(),
            merge.n_boundary_rows(),
        );

        let mut csr_secs: BTreeMap<usize, f64> = BTreeMap::new();
        let mut layout_docs = Vec::new();
        for layout in LAYOUTS {
            let mut results = Vec::new();
            for &threads in &thread_counts {
                std::env::set_var(THREADS_ENV, threads.to_string());
                let _scope = spmv_layout_scope(layout);
                let mut y = vec![0.0; l.nrows()];
                let secs = best_of(reps, || {
                    for _ in 0..iters {
                        l.matvec(&x, &mut y);
                    }
                }) / iters as f64;
                assert!(
                    y.iter()
                        .zip(&y_ref)
                        .all(|(a, b)| a.to_bits() == b.to_bits()),
                    "spmv[{name}] layout {layout} at {threads} threads diverged from scalar CSR"
                );
                let mut r = BTreeMap::new();
                r.insert("threads".into(), Value::from(threads));
                r.insert("secs".into(), Value::from(secs));
                if matches!(layout, SpmvLayout::Csr) {
                    csr_secs.insert(threads, secs);
                } else {
                    let speedup = csr_secs[&threads] / secs;
                    r.insert("speedup_vs_csr".into(), Value::from(speedup));
                    if *family == "power_law" {
                        best_powerlaw_speedup = best_powerlaw_speedup.max(speedup);
                    }
                }
                println!(
                    "  spmv[{name}] {:<8} threads={threads}  {:>9.3} µs/matvec",
                    layout.to_string(),
                    secs * 1e6,
                );
                results.push(Value::Object(r));
            }
            let mut k = BTreeMap::new();
            k.insert("layout".into(), Value::from(layout.to_string()));
            k.insert("results".into(), Value::Array(results));
            layout_docs.push(Value::Object(k));
        }
        std::env::remove_var(THREADS_ENV);

        let mut doc = BTreeMap::new();
        doc.insert("graph".into(), Value::from(*name));
        doc.insert("family".into(), Value::from(*family));
        doc.insert("nodes".into(), Value::from(l.nrows()));
        doc.insert("edges".into(), Value::from(g.m()));
        doc.insert("nnz".into(), Value::from(l.nnz()));
        doc.insert("max_row_nnz".into(), Value::from(max_row));
        doc.insert("mean_row_nnz".into(), Value::from(mean_row));
        let mut s = BTreeMap::new();
        s.insert("slices".into(), Value::from(sell.n_slices()));
        s.insert("padded_nnz".into(), Value::from(sell.padded_nnz()));
        s.insert(
            "padding_overhead".into(),
            Value::from(sell.padded_nnz() as f64 / l.nnz().max(1) as f64),
        );
        doc.insert("sell".into(), Value::Object(s));
        let mut m = BTreeMap::new();
        m.insert("parts".into(), Value::from(merge.n_parts()));
        m.insert("boundary_rows".into(), Value::from(merge.n_boundary_rows()));
        doc.insert("merge".into(), Value::Object(m));
        doc.insert("bit_identical".into(), Value::from(true));
        doc.insert("layouts".into(), Value::Array(layout_docs));
        graph_docs.push(Value::Object(doc));
    }

    let target_met = best_powerlaw_speedup >= SPMV_TARGET_SPEEDUP;
    println!(
        "spmv: best power-law speedup vs scalar CSR {best_powerlaw_speedup:.2}x (target {SPMV_TARGET_SPEEDUP:.1}x, {})",
        if target_met {
            "met"
        } else if degraded_host {
            "waived: degraded host"
        } else {
            "NOT met"
        },
    );

    let mut root = BTreeMap::new();
    root.insert("schema".into(), Value::from("acir-bench-spmv-v1"));
    root.insert("quick".into(), Value::from(args.quick));
    root.insert("seed".into(), Value::from(args.seed));
    root.insert("host_cpus".into(), Value::from(cpus));
    root.insert("degraded_host".into(), Value::from(degraded_host));
    root.insert("iters_per_timing".into(), Value::from(iters));
    root.insert(
        "thread_counts".into(),
        Value::Array(thread_counts.iter().map(|&t| Value::from(t)).collect()),
    );
    root.insert("graphs".into(), Value::Array(graph_docs));
    root.insert(
        "best_powerlaw_speedup".into(),
        Value::from(best_powerlaw_speedup),
    );
    root.insert("target_speedup".into(), Value::from(SPMV_TARGET_SPEEDUP));
    root.insert("target_met".into(), Value::from(target_met));
    Value::Object(root)
}

/// Deterministic per-query push counters summed over a query set.
#[derive(Default, Clone, Copy)]
struct SpliceCounters {
    mass_pushed: f64,
    touched: usize,
    pushes: usize,
    work: usize,
}

impl SpliceCounters {
    fn to_json(self) -> Value {
        let mut m = BTreeMap::new();
        m.insert("mass_pushed".into(), Value::from(self.mass_pushed));
        m.insert("touched".into(), Value::from(self.touched));
        m.insert("pushes".into(), Value::from(self.pushes));
        m.insert("work".into(), Value::from(self.work));
        Value::Object(m)
    }
}

/// The hub-sketch splice section (DESIGN.md §13): on each power-law
/// generator, run the same query set cold (direct `ppr_push`) and
/// spliced through hub sketches at several coverage levels, at equal
/// certified ε, recording residual mass pushed and nodes touched per
/// query plus the offline build cost. The gated quantities are
/// deterministic counts, so the ≥`SKETCH_TARGET_RATIO`× gate holds on
/// any host — no degraded-host waiver. The largest coverage level is
/// additionally built and spliced at 1 and 4 worker threads and
/// checked bit-for-bit.
fn bench_sketch(args: &BinArgs) -> Value {
    let mut rng = StdRng::seed_from_u64(args.seed ^ 0x5ce7c);
    // Deep diffusions (small α, tight ε) are where serving burns work
    // — and where parking the frontier on precomputed hubs pays.
    let alpha = 0.05;
    let epsilon = 1e-5;
    let eps_sketch = epsilon / 10.0;
    let queries = if args.quick { 16 } else { 32 };
    let hub_counts: [usize; 3] = [64, 256, 1024];

    let graphs: Vec<(&'static str, Graph)> = vec![
        (
            "forest_fire",
            largest_component(&forest_fire(&mut rng, 3_000, 0.37).expect("forest_fire failed")).0,
        ),
        (
            "rmat",
            largest_component(
                &rmat(&mut rng, 12, 8, (0.57, 0.19, 0.19, 0.05)).expect("rmat failed"),
            )
            .0,
        ),
    ];

    let mut all_met = true;
    let mut graph_docs = Vec::new();
    for (name, g) in &graphs {
        let n = g.n();
        let seeds: Vec<NodeId> = (0..queries)
            .map(|i| ((i * n) / queries) as NodeId)
            .collect();

        let mut cold = SpliceCounters::default();
        let cold_secs = best_of(1, || {
            cold = SpliceCounters::default();
            for &s in &seeds {
                let r = ppr_push(g, &[s], alpha, epsilon).expect("cold ppr_push failed");
                cold.mass_pushed += r.mass_pushed;
                cold.touched += r.touched;
                cold.pushes += r.pushes;
                cold.work += r.work;
            }
        });

        let mut best_mass_ratio = 0.0f64;
        let mut best_touched_ratio = 0.0f64;
        let mut sweep_docs = Vec::new();
        for &k in &hub_counts {
            let set = build_hub_sketches(g, k, alpha, eps_sketch).expect("hub sketch build failed");
            let mut spliced = SpliceCounters::default();
            let mut hubs_spliced = 0usize;
            let spliced_secs = best_of(1, || {
                spliced = SpliceCounters::default();
                hubs_spliced = 0;
                for &s in &seeds {
                    let r = ppr_push_spliced(g, &[s], alpha, epsilon, &set)
                        .expect("ppr_push_spliced failed");
                    assert!(
                        r.per_degree_bound <= epsilon * (1.0 + 1e-12),
                        "sketch[{name}] K={k}: certified bound {} exceeds ε {epsilon:e}",
                        r.per_degree_bound
                    );
                    spliced.mass_pushed += r.mass_pushed;
                    spliced.touched += r.touched;
                    spliced.pushes += r.pushes;
                    spliced.work += r.work;
                    hubs_spliced += r.hubs_spliced;
                }
            });
            let mass_ratio = cold.mass_pushed / spliced.mass_pushed.max(1e-12);
            let touched_ratio = cold.touched as f64 / spliced.touched.max(1) as f64;
            best_mass_ratio = best_mass_ratio.max(mass_ratio);
            best_touched_ratio = best_touched_ratio.max(touched_ratio);
            println!(
                "sketch[{name}] K={k:<5} mass {:.1} -> {:.1} ({mass_ratio:.1}x)  touched {} -> {} ({touched_ratio:.1}x)  build {} pushes",
                cold.mass_pushed,
                spliced.mass_pushed,
                cold.touched,
                spliced.touched,
                set.build_pushes(),
            );
            let mut row = BTreeMap::new();
            row.insert("hubs".into(), Value::from(set.len()));
            row.insert("build_pushes".into(), Value::from(set.build_pushes()));
            row.insert("spliced".into(), spliced.to_json());
            row.insert("secs".into(), Value::from(spliced_secs));
            row.insert("mass_ratio".into(), Value::from(mass_ratio));
            row.insert("touched_ratio".into(), Value::from(touched_ratio));
            row.insert(
                "hubs_spliced_per_query".into(),
                Value::from(hubs_spliced as f64 / queries as f64),
            );
            sweep_docs.push(Value::Object(row));
        }
        let met = best_mass_ratio >= SKETCH_TARGET_RATIO && best_touched_ratio > 1.0;
        all_met &= met;
        println!(
            "sketch[{name}] best mass ratio {best_mass_ratio:.1}x, best touched ratio {best_touched_ratio:.1}x (target {SKETCH_TARGET_RATIO:.0}x, {})",
            if met { "met" } else { "NOT met" },
        );

        // Thread-count invariance at the heaviest coverage level: the
        // parallel build and every spliced answer, bit for bit.
        let k = *hub_counts.last().expect("non-empty sweep");
        std::env::set_var(THREADS_ENV, "1");
        let set1 = build_hub_sketches(g, k, alpha, eps_sketch).expect("build at 1 thread failed");
        let sp1: Vec<_> = seeds
            .iter()
            .map(|&s| {
                ppr_push_spliced(g, &[s], alpha, epsilon, &set1).expect("splice at 1 thread failed")
            })
            .collect();
        std::env::set_var(THREADS_ENV, "4");
        let set4 = build_hub_sketches(g, k, alpha, eps_sketch).expect("build at 4 threads failed");
        let sp4: Vec<_> = seeds
            .iter()
            .map(|&s| {
                ppr_push_spliced(g, &[s], alpha, epsilon, &set4)
                    .expect("splice at 4 threads failed")
            })
            .collect();
        std::env::remove_var(THREADS_ENV);
        for (a, b) in set1.sketches().iter().zip(set4.sketches()) {
            assert_eq!(a.hub, b.hub, "sketch[{name}]: hub order diverged");
            assert_eq!(
                a.estimate, b.estimate,
                "sketch[{name}]: sketch build not bit-identical across thread counts"
            );
            assert_eq!(a.residual, b.residual);
        }
        for (a, b) in sp1.iter().zip(&sp4) {
            assert_eq!(
                a.vector, b.vector,
                "sketch[{name}]: splice not bit-identical across thread counts"
            );
        }

        let mut doc = BTreeMap::new();
        doc.insert("graph".into(), Value::from(*name));
        doc.insert("family".into(), Value::from("power_law"));
        doc.insert("nodes".into(), Value::from(n));
        doc.insert("edges".into(), Value::from(g.m()));
        doc.insert("queries".into(), Value::from(queries));
        doc.insert("cold".into(), cold.to_json());
        doc.insert("cold_secs".into(), Value::from(cold_secs));
        doc.insert("hub_sweep".into(), Value::Array(sweep_docs));
        doc.insert("best_mass_ratio".into(), Value::from(best_mass_ratio));
        doc.insert("best_touched_ratio".into(), Value::from(best_touched_ratio));
        doc.insert("target_met".into(), Value::from(met));
        doc.insert("bit_identical".into(), Value::from(true));
        graph_docs.push(Value::Object(doc));
    }

    let cpus = host_cpus();
    let mut root = BTreeMap::new();
    root.insert("schema".into(), Value::from("acir-bench-sketch-v1"));
    root.insert("quick".into(), Value::from(args.quick));
    root.insert("seed".into(), Value::from(args.seed));
    root.insert("host_cpus".into(), Value::from(cpus));
    root.insert("degraded_host".into(), Value::from(cpus == 1));
    root.insert("alpha".into(), Value::from(alpha));
    root.insert("epsilon".into(), Value::from(epsilon));
    root.insert("sketch_epsilon".into(), Value::from(eps_sketch));
    root.insert("target_ratio".into(), Value::from(SKETCH_TARGET_RATIO));
    root.insert("target_met".into(), Value::from(all_met));
    root.insert("graphs".into(), Value::Array(graph_docs));
    Value::Object(root)
}

/// CI-grade checks on the sketch artifact: it parses, names the
/// expected schema, covers both power-law generators with positive
/// deterministic counts, attests thread-count bit-identity, and — the
/// hard gate, never waived — every graph's best hub-coverage level
/// pushed at least `target_ratio`× less residual mass than the cold
/// push while touching fewer nodes.
fn validate_sketch(text: &str) {
    let doc: Value = serde_json::from_str(text).expect("BENCH_sketch.json does not parse");
    assert_eq!(
        doc.get("schema").and_then(Value::as_str),
        Some("acir-bench-sketch-v1"),
        "schema marker missing"
    );
    let target = doc
        .get("target_ratio")
        .and_then(Value::as_f64)
        .expect("target_ratio missing");
    let graphs = doc
        .get("graphs")
        .and_then(Value::as_array)
        .expect("graphs array missing");
    let names: Vec<&str> = graphs
        .iter()
        .map(|g| g.get("graph").and_then(Value::as_str).expect("graph name"))
        .collect();
    for expected in ["forest_fire", "rmat"] {
        assert!(names.contains(&expected), "generator {expected} missing");
    }
    for gdoc in graphs {
        let name = gdoc.get("graph").and_then(Value::as_str).expect("name");
        let cold = gdoc.get("cold").and_then(Value::as_object).expect("cold");
        assert!(
            cold.get("mass_pushed")
                .and_then(Value::as_f64)
                .unwrap_or(0.0)
                > 0.0,
            "{name}: cold pushed no mass"
        );
        let sweep = gdoc
            .get("hub_sweep")
            .and_then(Value::as_array)
            .expect("hub_sweep array");
        assert!(!sweep.is_empty(), "{name}: empty hub sweep");
        let mut prev = 0u64;
        for row in sweep {
            let hubs = row.get("hubs").and_then(Value::as_u64).expect("hubs");
            assert!(hubs > prev, "{name}: hub counts must ascend");
            prev = hubs;
            assert!(
                row.get("build_pushes").and_then(Value::as_u64).unwrap_or(0) > 0,
                "{name}: zero build cost recorded"
            );
            let ratio = row
                .get("mass_ratio")
                .and_then(Value::as_f64)
                .expect("mass_ratio");
            assert!(ratio.is_finite() && ratio > 0.0, "{name}: bogus ratio");
        }
        let best = gdoc
            .get("best_mass_ratio")
            .and_then(Value::as_f64)
            .expect("best_mass_ratio");
        let best_touched = gdoc
            .get("best_touched_ratio")
            .and_then(Value::as_f64)
            .expect("best_touched_ratio");
        assert_eq!(
            gdoc.get("bit_identical").and_then(Value::as_bool),
            Some(true),
            "{name}: thread-count bit-identity not attested"
        );
        assert_eq!(
            gdoc.get("target_met").and_then(Value::as_bool),
            Some(best >= target && best_touched > 1.0),
            "{name}: target_met inconsistent"
        );
        // The hard gate: deterministic counts, no degraded-host waiver.
        assert!(
            best >= target,
            "{name}: spliced queries pushed only {best:.2}x less mass than cold (target {target:.0}x)"
        );
        assert!(
            best_touched > 1.0,
            "{name}: spliced queries touched no fewer nodes than cold"
        );
    }
    assert_eq!(
        doc.get("target_met").and_then(Value::as_bool),
        Some(true),
        "sketch mass gate not met"
    );
}

/// CI-grade checks on the SpMV layout artifact: it parses, names the
/// expected schema, covers both degree families with every layout
/// recorded at positive timings and ascending thread counts, attests
/// bit-identity, keeps `degraded_host` consistent with `host_cpus`,
/// and — the perf gate — met the power-law speedup target unless the
/// host was degraded (a 1-CPU host records the measured ratio instead).
fn validate_spmv(text: &str) {
    let doc: Value = serde_json::from_str(text).expect("BENCH_spmv.json does not parse");
    assert_eq!(
        doc.get("schema").and_then(Value::as_str),
        Some("acir-bench-spmv-v1"),
        "schema marker missing"
    );
    let cpus = doc.get("host_cpus").and_then(Value::as_u64).unwrap_or(0);
    assert!(cpus >= 1);
    let degraded = doc
        .get("degraded_host")
        .and_then(Value::as_bool)
        .expect("degraded_host flag missing");
    assert_eq!(
        degraded,
        cpus == 1,
        "degraded_host inconsistent with host_cpus"
    );
    let graphs = doc
        .get("graphs")
        .and_then(Value::as_array)
        .expect("graphs array missing");
    let mut families = std::collections::BTreeSet::new();
    for gdoc in graphs {
        let name = gdoc
            .get("graph")
            .and_then(Value::as_str)
            .expect("graph name");
        families.insert(
            gdoc.get("family")
                .and_then(Value::as_str)
                .expect("family")
                .to_owned(),
        );
        assert!(
            gdoc.get("nnz").and_then(Value::as_u64).unwrap_or(0) > 0,
            "{name}: empty matrix"
        );
        assert_eq!(
            gdoc.get("bit_identical").and_then(Value::as_bool),
            Some(true),
            "{name}: layouts not attested bit-identical"
        );
        let layouts = gdoc
            .get("layouts")
            .and_then(Value::as_array)
            .expect("layouts array");
        let names: Vec<&str> = layouts
            .iter()
            .map(|l| {
                l.get("layout")
                    .and_then(Value::as_str)
                    .expect("layout name")
            })
            .collect();
        for expected in ["csr", "unrolled", "sell", "merge", "auto"] {
            assert!(
                names.contains(&expected),
                "{name}: layout {expected} missing"
            );
        }
        for l in layouts {
            let mut prev = 0u64;
            for r in l.get("results").and_then(Value::as_array).expect("results") {
                let threads = r.get("threads").and_then(Value::as_u64).expect("threads");
                assert!(threads > prev, "{name}: thread counts must ascend");
                prev = threads;
                let secs = r.get("secs").and_then(Value::as_f64).expect("secs");
                assert!(secs > 0.0, "{name}: non-positive timing");
            }
        }
    }
    assert!(
        families.contains("power_law") && families.contains("uniform"),
        "layout bench must cover both degree families"
    );
    let best = doc
        .get("best_powerlaw_speedup")
        .and_then(Value::as_f64)
        .expect("best_powerlaw_speedup missing");
    assert!(best.is_finite() && best > 0.0, "bogus best speedup {best}");
    let target_met = doc
        .get("target_met")
        .and_then(Value::as_bool)
        .expect("target_met missing");
    let target = doc
        .get("target_speedup")
        .and_then(Value::as_f64)
        .expect("target_speedup missing");
    assert_eq!(target_met, best >= target, "target_met inconsistent");
    assert!(
        target_met || degraded,
        "power-law SpMV speedup {best:.2}x misses the {target:.1}x target on a multi-CPU host"
    );
}

/// The dynamic-graph section (DESIGN.md §14): on each power-law
/// generator, build a hub-sketch set and answer a batch of PPR queries,
/// then stream seeded single-edge deltas through the delta-overlay
/// CSR. After every delta the suite repairs the sketches and the
/// cached answers with the push-style residual-repair kernel *and*
/// recomputes both from scratch, counting pushes on each side. The
/// gated quantity — total from-scratch pushes over total repair pushes
/// — is a deterministic counter, so the ≥`DYNAMIC_TARGET_RATIO`× gate
/// holds on any host, degraded or not. Every repaired answer's
/// measured per-degree bound is asserted `< ε` and its vector checked
/// node-by-node against the from-scratch reference; the final delta's
/// repair pipeline is additionally run at 1 and 4 worker threads and
/// checked bit-for-bit.
fn bench_dynamic(args: &BinArgs) -> Value {
    let mut rng = StdRng::seed_from_u64(args.seed ^ 0xd17a);
    let alpha = 0.05;
    let epsilon = 1e-5;
    let eps_sketch = epsilon / 10.0;
    let queries = if args.quick { 8 } else { 16 };
    let deltas = if args.quick { 4 } else { 8 };
    let hubs = if args.quick { 64 } else { 256 };

    let graphs: Vec<(&'static str, Graph)> = vec![
        (
            "forest_fire",
            largest_component(&forest_fire(&mut rng, 3_000, 0.37).expect("forest_fire failed")).0,
        ),
        (
            "rmat",
            largest_component(
                &rmat(&mut rng, 12, 8, (0.57, 0.19, 0.19, 0.05)).expect("rmat failed"),
            )
            .0,
        ),
    ];

    let mut all_met = true;
    let mut graph_docs = Vec::new();
    for (name, g0) in &graphs {
        let n = g0.n();
        let seeds: Vec<NodeId> = (0..queries)
            .map(|i| ((i * n) / queries) as NodeId)
            .collect();

        // A cached answer carried across the churn: (vector, residuals).
        type CachedAnswer = (Vec<(NodeId, f64)>, Vec<(NodeId, f64)>);
        let mut g = g0.clone();
        let mut set = build_hub_sketches(&g, hubs, alpha, eps_sketch).expect("sketch build failed");
        let mut answers: Vec<CachedAnswer> = seeds
            .iter()
            .map(|&s| {
                let r = ppr_push(&g, &[s], alpha, epsilon).expect("initial ppr_push failed");
                (r.vector, r.residuals)
            })
            .collect();

        let mut repair_sketch_pushes = 0u64;
        let mut rebuild_sketch_pushes = 0u64;
        let mut repair_answer_pushes = 0u64;
        let mut rebuild_answer_pushes = 0u64;
        let mut sketch_fallbacks = 0usize;
        let mut delta_docs = Vec::new();
        for d in 0..deltas {
            // Seeded single-edge churn: a fresh edge (or reweight) per
            // delta, endpoints spread by multiplicative hashing so the
            // stream hits different neighborhoods deterministically.
            let u = ((d * 7919 + 13) % n) as NodeId;
            let mut v = ((d * 104_729 + 2) % n) as NodeId;
            if u == v {
                v = (v + 1) % n as NodeId;
            }
            let w = 1.0 + (d % 3) as f64 * 0.5;
            let mut dg = DeltaGraph::new(&g);
            dg.insert_edge(u, v, w).expect("delta insert failed");
            let delta = dg.net_delta();
            let (g_new, _relabel) = dg.compact().expect("compact failed");

            let rep = repair_hub_sketches(&g_new, &set, &delta).expect("sketch repair failed");
            repair_sketch_pushes += rep.pushes as u64;
            sketch_fallbacks += rep.fallbacks;
            let rebuilt =
                build_hub_sketches(&g_new, hubs, alpha, eps_sketch).expect("rebuild failed");
            rebuild_sketch_pushes += rebuilt.build_pushes() as u64;
            set = rep.set;

            let mut dra = 0u64;
            let mut drb = 0u64;
            for (qi, (est, res)) in answers.iter_mut().enumerate() {
                let req = RepairRequest {
                    seeds: &seeds[qi..=qi],
                    estimate: est,
                    residual: res,
                    delta: &delta,
                    alpha,
                    epsilon,
                    mass_threshold: DEFAULT_REPAIR_MASS_THRESHOLD,
                };
                let rr = ppr_repair(&g_new, &req).expect("answer repair failed");
                assert!(
                    rr.per_degree_bound < epsilon,
                    "dynamic[{name}] delta {d} query {qi}: repaired bound {} ≥ ε {epsilon:e}",
                    rr.per_degree_bound
                );
                let scratch =
                    ppr_push(&g_new, &seeds[qi..=qi], alpha, epsilon).expect("scratch failed");
                // Repaired and from-scratch answers agree node-by-node
                // within the certified band (both carry ≤ ε·d error).
                let mut dense_rep = vec![0.0f64; n];
                for &(node, x) in &rr.vector {
                    dense_rep[node as usize] += x;
                }
                let mut dense_ref = vec![0.0f64; n];
                for &(node, x) in &scratch.vector {
                    dense_ref[node as usize] += x;
                }
                for node in 0..n {
                    let slack = 2.0 * epsilon * g_new.degree(node as NodeId) + 1e-12;
                    assert!(
                        (dense_rep[node] - dense_ref[node]).abs() <= slack,
                        "dynamic[{name}] delta {d} query {qi} node {node}: repaired {} vs scratch {}",
                        dense_rep[node],
                        dense_ref[node]
                    );
                }
                dra += rr.pushes as u64;
                drb += scratch.pushes as u64;
                *est = rr.vector;
                *res = rr.residuals;
            }
            repair_answer_pushes += dra;
            rebuild_answer_pushes += drb;

            let mut row = BTreeMap::new();
            row.insert("delta".into(), Value::from(d));
            row.insert(
                "edge".into(),
                Value::Array(vec![Value::from(u as u64), Value::from(v as u64)]),
            );
            row.insert("weight".into(), Value::from(w));
            row.insert("sketch_repair_pushes".into(), Value::from(rep.pushes));
            row.insert(
                "sketch_rebuild_pushes".into(),
                Value::from(rebuilt.build_pushes()),
            );
            row.insert("sketches_repaired".into(), Value::from(rep.repaired));
            row.insert("sketches_untouched".into(), Value::from(rep.untouched));
            row.insert("answer_repair_pushes".into(), Value::from(dra));
            row.insert("answer_rebuild_pushes".into(), Value::from(drb));
            delta_docs.push(Value::Object(row));
            g = g_new;
        }

        let repair_total = repair_sketch_pushes + repair_answer_pushes;
        let rebuild_total = rebuild_sketch_pushes + rebuild_answer_pushes;
        let ratio = rebuild_total as f64 / (repair_total.max(1)) as f64;
        let met = ratio >= DYNAMIC_TARGET_RATIO;
        all_met &= met;
        println!(
            "dynamic[{name}] {deltas} single-edge deltas: repair {repair_total} pushes vs rebuild {rebuild_total} ({ratio:.1}x; target {DYNAMIC_TARGET_RATIO:.0}x, {})",
            if met { "met" } else { "NOT met" },
        );

        // Thread-count invariance of the whole repair pipeline on the
        // final delta: sketch repair and every answer repair, bit for
        // bit at 1 and 4 worker threads.
        let u = (((deltas) * 7919 + 13) % n) as NodeId;
        let mut v = (((deltas) * 104_729 + 2) % n) as NodeId;
        if u == v {
            v = (v + 1) % n as NodeId;
        }
        let mut dg = DeltaGraph::new(&g);
        dg.insert_edge(u, v, 2.0).expect("invariance insert failed");
        let delta = dg.net_delta();
        let (g_new, _relabel) = dg.compact().expect("invariance compact failed");
        let run = |threads: &str| {
            std::env::set_var(THREADS_ENV, threads);
            let rep = repair_hub_sketches(&g_new, &set, &delta).expect("repair failed");
            let ans: Vec<_> = answers
                .iter()
                .enumerate()
                .map(|(qi, (est, res))| {
                    let req = RepairRequest {
                        seeds: &seeds[qi..=qi],
                        estimate: est,
                        residual: res,
                        delta: &delta,
                        alpha,
                        epsilon,
                        mass_threshold: DEFAULT_REPAIR_MASS_THRESHOLD,
                    };
                    ppr_repair(&g_new, &req).expect("repair failed")
                })
                .collect();
            std::env::remove_var(THREADS_ENV);
            (rep, ans)
        };
        let (rep1, ans1) = run("1");
        let (rep4, ans4) = run("4");
        for (a, b) in rep1.set.sketches().iter().zip(rep4.set.sketches()) {
            assert_eq!(a.hub, b.hub, "dynamic[{name}]: hub order diverged");
            assert_eq!(
                a.estimate, b.estimate,
                "dynamic[{name}]: sketch repair not bit-identical across thread counts"
            );
            assert_eq!(a.residual, b.residual);
        }
        for (a, b) in ans1.iter().zip(&ans4) {
            assert_eq!(
                a.vector, b.vector,
                "dynamic[{name}]: answer repair not bit-identical across thread counts"
            );
            assert_eq!(a.residuals, b.residuals);
        }

        let mut doc = BTreeMap::new();
        doc.insert("graph".into(), Value::from(*name));
        doc.insert("family".into(), Value::from("power_law"));
        doc.insert("nodes".into(), Value::from(n));
        doc.insert("edges".into(), Value::from(g0.m()));
        doc.insert("queries".into(), Value::from(queries));
        doc.insert("deltas".into(), Value::from(deltas));
        doc.insert("hubs".into(), Value::from(hubs));
        doc.insert(
            "sketch_repair_pushes".into(),
            Value::from(repair_sketch_pushes),
        );
        doc.insert(
            "sketch_rebuild_pushes".into(),
            Value::from(rebuild_sketch_pushes),
        );
        doc.insert("sketch_fallbacks".into(), Value::from(sketch_fallbacks));
        doc.insert(
            "answer_repair_pushes".into(),
            Value::from(repair_answer_pushes),
        );
        doc.insert(
            "answer_rebuild_pushes".into(),
            Value::from(rebuild_answer_pushes),
        );
        doc.insert("repair_pushes".into(), Value::from(repair_total));
        doc.insert("rebuild_pushes".into(), Value::from(rebuild_total));
        doc.insert("ratio".into(), Value::from(ratio));
        doc.insert("target_met".into(), Value::from(met));
        doc.insert("bit_identical".into(), Value::from(true));
        doc.insert("delta_log".into(), Value::Array(delta_docs));
        graph_docs.push(Value::Object(doc));
    }

    let cpus = host_cpus();
    let mut root = BTreeMap::new();
    root.insert("schema".into(), Value::from("acir-bench-dynamic-v1"));
    root.insert("quick".into(), Value::from(args.quick));
    root.insert("seed".into(), Value::from(args.seed));
    root.insert("host_cpus".into(), Value::from(cpus));
    root.insert("degraded_host".into(), Value::from(cpus == 1));
    root.insert("alpha".into(), Value::from(alpha));
    root.insert("epsilon".into(), Value::from(epsilon));
    root.insert("sketch_epsilon".into(), Value::from(eps_sketch));
    root.insert("target_ratio".into(), Value::from(DYNAMIC_TARGET_RATIO));
    root.insert("target_met".into(), Value::from(all_met));
    root.insert("graphs".into(), Value::Array(graph_docs));
    Value::Object(root)
}

/// CI-grade checks on the dynamic artifact: it parses, names the
/// expected schema, covers both power-law generators with positive
/// deterministic push counts on both sides of every delta, attests
/// thread-count bit-identity, and — the hard gate, never waived, even
/// on degraded hosts — total from-scratch push work exceeds total
/// repair push work by at least `target_ratio`× on every graph.
fn validate_dynamic(text: &str) {
    let doc: Value = serde_json::from_str(text).expect("BENCH_dynamic.json does not parse");
    assert_eq!(
        doc.get("schema").and_then(Value::as_str),
        Some("acir-bench-dynamic-v1"),
        "schema marker missing"
    );
    let target = doc
        .get("target_ratio")
        .and_then(Value::as_f64)
        .expect("target_ratio missing");
    let graphs = doc
        .get("graphs")
        .and_then(Value::as_array)
        .expect("graphs array missing");
    let names: Vec<&str> = graphs
        .iter()
        .map(|g| g.get("graph").and_then(Value::as_str).expect("graph name"))
        .collect();
    for expected in ["forest_fire", "rmat"] {
        assert!(names.contains(&expected), "generator {expected} missing");
    }
    for gdoc in graphs {
        let name = gdoc.get("graph").and_then(Value::as_str).expect("name");
        let repair = gdoc
            .get("repair_pushes")
            .and_then(Value::as_u64)
            .expect("repair_pushes");
        let rebuild = gdoc
            .get("rebuild_pushes")
            .and_then(Value::as_u64)
            .expect("rebuild_pushes");
        assert!(rebuild > 0, "{name}: zero rebuild work recorded");
        let log = gdoc
            .get("delta_log")
            .and_then(Value::as_array)
            .expect("delta_log array");
        assert!(!log.is_empty(), "{name}: empty delta log");
        for row in log {
            assert!(
                row.get("sketch_rebuild_pushes")
                    .and_then(Value::as_u64)
                    .unwrap_or(0)
                    > 0,
                "{name}: a delta recorded zero rebuild cost"
            );
        }
        let ratio = gdoc.get("ratio").and_then(Value::as_f64).expect("ratio");
        assert!(ratio.is_finite() && ratio > 0.0, "{name}: bogus ratio");
        assert_eq!(
            gdoc.get("bit_identical").and_then(Value::as_bool),
            Some(true),
            "{name}: thread-count bit-identity not attested"
        );
        assert_eq!(
            gdoc.get("target_met").and_then(Value::as_bool),
            Some(ratio >= target),
            "{name}: target_met inconsistent"
        );
        // The hard gate: deterministic counters, no degraded-host
        // waiver — a single-edge delta must cost an order of magnitude
        // less push work to repair than to recompute.
        assert!(
            ratio >= target,
            "{name}: repair spent {repair} pushes vs {rebuild} from scratch ({ratio:.2}x; target {target:.0}x)"
        );
    }
    assert_eq!(
        doc.get("target_met").and_then(Value::as_bool),
        Some(true),
        "dynamic repair gate not met"
    );
}

/// `(request id, rung name, external cluster)` — one served response.
type SnapshotResponse = (u64, &'static str, Vec<(NodeId, f64)>);

/// Everything one deterministic serving run against staged mid-flight
/// writers produced, for the bit-identity comparison and the artifact.
struct SnapshotRun {
    /// Served responses in response order.
    responses: Vec<SnapshotResponse>,
    /// Responses replayed bitwise against the pinned-snapshot oracle.
    checked: u64,
    /// Oracle mismatches — any value here is a torn (half-applied) read.
    torn: u64,
    /// Responses whose pinned snapshot had been superseded by the time
    /// their drain cycle finished — the races the layer exists for.
    superseded: u64,
    staged_deltas: u64,
    staged_compacts: u64,
    final_epoch: u64,
    head_relabeled: bool,
}

/// Drain one engine cycle, oracle-checking every response against the
/// snapshot its request pinned at admission: internal seeds through the
/// pinned lineage, `ppr_push` on the pinned graph, result mapped back
/// to external ids, compared bitwise.
fn drain_snapshot_cycle(
    engine: &mut Engine,
    pinned: &mut BTreeMap<
        u64,
        (
            std::sync::Arc<acir_graph::snapshot::GraphSnapshot>,
            Vec<NodeId>,
        ),
    >,
    run: &mut SnapshotRun,
    alpha: f64,
    epsilon: f64,
) {
    let responses = engine.run_pending();
    let head = engine.epoch();
    for r in responses {
        let (snap, seeds) = pinned.remove(&r.id).expect("response for unknown request");
        if snap.epoch() < head {
            run.superseded += 1;
        }
        if matches!(r.kind, ResponseKind::Full | ResponseKind::Cached) {
            let internal = if snap.is_relabeled() {
                snap.lineage().map_nodes(&seeds)
            } else {
                seeds.clone()
            };
            let o = ppr_push(snap.graph(), &internal, alpha, epsilon).expect("oracle push failed");
            let expected = if snap.is_relabeled() {
                snap.lineage().unmap_sparse(&o.vector)
            } else {
                o.vector
            };
            run.checked += 1;
            if r.cluster != expected {
                run.torn += 1;
            }
        }
        run.responses.push((r.id, r.kind.name(), r.cluster));
    }
}

/// One deterministic serving run: distinct-seed queries pin the head
/// snapshot at admission; single-edge deltas and relabeling
/// compactions are staged against in-flight requests, cycling through
/// every [`PublishPoint`], and fire while earlier admissions are still
/// queued. Budget is generous enough that every answer is `full` —
/// each one oracle-checked.
fn drive_snapshot(g: &Graph, queries: usize, alpha: f64, epsilon: f64) -> SnapshotRun {
    let n = g.n();
    let mut engine = Engine::new(
        g.clone(),
        EngineConfig {
            queue_cap: 64,
            capacity: 50_000_000,
            refill_per_cycle: 50_000_000,
            ..EngineConfig::default()
        },
    );
    let points = [
        PublishPoint::BeforeCacheCheck,
        PublishPoint::BeforeBatch,
        PublishPoint::BeforeSupervise,
        PublishPoint::AfterRespond,
    ];
    let mut run = SnapshotRun {
        responses: Vec::new(),
        checked: 0,
        torn: 0,
        superseded: 0,
        staged_deltas: 0,
        staged_compacts: 0,
        final_epoch: 0,
        head_relabeled: false,
    };
    let mut pinned = BTreeMap::new();
    for i in 0..queries {
        let seeds = vec![((i * 37) % n) as NodeId];
        let q = Query {
            seeds: seeds.clone(),
            alpha,
            epsilon,
            deadline: None,
            options: Default::default(),
        };
        let id = match engine.submit(q) {
            Admission::Accepted { id, .. } => id,
            Admission::Rejected { .. } => panic!("snapshot bench: request {i} rejected"),
        };
        pinned.insert(id, (engine.snapshot(), seeds));
        if i % 3 == 1 {
            let u = ((i * 7919 + 13) % n) as NodeId;
            let mut v = ((i * 104_729 + 2) % n) as NodeId;
            if u == v {
                v = (v + 1) % n as NodeId;
            }
            let w = 1.0 + (i % 3) as f64 * 0.5;
            engine.stage_write(
                points[i % points.len()],
                id,
                WriteOp::Delta(vec![EdgeOp::Insert { u, v, weight: w }]),
            );
            run.staged_deltas += 1;
        }
        if i % 8 == 5 {
            engine.stage_write(
                points[(i / 8) % points.len()],
                id,
                WriteOp::Compact(CompactionOrder::Rcm),
            );
            run.staged_compacts += 1;
        }
        // Drain every fourth arrival, so three admissions share each
        // cycle and staged publications land between their stages.
        if i % 4 == 3 {
            drain_snapshot_cycle(&mut engine, &mut pinned, &mut run, alpha, epsilon);
        }
    }
    drain_snapshot_cycle(&mut engine, &mut pinned, &mut run, alpha, epsilon);
    assert!(pinned.is_empty(), "snapshot bench: unanswered admissions");
    assert_eq!(
        engine.staged_writes(),
        0,
        "snapshot bench: a staged write never fired"
    );
    run.final_epoch = engine.epoch();
    run.head_relabeled = engine.snapshot().is_relabeled();
    run
}

fn bench_snapshot(args: &BinArgs) -> Value {
    let mut rng = StdRng::seed_from_u64(args.seed ^ 0x54a9);
    let alpha = 0.1;
    let epsilon = 1e-3;
    let queries = if args.quick { 24 } else { 64 };

    let graphs: Vec<(&'static str, Graph)> = vec![
        (
            "forest_fire",
            largest_component(&forest_fire(&mut rng, 3_000, 0.37).expect("forest_fire failed")).0,
        ),
        (
            "rmat",
            largest_component(
                &rmat(&mut rng, 12, 8, (0.57, 0.19, 0.19, 0.05)).expect("rmat failed"),
            )
            .0,
        ),
    ];

    let mut graph_docs = Vec::new();
    for (name, g0) in &graphs {
        // The whole schedule — staged interleavings included — must be
        // bit-identical across worker-thread counts: staged writes fire
        // in the sequential driver loop, never inside a parallel region.
        let run = |threads: &str| {
            std::env::set_var(THREADS_ENV, threads);
            let r = drive_snapshot(g0, queries, alpha, epsilon);
            std::env::remove_var(THREADS_ENV);
            r
        };
        let r1 = run("1");
        let r4 = run("4");
        assert_eq!(
            r1.responses, r4.responses,
            "snapshot[{name}]: serving not bit-identical across thread counts"
        );
        // The hard gate, asserted here for a first-failure message and
        // re-checked from the artifact by `validate_snapshot`: a torn
        // read means a response observed a half-applied publication.
        assert_eq!(
            r1.torn, 0,
            "snapshot[{name}]: {} of {} responses diverged from their pinned-snapshot oracle",
            r1.torn, r1.checked
        );
        assert!(
            r1.superseded > 0,
            "snapshot[{name}]: no response outlived its snapshot — the schedule exercised nothing"
        );
        assert_eq!(
            r1.final_epoch,
            r1.staged_deltas + r1.staged_compacts,
            "snapshot[{name}]: epoch must advance once per fired write"
        );
        println!(
            "snapshot[{name}] {queries} pinned queries vs {} staged deltas + {} staged compactions: {} checked bitwise, {} torn, {} answered on superseded snapshots",
            r1.staged_deltas, r1.staged_compacts, r1.checked, r1.torn, r1.superseded,
        );

        let mut kinds: BTreeMap<&'static str, u64> = BTreeMap::new();
        for (_, kind, _) in &r1.responses {
            *kinds.entry(kind).or_insert(0) += 1;
        }
        let mut doc = BTreeMap::new();
        doc.insert("graph".into(), Value::from(*name));
        doc.insert("nodes".into(), Value::from(g0.n()));
        doc.insert("edges".into(), Value::from(g0.m()));
        doc.insert("queries".into(), Value::from(queries));
        doc.insert("responses".into(), Value::from(r1.responses.len()));
        doc.insert("checked_responses".into(), Value::from(r1.checked));
        doc.insert("torn_reads".into(), Value::from(r1.torn));
        doc.insert("superseded_responses".into(), Value::from(r1.superseded));
        doc.insert("staged_deltas".into(), Value::from(r1.staged_deltas));
        doc.insert("staged_compactions".into(), Value::from(r1.staged_compacts));
        doc.insert("final_epoch".into(), Value::from(r1.final_epoch));
        doc.insert("head_relabeled".into(), Value::from(r1.head_relabeled));
        doc.insert(
            "degradation".into(),
            Value::Object(
                kinds
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), Value::from(v)))
                    .collect(),
            ),
        );
        doc.insert("bit_identical".into(), Value::from(true));
        graph_docs.push(Value::Object(doc));
    }

    let cpus = host_cpus();
    let mut root = BTreeMap::new();
    root.insert("schema".into(), Value::from("acir-bench-snapshot-v1"));
    root.insert("quick".into(), Value::from(args.quick));
    root.insert("seed".into(), Value::from(args.seed));
    root.insert("host_cpus".into(), Value::from(cpus));
    root.insert("degraded_host".into(), Value::from(cpus == 1));
    root.insert("alpha".into(), Value::from(alpha));
    root.insert("epsilon".into(), Value::from(epsilon));
    root.insert("graphs".into(), Value::Array(graph_docs));
    Value::Object(root)
}

/// CI-grade checks on the snapshot artifact: it parses, names the
/// expected schema, covers both power-law generators, attests
/// thread-count bit-identity, accounts one epoch per fired write — and
/// the hard gate, never waived, even on degraded hosts: zero torn
/// (half-applied-delta) observations, with at least one response per
/// graph answered on a snapshot that had already been superseded (so
/// the race the gate guards actually happened).
fn validate_snapshot(text: &str) {
    let doc: Value = serde_json::from_str(text).expect("BENCH_snapshot.json does not parse");
    assert_eq!(
        doc.get("schema").and_then(Value::as_str),
        Some("acir-bench-snapshot-v1"),
        "schema marker missing"
    );
    let graphs = doc
        .get("graphs")
        .and_then(Value::as_array)
        .expect("graphs array missing");
    let names: Vec<&str> = graphs
        .iter()
        .map(|g| g.get("graph").and_then(Value::as_str).expect("graph name"))
        .collect();
    for expected in ["forest_fire", "rmat"] {
        assert!(names.contains(&expected), "generator {expected} missing");
    }
    for gdoc in graphs {
        let name = gdoc.get("graph").and_then(Value::as_str).expect("name");
        let u = |key: &str| {
            gdoc.get(key)
                .and_then(Value::as_u64)
                .unwrap_or_else(|| panic!("{name}: {key} missing"))
        };
        assert!(u("checked_responses") > 0, "{name}: nothing oracle-checked");
        assert_eq!(
            u("responses"),
            u("checked_responses"),
            "{name}: some responses escaped the oracle check"
        );
        assert!(
            u("superseded_responses") > 0,
            "{name}: no response was answered on a superseded snapshot"
        );
        assert!(u("staged_deltas") > 0, "{name}: no deltas staged");
        assert!(u("staged_compactions") > 0, "{name}: no compactions staged");
        assert_eq!(
            u("final_epoch"),
            u("staged_deltas") + u("staged_compactions"),
            "{name}: epoch accounting broken"
        );
        assert_eq!(
            gdoc.get("head_relabeled").and_then(Value::as_bool),
            Some(true),
            "{name}: relabeling compactions left an identity lineage"
        );
        assert_eq!(
            gdoc.get("bit_identical").and_then(Value::as_bool),
            Some(true),
            "{name}: thread-count bit-identity not attested"
        );
        // The hard gate: a torn read is a response that mixed state
        // from two epochs. Deterministic counter, no waiver.
        assert_eq!(
            u("torn_reads"),
            0,
            "{name}: half-applied publication observed by a pinned read"
        );
    }
}
